// Package repro's top-level benchmarks regenerate every table and figure in
// the paper's evaluation at reduced scale, printing the paper-formatted
// rows on the first iteration and reporting the headline numbers as bench
// metrics. cmd/sammy-eval runs the full-size versions.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/abtest"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/trace"
	"repro/internal/units"
)

// benchABConfig is the reduced-scale population used by the A/B benches.
func benchABConfig(seed int64) abtest.Config {
	return abtest.Config{
		Population:       abtest.PopulationConfig{Users: 200, Seed: seed},
		SessionsPerUser:  2,
		ChunksPerSession: 60,
	}
}

// BenchmarkPopulationSharded measures the crash-resumable population
// runner's throughput in users/sec: the same reduced-scale Table 2 workload
// as BenchmarkTable2ProductionAB, streamed through shard-sized sketches
// instead of accumulated records. benchcheck gates the users/sec metric
// against BENCH_baseline.json so the streaming path cannot quietly lose its
// population throughput.
func BenchmarkPopulationSharded(b *testing.B) {
	b.ReportAllocs()
	base := benchABConfig(11)
	cfg := abtest.ShardRunConfig{
		Experiment: base,
		Arms: []abtest.Arm{
			abtest.ControlArm(),
			abtest.SammyArm(core.DefaultC0, core.DefaultC1),
		},
		ShardSize: 50,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := abtest.RunSharded(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rows := abtest.CompareSketches(res.Arms[1], res.Arms[0])
			fmt.Print(abtest.FormatSketchTable("\nTable 2 (streamed sketches): Sammy vs control", rows))
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(base.Population.Users*b.N)/sec, "users/sec")
	}
}

func rowsByName(rows []abtest.TableRow) map[string]abtest.TableRow {
	m := make(map[string]abtest.TableRow, len(rows))
	for _, r := range rows {
		m[r.Metric] = r
	}
	return m
}

// BenchmarkTable2ProductionAB regenerates Table 2: Sammy vs the production
// control across the population (paper: throughput -61%, retransmits
// -35.5%, RTT -13.7%, QoE maintained).
func BenchmarkTable2ProductionAB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := abtest.Run(benchABConfig(11), []abtest.Arm{
			abtest.ControlArm(),
			abtest.SammyArm(core.DefaultC0, core.DefaultC1),
		})
		rows := abtest.Compare(results[1], results[0], 99)
		if i == 0 {
			fmt.Print(abtest.FormatTable("\nTable 2: Sammy vs control (paper: -61 tput, -35.5 retx, -13.7 RTT)", rows))
		}
		m := rowsByName(rows)
		b.ReportMetric(m["ChunkThroughputMbps"].CI.Point, "tputChg%")
		b.ReportMetric(m["RetransmitPct"].CI.Point, "retxChg%")
		b.ReportMetric(m["RTTms"].CI.Point, "rttChg%")
	}
}

// BenchmarkTable3InitialPhaseOnly regenerates Table 3: the initial-phase
// history changes without pacing (paper: initial VMAF +0.3%, play delay
// -0.4%, everything else flat).
func BenchmarkTable3InitialPhaseOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := abtest.Run(benchABConfig(19), []abtest.Arm{
			abtest.ControlArm(),
			abtest.StandardArms()[3],
		})
		rows := abtest.Compare(results[1], results[0], 99)
		if i == 0 {
			fmt.Print(abtest.FormatTable("\nTable 3: initial-only arm vs control (paper: initVMAF +0.3, playDelay -0.4)", rows))
		}
		m := rowsByName(rows)
		b.ReportMetric(m["InitialVMAF"].CI.Point, "initVMAFChg%")
		b.ReportMetric(m["PlayDelayMs"].CI.Point, "playDelayChg%")
	}
}

// BenchmarkSec55NaiveBaseline regenerates the §5.5 experiment: blanket 4x
// pacing including the initial phase (paper: -53% throughput but +6% play
// delay and -0.2% VMAF — worse than Sammy on every axis).
func BenchmarkSec55NaiveBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := abtest.Run(benchABConfig(17), []abtest.Arm{
			abtest.ControlArm(),
			abtest.StandardArms()[2],
		})
		rows := abtest.Compare(results[1], results[0], 99)
		if i == 0 {
			fmt.Print(abtest.FormatTable("\n§5.5 naive 4x baseline vs control (paper: -53 tput, +6 playDelay)", rows))
		}
		m := rowsByName(rows)
		b.ReportMetric(m["ChunkThroughputMbps"].CI.Point, "tputChg%")
		b.ReportMetric(m["PlayDelayMs"].CI.Point, "playDelayChg%")
	}
}

// BenchmarkFig1Smoothing regenerates Figure 1: the bursty on-off trace and
// the smoothed same-QoE trace for one session.
func BenchmarkFig1Smoothing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		control := lab.SingleFlow(lab.ControlController(), 60, 1)
		sammy := lab.SingleFlow(lab.SammyController(), 60, 1)
		if i == 0 {
			fmt.Println("\nFigure 1 (a) control trace:")
			fmt.Print(trace.ASCII(control.Throughput, 90, 6))
			fmt.Println("Figure 1 (b) Sammy trace, same QoE:")
			fmt.Print(trace.ASCII(sammy.Throughput, 90, 6))
		}
		b.ReportMetric(control.Throughput.Max(), "controlPeakMbps")
		b.ReportMetric(sammy.Throughput.Max(), "sammyPeakMbps")
		b.ReportMetric(sammy.QoE.VMAF-control.QoE.VMAF, "vmafDelta")
	}
}

// BenchmarkFig2HYBThreshold regenerates Figure 2: HYB's decision threshold
// as a function of buffer (paper: empty buffer needs 1/β x bitrate).
func BenchmarkFig2HYBThreshold(b *testing.B) {
	h := abr.HYB{Beta: 0.5}
	d := 20 * time.Second
	r := 8 * units.Mbps
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Println("\nFigure 2b: min throughput to pick 8 Mbps (β=0.5, D=20s):")
			for _, bufS := range []int{0, 10, 20, 40} {
				x := h.MinThroughputFor(r, time.Duration(bufS)*time.Second, d)
				fmt.Printf("  buffer %2ds -> %v (%.2fx)\n", bufS, x, float64(x)/float64(r))
			}
		}
		x0 := h.MinThroughputFor(r, 0, d)
		b.ReportMetric(float64(x0)/float64(r), "emptyBufMultiple")
	}
}

// BenchmarkFig3ByPreExperimentThroughput regenerates Figure 3: throughput
// reduction by pre-experiment throughput bucket (paper: ≈0 below 6 Mbps to
// -74% above 90 Mbps).
func BenchmarkFig3ByPreExperimentThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := abtest.Run(benchABConfig(13), []abtest.Arm{
			abtest.ControlArm(),
			abtest.SammyArm(core.DefaultC0, core.DefaultC1),
		})
		rows := abtest.CompareByPreExperiment(results[1], results[0], 5)
		if i == 0 {
			fmt.Println("\nFigure 3: throughput change by pre-experiment bucket:")
			for _, row := range rows {
				fmt.Printf("  %-10s %s (%d sessions)\n", row.Bucket, row.CI, row.Sessions)
			}
		}
		b.ReportMetric(rows[0].CI.Point, "slowBucketChg%")
		b.ReportMetric(rows[len(rows)-1].CI.Point, "fastBucketChg%")
	}
}

// BenchmarkFig4BurstSize regenerates Figure 4: retransmit change vs pacing
// burst size (paper: -40% at burst 40, up to -60% at burst 4; QoE flat).
func BenchmarkFig4BurstSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := lab.BurstSizeExperiment([]int{4, 16, 32, 40}, 40, 6)
		if i == 0 {
			fmt.Println("\nFigure 4: retransmits vs pacing burst size:")
			for _, p := range points {
				fmt.Printf("  burst %2d: retx %.4f (%+.1f%%)\n", p.Burst, p.RetxFraction, p.RetxChangePct)
			}
		}
		b.ReportMetric(points[1].RetxChangePct, "burst4Chg%")
		b.ReportMetric(points[len(points)-1].RetxChangePct, "burst40Chg%")
	}
}

// BenchmarkFig5ParamTradeoff regenerates Figure 5: the VMAF-vs-throughput
// tradeoff across (c0, c1) cells (paper: VMAF flat until ≈-80%, then falls).
func BenchmarkFig5ParamTradeoff(b *testing.B) {
	pairs := [][2]float64{{4.5, 4.0}, {3.2, 2.8}, {1.9, 1.6}, {1.45, 1.3}}
	for i := 0; i < b.N; i++ {
		points := abtest.SweepParameters(benchABConfig(23), pairs, 7)
		if i == 0 {
			fmt.Println("\nFigure 5: (c0,c1) sweep — throughput vs VMAF change:")
			for _, pt := range points {
				fmt.Printf("  c0=%.2f c1=%.2f  tput %s  VMAF %s\n", pt.C0, pt.C1, pt.ThroughputChg, pt.VMAFChg)
			}
		}
		b.ReportMetric(points[1].ThroughputChg.Point, "prodTputChg%")
		b.ReportMetric(points[1].VMAFChg.Point, "prodVMAFChg%")
	}
}

// BenchmarkFig6HistoryColdStart regenerates Figure 6: the initial-quality
// gap of a cold-start history converging over days.
func BenchmarkFig6HistoryColdStart(b *testing.B) {
	cfg := benchABConfig(29)
	cfg.Population.Users = 80
	cfg.ChunksPerSession = 40
	for i := 0; i < b.N; i++ {
		points := abtest.ColdStartStudy(cfg, 5, 3)
		if i == 0 {
			fmt.Println("\nFigure 6: cold-start initial-VMAF gap by day:")
			for _, pt := range points {
				fmt.Printf("  day %d: %s\n", pt.Day, pt.InitialVMAFChg)
			}
		}
		b.ReportMetric(points[0].InitialVMAFChg.Point, "day0Chg%")
		b.ReportMetric(points[len(points)-1].InitialVMAFChg.Point, "lastDayChg%")
	}
}

// BenchmarkFig7SingleFlow regenerates Figure 7: throughput and RTT of a
// single session on the lab link (paper: Sammy ≈15→13 Mbps, RTT at the
// 5 ms floor; control at link rate with inflated RTT).
func BenchmarkFig7SingleFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		control := lab.SingleFlow(lab.ControlController(), 90, 1)
		sammy := lab.SingleFlow(lab.SammyController(), 90, 1)
		if i == 0 {
			fmt.Printf("\nFigure 7: mean RTT control %.1f ms vs sammy %.1f ms; retx %.4f vs %.4f\n",
				control.RTT.Mean(), sammy.RTT.Mean(), control.Retransmit, sammy.Retransmit)
		}
		b.ReportMetric(control.RTT.Mean(), "controlRTTms")
		b.ReportMetric(sammy.RTT.Mean(), "sammyRTTms")
	}
}

// BenchmarkFig8aUDPNeighbor regenerates Figure 8a (paper: -51% one-way
// delay for a neighboring UDP flow).
func BenchmarkFig8aUDPNeighbor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.UDPNeighbor(90, 2)
		if i == 0 {
			fmt.Printf("\nFigure 8a: UDP delay %.2f -> %.2f ms (%+.1f%%, paper -51%%)\n",
				res.Control, res.Sammy, res.ImprovementPct())
		}
		b.ReportMetric(res.ImprovementPct(), "delayChg%")
	}
}

// BenchmarkFig8bTCPNeighbor regenerates Figure 8b (paper: +28% throughput
// for a neighboring TCP flow, 20 → 25.7 Mbps).
func BenchmarkFig8bTCPNeighbor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.TCPNeighbor(90, 3)
		if i == 0 {
			fmt.Printf("\nFigure 8b: TCP throughput %.1f -> %.1f Mbps (%+.1f%%, paper +28%%)\n",
				res.Control, res.Sammy, res.ImprovementPct())
		}
		b.ReportMetric(res.ImprovementPct(), "tputChg%")
	}
}

// BenchmarkFig8cHTTPNeighbor regenerates Figure 8c (paper: -18% HTTP
// response times, 1095 → 898 ms).
func BenchmarkFig8cHTTPNeighbor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.HTTPNeighbor(90, 4)
		if i == 0 {
			fmt.Printf("\nFigure 8c: HTTP response %.0f -> %.0f ms (%+.1f%%, paper -18%%)\n",
				res.Control, res.Sammy, res.ImprovementPct())
		}
		b.ReportMetric(res.ImprovementPct(), "respChg%")
	}
}

// BenchmarkFig8dVideoNeighbor regenerates Figure 8d (paper: -4% play delay
// for a neighboring video session).
func BenchmarkFig8dVideoNeighbor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.VideoNeighbor(15, 2, 5)
		if i == 0 {
			fmt.Printf("\nFigure 8d: neighbor play delay %.0f -> %.0f ms (%+.1f%%, paper -4%%)\n",
				res.Control, res.Sammy, res.ImprovementPct())
		}
		b.ReportMetric(res.ImprovementPct(), "playDelayChg%")
	}
}

// BenchmarkAblationLimiters compares the Table 1 rate-limiter mechanisms at
// the same average rate (paper §5.6: pacing bursts of 4 beat cwnd-style
// 40-packet bursts by a further ~20% of retransmits).
func BenchmarkAblationLimiters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := lab.AblationLimiters(20, 7)
		if i == 0 {
			fmt.Println("\nAblation: rate-limiter mechanisms at the same average rate:")
			for _, r := range results {
				fmt.Printf("  %-13s retx %.4f tput %v\n", r.Name, r.RetxFraction, r.Throughput)
			}
		}
		b.ReportMetric(results[1].RetxFraction*100, "cwndCapRetx%")
		b.ReportMetric(results[3].RetxFraction*100, "paceB4retx%")
	}
}
