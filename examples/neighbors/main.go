// Neighbors: reproduce the paper's §6 lab studies interactively — a video
// session shares a 40 Mbps bottleneck with a UDP flow, a bulk TCP flow,
// HTTP requests, or another video session, and Sammy improves every
// neighbor's experience.
//
// Run with: go run ./examples/neighbors
package main

import (
	"fmt"

	"repro/internal/lab"
)

func main() {
	fmt.Println("lab: 40 Mbps bottleneck, 5 ms RTT, 4xBDP drop-tail queue, 3.3 Mbps top bitrate")
	fmt.Println("each neighbor shares the link with a video session: control vs Sammy")
	fmt.Println()

	udp := lab.UDPNeighbor(90, 1)
	fmt.Printf("UDP one-way delay     %7.2f ms -> %7.2f ms  (%+.0f%%, paper -51%%)\n",
		udp.Control, udp.Sammy, udp.ImprovementPct())

	tcp := lab.TCPNeighbor(90, 1)
	fmt.Printf("TCP throughput        %7.1f Mb -> %7.1f Mb  (%+.0f%%, paper +28%%)\n",
		tcp.Control, tcp.Sammy, tcp.ImprovementPct())

	http := lab.HTTPNeighbor(90, 1)
	fmt.Printf("HTTP response time    %7.0f ms -> %7.0f ms  (%+.0f%%, paper -18%%)\n",
		http.Control, http.Sammy, http.ImprovementPct())

	vid := lab.VideoNeighbor(15, 3, 1)
	fmt.Printf("video play delay      %7.0f ms -> %7.0f ms  (%+.0f%%, paper -4%%)\n",
		vid.Control, vid.Sammy, vid.ImprovementPct())

	fmt.Println()
	fmt.Println("Sammy sends below the link rate during on periods, so the queue stays")
	fmt.Println("empty and the spare bandwidth goes to whoever shares the bottleneck.")
}
