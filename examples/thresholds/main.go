// Thresholds: the §4.2 analysis workflow — given an ABR algorithm's safety
// factor and a buffer configuration, compute how low Sammy may pace without
// ever changing a bitrate decision (paper Eq. 1 / Figure 2), then validate
// parameter choices against that floor.
//
// Run with: go run ./examples/thresholds
package main

import (
	"fmt"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/video"
)

func main() {
	ladder := video.DefaultLadder().CapAt(5.8 * units.Mbps)
	top := ladder.Top().Bitrate
	lookahead := 32 * time.Second
	maxBuffer := 4 * time.Minute

	h := abr.HYB{Beta: 0.7} // the production-like safety factor
	fmt.Printf("ladder top %v, ABR β=%.1f, lookahead %v\n\n", top, 0.7, lookahead)

	fmt.Println("Eq. 1: minimum throughput that still selects the top rung")
	fmt.Println("(pace anywhere above this line and bitrate decisions never change):")
	for _, buf := range []time.Duration{0, 10 * time.Second, 30 * time.Second, 2 * time.Minute} {
		need := h.MinThroughputFor(top, buf, lookahead)
		fmt.Printf("  buffer %-6v -> %-10v (%.2fx the top bitrate)\n",
			buf, need, float64(need)/float64(top))
	}

	fmt.Println("\nvalidating pace multipliers against the floor across all buffer levels:")
	for _, params := range [][2]float64{{3.2, 2.8}, {2.0, 1.7}, {1.2, 1.0}} {
		ctrl := core.NewSammy(h, params[0], params[1])
		err := ctrl.ValidatePaceFloor(h, top, maxBuffer, lookahead)
		verdict := "safe: decisions unchanged under pacing"
		if err != nil {
			verdict = "UNSAFE: " + err.Error()
		}
		fmt.Printf("  c0=%.1f c1=%.1f -> %s\n", params[0], params[1], verdict)
	}

	fmt.Println("\nThe production choice (3.2/2.8) clears the floor with margin; the")
	fmt.Println("margin is what §5.3's tuning trades against deeper smoothing (Fig 5).")
}
