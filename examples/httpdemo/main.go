// HTTP demo: the deployability prototype end-to-end on loopback — a real
// net/http chunk server that honours the pacing header, and a player that
// streams a short title through it with Sammy's joint bitrate/pace-rate
// decisions. This mirrors the paper's open-source prototype (dash.js +
// Fastly) using off-the-shelf pieces.
//
// Run with: go run ./examples/httpdemo
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/abr"
	"repro/internal/cdn"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/video"
)

func main() {
	// Start the paced chunk server on an ephemeral loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("httpdemo: listen: %v", err)
	}
	// WriteTimeout bounds each response; the demo's paced chunks are ~1 s
	// each, far inside it.
	srv := &http.Server{
		Handler:           &cdn.Server{},
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	//sammy:goroutinelifetime: Serve returns ErrServerClosed when the deferred srv.Close below tears down the listener
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("httpdemo: server: %v", err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("chunk server on %s\n\n", base)

	title := cdn.NewDemoTitle(10, time.Second)
	ctrl := core.NewSammy(abr.Production{}, core.DefaultC0, core.DefaultC1)
	report, err := cdn.StreamSession(context.Background(), cdn.SessionConfig{
		Controller: ctrl,
		Title:      title,
		Client:     &cdn.Client{BaseURL: base},
		OnChunk: func(i int, rung video.Rung, pace units.BitsPerSecond, res cdn.FetchResult) {
			paced := "unpaced (initial phase)"
			if res.Paced {
				paced = fmt.Sprintf("paced at %v via header", pace)
			}
			fmt.Printf("chunk %2d: %v @ %v, downloaded in %6s — %s\n",
				i, res.Size, rung.Bitrate,
				res.Duration.Round(time.Millisecond), paced)
		},
	})
	if err != nil {
		log.Fatalf("httpdemo: %v", err)
	}
	fmt.Printf("\nplayDelay=%v rebuffers=%d vmaf=%.1f chunkThroughput=%v (%d/%d chunks paced)\n",
		report.PlayDelay.Round(time.Millisecond), report.Rebuffers, report.VMAF,
		report.ChunkThroughput, report.PacedChunks, report.Chunks)
	fmt.Println("\nThe same header works against a CDN that supports CMCD rtp or socket pacing.")
}
