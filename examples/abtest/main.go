// A/B test: run a small production-style experiment — a synthetic user
// population streams sessions under the control and Sammy arms, and the
// example prints Table 2-style percent changes with confidence intervals.
//
// Run with: go run ./examples/abtest
package main

import (
	"fmt"

	"repro/internal/abtest"
	"repro/internal/core"
)

func main() {
	cfg := abtest.Config{
		Population:       abtest.PopulationConfig{Users: 300, Seed: 2026},
		SessionsPerUser:  3,
		ChunksPerSession: 90,
	}
	fmt.Printf("running %d users x %d sessions per arm (paired design, fresh histories)...\n",
		cfg.Population.Users, cfg.SessionsPerUser)

	results := abtest.Run(cfg, []abtest.Arm{
		abtest.ControlArm(),
		abtest.SammyArm(core.DefaultC0, core.DefaultC1),
	})
	control, sammy := results[0], results[1]

	fmt.Printf("control median chunk-throughput/bitrate ratio: %.1fx (paper: ~13x)\n\n",
		abtest.MedianThroughputToBitrateRatio(control))
	fmt.Print(abtest.FormatTable("Sammy vs control (cf. paper Table 2):",
		abtest.Compare(sammy, control, 99)))

	fmt.Println("\nby pre-experiment throughput group (cf. paper Figure 3):")
	for _, row := range abtest.CompareByPreExperiment(sammy, control, 99) {
		fmt.Printf("  %-10s  %s (%d sessions)\n", row.Bucket, row.CI, row.Sessions)
	}
}
