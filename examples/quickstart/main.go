// Quickstart: stream one video session with Sammy over a simulated access
// path and compare it to the unpaced production control.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/player"
	"repro/internal/units"
	"repro/internal/video"
)

func main() {
	// A 100 Mbps home connection streaming a 10-minute title whose top
	// encode is 5.8 Mbps — capacity is ~17x the bitrate, the regime where
	// video traffic turns bursty.
	path := netmodel.Path{
		Capacity: 100 * units.Mbps,
		BaseRTT:  30 * time.Millisecond,
	}
	ladder := video.DefaultLadder().CapAt(5.8 * units.Mbps)

	run := func(name string, ctrl *core.Controller) player.QoE {
		rng := rand.New(rand.NewSource(7))
		title := video.NewTitle(ladder, 4*time.Second, 150, rng)
		q := player.Run(player.Config{
			Controller: ctrl,
			Title:      title,
			History:    &core.History{},
		}, path, rng, nil)
		fmt.Printf("%-8s playDelay=%-8v vmaf=%5.1f rebuffers=%d  chunkThroughput=%-10v retx=%.4f rtt=%v\n",
			name,
			q.PlayDelay.Round(time.Millisecond), q.VMAF, q.RebufferCount,
			q.ChunkThroughput, q.RetxFraction, q.MedianRTT.Round(time.Millisecond))
		return q
	}

	fmt.Println("one 10-minute session on a 100 Mbps path, 5.8 Mbps top bitrate:")
	control := run("control", core.NewControl(abr.Production{}))
	sammy := run("sammy", core.NewSammy(abr.Production{}, core.DefaultC0, core.DefaultC1))

	reduction := 100 * (1 - float64(sammy.ChunkThroughput)/float64(control.ChunkThroughput))
	fmt.Printf("\nSammy reduced chunk throughput by %.0f%% at the same quality (%.1f vs %.1f VMAF).\n",
		reduction, sammy.VMAF, control.VMAF)
	fmt.Println("The pace rate was chosen per chunk as (c1·B + c0·(1-B)) x top bitrate (Algorithm 1).")
}
