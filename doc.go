// Package repro is a from-scratch Go reproduction of "Sammy: smoothing
// video traffic to be a friendly internet neighbor" (Spang et al., ACM
// SIGCOMM 2023).
//
// The library lives under internal/ (see README.md for the package map);
// the root package holds the top-level benchmarks in bench_test.go, one per
// table and figure in the paper's evaluation. Executables are under cmd/,
// runnable examples under examples/.
package repro
