package repro

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/loadgen"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// This file is the benchmark-regression harness: three suites sized to the
// event core's layers (bare scheduler, one TCP flow, a reduced-scale
// Table 2 population run), and an emitter that records them to
// BENCH_sim.json. CI reruns the emitter and gates merges with
// cmd/benchcheck against BENCH_baseline.json.

// BenchmarkScheduler measures the bare event loop: schedule-dispatch cycles
// with a warm event pool. The steady state is allocation-free.
func BenchmarkScheduler(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	var tick func()
	count := 0
	tick = func() {
		count++
		if count < b.N {
			s.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.Schedule(0, tick)
	s.Run()
}

// singleTCPFlow runs one complete 10 MB transfer over the paper's lab path
// (40 Mbps bottleneck, 5 ms RTT, 4 BDP drop-tail queue) on simulator s.
func singleTCPFlow(s *sim.Simulator) {
	const (
		rate = 40 * units.Mbps
		rtt  = 5 * time.Millisecond
	)
	class := sim.NewClassifier()
	bdp := rate.BytesIn(rtt)
	fwd := sim.NewLink(s, sim.LinkConfig{Rate: rate, Delay: rtt / 2, QueueLimit: 4 * bdp}, class)
	c := tcp.NewConn(s, 1, fwd, class, sim.LinkConfig{Rate: 1 * units.Gbps, Delay: rtt / 2}, tcp.Config{})
	c.Fetch(10*units.MB, nil, nil)
	s.Run()
}

// BenchmarkSingleTCPFlow measures simulator cost per simulated bulk
// transfer: every segment and ack crosses the pooled event/packet path.
func BenchmarkSingleTCPFlow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		singleTCPFlow(sim.New())
	}
}

// BenchmarkTraceOffSpans measures the disabled-tracing hot path: the exact
// span-call shape the player makes per chunk (session/chunk/fetch spans,
// attributes, an annotation) against a nil Trace, which is what every
// instrumented call site sees when no tracer is installed. The contract is
// zero allocations per op — tracing must be free when off — and benchcheck
// gates it against BENCH_baseline.json like the other zero-alloc suites.
func BenchmarkTraceOffSpans(b *testing.B) {
	b.ReportAllocs()
	var tr *otrace.Trace
	for i := 0; i < b.N; i++ {
		sess := tr.StartAt(0, "player.session", "bench")
		ch := sess.StartChildAt(0, "player.chunk", "").SetAttr("index", float64(i))
		fetch := ch.StartChildAt(0, "tcp.fetch", "")
		fetch.AnnotateAt(0, "pace_rate_mbps", 12)
		fetch.SetAttr("bytes", 1e6).EndAt(time.Second)
		ch.EndAt(time.Second)
		sess.EndAt(2 * time.Second)
	}
}

// measureSimTimeRatio runs the single-flow workload on an instrumented
// simulator and reads back the obs TimeRatio gauge: simulated seconds
// advanced per wall-clock second.
func measureSimTimeRatio() float64 {
	reg := obs.NewRegistry()
	s := sim.New()
	s.SetMetrics(sim.NewMetrics(reg))
	singleTCPFlow(s)
	return reg.Gauge("sim_time_ratio").Value()
}

func toResult(r testing.BenchmarkResult) benchfmt.Result {
	return benchfmt.Result{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
		UsersPerSec: r.Extra["users/sec"],
	}
}

// toRateResult keeps only the custom rate metrics of a fixed-window pacing
// suite. ns/op and allocs/op are meaningless there — an "op" is a
// multi-second observation window over 10k live goroutines, so both track
// the window length and GC timing, not any code path benchcheck should
// gate.
func toRateResult(r testing.BenchmarkResult) benchfmt.Result {
	return benchfmt.Result{
		WakeupsPerSec:  r.Extra["wakeups/sec"],
		StreamsPerCore: r.Extra["streams/core"],
		RateErrP99Pct:  r.Extra["rate_err_p99_pct"],
	}
}

// loadgenResult runs the full-scale loadgen proof (50k concurrent paced
// streams against the real cdn.Server over in-memory pipes) and records
// the sustained stream count, p99 rate error, engine wakeup rate and
// streams/core. BENCH_LOADGEN_STREAMS scales it down for constrained
// boxes — but benchcheck holds the committed BENCH_sim.json to the
// baseline's stream count, so the checked-in numbers are always full
// scale.
func loadgenResult(t *testing.T) benchfmt.Result {
	streams := 50_000
	if s := os.Getenv("BENCH_LOADGEN_STREAMS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_LOADGEN_STREAMS=%q", s)
		}
		streams = n
	}
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Streams:   streams,
		Rate:      32 * units.Kbps,
		Warmup:    10 * time.Second,
		Duration:  30 * time.Second,
		Transport: "inproc",
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	t.Logf("%s", rep.String())
	if rep.Failed > 0 {
		t.Fatalf("loadgen: %d/%d streams failed", rep.Failed, rep.Streams)
	}
	return benchfmt.Result{
		Streams:        float64(rep.Completed),
		RateErrP99Pct:  rep.ErrP99,
		WakeupsPerSec:  rep.WakeupsPerSec,
		StreamsPerCore: rep.StreamsPerCore,
	}
}

// prePR3Baseline is the perf trajectory anchor: the same suites measured on
// the seed tree immediately before the allocation-free event-core rewrite
// (PR 3). BenchmarkScheduler/SingleTCPFlow did not exist then; their
// entries come from the equivalent internal benchmarks
// (sim.BenchmarkEventLoop, tcp.BenchmarkBulkTransfer).
var prePR3Baseline = map[string]benchfmt.Result{
	"Scheduler":          {NsPerOp: 67.7, AllocsPerOp: 1, BytesPerOp: 32},
	"SingleTCPFlow":      {NsPerOp: 12209399, AllocsPerOp: 69752, BytesPerOp: 3281831},
	"Table2ProductionAB": {NsPerOp: 320555501, AllocsPerOp: 646820, BytesPerOp: 68948674},
}

// TestWriteBenchJSON regenerates BENCH_sim.json. Gated behind BENCH_JSON=1
// because it runs full benchmarks (~10 s); CI runs it and uploads the file
// as an artifact, and cmd/benchcheck gates allocs/op regressions against
// BENCH_baseline.json.
func TestWriteBenchJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to regenerate BENCH_sim.json")
	}
	engine := toRateResult(testing.Benchmark(BenchmarkPacingEngineWakeups10k))
	sleep := toRateResult(testing.Benchmark(BenchmarkPacingSleepWakeups10k))
	var ratio benchfmt.Result
	if engine.WakeupsPerSec > 0 {
		ratio.WakeupRatio = sleep.WakeupsPerSec / engine.WakeupsPerSec
	}
	f := &benchfmt.File{
		Go:      runtime.Version(),
		History: map[string]map[string]benchfmt.Result{"pre_pr3": prePR3Baseline},
		Current: map[string]benchfmt.Result{
			"Scheduler":              toResult(testing.Benchmark(BenchmarkScheduler)),
			"SingleTCPFlow":          toResult(testing.Benchmark(BenchmarkSingleTCPFlow)),
			"Table2ProductionAB":     toResult(testing.Benchmark(BenchmarkTable2ProductionAB)),
			"TraceOffSpans":          toResult(testing.Benchmark(BenchmarkTraceOffSpans)),
			"PopulationSharded":      toResult(testing.Benchmark(BenchmarkPopulationSharded)),
			"PacingEngineWakeups10k": engine,
			"PacingSleepWakeups10k":  sleep,
			"PacingWakeupRatio10k":   ratio,
			"PacingStreamsPerCore":   toRateResult(testing.Benchmark(BenchmarkPacingStreamsPerCore)),
			"Loadgen50k":             loadgenResult(t),
		},
		SimTimeRatio: measureSimTimeRatio(),
	}
	if err := f.Write("BENCH_sim.json"); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_sim.json (sim_time_ratio = %.0f sim-s/wall-s)", f.SimTimeRatio)
}
