package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	trace "repro/internal/obs/trace"
)

// sampleTrace builds a two-session trace with known state durations:
// flow1 plays one chunk (decide 2ms, fetch 500ms), idles 300ms and stalls
// 100ms inside a 2s session; flow2 is a bare 1s session.
func sampleTrace(t *testing.T) string {
	t.Helper()
	tr := trace.New()

	f1 := tr.Session("flow1")
	sess := f1.StartAt(0, "player.session", "sammy")
	ch := sess.StartChildAt(100*time.Millisecond, "player.chunk", "").SetAttr("index", 0)
	dec := ch.StartChildAt(100*time.Millisecond, "abr.decide", "")
	dec.EndAt(102 * time.Millisecond)
	fetch := ch.StartChildAt(102*time.Millisecond, "tcp.fetch", "")
	fetch.AnnotateAt(110*time.Millisecond, "tcp.pace_rate", 8e6)
	fetch.SetAttr("bytes", 1<<20).EndAt(602 * time.Millisecond)
	ch.SetAttr("rung", 2).EndAt(602 * time.Millisecond)
	idle := sess.StartChildAt(700*time.Millisecond, "player.idle", "")
	idle.EndAt(1000 * time.Millisecond)
	stall := sess.StartChildAt(1200*time.Millisecond, "player.stall", "")
	stall.EndAt(1300 * time.Millisecond)
	sess.EndAt(2 * time.Second)

	f2 := tr.Session("flow2")
	s2 := f2.StartAt(0, "player.session", "control")
	s2.EndAt(1 * time.Second)

	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestStateOf(t *testing.T) {
	cases := map[string]string{
		"abr.decide":         "deciding",
		"pacing.rate":        "deciding",
		"bwest.estimate":     "deciding",
		"overload.admission": "queued",
		"tcp.fetch":          "fetching",
		"cdn.fetch":          "fetching",
		"netmodel.download":  "fetching",
		"player.idle":        "paced-idle",
		"player.stall":       "stalled",
		"player.session":     "",
		"player.chunk":       "",
		"cdn.attempt":        "", // nested inside cdn.fetch: not double-charged
	}
	for kind, want := range cases {
		if got := stateOf(kind); got != want {
			t.Errorf("stateOf(%q) = %q, want %q", kind, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	path := sampleTrace(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	sums := summarize(recs)
	if len(sums) != 2 {
		t.Fatalf("got %d sessions, want 2", len(sums))
	}
	s := sums[0]
	if s.ID != "flow1" {
		t.Fatalf("first session %q, want flow1 (sorted order)", s.ID)
	}
	if s.Chunks != 1 || s.Stalls != 1 {
		t.Errorf("chunks=%d stalls=%d, want 1/1", s.Chunks, s.Stalls)
	}
	if s.Duration != 2*time.Second {
		t.Errorf("duration %v, want 2s (player.session extent)", s.Duration)
	}
	want := map[string]time.Duration{
		"deciding":   2 * time.Millisecond,
		"fetching":   500 * time.Millisecond,
		"paced-idle": 300 * time.Millisecond,
		"stalled":    100 * time.Millisecond,
		"queued":     0,
	}
	for st, d := range want {
		if got := s.States[st]; got != d {
			t.Errorf("state %s = %v, want %v", st, got, d)
		}
	}
	if sums[1].ID != "flow2" || sums[1].Spans != 1 {
		t.Errorf("second session = %+v, want flow2 with 1 span", sums[1])
	}
}

func TestReportCommand(t *testing.T) {
	path := sampleTrace(t)
	out, errOut, code := runCmd(t, "report", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"session flow1: 2.000s, 1 chunks",
		fmt.Sprintf("  %-12s %12s  %6s", "fetching", "0.500s", "25.0%"),
		fmt.Sprintf("  %-12s %12s  %6s", "paced-idle", "0.300s", "15.0%"),
		fmt.Sprintf("  %-12s %12s  %6s", "stalled", "0.100s", "5.0%"),
		fmt.Sprintf("  %-12s %12s  %6s", "deciding", "0.002s", "0.1%"),
		"session flow2: 1.000s",
		"total: 2 sessions, 1 chunks, 3.000s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportTimeline(t *testing.T) {
	path := sampleTrace(t)
	out, _, code := runCmd(t, "-timeline", "report", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"player.session(sammy)",
		"    [0.100s +0.502s] player.chunk index=0 rung=2",
		"      [0.100s +0.002s] abr.decide",
		"! tcp.pace_rate v=8e+06",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestSessionsCommand(t *testing.T) {
	path := sampleTrace(t)
	out, _, code := runCmd(t, "sessions", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "flow1") || !strings.Contains(out, "flow2") {
		t.Errorf("sessions output missing flows:\n%s", out)
	}
}

func TestChromeCommand(t *testing.T) {
	path := sampleTrace(t)
	out, _, code := runCmd(t, "chrome", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "[\n") || !strings.HasSuffix(out, "]\n") {
		t.Errorf("chrome output not a JSON array:\n%s", out)
	}
	if !strings.Contains(out, `"thread_name"`) || !strings.Contains(out, `"ph":"X"`) {
		t.Errorf("chrome output missing events:\n%s", out)
	}
}

func TestMergeDeterministic(t *testing.T) {
	path := sampleTrace(t)
	// Merging the same file twice in either order yields identical bytes.
	a, _, code := runCmd(t, "merge", path, path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	b, _, _ := runCmd(t, "merge", path, path)
	if a != b {
		t.Error("merge output not deterministic")
	}
	if lines := strings.Count(a, "\n"); lines != 16 {
		t.Errorf("merged line count %d, want 16 (8 records x2)", lines)
	}
}

func TestFilters(t *testing.T) {
	path := sampleTrace(t)
	out, _, code := runCmd(t, "-trace", "flow2", "sessions", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "flow1") {
		t.Errorf("-trace filter leaked flow1:\n%s", out)
	}
	out, _, _ = runCmd(t, "-kind", "player.stall", "merge", path)
	if strings.Count(out, "\n") != 1 || !strings.Contains(out, "player.stall") {
		t.Errorf("-kind filter wrong:\n%s", out)
	}
}

func TestBadUsage(t *testing.T) {
	if _, _, code := runCmd(t, "report"); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if _, _, code := runCmd(t, "bogus", "x.jsonl"); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
}
