package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	trace "repro/internal/obs/trace"
)

// The harm/QoE attribution buckets. Every span kind maps to at most one
// state; the report charges each session's wall clock to them:
//
//	deciding    control-plane work: ABR decision, pace-rate computation,
//	            bandwidth estimation (instants — typically ~0 time).
//	queued      server-side admission and FIFO queueing (overload.*) —
//	            time the paced edge made the client wait.
//	fetching    bytes on the wire: simulated TCP fetches, analytic
//	            downloads, real HTTP chunk fetches.
//	paced-idle  intentional off periods while the buffer is full — the
//	            smoothing the paper buys; harmless by design.
//	stalled     rebuffering — the QoE harm smoothing must not cause.
var states = []string{"deciding", "queued", "fetching", "paced-idle", "stalled"}

// stateOf maps a span kind to its attribution state ("" = unattributed;
// structural spans like player.session and player.chunk contain the others
// and are not charged themselves).
func stateOf(kind string) string {
	switch {
	case strings.HasPrefix(kind, "abr.") || strings.HasPrefix(kind, "pacing.") ||
		strings.HasPrefix(kind, "bwest."):
		return "deciding"
	case strings.HasPrefix(kind, "overload."):
		return "queued"
	case kind == "tcp.fetch" || kind == "cdn.fetch" || kind == "netmodel.download":
		return "fetching"
	case kind == "player.idle":
		return "paced-idle"
	case kind == "player.stall":
		return "stalled"
	}
	return ""
}

// sessionStats is one trace's summary.
type sessionStats struct {
	ID       string
	Spans    int
	Chunks   int
	Stalls   int
	Errors   int
	Duration time.Duration // the player.session span, else the record extent
	States   map[string]time.Duration
}

// summarize groups records by trace id and computes per-session stats,
// returned in sorted trace-id order.
func summarize(recs []trace.Record) []sessionStats {
	byID := make(map[string]*sessionStats)
	var order []string
	ends := make(map[string]time.Duration)
	starts := make(map[string]time.Duration)
	rooted := make(map[string]bool)
	for _, r := range recs {
		s := byID[r.TraceID]
		if s == nil {
			s = &sessionStats{ID: r.TraceID, States: make(map[string]time.Duration)}
			byID[r.TraceID] = s
			order = append(order, r.TraceID)
			starts[r.TraceID] = r.Start
		}
		s.Spans++
		if r.Start < starts[r.TraceID] {
			starts[r.TraceID] = r.Start
		}
		if end := r.Start + r.Dur; end > ends[r.TraceID] {
			ends[r.TraceID] = end
		}
		switch r.Kind {
		case "player.session":
			// The root span's extent beats the min/max fallback: it includes
			// trailing playback the child spans do not cover.
			if !rooted[r.TraceID] || r.Dur > s.Duration {
				s.Duration = r.Dur
				rooted[r.TraceID] = true
			}
		case "player.chunk":
			s.Chunks++
		case "player.stall":
			s.Stalls++
		}
		if st := stateOf(r.Kind); st != "" && !r.Instant {
			s.States[st] += r.Dur
		}
		for _, a := range r.Attrs {
			if a.Key == "error" {
				s.Errors++
				break
			}
		}
	}
	sort.Strings(order)
	out := make([]sessionStats, 0, len(order))
	for _, id := range order {
		s := byID[id]
		if !rooted[id] {
			s.Duration = ends[id] - starts[id]
		}
		out = append(out, *s)
	}
	return out
}

// fmtDur renders a duration deterministically as seconds with millisecond
// precision.
func fmtDur(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64) + "s"
}

// pct renders part/whole as a fixed-point percentage ("0.0%" when whole
// is zero).
func pct(part, whole time.Duration) string {
	if whole <= 0 {
		return "0.0%"
	}
	return strconv.FormatFloat(100*float64(part)/float64(whole), 'f', 1, 64) + "%"
}

// writeSessions prints the one-line-per-trace listing.
func writeSessions(w io.Writer, recs []trace.Record) error {
	sums := summarize(recs)
	if len(sums) == 0 {
		_, err := fmt.Fprintln(w, "no sessions")
		return err
	}
	for _, s := range sums {
		if _, err := fmt.Fprintf(w, "%-24s %4d spans  %3d chunks  %2d stalls  %s\n",
			s.ID, s.Spans, s.Chunks, s.Stalls, fmtDur(s.Duration)); err != nil {
			return err
		}
	}
	return nil
}

// writeReport prints the per-session time-in-state attribution and, with
// timeline, the full span tree.
func writeReport(w io.Writer, recs []trace.Record, timeline bool) error {
	sums := summarize(recs)
	if len(sums) == 0 {
		_, err := fmt.Fprintln(w, "no sessions")
		return err
	}
	trace.SortRecords(recs)
	totals := make(map[string]time.Duration)
	var totalDur time.Duration
	var totalStalls, totalChunks int
	for _, s := range sums {
		if _, err := fmt.Fprintf(w, "session %s: %s, %d chunks, %d spans, %d stalls",
			s.ID, fmtDur(s.Duration), s.Chunks, s.Spans, s.Stalls); err != nil {
			return err
		}
		if s.Errors > 0 {
			if _, err := fmt.Fprintf(w, ", %d errors", s.Errors); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		var attributed time.Duration
		for _, st := range states {
			d := s.States[st]
			attributed += d
			totals[st] += d
			if _, err := fmt.Fprintf(w, "  %-12s %12s  %6s\n", st, fmtDur(d), pct(d, s.Duration)); err != nil {
				return err
			}
		}
		if other := s.Duration - attributed; other > 0 {
			if _, err := fmt.Fprintf(w, "  %-12s %12s  %6s\n", "(other)", fmtDur(other), pct(other, s.Duration)); err != nil {
				return err
			}
		}
		totalDur += s.Duration
		totalStalls += s.Stalls
		totalChunks += s.Chunks
		if timeline {
			if err := writeTimeline(w, recs, s.ID); err != nil {
				return err
			}
		}
	}
	// The harm ledger: stalled time is the QoE cost, paced-idle the
	// smoothing benefit bought at that cost.
	if _, err := fmt.Fprintf(w, "total: %d sessions, %d chunks, %s; harm %s stalled (%d stalls), smoothing %s paced-idle\n",
		len(sums), totalChunks, fmtDur(totalDur),
		pct(totals["stalled"], totalDur), totalStalls,
		pct(totals["paced-idle"], totalDur)); err != nil {
		return err
	}
	return nil
}

// writeTimeline prints the indented span tree for one trace. recs must be
// sorted (SortRecords); children print in span-id (creation) order.
func writeTimeline(w io.Writer, recs []trace.Record, traceID string) error {
	children := make(map[uint64][]trace.Record)
	present := make(map[uint64]bool)
	var mine []trace.Record
	for _, r := range recs {
		if r.TraceID != traceID {
			continue
		}
		mine = append(mine, r)
		present[r.SpanID] = true
	}
	var roots []trace.Record
	for _, r := range mine {
		if r.Parent != 0 && present[r.Parent] {
			children[r.Parent] = append(children[r.Parent], r)
		} else {
			// Orphans (e.g. a filtered-out parent, or a server-side span
			// joined from another file) print as roots.
			roots = append(roots, r)
		}
	}
	var emit func(r trace.Record, depth int) error
	emit = func(r trace.Record, depth int) error {
		marker := ""
		if r.Instant {
			marker = " !"
		}
		if _, err := fmt.Fprintf(w, "  %s[%s +%s]%s %s%s\n",
			strings.Repeat("  ", depth), fmtDur(r.Start), fmtDur(r.Dur), marker,
			spanLabel(r), attrSuffix(r.Attrs)); err != nil {
			return err
		}
		for _, c := range children[r.SpanID] {
			if err := emit(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := emit(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// spanLabel is "kind" or "kind(name)" when the name adds information.
func spanLabel(r trace.Record) string {
	if r.Name != "" && r.Name != r.Kind {
		return r.Kind + "(" + r.Name + ")"
	}
	return r.Kind
}

// attrSuffix renders attrs as " k=v k=v" in stored order.
func attrSuffix(attrs []trace.Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		if a.IsStr {
			b.WriteString(strconv.Quote(a.Str))
		} else {
			b.WriteString(strconv.FormatFloat(a.Val, 'g', -1, 64))
		}
	}
	return b.String()
}
