// Command sammy-trace post-processes span traces written by sammy-eval
// -trace, sammy-server -trace-out, or any trace.Tracer exporter. It reads
// one or more JSONL trace files (merging them when several are given) and
// renders them as per-session reports, Chrome trace-event JSON, or merged
// canonical JSONL.
//
// Usage:
//
//	sammy-trace [flags] <report|sessions|chrome|merge> file.jsonl...
//
// Subcommands:
//
//	report    per-session timelines with time-in-state attribution: how
//	          much of each session went to deciding (ABR/pacing/bandwidth
//	          estimation), queued (server admission), fetching, paced-idle
//	          (intentional off periods) and stalled (rebuffering, the QoE
//	          harm) — the smoothing-vs-harm ledger of the paper's §5.
//	sessions  one line per trace: span counts, chunk counts, duration.
//	chrome    convert to a Chrome trace-event JSON array, loadable in
//	          Perfetto (ui.perfetto.dev) or chrome://tracing.
//	merge     canonical sorted JSONL (stable across input file order).
//
// Flags filter before any subcommand runs: -trace keeps only sessions
// whose id contains the substring, -kind keeps only spans whose kind
// matches. -timeline adds the full span tree to report output. -o writes
// to a file instead of stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	trace "repro/internal/obs/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sammy-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	traceFilter := fs.String("trace", "", "keep only sessions whose trace id contains this substring")
	kindFilter := fs.String("kind", "", "keep only spans whose kind contains this substring")
	timeline := fs.Bool("timeline", false, "report: include the full indented span tree per session")
	out := fs.String("o", "", "write output to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sammy-trace [flags] <report|sessions|chrome|merge> file.jsonl...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 2 {
		fs.Usage()
		return 2
	}
	cmd, paths := fs.Arg(0), fs.Args()[1:]

	recs, err := loadRecords(paths)
	if err != nil {
		fmt.Fprintf(stderr, "sammy-trace: %v\n", err)
		return 2
	}
	recs = filterRecords(recs, *traceFilter, *kindFilter)

	w := stdout
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			fmt.Fprintf(stderr, "sammy-trace: %v\n", cerr)
			return 2
		}
		defer f.Close()
		w = f
	}

	switch cmd {
	case "report":
		err = writeReport(w, recs, *timeline)
	case "sessions":
		err = writeSessions(w, recs)
	case "chrome":
		err = trace.WriteChromeRecords(w, recs)
	case "merge":
		trace.SortRecords(recs)
		err = trace.WriteJSONLRecords(w, recs)
	default:
		fmt.Fprintf(stderr, "sammy-trace: unknown subcommand %q\n", cmd)
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "sammy-trace: %v\n", err)
		return 1
	}
	return 0
}

// loadRecords reads and concatenates every JSONL input file.
func loadRecords(paths []string) ([]trace.Record, error) {
	var recs []trace.Record
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		got, err := trace.ReadRecords(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		recs = append(recs, got...)
	}
	return recs, nil
}

// filterRecords applies the -trace and -kind substring filters.
func filterRecords(recs []trace.Record, traceSub, kindSub string) []trace.Record {
	if traceSub == "" && kindSub == "" {
		return recs
	}
	out := recs[:0]
	for _, r := range recs {
		if traceSub != "" && !strings.Contains(r.TraceID, traceSub) {
			continue
		}
		if kindSub != "" && !strings.Contains(r.Kind, kindSub) {
			continue
		}
		out = append(out, r)
	}
	return out
}
