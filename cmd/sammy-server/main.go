// Command sammy-server runs the real-HTTP chunk server with
// application-informed pacing: clients request a pace rate via the
// X-Sammy-Pace-Rate-Bps header (or a CMCD rtp key) and the server limits
// its sending rate accordingly, like a Fastly/Akamai edge honouring the
// paper's header-driven pacing.
//
// The server is fully instrumented: live counters and histograms (request
// counts, pace-rate distribution, pacer sleeps, bytes served) are exposed
// at /debug/vars via expvar under the "sammy" key, profiling endpoints are
// mounted at /debug/pprof/, and a periodic log line summarizes the
// registry.
//
// Usage:
//
//	sammy-server [-addr :8404] [-burst 4] [-metrics-interval 30s]
//
// Inspect live metrics:
//
//	curl localhost:8404/debug/vars | python3 -m json.tool
//	go tool pprof localhost:8404/debug/pprof/profile
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/cdn"
	"repro/internal/obs"
	"repro/internal/units"
)

func main() {
	addr := flag.String("addr", ":8404", "listen address")
	burst := flag.Int("burst", 4, "pacing burst in 1500-byte packets")
	kernel := flag.Bool("kernel", false, "enforce pacing with SO_MAX_PACING_RATE (Linux; falls back to user space)")
	interval := flag.Duration("metrics-interval", 30*time.Second, "period between metrics log lines (0 disables)")
	events := flag.Int("events", 4096, "event recorder ring size (0 disables event tracing)")
	flag.Parse()

	reg := obs.NewRegistry()
	if *events > 0 {
		reg.SetRecorder(obs.NewRecorder(*events))
	}
	reg.Publish("sammy")
	metrics := cdn.NewMetrics(reg)

	handler := &cdn.Server{
		Burst:        units.Bytes(*burst) * 1500,
		KernelPacing: *kernel,
		Metrics:      metrics,
	}
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ConnContext:       cdn.ConnContext,
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *interval > 0 {
		go func() {
			for range time.Tick(*interval) {
				log.Printf("metrics: requests=%d paced=%d failed=%d bytes=%d pace_p50=%.1fMbps sleep_p95=%.2fms",
					metrics.Requests.Value(), metrics.PacedRequests.Value(),
					metrics.RequestsFailed.Value(), metrics.BytesServed.Value(),
					metrics.PaceRateMbps.Quantile(0.5), metrics.PacerSleepMs.Quantile(0.95))
			}
		}()
	}

	mode := "user-space token bucket"
	if *kernel {
		mode = "kernel SO_MAX_PACING_RATE"
	}
	hostport := *addr
	if strings.HasPrefix(hostport, ":") {
		hostport = "localhost" + hostport
	}
	fmt.Printf("sammy-server listening on %s (pacing burst %d packets, %s)\n", *addr, *burst, mode)
	fmt.Printf("try: curl -H 'X-Sammy-Pace-Rate-Bps: 8000000' 'http://%s/chunk?size=4000000' -o /dev/null\n", hostport)
	fmt.Printf("metrics: curl %[1]s/debug/vars   profiling: go tool pprof %[1]s/debug/pprof/profile\n", hostport)
	log.Fatal(srv.ListenAndServe())
}
