// Command sammy-server runs the real-HTTP chunk server with
// application-informed pacing: clients request a pace rate via the
// X-Sammy-Pace-Rate-Bps header (or a CMCD rtp key) and the server limits
// its sending rate accordingly, like a Fastly/Akamai edge honouring the
// paper's header-driven pacing.
//
// Usage:
//
//	sammy-server [-addr :8404] [-burst 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/cdn"
	"repro/internal/units"
)

func main() {
	addr := flag.String("addr", ":8404", "listen address")
	burst := flag.Int("burst", 4, "pacing burst in 1500-byte packets")
	kernel := flag.Bool("kernel", false, "enforce pacing with SO_MAX_PACING_RATE (Linux; falls back to user space)")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           &cdn.Server{Burst: units.Bytes(*burst) * 1500, KernelPacing: *kernel},
		ConnContext:       cdn.ConnContext,
		ReadHeaderTimeout: 5 * time.Second,
	}
	mode := "user-space token bucket"
	if *kernel {
		mode = "kernel SO_MAX_PACING_RATE"
	}
	fmt.Printf("sammy-server listening on %s (pacing burst %d packets, %s)\n", *addr, *burst, mode)
	fmt.Println("try: curl -H 'X-Sammy-Pace-Rate-Bps: 8000000' 'http://localhost:8404/chunk?size=4000000' -o /dev/null")
	log.Fatal(srv.ListenAndServe())
}
