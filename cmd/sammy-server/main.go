// Command sammy-server runs the real-HTTP chunk server with
// application-informed pacing: clients request a pace rate via the
// X-Sammy-Pace-Rate-Bps header (or a CMCD rtp key) and the server limits
// its sending rate accordingly, like a Fastly/Akamai edge honouring the
// paper's header-driven pacing.
//
// Because pacing deliberately holds connections open (per-request residency
// grows with the pace budget), the server protects itself under load: an
// admission controller caps concurrent streams (-max-inflight) with a
// bounded FIFO wait queue (-queue, -queue-timeout), excess load is shed
// with 503 + Retry-After, a per-client token bucket (-per-client-rps)
// contains greedy clients, and a per-write stall watchdog (-stall-timeout)
// kills streams whose receiver stopped reading. On SIGINT/SIGTERM the
// server stops accepting, /readyz flips to "draining", in-flight paced
// streams get up to -drain-timeout to finish, and whatever remains is
// hard-cancelled.
//
// The server is fully instrumented: live counters and histograms (request
// counts, pace-rate distribution, pacer sleeps, bytes served, admission
// and shed decisions) are exposed at /debug/vars via expvar under the
// "sammy" key and in Prometheus text exposition format at /metrics,
// profiling endpoints are mounted at /debug/pprof/, and a periodic log
// line summarizes the registry. With -trace-out the server records a span
// per request — admission/queueing and the paced body write, joined to
// the client's trace when the request carries an X-Sammy-Trace header —
// streaming them to the file as JSONL; /debug/sammy renders the live
// trace inspector either way.
//
// Usage:
//
//	sammy-server [-addr :8404] [-burst 4] [-max-inflight 256] [-queue 64]
//	             [-queue-timeout 5s] [-drain-timeout 30s] [-per-client-rps 0]
//	             [-stall-timeout 30s] [-metrics-interval 30s]
//	             [-trace-out spans.jsonl]
//
// Inspect live state:
//
//	curl localhost:8404/metrics
//	curl localhost:8404/debug/vars | python3 -m json.tool
//	curl localhost:8404/debug/sammy
//	curl -i localhost:8404/readyz
//	go tool pprof localhost:8404/debug/pprof/profile
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cdn"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/overload"
	"repro/internal/pacing"
	"repro/internal/units"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8404", "listen address")
	burst := flag.Int("burst", 4, "pacing burst in 1500-byte packets")
	kernel := flag.Bool("kernel", false, "enforce pacing with SO_MAX_PACING_RATE (Linux; falls back to user space)")
	interval := flag.Duration("metrics-interval", 30*time.Second, "period between metrics log lines (0 disables)")
	events := flag.Int("events", 4096, "event recorder ring size (0 disables event tracing)")
	maxInflight := flag.Int("max-inflight", overload.DefaultMaxInFlight, "max concurrent admitted streams")
	queueDepth := flag.Int("queue", overload.DefaultMaxQueue, "admission wait-queue depth (negative disables queueing)")
	queueTimeout := flag.Duration("queue-timeout", overload.DefaultQueueTimeout, "per-request admission queue deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight streams after SIGINT/SIGTERM before hard-cancel")
	perClientRPS := flag.Float64("per-client-rps", 0, "per-client request rate limit (0 disables)")
	stallTimeout := flag.Duration("stall-timeout", 30*time.Second, "per-write progress deadline killing stalled readers (0 disables)")
	retryAfter := flag.Duration("retry-after", overload.DefaultRetryAfter, "Retry-After hint sent with shed responses")
	traceOut := flag.String("trace-out", "", "record request spans and stream them to this file as JSONL (\"-\" for stdout); also feeds /debug/sammy")
	traceFlush := flag.Duration("trace-flush", time.Second, "span flush period for -trace-out")
	flag.Parse()

	reg := obs.NewRegistry()
	if *events > 0 {
		reg.SetRecorder(obs.NewRecorder(*events))
	}
	reg.Publish("sammy")
	metrics := cdn.NewMetrics(reg)

	// With -trace-out, record a span per request (admission, serve, paced
	// write) and stream completed spans to the sink; the live inspector at
	// /debug/sammy reads the same tracer. Without it the tracer stays nil
	// and every span call is a no-op.
	var tracer *otrace.Tracer
	var flusher *otrace.Flusher
	if *traceOut != "" {
		tracer = otrace.New()
		sink := os.Stdout
		if *traceOut != "-" {
			f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Printf("sammy-server: trace output: %v", err)
				return 1
			}
			defer f.Close()
			sink = f
		}
		flusher = otrace.NewFlusher(tracer, sink, *traceFlush)
	}
	stopFlusher := func() {
		if flusher == nil {
			return
		}
		if err := flusher.Stop(); err != nil {
			log.Printf("sammy-server: trace flush: %v", err)
		}
	}

	ctrl := overload.New(overload.Config{
		MaxInFlight:  *maxInflight,
		MaxQueue:     *queueDepth,
		QueueTimeout: *queueTimeout,
		RetryAfter:   *retryAfter,
		PerClientRPS: *perClientRPS,
		StallTimeout: *stallTimeout,
	}, overload.NewMetrics(reg))
	ctrl.Tracer = tracer

	// The server owns its pacing engine explicitly (rather than sharing
	// pacing.Default) so drain can close it and the stats below are scoped
	// to this process's streams.
	engine := pacing.NewEngine(pacing.EngineConfig{})

	handler := &cdn.Server{
		Burst:        units.Bytes(*burst) * 1500,
		KernelPacing: *kernel,
		Engine:       engine,
		Metrics:      metrics,
		Tracer:       tracer,
	}
	mux := http.NewServeMux()
	mux.Handle("/", ctrl.Middleware(handler))
	mux.HandleFunc("/healthz", ctrl.Healthz)
	mux.HandleFunc("/readyz", ctrl.Readyz)
	mux.Handle("/metrics", obs.PrometheusHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/sammy", &otrace.Inspector{
		Tracer: tracer,
		Vars: func() map[string]string {
			es := engine.Stats()
			v := map[string]string{
				"in_flight":      strconv.Itoa(ctrl.InFlight()),
				"draining":       strconv.FormatBool(ctrl.Draining()),
				"paced_streams":  strconv.Itoa(es.Streams),
				"parked_streams": strconv.Itoa(es.Parked),
			}
			if m := metrics; m != nil {
				v["requests"] = strconv.FormatInt(m.Requests.Value(), 10)
				v["bytes_served"] = strconv.FormatInt(m.BytesServed.Value(), 10)
			}
			if om := ctrl.Metrics; om != nil {
				v["shed"] = strconv.FormatInt(om.Shed.Value(), 10)
			}
			return v
		},
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// baseCtx parents every request context; cancelling it is the
	// hard-cancel that aborts paced streams still running when the drain
	// grace expires.
	baseCtx, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()

	// WriteTimeout would kill a long paced stream mid-body, so the paced
	// path is exempted by the overload stall watchdog instead: it pushes
	// the write deadline out on every write that makes progress, turning
	// the whole-response deadline into a per-write one. With the watchdog
	// disabled there is no exemption mechanism, so no server deadline
	// either — the pacer would be capped at WriteTimeout per response.
	writeTimeout := 2 * *stallTimeout
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	// Kernel pacing plus one cached engine stream per connection (re-keyed
	// in place when a keep-alive connection changes its pace rate).
	cdn.EnableConnPacing(srv)

	// Periodic metrics logging on a stoppable ticker (time.Tick would leak
	// the goroutine past shutdown).
	logDone := make(chan struct{})
	var logWG sync.WaitGroup
	if *interval > 0 {
		ticker := time.NewTicker(*interval)
		logWG.Add(1)
		go func() {
			defer logWG.Done()
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if m, om := metrics, ctrl.Metrics; m != nil && om != nil {
						es := engine.Stats()
						log.Printf("metrics: requests=%d paced=%d failed=%d bytes=%d inflight=%d shed=%d pace_p50=%.1fMbps sleep_p95=%.2fms engine_streams=%d parked=%d wakeups=%d released=%d",
							m.Requests.Value(), m.PacedRequests.Value(),
							m.RequestsFailed.Value(), m.BytesServed.Value(),
							ctrl.InFlight(), om.Shed.Value(),
							m.PaceRateMbps.Quantile(0.5), m.PacerSleepMs.Quantile(0.95),
							es.Streams, es.Parked, es.Wakeups, es.Released)
					}
				case <-logDone:
					return
				}
			}
		}()
	}
	stopLogging := func() {
		close(logDone)
		logWG.Wait()
	}

	mode := "user-space token bucket"
	if *kernel {
		mode = "kernel SO_MAX_PACING_RATE"
	}
	hostport := *addr
	if strings.HasPrefix(hostport, ":") {
		hostport = "localhost" + hostport
	}
	fmt.Printf("sammy-server listening on %s (pacing burst %d packets, %s, max-inflight %d, queue %d)\n",
		*addr, *burst, mode, *maxInflight, *queueDepth)
	fmt.Printf("try: curl -H 'X-Sammy-Pace-Rate-Bps: 8000000' 'http://%s/chunk?size=4000000' -o /dev/null\n", hostport)
	fmt.Printf("metrics: curl %[1]s/metrics (or /debug/vars)   traces: curl %[1]s/debug/sammy   readiness: curl %[1]s/readyz\n", hostport)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		// The listener died before any signal: a real startup/serve error
		// (port in use, permission denied). This is the only path that
		// exits non-zero.
		stopLogging()
		stopFlusher()
		engine.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("sammy-server: listen and serve: %v", err)
			return 1
		}
		return 0
	case <-sigCtx.Done():
		stop() // restore default signal behaviour: a second ^C kills immediately
	}

	// Graceful drain: stop accepting, advertise draining via /readyz, shed
	// queued work, and give in-flight paced streams the grace period.
	log.Printf("sammy-server: signal received, draining up to %v (in-flight %d)", *drainTimeout, ctrl.InFlight())
	ctrl.StartDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Grace expired with streams still in flight: hard-cancel their
		// request contexts (the paced writer aborts at its next burst) and
		// close their connections.
		log.Printf("sammy-server: drain timeout (%v), hard-cancelling %d in-flight stream(s)", *drainTimeout, ctrl.InFlight())
		hardCancel()
		srv.Close()
	}
	<-serveErr // ListenAndServe has returned http.ErrServerClosed
	stopLogging()
	stopFlusher()
	// Every connection is closed by now, so EnableConnPacing has released
	// each per-connection stream; Close just stops the wheel runners.
	engine.Close()
	log.Printf("sammy-server: drained, bye")
	return 0
}
