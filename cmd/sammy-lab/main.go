// Command sammy-lab runs individual packet-level lab scenarios (the §6
// experiments) and prints traces and comparisons, for interactive
// exploration beyond what sammy-eval's fixed figures report.
//
// Usage:
//
//	sammy-lab [-chunks 90] [-seed 1] [-metrics] <single|udp|tcp|http|video|burst|ablation>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fault"
	"repro/internal/lab"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	chunks := flag.Int("chunks", 90, "session length in 4s chunks")
	seed := flag.Int64("seed", 1, "scenario seed")
	metrics := flag.Bool("metrics", false, "collect live metrics during the run and print a registry snapshot")
	events := flag.String("events", "", "also write the event trace as JSONL to this file (with -metrics)")
	chaosName := flag.String("chaos", "", "run the single-flow scenario over a faulty bottleneck ("+
		strings.Join(fault.ScenarioNames(), ", ")+")")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sammy-lab [flags] <single|udp|tcp|http|video|burst|ablation|approaches|pairings>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	scenario, err := fault.LookupScenario(*chaosName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-lab: %v\n", err)
		os.Exit(2)
	}
	labCfg := lab.Config{Faults: scenario.Path, FaultSeed: *seed}

	// Install a process-wide registry before any scenario builds its
	// simulator, so sim/tcp/player instrumentation attaches automatically.
	if *metrics {
		reg := obs.NewRegistry()
		reg.SetRecorder(obs.NewRecorder(65536))
		obs.SetDefault(reg)
		defer func() {
			fmt.Println("==== metrics snapshot ====")
			fmt.Print(reg.Snapshot())
			rec := reg.Recorder()
			fmt.Printf("events recorded: %d (retained %d)\n", rec.Total(), rec.Len())
			if *events != "" {
				f, err := os.Create(*events)
				if err != nil {
					fmt.Fprintf(os.Stderr, "sammy-lab: %v\n", err)
					return
				}
				defer f.Close()
				if err := rec.WriteJSONL(f); err != nil {
					fmt.Fprintf(os.Stderr, "sammy-lab: write %s: %v\n", *events, err)
					return
				}
				fmt.Printf("wrote %s\n", *events)
			}
		}()
	}

	switch flag.Arg(0) {
	case "single":
		control := lab.SingleFlowOn(labCfg, lab.ControlController(), *chunks, *seed)
		sammy := lab.SingleFlowOn(labCfg, lab.SammyController(), *chunks, *seed)
		if labCfg.Faults != nil {
			fmt.Printf("fault scenario %q: control dropped %d burst / %d blackout packets, "+
				"sammy %d / %d\n", scenario.Name,
				control.BurstDrops, control.BlackoutDrops, sammy.BurstDrops, sammy.BlackoutDrops)
		}
		fmt.Println("control:")
		fmt.Print(trace.ASCII(control.Throughput, 110, 8))
		fmt.Print(trace.ASCII(control.RTT, 110, 5))
		fmt.Println("sammy:")
		fmt.Print(trace.ASCII(sammy.Throughput, 110, 8))
		fmt.Print(trace.ASCII(sammy.RTT, 110, 5))
		fmt.Println("CSV (control throughput, sammy throughput):")
		fmt.Print(trace.CSV(control.Throughput, sammy.Throughput))
	case "udp":
		r := lab.UDPNeighbor(*chunks, *seed)
		fmt.Printf("UDP one-way delay: control %.2f ms, sammy %.2f ms (%+.1f%%)\n",
			r.Control, r.Sammy, r.ImprovementPct())
	case "tcp":
		r := lab.TCPNeighbor(*chunks, *seed)
		fmt.Printf("TCP neighbor throughput: control %.1f Mbps, sammy %.1f Mbps (%+.1f%%)\n",
			r.Control, r.Sammy, r.ImprovementPct())
	case "http":
		r := lab.HTTPNeighbor(*chunks, *seed)
		fmt.Printf("HTTP response time: control %.0f ms, sammy %.0f ms (%+.1f%%)\n",
			r.Control, r.Sammy, r.ImprovementPct())
	case "video":
		r := lab.VideoNeighbor(15, 4, *seed)
		fmt.Printf("neighbor video play delay: control %.0f ms, sammy %.0f ms (%+.1f%%)\n",
			r.Control, r.Sammy, r.ImprovementPct())
	case "burst":
		for _, p := range lab.BurstSizeExperiment([]int{4, 8, 16, 24, 32, 40}, *chunks, *seed) {
			fmt.Printf("burst %2d: retx %.4f (%+.1f%%) tput %v\n",
				p.Burst, p.RetxFraction, p.RetxChangePct, p.Throughput)
		}
	case "ablation":
		for _, r := range lab.AblationLimiters(40, *seed) {
			fmt.Printf("%-13s retx %.4f tput %v rtt %.1fms\n",
				r.Name, r.RetxFraction, r.Throughput, r.MeanRTTms)
		}
	case "approaches":
		for _, r := range lab.CompareApproaches(*chunks, *seed) {
			fmt.Printf("%-10s solo %v (rtt %.1fms) neighbor %v vmaf %.1f\n",
				r.Name, r.SoloThroughput, r.SoloRTT, r.NeighborThroughput, r.VMAF)
		}
	case "pairings":
		for _, r := range lab.BothSammy(60, *seed) {
			fmt.Printf("%-16s rtt %.1fms drops %d peakQ %dB\n",
				r.Pairing, r.MedianRTT, r.Drops, r.PeakQueue)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
