// Command sammy-player streams a synthetic title from a sammy-server over
// real HTTP, running the full Sammy decision loop: per chunk it selects a
// bitrate with the production-style ABR and a pace rate with Sammy's
// buffer-interpolated multiplier, sending the pace rate to the server in
// the request headers.
//
// Usage:
//
//	sammy-player [-url http://localhost:8404] [-chunks 20] [-mode sammy|control|naive] [-realtime]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/abr"
	"repro/internal/cdn"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/video"
)

func main() {
	url := flag.String("url", "http://localhost:8404", "sammy-server base URL")
	chunks := flag.Int("chunks", 20, "number of chunks to stream")
	chunkDur := flag.Duration("chunk-duration", 4*time.Second, "chunk duration")
	mode := flag.String("mode", "sammy", "controller: sammy, control or naive")
	realtime := flag.Bool("realtime", false, "wait out off periods on the wall clock")
	flag.Parse()

	var ctrl *core.Controller
	switch *mode {
	case "sammy":
		ctrl = core.NewSammy(abr.Production{}, core.DefaultC0, core.DefaultC1)
	case "control":
		ctrl = core.NewControl(abr.Production{})
	case "naive":
		ctrl = core.NewNaiveBaseline(abr.Production{}, 4)
	default:
		fmt.Fprintf(os.Stderr, "sammy-player: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	title := cdn.NewDemoTitle(*chunks, *chunkDur)
	fmt.Printf("streaming %d x %v chunks (%s), ladder top %v\n",
		*chunks, *chunkDur, *mode, title.Ladder.Top().Bitrate)

	report, err := cdn.StreamSession(context.Background(), cdn.SessionConfig{
		Controller: ctrl,
		Title:      title,
		Client:     &cdn.Client{BaseURL: *url},
		Realtime:   *realtime,
		OnChunk: func(i int, rung video.Rung, pace units.BitsPerSecond, res cdn.FetchResult) {
			paceStr := "unpaced"
			if pace > 0 {
				paceStr = pace.String()
			}
			fmt.Printf("chunk %3d  rung %v  pace %-10s  got %v in %v (%v)\n",
				i, rung.Bitrate, paceStr, res.Size,
				res.Duration.Round(time.Millisecond), res.Throughput)
		},
	})
	if err != nil {
		log.Fatalf("sammy-player: %v", err)
	}
	fmt.Printf("\nsession report: playDelay=%v rebuffers=%d vmaf=%.1f avgBitrate=%v chunkThroughput=%v paced=%d/%d\n",
		report.PlayDelay.Round(time.Millisecond), report.Rebuffers, report.VMAF,
		report.AvgBitrate, report.ChunkThroughput, report.PacedChunks, report.Chunks)
}
