// Command sammy-eval regenerates every table and figure from the paper's
// evaluation (Tables 2-3, Figures 1-8) against this repo's simulated
// substrate, printing paper-formatted rows and series.
//
// Usage:
//
//	sammy-eval [-users N] [-sessions N] [-chunks N] [-seed N] <experiment>
//
// where <experiment> is one of: table2, table3, baseline (§5.5), fig1,
// fig2, fig3, fig4, fig5, fig6, fig7, fig8, ablation, or all.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abr"
	"repro/internal/abtest"
	"repro/internal/cdn"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lab"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/overload"
	"repro/internal/player"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// reportMetrics prints the registry snapshot collected during the run and,
// when csvDir is set, writes the retained events as events.jsonl next to
// the figure CSVs.
func reportMetrics(reg *obs.Registry, csvDir string) {
	fmt.Println("==== metrics snapshot ====")
	fmt.Print(reg.Snapshot())
	rec := reg.Recorder()
	if rec == nil {
		return
	}
	fmt.Printf("events recorded: %d (retained %d)\n", rec.Total(), rec.Len())
	if csvDir == "" {
		return
	}
	path := csvDir + "/events.jsonl"
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: create %s: %v\n", path, err)
		return
	}
	defer f.Close()
	if err := rec.WriteJSONL(f); err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

func main() {
	users := flag.Int("users", 400, "population size for A/B experiments")
	sessions := flag.Int("sessions", 3, "sessions per user")
	chunks := flag.Int("chunks", 100, "chunks per session")
	seed := flag.Int64("seed", 11, "experiment seed")
	csvDir := flag.String("csv", "", "directory to write figure CSV series into (fig1, fig7)")
	metrics := flag.Bool("metrics", false, "collect live metrics during the run and print a registry snapshot; with -csv also writes events.jsonl")
	eventCap := flag.Int("events", 65536, "event recorder ring size used with -metrics")
	chaosName := flag.String("chaos", "", "fault scenario ("+strings.Join(fault.ScenarioNames(), ", ")+
		"): population experiments get the scenario's path faults, and the chaos experiment streams through its HTTP chaos")
	tracePath := flag.String("trace", "", "install the span tracer and write a Chrome trace-event JSON (Perfetto-loadable) to this path, plus a .jsonl twin")
	shards := flag.Int("shards", 8, "shard count for the population experiment (users are split into this many deterministic ranges)")
	checkpointDir := flag.String("checkpoint-dir", "", "population experiment: persist each completed shard into this directory so a killed run can resume")
	resume := flag.Bool("resume", false, "population experiment: load valid shard checkpoints from -checkpoint-dir and run only the missing ranges")
	workers := flag.Int("workers", 0, "population experiment: fork this many worker subprocesses and coordinate them through -checkpoint-dir (0 runs single-process)")
	join := flag.Bool("join", false, "population experiment: join an existing coordinated run in -checkpoint-dir as a worker instead of coordinating")
	leaseTTL := flag.Duration("lease-ttl", abtest.DefaultLeaseTTL, "multi-worker population: heartbeat staleness after which a shard lease may be stolen")
	workerID := flag.Int("worker-id", 0, "population-worker: worker index, offsets the shard scan to spread the fleet")
	maxShardAttempts := flag.Int("max-shard-attempts", abtest.DefaultMaxShardAttempts, "multi-worker population: lease acquisitions per shard before the coordinator quarantines it")
	debugAddr := flag.String("debug-addr", "", "serve the live trace inspector at /debug/sammy (plus /debug/vars) on this address for the duration of the run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sammy-eval [flags] <table2|table3|baseline|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|ablation|approaches|abandon|chaos|storm|population|population-worker|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	scenario, err := fault.LookupScenario(*chaosName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: %v\n", err)
		os.Exit(2)
	}
	name := flag.Arg(0)
	if flag.NArg() == 0 && *chaosName != "" {
		// "sammy-eval -chaos burst-loss" with no experiment runs the
		// hostile-network streaming demo.
		name = "chaos"
	} else if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	// With -metrics, install a process-wide registry before any simulator
	// or connection is built so every layer attaches to it, and report it
	// after the experiment.
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		if *eventCap > 0 {
			reg.SetRecorder(obs.NewRecorder(*eventCap))
		}
		obs.SetDefault(reg)
		defer reportMetrics(reg, *csvDir)
	}

	// With -trace (or -debug-addr), install the process-wide span tracer so
	// every player session, ABR decision, fetch and pacing computation
	// records spans, and export them when the experiment finishes. Sim-path
	// spans are stamped with the simulation clock, so fixed-seed traces are
	// byte-identical across runs.
	var tracer *otrace.Tracer
	if *tracePath != "" || *debugAddr != "" {
		tracer = otrace.New()
		otrace.SetDefault(tracer)
	}
	if *tracePath != "" {
		defer exportTraces(tracer, *tracePath)
	}
	if *debugAddr != "" {
		closeDebug, derr := serveDebug(*debugAddr, tracer)
		if derr != nil {
			fmt.Fprintf(os.Stderr, "sammy-eval: %v\n", derr)
			os.Exit(2)
		}
		defer closeDebug()
	}

	cfg := abtest.Config{
		Population:       abtest.PopulationConfig{Users: *users, Seed: *seed, Faults: scenario.Path},
		SessionsPerUser:  *sessions,
		ChunksPerSession: *chunks,
	}

	experiments := map[string]func(){
		"chaos":      func() { runChaos(scenario, *seed, *chunks) },
		"storm":      func() { runStorm(scenario, *seed) },
		"table2":     func() { runTable2(cfg, *seed) },
		"table3":     func() { runTable3(cfg, *seed) },
		"baseline":   func() { runBaseline(cfg, *seed) },
		"fig1":       func() { runFig1(*seed, *csvDir) },
		"fig2":       runFig2,
		"fig3":       func() { runFig3(cfg, *seed) },
		"fig4":       func() { runFig4(*seed) },
		"fig5":       func() { runFig5(cfg, *shards, *checkpointDir, *resume) },
		"fig6":       func() { runFig6(cfg, *shards, *checkpointDir, *resume) },
		"fig7":       func() { runFig7(*seed, *csvDir) },
		"fig8":       func() { runFig8(*seed) },
		"ablation":   func() { runAblation(*seed) },
		"approaches": func() { runApproaches(*seed) },
		"abandon":    func() { runAbandon(*seed) },
		"tune":       func() { runTune(cfg, *seed) },
		"pairings":   func() { runPairings(*seed) },
		"population": func() {
			runPopulation(cfg, populationOpts{
				shards: *shards, checkpointDir: *checkpointDir, resume: *resume,
				workers: *workers, join: *join, leaseTTL: *leaseTTL,
				workerID: *workerID, maxShardAttempts: *maxShardAttempts, chaosName: *chaosName,
			})
		},
		"population-worker": func() {
			runPopulationWorker(cfg, populationOpts{
				shards: *shards, checkpointDir: *checkpointDir,
				leaseTTL: *leaseTTL, workerID: *workerID, maxShardAttempts: *maxShardAttempts,
			})
		},
	}
	if name == "all" {
		for _, n := range []string{"table2", "table3", "baseline", "fig1", "fig2", "fig3",
			"fig4", "fig5", "fig6", "fig7", "fig8", "ablation", "approaches", "abandon", "tune", "pairings"} {
			fmt.Printf("==== %s ====\n", n)
			experiments[n]()
			fmt.Println()
		}
		return
	}
	run, ok := experiments[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "sammy-eval: unknown experiment %q\n", name)
		flag.Usage()
		os.Exit(2)
	}
	run()
}

func runTable2(cfg abtest.Config, seed int64) {
	results := abtest.Run(cfg, []abtest.Arm{
		abtest.ControlArm(),
		abtest.SammyArm(core.DefaultC0, core.DefaultC1),
	})
	fmt.Printf("control median throughput/bitrate ratio: %.1fx (paper footnote 1: ~13x)\n",
		abtest.MedianThroughputToBitrateRatio(results[0]))
	fmt.Print(abtest.FormatTable("Table 2: Sammy vs production control (% change, 95% CI)",
		abtest.Compare(results[1], results[0], seed)))
	fmt.Println("paper: throughput -61.0, retransmits -35.5, RTT -13.7, initial VMAF +0.14,")
	fmt.Println("       VMAF +0.04, play delay -1.29, rebuffers not significant")
}

func runTable3(cfg abtest.Config, seed int64) {
	results := abtest.Run(cfg, []abtest.Arm{
		abtest.ControlArm(),
		abtest.StandardArms()[3], // initial-only
	})
	fmt.Print(abtest.FormatTable("Table 3: initial-phase-only changes vs control",
		abtest.Compare(results[1], results[0], seed)))
	fmt.Println("paper: initial VMAF +0.30, play delay -0.40, others not significant")
}

func runBaseline(cfg abtest.Config, seed int64) {
	results := abtest.Run(cfg, []abtest.Arm{
		abtest.ControlArm(),
		abtest.SammyArm(core.DefaultC0, core.DefaultC1),
		abtest.StandardArms()[2], // naive 4x
	})
	fmt.Print(abtest.FormatTable("§5.5 naive 4x baseline vs control",
		abtest.Compare(results[2], results[0], seed)))
	fmt.Print(abtest.FormatTable("Sammy vs control (same population)",
		abtest.Compare(results[1], results[0], seed)))
	fmt.Println("paper: naive baseline -53% throughput but +6% play delay, -0.2% VMAF;")
	fmt.Println("       Sammy -61% throughput with QoE maintained")
}

func runFig1(seed int64, csvDir string) {
	fmt.Println("Figure 1: a few seconds of a video session, 250ms throughput bins")
	control := lab.SingleFlow(lab.ControlController(), 90, seed)
	sammy := lab.SingleFlow(lab.SammyController(), 90, seed)
	fmt.Println("(a) today's on-off pattern (unpaced control):")
	fmt.Print(trace.ASCII(control.Throughput, 100, 8))
	fmt.Println("(b) smoothed, same QoE (Sammy):")
	fmt.Print(trace.ASCII(sammy.Throughput, 100, 8))
	fmt.Printf("QoE: control VMAF %.1f, play delay %v, %d rebuffers; "+
		"Sammy VMAF %.1f, play delay %v, %d rebuffers\n",
		control.QoE.VMAF, control.QoE.PlayDelay.Round(time.Millisecond), control.QoE.RebufferCount,
		sammy.QoE.VMAF, sammy.QoE.PlayDelay.Round(time.Millisecond), sammy.QoE.RebufferCount)
	writeCSV(csvDir, "fig1.csv", renameSeries(control.Throughput, "control"), renameSeries(sammy.Throughput, "sammy"))
}

func runFig2() {
	fmt.Println("Figure 2: HYB's decision thresholds (β=0.5, lookahead 20s)")
	h := hybForFigure()
	d := 20 * time.Second
	fmt.Println("(a) highest selectable bitrate vs buffer, throughput = 8 Mbps:")
	for _, bufS := range []int{0, 5, 10, 20, 40} {
		r := h.MaxBitrateFor(8*units.Mbps, time.Duration(bufS)*time.Second, d)
		fmt.Printf("  buffer %2ds -> max bitrate %v\n", bufS, r)
	}
	fmt.Println("(b) minimum throughput to pick an 8 Mbps bitrate vs buffer:")
	for _, bufS := range []int{0, 5, 10, 20, 40} {
		x := h.MinThroughputFor(8*units.Mbps, time.Duration(bufS)*time.Second, d)
		fmt.Printf("  buffer %2ds -> min throughput %v (%.2fx bitrate)\n",
			bufS, x, float64(x)/float64(8*units.Mbps))
	}
	fmt.Println("paper: empty buffer needs 1/β = 2x the bitrate; threshold falls as buffer grows")
}

func runFig3(cfg abtest.Config, seed int64) {
	results := abtest.Run(cfg, []abtest.Arm{
		abtest.ControlArm(),
		abtest.SammyArm(core.DefaultC0, core.DefaultC1),
	})
	fmt.Println("Figure 3: throughput reduction by pre-experiment throughput group")
	for _, row := range abtest.CompareByPreExperiment(results[1], results[0], seed) {
		fmt.Printf("  %-10s sessions=%4d  change=%s\n", row.Bucket, row.Sessions, row.CI)
	}
	fmt.Println("paper: ≈0 below 6 Mbps rising to -74% above 90 Mbps")
}

func runFig4(seed int64) {
	fmt.Println("Figure 4: retransmit change vs pacing burst size (pace 2x max bitrate)")
	for _, p := range lab.BurstSizeExperiment([]int{4, 8, 16, 24, 32, 40}, 40, seed) {
		if p.Burst == 0 {
			fmt.Printf("  unpaced control: retx %.4f, throughput %v\n", p.RetxFraction, p.Throughput)
			continue
		}
		fmt.Printf("  burst %2d pkts: retx %.4f (%+.1f%% vs control), throughput %v, VMAF %.1f\n",
			p.Burst, p.RetxFraction, p.RetxChangePct, p.Throughput, p.VMAF)
	}
	fmt.Println("paper: burst 40 -> -40% retransmits, shrinking bursts -> up to -60%; QoE flat")
}

// runFig5 sweeps the (c0, c1) grid as one sharded run per cell: each cell
// streams in bounded memory and — with -checkpoint-dir — checkpoints under
// its own subdirectory, so a killed sweep resumes at the interrupted cell.
func runFig5(cfg abtest.Config, shards int, checkpointDir string, resume bool) {
	fmt.Println("Figure 5: VMAF vs throughput tradeoff across (c0, c1) cells")
	pairs := [][2]float64{
		{6.0, 5.0}, {4.5, 4.0}, {3.6, 3.2}, {3.2, 2.8}, {2.4, 2.0},
		{1.9, 1.6}, {1.6, 1.4}, {1.45, 1.3},
		// Below the Eq. 1 floor (≈1/β = 1.43 at empty buffer): quality and
		// rebuffers start to pay for further smoothing.
		{1.2, 1.05}, {1.0, 0.9},
	}
	stop, cleanup := installStopSignal("finishing the in-flight sweep cell, then exiting")
	defer cleanup()
	run := abtest.ShardRunConfig{
		Experiment:    cfg,
		ShardSize:     populationShardSize(cfg.Population.Users, shards),
		CheckpointDir: checkpointDir,
		Resume:        resume,
		Stop:          stop,
	}
	points, err := abtest.SweepParametersSharded(run, pairs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: %v\n", err)
		os.Exit(1)
	}
	for _, pt := range points {
		fmt.Printf("  c0=%.2f c1=%.2f  throughput %s  VMAF %s  playDelay %s\n",
			pt.C0, pt.C1, pt.ThroughputChg, pt.VMAFChg, pt.PlayDelayChg)
	}
	if len(points) < len(pairs) {
		fmt.Fprintf(os.Stderr, "sammy-eval: stopped after %d/%d cells; rerun with -resume to continue\n",
			len(points), len(pairs))
		return
	}
	fmt.Println("paper: VMAF flat until ≈-80% throughput, then quality begins to drop")
}

// runFig6 runs the cold-start study as one sharded run per day (warm-history
// control arm vs cold arm), with per-day checkpoint subdirectories.
func runFig6(cfg abtest.Config, shards int, checkpointDir string, resume bool) {
	fmt.Println("Figure 6: initial-quality gap for a cold-start history, by day")
	small := cfg
	if small.Population.Users > 150 {
		small.Population.Users = 150
	}
	const days = 7
	stop, cleanup := installStopSignal("finishing the in-flight day, then exiting")
	defer cleanup()
	run := abtest.ShardRunConfig{
		Experiment:    small,
		ShardSize:     populationShardSize(small.Population.Users, shards),
		CheckpointDir: checkpointDir,
		Resume:        resume,
		Stop:          stop,
	}
	points, err := abtest.ColdStartStudySharded(run, days)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: %v\n", err)
		os.Exit(1)
	}
	for _, pt := range points {
		fmt.Printf("  day %d: initial VMAF change %s\n", pt.Day, pt.InitialVMAFChg)
	}
	if len(points) < days {
		fmt.Fprintf(os.Stderr, "sammy-eval: stopped after %d/%d days; rerun with -resume to continue\n",
			len(points), days)
		return
	}
	fmt.Println("paper: large initial gap, converging toward control over about a week")
}

func runFig7(seed int64, csvDir string) {
	fmt.Println("Figure 7: single flow on the 40 Mbps / 5 ms / 4xBDP lab link")
	control := lab.SingleFlow(lab.ControlController(), 90, seed)
	sammy := lab.SingleFlow(lab.SammyController(), 90, seed)
	fmt.Println("control throughput (Mbps):")
	fmt.Print(trace.ASCII(control.Throughput, 100, 6))
	fmt.Println("sammy throughput (Mbps):")
	fmt.Print(trace.ASCII(sammy.Throughput, 100, 6))
	fmt.Printf("mean RTT: control %.1f ms, sammy %.1f ms (floor 5 ms)\n",
		control.RTT.Mean(), sammy.RTT.Mean())
	fmt.Printf("retransmit fraction: control %.4f, sammy %.4f\n",
		control.Retransmit, sammy.Retransmit)
	fmt.Println("paper: Sammy paces ≈15 Mbps falling to ≈13, RTT at the 5 ms floor")
	writeCSV(csvDir, "fig7_throughput.csv",
		renameSeries(control.Throughput, "control"), renameSeries(sammy.Throughput, "sammy"))
	writeCSV(csvDir, "fig7_rtt.csv",
		renameSeries(control.RTT, "control_rtt"), renameSeries(sammy.RTT, "sammy_rtt"))
}

// runPairings prints the two-session pairing comparison behind §6's remark
// that congestion falls further when the neighbor also runs Sammy.
func runPairings(seed int64) {
	fmt.Println("two video sessions sharing the bottleneck (§6's both-Sammy remark):")
	for _, r := range lab.BothSammy(60, seed) {
		fmt.Printf("  %-16s median RTT %.1f ms, %d drops, peak queue %d B\n",
			r.Pairing, r.MedianRTT, r.Drops, r.PeakQueue)
	}
}

// exportTraces writes the run's spans as Chrome trace-event JSON at path
// (loadable in Perfetto / chrome://tracing) and as canonical JSONL next to
// it, the input format for sammy-trace.
func exportTraces(t *otrace.Tracer, path string) {
	writeFile := func(p string, write func(io.Writer) error) {
		f, err := os.Create(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sammy-eval: create %s: %v\n", p, err)
			return
		}
		defer f.Close()
		if err := write(f); err != nil {
			fmt.Fprintf(os.Stderr, "sammy-eval: write %s: %v\n", p, err)
			return
		}
		fmt.Printf("wrote %s\n", p)
	}
	writeFile(path, t.WriteChromeTrace)
	writeFile(strings.TrimSuffix(path, ".json")+".jsonl", t.WriteJSONL)
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "sammy-eval: trace backlog overflowed, %d spans dropped\n", d)
	}
}

// serveDebug mounts the live run inspector for long evaluations:
// /debug/sammy renders the tracer's sessions and most recent spans,
// /debug/vars the expvar metrics (populated with -metrics).
func serveDebug(addr string, t *otrace.Tracer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/sammy", &otrace.Inspector{Tracer: t})
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	//sammy:goroutinelifetime: Serve returns ErrServerClosed when the returned shutdown func calls srv.Close
	go srv.Serve(ln)
	fmt.Printf("debug inspector: http://%s/debug/sammy\n", ln.Addr())
	return func() { srv.Close() }, nil
}

// renameSeries relabels a series for CSV column headers.
func renameSeries(s trace.Series, name string) trace.Series {
	s.Name = name
	return s
}

// writeCSV writes the series into dir/name when dir is set.
func writeCSV(dir, name string, series ...trace.Series) {
	if dir == "" {
		return
	}
	path := dir + "/" + name
	if err := os.WriteFile(path, []byte(trace.CSV(series...)), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

func runFig8(seed int64) {
	fmt.Println("Figure 8: neighbor QoE with a video session sharing the bottleneck")
	udp := lab.UDPNeighbor(90, seed)
	fmt.Printf("  (a) UDP one-way delay: control %.2f ms, sammy %.2f ms (%+.1f%%; paper -51%%)\n",
		udp.Control, udp.Sammy, udp.ImprovementPct())
	tcpN := lab.TCPNeighbor(90, seed)
	fmt.Printf("  (b) TCP throughput: control %.1f Mbps, sammy %.1f Mbps (%+.1f%%; paper +28%%)\n",
		tcpN.Control, tcpN.Sammy, tcpN.ImprovementPct())
	httpN := lab.HTTPNeighbor(90, seed)
	fmt.Printf("  (c) HTTP response time: control %.0f ms, sammy %.0f ms (%+.1f%%; paper -18%%)\n",
		httpN.Control, httpN.Sammy, httpN.ImprovementPct())
	vid := lab.VideoNeighbor(15, 4, seed)
	fmt.Printf("  (d) video play delay: control %.0f ms, sammy %.0f ms (%+.1f%%; paper -4%%)\n",
		vid.Control, vid.Sammy, vid.ImprovementPct())
}

func runAblation(seed int64) {
	fmt.Println("Rate-limiter ablation (Table 1 mechanisms at the same average rate):")
	for _, r := range lab.AblationLimiters(20, seed) {
		fmt.Printf("  %-13s retx %.4f  throughput %v  median RTT %.1f ms\n",
			r.Name, r.RetxFraction, r.Throughput, r.MeanRTTms)
	}
	fmt.Println("paper §5.6: cwnd capping ≈ 40-packet bursts; pacing at burst 4 cuts a further ~20%")
}

// runTune runs the §5.3 parameter search (the Ax substitute): rounds of
// A/B cells, keeping the deepest throughput reduction that respects QoE
// guardrails.
func runTune(cfg abtest.Config, seed int64) {
	fmt.Println("§5.3 parameter tuning: multi-round (c0, c1) search with QoE guardrails")
	small := cfg
	if small.Population.Users > 200 {
		small.Population.Users = 200
	}
	res, err := abtest.SearchParameters(abtest.SearchConfig{Experiment: small, Seed: seed})
	if err != nil {
		fmt.Println("search:", err)
		return
	}
	for _, p := range res.Frontier {
		fmt.Printf("  cell c0=%.2f c1=%.2f  tput %s  VMAF %s\n", p.C0, p.C1, p.ThroughputChg, p.VMAFChg)
	}
	fmt.Printf("selected c0=%.2f c1=%.2f: throughput %s with QoE guardrails intact (%d cells rejected)\n",
		res.BestC0, res.BestC1, res.Best.ThroughputChg, res.Rejected)
	fmt.Println("paper: Ax found a Pareto improvement; production picked 3.2/2.8 at -61%")
}

// runApproaches compares Sammy against the scavenger-transport alternative
// discussed in §2.2: scavengers yield to neighbors but fully utilize an
// idle link, while Sammy smooths consistently.
func runApproaches(seed int64) {
	fmt.Println("§2.2 comparison: smoothing approaches on the lab link")
	fmt.Printf("%-10s %14s %10s %16s %8s\n", "approach", "solo tput", "solo RTT", "neighbor tput", "VMAF")
	for _, r := range lab.CompareApproaches(90, seed) {
		fmt.Printf("%-10s %14v %8.1fms %16v %8.1f\n",
			r.Name, r.SoloThroughput, r.SoloRTT, r.NeighborThroughput, r.VMAF)
	}
	fmt.Println("paper: scavengers fully utilize an idle link; Sammy consistently")
	fmt.Println("       sends near the video bitrate either way")
}

// runAbandon measures wasted buffer on early-quit sessions, the Trickle
// motivation the paper's Table 1 lists.
func runAbandon(seed int64) {
	fmt.Println("wasted buffer when the user quits after 60s (Table 1's Trickle motivation)")
	users := abtest.GeneratePopulation(abtest.PopulationConfig{Users: 150, Seed: seed})
	arms := []abtest.Arm{abtest.ControlArm(), abtest.SammyArm(core.DefaultC0, core.DefaultC1)}
	for _, arm := range arms {
		var wasted, sessions float64
		for _, u := range users {
			rng := rand.New(rand.NewSource(u.Seed))
			title := video.NewTitle(video.DefaultLadder().CapAt(u.TopBitrate), 4*time.Second, 150, rng)
			q := player.Run(player.Config{
				Controller:   arm.NewController(),
				Title:        title,
				History:      u.History,
				AbandonAfter: time.Minute,
			}, u.Path, rng, nil)
			if q.Abandoned {
				wasted += float64(q.WastedBytes)
				sessions++
			}
		}
		if sessions > 0 {
			fmt.Printf("  %-8s mean wasted per abandoned session: %v\n",
				arm.Name, units.Bytes(wasted/sessions))
		}
	}
	fmt.Println("Sammy's slower buffer growth wastes less; eliminating waste entirely")
	fmt.Println("is Trickle's goal, not Sammy's (Table 1)")
}

// hybForFigure returns the HYB instance the Fig 2 analysis uses (the
// paper's worked example: β = 0.5).
func hybForFigure() abr.HYB {
	return abr.HYB{Beta: 0.5}
}

// runChaos streams control and Sammy sessions over a real HTTP chunk server
// wrapped in the scenario's chaos middleware, demonstrating that the
// resilient client completes every session — retrying 5xx storms, resuming
// reset bodies with Range requests, degrading rungs when the ladder's top
// cannot get through — with fully deterministic recovery counts for a fixed
// seed.
func runChaos(scn fault.Scenario, seed int64, chunks int) {
	if scn.Name == "off" || !scn.Chaos.Enabled() {
		// Without -chaos (or with a path-only scenario) default to the
		// CDN-flakiness preset so the experiment always has teeth.
		scn, _ = fault.LookupScenario("flaky-cdn")
	}
	if chunks > 40 {
		chunks = 40 // keep the real-time demo short
	}
	ccfg := scn.Chaos
	ccfg.Seed = seed
	chaos, err := fault.NewChaos(ccfg, &cdn.Server{Metrics: cdn.NewMetrics(obs.Default()), Tracer: otrace.Default()})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: chaos: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: listen: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler:           chaos,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second, // chunks are ≤ a few seconds each, even stalled
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	//sammy:goroutinelifetime: Serve returns ErrServerClosed when the deferred hs.Close tears down the listener
	go hs.Serve(ln)
	defer hs.Close()

	client := cdn.NewClient("http://" + ln.Addr().String())
	client.Seed = seed

	fmt.Printf("chaos scenario %q over a local HTTP chunk server (seed %d, %d chunks/session)\n",
		scn.Name, seed, chunks)
	fmt.Printf("  %s\n", scn.Description)
	arms := []struct {
		name string
		ctrl *core.Controller
	}{
		{"control", lab.ControlController()},
		{"sammy", lab.SammyController()},
	}
	for _, arm := range arms {
		rep, err := cdn.StreamSession(context.Background(), cdn.SessionConfig{
			Controller: arm.ctrl,
			Title:      cdn.NewDemoTitle(chunks, 500*time.Millisecond),
			Client:     client,
		})
		if err != nil {
			fmt.Printf("  %-8s session aborted: %v\n", arm.name, err)
			continue
		}
		fmt.Printf("  %-8s chunks %d  VMAF %.1f  playDelay %v  rebuffer %v (%d)\n",
			arm.name, rep.Chunks, rep.VMAF, rep.PlayDelay.Round(time.Millisecond),
			rep.RebufferTime.Round(time.Millisecond), rep.Rebuffers)
		fmt.Printf("           retries %d  resumes %d  rung downgrades %d  failed chunks %d\n",
			rep.Retries, rep.Resumes, rep.RungDowngrades, rep.FailedChunks)
	}
	fmt.Printf("faults injected by the chaos middleware: %d\n", chaos.Injected())
}

// runStorm throws the scenario's load-storm at a paced chunk server
// protected by the overload layer: Fetchers concurrent clients against a
// MaxInFlight-deep admission window with a MaxQueue-deep FIFO behind it.
// The overload pipeline sheds the excess with 503 + Retry-After, clients
// honour the hint, and the storm drains — the run prints the admission
// ledger (admitted/queued/shed/peak in-flight) and the client-side retry
// work it took.
func runStorm(scn fault.Scenario, seed int64) {
	if !scn.Storm.Enabled() {
		// Default to the canonical preset so `sammy-eval storm` works bare.
		scn, _ = fault.LookupScenario("load-storm")
	}
	st := scn.Storm

	reg := obs.Default()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctrl := overload.New(overload.Config{
		MaxInFlight:  st.MaxInFlight,
		MaxQueue:     st.MaxQueue,
		QueueTimeout: st.QueueTimeout,
		RetryAfter:   st.RetryAfter,
	}, overload.NewMetrics(reg))
	ctrl.Tracer = otrace.Default()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: listen: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler:           ctrl.Middleware(&cdn.Server{Metrics: cdn.NewMetrics(reg), Tracer: otrace.Default()}),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	//sammy:goroutinelifetime: Serve returns ErrServerClosed when the deferred hs.Close tears down the listener
	go hs.Serve(ln)
	defer hs.Close()

	client := cdn.NewClient("http://" + ln.Addr().String())
	client.Seed = seed
	client.Metrics = cdn.NewClientMetrics(reg)
	client.Retry = cdn.RetryPolicy{
		MaxAttempts: st.MaxAttempts,
		MaxBackoff:  2 * st.RetryAfter,
	}

	fmt.Printf("load-storm %q: %d fetchers vs max-inflight %d, queue %d (seed %d)\n",
		scn.Name, st.Fetchers, st.MaxInFlight, st.MaxQueue, seed)
	fmt.Printf("  %s\n", scn.Description)

	var wg sync.WaitGroup
	var completed, failed atomic.Int64
	start := time.Now()
	for i := 0; i < st.Fetchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := client.FetchChunk(context.Background(),
				units.Bytes(st.ChunkBytes), units.BitsPerSecond(st.PaceRateBps))
			if err != nil {
				failed.Add(1)
				return
			}
			completed.Add(1)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("  completed %d/%d fetches in %v (%d failed)\n",
		completed.Load(), st.Fetchers, elapsed.Round(time.Millisecond), failed.Load())
	if m := ctrl.Metrics; m != nil {
		fmt.Printf("  admission: admitted %d, queued %d, shed %d (queue-full %d, queue-timeout %d), peak in-flight %.0f/%d\n",
			m.Admitted.Value(), m.Queued.Value(), m.Shed.Value(),
			m.ShedQueueFull.Value(), m.ShedQueueTimeout.Value(),
			m.InFlightPeak.Value(), st.MaxInFlight)
	}
	if cm := client.Metrics; cm != nil {
		fmt.Printf("  client recovery: attempts %d, retries %d, Retry-After honoured %d\n",
			cm.FetchAttempts.Value(), cm.FetchRetries.Value(),
			cm.RetryAfterHonored.Value())
	}
	if m := ctrl.Metrics; m != nil {
		if peak := int(m.InFlightPeak.Value()); peak > st.MaxInFlight {
			fmt.Printf("  WARNING: peak in-flight %d exceeded the admission limit %d\n", peak, st.MaxInFlight)
		} else {
			fmt.Printf("  in-flight never exceeded the admission limit; shed load spread out via Retry-After\n")
		}
	}
}
