// Population-scale A/B modes: the single-process sharded runner, the
// multi-process coordinator that forks and supervises worker subprocesses,
// and the worker loop itself (the "population-worker" experiment, also
// reachable as "population -join" to attach an externally launched worker to
// a directory another process coordinates).
package main

import (
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/abtest"
	"repro/internal/core"
	"repro/internal/obs"
)

// populationOpts bundles the population-mode flags.
type populationOpts struct {
	shards           int
	checkpointDir    string
	resume           bool
	workers          int
	join             bool
	leaseTTL         time.Duration
	workerID         int
	maxShardAttempts int
	chaosName        string
}

// populationArms is the standard population A/B cell pair.
func populationArms() []abtest.Arm {
	return []abtest.Arm{
		abtest.ControlArm(),
		abtest.SammyArm(core.DefaultC0, core.DefaultC1),
	}
}

// populationShardSize converts the -shards count into a users-per-shard size.
func populationShardSize(users, shards int) int {
	if shards <= 0 {
		shards = 1
	}
	return (users + shards - 1) / shards
}

// installStopSignal turns the first SIGINT/SIGTERM into a graceful-stop
// channel close (a second signal kills the process the usual way) and
// returns the channel plus a cleanup func.
func installStopSignal(what string) (<-chan struct{}, func()) {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		signal.Stop(sig)
		fmt.Fprintf(os.Stderr, "sammy-eval: %v: %s\n", s, what)
		close(stop)
	}()
	return stop, func() { signal.Stop(sig) }
}

// shardProgress prints shard lifecycle events to stderr.
func shardProgress(ev abtest.ShardEvent) {
	fmt.Fprintf(os.Stderr, "sammy-eval: shard %d/%d users [%d,%d) %s",
		ev.Shard+1, ev.NumShards, ev.Lo, ev.Hi, ev.Status)
	if ev.UserErrors > 0 {
		fmt.Fprintf(os.Stderr, " (%d users failed)", ev.UserErrors)
	}
	fmt.Fprintln(os.Stderr)
}

// fleetProgress prints fleet lifecycle events to stderr. It is called from
// the coordinator's monitor goroutines too; Fprintf to one writer is safe.
func fleetProgress(ev abtest.FleetEvent) {
	switch ev.Type {
	case "worker-started", "worker-exited":
		fmt.Fprintf(os.Stderr, "sammy-eval: worker %d %s", ev.Worker, ev.Type[len("worker-"):])
		if ev.Detail != "" {
			fmt.Fprintf(os.Stderr, " (%s)", ev.Detail)
		}
		fmt.Fprintln(os.Stderr)
	case "stopped":
		fmt.Fprintln(os.Stderr, "sammy-eval: worker loop stopped")
	default:
		fmt.Fprintf(os.Stderr, "sammy-eval: shard %d/%d users [%d,%d) %s", ev.Shard+1, ev.NumShards, ev.Lo, ev.Hi, ev.Type)
		if ev.Attempt > 1 {
			fmt.Fprintf(os.Stderr, " attempt %d", ev.Attempt)
		}
		if ev.UserErrors > 0 {
			fmt.Fprintf(os.Stderr, " (%d users failed)", ev.UserErrors)
		}
		if ev.Detail != "" {
			fmt.Fprintf(os.Stderr, ": %s", ev.Detail)
		}
		fmt.Fprintln(os.Stderr)
	}
}

// printPopulationResult writes the final tables to stdout. Both the
// single-process and coordinated paths call this, which is what makes their
// stdout byte-identical for the same configuration: the merged sketches are
// identical, so the formatted tables are too.
func printPopulationResult(cfg abtest.Config, res *abtest.ShardedResult) {
	fmt.Printf("population A/B: %d users, %d shards\n", cfg.Population.Users, res.NumShards)
	if n := len(res.Quarantined); n > 0 {
		excluded := 0
		for _, q := range res.Quarantined {
			excluded += q.Hi - q.Lo
		}
		fmt.Printf("WARNING: %d shards quarantined, %d users excluded from the tables\n", n, excluded)
	}
	fmt.Print(abtest.FormatSketchTable("Table 2 (streamed): Sammy vs control (Welch 95% CI on % change of the mean)",
		abtest.CompareSketches(res.Arms[1], res.Arms[0])))
	fmt.Println("Figure 3 (streamed): throughput change by pre-experiment throughput group")
	for _, row := range abtest.CompareBucketSketches(res.Arms[1], res.Arms[0]) {
		fmt.Printf("  %-10s sessions=%6d  %+.2f%% [%.2f, %.2f]  median %+.2f%%\n",
			row.Bucket, row.Sessions, row.MeanChg.Point, row.MeanChg.Lo, row.MeanChg.Hi, row.MedianChgPct)
	}
	fmt.Println("paper: throughput -61% overall, ≈0 below 6 Mbps rising to -74% above 90 Mbps")
}

// runPopulation dispatches between the three population modes: plain
// single-process sharded run, multi-worker coordinator (-workers N), and
// joining worker (-join).
func runPopulation(cfg abtest.Config, opts populationOpts) {
	if opts.join {
		runPopulationWorker(cfg, opts)
		return
	}
	if opts.workers > 0 {
		runPopulationCoordinator(cfg, opts)
		return
	}
	runPopulationSingle(cfg, opts)
}

// runPopulationSingle is the crash-resumable single-process population A/B:
// the experiment runs shard by shard in bounded memory, checkpointing each
// completed shard when -checkpoint-dir is set. SIGINT/SIGTERM request a
// graceful stop — the in-flight shard finishes and checkpoints, the process
// exits 0, and a rerun with -resume picks up where it left off. Progress
// goes to stderr; the final tables go to stdout only when the run completes,
// so stdout can be diffed byte-for-byte against an uninterrupted run.
func runPopulationSingle(cfg abtest.Config, opts populationOpts) {
	stop, cleanup := installStopSignal("finishing the in-flight shard, then checkpointing and exiting")
	defer cleanup()

	scfg := abtest.ShardRunConfig{
		Experiment:    cfg,
		Arms:          populationArms(),
		ShardSize:     populationShardSize(cfg.Population.Users, opts.shards),
		CheckpointDir: opts.checkpointDir,
		Resume:        opts.resume,
		Stop:          stop,
		Metrics:       abtest.NewShardMetrics(obs.Default()),
		Progress:      shardProgress,
	}
	if opts.resume {
		// Preflight so a config mismatch names the changed knobs instead of
		// silently re-running everything from shard zero.
		if err := abtest.CheckResumeConfig(opts.checkpointDir, cfg, scfg.Arms, scfg.ShardSize); err != nil {
			fmt.Fprintf(os.Stderr, "sammy-eval: %v\n", err)
			os.Exit(1)
		}
	}
	res, err := abtest.RunSharded(scfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: %v\n", err)
		os.Exit(1)
	}
	for _, s := range res.Skipped {
		fmt.Fprintf(os.Stderr, "sammy-eval: checkpoint rejected: %s\n", s)
	}
	if res.Stopped {
		fmt.Fprintf(os.Stderr, "sammy-eval: stopped after %d/%d shards", res.Completed+res.Resumed, res.NumShards)
		if opts.checkpointDir != "" {
			fmt.Fprintf(os.Stderr, "; rerun with -checkpoint-dir %s -resume to continue", opts.checkpointDir)
		}
		fmt.Fprintln(os.Stderr)
		return
	}
	// The run ledger is process history, not a result: it goes to stderr so
	// stdout stays byte-identical whether or not the run was resumed.
	fmt.Fprintf(os.Stderr, "sammy-eval: population A/B: %d users in %d shards (%d resumed, %d user errors)\n",
		cfg.Population.Users, res.NumShards, res.Resumed, res.UserErrors)
	printPopulationResult(cfg, res)
}

// runPopulationCoordinator is the fault-tolerant multi-process mode: it
// forks -workers sammy-eval subprocesses in population-worker mode against
// the shared -checkpoint-dir, supervises their shard leases, re-runs dead
// workers' shards, quarantines poison shards, and merges — byte-identically
// to the single-process path.
func runPopulationCoordinator(cfg abtest.Config, opts populationOpts) {
	if opts.checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "sammy-eval: population -workers needs -checkpoint-dir (the lease protocol lives in it)")
		os.Exit(2)
	}
	stop, cleanup := installStopSignal("draining workers, then merging finished shards and exiting")
	defer cleanup()

	shardSize := populationShardSize(cfg.Population.Users, opts.shards)
	ccfg := abtest.CoordinatorConfig{
		Experiment:       cfg,
		Arms:             populationArms(),
		ShardSize:        shardSize,
		CheckpointDir:    opts.checkpointDir,
		Resume:           opts.resume,
		Workers:          opts.workers,
		StartWorker:      func(i int) (*abtest.WorkerHandle, error) { return startWorkerProcess(cfg, opts, i) },
		LeaseTTL:         opts.leaseTTL,
		MaxShardAttempts: opts.maxShardAttempts,
		Stop:             stop,
		Progress:         fleetProgress,
		Metrics:          abtest.NewFleetMetrics(obs.Default()),
	}
	res, err := abtest.RunCoordinator(ccfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: %v\n", err)
		os.Exit(1)
	}
	for _, s := range res.Skipped {
		fmt.Fprintf(os.Stderr, "sammy-eval: checkpoint rejected: %s\n", s)
	}
	if res.Stopped {
		fmt.Fprintf(os.Stderr, "sammy-eval: stopped after %d/%d shards; rerun with -checkpoint-dir %s -resume to continue\n",
			res.Completed+res.Resumed, res.NumShards, opts.checkpointDir)
		return
	}
	fmt.Fprintf(os.Stderr, "sammy-eval: population A/B: %d users in %d shards via %d workers (%d resumed, %d recovered, %d quarantined, %d user errors)\n",
		cfg.Population.Users, res.NumShards, opts.workers, res.Resumed, res.Recovered, len(res.Quarantined), res.UserErrors)
	for _, q := range res.Quarantined {
		fmt.Fprintf(os.Stderr, "sammy-eval: quarantined shard %d users [%d,%d): %s\n", q.Index, q.Lo, q.Hi, q.Reason)
	}
	printPopulationResult(cfg, res)
}

// startWorkerProcess forks one sammy-eval subprocess in population-worker
// mode, re-deriving the worker's flags from the coordinator's configuration.
func startWorkerProcess(cfg abtest.Config, opts populationOpts, i int) (*abtest.WorkerHandle, error) {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	args := []string{
		"-users", strconv.Itoa(cfg.Population.Users),
		"-seed", strconv.FormatInt(cfg.Population.Seed, 10),
		"-sessions", strconv.Itoa(cfg.SessionsPerUser),
		"-chunks", strconv.Itoa(cfg.ChunksPerSession),
		"-shards", strconv.Itoa(opts.shards),
		"-checkpoint-dir", opts.checkpointDir,
		"-lease-ttl", opts.leaseTTL.String(),
		"-max-shard-attempts", strconv.Itoa(opts.maxShardAttempts),
		"-worker-id", strconv.Itoa(i),
	}
	if opts.chaosName != "" {
		args = append(args, "-chaos", opts.chaosName)
	}
	args = append(args, "population-worker")
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	cmd.Stdout = os.Stderr // a worker's stdout is progress, not results
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &abtest.WorkerHandle{
		Stop: func() { cmd.Process.Signal(syscall.SIGTERM) },
		Kill: func() { cmd.Process.Kill() },
		Wait: cmd.Wait,
	}, nil
}

// runPopulationWorker is the worker side: claim shards via leases from the
// shared checkpoint directory, run them, checkpoint them, repeat until the
// run is resolved. It never writes the manifest and never prints tables —
// the coordinator owns both.
func runPopulationWorker(cfg abtest.Config, opts populationOpts) {
	if opts.checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "sammy-eval: population-worker needs -checkpoint-dir")
		os.Exit(2)
	}
	stop, cleanup := installStopSignal("finishing the in-flight shard, then releasing the lease and exiting")
	defer cleanup()

	res, err := abtest.RunWorker(abtest.WorkerConfig{
		Experiment:       cfg,
		Arms:             populationArms(),
		ShardSize:        populationShardSize(cfg.Population.Users, opts.shards),
		CheckpointDir:    opts.checkpointDir,
		WorkerID:         opts.workerID,
		LeaseTTL:         opts.leaseTTL,
		MaxShardAttempts: opts.maxShardAttempts,
		Stop:             stop,
		Progress:         fleetProgress,
		Metrics:          abtest.NewFleetMetrics(obs.Default()),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-eval: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sammy-eval: worker %d done: %d shards completed (%d stolen, %d abandoned, %d user errors)\n",
		opts.workerID, res.Completed, res.Stolen, res.Abandoned, res.UserErrors)
	if len(res.Blocked) > 0 {
		fmt.Fprintf(os.Stderr, "sammy-eval: worker %d: %d shards need a coordinator (attempt budget exhausted): %v\n",
			opts.workerID, len(res.Blocked), res.Blocked)
	}
}
