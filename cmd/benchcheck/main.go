// Command benchcheck compares a freshly generated BENCH_sim.json against the
// checked-in BENCH_baseline.json and exits non-zero if any benchmark's
// allocs/op regressed by more than 2x. It is the CI gate that keeps the
// event core allocation-free: ns/op is noisy on shared runners, but
// allocs/op is deterministic, so a 2x jump always means a real code change
// (a new escaping closure, a pool bypass) rather than scheduler jitter.
//
// Exit codes follow the internal/citools convention shared with
// cmd/sammy-vet: 0 clean, 1 regression found, 2 tool error (unreadable
// input files).
//
// Usage: benchcheck [-current BENCH_sim.json] [-baseline BENCH_baseline.json]
package main

import (
	"flag"
	"sort"

	"repro/internal/benchfmt"
	"repro/internal/citools"
)

func main() {
	currentPath := flag.String("current", "BENCH_sim.json", "freshly generated benchmark file")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline file")
	factor := flag.Float64("factor", 2.0, "allowed allocs/op growth factor over baseline")
	flag.Parse()

	rep := citools.New("benchcheck")
	defer rep.Exit()

	current, err := benchfmt.Read(*currentPath)
	if err != nil {
		rep.Errorf("%v", err)
		return
	}
	baseline, err := benchfmt.Read(*baselinePath)
	if err != nil {
		rep.Errorf("%v", err)
		return
	}

	names := make([]string, 0, len(baseline.Current))
	for name := range baseline.Current {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := false
	for _, name := range names {
		base := baseline.Current[name]
		cur, ok := current.Current[name]
		if !ok {
			rep.Findingf("FAIL %s: present in baseline but missing from %s", name, *currentPath)
			continue
		}
		// A zero-alloc baseline can't express a ratio; hold those benchmarks
		// to an absolute bound instead (a couple of allocs of harness noise).
		limit := base.AllocsPerOp * *factor
		if base.AllocsPerOp == 0 {
			limit = 2
		}
		status := "ok  "
		if cur.AllocsPerOp > limit {
			status = "FAIL"
			regressed = true
		}
		rep.Infof("%s %-22s allocs/op %10.0f (baseline %10.0f, limit %10.0f)  ns/op %12.0f (baseline %12.0f)",
			status, name, cur.AllocsPerOp, base.AllocsPerOp, limit, cur.NsPerOp, base.NsPerOp)
		// Throughput suites additionally gate users/sec. Wall-clock rates on
		// shared runners are noisy where allocation counts are not, so the
		// bar is a floor at a quarter of baseline: only a structural collapse
		// of the streaming path (quadratic fold, lost parallelism) trips it.
		if base.UsersPerSec > 0 {
			floor := base.UsersPerSec / 4
			tstatus := "ok  "
			if cur.UsersPerSec < floor {
				tstatus = "FAIL"
				regressed = true
			}
			rep.Infof("%s %-22s users/sec %10.0f (baseline %10.0f, floor %10.0f)",
				tstatus, name, cur.UsersPerSec, base.UsersPerSec, floor)
		}
	}
	if current.SimTimeRatio > 0 {
		rep.Infof("     sim_time_ratio %.0f sim-s/wall-s", current.SimTimeRatio)
	}
	if regressed {
		rep.Findingf("benchcheck: allocs/op regression exceeds %.1fx baseline", *factor)
	}
}
