// Command benchcheck compares a freshly generated BENCH_sim.json against the
// checked-in BENCH_baseline.json and exits non-zero if any benchmark's
// allocs/op regressed by more than 2x. It is the CI gate that keeps the
// event core allocation-free: ns/op is noisy on shared runners, but
// allocs/op is deterministic, so a 2x jump always means a real code change
// (a new escaping closure, a pool bypass) rather than scheduler jitter.
//
// Exit codes follow the internal/citools convention shared with
// cmd/sammy-vet: 0 clean, 1 regression found, 2 tool error (unreadable
// input files).
//
// Usage: benchcheck [-current BENCH_sim.json] [-baseline BENCH_baseline.json]
package main

import (
	"flag"
	"sort"

	"repro/internal/benchfmt"
	"repro/internal/citools"
)

func main() {
	currentPath := flag.String("current", "BENCH_sim.json", "freshly generated benchmark file")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline file")
	factor := flag.Float64("factor", 2.0, "allowed allocs/op growth factor over baseline")
	minWakeupRatio := flag.Float64("min-wakeup-ratio", 10.0, "required sleep-baseline/engine wakeup-rate quotient")
	maxRateErr := flag.Float64("max-rate-err", 5.0, "allowed p99 per-stream rate error percentage for stream suites")
	flag.Parse()

	rep := citools.New("benchcheck")
	defer rep.Exit()

	current, err := benchfmt.Read(*currentPath)
	if err != nil {
		rep.Errorf("%v", err)
		return
	}
	baseline, err := benchfmt.Read(*baselinePath)
	if err != nil {
		rep.Errorf("%v", err)
		return
	}

	names := make([]string, 0, len(baseline.Current))
	for name := range baseline.Current {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := false
	for _, name := range names {
		base := baseline.Current[name]
		cur, ok := current.Current[name]
		if !ok {
			rep.Findingf("FAIL %s: present in baseline but missing from %s", name, *currentPath)
			continue
		}
		// A zero-alloc baseline can't express a ratio; hold those benchmarks
		// to an absolute bound instead (a couple of allocs of harness noise).
		limit := base.AllocsPerOp * *factor
		if base.AllocsPerOp == 0 {
			limit = 2
		}
		status := "ok  "
		if cur.AllocsPerOp > limit {
			status = "FAIL"
			regressed = true
		}
		rep.Infof("%s %-22s allocs/op %10.0f (baseline %10.0f, limit %10.0f)  ns/op %12.0f (baseline %12.0f)",
			status, name, cur.AllocsPerOp, base.AllocsPerOp, limit, cur.NsPerOp, base.NsPerOp)
		// Throughput suites additionally gate users/sec. Wall-clock rates on
		// shared runners are noisy where allocation counts are not, so the
		// bar is a floor at a quarter of baseline: only a structural collapse
		// of the streaming path (quadratic fold, lost parallelism) trips it.
		if base.UsersPerSec > 0 {
			floor := base.UsersPerSec / 4
			tstatus := "ok  "
			if cur.UsersPerSec < floor {
				tstatus = "FAIL"
				regressed = true
			}
			rep.Infof("%s %-22s users/sec %10.0f (baseline %10.0f, floor %10.0f)",
				tstatus, name, cur.UsersPerSec, base.UsersPerSec, floor)
		}
		// Pacing-scale gates. The timer-wheel engine's whole point is O(1)
		// wakeups per tick instead of one per stream: the engine/sleep
		// wakeup-rate quotient at 10k streams must stay above the fixed
		// floor, and the loadgen entry must keep sustaining the baseline's
		// stream count with its p99 rate error under the fixed bound. Both
		// floors are absolute because the claims they defend ("≥10x fewer
		// wakeups", "50k streams under 5% error") are absolute.
		if base.WakeupRatio > 0 {
			rstatus := "ok  "
			if cur.WakeupRatio < *minWakeupRatio {
				rstatus = "FAIL"
				regressed = true
			}
			rep.Infof("%s %-22s wakeup ratio %8.1fx (baseline %8.1fx, floor %8.1fx)",
				rstatus, name, cur.WakeupRatio, base.WakeupRatio, *minWakeupRatio)
		}
		if base.Streams > 0 {
			sstatus := "ok  "
			if cur.Streams < base.Streams || cur.RateErrP99Pct >= *maxRateErr {
				sstatus = "FAIL"
				regressed = true
			}
			rep.Infof("%s %-22s streams %10.0f (floor %10.0f)  p99 rate err %5.2f%% (bound %.2f%%)",
				sstatus, name, cur.Streams, base.Streams, cur.RateErrP99Pct, *maxRateErr)
		}
		// Streams/core is a wall-clock rate like users/sec: floor at a
		// quarter of baseline so only a structural collapse trips it.
		if base.StreamsPerCore > 0 {
			floor := base.StreamsPerCore / 4
			cstatus := "ok  "
			if cur.StreamsPerCore < floor {
				cstatus = "FAIL"
				regressed = true
			}
			rep.Infof("%s %-22s streams/core %8.0f (baseline %8.0f, floor %8.0f)",
				cstatus, name, cur.StreamsPerCore, base.StreamsPerCore, floor)
		}
	}
	if current.SimTimeRatio > 0 {
		rep.Infof("     sim_time_ratio %.0f sim-s/wall-s", current.SimTimeRatio)
	}
	if regressed {
		rep.Findingf("benchcheck: allocs/op regression exceeds %.1fx baseline", *factor)
	}
}
