// Command sammy-vet runs the repo's custom go/analysis-style suite
// (internal/analysis/...): simdeterminism, packetownership,
// hardenedserver, obsguard, sharedpacer, spanend, and eventref. It
// operates in two modes:
//
// Standalone, for developers and the CI lint step:
//
//	go run ./cmd/sammy-vet ./...
//
// loads non-test packages with the stdlib-only loader, applies every
// analyzer, and (unless -stock=false) also shells out to the toolchain's
// `go vet` so stock passes run in the same gate.
//
// Vettool, driven by cmd/go so _test.go files are covered too:
//
//	go build -o sammy-vet ./cmd/sammy-vet
//	go vet -vettool=./sammy-vet ./...
//
// Exit codes follow the internal/citools convention: 0 clean, 1 findings,
// 2 tool error.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis/suite"
	"repro/internal/analysis/unit"
	"repro/internal/citools"
)

func main() {
	args := os.Args[1:]

	// The cmd/go handshake flags must win over everything else: go vet
	// probes the tool with `-V=full` (build-ID for its result cache) and
	// `-flags` (JSON flag inventory) before sending any unit of work.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V" || a == "--V":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// No tool-specific flags are exposed through `go vet`.
			fmt.Println("[]")
			return
		}
	}

	// A single argument ending in .cfg is a vet unit from cmd/go.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		rep := citools.New("sammy-vet")
		unit.Run(rep, args[0])
		rep.Exit()
	}

	standalone(args)
}

// printVersion implements the `-V=full` handshake. cmd/go parses the line
// as fields, requires fields[1] == "version", and — because fields[2] is
// "devel" — takes the content ID from the trailing buildID=<hex> field.
// Hashing the executable itself means rebuilding sammy-vet with new or
// changed analyzers invalidates cmd/go's cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("sammy-vet version devel buildID=%x\n", h.Sum(nil))
}

func standalone(args []string) {
	fs := flag.NewFlagSet("sammy-vet", flag.ExitOnError)
	stock := fs.Bool("stock", true, "also run the toolchain's stock `go vet` passes")
	verbose := fs.Bool("v", false, "print a summary of packages, findings, and honored suppressions")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: sammy-vet [-stock=false] [-v] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Analyzers:\n")
		for _, a := range suite.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(fs.Output(), "  %-16s %s (suppress: //sammy:%s)\n", a.Name, doc, a.SuppressKey)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	rep := citools.New("sammy-vet")
	results, err := suite.Run(".", patterns)
	if err != nil {
		rep.Errorf("%v", err)
		rep.Exit()
	}

	wd, _ := os.Getwd()
	suppressed := 0
	for _, res := range results {
		for _, terr := range res.Pkg.TypeErrors {
			rep.Errorf("%s: %v", res.Pkg.ImportPath, terr)
		}
		suppressed += len(res.Suppressed)
		for _, d := range res.Diagnostics {
			pos := res.Pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			rep.Findingf("%s:%d:%d: [%s] %s", file, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	if *verbose {
		rep.Infof("sammy-vet: %d packages, %d findings, %d suppressed sites",
			len(results), rep.Findings(), suppressed)
	}

	if *stock {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); ok {
				rep.Findingf("sammy-vet: stock `go vet` reported findings (above)")
			} else {
				rep.Errorf("running stock go vet: %v", err)
			}
		}
	}
	rep.Exit()
}
