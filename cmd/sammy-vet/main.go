// Command sammy-vet runs the repo's custom go/analysis-style suite
// (internal/analysis/...): durablerename, eventref, goroutinelifetime,
// hardenedserver, lockdiscipline, obsguard, packetownership, sharedpacer,
// simdeterminism, and spanend. It operates in two modes:
//
// Standalone, for developers and the CI lint step:
//
//	go run ./cmd/sammy-vet ./...
//
// loads non-test packages with the stdlib-only loader, applies every
// analyzer, and (unless -stock=false) also shells out to the toolchain's
// `go vet` so stock passes run in the same gate. Extras in this mode:
// -sarif writes the results (suppressed sites included) as SARIF 2.1.0,
// -suppression-budget gates the count of //sammy:<key> suppressions per
// analyzer against a committed budget file, and -explain <analyzer> prints
// one analyzer's contract.
//
// Vettool, driven by cmd/go so _test.go files are covered too:
//
//	go build -o sammy-vet ./cmd/sammy-vet
//	go vet -vettool=./sammy-vet ./...
//
// Exit codes follow the internal/citools convention: 0 clean, 1 findings,
// 2 tool error.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/sarif"
	"repro/internal/analysis/suite"
	"repro/internal/analysis/unit"
	"repro/internal/citools"
)

func main() {
	args := os.Args[1:]

	// The cmd/go handshake flags must win over everything else: go vet
	// probes the tool with `-V=full` (build-ID for its result cache) and
	// `-flags` (JSON flag inventory) before sending any unit of work.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V" || a == "--V":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// No tool-specific flags are exposed through `go vet`; the
			// SARIF/budget/explain extras are standalone-only.
			fmt.Println("[]")
			return
		}
	}

	// A single argument ending in .cfg is a vet unit from cmd/go.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		rep := citools.New("sammy-vet")
		unit.Run(rep, args[0])
		rep.Exit()
	}

	standalone(args)
}

// printVersion implements the `-V=full` handshake. cmd/go parses the line
// as fields, requires fields[1] == "version", and — because fields[2] is
// "devel" — takes the content ID from the trailing buildID=<hex> field.
// Hashing the executable itself means rebuilding sammy-vet with new or
// changed analyzers invalidates cmd/go's cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("sammy-vet version devel buildID=%x\n", h.Sum(nil))
}

func standalone(args []string) {
	fs := flag.NewFlagSet("sammy-vet", flag.ExitOnError)
	stock := fs.Bool("stock", true, "also run the toolchain's stock `go vet` passes")
	verbose := fs.Bool("v", false, "print a summary of packages, findings, and honored suppressions")
	sarifOut := fs.String("sarif", "", "write results (suppressed sites included) as SARIF 2.1.0 to this file")
	budgetPath := fs.String("suppression-budget", "", "gate //sammy:<key> suppression counts against this budget file")
	updateBudget := fs.Bool("update-suppression-budget", false, "rewrite the -suppression-budget file with the observed counts instead of gating")
	explain := fs.String("explain", "", "print the named analyzer's doc, invariant, and suppression key, then exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: sammy-vet [-stock=false] [-v] [-sarif out.json] [-suppression-budget budget.json] [-explain analyzer] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Analyzers:\n")
		for _, a := range suite.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(fs.Output(), "  %-18s %s (suppress: //sammy:%s)\n", a.Name, doc, a.SuppressKey)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *explain != "" {
		explainAnalyzer(*explain)
		return
	}

	rep := citools.New("sammy-vet")
	results, loadErrs, err := suite.Run(".", patterns)
	if err != nil {
		rep.Errorf("%v", err)
		rep.Exit()
	}
	// A package the loader could not provide is a tool error (exit 2):
	// analyzing a silently shrunken tree would report "clean" for code
	// nobody looked at.
	for _, le := range loadErrs {
		rep.Errorf("load: %v", le)
	}

	wd, _ := os.Getwd()
	relPath := func(file string) string {
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return filepath.ToSlash(file)
	}

	log := sarif.New("sammy-vet", suite.All())
	suppressed := 0
	counts := map[string]int{}
	for _, res := range results {
		for _, terr := range res.Pkg.TypeErrors {
			rep.Errorf("%s: %v", res.Pkg.ImportPath, terr)
		}
		for _, d := range res.Diagnostics {
			pos := res.Pkg.Fset.Position(d.Pos)
			rep.Findingf("%s:%d:%d: [%s] %s", relPath(pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
			log.Add(d.Analyzer, "error", d.Message, relPath(pos.Filename), pos.Line, pos.Column, false, "")
		}
		for _, d := range res.Suppressed {
			suppressed++
			counts[d.Analyzer]++
			pos := res.Pkg.Fset.Position(d.Pos)
			log.Add(d.Analyzer, "note", d.Message, relPath(pos.Filename), pos.Line, pos.Column, true,
				justification(res, d))
		}
	}

	if *sarifOut != "" {
		if err := log.WriteFile(*sarifOut); err != nil {
			rep.Errorf("writing SARIF: %v", err)
		} else if *verbose {
			rep.Infof("sammy-vet: wrote SARIF to %s", *sarifOut)
		}
	}

	if *budgetPath != "" {
		if *updateBudget {
			if err := citools.WriteBudget(*budgetPath, counts); err != nil {
				rep.Errorf("writing suppression budget: %v", err)
			} else {
				rep.Infof("sammy-vet: wrote suppression budget to %s", *budgetPath)
			}
		} else if budget, err := citools.LoadBudget(*budgetPath); err != nil {
			rep.Errorf("loading suppression budget: %v", err)
		} else {
			rep.CheckBudget(budget, counts)
		}
	}

	if *verbose {
		rep.Infof("sammy-vet: %d packages, %d findings, %d suppressed sites",
			len(results), rep.Findings(), suppressed)
	}

	if *stock {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); ok {
				rep.Findingf("sammy-vet: stock `go vet` reported findings (above)")
			} else {
				rep.Errorf("running stock go vet: %v", err)
			}
		}
	}
	rep.Exit()
}

// explainAnalyzer prints one analyzer's contract: name, one-line invariant,
// the full doc, and the suppression key with usage.
func explainAnalyzer(name string) {
	a := suite.ByName(name)
	if a == nil {
		fmt.Fprintf(os.Stderr, "sammy-vet: unknown analyzer %q; available:\n", name)
		for _, s := range suite.All() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(citools.ExitError)
	}
	fmt.Printf("%s\n%s\n\n", a.Name, strings.Repeat("=", len(a.Name)))
	fmt.Printf("Invariant:\n  %s\n\n", a.Doc)
	fmt.Printf("Suppression:\n")
	fmt.Printf("  //sammy:%s: <justification>\n", a.SuppressKey)
	fmt.Printf("  on (or on the line above) the flagged line. Suppressions are counted,\n")
	fmt.Printf("  not dropped: the committed suppression budget (.sammy-vet-budget.json)\n")
	fmt.Printf("  must grow in the same change, so every new suppression is a reviewed diff.\n")
}

// justification recovers the text after //sammy:<key>: on the suppressed
// diagnostic's line (or the line above), for the SARIF suppression record.
func justification(res suite.PkgResult, d analysis.Diagnostic) string {
	a := suite.ByName(d.Analyzer)
	if a == nil {
		return ""
	}
	pos := res.Pkg.Fset.Position(d.Pos)
	prefix := "sammy:" + a.SuppressKey
	for _, f := range res.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				cpos := res.Pkg.Fset.Position(c.Pos())
				if cpos.Filename != pos.Filename || (cpos.Line != pos.Line && cpos.Line != pos.Line-1) {
					continue
				}
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if rest, ok := strings.CutPrefix(text, prefix+":"); ok {
					return strings.TrimSpace(rest)
				}
				if text == prefix {
					return ""
				}
			}
		}
	}
	return ""
}
