package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTool compiles sammy-vet into a temp dir once per test run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sammy-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sammy-vet: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolHandshake locks the two probe responses cmd/go sends before
// any unit of work: `-V=full` must print a build-ID line it can parse, and
// `-flags` must print a JSON flag inventory.
func TestVettoolHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool binary")
	}
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	// cmd/go requires fields[1] == "version" and, because fields[2] is
	// "devel", a trailing buildID=<hex> (see toolID in
	// cmd/go/internal/work/buildid.go).
	line := strings.TrimSpace(string(out))
	if !regexp.MustCompile(`^sammy-vet version devel buildID=[0-9a-f]{64}$`).MatchString(line) {
		t.Errorf("-V=full output %q does not match the cmd/go handshake format", line)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Errorf("-flags printed %q, want empty JSON array", got)
	}
}

// TestVettoolRunsCleanOnPackages drives the full vet-config protocol the
// way CI does, over two representative packages (one deterministic, one
// with _test.go http.Server literals). ./... level coverage lives in the
// CI step and internal/analysis/suite.TestRepoIsClean.
func TestVettoolRunsCleanOnPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool binary and invokes go vet")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"repro/internal/fault", "repro/internal/tcp")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool failed: %v\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/sammy-vet -> repo root
}
