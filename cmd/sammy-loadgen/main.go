// Command sammy-loadgen drives the paced chunk server with tens of
// thousands of concurrent rate-checked client streams and reports the
// per-stream achieved-rate error distribution, goroutine footprint, and
// pacing-engine wakeup rate. It is the scale proof for the shared
// timer-wheel pacing engine (ROADMAP item 3): the paper's deployment story
// is a CDN edge pacing tens of thousands of video responses at once.
//
// Self-hosted mode (default) spins up the real cdn.Server in-process,
// kernel pacing preferred and the engine as userspace fallback; -addr
// points it at an external server (for example a running sammy-server)
// instead. The -transport flag picks real loopback sockets or in-memory
// pipes; "auto" uses sockets when the file-descriptor budget allows and
// pipes beyond it (50k TCP streams need 100k fds).
//
// Examples:
//
//	sammy-loadgen -streams 50000 -rate 32kbps -duration 30s
//	sammy-loadgen -streams 2000 -rate 400kbps -addr 127.0.0.1:8404 -max-p99-err 10
//
// Exit status: 0 on success, 1 when -max-p99-err (or stream failures)
// exceed the configured bounds, 2 on setup errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/units"
)

func main() {
	streams := flag.Int("streams", 1000, "concurrent paced client streams")
	rateStr := flag.String("rate", "100kbps", "per-stream pace rate (e.g. 32kbps, 1.5mbps)")
	burst := flag.Int64("burst", 0, "server pacer burst bytes (0 = cdn default)")
	warmup := flag.Duration("warmup", 5*time.Second, "settling time before measurement")
	duration := flag.Duration("duration", 15*time.Second, "measurement window")
	transport := flag.String("transport", "auto", "client transport: auto, tcp, inproc")
	addr := flag.String("addr", "", "target an external server (host:port) instead of self-hosting")
	kernel := flag.Bool("kernel", false, "self-hosted: prefer SO_MAX_PACING_RATE kernel pacing")
	maxP99 := flag.Float64("max-p99-err", 0, "fail (exit 1) if p99 rate error exceeds this percentage (0 = report only)")
	maxFailed := flag.Int("max-failed", 0, "fail (exit 1) if more than this many streams fail")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	rate, err := units.ParseBitsPerSecond(*rateStr)
	if err != nil || rate <= 0 {
		fmt.Fprintf(os.Stderr, "sammy-loadgen: bad -rate %q: %v\n", *rateStr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := loadgen.Config{
		Streams:      *streams,
		Rate:         rate,
		Burst:        units.Bytes(*burst),
		Warmup:       *warmup,
		Duration:     *duration,
		Transport:    *transport,
		Addr:         *addr,
		KernelPacing: *kernel,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sammy-loadgen: "+format+"\n", args...)
		}
	}

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sammy-loadgen: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(rep.String())

	exit := 0
	if *maxP99 > 0 && rep.ErrP99 >= *maxP99 {
		fmt.Fprintf(os.Stderr, "sammy-loadgen: FAIL p99 rate error %.2f%% ≥ %.2f%%\n", rep.ErrP99, *maxP99)
		exit = 1
	}
	if rep.Failed > *maxFailed {
		fmt.Fprintf(os.Stderr, "sammy-loadgen: FAIL %d streams failed (> %d allowed)\n", rep.Failed, *maxFailed)
		exit = 1
	}
	os.Exit(exit)
}
