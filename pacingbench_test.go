package repro

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/pacing"
	"repro/internal/units"
)

// This file holds the pacing-engine scale suites: timer wakeups per second
// at 10k concurrent paced streams for the shared timer-wheel engine versus
// the retired per-stream-sleep regime, and end-to-end streams per core
// through the real cdn.Server via internal/loadgen. They are fixed-window
// benchmarks (each op observes a multi-second steady state), so CI's
// -benchtime=100x core-suite step excludes them; they run in the
// -benchtime=1x smoke and in the BENCH_sim.json emitter, where benchcheck
// gates the engine/sleep wakeup ratio and the loadgen stream count.

const (
	benchPacingStreams = 10_000
	benchPacingRate    = 100 * units.Kbps
	benchPacingBurst   = units.Bytes(6000)
	// 100 Kbps drains a 6000 B burst every 480 ms: ~20.8k token-bucket
	// waits per second across 10k streams, two orders of magnitude above
	// the wheel's tick ceiling (1/slot = 500 wakeups/s).
	benchPacingWindow = 2 * time.Second
)

// BenchmarkPacingEngineWakeups10k parks 10k paced streams on one shared
// engine and measures runner wakeups per second over a steady-state window.
// The wheel multiplexes every deadline onto one resettable timer per
// runner, so the rate is bounded by 1/slot regardless of stream count.
func BenchmarkPacingEngineWakeups10k(b *testing.B) {
	eng := pacing.NewEngine(pacing.EngineConfig{})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < benchPacingStreams; i++ {
		s := eng.Register(benchPacingRate, benchPacingBurst)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.Close()
			for s.Await(ctx, benchPacingBurst) == nil {
			}
		}()
	}
	time.Sleep(250 * time.Millisecond) // let every stream reach its first park
	b.ResetTimer()
	start := eng.Stats()
	for i := 0; i < b.N; i++ {
		time.Sleep(benchPacingWindow)
	}
	stop := eng.Stats()
	b.StopTimer()
	secs := (time.Duration(b.N) * benchPacingWindow).Seconds()
	b.ReportMetric(float64(stop.Wakeups-start.Wakeups)/secs, "wakeups/sec")
	b.ReportMetric(float64(stop.Released-start.Released)/secs, "releases/sec")
	cancel()
	wg.Wait()
}

// BenchmarkPacingSleepWakeups10k is the baseline the engine replaced: 10k
// goroutines each pacing its own token bucket with time.Sleep, one runtime
// timer armed per wait. Its wakeups/sec scales with stream count; the
// engine/sleep ratio is gated ≥10x by benchcheck (PacingWakeupRatio10k).
func BenchmarkPacingSleepWakeups10k(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sleeps atomic.Int64
	var wg sync.WaitGroup
	epoch := time.Now()
	for i := 0; i < benchPacingStreams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := pacing.NewPacer(benchPacingRate, benchPacingBurst)
			for ctx.Err() == nil {
				if d := p.Delay(time.Since(epoch), benchPacingBurst); d > 0 {
					sleeps.Add(1)
					time.Sleep(d)
				}
			}
		}()
	}
	time.Sleep(250 * time.Millisecond)
	b.ResetTimer()
	n0 := sleeps.Load()
	for i := 0; i < b.N; i++ {
		time.Sleep(benchPacingWindow)
	}
	n1 := sleeps.Load()
	b.StopTimer()
	secs := (time.Duration(b.N) * benchPacingWindow).Seconds()
	b.ReportMetric(float64(n1-n0)/secs, "wakeups/sec")
	cancel()
	wg.Wait()
}

// BenchmarkPacingStreamsPerCore drives the real cdn.Server end to end with
// loadgen (in-memory transport) and reports concurrent paced streams
// sustained per consumed CPU core, plus the p99 per-stream rate error.
func BenchmarkPacingStreamsPerCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			Streams:   2000,
			Rate:      benchPacingRate,
			Warmup:    2 * time.Second,
			Duration:  4 * time.Second,
			Transport: "inproc",
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed > 0 {
			b.Fatalf("%d/%d streams failed", rep.Failed, rep.Streams)
		}
		b.ReportMetric(rep.StreamsPerCore, "streams/core")
		b.ReportMetric(rep.ErrP99, "rate_err_p99_pct")
	}
}
