package traffic

import (
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// BulkFlow is a long-lived, congestion-window-limited TCP transfer — the
// Fig 8b neighbor ("a standard, congestion window limited TCP Reno
// connection").
type BulkFlow struct {
	conn  *tcp.Conn
	s     *sim.Simulator
	size  units.Bytes
	start time.Duration

	Result    tcp.FetchResult
	Completed bool
}

// NewBulkFlow builds a bulk transfer of size bytes over a fresh connection
// on the shared forward link. Call StartAt to schedule it.
func NewBulkFlow(s *sim.Simulator, flow sim.FlowID, fwd sim.Sender, fwdClass *sim.Classifier,
	revCfg sim.LinkConfig, size units.Bytes) *BulkFlow {
	b := &BulkFlow{
		conn: tcp.NewConn(s, flow, fwd, fwdClass, revCfg, tcp.Config{}),
		s:    s,
		size: size,
	}
	return b
}

// StartAt schedules the transfer to begin at absolute simulated time t
// (the paper starts the TCP neighbor 10 s after playback).
func (b *BulkFlow) StartAt(t time.Duration) {
	b.s.At(t, func() {
		b.start = b.s.Now()
		b.conn.Fetch(b.size, nil, func(r tcp.FetchResult) {
			b.Result = r
			b.Completed = true
		})
	})
}

// Throughput reports the transfer's achieved throughput (0 until complete).
func (b *BulkFlow) Throughput() units.BitsPerSecond {
	if !b.Completed {
		return 0
	}
	return units.Rate(b.Result.Size, b.Result.DoneAt-b.start)
}

// Conn exposes the underlying connection for stat readouts.
func (b *BulkFlow) Conn() *tcp.Conn { return b.conn }

// HTTPLoad repeatedly issues fixed-size HTTP requests over one persistent
// connection and records each response time — the Fig 8c neighbor
// ("repeatedly issue 3MB HTTP requests during video playback").
type HTTPLoad struct {
	conn    *tcp.Conn
	s       *sim.Simulator
	size    units.Bytes
	gap     time.Duration
	stopped bool

	ResponseTimes []time.Duration
}

// NewHTTPLoad builds the load generator: requests of size bytes, with gap
// think time between a response and the next request.
func NewHTTPLoad(s *sim.Simulator, flow sim.FlowID, fwd sim.Sender, fwdClass *sim.Classifier,
	revCfg sim.LinkConfig, size units.Bytes, gap time.Duration) *HTTPLoad {
	return &HTTPLoad{
		conn: tcp.NewConn(s, flow, fwd, fwdClass, revCfg, tcp.Config{}),
		s:    s,
		size: size,
		gap:  gap,
	}
}

// StartAt schedules the first request at absolute simulated time t.
func (h *HTTPLoad) StartAt(t time.Duration) { h.s.At(t, h.issue) }

// Stop prevents further requests after the in-flight one completes.
func (h *HTTPLoad) Stop() { h.stopped = true }

// MeanResponseTime reports the average response time across completed
// requests.
func (h *HTTPLoad) MeanResponseTime() time.Duration {
	if len(h.ResponseTimes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range h.ResponseTimes {
		sum += d
	}
	return sum / time.Duration(len(h.ResponseTimes))
}

func (h *HTTPLoad) issue() {
	if h.stopped {
		return
	}
	h.conn.Fetch(h.size, nil, func(r tcp.FetchResult) {
		h.ResponseTimes = append(h.ResponseTimes, r.ResponseTime())
		h.s.Schedule(h.gap, h.issue)
	})
}
