package traffic

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// lab is the shared-bottleneck topology from the paper's §6.
type lab struct {
	s     *sim.Simulator
	fwd   *sim.Link
	class *sim.Classifier
}

func newLab(rate units.BitsPerSecond, queueBDPs float64) *lab {
	s := sim.New()
	class := sim.NewClassifier()
	bdp := rate.BytesIn(5 * time.Millisecond)
	fwd := sim.NewLink(s, sim.LinkConfig{
		Rate:       rate,
		Delay:      2500 * time.Microsecond,
		QueueLimit: units.Bytes(float64(bdp) * queueBDPs),
	}, class)
	return &lab{s: s, fwd: fwd, class: class}
}

func revCfg() sim.LinkConfig {
	return sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}
}

func TestUDPFlowDelayOnIdleLink(t *testing.T) {
	l := newLab(40*units.Mbps, 4)
	u := NewUDPFlow(l.s, 1, l.fwd, l.class, 5*units.Mbps, 1500)
	u.Start()
	l.s.At(2*time.Second, u.Stop)
	l.s.Run()
	if u.Sent == 0 || u.Arrived == 0 {
		t.Fatal("no packets flowed")
	}
	// Idle 40 Mbps link: one-way delay ≈ 2.5 ms propagation + 0.3 ms
	// serialization.
	mean := u.MeanDelay()
	if mean < 2*time.Millisecond || mean > 4*time.Millisecond {
		t.Errorf("idle-link delay = %v, want ≈ 2.8ms", mean)
	}
	if got := u.LossRate(); got != 0 {
		t.Errorf("idle-link loss = %v", got)
	}
	// CBR rate check: 5 Mbps of 1500 B packets is ~417 pkt/s.
	pps := float64(u.Sent) / 2
	if pps < 400 || pps > 430 {
		t.Errorf("send rate = %.0f pkt/s, want ≈ 417", pps)
	}
}

func TestUDPFlowDelayUnderCongestion(t *testing.T) {
	// A bulk TCP flow fills the queue; UDP one-way delay inflates toward
	// base + queue (Fig 8a's control condition).
	l := newLab(40*units.Mbps, 4)
	u := NewUDPFlow(l.s, 1, l.fwd, l.class, 5*units.Mbps, 1500)
	bulk := NewBulkFlow(l.s, 2, l.fwd, l.class, revCfg(), 40*units.MB)
	u.Start()
	bulk.StartAt(0)
	l.s.At(5*time.Second, u.Stop)
	l.s.RunUntil(6 * time.Second)
	congested := u.MeanDelay()
	if congested < 8*time.Millisecond {
		t.Errorf("congested delay = %v, want inflated well above 2.8ms", congested)
	}
}

func TestBulkFlowThroughput(t *testing.T) {
	l := newLab(40*units.Mbps, 4)
	b := NewBulkFlow(l.s, 1, l.fwd, l.class, revCfg(), 20*units.MB)
	b.StartAt(100 * time.Millisecond)
	l.s.Run()
	if !b.Completed {
		t.Fatal("bulk flow did not complete")
	}
	got := b.Throughput().Mbps()
	if got < 30 || got > 41 {
		t.Errorf("solo bulk throughput = %.1f Mbps, want ≈ 40", got)
	}
}

func TestHTTPLoadResponseTimes(t *testing.T) {
	l := newLab(40*units.Mbps, 4)
	h := NewHTTPLoad(l.s, 1, l.fwd, l.class, revCfg(), 3*units.MB, 100*time.Millisecond)
	h.StartAt(0)
	l.s.At(10*time.Second, h.Stop)
	l.s.RunUntil(12 * time.Second)
	if len(h.ResponseTimes) < 5 {
		t.Fatalf("only %d responses", len(h.ResponseTimes))
	}
	// 3 MB at 40 Mbps is 600 ms of transfer; with handshake and slow start
	// the first response is slower, later ones near that floor.
	mean := h.MeanResponseTime()
	if mean < 500*time.Millisecond || mean > 1200*time.Millisecond {
		t.Errorf("idle-link response time = %v, want ≈ 0.6-1s", mean)
	}
}

func TestHTTPLoadSlowsUnderCongestion(t *testing.T) {
	idle := func() time.Duration {
		l := newLab(40*units.Mbps, 4)
		h := NewHTTPLoad(l.s, 1, l.fwd, l.class, revCfg(), 3*units.MB, 100*time.Millisecond)
		h.StartAt(0)
		l.s.At(8*time.Second, h.Stop)
		l.s.RunUntil(10 * time.Second)
		return h.MeanResponseTime()
	}()
	congested := func() time.Duration {
		l := newLab(40*units.Mbps, 4)
		h := NewHTTPLoad(l.s, 1, l.fwd, l.class, revCfg(), 3*units.MB, 100*time.Millisecond)
		bulk := NewBulkFlow(l.s, 2, l.fwd, l.class, revCfg(), 100*units.MB)
		h.StartAt(0)
		bulk.StartAt(0)
		l.s.At(8*time.Second, h.Stop)
		l.s.RunUntil(10 * time.Second)
		return h.MeanResponseTime()
	}()
	if congested <= idle {
		t.Errorf("congested response time %v not above idle %v", congested, idle)
	}
}

func TestUDPFlowPanicsOnBadConfig(t *testing.T) {
	l := newLab(40*units.Mbps, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewUDPFlow(l.s, 1, l.fwd, l.class, 0, 1500)
}
