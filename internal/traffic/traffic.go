// Package traffic implements the neighbor workloads the paper's §6 lab
// experiments share a bottleneck with: a paced UDP constant-bit-rate flow
// measured for one-way delay (Fig 8a), a bulk TCP flow measured for
// throughput (Fig 8b), and repeated fixed-size HTTP requests measured for
// response time (Fig 8c). (The fourth neighbor, another video session, is
// just a second player.SimPlayer.)
package traffic

import (
	"time"

	"repro/internal/sim"
	"repro/internal/tdigest"
	"repro/internal/units"
)

// UDPFlow sends constant-bit-rate UDP packets through a (shared) forward
// link and records the one-way delay of each delivered packet. Lost packets
// count separately.
type UDPFlow struct {
	s    *sim.Simulator
	fwd  sim.Sender
	flow sim.FlowID
	rate units.BitsPerSecond
	size units.Bytes

	seq      int64
	stopped  bool
	delaySum float64 // Σ delay in ms, for MeanDelay

	Delays  *tdigest.TDigest // one-way delay samples, milliseconds
	Sent    int64
	Arrived int64
}

// NewUDPFlow builds a CBR flow of packetSize packets at rate through fwd,
// registering itself on fwdClass for flow. Call Start to begin sending.
func NewUDPFlow(s *sim.Simulator, flow sim.FlowID, fwd sim.Sender, fwdClass *sim.Classifier,
	rate units.BitsPerSecond, packetSize units.Bytes) *UDPFlow {
	if rate <= 0 || packetSize <= 0 {
		panic("traffic: UDP flow needs positive rate and packet size")
	}
	u := &UDPFlow{
		s: s, fwd: fwd, flow: flow, rate: rate, size: packetSize,
		Delays: tdigest.New(100),
	}
	fwdClass.Register(flow, sim.HandlerFunc(u.receive))
	return u
}

// Start begins transmission; the flow sends until Stop or the simulation
// ends.
func (u *UDPFlow) Start() { u.sendNext() }

// Stop halts transmission after the next scheduled packet.
func (u *UDPFlow) Stop() { u.stopped = true }

// MeanDelay reports the mean one-way delay of delivered packets.
func (u *UDPFlow) MeanDelay() time.Duration {
	if u.Arrived == 0 {
		return 0
	}
	// The digest's median approximates the center; for a mean we keep a
	// running sum instead.
	return time.Duration(u.delaySum / float64(u.Arrived) * float64(time.Millisecond))
}

// LossRate reports the fraction of sent packets that never arrived (only
// meaningful once in-flight packets have drained).
func (u *UDPFlow) LossRate() float64 {
	if u.Sent == 0 {
		return 0
	}
	return float64(u.Sent-u.Arrived) / float64(u.Sent)
}

func (u *UDPFlow) sendNext() {
	if u.stopped {
		return
	}
	p := u.s.AllocPacket()
	p.Flow, p.Seq, p.Size, p.SentAt = u.flow, u.seq, u.size, u.s.Now()
	u.seq++
	u.Sent++
	u.fwd.Send(p)
	u.s.Schedule(u.rate.TimeToSend(u.size), u.sendNext)
}

func (u *UDPFlow) receive(p *sim.Packet) {
	u.Arrived++
	d := u.s.Now() - p.SentAt
	ms := d.Seconds() * 1000
	u.Delays.Add(ms)
	u.delaySum += ms
}
