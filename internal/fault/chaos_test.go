package fault

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// chaosBody is a next handler serving a fixed 64 KB body in 8 KB writes, so
// mid-body faults have writes to intercept.
var chaosBody = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	buf := []byte(strings.Repeat("x", 8*1024))
	for i := 0; i < 8; i++ {
		w.Write(buf)
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
	}
})

// chaosOutcomes fetches the server n times and classifies each response.
func chaosOutcomes(t *testing.T, url string, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		resp, err := http.Get(url)
		if err != nil {
			out = append(out, "connect-error")
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode != http.StatusOK:
			out = append(out, "status")
		case rerr != nil:
			out = append(out, "reset")
		case len(body) != 64*1024:
			out = append(out, "short")
		default:
			out = append(out, "ok")
		}
	}
	return out
}

func TestChaosDeterministicOutcomes(t *testing.T) {
	cfg := ChaosConfig{
		Seed:            42,
		ErrorProb:       0.3,
		ResetProb:       0.3,
		ResetAfterBytes: 16 * 1024,
	}
	run := func() ([]string, int) {
		chaos, err := NewChaos(cfg, chaosBody)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(chaos)
		defer srv.Close()
		return chaosOutcomes(t, srv.URL, 30), chaos.Injected()
	}
	a, an := run()
	b, bn := run()
	if an != bn {
		t.Fatalf("injection counts differ across identical runs: %d vs %d", an, bn)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d outcome %q vs %q under the same seed", i, a[i], b[i])
		}
	}
	kinds := map[string]int{}
	for _, k := range a {
		kinds[k]++
	}
	if kinds["status"] == 0 || kinds["reset"] == 0 || kinds["ok"] == 0 {
		t.Errorf("expected a mix of errors, resets and successes, got %v", kinds)
	}
	if an != kinds["status"]+kinds["reset"] {
		t.Errorf("Injected() = %d, but observed %d faulty responses", an, kinds["status"]+kinds["reset"])
	}
}

func TestChaosMaxInjectionsStormThenRecovery(t *testing.T) {
	// An error storm capped at 3 injections: after the cap, every request
	// succeeds.
	chaos, err := NewChaos(ChaosConfig{Seed: 1, ErrorProb: 1, MaxInjections: 3}, chaosBody)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(chaos)
	defer srv.Close()
	out := chaosOutcomes(t, srv.URL, 8)
	want := []string{"status", "status", "status", "ok", "ok", "ok", "ok", "ok"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("request %d: %q, want %q (storm of 3 then recovery)", i, out[i], want[i])
		}
	}
	if chaos.Injected() != 3 {
		t.Errorf("Injected() = %d, want 3", chaos.Injected())
	}
}

func TestChaosResetDeliversExactPrefix(t *testing.T) {
	chaos, err := NewChaos(ChaosConfig{Seed: 1, ResetProb: 1, ResetAfterBytes: 20_000}, chaosBody)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(chaos)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr == nil {
		t.Fatal("reset injection delivered a clean body")
	}
	if len(body) != 20_000 {
		t.Errorf("delivered prefix = %d bytes, want exactly 20000", len(body))
	}
}

func TestChaosTimelineBlackout(t *testing.T) {
	// A blackout covering t=0..10s: every request during it is aborted.
	chaos, err := NewChaos(ChaosConfig{
		Timeline: MustTimeline(Phase{Start: 0, Duration: 10 * time.Second, Multiplier: 0}),
	}, chaosBody)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(chaos)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Fatal("request during a blackout succeeded")
	}
	if chaos.Injected() == 0 {
		t.Error("blackout not counted as an injection")
	}
}

func TestChaosInjectedElapsedClock(t *testing.T) {
	// A blackout scripted for virtual t=10s..20s. With ChaosConfig.Elapsed
	// injected, the virtual clock — not the wall clock — decides which
	// requests the blackout swallows, so two runs with the same seed and
	// the same clock script classify identically however long the real
	// requests take.
	ticks := []time.Duration{
		0, 5 * time.Second, // before the blackout
		10 * time.Second, 15 * time.Second, // inside [10s, 20s)
		20 * time.Second, 25 * time.Second, // after it ends
	}
	run := func() []string {
		var now time.Duration
		chaos, err := NewChaos(ChaosConfig{
			Seed:     7,
			Timeline: MustTimeline(Phase{Start: 10 * time.Second, Duration: 10 * time.Second, Multiplier: 0}),
			Elapsed:  func() time.Duration { return now },
		}, chaosBody)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(chaos)
		defer srv.Close()
		var out []string
		for _, tick := range ticks {
			now = tick
			out = append(out, chaosOutcomes(t, srv.URL, 1)...)
		}
		return out
	}
	first, second := run(), run()
	want := []string{"ok", "ok", "connect-error", "connect-error", "ok", "ok"}
	if strings.Join(first, ",") != strings.Join(want, ",") {
		t.Errorf("outcomes with injected clock = %v, want %v", first, want)
	}
	if strings.Join(first, ",") != strings.Join(second, ",") {
		t.Errorf("identical seed+clock runs diverged: %v vs %v", first, second)
	}
}

func TestChaosValidation(t *testing.T) {
	if _, err := NewChaos(ChaosConfig{ErrorProb: 1.5}, chaosBody); err == nil {
		t.Error("out-of-range probability accepted")
	}
	if _, err := NewChaos(ChaosConfig{}, nil); err == nil {
		t.Error("nil next handler accepted")
	}
}
