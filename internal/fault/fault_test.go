package fault

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestGilbertElliottDeterminism(t *testing.T) {
	// Identical seeds must produce identical loss sequences — the property
	// every "flaky path" scenario leans on.
	cfg := GEConfig{PGoodToBad: 0.01, PBadToGood: 0.3, LossBad: 0.5}
	run := func(seed int64) []bool {
		ge, err := NewGilbertElliott(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 5000)
		for i := range out {
			out[i] = ge.Lose()
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss sequences diverge at step %d under the same seed", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 5000-step loss sequences")
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	// Long-run loss rate ≈ badOccupancy × LossBad (LossGood = 0).
	cfg := GEConfig{PGoodToBad: 0.02, PBadToGood: 0.2, LossBad: 0.4}
	ge, err := NewGilbertElliott(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2_000_000
	lost, bursts := ge.LossRun(n)
	want := cfg.PGoodToBad / (cfg.PGoodToBad + cfg.PBadToGood) * cfg.LossBad
	got := float64(lost) / n
	if math.Abs(got-want) > 0.2*want {
		t.Errorf("long-run loss rate %.4f, want ≈ %.4f", got, want)
	}
	if bursts == 0 || bursts > lost {
		t.Errorf("bursts = %d with %d losses", bursts, lost)
	}
	// Losses must be burstier than i.i.d.: mean burst length > 1 by a margin.
	if meanBurst := float64(lost) / float64(bursts); meanBurst < 1.2 {
		t.Errorf("mean burst length %.2f; Gilbert-Elliott should cluster losses", meanBurst)
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliott(GEConfig{LossBad: 1.5}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("out-of-range probability accepted")
	}
	if _, err := NewGilbertElliott(GEConfig{PGoodToBad: 0.1, LossBad: 0.5}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("absorbing bad state accepted")
	}
	if _, err := NewGilbertElliott(GEConfig{LossBad: 0.5, PBadToGood: 0.1}, nil); err == nil {
		t.Error("enabled chain without rng accepted")
	}
	// A nil chain and a disabled chain never lose.
	var nilGE *GilbertElliott
	if nilGE.Lose() || nilGE.Bad() {
		t.Error("nil chain lost a unit")
	}
	off, err := NewGilbertElliott(GEConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if off.Lose() {
		t.Error("disabled chain lost a unit")
	}
}

func TestTimelineMultiplier(t *testing.T) {
	tl, err := NewTimeline(
		Phase{Start: 10 * time.Second, Duration: 5 * time.Second, Multiplier: 0},
		Phase{Start: 30 * time.Second, Duration: 10 * time.Second, Multiplier: 0.25},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1}, {9 * time.Second, 1},
		{10 * time.Second, 0}, {14 * time.Second, 0},
		{15 * time.Second, 1}, {29 * time.Second, 1},
		{30 * time.Second, 0.25}, {39 * time.Second, 0.25},
		{40 * time.Second, 1}, {time.Hour, 1},
	}
	for _, c := range cases {
		if got := tl.Multiplier(c.at); got != c.want {
			t.Errorf("Multiplier(%v) = %g, want %g", c.at, got, c.want)
		}
	}
	var nilTL *Timeline
	if nilTL.Multiplier(time.Second) != 1 {
		t.Error("nil timeline should report multiplier 1")
	}
}

func TestTimelineNextRecovery(t *testing.T) {
	tl := MustTimeline(
		Phase{Start: 10 * time.Second, Duration: 5 * time.Second, Multiplier: 0},
		// Back-to-back blackout: recovery must traverse both.
		Phase{Start: 15 * time.Second, Duration: 5 * time.Second, Multiplier: 0},
		Phase{Start: 40 * time.Second, Duration: 5 * time.Second, Multiplier: 0.5},
	)
	if got := tl.NextRecovery(12 * time.Second); got != 20*time.Second {
		t.Errorf("NextRecovery(12s) = %v, want 20s", got)
	}
	// Outside a blackout (including inside a mere bandwidth step) time is
	// unchanged.
	for _, at := range []time.Duration{0, 25 * time.Second, 42 * time.Second} {
		if got := tl.NextRecovery(at); got != at {
			t.Errorf("NextRecovery(%v) = %v, want unchanged", at, got)
		}
	}
}

func TestTimelineValidation(t *testing.T) {
	if _, err := NewTimeline(
		Phase{Start: 0, Duration: 10 * time.Second, Multiplier: 0},
		Phase{Start: 5 * time.Second, Duration: 2 * time.Second, Multiplier: 0.5},
	); err == nil {
		t.Error("overlapping phases accepted")
	}
	if _, err := NewTimeline(Phase{Start: -time.Second, Duration: time.Second, Multiplier: 0}); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := NewTimeline(Phase{Start: 0, Duration: 0, Multiplier: 0}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := NewTimeline(Phase{Start: 0, Duration: time.Second, Multiplier: 2}); err == nil {
		t.Error("multiplier above 1 accepted")
	}
}

func TestScenarioPresets(t *testing.T) {
	for _, name := range ScenarioNames() {
		scn, err := LookupScenario(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if scn.Path != nil {
			if err := scn.Path.Validate(); err != nil {
				t.Errorf("%s: invalid path profile: %v", name, err)
			}
		}
		if err := scn.Chaos.validate(); err != nil {
			t.Errorf("%s: invalid chaos config: %v", name, err)
		}
		if scn.Path == nil && !scn.Chaos.Enabled() && !scn.Storm.Enabled() {
			t.Errorf("%s: scenario injects nothing", name)
		}
		if scn.Storm != nil {
			st := scn.Storm
			if !st.Enabled() {
				t.Errorf("%s: storm config present but not runnable", name)
			}
			if st.Fetchers <= st.MaxInFlight {
				t.Errorf("%s: %d fetchers cannot overload a %d-deep window", name, st.Fetchers, st.MaxInFlight)
			}
			if st.MaxAttempts < 2 {
				t.Errorf("%s: storm clients need a retry budget to drain the shed load", name)
			}
		}
	}
	if _, err := LookupScenario("no-such-scenario"); err == nil {
		t.Error("unknown scenario accepted")
	}
	off, err := LookupScenario("")
	if err != nil || off.Path.Enabled() || off.Chaos.Enabled() {
		t.Errorf("empty scenario name should resolve to an inert scenario (err %v)", err)
	}
}
