// Package fault is the repo's deterministic fault-injection layer: the
// network pathologies that production paths exhibit but the clean simulator
// and loopback HTTP demo do not. It has two halves:
//
//   - A scripted fault model for the sim/netmodel substrates: Gilbert-Elliott
//     two-state burst loss (real loss arrives in bursts, not i.i.d.), timed
//     link blackouts, and step bandwidth drops, all drawn from explicit seeds
//     so "flaky path" scenarios reproduce bit-for-bit.
//   - An HTTP chaos middleware (chaos.go) for the cdn chunk server: injected
//     5xx responses, slow first bytes, mid-body stalls and connection resets,
//     again behind a seeded RNG.
//
// Both halves are pure configuration plus small deterministic state machines;
// the consuming layers (sim.FaultyLink, netmodel.Conn, cdn middleware
// wiring) decide where in their pipelines the faults apply.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// GEConfig parameterizes a Gilbert-Elliott two-state loss chain. The chain
// sits in a Good or Bad state; each step (one packet, or one TCP segment in
// the analytic model) may lose the unit with the state's loss probability,
// then transitions states. The stationary bad-state occupancy is
// PGoodToBad/(PGoodToBad+PBadToGood) and the mean burst length in steps is
// 1/PBadToGood.
type GEConfig struct {
	// PGoodToBad is the per-step probability of entering the bad state.
	PGoodToBad float64
	// PBadToGood is the per-step probability of leaving the bad state.
	PBadToGood float64
	// LossGood is the loss probability while in the good state (often 0).
	LossGood float64
	// LossBad is the loss probability while in the bad state.
	LossBad float64
}

// Enabled reports whether the chain can ever lose anything.
func (c GEConfig) Enabled() bool {
	return c.LossBad > 0 || c.LossGood > 0
}

func (c GEConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodToBad", c.PGoodToBad}, {"PBadToGood", c.PBadToGood},
		{"LossGood", c.LossGood}, {"LossBad", c.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %g out of [0, 1]", p.name, p.v)
		}
	}
	if c.Enabled() && c.PGoodToBad > 0 && c.PBadToGood == 0 {
		return fmt.Errorf("fault: PBadToGood = 0 would trap the chain in the bad state")
	}
	return nil
}

// GilbertElliott is a running instance of the chain. It is not safe for
// concurrent use; each connection or link owns its own instance so fault
// sequences stay deterministic per flow.
type GilbertElliott struct {
	cfg GEConfig
	rng *rand.Rand
	bad bool
}

// NewGilbertElliott builds a chain starting in the good state. rng must not
// be nil when the chain is enabled.
func NewGilbertElliott(cfg GEConfig, rng *rand.Rand) (*GilbertElliott, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Enabled() && rng == nil {
		return nil, fmt.Errorf("fault: Gilbert-Elliott chain needs an rng")
	}
	return &GilbertElliott{cfg: cfg, rng: rng}, nil
}

// Bad reports whether the chain is currently in the bad state.
func (g *GilbertElliott) Bad() bool { return g != nil && g.bad }

// Lose advances the chain one step and reports whether that step's unit is
// lost. A nil chain never loses.
func (g *GilbertElliott) Lose() bool {
	if g == nil || !g.cfg.Enabled() {
		return false
	}
	p := g.cfg.LossGood
	if g.bad {
		p = g.cfg.LossBad
	}
	lost := p > 0 && g.rng.Float64() < p
	if g.bad {
		if g.cfg.PBadToGood > 0 && g.rng.Float64() < g.cfg.PBadToGood {
			g.bad = false
		}
	} else if g.cfg.PGoodToBad > 0 && g.rng.Float64() < g.cfg.PGoodToBad {
		g.bad = true
	}
	return lost
}

// LossRun advances the chain n steps and reports how many units were lost
// and in how many distinct bursts (maximal runs of consecutive losses). The
// burst count is what loss-recovery cost models care about: one burst costs
// roughly one recovery round regardless of its length.
func (g *GilbertElliott) LossRun(n int64) (lost, bursts int64) {
	inBurst := false
	for i := int64(0); i < n; i++ {
		if g.Lose() {
			lost++
			if !inBurst {
				bursts++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	return lost, bursts
}

// Phase is one scripted interval of a Timeline: between Start and
// Start+Duration the path's capacity is multiplied by Multiplier. A
// multiplier of 0 is a blackout (nothing gets through); 0 < m < 1 is a step
// bandwidth drop; values above 1 are rejected (fault injection only takes
// capacity away).
type Phase struct {
	Start      time.Duration
	Duration   time.Duration
	Multiplier float64
}

// End reports when the phase stops applying.
func (p Phase) End() time.Duration { return p.Start + p.Duration }

// Timeline is a scripted sequence of capacity phases. Outside every phase
// the multiplier is 1 (the path at its nominal capacity). Timelines are
// immutable after construction and safe for concurrent readers.
type Timeline struct {
	phases []Phase
}

// NewTimeline validates and sorts the phases. Overlapping phases are
// rejected: a timeline is a script, and an ambiguous script would make
// "reproducible scenario" a lie.
func NewTimeline(phases ...Phase) (*Timeline, error) {
	ps := make([]Phase, len(phases))
	copy(ps, phases)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	for i, p := range ps {
		if p.Start < 0 {
			return nil, fmt.Errorf("fault: phase %d starts before time zero", i)
		}
		if p.Duration <= 0 {
			return nil, fmt.Errorf("fault: phase %d needs a positive duration", i)
		}
		if p.Multiplier < 0 || p.Multiplier > 1 {
			return nil, fmt.Errorf("fault: phase %d multiplier %g out of [0, 1]", i, p.Multiplier)
		}
		if i > 0 && p.Start < ps[i-1].End() {
			return nil, fmt.Errorf("fault: phase %d overlaps phase %d", i, i-1)
		}
	}
	return &Timeline{phases: ps}, nil
}

// MustTimeline is NewTimeline for static scenario tables, panicking on
// invalid phases (a programming error in the table, not runtime input).
func MustTimeline(phases ...Phase) *Timeline {
	t, err := NewTimeline(phases...)
	if err != nil {
		panic(err)
	}
	return t
}

// Phases returns a copy of the script, sorted by start time.
func (t *Timeline) Phases() []Phase {
	if t == nil {
		return nil
	}
	out := make([]Phase, len(t.phases))
	copy(out, t.phases)
	return out
}

// Multiplier reports the capacity multiplier at time at: 1 outside every
// phase. A nil timeline always reports 1.
func (t *Timeline) Multiplier(at time.Duration) float64 {
	if t == nil {
		return 1
	}
	// Phases are sorted and non-overlapping; find the last phase starting
	// at or before at.
	i := sort.Search(len(t.phases), func(i int) bool { return t.phases[i].Start > at })
	if i == 0 {
		return 1
	}
	if p := t.phases[i-1]; at < p.End() {
		return p.Multiplier
	}
	return 1
}

// NextRecovery reports the earliest time ≥ at when the multiplier becomes
// nonzero — when a blackout covering at ends. If at is not inside a
// blackout, it returns at unchanged. Back-to-back blackout phases are
// traversed.
func (t *Timeline) NextRecovery(at time.Duration) time.Duration {
	if t == nil {
		return at
	}
	for t.Multiplier(at) == 0 {
		i := sort.Search(len(t.phases), func(i int) bool { return t.phases[i].Start > at })
		// Multiplier(at) == 0 implies phases[i-1] covers at.
		at = t.phases[i-1].End()
	}
	return at
}

// Profile is the path-fault half of a scenario: a burst-loss chain plus a
// capacity timeline. A Profile is pure configuration — consuming layers
// instantiate per-flow chain state from it with their own seeded RNGs — so
// one Profile is safely shared across a whole simulated population.
type Profile struct {
	// Loss is the burst-loss chain; the zero value disables it.
	Loss GEConfig
	// Timeline scripts blackouts and bandwidth steps; nil disables it.
	Timeline *Timeline
}

// Enabled reports whether the profile injects anything at all.
func (p *Profile) Enabled() bool {
	return p != nil && (p.Loss.Enabled() || (p.Timeline != nil && len(p.Timeline.phases) > 0))
}

// Validate checks the profile's chain parameters.
func (p *Profile) Validate() error {
	if p == nil {
		return nil
	}
	return p.Loss.validate()
}
