package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Scenario is a named, reproducible hostile-network preset with both halves
// of the fault model: path faults for the sim/netmodel substrates and HTTP
// chaos for the cdn server. Either half may be absent.
type Scenario struct {
	Name        string
	Description string
	// Path is the sim/netmodel fault profile; nil when the scenario is
	// CDN-only.
	Path *Profile
	// Chaos is the HTTP chaos config (Seed left 0; callers stamp their run
	// seed in). Zero when the scenario is path-only.
	Chaos ChaosConfig
	// Storm, when set, scripts a load-storm against a small admission
	// window (see StormConfig); nil for scenarios without one.
	Storm *StormConfig
}

// scenarios is the preset table. Magnitudes are chosen to sit far from the
// resilient client's default thresholds (stalls much longer than the stall
// watchdog, slow starts much shorter than the TTFB deadline) so the
// recovery behaviour — and therefore every retry/resume/downgrade count —
// is deterministic for a fixed seed.
var scenarios = map[string]Scenario{
	"burst-loss": {
		Name:        "burst-loss",
		Description: "Gilbert-Elliott burst loss on the path; 5xx bursts and mid-body resets at the CDN",
		Path: &Profile{
			Loss: GEConfig{PGoodToBad: 0.003, PBadToGood: 0.2, LossBad: 0.3},
		},
		Chaos: ChaosConfig{
			ErrorProb:       0.12,
			ResetProb:       0.10,
			ResetAfterBytes: 24 * 1024,
		},
	},
	"blackout": {
		Name:        "blackout",
		Description: "timed link blackouts (3 s at t=20 s, 5 s at t=60 s); CDN unreachable during them",
		Path: &Profile{
			Timeline: MustTimeline(
				Phase{Start: 20 * time.Second, Duration: 3 * time.Second, Multiplier: 0},
				Phase{Start: 60 * time.Second, Duration: 5 * time.Second, Multiplier: 0},
			),
		},
		Chaos: ChaosConfig{
			Timeline: MustTimeline(
				Phase{Start: 20 * time.Second, Duration: 3 * time.Second, Multiplier: 0},
				Phase{Start: 60 * time.Second, Duration: 5 * time.Second, Multiplier: 0},
			),
		},
	},
	"bw-drop": {
		Name:        "bw-drop",
		Description: "step bandwidth drops (30% of capacity between t=30 s and t=60 s); slow first bytes at the CDN",
		Path: &Profile{
			Timeline: MustTimeline(
				Phase{Start: 30 * time.Second, Duration: 30 * time.Second, Multiplier: 0.3},
			),
		},
		Chaos: ChaosConfig{
			SlowStartProb:  0.25,
			SlowStartDelay: 150 * time.Millisecond,
		},
	},
	"flaky-cdn": {
		Name:        "flaky-cdn",
		Description: "CDN-only chaos: 5xx, slow first bytes, mid-body stalls and connection resets",
		Chaos: ChaosConfig{
			ErrorProb:       0.15,
			ResetProb:       0.10,
			ResetAfterBytes: 24 * 1024,
			StallProb:       0.08,
			StallAfterBytes: 24 * 1024,
			StallDuration:   2 * time.Second,
			SlowStartProb:   0.10,
			SlowStartDelay:  150 * time.Millisecond,
		},
	},
	"load-storm": {
		Name:        "load-storm",
		Description: "64 concurrent fetchers against an 8-deep admission window with an 8-deep queue; excess sheds with Retry-After",
		Storm: &StormConfig{
			Fetchers:     64,
			MaxInFlight:  8,
			MaxQueue:     8,
			QueueTimeout: 2 * time.Second,
			ChunkBytes:   256_000,
			PaceRateBps:  20_000_000, // ~100 ms residency per admitted stream
			RetryAfter:   1 * time.Second,
			MaxAttempts:  12,
		},
	},
	"hostile": {
		Name:        "hostile",
		Description: "everything at once: burst loss, a mid-session blackout, a bandwidth step, and a flaky CDN",
		Path: &Profile{
			Loss: GEConfig{PGoodToBad: 0.002, PBadToGood: 0.25, LossBad: 0.25},
			Timeline: MustTimeline(
				Phase{Start: 25 * time.Second, Duration: 3 * time.Second, Multiplier: 0},
				Phase{Start: 50 * time.Second, Duration: 20 * time.Second, Multiplier: 0.4},
			),
		},
		Chaos: ChaosConfig{
			ErrorProb:       0.10,
			ResetProb:       0.08,
			ResetAfterBytes: 24 * 1024,
			StallProb:       0.05,
			StallAfterBytes: 24 * 1024,
			StallDuration:   2 * time.Second,
			SlowStartProb:   0.08,
			SlowStartDelay:  150 * time.Millisecond,
		},
	},
}

// LookupScenario resolves a preset by name ("off" and "" resolve to the
// empty scenario).
func LookupScenario(name string) (Scenario, error) {
	if name == "" || name == "off" {
		return Scenario{Name: "off"}, nil
	}
	s, ok := scenarios[name]
	if !ok {
		return Scenario{}, fmt.Errorf("fault: unknown chaos scenario %q (have %s)", name, strings.Join(ScenarioNames(), ", "))
	}
	return s, nil
}

// ScenarioNames lists the presets in sorted order.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
