package fault

import (
	"time"
)

// StormConfig scripts a load-storm: many concurrent fetchers thrown at a
// server whose admission window is deliberately small, so the overload
// pipeline (admit → queue → shed with Retry-After) is exercised end to
// end. The fault package only describes the storm; drivers live next to
// the HTTP client (cmd/sammy-eval's storm experiment and the cdn overload
// tests) because fault must not import cdn.
type StormConfig struct {
	// Fetchers is the number of concurrent clients.
	Fetchers int
	// MaxInFlight and MaxQueue size the admission window under test —
	// much smaller than Fetchers, or there is no storm.
	MaxInFlight int
	MaxQueue    int
	// QueueTimeout is the per-request admission queue deadline.
	QueueTimeout time.Duration
	// ChunkBytes is the size of each fetched chunk.
	ChunkBytes int64
	// PaceRateBps paces each admitted stream (0 = unpaced), giving
	// admitted requests real residency so the window actually fills.
	PaceRateBps int64
	// RetryAfter is the shed hint the server advertises.
	RetryAfter time.Duration
	// MaxAttempts bounds each fetcher's retry budget; it must cover a few
	// shed-and-retry rounds or the storm cannot drain.
	MaxAttempts int
}

// Enabled reports whether the config describes a runnable storm.
func (s *StormConfig) Enabled() bool {
	return s != nil && s.Fetchers > 0 && s.MaxInFlight > 0
}
