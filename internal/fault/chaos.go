package fault

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// ChaosConfig parameterizes the HTTP chaos middleware: each request draws
// from a seeded RNG and at most one fault is injected, in priority order
// blackout > error > reset > stall > slow-first-byte. Probabilities are per
// request; a zero config injects nothing.
type ChaosConfig struct {
	// Seed drives every injection decision; identical seeds and request
	// sequences yield identical fault sequences.
	Seed int64

	// ErrorProb injects an immediate error response (no body).
	ErrorProb float64
	// ErrorCode is the injected status; default 503.
	ErrorCode int

	// ResetProb arms a mid-body connection reset: after ResetAfterBytes of
	// the response body the connection is aborted, which a client observes
	// as an unexpected EOF / connection reset.
	ResetProb float64
	// ResetAfterBytes is the body offset of the reset; default 32 KB.
	ResetAfterBytes int64

	// StallProb arms a mid-body stall: after StallAfterBytes the writer
	// sleeps StallDuration once before continuing.
	StallProb float64
	// StallAfterBytes is the body offset of the stall; default 32 KB.
	StallAfterBytes int64
	// StallDuration is how long the stall lasts; default 2 s.
	StallDuration time.Duration

	// SlowStartProb delays the response (headers and first byte) by
	// SlowStartDelay.
	SlowStartProb float64
	// SlowStartDelay is the injected time to first byte; default 300 ms.
	SlowStartDelay time.Duration

	// Timeline, when set, scripts CDN blackouts on the clock measured from
	// the middleware's construction: requests arriving while the
	// multiplier is 0 are aborted before headers.
	Timeline *Timeline

	// Elapsed positions the Timeline: it reports how long the middleware
	// has been running. Nil defaults to the wall clock, which is fine for
	// live servers but nondeterministic; deterministic harnesses inject a
	// virtual clock here so identical seeds replay identical blackouts.
	Elapsed func() time.Duration

	// MaxInjections caps the total number of injected faults; 0 means
	// unlimited. A cap turns "error storm" configs into deterministic
	// storm-then-recovery scripts.
	MaxInjections int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.ErrorCode == 0 {
		c.ErrorCode = http.StatusServiceUnavailable
	}
	if c.ResetAfterBytes <= 0 {
		c.ResetAfterBytes = 32 * 1024
	}
	if c.StallAfterBytes <= 0 {
		c.StallAfterBytes = 32 * 1024
	}
	if c.StallDuration <= 0 {
		c.StallDuration = 2 * time.Second
	}
	if c.SlowStartDelay <= 0 {
		c.SlowStartDelay = 300 * time.Millisecond
	}
	return c
}

func (c ChaosConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ErrorProb", c.ErrorProb}, {"ResetProb", c.ResetProb},
		{"StallProb", c.StallProb}, {"SlowStartProb", c.SlowStartProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %g out of [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// Enabled reports whether the config can inject anything.
func (c ChaosConfig) Enabled() bool {
	return c.ErrorProb > 0 || c.ResetProb > 0 || c.StallProb > 0 ||
		c.SlowStartProb > 0 || c.Timeline != nil
}

// ChaosMetrics counts injected faults by kind. Nil disables instrumentation;
// obs types no-op on nil fields.
type ChaosMetrics struct {
	Injected   *obs.Counter // all injected faults
	Errors     *obs.Counter // injected 5xx responses
	Resets     *obs.Counter // armed mid-body connection resets
	Stalls     *obs.Counter // armed mid-body stalls
	SlowStarts *obs.Counter // injected slow first bytes
	Blackouts  *obs.Counter // requests aborted by a timeline blackout

	// Recorder receives one "fault_injected" event per injection
	// (Subj = kind, V = magnitude: status code, byte offset or delay ms).
	Recorder *obs.Recorder
}

// NewChaosMetrics builds chaos metrics on registry r (nil r yields nil).
func NewChaosMetrics(r *obs.Registry) *ChaosMetrics {
	if r == nil {
		return nil
	}
	return &ChaosMetrics{
		Injected:   r.Counter("fault_injected"),
		Errors:     r.Counter("fault_injected_errors"),
		Resets:     r.Counter("fault_injected_resets"),
		Stalls:     r.Counter("fault_injected_stalls"),
		SlowStarts: r.Counter("fault_injected_slow_starts"),
		Blackouts:  r.Counter("fault_injected_blackouts"),
		Recorder:   r.Recorder(),
	}
}

// Chaos is the HTTP chaos middleware. Injection decisions are serialized
// under a mutex so a sequential client sees a deterministic fault sequence
// for a given seed.
type Chaos struct {
	cfg  ChaosConfig
	next http.Handler

	mu       sync.Mutex
	rng      *rand.Rand
	injected int
	elapsed  func() time.Duration

	// Metrics receives injection telemetry; set by NewChaos from the
	// process-wide obs registry when one is installed.
	Metrics *ChaosMetrics
}

// NewChaos wraps next with fault injection per cfg. When a process-wide obs
// registry is installed (obs.SetDefault), injection counters attach to it.
func NewChaos(cfg ChaosConfig, next http.Handler) (*Chaos, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("fault: chaos middleware needs a next handler")
	}
	elapsed := cfg.Elapsed
	if elapsed == nil {
		elapsed = wallElapsed()
	}
	return &Chaos{
		cfg:     cfg.withDefaults(),
		next:    next,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		elapsed: elapsed,
		Metrics: NewChaosMetrics(obs.Default()),
	}, nil
}

// wallElapsed is the default Elapsed hook for live servers: time since the
// middleware was constructed. Deterministic harnesses must inject
// ChaosConfig.Elapsed instead; this is the one sanctioned wall-clock read
// in the package.
func wallElapsed() func() time.Duration {
	start := time.Now() //sammy:nondeterministic-ok: default live-server clock; deterministic runs inject ChaosConfig.Elapsed
	return func() time.Duration {
		return time.Since(start) //sammy:nondeterministic-ok: see wallElapsed
	}
}

// Injected reports how many faults have been injected so far.
func (c *Chaos) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// chaosAction is one decided injection.
type chaosAction int

const (
	actNone chaosAction = iota
	actBlackout
	actError
	actReset
	actStall
	actSlowStart
)

// decide draws the request's fault. Four floats are always drawn so the RNG
// stream position — and therefore every later decision — is independent of
// which fault fires.
func (c *Chaos) decide() chaosAction {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.rng.Float64()
	r := c.rng.Float64()
	s := c.rng.Float64()
	f := c.rng.Float64()
	if c.cfg.Timeline != nil && c.cfg.Timeline.Multiplier(c.elapsed()) == 0 {
		c.injected++
		return actBlackout
	}
	if c.cfg.MaxInjections > 0 && c.injected >= c.cfg.MaxInjections {
		return actNone
	}
	act := actNone
	switch {
	case e < c.cfg.ErrorProb:
		act = actError
	case r < c.cfg.ResetProb:
		act = actReset
	case s < c.cfg.StallProb:
		act = actStall
	case f < c.cfg.SlowStartProb:
		act = actSlowStart
	}
	if act != actNone {
		c.injected++
	}
	return act
}

func (c *Chaos) record(kind string, v float64, count *obs.Counter) {
	m := c.Metrics
	if m == nil {
		return
	}
	m.Injected.Inc()
	count.Inc()
	m.Recorder.Record("fault_injected", kind, v, 0)
}

// ServeHTTP implements http.Handler.
func (c *Chaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch c.decide() {
	case actBlackout:
		c.record("blackout", 0, metricsField(c.Metrics, func(m *ChaosMetrics) *obs.Counter { return m.Blackouts }))
		panic(http.ErrAbortHandler)
	case actError:
		c.record("error", float64(c.cfg.ErrorCode), metricsField(c.Metrics, func(m *ChaosMetrics) *obs.Counter { return m.Errors }))
		http.Error(w, "fault: injected error", c.cfg.ErrorCode)
		return
	case actReset:
		c.record("reset", float64(c.cfg.ResetAfterBytes), metricsField(c.Metrics, func(m *ChaosMetrics) *obs.Counter { return m.Resets }))
		w = &faultWriter{ResponseWriter: w, trigger: c.cfg.ResetAfterBytes, onTrigger: func() {
			panic(http.ErrAbortHandler)
		}}
	case actStall:
		c.record("stall", float64(c.cfg.StallDuration.Milliseconds()), metricsField(c.Metrics, func(m *ChaosMetrics) *obs.Counter { return m.Stalls }))
		w = &faultWriter{ResponseWriter: w, trigger: c.cfg.StallAfterBytes, onTrigger: func() {
			time.Sleep(c.cfg.StallDuration)
		}}
	case actSlowStart:
		c.record("slow_start", float64(c.cfg.SlowStartDelay.Milliseconds()), metricsField(c.Metrics, func(m *ChaosMetrics) *obs.Counter { return m.SlowStarts }))
		time.Sleep(c.cfg.SlowStartDelay)
	}
	c.next.ServeHTTP(w, r)
}

// metricsField safely projects a counter out of a possibly-nil metrics
// struct (nil counters are no-ops downstream).
func metricsField(m *ChaosMetrics, get func(*ChaosMetrics) *obs.Counter) *obs.Counter {
	if m == nil {
		return nil
	}
	return get(m)
}

// faultWriter counts body bytes and fires onTrigger once when the write
// offset crosses trigger. It preserves http.Flusher so the paced chunk
// writer keeps flushing through it.
type faultWriter struct {
	http.ResponseWriter
	trigger int64
	written int64
	fired   bool

	onTrigger func()
}

func (f *faultWriter) Write(b []byte) (int, error) {
	if !f.fired && f.written+int64(len(b)) >= f.trigger {
		// Deliver the bytes up to the trigger point first so resumable
		// clients have a well-defined prefix.
		keep := f.trigger - f.written
		if keep > 0 {
			n, err := f.ResponseWriter.Write(b[:keep])
			f.written += int64(n)
			if err != nil {
				return n, err
			}
			if fl, ok := f.ResponseWriter.(http.Flusher); ok {
				fl.Flush()
			}
			b = b[keep:]
		}
		f.fired = true
		f.onTrigger()
		if len(b) == 0 {
			return int(keep), nil
		}
		n, err := f.ResponseWriter.Write(b)
		f.written += int64(n)
		return int(keep) + n, err
	}
	n, err := f.ResponseWriter.Write(b)
	f.written += int64(n)
	return n, err
}

func (f *faultWriter) Flush() {
	if fl, ok := f.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}
