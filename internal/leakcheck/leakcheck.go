// Package leakcheck is a zero-dependency goroutine-leak assertion for
// server test suites: snapshot the goroutine population at the start of a
// test, and fail — with full stacks — if extra goroutines survive the
// test's cleanup.
//
// Call it FIRST in a test, before starting servers or clients:
//
//	func TestServer(t *testing.T) {
//	    leakcheck.Check(t)
//	    ...
//	}
//
// t.Cleanup functions run last-registered-first, so registering the check
// before the server's own cleanups means it observes the world after the
// server shut down. Goroutines legitimately take a moment to unwind
// (connection readers draining, timers firing), so the check polls with a
// grace period before declaring a leak.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check registers a cleanup that fails t if the test leaves goroutines
// behind. The comparison ignores goroutines that already existed when
// Check was called and the runtime/testing housekeeping goroutines that
// come and go on their own.
func Check(t testing.TB) {
	t.Helper()
	before := interesting()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range interesting() {
				if _, ok := before[id]; !ok {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
			len(leaked), strings.Join(leaked, "\n"))
	})
}

// interesting snapshots the current goroutines as id → stack, filtering
// out ones no test can be blamed for.
func interesting() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || boring(g) {
			continue
		}
		// First line: "goroutine 123 [chan receive]:" — the id is stable
		// for the goroutine's lifetime, so it keys the before/after diff.
		id := g
		if i := strings.Index(g, " ["); i > 0 {
			id = g[:i]
		}
		out[id] = g
	}
	return out
}

// boring reports whether the stack belongs to runtime/testing plumbing or
// to this package's own polling.
func boring(stack string) bool {
	for _, marker := range []string{
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.RunTests",
		"testing.tRunner",
		"runtime.goexit0",
		"created by runtime.gc",
		"runtime.MHeap_Scavenger",
		"signal.signal_recv",
		"runtime.ensureSigM",
		"leakcheck.interesting",
		"os/signal.loop",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
