package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestCheckToleratesTransientGoroutines(t *testing.T) {
	Check(t)
	// A goroutine that exits shortly after the test body: the checker's
	// grace window must absorb it instead of reporting a leak.
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(done)
	}()
	<-done
}

func TestBoringFiltersRuntimeGoroutines(t *testing.T) {
	cases := []struct {
		stack string
		want  bool
	}{
		{"goroutine 1 [running]:\ntesting.(*T).Run(...)", true},
		{"goroutine 7 [syscall]:\nos/signal.signal_recv(...)", true},
		{"goroutine 12 [select]:\nrepro/internal/cdn.(*Client).FetchChunk(...)", false},
	}
	for _, tc := range cases {
		if got := boring(tc.stack); got != tc.want {
			head, _, _ := strings.Cut(tc.stack, "\n")
			t.Errorf("boring(%q...) = %v, want %v", head, got, tc.want)
		}
	}
}
