package player

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
	"repro/internal/video"
)

// labSetup builds the paper's §6 lab: a 40 Mbps bottleneck, 5 ms RTT, queue
// of 4×BDP, and a video with a 3.3 Mbps top bitrate.
type labSetup struct {
	s     *sim.Simulator
	fwd   *sim.Link
	class *sim.Classifier
	rng   *rand.Rand
}

func newLab() *labSetup {
	s := sim.New()
	class := sim.NewClassifier()
	rate := 40 * units.Mbps
	bdp := rate.BytesIn(5 * time.Millisecond)
	fwd := sim.NewLink(s, sim.LinkConfig{
		Rate:       rate,
		Delay:      2500 * time.Microsecond,
		QueueLimit: 4 * bdp,
	}, class)
	return &labSetup{s: s, fwd: fwd, class: class, rng: rand.New(rand.NewSource(1))}
}

func (l *labSetup) player(flow sim.FlowID, ctrl *core.Controller, chunks int) *SimPlayer {
	conn := tcp.NewConn(l.s, flow, l.fwd, l.class,
		sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}, tcp.Config{})
	title := video.NewTitle(video.LabLadder(), 4*time.Second, chunks, l.rng)
	cfg := Config{Controller: ctrl, Title: title, History: &core.History{}, MaxBuffer: 60 * time.Second}
	return NewSimPlayer(l.s, conn, cfg, nil, nil)
}

func TestSimPlayerControlSession(t *testing.T) {
	lab := newLab()
	p := lab.player(1, core.NewControl(abr.Production{}), 30)
	p.Start()
	lab.s.RunUntil(10 * time.Minute)
	if !p.Done() {
		t.Fatal("session did not finish")
	}
	q := p.QoE()
	if q.Chunks != 30 {
		t.Fatalf("chunks = %d", q.Chunks)
	}
	if q.RebufferCount != 0 {
		t.Errorf("rebuffers = %d on a 40 Mbps link", q.RebufferCount)
	}
	// Unpaced downloads on a 40 Mbps link run near link rate — an order of
	// magnitude above the 3.3 Mbps top bitrate (the on-off pattern).
	if q.ChunkThroughput < 15*units.Mbps {
		t.Errorf("control chunk throughput = %v, want ≫ bitrate", q.ChunkThroughput)
	}
	if q.VMAF < 90 {
		t.Errorf("VMAF = %.1f, want ≈ top", q.VMAF)
	}
}

func TestSimPlayerSammyVsControl(t *testing.T) {
	// Fig 7's single-flow comparison: Sammy holds QoE while cutting chunk
	// throughput and RTT.
	run := func(ctrl *core.Controller) QoE {
		lab := newLab()
		p := lab.player(1, ctrl, 40)
		p.Start()
		lab.s.RunUntil(15 * time.Minute)
		if !p.Done() {
			t.Fatal("session did not finish")
		}
		return p.QoE()
	}
	control := run(core.NewControl(abr.Production{}))
	sammy := run(core.NewSammy(abr.Production{}, 3.2, 2.8))

	if sammy.VMAF < control.VMAF-0.5 {
		t.Errorf("Sammy VMAF %.2f below control %.2f", sammy.VMAF, control.VMAF)
	}
	if sammy.RebufferCount > 0 {
		t.Errorf("Sammy rebuffered %d times", sammy.RebufferCount)
	}
	// Sammy paces at ≈3× the 3.3 Mbps top bitrate ≈ 10 Mbps, far below the
	// ≈38 Mbps the control achieves.
	if float64(sammy.ChunkThroughput) > 0.5*float64(control.ChunkThroughput) {
		t.Errorf("Sammy throughput %v not well below control %v",
			sammy.ChunkThroughput, control.ChunkThroughput)
	}
	if sammy.MedianRTT >= control.MedianRTT {
		t.Errorf("Sammy RTT %v not below control %v", sammy.MedianRTT, control.MedianRTT)
	}
}

func TestSimPlayerBufferDrainsInRealTime(t *testing.T) {
	lab := newLab()
	p := lab.player(1, core.NewControl(abr.Production{}), 20)
	p.Start()
	lab.s.RunUntil(20 * time.Second)
	if !p.Playing() {
		t.Fatal("playback should have started within 20s on a 40 Mbps link")
	}
	b1 := p.Buffer()
	if b1 <= 0 {
		t.Fatal("buffer should be positive while playing")
	}
	if b1 > 60*time.Second {
		t.Errorf("buffer %v exceeds max", b1)
	}
	lab.s.Run()
	if !p.Done() {
		t.Error("session did not finish")
	}
}

func TestSimPlayerEmitsChunkEvents(t *testing.T) {
	lab := newLab()
	conn := tcp.NewConn(lab.s, 1, lab.fwd, lab.class,
		sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}, tcp.Config{})
	title := video.NewTitle(video.LabLadder(), 4*time.Second, 10, lab.rng)
	var events []ChunkEvent
	doneCalled := false
	cfg := Config{Controller: core.NewSammy(abr.Production{}, 3.2, 2.8), Title: title,
		History: &core.History{}, MaxBuffer: 60 * time.Second}
	p := NewSimPlayer(lab.s, conn, cfg,
		func(ev ChunkEvent) { events = append(events, ev) },
		func(QoE) { doneCalled = true })
	p.Start()
	lab.s.Run()
	if len(events) != 10 {
		t.Fatalf("events = %d, want 10", len(events))
	}
	if !doneCalled {
		t.Error("onDone not called")
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Errorf("event %d has index %d", i, ev.Index)
		}
		if ev.End <= ev.Start {
			t.Errorf("event %d has non-positive duration", i)
		}
		if i > 0 && ev.Start < events[i-1].End {
			t.Errorf("event %d overlaps previous (sequential downloads expected)", i)
		}
	}
}
