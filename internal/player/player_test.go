package player

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/units"
	"repro/internal/video"
)

func testTitle(rng *rand.Rand) *video.Title {
	return video.NewTitle(video.DefaultLadder(), 4*time.Second, 150, rng) // 10-minute title
}

func testPath(capMbps float64) netmodel.Path {
	return netmodel.Path{
		Capacity: units.BitsPerSecond(capMbps) * units.Mbps,
		BaseRTT:  30 * time.Millisecond,
	}
}

func runSession(t *testing.T, ctrl *core.Controller, capMbps float64, seed int64) QoE {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{
		Controller: ctrl,
		Title:      testTitle(rng),
		History:    &core.History{},
	}
	return Run(cfg, testPath(capMbps), rng, nil)
}

func TestControlSessionOnFastPath(t *testing.T) {
	q := runSession(t, core.NewControl(abr.Production{}), 200, 1)
	if q.Chunks != 150 {
		t.Fatalf("chunks = %d, want 150", q.Chunks)
	}
	if q.PlayDelay <= 0 || q.PlayDelay > 5*time.Second {
		t.Errorf("play delay = %v, want small positive", q.PlayDelay)
	}
	if q.VMAF < 85 {
		t.Errorf("VMAF = %.1f on a 200 Mbps path, want near top", q.VMAF)
	}
	if q.RebufferCount != 0 {
		t.Errorf("rebuffers = %d on a fast path", q.RebufferCount)
	}
	// On-off behaviour: chunk throughput far above the average bitrate.
	if float64(q.ChunkThroughput) < 3*float64(q.AvgBitrate) {
		t.Errorf("control chunk throughput %v should be ≫ bitrate %v", q.ChunkThroughput, q.AvgBitrate)
	}
}

func TestSammyReducesThroughputKeepsQuality(t *testing.T) {
	// The headline Table 2 shape on one user: quality preserved, chunk
	// throughput way down, retransmits and RTT down.
	sammy := runSession(t, core.NewSammy(abr.Production{}, 3.2, 2.8), 200, 2)
	control := runSession(t, core.NewControl(abr.Production{}), 200, 2)

	if sammy.VMAF < control.VMAF-0.5 {
		t.Errorf("Sammy VMAF %.2f below control %.2f", sammy.VMAF, control.VMAF)
	}
	if float64(sammy.ChunkThroughput) > 0.6*float64(control.ChunkThroughput) {
		t.Errorf("Sammy throughput %v not well below control %v", sammy.ChunkThroughput, control.ChunkThroughput)
	}
	if sammy.RetxFraction >= control.RetxFraction {
		t.Errorf("Sammy retx %.5f not below control %.5f", sammy.RetxFraction, control.RetxFraction)
	}
	if sammy.MedianRTT >= control.MedianRTT {
		t.Errorf("Sammy RTT %v not below control %v", sammy.MedianRTT, control.MedianRTT)
	}
	if sammy.RebufferCount > control.RebufferCount {
		t.Errorf("Sammy rebuffers %d exceed control %d", sammy.RebufferCount, control.RebufferCount)
	}
}

func TestSammyPaceRatesTrackTopBitrate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	title := testTitle(rng)
	cfg := Config{
		Controller: core.NewSammy(abr.Production{}, 3.2, 2.8),
		Title:      title,
		History:    &core.History{},
	}
	top := float64(title.Ladder.Top().Bitrate)
	var paced, unpaced int
	Run(cfg, testPath(100), rng, func(ev ChunkEvent) {
		if ev.PaceRate == 0 {
			unpaced++
			if ev.Playing && ev.Index > 3 {
				t.Errorf("chunk %d unpaced while playing", ev.Index)
			}
			return
		}
		paced++
		mult := float64(ev.PaceRate) / top
		if mult < 2.8-1e-9 || mult > 3.2+1e-9 {
			t.Errorf("chunk %d pace multiplier %.2f outside [2.8, 3.2]", ev.Index, mult)
		}
	})
	if unpaced == 0 {
		t.Error("initial-phase chunks should be unpaced")
	}
	if paced == 0 {
		t.Error("playing-phase chunks should be paced")
	}
}

func TestSlowPathLowerQuality(t *testing.T) {
	fast := runSession(t, core.NewControl(abr.Production{}), 100, 4)
	slow := runSession(t, core.NewControl(abr.Production{}), 3, 4)
	if slow.VMAF >= fast.VMAF {
		t.Errorf("slow path VMAF %.1f not below fast %.1f", slow.VMAF, fast.VMAF)
	}
	if slow.AvgBitrate >= fast.AvgBitrate {
		t.Errorf("slow path bitrate %v not below fast %v", slow.AvgBitrate, fast.AvgBitrate)
	}
}

func TestHistoryFlowsAcrossSessions(t *testing.T) {
	// A user's second session should start with a better initial rung than
	// their cold-start first session (Fig 6's mechanism).
	rng := rand.New(rand.NewSource(5))
	hist := &core.History{}
	ctrl := core.NewSammy(abr.Production{}, 3.2, 2.8)
	title := testTitle(rng)
	cfg := Config{Controller: ctrl, Title: title, History: hist}

	var firstRungCold, firstRungWarm video.Rung
	Run(cfg, testPath(50), rng, func(ev ChunkEvent) {
		if ev.Index == 0 {
			firstRungCold = ev.Rung
		}
	})
	Run(cfg, testPath(50), rng, func(ev ChunkEvent) {
		if ev.Index == 0 {
			firstRungWarm = ev.Rung
		}
	})
	if firstRungWarm.Bitrate <= firstRungCold.Bitrate {
		t.Errorf("warm first rung %v not above cold %v", firstRungWarm.Bitrate, firstRungCold.Bitrate)
	}
}

func TestWatchChunksCapsSession(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := Config{
		Controller:  core.NewControl(abr.Production{}),
		Title:       testTitle(rng),
		History:     &core.History{},
		WatchChunks: 10,
	}
	q := Run(cfg, testPath(50), rng, nil)
	if q.Chunks != 10 {
		t.Errorf("chunks = %d, want 10", q.Chunks)
	}
	if q.PlayedTime != 40*time.Second {
		t.Errorf("played = %v, want 40s", q.PlayedTime)
	}
}

func TestVerySlowPathRebuffers(t *testing.T) {
	// Capacity below even the lowest rung bitrate: the session must report
	// rebuffers rather than hang or panic.
	q := runSession(t, core.NewControl(abr.Production{}), 0.2, 7)
	if !q.Rebuffered || q.RebufferCount == 0 {
		t.Error("0.2 Mbps path should rebuffer")
	}
	if q.RebufferTime <= 0 {
		t.Error("rebuffer time should be positive")
	}
}

func TestInitialVMAFWindowAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := Config{
		Controller: core.NewControl(abr.Production{}),
		Title:      testTitle(rng),
		History:    &core.History{},
	}
	q := Run(cfg, testPath(100), rng, nil)
	if q.InitialVMAF <= 0 || q.InitialVMAF > 100 {
		t.Errorf("initial VMAF = %v", q.InitialVMAF)
	}
	// On a fast path, quality climbs after startup, so the session VMAF
	// should be at least the initial VMAF.
	if q.VMAF < q.InitialVMAF-1 {
		t.Errorf("session VMAF %.1f below initial %.1f", q.VMAF, q.InitialVMAF)
	}
}

func TestDeterminism(t *testing.T) {
	a := runSession(t, core.NewSammy(abr.Production{}, 3.2, 2.8), 80, 42)
	b := runSession(t, core.NewSammy(abr.Production{}, 3.2, 2.8), 80, 42)
	if a != b {
		t.Errorf("same seed produced different QoE:\n%+v\n%+v", a, b)
	}
}

func TestConfigPanicsWithoutRequiredFields(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cfg := Config{}
	cfg.setDefaults()
}
