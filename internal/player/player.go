// Package player implements the video player engine: the initial and
// playing phases, playback-buffer management, and the QoE accounting the
// paper's experiments report (play delay, initial and overall VMAF,
// rebuffers, and download-time-weighted chunk throughput).
//
// Two drivers share the same decision and accounting logic: Run executes a
// session synchronously over the analytic netmodel path (for population
// A/B experiments), and SimPlayer executes a session event-by-event over a
// packet-level tcp.Conn (for the lab experiments).
package player

import (
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/obs"
	trace "repro/internal/obs/trace"
	"repro/internal/tdigest"
	"repro/internal/units"
	"repro/internal/video"
)

// Config parameterizes a session.
type Config struct {
	// Controller makes the joint bitrate/pace decisions. Required.
	Controller *core.Controller
	// Title is the video being played. Required.
	Title *video.Title
	// MaxBuffer is the client buffer capacity. Default 4 minutes, typical
	// for the TV devices the paper experiments on.
	MaxBuffer time.Duration
	// StartThreshold is the buffer level at which playback starts. Default
	// 2 chunk durations.
	StartThreshold time.Duration
	// History is the per-user historical throughput store feeding initial
	// bitrate selection. Optional; a session-local store is used if nil.
	History *core.History
	// WatchChunks caps how many chunks the user watches; 0 means the whole
	// title.
	WatchChunks int
	// AbandonAfter, when positive, makes the user quit after watching that
	// much content, mid-session. Chunks sitting in the buffer at quit time
	// were downloaded for nothing — the "wasted buffer" that motivated
	// Trickle (Table 1 in the paper).
	AbandonAfter time.Duration
	// EstimatorWindow sizes the in-session throughput estimator window.
	// Default 5.
	EstimatorWindow int
	// Metrics receives live telemetry (buffer level, bitrate switches,
	// rebuffers). Defaults to metrics on the process-wide obs registry when
	// one is installed, else nil (off).
	Metrics *Metrics
	// Trace is the session's trace for span emission (DESIGN.md §12); nil
	// means tracing off. When nil and TraceID is set, setDefaults resolves
	// a session trace from the process-wide tracer (trace.Default()), which
	// keeps tracing off when no tracer is installed.
	Trace *trace.Trace
	// TraceID names the session in the process-wide tracer when Trace is
	// unset.
	TraceID string
}

func (c *Config) setDefaults() {
	if c.Controller == nil || c.Title == nil {
		panic("player: Config needs Controller and Title")
	}
	if c.MaxBuffer <= 0 {
		c.MaxBuffer = 4 * time.Minute
	}
	if c.StartThreshold <= 0 {
		c.StartThreshold = 2 * c.Title.ChunkDuration
	}
	if c.History == nil {
		c.History = &core.History{}
	}
	if c.WatchChunks <= 0 || c.WatchChunks > c.Title.NumChunks {
		c.WatchChunks = c.Title.NumChunks
	}
	if c.EstimatorWindow <= 0 {
		c.EstimatorWindow = 5
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(obs.Default())
	}
	if c.Trace == nil && c.TraceID != "" {
		c.Trace = trace.Default().Session(c.TraceID)
	}
}

// InitialQualityWindow is the content prefix whose time-weighted VMAF the
// paper reports as "initial VMAF" (the first twenty seconds of playback).
const InitialQualityWindow = 20 * time.Second

// QoE is the per-session report card, mirroring the metrics in Tables 2
// and 3 plus the congestion metrics of §5.1.
type QoE struct {
	// Video QoE.
	PlayDelay     time.Duration // request to playback start
	InitialVMAF   float64       // time-weighted VMAF of the first 20 s
	VMAF          float64       // time-weighted VMAF of the session
	RebufferCount int
	RebufferTime  time.Duration
	Rebuffered    bool // at least one rebuffer (the "% sess" metric)

	// Congestion metrics.
	ChunkThroughput units.BitsPerSecond // download-time-weighted (Appendix A x̄)
	RetxFraction    float64             // retransmitted bytes / bytes sent
	MedianRTT       time.Duration       // median of the session's RTT digest

	// Abandonment accounting (only populated when Config.AbandonAfter is
	// set and the user quit early).
	Abandoned    bool
	WastedBytes  units.Bytes   // downloaded but never played
	WastedBuffer time.Duration // content sitting in the buffer at quit time

	// Volume accounting.
	Bytes        units.Bytes
	SentBytes    units.Bytes
	DownloadTime time.Duration
	PlayedTime   time.Duration
	AvgBitrate   units.BitsPerSecond
	Chunks       int
}

// ChunkEvent describes one completed chunk download, for time-series
// tracing (Figures 1 and 7).
type ChunkEvent struct {
	Index      int
	Start, End time.Duration // session-relative download interval
	Size       units.Bytes
	Rung       video.Rung
	PaceRate   units.BitsPerSecond
	Throughput units.BitsPerSecond
	Buffer     time.Duration // buffer level after the chunk landed
	Playing    bool
}

// accounting is the QoE bookkeeping shared by both drivers.
type accounting struct {
	cfg Config

	qoe         QoE
	rtt         *tdigest.TDigest
	vmafWeight  float64 // Σ duration·vmaf
	initWeight  float64 // same, first 20 s of content
	initDur     time.Duration
	retxBytes   units.Bytes
	lastBitrate units.BitsPerSecond // previous chunk's rung, for switch counting
}

func newAccounting(cfg Config) *accounting {
	return &accounting{cfg: cfg, rtt: tdigest.New(100)}
}

// chunkDone records one finished chunk download.
func (a *accounting) chunkDone(chunk video.Chunk, sentBytes, retxBytes units.Bytes,
	downloadTime time.Duration, meanRTT time.Duration, packets int64) {
	if m := a.cfg.Metrics; m != nil {
		m.Chunks.Inc()
		m.BitrateBps.Set(float64(chunk.Rung.Bitrate))
		if a.qoe.Chunks > 0 && chunk.Rung.Bitrate != a.lastBitrate {
			m.BitrateSwitches.Inc()
		}
	}
	a.lastBitrate = chunk.Rung.Bitrate
	a.qoe.Chunks++
	a.qoe.Bytes += chunk.Size
	a.qoe.SentBytes += sentBytes
	a.retxBytes += retxBytes
	a.qoe.DownloadTime += downloadTime
	a.qoe.PlayedTime += chunk.Duration
	a.vmafWeight += chunk.Duration.Seconds() * chunk.Rung.VMAF
	if pos := time.Duration(chunk.Index) * a.cfg.Title.ChunkDuration; pos < InitialQualityWindow {
		d := a.cfg.Title.ChunkDuration
		if rem := InitialQualityWindow - pos; rem < d {
			d = rem
		}
		a.initWeight += d.Seconds() * chunk.Rung.VMAF
		a.initDur += d
	}
	if meanRTT > 0 && packets > 0 {
		a.rtt.AddWeighted(meanRTT.Seconds()*1000, float64(packets))
	}
}

// rebuffer records a playback stall.
func (a *accounting) rebuffer(d time.Duration) {
	if d <= 0 {
		return
	}
	a.qoe.RebufferCount++
	a.qoe.RebufferTime += d
	a.qoe.Rebuffered = true
	if m := a.cfg.Metrics; m != nil {
		m.Rebuffers.Inc()
		m.RebufferMs.Add(d.Milliseconds())
	}
}

// finish computes the derived metrics and returns the report.
func (a *accounting) finish(playDelay time.Duration) QoE {
	q := a.qoe
	q.PlayDelay = playDelay
	if a.qoe.PlayedTime > 0 {
		q.VMAF = a.vmafWeight / a.qoe.PlayedTime.Seconds()
		q.AvgBitrate = units.Rate(a.qoe.Bytes, a.qoe.PlayedTime)
	}
	if a.initDur > 0 {
		q.InitialVMAF = a.initWeight / a.initDur.Seconds()
	}
	q.ChunkThroughput = units.Rate(a.qoe.Bytes, a.qoe.DownloadTime)
	if a.qoe.SentBytes > 0 {
		q.RetxFraction = float64(a.retxBytes) / float64(a.qoe.SentBytes)
	}
	if a.rtt.Count() > 0 {
		q.MedianRTT = time.Duration(a.rtt.Quantile(0.5) * float64(time.Millisecond))
	}
	return q
}

// decisionContext assembles the abr.Context for chunk index.
func decisionContext(cfg Config, index int, buffer time.Duration, playing bool,
	est *abr.Estimator, prevRung int) abr.Context {
	return abr.Context{
		Title:           cfg.Title,
		ChunkIndex:      index,
		Buffer:          buffer,
		MaxBuffer:       cfg.MaxBuffer,
		Playing:         playing,
		Throughput:      est.Estimate(),
		InitialEstimate: cfg.History.Estimate(cfg.Controller.HistorySource()),
		PrevRung:        prevRung,
	}
}

// observe feeds a chunk throughput measurement into the session estimator
// and the user's history, routed by phase (§4.1).
func observe(cfg Config, est *abr.Estimator, x units.BitsPerSecond, playing bool) {
	est.Observe(x)
	if playing {
		cfg.History.ObservePlaying(x)
	} else {
		cfg.History.ObserveInitial(x)
	}
}
