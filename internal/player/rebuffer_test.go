package player

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
	"repro/internal/video"
)

// These tests drive the sim player through its stall path: a link too slow
// for even the lowest rung must produce rebuffers in real simulated time,
// and recovery must resume playback correctly.

func TestSimPlayerRebuffersOnStarvedLink(t *testing.T) {
	s := sim.New()
	class := sim.NewClassifier()
	// 200 kbps link: below the 235 kbps lowest rung.
	fwd := sim.NewLink(s, sim.LinkConfig{
		Rate:       200 * units.Kbps,
		Delay:      10 * time.Millisecond,
		QueueLimit: 30000,
	}, class)
	conn := tcp.NewConn(s, 1, fwd, class,
		sim.LinkConfig{Rate: 1 * units.Mbps, Delay: 10 * time.Millisecond}, tcp.Config{})
	title := video.NewTitle(video.LabLadder(), 4*time.Second, 10, rand.New(rand.NewSource(1)))
	p := NewSimPlayer(s, conn, Config{
		Controller: core.NewControl(abr.Production{}),
		Title:      title,
		History:    &core.History{},
		MaxBuffer:  30 * time.Second,
	}, nil, nil)
	p.Start()
	s.RunUntil(20 * time.Minute)
	if !p.Done() {
		t.Fatal("session did not finish")
	}
	q := p.QoE()
	if q.RebufferCount == 0 || !q.Rebuffered {
		t.Error("starved link should rebuffer")
	}
	if q.RebufferTime <= 0 {
		t.Error("rebuffer time should be positive")
	}
	// All chunks still delivered despite stalls.
	if q.Chunks != 10 {
		t.Errorf("chunks = %d", q.Chunks)
	}
}

func TestSimPlayerRecoversAfterOutage(t *testing.T) {
	// A mid-session outage stalls playback; once the link returns the
	// session finishes with the stall recorded.
	s := sim.New()
	class := sim.NewClassifier()
	inner := sim.NewLink(s, sim.LinkConfig{
		Rate:       10 * units.Mbps,
		Delay:      5 * time.Millisecond,
		QueueLimit: 50000,
	}, class)
	blocked := false
	gate := gateSender{inner: inner, blocked: &blocked}
	conn := tcp.NewConn(s, 1, gate, class,
		sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 5 * time.Millisecond}, tcp.Config{})
	title := video.NewTitle(video.LabLadder(), 4*time.Second, 15, rand.New(rand.NewSource(2)))
	p := NewSimPlayer(s, conn, Config{
		Controller:     core.NewControl(abr.Production{}),
		Title:          title,
		History:        &core.History{},
		MaxBuffer:      12 * time.Second, // small buffer so the outage bites
		StartThreshold: 4 * time.Second,
	}, nil, nil)
	p.Start()
	// Outage from 10 s to 40 s: longer than the whole buffer.
	s.At(10*time.Second, func() { blocked = true })
	s.At(40*time.Second, func() { blocked = false })
	s.RunUntil(10 * time.Minute)
	if !p.Done() {
		t.Fatal("session did not finish after the outage")
	}
	q := p.QoE()
	if q.RebufferCount == 0 {
		t.Error("a 30s outage against a 12s buffer must rebuffer")
	}
	if q.RebufferTime < 10*time.Second {
		t.Errorf("rebuffer time = %v, want most of the outage", q.RebufferTime)
	}
	if q.Chunks != 15 {
		t.Errorf("chunks = %d", q.Chunks)
	}
}

// gateSender blocks Sends while *blocked is true.
type gateSender struct {
	inner   *sim.Link
	blocked *bool
}

func (g gateSender) Send(p *sim.Packet) bool {
	if *g.blocked {
		return false
	}
	return g.inner.Send(p)
}
