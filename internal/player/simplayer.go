package player

import (
	"time"

	"repro/internal/abr"
	trace "repro/internal/obs/trace"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// SimPlayer runs a video session event-by-event on the packet-level
// simulator, downloading chunks through a tcp.Conn whose pacing rate it
// sets per chunk via SetPacingRate — the simulator-side analogue of the
// application-informed pacing HTTP header.
//
// Construct with NewSimPlayer, call Start, run the simulator, then read
// QoE.
type SimPlayer struct {
	s    *sim.Simulator
	conn *tcp.Conn
	cfg  Config

	acct *accounting
	est  *abr.Estimator

	started   time.Duration
	playing   bool
	playDelay time.Duration
	prevRung  int
	nextChunk int
	finished  bool

	// Buffer is tracked as (level at lastUpdate, lastUpdate); while playing
	// it drains in real simulated time.
	bufAtUpdate time.Duration
	lastUpdate  time.Duration

	// sess is the session span; nil when tracing is off. All spans are
	// stamped with absolute sim time via the *At forms.
	sess *trace.Span

	onChunk func(ChunkEvent)
	onDone  func(QoE)
}

// NewSimPlayer builds a player over conn. onChunk and onDone may be nil.
func NewSimPlayer(s *sim.Simulator, conn *tcp.Conn, cfg Config, onChunk func(ChunkEvent), onDone func(QoE)) *SimPlayer {
	cfg.setDefaults()
	return &SimPlayer{
		s:        s,
		conn:     conn,
		cfg:      cfg,
		acct:     newAccounting(cfg),
		est:      abr.NewEstimator(cfg.EstimatorWindow),
		prevRung: -1,
		onChunk:  onChunk,
		onDone:   onDone,
	}
}

// Start begins the session at the current simulated time.
func (p *SimPlayer) Start() {
	p.started = p.s.Now()
	p.lastUpdate = p.s.Now()
	p.sess = p.cfg.Trace.StartAt(p.s.Now(), "player.session", p.cfg.Controller.Name())
	p.requestNext()
}

// Done reports whether the session has downloaded all its chunks.
func (p *SimPlayer) Done() bool { return p.finished }

// QoE returns the session report; valid once Done.
func (p *SimPlayer) QoE() QoE { return p.acct.finish(p.playDelay) }

// Buffer reports the playback buffer level at the current simulated time.
func (p *SimPlayer) Buffer() time.Duration {
	b := p.bufAtUpdate
	if p.playing {
		b -= p.s.Now() - p.lastUpdate
		if b < 0 {
			b = 0
		}
	}
	return b
}

// Playing reports whether playback has started.
func (p *SimPlayer) Playing() bool { return p.playing }

// syncBuffer advances the drain bookkeeping to the current time, recording
// any stall that occurred since the last update.
func (p *SimPlayer) syncBuffer() {
	now := p.s.Now()
	if p.playing {
		elapsed := now - p.lastUpdate
		if elapsed >= p.bufAtUpdate {
			stall := elapsed - p.bufAtUpdate
			p.acct.rebuffer(stall)
			if m := p.cfg.Metrics; m != nil && stall > 0 {
				m.Recorder.RecordAt(now, "player_rebuffer", "", stall.Seconds()*1000, 0)
			}
			if p.sess != nil && stall > 0 {
				// The stall interval is [buffer exhaustion, now].
				p.sess.StartChildAt(now-stall, "player.stall", "").EndAt(now)
			}
			p.bufAtUpdate = 0
		} else {
			p.bufAtUpdate -= elapsed
		}
	}
	p.lastUpdate = now
}

// requestNext issues the next chunk download, waiting first if the buffer
// has no room (the off period).
func (p *SimPlayer) requestNext() {
	if p.nextChunk >= p.cfg.WatchChunks {
		p.finished = true
		if !p.playing {
			p.playDelay = p.s.Now() - p.started
		}
		p.sess.SetAttr("chunks", float64(p.acct.qoe.Chunks)).
			SetAttr("rebuffer_s", p.acct.qoe.RebufferTime.Seconds()).EndAt(p.s.Now())
		if p.onDone != nil {
			p.onDone(p.QoE())
		}
		return
	}
	p.syncBuffer()
	if p.playing {
		if room := p.cfg.MaxBuffer - p.bufAtUpdate; room < p.cfg.Title.ChunkDuration {
			wait := p.cfg.Title.ChunkDuration - room
			if idle := p.sess.StartChildAt(p.s.Now(), "player.idle", ""); idle != nil {
				p.s.Schedule(wait, func() {
					idle.EndAt(p.s.Now())
					p.requestNext()
				})
			} else {
				p.s.Schedule(wait, p.requestNext)
			}
			return
		}
	}

	i := p.nextChunk
	p.nextChunk++
	ctx := decisionContext(p.cfg, i, p.bufAtUpdate, p.playing, p.est, p.prevRung)
	chSpan := p.sess.StartChildAt(p.s.Now(), "player.chunk", "").SetAttr("index", float64(i))
	chSpan.AnnotateAt(p.s.Now(), "bwest.estimate", float64(ctx.Throughput))
	dec := p.cfg.Controller.DecideTraced(ctx, chSpan, p.s.Now())
	if m := p.cfg.Metrics; m != nil && p.prevRung >= 0 && dec.Rung != p.prevRung {
		m.Recorder.RecordAt(p.s.Now(), "player_bitrate_switch", "",
			float64(p.cfg.Title.Ladder[dec.Rung].Bitrate),
			float64(p.cfg.Title.Ladder[p.prevRung].Bitrate))
	}
	p.prevRung = dec.Rung
	chunk := p.cfg.Title.ChunkAt(i, dec.Rung)

	fsp := chSpan.StartChildAt(p.s.Now(), "tcp.fetch", "")
	p.conn.SetSpan(fsp)
	p.conn.SetPacingRate(dec.PaceRate)
	if dec.PaceRate > 0 {
		p.conn.SetPacerBurst(dec.Burst)
	}
	start := p.s.Now()
	statsBefore := p.conn.Stats

	p.conn.Fetch(chunk.Size, nil, func(r tcp.FetchResult) {
		p.conn.SetSpan(nil)
		p.syncBuffer()
		wasPlaying := p.playing
		tput := r.Throughput()
		observe(p.cfg, p.est, tput, wasPlaying)

		statsAfter := p.conn.Stats
		sent := statsAfter.BytesSent - statsBefore.BytesSent
		retx := statsAfter.RetransmitBytes - statsBefore.RetransmitBytes
		srtt := p.conn.SRTT()
		pkts := statsAfter.SegmentsSent - statsBefore.SegmentsSent
		p.acct.chunkDone(chunk, sent, retx, r.DoneAt-r.RequestedAt, srtt, pkts)
		fsp.SetAttr("bytes", float64(chunk.Size)).SetAttr("retx_bytes", float64(retx)).
			SetAttr("tput_bps", float64(tput)).EndAt(p.s.Now())

		p.bufAtUpdate += chunk.Duration
		if p.cfg.MaxBuffer > 0 && p.bufAtUpdate > p.cfg.MaxBuffer {
			p.bufAtUpdate = p.cfg.MaxBuffer
		}
		if !p.playing && p.bufAtUpdate >= p.cfg.StartThreshold {
			p.playing = true
			p.playDelay = p.s.Now() - p.started
		}
		if m := p.cfg.Metrics; m != nil {
			m.BufferSeconds.Set(p.bufAtUpdate.Seconds())
		}
		chSpan.SetAttr("rung", float64(dec.Rung)).
			SetAttr("buffer_s", p.bufAtUpdate.Seconds()).EndAt(p.s.Now())
		if p.onChunk != nil {
			p.onChunk(ChunkEvent{
				Index: i, Start: start - p.started, End: p.s.Now() - p.started,
				Size: chunk.Size, Rung: chunk.Rung,
				PaceRate: dec.PaceRate, Throughput: tput,
				Buffer: p.bufAtUpdate, Playing: p.playing,
			})
		}
		p.requestNext()
	})
}

// AvgThroughputSoFar reports the running download-time-weighted throughput,
// used by lab traces.
func (p *SimPlayer) AvgThroughputSoFar() units.BitsPerSecond {
	if p.acct.qoe.DownloadTime <= 0 {
		return 0
	}
	return units.Rate(p.acct.qoe.Bytes, p.acct.qoe.DownloadTime)
}
