package player

import (
	"math/rand"
	"time"

	"repro/internal/abr"
	"repro/internal/netmodel"
)

// Run executes one video session synchronously over an analytic netmodel
// path, returning its QoE report. onChunk, when non-nil, receives a trace
// event per chunk.
//
// This is the population-scale driver: a ten-minute session costs
// microseconds, so the A/B harness can run tens of thousands of them.
func Run(cfg Config, path netmodel.Path, rng *rand.Rand, onChunk func(ChunkEvent)) QoE {
	cfg.setDefaults()
	acct := newAccounting(cfg)
	est := abr.NewEstimator(cfg.EstimatorWindow)

	// All spans in this driver are stamped with session time (the *At
	// forms), so fixed-seed runs export byte-identical traces.
	sess := cfg.Trace.StartAt(0, "player.session", cfg.Controller.Name())

	conn := netmodel.NewConn(path, rng)
	now := conn.Connect() // handshake counts toward play delay

	buffer := time.Duration(0)
	playing := false
	playDelay := time.Duration(0)
	prevRung := -1
	var contentDownloaded time.Duration // duration of fetched chunks
	var abandoned bool
	var wastedBuffer time.Duration

	for i := 0; i < cfg.WatchChunks; i++ {
		// Early abandonment: the user quits once they have watched
		// AbandonAfter of content. Whatever is still in the buffer (or
		// currently downloading) was wasted.
		if cfg.AbandonAfter > 0 && playing {
			watched := contentDownloaded - buffer
			if watched >= cfg.AbandonAfter {
				abandoned = true
				wastedBuffer = buffer
				break
			}
		}
		// Off period: wait until the buffer has room for the next chunk.
		if playing {
			if room := cfg.MaxBuffer - buffer; room < cfg.Title.ChunkDuration {
				wait := cfg.Title.ChunkDuration - room
				sess.StartChildAt(now, "player.idle", "").EndAt(now + wait)
				now += wait
				buffer -= wait
			}
		}

		ctx := decisionContext(cfg, i, buffer, playing, est, prevRung)
		chSpan := sess.StartChildAt(now, "player.chunk", "").SetAttr("index", float64(i))
		chSpan.AnnotateAt(now, "bwest.estimate", float64(ctx.Throughput))
		dec := cfg.Controller.DecideTraced(ctx, chSpan, now)
		prevRung = dec.Rung
		chunk := cfg.Title.ChunkAt(i, dec.Rung)

		start := now
		dl := chSpan.StartChildAt(now, "netmodel.download", "")
		// DownloadAt (not Download) so scripted fault timelines on the path
		// see true session time, including off-period waits and stalls.
		res := conn.DownloadAt(now, chunk.Size, dec.PaceRate)
		now += res.Duration
		res.TraceAttrs(dl)
		dl.EndAt(now)

		observe(cfg, est, res.Throughput, playing)
		acct.chunkDone(chunk, res.SentBytes, res.RetxBytes, res.Duration, res.MeanRTT, res.Packets)

		if playing {
			// The buffer drained during the download and refills by the
			// chunk duration; going below zero is a rebuffer.
			buffer -= res.Duration
			if buffer < 0 {
				acct.rebuffer(-buffer)
				sess.StartChildAt(now, "player.stall", "").EndAt(now + -buffer)
				now += -buffer // the stall extends wall-clock time
				buffer = 0
			}
			buffer += chunk.Duration
		} else {
			buffer += chunk.Duration
			if buffer >= cfg.StartThreshold {
				playing = true
				playDelay = now
			}
		}
		if cfg.MaxBuffer > 0 && buffer > cfg.MaxBuffer {
			buffer = cfg.MaxBuffer
		}

		contentDownloaded += chunk.Duration
		chSpan.SetAttr("rung", float64(dec.Rung)).SetAttr("buffer_s", buffer.Seconds()).EndAt(now)
		if m := cfg.Metrics; m != nil {
			m.BufferSeconds.Set(buffer.Seconds())
		}
		if onChunk != nil {
			onChunk(ChunkEvent{
				Index: i, Start: start, End: now,
				Size: chunk.Size, Rung: chunk.Rung,
				PaceRate: dec.PaceRate, Throughput: res.Throughput,
				Buffer: buffer, Playing: playing,
			})
		}
	}
	if !playing {
		// The user never reached playback (pathological path); report the
		// whole session as play delay.
		playDelay = now
	}
	sess.SetAttr("chunks", float64(acct.qoe.Chunks)).
		SetAttr("rebuffer_s", acct.qoe.RebufferTime.Seconds()).EndAt(now)
	q := acct.finish(playDelay)
	if abandoned {
		q.Abandoned = true
		q.WastedBuffer = wastedBuffer
		// Chunks in the buffer at quit time were downloaded but unplayed;
		// approximate their bytes from the session's average bitrate.
		q.WastedBytes = q.AvgBitrate.BytesIn(wastedBuffer)
		q.PlayedTime -= wastedBuffer
		if q.PlayedTime < 0 {
			q.PlayedTime = 0
		}
	}
	return q
}
