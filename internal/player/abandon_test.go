package player

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/units"
)

func abandonSession(t *testing.T, ctrl *core.Controller, abandonAfter time.Duration, seed int64) QoE {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{
		Controller:   ctrl,
		Title:        testTitle(rng),
		History:      &core.History{},
		AbandonAfter: abandonAfter,
	}
	return Run(cfg, testPath(150), rng, nil)
}

func TestAbandonmentMarksSession(t *testing.T) {
	q := abandonSession(t, core.NewControl(abr.Production{}), time.Minute, 1)
	if !q.Abandoned {
		t.Fatal("session should be marked abandoned")
	}
	// On a fast path the buffer fills well beyond the watch point, so a
	// healthy chunk of content was downloaded and never watched.
	if q.WastedBuffer <= 0 {
		t.Error("abandoned session should report wasted buffer")
	}
	if q.WastedBytes <= 0 {
		t.Error("abandoned session should report wasted bytes")
	}
	// Played time reflects the watch point, not the downloads.
	if q.PlayedTime > 80*time.Second {
		t.Errorf("played time = %v after abandoning at 1 minute", q.PlayedTime)
	}
}

func TestNoAbandonmentWhenWatchingThrough(t *testing.T) {
	q := abandonSession(t, core.NewControl(abr.Production{}), 0, 2)
	if q.Abandoned || q.WastedBytes != 0 || q.WastedBuffer != 0 {
		t.Errorf("non-abandoned session reports waste: %+v", q)
	}
}

func TestSammyWastesLessBufferOnAbandonment(t *testing.T) {
	// Sammy's pacing slows buffer growth (the Trickle-baseline side effect
	// the paper notes in Table 1): at an early quit point, less downloaded-
	// but-unwatched content sits in the buffer.
	control := abandonSession(t, core.NewControl(abr.Production{}), 30*time.Second, 3)
	sammy := abandonSession(t, core.NewSammy(abr.Production{}, 3.2, 2.8), 30*time.Second, 3)
	if !control.Abandoned || !sammy.Abandoned {
		t.Fatal("both sessions should abandon")
	}
	if sammy.WastedBytes >= control.WastedBytes {
		t.Errorf("Sammy wasted %v, control wasted %v; pacing should waste less",
			sammy.WastedBytes, control.WastedBytes)
	}
}

func TestAbandonmentWastedBytesScaleWithQuitTime(t *testing.T) {
	// Quitting later (with a capped buffer) cannot waste more than the
	// buffer limit's worth of content.
	q := abandonSession(t, core.NewControl(abr.Production{}), 3*time.Minute, 4)
	if !q.Abandoned {
		t.Skip("session finished before the quit point")
	}
	if q.WastedBuffer > 4*time.Minute {
		t.Errorf("wasted buffer %v exceeds the buffer cap", q.WastedBuffer)
	}
	maxWaste := q.AvgBitrate.BytesIn(4 * time.Minute)
	if q.WastedBytes > maxWaste+units.MB {
		t.Errorf("wasted bytes %v exceed a full buffer's worth %v", q.WastedBytes, maxWaste)
	}
}
