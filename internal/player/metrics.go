package player

import (
	"repro/internal/obs"
)

// Metrics holds the player's observability hooks: buffer occupancy, bitrate
// decisions and stall accounting — the client-side telemetry the paper's QoE
// tables summarize per session. A nil *Metrics disables instrumentation;
// counters aggregate across all sessions sharing the metrics.
type Metrics struct {
	BufferSeconds *obs.Gauge // playback buffer after the latest chunk
	BitrateBps    *obs.Gauge // bitrate of the latest chunk

	Chunks          *obs.Counter // chunk downloads completed
	BitrateSwitches *obs.Counter // chunk-to-chunk rung changes
	Rebuffers       *obs.Counter // stall events
	RebufferMs      *obs.Counter // total stall time, milliseconds

	// Recorder receives "player_rebuffer" (V = stall ms) and
	// "player_bitrate_switch" (V = new bits/s, Aux = previous bits/s)
	// events from the sim driver. The analytic driver records no events
	// (population runs would flood the ring without a meaningful clock).
	Recorder *obs.Recorder
}

// NewMetrics builds a Metrics wired to registry r (nil r yields nil,
// keeping instrumentation off).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		BufferSeconds:   r.Gauge("player_buffer_seconds"),
		BitrateBps:      r.Gauge("player_bitrate_bps"),
		Chunks:          r.Counter("player_chunks"),
		BitrateSwitches: r.Counter("player_bitrate_switches"),
		Rebuffers:       r.Counter("player_rebuffers"),
		RebufferMs:      r.Counter("player_rebuffer_ms"),
		Recorder:        r.Recorder(),
	}
}
