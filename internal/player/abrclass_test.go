package player

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
)

// These tests exercise §4.2's central claim beyond the production
// algorithm: Sammy works with a *class* of pacing-aware ABR algorithms.
// For each underlying algorithm, pacing at the production multipliers must
// preserve quality and rebuffer behaviour while slashing chunk throughput.

func TestSammyWorksAcrossABRClass(t *testing.T) {
	algorithms := []abr.Algorithm{
		abr.Production{StartupSafety: 1.1},
		abr.HYB{Beta: 0.7, Lookahead: 8},
		abr.BOLA{},
		abr.MPC{},
	}
	for _, algo := range algorithms {
		algo := algo
		t.Run(algo.Name(), func(t *testing.T) {
			run := func(ctrl *core.Controller, seed int64) QoE {
				rng := rand.New(rand.NewSource(seed))
				cfg := Config{
					Controller: ctrl,
					Title:      testTitle(rng),
					History:    &core.History{},
				}
				return Run(cfg, testPath(150), rng, nil)
			}
			control := run(core.NewControl(algo), 7)
			sammy := run(core.NewSammy(algo, core.DefaultC0, core.DefaultC1), 7)

			if float64(sammy.ChunkThroughput) > 0.5*float64(control.ChunkThroughput) {
				t.Errorf("throughput not halved: %v vs %v", sammy.ChunkThroughput, control.ChunkThroughput)
			}
			if sammy.VMAF < control.VMAF-1 {
				t.Errorf("quality regressed: %.2f vs %.2f", sammy.VMAF, control.VMAF)
			}
			if sammy.RebufferCount > control.RebufferCount {
				t.Errorf("rebuffers regressed: %d vs %d", sammy.RebufferCount, control.RebufferCount)
			}
		})
	}
}

func TestSammyPaceFloorValidatesForThresholdABRs(t *testing.T) {
	// Every algorithm exposing a §4.2 threshold must accept the production
	// multipliers for its own β.
	look := 32 * time.Second
	maxBuf := 4 * time.Minute
	rng := rand.New(rand.NewSource(1))
	top := testTitle(rng).Ladder.Top().Bitrate

	cases := []struct {
		algo abr.Algorithm
		th   core.ThresholdABR
	}{
		{abr.Production{}, abr.Production{}},
		{abr.HYB{Beta: 0.7}, abr.HYB{Beta: 0.7}},
		{abr.MPC{Discount: 0.8}, abr.MPC{Discount: 0.8}},
	}
	for _, c := range cases {
		ctrl := core.NewSammy(c.algo, core.DefaultC0, core.DefaultC1)
		if err := ctrl.ValidatePaceFloor(c.th, top, maxBuf, look); err != nil {
			t.Errorf("%s: production multipliers rejected: %v", c.algo.Name(), err)
		}
	}
	// β=0.5 needs at least 2× at empty buffer; 3.2 still clears it, but
	// 1.8 must not.
	h := abr.HYB{Beta: 0.5}
	if err := core.NewSammy(h, 3.2, 2.8).ValidatePaceFloor(h, top, maxBuf, look); err != nil {
		t.Errorf("β=0.5 with 3.2x rejected: %v", err)
	}
	if err := core.NewSammy(h, 1.8, 1.6).ValidatePaceFloor(h, top, maxBuf, look); err == nil {
		t.Error("β=0.5 with 1.8x should be rejected (needs 2x at empty buffer)")
	}
}

func TestNaivePacingHurtsSimpleThroughputRule(t *testing.T) {
	// The inverse of the class property: the §2.3.1 strawman, which is NOT
	// pacing-aware, loses quality under low fixed pacing (the downward
	// spiral), while the same pacing leaves a buffer-aware algorithm fine.
	run := func(algo abr.Algorithm, mult float64, seed int64) QoE {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Controller: core.NewNaiveBaseline(algo, mult),
			Title:      testTitle(rng),
			History:    &core.History{},
		}
		return Run(cfg, testPath(150), rng, nil)
	}
	naiveOnSpiralProne := run(abr.SimpleThroughput{C: 0.5}, 1.5, 9)
	naiveOnBufferAware := run(abr.BOLA{}, 1.5, 9)
	// Pacing against the *top* bitrate (as Algorithm 1 does) caps the
	// damage at a rung or two rather than the full §2.3.1 spiral — the
	// spiral itself, with pacing proportional to the current bitrate, is
	// exercised in package abr. Here the throughput rule still pays a clear
	// quality price that the buffer-aware algorithm does not.
	if naiveOnSpiralProne.VMAF >= naiveOnBufferAware.VMAF-1.5 {
		t.Errorf("expected the throughput rule to lose quality under 1.5x pacing: %.1f vs BOLA %.1f",
			naiveOnSpiralProne.VMAF, naiveOnBufferAware.VMAF)
	}
	if naiveOnSpiralProne.AvgBitrate >= naiveOnBufferAware.AvgBitrate {
		t.Errorf("spiral should show up in bitrate: %v vs %v",
			naiveOnSpiralProne.AvgBitrate, naiveOnBufferAware.AvgBitrate)
	}
}

func ExampleRun() {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{
		Controller: core.NewSammy(abr.Production{}, core.DefaultC0, core.DefaultC1),
		Title:      testTitle(rng),
		History:    &core.History{},
	}
	q := Run(cfg, testPath(100), rng, nil)
	fmt.Println(q.Chunks, q.RebufferCount)
	// Output: 150 0
}
