package video

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestCapAt(t *testing.T) {
	l := NewLadder(1*units.Mbps, 2*units.Mbps, 4*units.Mbps, 8*units.Mbps)
	tests := []struct {
		limit   units.BitsPerSecond
		wantLen int
		wantTop units.BitsPerSecond
	}{
		{100 * units.Mbps, 4, 8 * units.Mbps},
		{8 * units.Mbps, 4, 8 * units.Mbps},
		{5 * units.Mbps, 3, 4 * units.Mbps},
		{2 * units.Mbps, 2, 2 * units.Mbps},
		{500 * units.Kbps, 1, 1 * units.Mbps}, // at least the lowest rung survives
	}
	for _, tt := range tests {
		got := l.CapAt(tt.limit)
		if len(got) != tt.wantLen {
			t.Errorf("CapAt(%v) len = %d, want %d", tt.limit, len(got), tt.wantLen)
		}
		if got.Top().Bitrate != tt.wantTop {
			t.Errorf("CapAt(%v) top = %v, want %v", tt.limit, got.Top().Bitrate, tt.wantTop)
		}
	}
}

func TestCapAtPreservesVMAF(t *testing.T) {
	// A 4 Mbps encode looks identical whether or not an 8 Mbps rung exists.
	l := NewLadder(1*units.Mbps, 4*units.Mbps, 8*units.Mbps)
	capped := l.CapAt(4 * units.Mbps)
	if capped[1].VMAF != l[1].VMAF {
		t.Errorf("CapAt changed rung VMAF: %v vs %v", capped[1].VMAF, l[1].VMAF)
	}
}

func TestCapAtProperty(t *testing.T) {
	l := DefaultLadder()
	f := func(limitKbps uint16) bool {
		limit := units.BitsPerSecond(limitKbps) * units.Kbps
		c := l.CapAt(limit)
		if len(c) < 1 || len(c) > len(l) {
			return false
		}
		// All rungs except possibly the forced lowest respect the limit.
		for i := 1; i < len(c); i++ {
			if c[i].Bitrate > limit {
				return false
			}
		}
		// The cap is a prefix of the original ladder.
		for i := range c {
			if c[i] != l[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
