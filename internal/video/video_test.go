package video

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestNewLadderValidation(t *testing.T) {
	for _, tc := range [][]units.BitsPerSecond{
		{},
		{2 * units.Mbps, 1 * units.Mbps},
		{1 * units.Mbps, 1 * units.Mbps},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLadder(%v) should panic", tc)
				}
			}()
			NewLadder(tc...)
		}()
	}
}

func TestLadderVMAFMonotoneConcave(t *testing.T) {
	l := DefaultLadder()
	for i := 1; i < len(l); i++ {
		if l[i].VMAF <= l[i-1].VMAF {
			t.Fatalf("VMAF not increasing at rung %d: %v then %v", i, l[i-1].VMAF, l[i].VMAF)
		}
	}
	// Concavity in log-bitrate: per-doubling gains shrink. Check gain per
	// unit log-bitrate is non-increasing.
	for i := 2; i < len(l); i++ {
		g1 := (l[i-1].VMAF - l[i-2].VMAF) / (float64(l[i-1].Bitrate)/float64(l[i-2].Bitrate) - 1)
		g2 := (l[i].VMAF - l[i-1].VMAF) / (float64(l[i].Bitrate)/float64(l[i-1].Bitrate) - 1)
		if g2 > g1*1.5 {
			t.Fatalf("quality gains not diminishing at rung %d", i)
		}
	}
	top := l.Top()
	if top.VMAF < 90 || top.VMAF > 100 {
		t.Errorf("top VMAF = %v, want ≈ 95", top.VMAF)
	}
}

func TestLadderIndexAndHighestBelow(t *testing.T) {
	l := NewLadder(1*units.Mbps, 2*units.Mbps, 4*units.Mbps)
	tests := []struct {
		r    units.BitsPerSecond
		want int
	}{
		{500 * units.Kbps, -1},
		{1 * units.Mbps, 0},
		{3 * units.Mbps, 1},
		{100 * units.Mbps, 2},
	}
	for _, tt := range tests {
		if got := l.Index(tt.r); got != tt.want {
			t.Errorf("Index(%v) = %d, want %d", tt.r, got, tt.want)
		}
	}
	if got := l.HighestBelow(500 * units.Kbps); got != l[0] {
		t.Errorf("HighestBelow below ladder should return lowest rung, got %v", got)
	}
	if got := l.HighestBelow(3 * units.Mbps); got != l[1] {
		t.Errorf("HighestBelow(3Mbps) = %v", got)
	}
}

func TestLabLadderTopIs3_3Mbps(t *testing.T) {
	if got := LabLadder().Top().Bitrate; got != 3.3*units.Mbps {
		t.Errorf("lab ladder top = %v, want 3.3Mbps (paper §6)", got)
	}
}

func TestTitleChunkSizes(t *testing.T) {
	l := NewLadder(1*units.Mbps, 4*units.Mbps)
	title := NewTitle(l, 4*time.Second, 10, nil)
	c := title.ChunkAt(0, 1)
	// 4 Mbps × 4 s = 2 MB.
	if c.Size != 2*units.MB {
		t.Errorf("chunk size = %v, want 2MB", c.Size)
	}
	if c.Duration != 4*time.Second {
		t.Errorf("chunk duration = %v", c.Duration)
	}
	if title.Duration() != 40*time.Second {
		t.Errorf("title duration = %v", title.Duration())
	}
}

func TestTitleJitterSharedAcrossRungs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLadder(1*units.Mbps, 4*units.Mbps)
	title := NewTitle(l, 4*time.Second, 50, rng)
	// The same chunk index must have the same relative size deviation at
	// every rung (scene complexity is content, not encode, driven).
	for i := 0; i < 50; i++ {
		lo := title.ChunkAt(i, 0)
		hi := title.ChunkAt(i, 1)
		ratio := float64(hi.Size) / float64(lo.Size)
		if ratio < 3.9 || ratio > 4.1 {
			t.Fatalf("chunk %d rung ratio = %v, want 4", i, ratio)
		}
	}
}

func TestTitleChunkAtPanicsOutOfRange(t *testing.T) {
	title := NewTitle(DefaultLadder(), 4*time.Second, 5, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	title.ChunkAt(5, 0)
}

func TestUpcomingSizesTruncatesAtEnd(t *testing.T) {
	title := NewTitle(DefaultLadder(), 4*time.Second, 5, nil)
	sizes := title.UpcomingSizes(3, 0, 10)
	if len(sizes) != 2 {
		t.Errorf("UpcomingSizes near end = %d entries, want 2", len(sizes))
	}
}

func TestBufferSimStep(t *testing.T) {
	b := &BufferSim{Level: 10 * time.Second, Max: 20 * time.Second}
	// Fast download: buffer grows by d − Δ.
	reb, full := b.Step(4*time.Second, 1*units.MB, 1*time.Second)
	if reb != 0 || full != 0 {
		t.Errorf("unexpected rebuffer=%v full=%v", reb, full)
	}
	if b.Level != 13*time.Second {
		t.Errorf("level = %v, want 13s", b.Level)
	}
	// Slow download: rebuffers when download exceeds buffer.
	b.Level = 2 * time.Second
	reb, _ = b.Step(4*time.Second, 1*units.MB, 5*time.Second)
	if reb != 3*time.Second {
		t.Errorf("rebuffer = %v, want 3s", reb)
	}
	if b.Level != 4*time.Second {
		t.Errorf("level after rebuffer = %v, want 4s", b.Level)
	}
	// Overfill: clamped at Max with reported wait.
	b.Level = 19 * time.Second
	_, full = b.Step(4*time.Second, 1*units.MB, 1*time.Second)
	if full != 2*time.Second {
		t.Errorf("fullWait = %v, want 2s", full)
	}
	if b.Level != 20*time.Second {
		t.Errorf("level = %v, want clamped to 20s", b.Level)
	}
}

func TestTheoremA1Exact(t *testing.T) {
	// Property: for any sequence of chunk downloads that never rebuffers or
	// overfills, the ending buffer equals B0 + D_T − D_T·r̄/x̄ exactly
	// (Theorem A.1).
	f := func(steps []struct {
		DurMs  uint16
		SizeKB uint16
		DlMs   uint16
	}) bool {
		if len(steps) == 0 {
			return true
		}
		b := &BufferSim{Level: time.Hour} // large enough to avoid rebuffering
		b0 := b.Level
		for _, st := range steps {
			d := time.Duration(int(st.DurMs)+1) * time.Millisecond
			s := units.Bytes(int(st.SizeKB)+1) * units.KB
			dl := time.Duration(int(st.DlMs)+1) * time.Millisecond
			if reb, full := b.Step(d, s, dl); reb != 0 || full != 0 {
				return true // outside the theorem's assumption
			}
		}
		predicted := PredictBuffer(b0, b.TotalDuration(), b.AvgBitrate(), b.AvgThroughput())
		diff := b.Level - predicted
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitrateCannotExceedThroughputWithoutDrain(t *testing.T) {
	// Appendix A.1.1: if the buffer does not decrease, r̄ ≤ x̄.
	f := func(steps []struct {
		DurMs  uint16
		SizeKB uint16
		DlMs   uint16
	}) bool {
		if len(steps) == 0 {
			return true
		}
		b := &BufferSim{Level: time.Hour}
		b0 := b.Level
		for _, st := range steps {
			d := time.Duration(int(st.DurMs)+1) * time.Millisecond
			s := units.Bytes(int(st.SizeKB)+1) * units.KB
			dl := time.Duration(int(st.DlMs)+1) * time.Millisecond
			b.Step(d, s, dl)
		}
		if b.Level < b0 {
			return true // buffer drained; the bound does not apply
		}
		return b.AvgBitrate() <= b.AvgThroughput()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPredictBufferExamples(t *testing.T) {
	// Appendix A.1.2's example: building a 5-minute buffer over a 20-minute
	// session means r̄ = 0.75·x̄.
	b0 := time.Duration(0)
	d := 20 * time.Minute
	x := 4 * units.Mbps
	r := 3 * units.Mbps // 0.75x
	end := PredictBuffer(b0, d, r, x)
	if diff := end - 5*time.Minute; diff < -time.Second || diff > time.Second {
		t.Errorf("PredictBuffer = %v, want 5m", end)
	}
	// Zero throughput must signal immediate drain.
	if PredictBuffer(time.Second, time.Second, 1*units.Mbps, 0) >= 0 {
		t.Error("zero throughput should predict a collapsed buffer")
	}
}

func TestMaxSustainableBitrate(t *testing.T) {
	// With an empty buffer, sustainable bitrate equals throughput.
	x := 10 * units.Mbps
	if got := MaxSustainableBitrate(0, 10*time.Second, x); got != x {
		t.Errorf("empty buffer sustainable = %v, want %v", got, x)
	}
	// With buffer equal to lookahead, it doubles.
	if got := MaxSustainableBitrate(10*time.Second, 10*time.Second, x); got != 2*x {
		t.Errorf("B0=D sustainable = %v, want %v", got, 2*x)
	}
	// Consistency: PredictBuffer at exactly the sustainable bitrate lands at
	// zero buffer.
	r := MaxSustainableBitrate(4*time.Second, 16*time.Second, x)
	end := PredictBuffer(4*time.Second, 16*time.Second, r, x)
	if end < -time.Millisecond || end > time.Millisecond {
		t.Errorf("PredictBuffer at sustainable bitrate = %v, want 0", end)
	}
}
