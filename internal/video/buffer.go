package video

import (
	"time"

	"repro/internal/units"
)

// This file implements the playback-buffer arithmetic from the paper's
// Appendix A: the standard buffer update equation (2)/(5), the time-averaged
// bitrate and throughput definitions (8)/(9), and Theorem A.1 relating them.

// BufferSim tracks a playback buffer in seconds of video, applying the
// Appendix A update: downloading a chunk of duration d that takes Δ to
// arrive changes the buffer by d − Δ (while playing). It also tracks the
// aggregates Theorem A.1 is stated over.
type BufferSim struct {
	Level time.Duration // current buffer level (seconds of video)
	Max   time.Duration // buffer capacity; 0 means unbounded

	totalDuration time.Duration // D_T: total duration of downloaded chunks
	totalSize     units.Bytes   // S_T: total size of downloaded chunks
	totalDownload time.Duration // Σ Δ_t: total download time
}

// Step applies one chunk download: duration d of video, size s, downloaded
// in Δ. It reports the rebuffer time incurred (the amount by which the
// buffer would have gone negative) and the time spent with a full buffer
// (when Max > 0 and the chunk overfills it).
func (b *BufferSim) Step(d time.Duration, s units.Bytes, delta time.Duration) (rebuffer, fullWait time.Duration) {
	b.totalDuration += d
	b.totalSize += s
	b.totalDownload += delta

	b.Level -= delta
	if b.Level < 0 {
		rebuffer = -b.Level
		b.Level = 0
	}
	b.Level += d
	if b.Max > 0 && b.Level > b.Max {
		fullWait = b.Level - b.Max
		b.Level = b.Max
	}
	return rebuffer, fullWait
}

// AvgBitrate is r̄ = S_T / D_T (Appendix A eq. 8), the duration-weighted
// average bitrate.
func (b *BufferSim) AvgBitrate() units.BitsPerSecond {
	return units.Rate(b.totalSize, b.totalDuration)
}

// AvgThroughput is x̄ = S_T / ΣΔ_t (Appendix A eq. 9), the download-time-
// weighted average throughput — the paper's "chunk throughput" metric.
func (b *BufferSim) AvgThroughput() units.BitsPerSecond {
	return units.Rate(b.totalSize, b.totalDownload)
}

// TotalDuration reports D_T.
func (b *BufferSim) TotalDuration() time.Duration { return b.totalDuration }

// TotalDownloadTime reports ΣΔ_t.
func (b *BufferSim) TotalDownloadTime() time.Duration { return b.totalDownload }

// PredictBuffer applies Theorem A.1: starting from buffer B0, downloading
// chunks with total duration D at average bitrate r and average throughput
// x yields ending buffer B0 + D − D·r/x. This is the buffer-evolution
// predictor used by lookahead ABR algorithms (and HYB's threshold analysis).
func PredictBuffer(b0, d time.Duration, r, x units.BitsPerSecond) time.Duration {
	if x <= 0 {
		// No throughput: the whole download time is unbounded; signal an
		// immediately-draining buffer.
		return b0 - (1 << 62)
	}
	drain := time.Duration(float64(d) * float64(r) / float64(x))
	return b0 + d - drain
}

// MaxSustainableBitrate inverts PredictBuffer: the highest bitrate r that
// keeps the ending buffer non-negative given throughput x, starting buffer
// B0 and lookahead duration D (the constraint r ≤ x·(1 + B0/D) scaled by
// the ABR's safety factor β elsewhere).
func MaxSustainableBitrate(b0, d time.Duration, x units.BitsPerSecond) units.BitsPerSecond {
	if d <= 0 {
		return units.BitsPerSecond(1 << 62)
	}
	return units.BitsPerSecond(float64(x) * (1 + float64(b0)/float64(d)))
}
