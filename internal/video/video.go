// Package video models the on-demand streaming data the paper's systems
// operate on: bitrate ladders, chunks, a synthetic catalog, a concave
// quality (VMAF-like) curve, and the playback-buffer arithmetic formalized
// in the paper's Appendix A.
package video

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/units"
)

// Rung is one entry in a bitrate ladder: an encoding of the title at a
// particular average bitrate with an associated perceptual quality score.
type Rung struct {
	Bitrate units.BitsPerSecond // average encoding bitrate
	VMAF    float64             // perceptual quality score in [0, 100]
}

// Ladder is an ascending list of rungs. Methods assume (and NewLadder
// enforces) ascending bitrate order.
type Ladder []Rung

// NewLadder builds a ladder from ascending bitrates, assigning each rung a
// VMAF score from a concave diminishing-returns curve anchored so the top
// rung approaches the ceiling. Real encoding ladders behave this way: each
// bitrate doubling buys a shrinking quality gain.
func NewLadder(bitrates ...units.BitsPerSecond) Ladder {
	if len(bitrates) == 0 {
		panic("video: ladder needs at least one rung")
	}
	for i := 1; i < len(bitrates); i++ {
		if bitrates[i] <= bitrates[i-1] {
			panic("video: ladder bitrates must be strictly ascending")
		}
	}
	top := float64(bitrates[len(bitrates)-1])
	l := make(Ladder, len(bitrates))
	for i, b := range bitrates {
		l[i] = Rung{Bitrate: b, VMAF: vmafCurve(float64(b), top)}
	}
	return l
}

// vmafCurve is a concave map from bitrate to a VMAF-like score: ~55 at a
// tenth of the top bitrate, ~95 at the top. The exact curve does not matter
// for the reproduction — only monotonicity and concavity do, since all VMAF
// results are relative.
func vmafCurve(b, top float64) float64 {
	// Logarithmic saturation: score = 95 + 17.4·log10(b/top), clamped.
	s := 95 + 17.4*math.Log10(b/top)
	if s < 10 {
		s = 10
	}
	if s > 100 {
		s = 100
	}
	return s
}

// Top returns the highest rung.
func (l Ladder) Top() Rung { return l[len(l)-1] }

// Lowest returns the lowest rung.
func (l Ladder) Lowest() Rung { return l[0] }

// Index returns the position of the highest rung with bitrate ≤ r, or -1
// when even the lowest rung exceeds r.
func (l Ladder) Index(r units.BitsPerSecond) int {
	best := -1
	for i, rung := range l {
		if rung.Bitrate <= r {
			best = i
		}
	}
	return best
}

// HighestBelow returns the highest rung with bitrate ≤ r, falling back to
// the lowest rung (players always have something to play).
func (l Ladder) HighestBelow(r units.BitsPerSecond) Rung {
	if i := l.Index(r); i >= 0 {
		return l[i]
	}
	return l[0]
}

// CapAt returns the ladder restricted to rungs with bitrate ≤ limit, the
// per-device/plan ladder subset of §2.1. At least the lowest rung is always
// kept. Rung VMAF scores are preserved: a 5.8 Mbps encode looks the same
// whether or not higher encodes exist.
func (l Ladder) CapAt(limit units.BitsPerSecond) Ladder {
	n := 1
	for i := 1; i < len(l); i++ {
		if l[i].Bitrate <= limit {
			n = i + 1
		}
	}
	return l[:n]
}

// DefaultLadder is a ladder shaped like a contemporary premium-VOD encode
// (from audio-only-ish rates to 4K-ish): its top rung anchors the "pace at a
// multiple of the highest bitrate" logic.
func DefaultLadder() Ladder {
	return NewLadder(
		235*units.Kbps, 375*units.Kbps, 560*units.Kbps, 750*units.Kbps,
		1050*units.Kbps, 1750*units.Kbps, 2350*units.Kbps, 3*units.Mbps,
		4.3*units.Mbps, 5.8*units.Mbps, 8.1*units.Mbps, 11.6*units.Mbps,
		16.8*units.Mbps,
	)
}

// LabLadder matches the paper's lab setup: a video with a maximum bitrate of
// 3.3 Mbps (§6).
func LabLadder() Ladder {
	return NewLadder(
		235*units.Kbps, 375*units.Kbps, 560*units.Kbps, 750*units.Kbps,
		1050*units.Kbps, 1750*units.Kbps, 2350*units.Kbps, 3.3*units.Mbps,
	)
}

// Chunk is one downloadable piece of video at a chosen rung.
type Chunk struct {
	Index    int
	Duration time.Duration
	Rung     Rung
	Size     units.Bytes // encoded size of this chunk at this rung
}

// Title is a synthetic video: a chunked timeline over a ladder, with
// per-chunk size variation around each rung's average bitrate the way real
// VBR encodes vary scene-by-scene.
type Title struct {
	Ladder        Ladder
	ChunkDuration time.Duration
	NumChunks     int
	// sizeJitter[i] multiplies chunk i's nominal size; shared across rungs
	// because scene complexity affects every encode of the same content.
	sizeJitter []float64
}

// NewTitle builds a title of the given length with per-chunk VBR jitter
// drawn from rng (lognormal, σ≈0.2, mean 1). A nil rng yields constant-size
// chunks.
func NewTitle(ladder Ladder, chunkDuration time.Duration, numChunks int, rng *rand.Rand) *Title {
	if numChunks <= 0 || chunkDuration <= 0 {
		panic("video: title needs positive chunk count and duration")
	}
	t := &Title{
		Ladder:        ladder,
		ChunkDuration: chunkDuration,
		NumChunks:     numChunks,
		sizeJitter:    make([]float64, numChunks),
	}
	for i := range t.sizeJitter {
		if rng == nil {
			t.sizeJitter[i] = 1
		} else {
			// Lognormal with mean 1: exp(N(-σ²/2, σ)).
			const sigma = 0.2
			t.sizeJitter[i] = math.Exp(rng.NormFloat64()*sigma - sigma*sigma/2)
		}
	}
	return t
}

// Duration reports the title's total playback duration.
func (t *Title) Duration() time.Duration {
	return time.Duration(t.NumChunks) * t.ChunkDuration
}

// SizeAt reports the encoded size of chunk index at rung rungIndex without
// materializing a Chunk — the allocation-free fast path MPC-style lookahead
// hammers (one call per rung per upcoming chunk per decision). It computes
// the size with exactly the same arithmetic as ChunkAt.
func (t *Title) SizeAt(index, rungIndex int) units.Bytes {
	if index < 0 || index >= t.NumChunks {
		panic(fmt.Sprintf("video: chunk index %d out of range [0,%d)", index, t.NumChunks))
	}
	nominal := float64(t.Ladder[rungIndex].Bitrate) / 8 * t.ChunkDuration.Seconds()
	size := units.Bytes(nominal * t.sizeJitter[index])
	if size < 1 {
		size = 1
	}
	return size
}

// ChunkAt materializes chunk index at rung r.
func (t *Title) ChunkAt(index, rungIndex int) Chunk {
	if index < 0 || index >= t.NumChunks {
		panic(fmt.Sprintf("video: chunk index %d out of range [0,%d)", index, t.NumChunks))
	}
	rung := t.Ladder[rungIndex]
	nominal := float64(rung.Bitrate) / 8 * t.ChunkDuration.Seconds()
	size := units.Bytes(nominal * t.sizeJitter[index])
	if size < 1 {
		size = 1
	}
	// Scene complexity also moves perceptual quality at a fixed bitrate:
	// complex (larger-than-nominal) chunks score a little lower, easy ones
	// a little higher. This keeps session VMAF off a hard ceiling, so
	// population medians move continuously the way production VMAF does.
	rung.VMAF -= 8 * (t.sizeJitter[index] - 1)
	if rung.VMAF > 100 {
		rung.VMAF = 100
	}
	if rung.VMAF < 10 {
		rung.VMAF = 10
	}
	return Chunk{Index: index, Duration: t.ChunkDuration, Rung: rung, Size: size}
}

// UpcomingSizes reports the sizes of the next n chunks starting at index if
// they were all fetched at rungIndex — the lookahead input to MPC-style ABR.
// Decision loops should prefer iterating SizeAt directly, which allocates
// nothing.
func (t *Title) UpcomingSizes(index, rungIndex, n int) []units.Bytes {
	sizes := make([]units.Bytes, 0, n)
	for i := index; i < index+n && i < t.NumChunks; i++ {
		sizes = append(sizes, t.SizeAt(i, rungIndex))
	}
	return sizes
}
