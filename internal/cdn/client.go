package cdn

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	trace "repro/internal/obs/trace"
	"repro/internal/pacing"
	"repro/internal/units"
)

// DefaultHTTPClient is the transport used when Client.HTTP is nil. Unlike
// http.DefaultClient it bounds connection setup and server think time, so a
// dead CDN fails an attempt quickly (and retryably) instead of hanging the
// whole session on a zero-timeout default.
var DefaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ResponseHeaderTimeout: 15 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
		MaxIdleConns:          100,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
	},
}

// RetryPolicy bounds the client's recovery behaviour per chunk. Zero values
// take the defaults noted on each field; set MaxAttempts to 1 to disable
// retries entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of HTTP attempts per chunk, the first
	// one included. Default 4.
	MaxAttempts int
	// TTFBTimeout aborts an attempt that has not delivered its first body
	// byte in time (connection setup and server queueing included).
	// Default 10 s.
	TTFBTimeout time.Duration
	// StallTimeout aborts an attempt whose body read makes no progress for
	// this long. It is a no-progress watchdog, not a total-duration cap:
	// a slow-but-moving paced body never trips it. Default 5 s.
	StallTimeout time.Duration
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it. Default 50 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 2 s.
	MaxBackoff time.Duration
	// JitterFrac shrinks each backoff by a uniform factor in
	// [1-JitterFrac, 1], decorrelating client herds. Default 0.5.
	// Negative disables jitter.
	JitterFrac float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.TTFBTimeout <= 0 {
		p.TTFBTimeout = 10 * time.Second
	}
	if p.StallTimeout <= 0 {
		p.StallTimeout = 5 * time.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	}
	return p
}

// FetchResult summarizes one chunk download over real HTTP, including the
// recovery work it took.
type FetchResult struct {
	Size       units.Bytes         // bytes delivered (== requested on success; partial on error)
	FirstByte  time.Duration       // request to the first body byte ever received
	Duration   time.Duration       // request to last byte, retries and backoff included
	Throughput units.BitsPerSecond // bytes delivered per unit of body-read time
	Paced      bool                // server confirmed it applied pacing
	Attempts   int                 // HTTP attempts made (>= 1)
	Retries    int                 // failed attempts that were retried
	Resumes    int                 // attempts that resumed mid-body via an HTTP Range request
}

// Client fetches chunks from a cdn.Server, carrying the requested pace rate
// in the pacing headers. It survives a hostile path: transient 5xx,
// connection resets, slow first bytes and mid-body stalls are retried with
// capped exponential backoff, and partially delivered bodies are resumed
// byte-exactly with HTTP Range requests instead of being refetched. When
// an overloaded server sheds with 503/429 + Retry-After, the client
// honours the hint (clamped to MaxBackoff) instead of its own schedule, so
// shed load spreads out rather than retry-storming.
//
// A Client is safe for concurrent use.
type Client struct {
	// HTTP is the underlying client; DefaultHTTPClient if nil.
	HTTP *http.Client
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Retry bounds the recovery behaviour; zero values take the documented
	// defaults.
	Retry RetryPolicy
	// Metrics receives fetch telemetry (attempts, retries, resumes,
	// failures). Nil disables instrumentation.
	Metrics *ClientMetrics
	// Seed seeds the backoff-jitter RNG, keeping retry schedules
	// reproducible. Default 1.
	Seed int64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a Client for baseURL with the default transport and retry
// policy, instrumented against the process-default obs registry.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, Metrics: NewClientMetrics(obs.Default())}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return DefaultHTTPClient
}

// FetchChunk downloads size bytes, asking the server to pace at rate
// (pacing.NoPacing for unpaced). It measures what the paper's client
// measures — time to first byte and download-time throughput — and retries
// transient failures per the client's RetryPolicy. On error the returned
// FetchResult still reports the partial progress (bytes, attempts, timing).
func (c *Client) FetchChunk(ctx context.Context, size units.Bytes, rate units.BitsPerSecond) (FetchResult, error) {
	return c.FetchChunkTo(ctx, nil, size, rate)
}

// FetchChunkTo is FetchChunk streaming the verified body into w (nil
// discards it). Across retries and Range resumes w receives each byte
// exactly once, in order, which is how tests prove resumes are byte-exact.
func (c *Client) FetchChunkTo(ctx context.Context, w io.Writer, size units.Bytes, rate units.BitsPerSecond) (FetchResult, error) {
	if size <= 0 {
		return FetchResult{}, fmt.Errorf("cdn: chunk size must be positive, got %d", size)
	}
	pol := c.Retry.withDefaults()
	m := c.Metrics
	// The fetch span nests under whatever span the caller put in ctx (the
	// chunk span on a traced session); untraced contexts make fsp nil and
	// every span call below a no-op.
	fsp := trace.SpanFromContext(ctx).StartChild("cdn.fetch", "")
	var (
		res      FetchResult
		got      units.Bytes   // verified bytes delivered so far
		bodyTime time.Duration // time spent actually reading body bytes
		start    = time.Now()
		lastErr  error
	)
	for attempt := 1; ; attempt++ {
		res.Attempts++
		if m != nil {
			m.FetchAttempts.Inc()
		}
		attemptStart := time.Now()
		asp := fsp.StartChild("cdn.attempt", "")
		ar, terminal, err := c.fetchOnce(ctx, w, size, got, rate, pol, asp)
		if err != nil {
			asp.SetStr("error", err.Error())
		}
		asp.SetAttr("bytes", float64(ar.n)).End()
		if ar.resumed {
			res.Resumes++
			if m != nil {
				m.FetchResumes.Inc()
				m.Recorder.Record("fetch_resume", c.BaseURL, float64(got), float64(size))
			}
		}
		if res.FirstByte == 0 && ar.firstByte > 0 {
			res.FirstByte = attemptStart.Sub(start) + ar.firstByte
		}
		got += ar.n
		bodyTime += ar.bodyTime
		if ar.paced {
			res.Paced = true
		}
		if err == nil {
			lastErr = nil
			break
		}
		lastErr = err
		if terminal || attempt >= pol.MaxAttempts {
			break
		}
		res.Retries++
		if m != nil {
			m.FetchRetries.Inc()
			m.Recorder.Record("fetch_retry", err.Error(), float64(attempt), float64(got))
		}
		var berr error
		if ar.hasRetryAfter {
			if m != nil {
				m.RetryAfterHonored.Inc()
				m.Recorder.Record("fetch_retry_after", c.BaseURL, ar.retryAfter.Seconds(), float64(attempt))
			}
			berr = sleepCtx(ctx, ar.retryAfter)
		} else {
			berr = c.backoff(ctx, pol, attempt)
		}
		if berr != nil {
			lastErr = berr
			break
		}
	}

	res.Size = got
	res.Duration = time.Since(start)
	if got > 0 {
		// Download-time throughput over the time spent reading body bytes.
		// Guard the degenerate all-in-one-read case (transfer time ~0)
		// explicitly instead of fudging every measurement.
		transfer := bodyTime
		if transfer <= 0 {
			transfer = time.Nanosecond
		}
		res.Throughput = units.Rate(got, transfer)
	}
	fsp.SetAttr("bytes", float64(got)).SetAttr("attempts", float64(res.Attempts)).
		SetAttr("retries", float64(res.Retries)).SetAttr("resumes", float64(res.Resumes))
	if lastErr != nil {
		if m != nil {
			m.FetchFailures.Inc()
		}
		fsp.SetStr("error", lastErr.Error()).End()
		return res, lastErr
	}
	fsp.End()
	return res, nil
}

// attemptResult is one HTTP attempt's contribution to a fetch.
type attemptResult struct {
	n         units.Bytes   // verified body bytes this attempt delivered
	firstByte time.Duration // attempt start to its first body byte; 0 if none
	bodyTime  time.Duration // first body byte to end of the attempt
	paced     bool
	resumed   bool // the server honoured a Range resume with a 206
	// retryAfter is the server's Retry-After hint on a 503/429, already
	// clamped to [0, MaxBackoff]. hasRetryAfter distinguishes an explicit
	// "retry immediately" (0) from no hint at all.
	retryAfter    time.Duration
	hasRetryAfter bool
}

// fetchOnce runs a single HTTP attempt for bytes [offset, size) under the
// TTFB deadline and the no-progress stall watchdog. terminal reports whether
// the error is worth retrying: 4xx responses, parent-context cancellation
// and protocol violations are terminal; 5xx, 429, transport errors, stalls
// and short bodies are transient.
func (c *Client) fetchOnce(ctx context.Context, w io.Writer, size, offset units.Bytes, rate units.BitsPerSecond, pol RetryPolicy, asp *trace.Span) (attemptResult, bool, error) {
	var ar attemptResult
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	// The watchdog starts as the TTFB deadline and is re-armed to the stall
	// timeout on every read that makes progress, so it only ever fires on a
	// genuinely idle attempt.
	//sammy:sharedpacer-ok: one watchdog per fetch attempt on the client side, not a per-paced-write server timer
	watchdog := time.AfterFunc(pol.TTFBTimeout, cancel)
	defer watchdog.Stop()

	url := fmt.Sprintf("%s/chunk?size=%d", c.BaseURL, int64(size))
	req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	if err != nil {
		return ar, true, fmt.Errorf("cdn: build request: %w", err)
	}
	pacing.SetHeader(req.Header, rate)
	// Propagate trace context so the server's serving span joins this
	// attempt in the merged timeline.
	trace.SetHeader(req.Header, asp)
	if offset > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", int64(offset)))
	}

	start := time.Now()
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ar, true, fmt.Errorf("cdn: fetch chunk: %w", ctx.Err())
		}
		return ar, false, fmt.Errorf("cdn: fetch chunk: %w", err)
	}
	defer resp.Body.Close()

	expected := size - offset
	switch {
	case offset > 0 && resp.StatusCode == http.StatusPartialContent:
		cr := resp.Header.Get("Content-Range")
		if !strings.HasPrefix(cr, fmt.Sprintf("bytes %d-", int64(offset))) {
			return ar, true, fmt.Errorf("cdn: resume mismatch: Content-Range %q, want start %d", cr, offset)
		}
		ar.resumed = true
	case offset == 0 && resp.StatusCode == http.StatusOK:
		// Fresh body.
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
		// An overloaded (or draining) server sheds with Retry-After; honour
		// it so retries spread out instead of storming, clamped so a
		// hostile or confused server cannot park the client forever.
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			if d > pol.MaxBackoff {
				d = pol.MaxBackoff
			}
			ar.retryAfter, ar.hasRetryAfter = d, true
		}
		return ar, false, fmt.Errorf("cdn: fetch chunk: status %d", resp.StatusCode)
	case offset > 0 && resp.StatusCode == http.StatusOK:
		// The server ignored the Range header; the fresh body cannot be
		// spliced onto bytes already handed to w.
		return ar, true, fmt.Errorf("cdn: server ignored range resume from offset %d", offset)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return ar, true, fmt.Errorf("cdn: fetch chunk: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	ar.paced = resp.Header.Get("X-Sammy-Paced") == "1"

	buf := make([]byte, 32*1024)
	finish := func(terminal bool, err error) (attemptResult, bool, error) {
		if ar.firstByte > 0 {
			if ar.bodyTime = time.Since(start) - ar.firstByte; ar.bodyTime < 0 {
				ar.bodyTime = 0
			}
		}
		return ar, terminal, err
	}
	for ar.n < expected {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if ar.firstByte == 0 {
				ar.firstByte = time.Since(start)
			}
			watchdog.Reset(pol.StallTimeout)
			if units.Bytes(n) > expected-ar.n {
				return finish(true, fmt.Errorf("cdn: long body: server sent more than %d bytes", expected))
			}
			if w != nil {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return finish(true, fmt.Errorf("cdn: sink write: %w", werr))
				}
			}
			ar.n += units.Bytes(n)
		}
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			if ctx.Err() != nil {
				return finish(true, fmt.Errorf("cdn: read body: %w", ctx.Err()))
			}
			if actx.Err() != nil {
				kind := "stalled mid-body"
				if ar.firstByte == 0 {
					kind = "first-byte deadline exceeded"
				}
				return finish(false, fmt.Errorf("cdn: read body: %s (%d/%d bytes): %w", kind, ar.n, expected, rerr))
			}
			return finish(false, fmt.Errorf("cdn: read body: %w", rerr))
		}
	}
	if ar.n < expected {
		return finish(false, fmt.Errorf("cdn: short body: got %d of %d bytes", ar.n, expected))
	}
	return finish(false, nil)
}

// backoff sleeps the capped exponential delay before retry number attempt+1,
// honouring ctx. Jitter shrinks the delay deterministically from the
// client's seeded RNG.
func (c *Client) backoff(ctx context.Context, pol RetryPolicy, attempt int) error {
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	d := pol.BaseBackoff << shift
	if d <= 0 || d > pol.MaxBackoff {
		d = pol.MaxBackoff
	}
	if pol.JitterFrac > 0 {
		c.mu.Lock()
		if c.rng == nil {
			seed := c.Seed
			if seed == 0 {
				seed = 1
			}
			c.rng = rand.New(rand.NewSource(seed))
		}
		f := c.rng.Float64()
		c.mu.Unlock()
		d = time.Duration(float64(d) * (1 - pol.JitterFrac*f))
	}
	return sleepCtx(ctx, d)
}

// sleepCtx waits d, honouring ctx. d <= 0 returns immediately.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cdn: cancelled during retry backoff: %w", err)
		}
		return nil
	}
	//sammy:sharedpacer-ok: client retry backoff fires once per failed attempt, not per paced write
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("cdn: cancelled during retry backoff: %w", ctx.Err())
	case <-t.C:
		return nil
	}
}

// parseRetryAfter interprets a Retry-After header per RFC 9110: either a
// non-negative integer delay in seconds or an HTTP-date (a date in the
// past means "retry now", reported as 0). Malformed values are rejected so
// the caller falls back to its own backoff schedule.
func parseRetryAfter(header string, now time.Time) (time.Duration, bool) {
	header = strings.TrimSpace(header)
	if header == "" {
		return 0, false
	}
	if secs, err := strconv.ParseInt(header, 10, 64); err == nil {
		if secs < 0 {
			return 0, false
		}
		const maxSecs = int64(24 * 60 * 60) // a day; beyond that treat as garbage
		if secs > maxSecs {
			secs = maxSecs
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(header); err == nil {
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
