package cdn

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/pacing"
	"repro/internal/units"
)

// FetchResult summarizes one chunk download over real HTTP.
type FetchResult struct {
	Size       units.Bytes
	FirstByte  time.Duration // request to first body byte
	Duration   time.Duration // request to last body byte
	Throughput units.BitsPerSecond
	Paced      bool // server confirmed it applied pacing
}

// Client fetches chunks from a cdn.Server, carrying the requested pace rate
// in the pacing headers.
type Client struct {
	// HTTP is the underlying client; http.DefaultClient if nil.
	HTTP *http.Client
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
}

// FetchChunk downloads size bytes, asking the server to pace at rate
// (pacing.NoPacing for unpaced). It measures what the paper's client
// measures: time to first byte and download-time throughput.
func (c *Client) FetchChunk(ctx context.Context, size units.Bytes, rate units.BitsPerSecond) (FetchResult, error) {
	if size <= 0 {
		return FetchResult{}, fmt.Errorf("cdn: chunk size must be positive, got %d", size)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	url := fmt.Sprintf("%s/chunk?size=%d", c.BaseURL, int64(size))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return FetchResult{}, fmt.Errorf("cdn: build request: %w", err)
	}
	pacing.SetHeader(req.Header, rate)

	start := time.Now()
	resp, err := httpc.Do(req)
	if err != nil {
		return FetchResult{}, fmt.Errorf("cdn: fetch chunk: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return FetchResult{}, fmt.Errorf("cdn: fetch chunk: status %d: %s", resp.StatusCode, body)
	}

	// Read the first byte separately for the TTFB measurement.
	var one [1]byte
	var firstByte time.Duration
	n, err := io.ReadFull(resp.Body, one[:])
	if err != nil {
		return FetchResult{}, fmt.Errorf("cdn: read first byte: %w", err)
	}
	firstByte = time.Since(start)
	rest, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return FetchResult{}, fmt.Errorf("cdn: read body: %w", err)
	}
	total := units.Bytes(int64(n) + rest)
	dur := time.Since(start)
	if total != size {
		return FetchResult{}, fmt.Errorf("cdn: short body: got %d bytes, want %d", total, size)
	}
	return FetchResult{
		Size:       total,
		FirstByte:  firstByte,
		Duration:   dur,
		Throughput: units.Rate(total, dur-firstByte+time.Microsecond),
		Paced:      resp.Header.Get("X-Sammy-Paced") == "1",
	}, nil
}
