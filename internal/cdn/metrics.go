package cdn

import (
	"repro/internal/obs"
)

// Metrics holds the HTTP chunk server's observability hooks. A nil
// *Metrics (the default) keeps the server uninstrumented. All fields are
// safe under concurrent request handlers; obs types no-op on nil.
type Metrics struct {
	Requests       *obs.Counter // chunk requests accepted (2xx started)
	RequestsBad    *obs.Counter // rejected before the body (4xx: bad size, too large)
	RequestsFailed *obs.Counter // body stream aborted mid-write (client disconnect)
	BytesServed    *obs.Counter // body bytes actually written

	PacedRequests   *obs.Counter // requests that asked for a pace rate
	UnpacedRequests *obs.Counter // requests without one
	KernelPaced     *obs.Counter // paced via SO_MAX_PACING_RATE
	UserPaced       *obs.Counter // paced via the user-space token bucket
	RangeRequests   *obs.Counter // mid-body resumes served with a 206

	PaceRateMbps  *obs.Histogram // requested pace rate per paced request
	PacerSleepMs  *obs.Histogram // user-space pacer sleeps
	ResponseBytes *obs.Histogram // requested chunk sizes

	// Recorder receives "cdn_request" (V = size bytes, Aux = pace bits/s)
	// and "cdn_disconnect" (V = bytes written before the failure) events on
	// the recorder's wall clock. Nil skips events.
	Recorder *obs.Recorder
}

// ClientMetrics holds the fetch client's resilience telemetry. Nil (the
// default) keeps the client uninstrumented.
type ClientMetrics struct {
	FetchAttempts     *obs.Counter // HTTP attempts, retries included
	FetchRetries      *obs.Counter // failed attempts that were retried
	FetchResumes      *obs.Counter // mid-body Range resumes the server honoured
	FetchFailures     *obs.Counter // fetches that exhausted the retry budget
	RetryAfterHonored *obs.Counter // retries delayed by a server Retry-After hint
	RungDowngrades    *obs.Counter // session ladder downgrades after failed fetches
	ChunksFailed      *obs.Counter // chunks skipped after the whole ladder failed

	// Recorder receives "fetch_retry" (Label = error, V = attempt, Aux =
	// bytes so far), "fetch_resume" (V = resume offset, Aux = chunk size),
	// "fetch_retry_after" (V = honoured delay seconds, Aux = attempt) and
	// "rung_downgrade" (V = chunk index, Aux = rung degraded from)
	// events. Nil skips events.
	Recorder *obs.Recorder
}

// NewClientMetrics builds a ClientMetrics wired to registry r (nil r yields
// nil, keeping instrumentation off).
func NewClientMetrics(r *obs.Registry) *ClientMetrics {
	if r == nil {
		return nil
	}
	return &ClientMetrics{
		FetchAttempts:     r.Counter("cdn_fetch_attempts"),
		FetchRetries:      r.Counter("cdn_fetch_retries"),
		FetchResumes:      r.Counter("cdn_fetch_resumes"),
		FetchFailures:     r.Counter("cdn_fetch_failures"),
		RetryAfterHonored: r.Counter("cdn_fetch_retry_after_honored"),
		RungDowngrades:    r.Counter("cdn_rung_downgrades"),
		ChunksFailed:      r.Counter("cdn_chunks_failed"),
		Recorder:          r.Recorder(),
	}
}

// NewMetrics builds a Metrics wired to registry r (nil r yields nil,
// keeping instrumentation off).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Requests:        r.Counter("cdn_requests"),
		RequestsBad:     r.Counter("cdn_requests_bad"),
		RequestsFailed:  r.Counter("cdn_requests_failed"),
		BytesServed:     r.Counter("cdn_bytes_served"),
		PacedRequests:   r.Counter("cdn_paced_requests"),
		UnpacedRequests: r.Counter("cdn_unpaced_requests"),
		KernelPaced:     r.Counter("cdn_kernel_paced"),
		UserPaced:       r.Counter("cdn_user_paced"),
		RangeRequests:   r.Counter("cdn_range_requests"),
		// Pace rates: 0.1 Mbps … ~3 Gbps.
		PaceRateMbps: r.Histogram("cdn_pace_rate_mbps", obs.ExpBuckets(0.1, 1.6, 22)),
		// Sleeps: 10 µs … ~1 s.
		PacerSleepMs: r.Histogram("cdn_pacer_sleep_ms", obs.ExpBuckets(0.01, 1.8, 20)),
		// Chunk sizes: 16 KB … ~1 GB.
		ResponseBytes: r.Histogram("cdn_response_bytes", obs.ExpBuckets(16*1024, 2, 17)),
		Recorder:      r.Recorder(),
	}
}
