//go:build linux

package cdn

import (
	"fmt"
	"net"
	"net/http"
	"syscall"

	"repro/internal/units"
)

// This file implements kernel-enforced application-informed pacing, the
// deployment path §3.2 describes: "In Linux, an HTTP server can implement
// application-informed pacing by setting the SO_MAX_PACING_RATE socket
// option to an application-provided value." With it, the kernel's TCP
// internal pacing (or the fq qdisc) spaces packets; the user-space paced
// writer is bypassed.

// soMaxPacingRate is SO_MAX_PACING_RATE from <asm-generic/socket.h>; the
// stdlib syscall package does not export it.
const soMaxPacingRate = 0x2f

// setKernelPacingRate applies rate as the socket's maximum pacing rate.
// A zero rate removes the limit. It returns an error when the connection
// does not expose a raw socket (e.g. a TLS or test wrapper).
func setKernelPacingRate(c net.Conn, rate units.BitsPerSecond) error {
	sc, ok := c.(syscall.Conn)
	if !ok {
		return fmt.Errorf("cdn: connection %T does not expose a raw socket", c)
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return fmt.Errorf("cdn: raw socket: %w", err)
	}
	// SO_MAX_PACING_RATE takes bytes per second; 0 would fully throttle the
	// socket, so "no limit" is expressed as the maximum value.
	bytesPerSec := int(rate.BytesPerSecond())
	if rate <= 0 {
		bytesPerSec = int(^uint32(0))
	}
	var sockErr error
	if err := raw.Control(func(fd uintptr) {
		sockErr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soMaxPacingRate, bytesPerSec)
	}); err != nil {
		return fmt.Errorf("cdn: socket control: %w", err)
	}
	if sockErr != nil {
		return fmt.Errorf("cdn: set SO_MAX_PACING_RATE: %w", sockErr)
	}
	return nil
}

// applyKernelPacing tries to pace the request's socket in the kernel,
// reporting whether it succeeded (in which case the user-space pacer is
// unnecessary).
func (s *Server) applyKernelPacing(r *http.Request, rate units.BitsPerSecond) bool {
	if !s.KernelPacing {
		return false
	}
	c := requestConn(r)
	if c == nil {
		return false
	}
	return setKernelPacingRate(c, rate) == nil
}
