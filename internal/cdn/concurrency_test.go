package cdn

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/pacing"
	"repro/internal/units"
)

func TestConcurrentPacedFetches(t *testing.T) {
	// The server must pace each response independently: concurrent clients
	// with different pace rates each see their own limit.
	_, client := newTestServer(t)
	rates := []units.BitsPerSecond{4 * units.Mbps, 8 * units.Mbps, 16 * units.Mbps}
	size := 200 * units.KB

	var wg sync.WaitGroup
	results := make([]FetchResult, len(rates))
	errs := make([]error, len(rates))
	for i, rate := range rates {
		wg.Add(1)
		go func(i int, rate units.BitsPerSecond) {
			defer wg.Done()
			results[i], errs[i] = client.FetchChunk(context.Background(), size, rate)
		}(i, rate)
	}
	wg.Wait()

	for i, rate := range rates {
		if errs[i] != nil {
			t.Fatalf("fetch %d: %v", i, errs[i])
		}
		want := rate.TimeToSend(size)
		if results[i].Duration < want/2 {
			t.Errorf("fetch at %v finished in %v, floor ≈ %v", rate, results[i].Duration, want)
		}
		if results[i].Duration > want*3 {
			t.Errorf("fetch at %v took %v, want ≈ %v", rate, results[i].Duration, want)
		}
	}
	// Faster pace rates must actually finish sooner.
	if results[0].Duration < results[2].Duration {
		t.Errorf("4 Mbps fetch (%v) finished before 16 Mbps fetch (%v)",
			results[0].Duration, results[2].Duration)
	}
}

func TestConcurrentStreamSessions(t *testing.T) {
	// Multiple full sessions against one server, in parallel.
	_, client := newTestServer(t)
	const sessions = 4
	var wg sync.WaitGroup
	reports := make([]SessionReport, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctrl := core.NewSammy(abr.Production{}, core.DefaultC0, core.DefaultC1)
			reports[i], errs[i] = StreamSession(context.Background(), SessionConfig{
				Controller: ctrl,
				Title:      NewDemoTitle(5, time.Second),
				Client:     client,
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if reports[i].Chunks != 5 {
			t.Errorf("session %d chunks = %d", i, reports[i].Chunks)
		}
	}
}

func TestServerBurstConfiguration(t *testing.T) {
	// A larger burst shortens small paced transfers (more credit up front).
	fetchWith := func(burst units.Bytes) time.Duration {
		t.Helper()
		srvBurst := &Server{Burst: burst}
		srv, client := newTestServerWith(t, srvBurst)
		_ = srv
		res, err := client.FetchChunk(context.Background(), 60*units.KB, 4*units.Mbps)
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	small := fetchWith(6000)
	large := fetchWith(48000)
	if large >= small {
		t.Errorf("48KB burst (%v) should beat 6KB burst (%v) on a 60KB transfer", large, small)
	}
}

func TestFetchChunkValidation(t *testing.T) {
	_, client := newTestServer(t)
	if _, err := client.FetchChunk(context.Background(), 0, pacing.NoPacing); err == nil {
		t.Error("zero size should error")
	}
	bad := &Client{BaseURL: "http://127.0.0.1:1"} // nothing listening
	if _, err := bad.FetchChunk(context.Background(), 1000, pacing.NoPacing); err == nil {
		t.Error("unreachable server should error")
	}
}
