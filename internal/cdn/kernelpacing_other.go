//go:build !linux

package cdn

import (
	"net/http"

	"repro/internal/units"
)

// applyKernelPacing is a no-op on platforms without SO_MAX_PACING_RATE;
// the server falls back to the user-space paced writer.
func (s *Server) applyKernelPacing(r *http.Request, rate units.BitsPerSecond) bool {
	return false
}
