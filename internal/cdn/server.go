// Package cdn is the deployability prototype: a real net/http chunk server
// that honours application-informed pacing requested via HTTP headers, and
// a client that streams video through it. It is the repo's analogue of the
// paper's open-source prototype (an unmodified dash.js player against a
// Fastly CDN that sets TCP pace rates from a header): everything runs over
// real TCP sockets, typically on loopback.
//
// The server enforces the requested pace rate in user space with a
// token-bucket paced writer (burst-limited, like SO_MAX_PACING_RATE plus a
// burst cap), so the demo works on any OS without kernel support.
package cdn

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	trace "repro/internal/obs/trace"
	"repro/internal/pacing"
	"repro/internal/units"
)

// DefaultBurstBytes is the paced writer's burst: 4 packets of 1500 B,
// matching the production burst size (§5.6).
const DefaultBurstBytes units.Bytes = 4 * 1500

// Server serves synthetic video chunks at /chunk, honouring the pacing
// headers parsed by package pacing. The chunk body is deterministic filler;
// only its size and delivery timing matter to the experiments.
type Server struct {
	// MaxChunk bounds request sizes to keep the demo well-behaved.
	// Default 64 MB.
	MaxChunk units.Bytes
	// Burst is the paced writer's bucket depth. Default DefaultBurstBytes.
	Burst units.Bytes
	// KernelPacing, on Linux, enforces the pace rate with the
	// SO_MAX_PACING_RATE socket option — the §3.2 deployment path — and
	// skips the user-space pacer. Requires cdn.ConnContext installed as the
	// http.Server's ConnContext; falls back to user-space pacing when the
	// socket is unreachable.
	KernelPacing bool
	// Metrics receives live request telemetry (counts, pace-rate and
	// pacer-sleep histograms, bytes served). Nil (the default) disables
	// instrumentation.
	Metrics *Metrics
	// Tracer, when set, records a "cdn.serve" span per chunk request
	// (joined to the client's trace via X-Sammy-Trace) with a
	// "cdn.paced_write" child around the user-space paced body write. Nil
	// (the default) disables tracing.
	Tracer *trace.Tracer
	// Engine is the shared pacing engine used for user-space pacing. Nil
	// (the default) uses pacing.Default(), the process-wide engine whose
	// wheel runners start on demand and exit when idle; set it to share an
	// explicitly configured engine (and its Stats) with other components.
	Engine *pacing.Engine
}

// engine returns the pacing engine serving this server's paced responses.
func (s *Server) engine() *pacing.Engine {
	if s.Engine != nil {
		return s.Engine
	}
	return pacing.Default()
}

// ServeHTTP implements http.Handler.
//
// GET /chunk?size=N serves N bytes. The response is paced at the rate
// requested in the X-Sammy-Pace-Rate-Bps or CMCD rtp header; without one it
// is written as fast as the socket accepts.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics
	if r.URL.Path != "/chunk" {
		http.NotFound(w, r)
		return
	}
	size, err := strconv.ParseInt(r.URL.Query().Get("size"), 10, 64)
	if err != nil || size <= 0 {
		if m != nil {
			m.RequestsBad.Inc()
		}
		http.Error(w, "cdn: size query parameter required", http.StatusBadRequest)
		return
	}
	maxChunk := s.MaxChunk
	if maxChunk <= 0 {
		maxChunk = 64 * units.MB
	}
	if units.Bytes(size) > maxChunk {
		if m != nil {
			m.RequestsBad.Inc()
		}
		http.Error(w, fmt.Sprintf("cdn: size exceeds limit %d", maxChunk), http.StatusRequestEntityTooLarge)
		return
	}
	offset, ok := parseRangeStart(r.Header.Get("Range"), units.Bytes(size))
	if !ok {
		if m != nil {
			m.RequestsBad.Inc()
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
		http.Error(w, "cdn: unsatisfiable range", http.StatusRequestedRangeNotSatisfiable)
		return
	}

	rate := pacing.FromHeader(r.Header)
	burst := s.Burst
	if burst <= 0 {
		burst = DefaultBurstBytes
	}
	// The serving span joins the client's trace when the request carries
	// trace context (nesting under its cdn.attempt span in the merged
	// timeline), else it lands in the server's own "server" trace.
	var ssp *trace.Span
	if s.Tracer != nil {
		if id, parent, ok := trace.ParseHeader(r.Header.Get(trace.Header)); ok {
			ssp = s.Tracer.StartRemote(id, parent, "cdn.serve", "")
		} else {
			ssp = s.Tracer.Session("server").Start("cdn.serve", "")
		}
		ssp.SetAttr("size", float64(size)).SetAttr("offset", float64(offset)).
			SetAttr("pace_bps", float64(rate))
	}
	if m != nil {
		m.Requests.Inc()
		m.ResponseBytes.Observe(float64(size))
		if rate > 0 {
			m.PacedRequests.Inc()
			m.PaceRateMbps.Observe(rate.Mbps())
		} else {
			m.UnpacedRequests.Inc()
		}
		m.Recorder.Record("cdn_request", r.RemoteAddr, float64(size), float64(rate))
	}

	body := units.Bytes(size) - offset
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Length", strconv.FormatInt(int64(body), 10))
	// Kernel pacing is per-socket state, so it must be (re)applied on every
	// request of a keep-alive connection: set for paced requests, cleared
	// for unpaced ones.
	kernelApplied := s.applyKernelPacing(r, rate)
	kernelPaced := rate > 0 && kernelApplied
	if rate > 0 {
		w.Header().Set("X-Sammy-Paced", "1")
		if kernelPaced {
			w.Header().Set("X-Sammy-Paced-By", "kernel")
		}
		if m != nil {
			if kernelPaced {
				m.KernelPaced.Inc()
			} else {
				m.UserPaced.Inc()
			}
		}
	}
	if offset > 0 {
		// A client resuming a partially delivered chunk. Because the filler
		// is offset-addressable, the resumed tail is byte-identical to what
		// a full fetch would have carried at those positions.
		w.Header().Set("Content-Range",
			fmt.Sprintf("bytes %d-%d/%d", int64(offset), size-1, size))
		if m != nil {
			m.RangeRequests.Inc()
		}
		w.WriteHeader(http.StatusPartialContent)
	} else {
		w.WriteHeader(http.StatusOK)
	}

	var out io.Writer = w
	var pw *PacedWriter
	var wsp *trace.Span
	if rate > 0 && !kernelPaced {
		// Per-connection streams survive keep-alive request boundaries: a
		// mid-connection pace-rate change re-keys the stream's wheel slot
		// (Stream.SetRate) instead of rebuilding pacer state. Without
		// EnableConnPacing there is no connection-close signal to hang the
		// stream on, so it is registered per request and closed on return.
		if cs := requestConnState(r); cs != nil {
			pw = newPacedWriter(w, cs.stream(s.engine(), rate, burst), r.Context(), burst)
		} else {
			stream := s.engine().Register(rate, burst)
			defer stream.Close()
			pw = newPacedWriter(w, stream, r.Context(), burst)
		}
		pw.metrics = m
		out = pw
		wsp = ssp.StartChild("cdn.paced_write", "")
	}
	written, err := writeFiller(r.Context(), out, body, offset, w)
	if wsp != nil {
		wsp.SetAttr("bytes", float64(written)).
			SetAttr("sleep_ms", pw.Waited().Seconds()*1000)
		wsp.End()
	}
	if ssp != nil {
		ssp.SetAttr("bytes", float64(written))
		if err != nil {
			ssp.SetStr("error", "client disconnect")
		}
		ssp.End()
	}
	if m != nil {
		m.BytesServed.Add(int64(written))
		if err != nil {
			// The headers are gone, so the only failure mode left is the
			// write path — a client that disconnected mid-body. Count it
			// separately from the 4xx rejections above.
			m.RequestsFailed.Inc()
			m.Recorder.Record("cdn_disconnect", r.RemoteAddr, float64(written), 0)
		}
	}
}

// FillerByte is the deterministic chunk body content at absolute offset off.
// Addressing the filler by offset (not by position within a response) is
// what makes HTTP Range resumes byte-exact: the tail served after a reset
// matches what the aborted response would have carried.
func FillerByte(off int64) byte {
	return byte('a' + off%26)
}

// fillerChunk is the per-write granularity of the chunk body, a multiple of
// the 26-byte filler period so consecutive full writes stay offset-aligned.
const fillerChunk = 630 * 26 // 16380, ~16 KB

// fillerPattern holds one fillerChunk of the deterministic body plus one
// extra period of slack, so any absolute offset's bytes are a subslice
// (start at offset mod 26). Computed once at init; request handlers slice
// it instead of filling a per-request buffer, which is both the sync.Pool
// fast path and the copy taken out of it.
var fillerPattern = func() []byte {
	b := make([]byte, fillerChunk+26)
	for i := range b {
		b[i] = FillerByte(int64(i))
	}
	return b
}()

// writeFiller streams n deterministic bytes starting at absolute offset to
// out, flushing as it goes so pacing is visible on the wire. It reports how
// many bytes were written and the first write error — typically the client
// disconnecting mid-body — mapping a stalled short write (n written, no
// error) to io.ErrShortWrite rather than looping forever. The context is
// checked between writes so a draining server's hard-cancel (request
// contexts cancelled via the http.Server BaseContext) aborts a paced
// stream at the next burst boundary instead of pacing to completion.
func writeFiller(ctx context.Context, out io.Writer, n units.Bytes, offset units.Bytes, rw http.ResponseWriter) (units.Bytes, error) {
	flusher, _ := rw.(http.Flusher)
	pos := int64(offset)
	var written int64
	remaining := int64(n)
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return units.Bytes(written), fmt.Errorf("cdn: write chunk body: %w", err)
		}
		chunk := int64(fillerChunk)
		if chunk > remaining {
			chunk = remaining
		}
		phase := pos % 26
		wrote, err := out.Write(fillerPattern[phase : phase+chunk])
		written += int64(wrote)
		remaining -= int64(wrote)
		pos += int64(wrote)
		if err != nil {
			return units.Bytes(written), fmt.Errorf("cdn: write chunk body: %w", err)
		}
		if wrote < int(chunk) {
			return units.Bytes(written), fmt.Errorf("cdn: write chunk body: %w", io.ErrShortWrite)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	return units.Bytes(written), nil
}

// parseRangeStart interprets the open-ended single-range form the client's
// resume path sends: "bytes=N-". An absent or unrecognized header means the
// full body (offset 0); a parseable start at or past the end is
// unsatisfiable (ok=false → 416). Suffix and multi-range forms are not
// resumes, so they fall back to the full body as RFC 9110 permits.
func parseRangeStart(header string, size units.Bytes) (units.Bytes, bool) {
	if header == "" {
		return 0, true
	}
	spec, found := strings.CutPrefix(header, "bytes=")
	if !found || !strings.HasSuffix(spec, "-") || strings.Contains(spec, ",") {
		return 0, true
	}
	start, err := strconv.ParseInt(strings.TrimSuffix(spec, "-"), 10, 64)
	if err != nil || start < 0 {
		return 0, true
	}
	if units.Bytes(start) >= size {
		return 0, false
	}
	return units.Bytes(start), true
}

// PacedWriter rate-limits writes through a shared pacing engine: each Write
// is split into burst-sized pieces and the writer parks on its engine
// stream between bursts, so ten thousand paced responses cost wheel slots,
// not ten thousand sleeping timers. It is the user-space equivalent of
// setting SO_MAX_PACING_RATE on the socket.
type PacedWriter struct {
	w       io.Writer
	stream  *pacing.Stream
	ctx     context.Context
	burst   units.Bytes
	metrics *Metrics      // wait histogram; nil = off
	waited0 time.Duration // stream.Waited() at writer creation
	owned   bool          // stream registered by this writer; Close releases it
}

// NewPacedWriter wraps w so that sustained throughput does not exceed rate,
// with at most burst bytes sent back-to-back. The writer registers a stream
// on the process-wide default engine; call Close when done writing to
// release it.
func NewPacedWriter(w io.Writer, rate units.BitsPerSecond, burst units.Bytes) *PacedWriter {
	if burst <= 0 {
		burst = DefaultBurstBytes
	}
	pw := newPacedWriter(w, pacing.Default().Register(rate, burst), context.Background(), burst)
	pw.owned = true
	return pw
}

// newPacedWriter wraps w around an existing engine stream. The stream may
// outlive the writer (per-connection caching); ctx bounds each park so a
// cancelled request abandons its wait immediately.
func newPacedWriter(w io.Writer, stream *pacing.Stream, ctx context.Context, burst units.Bytes) *PacedWriter {
	if burst <= 0 {
		burst = DefaultBurstBytes
	}
	return &PacedWriter{w: w, stream: stream, ctx: ctx, burst: burst, waited0: stream.Waited()}
}

// Close releases the writer's pacing registration if it owns one. Writers
// over caller-provided streams (the server's per-connection path) leave the
// stream to its owner.
func (p *PacedWriter) Close() {
	if p.owned {
		p.stream.Close()
	}
}

// Waited reports the cumulative pacing delay this writer has taken — the
// "paced idle" time the rate limit injected into the response.
func (p *PacedWriter) Waited() time.Duration { return p.stream.Waited() - p.waited0 }

// Write implements io.Writer, parking on the engine as needed to respect
// the pace rate.
func (p *PacedWriter) Write(b []byte) (int, error) {
	var w0 time.Duration
	if p.metrics != nil {
		w0 = p.stream.Waited()
	}
	total := 0
	var err error
	for len(b) > 0 {
		piece := b
		if units.Bytes(len(piece)) > p.burst {
			piece = b[:p.burst]
		}
		if err = p.stream.Await(p.ctx, units.Bytes(len(piece))); err != nil {
			break
		}
		var n int
		n, err = p.w.Write(piece)
		total += n
		b = b[n:]
		if err != nil {
			break
		}
	}
	if p.metrics != nil {
		if dw := p.stream.Waited() - w0; dw > 0 {
			p.metrics.PacerSleepMs.Observe(dw.Seconds() * 1000)
		}
	}
	return total, err
}
