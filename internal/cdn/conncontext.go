package cdn

import (
	"context"
	"net"
	"net/http"
)

// connKey carries the accepted net.Conn through the request context so the
// handler can reach the socket for kernel pacing.
type connKey struct{}

// ConnContext is the http.Server hook that makes kernel pacing possible:
// install it so every request's context carries its connection.
//
//	srv := &http.Server{
//	    Handler:     &cdn.Server{KernelPacing: true},
//	    ConnContext: cdn.ConnContext,
//	}
//
// On platforms without SO_MAX_PACING_RATE the hook is harmless and the
// server paces in user space.
func ConnContext(ctx context.Context, c net.Conn) context.Context {
	return context.WithValue(ctx, connKey{}, c)
}

// requestConn extracts the connection stored by ConnContext.
func requestConn(r *http.Request) net.Conn {
	c, _ := r.Context().Value(connKey{}).(net.Conn)
	return c
}
