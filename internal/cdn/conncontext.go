package cdn

import (
	"context"
	"net"
	"net/http"
	"sync"

	"repro/internal/pacing"
	"repro/internal/units"
)

// connKey carries per-connection server state through the request context:
// either the bare accepted net.Conn (ConnContext) or a *connState
// (EnableConnPacing) that additionally caches the connection's pacing
// engine stream.
type connKey struct{}

// connState is the per-connection value installed by EnableConnPacing.
type connState struct {
	c net.Conn

	mu sync.Mutex
	s  *pacing.Stream
}

// stream returns the connection's engine stream, registering it on first
// use and re-keying its rate on later requests of the same keep-alive
// connection — a mid-connection pace change moves the stream's wheel slot
// (Stream.SetRate) instead of rebuilding pacer state.
//
// Requests on one net/http connection are serialized (HTTP/1.1), so a
// single stream per connection is never shared by concurrent writes.
func (cs *connState) stream(e *pacing.Engine, rate units.BitsPerSecond, burst units.Bytes) *pacing.Stream {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.s == nil {
		cs.s = e.Register(rate, burst)
	} else {
		cs.s.SetRate(rate, burst)
	}
	return cs.s
}

// close releases the connection's stream, if any. Idempotent.
func (cs *connState) close() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.s != nil {
		cs.s.Close()
		cs.s = nil
	}
}

// ConnContext is the http.Server hook that makes kernel pacing possible:
// install it so every request's context carries its connection.
//
//	srv := &http.Server{
//	    Handler:     &cdn.Server{KernelPacing: true},
//	    ConnContext: cdn.ConnContext,
//	}
//
// On platforms without SO_MAX_PACING_RATE the hook is harmless and the
// server paces in user space. Servers the repo owns end to end should
// prefer EnableConnPacing, which additionally caches one pacing stream per
// connection.
func ConnContext(ctx context.Context, c net.Conn) context.Context {
	return context.WithValue(ctx, connKey{}, c)
}

// EnableConnPacing wires srv for the full pacing fast path: kernel pacing
// (as ConnContext) plus one cached engine stream per connection, closed
// when the connection closes. It chains any ConnContext/ConnState hooks
// already installed on srv.
//
// The stream cache needs the ConnState hook because net/http only cancels
// the context it hands ConnContext on Server shutdown, not on individual
// connection close — without the state callback an idle keep-alive
// connection would pin its stream registration forever.
func EnableConnPacing(srv *http.Server) {
	var conns sync.Map // net.Conn → *connState
	prevCC := srv.ConnContext
	srv.ConnContext = func(ctx context.Context, c net.Conn) context.Context {
		if prevCC != nil {
			ctx = prevCC(ctx, c)
		}
		cs := &connState{c: c}
		conns.Store(c, cs)
		return context.WithValue(ctx, connKey{}, cs)
	}
	prevCS := srv.ConnState
	srv.ConnState = func(c net.Conn, st http.ConnState) {
		if prevCS != nil {
			prevCS(c, st)
		}
		if st == http.StateClosed || st == http.StateHijacked {
			if v, ok := conns.LoadAndDelete(c); ok {
				v.(*connState).close()
			}
		}
	}
}

// requestConn extracts the connection stored by ConnContext or
// EnableConnPacing.
func requestConn(r *http.Request) net.Conn {
	switch v := r.Context().Value(connKey{}).(type) {
	case net.Conn:
		return v
	case *connState:
		return v.c
	}
	return nil
}

// requestConnState extracts the per-connection state stored by
// EnableConnPacing; nil under the plain ConnContext hook (per-request
// streams are used instead).
func requestConnState(r *http.Request) *connState {
	cs, _ := r.Context().Value(connKey{}).(*connState)
	return cs
}
