//go:build linux

package cdn

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/units"
)

// startKernelPacingServer runs a real http.Server (httptest does not let us
// install ConnContext pre-1.22-style cleanly with our helper) on an
// ephemeral loopback port with kernel pacing enabled.
func startKernelPacingServer(t *testing.T) *Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{
		Handler:           &Server{KernelPacing: true},
		ConnContext:       ConnContext,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &Client{BaseURL: "http://" + ln.Addr().String()}
}

func TestKernelPacingEnforcesRateOnLoopback(t *testing.T) {
	client := startKernelPacingServer(t)
	rate := 16 * units.Mbps
	size := 600 * units.KB // 300 ms at 16 Mbps
	res, err := client.FetchChunk(context.Background(), size, rate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Paced {
		t.Fatal("server did not acknowledge pacing")
	}
	want := rate.TimeToSend(size)
	if res.Duration < want/2 {
		t.Skipf("transfer finished in %v (< %v/2); kernel pacing unavailable in this environment", res.Duration, want)
	}
	if res.Duration > want*3 {
		t.Errorf("kernel-paced transfer took %v, want ≈ %v", res.Duration, want)
	}
}

func TestKernelPacingResetBetweenRequests(t *testing.T) {
	client := startKernelPacingServer(t)
	// Paced request first...
	if _, err := client.FetchChunk(context.Background(), 200*units.KB, 16*units.Mbps); err != nil {
		t.Fatal(err)
	}
	// ...then an unpaced one on (likely) the same keep-alive connection
	// must run at loopback speed again.
	res, err := client.FetchChunk(context.Background(), 2*units.MB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Paced {
		t.Error("unpaced request marked paced")
	}
	if res.Duration > 2*time.Second {
		t.Errorf("unpaced follow-up took %v; the pacing limit was not lifted", res.Duration)
	}
}

func TestSetKernelPacingRateRejectsNonSockets(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if err := setKernelPacingRate(c1, 1*units.Mbps); err == nil {
		t.Error("net.Pipe conn should be rejected")
	}
}
