package cdn

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/pacing"
	"repro/internal/units"
)

// TestPacedWritePathZeroAllocs pins the steady-state paced write path —
// engine Await fast path, shared filler pattern, burst splitting — at zero
// allocations per 64 KB of body.
func TestPacedWritePathZeroAllocs(t *testing.T) {
	e := pacing.NewEngine(pacing.EngineConfig{})
	defer e.Close()
	s := e.Register(100*units.Gbps, 1<<20) // never actually parks
	defer s.Close()
	ctx := context.Background()
	pw := newPacedWriter(io.Discard, s, ctx, DefaultBurstBytes)

	allocs := testing.AllocsPerRun(100, func() {
		if _, err := writeFiller(ctx, pw, 64*units.KB, 0, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("paced write path allocates %.1f/op steady-state, want 0", allocs)
	}
}

// TestFillerPatternMatchesFillerByte checks the rotated shared pattern
// serves byte-identical bodies at every offset phase, the property Range
// resume depends on.
func TestFillerPatternMatchesFillerByte(t *testing.T) {
	for _, offset := range []int64{0, 1, 25, 26, 27, 16379, 16380, 1<<20 + 13} {
		phase := offset % 26
		for j := int64(0); j < 64; j++ {
			if got, want := fillerPattern[phase+j], FillerByte(offset+j); got != want {
				t.Fatalf("offset %d+%d: pattern %q, want %q", offset, j, got, want)
			}
		}
	}
}

// TestEngineStreamsReleasedOnHardCancel is the drain/hard-cancel leak test:
// paced responses parked in the engine are aborted when the server's base
// context is cancelled, and after closing the server and engine no
// goroutines — handlers, parked streams, wheel runners — survive.
func TestEngineStreamsReleasedOnHardCancel(t *testing.T) {
	defer leakcheck.Check(t)
	eng := pacing.NewEngine(pacing.EngineConfig{})
	baseCtx, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{
		Handler:           &Server{Engine: eng},
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	EnableConnPacing(srv)
	go srv.Serve(ln)

	// Start paced fetches slow enough (≈10 s each) that every one is parked
	// in the engine when the hard cancel lands.
	const fetches = 8
	client := &Client{BaseURL: "http://" + ln.Addr().String()}
	errs := make(chan error, fetches)
	for i := 0; i < fetches; i++ {
		go func() {
			_, err := client.FetchChunk(context.Background(), 2*units.MB, 1600*units.Kbps)
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := eng.Stats(); st.Parked >= fetches {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams never parked: %+v", eng.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	hardCancel()
	for i := 0; i < fetches; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("paced fetch completed despite hard cancel")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("paced fetch not aborted by hard cancel")
		}
	}
	srv.Close()
	eng.Close()
	if st := eng.Stats(); st.Parked != 0 {
		t.Errorf("streams still parked after drain: %+v", st)
	}
	// leakcheck's deferred Check asserts no handler or wheel goroutines leak.
}

// TestPerConnStreamRekeyedAcrossRequests checks the keep-alive path: two
// paced requests on one connection share one engine stream (the second
// re-keys its rate instead of registering anew), and the stream is closed
// when the connection goes away.
func TestPerConnStreamRekeyedAcrossRequests(t *testing.T) {
	defer leakcheck.Check(t)
	eng := pacing.NewEngine(pacing.EngineConfig{})
	defer eng.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{
		Handler:           &Server{Engine: eng},
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	EnableConnPacing(srv)
	go srv.Serve(ln)
	defer srv.Close()

	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}}
	client := &Client{HTTP: hc, BaseURL: "http://" + ln.Addr().String()}
	if _, err := client.FetchChunk(context.Background(), 100*units.KB, 8*units.Mbps); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Streams != 1 {
		t.Fatalf("after first request: %d streams registered, want 1", st.Streams)
	}
	if _, err := client.FetchChunk(context.Background(), 100*units.KB, 16*units.Mbps); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Streams != 1 {
		t.Errorf("after keep-alive second request: %d streams registered, want 1 (re-keyed)", st.Streams)
	}

	hc.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := eng.Stats(); st.Streams == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("per-connection stream not closed with its connection: %+v", eng.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
