package cdn

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	trace "repro/internal/obs/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// SessionConfig parameterizes a real-HTTP streaming session.
type SessionConfig struct {
	Controller *core.Controller // required
	Title      *video.Title     // required
	Client     *Client          // required
	// MaxBuffer is the client buffer; default 30 s (kept small so demos
	// reach the on-off steady state quickly).
	MaxBuffer time.Duration
	// StartThreshold is the buffer needed to start playback; default 2
	// chunk durations.
	StartThreshold time.Duration
	// Realtime makes the session wait out off periods on the wall clock,
	// like a real player. Off by default so tests and demos finish quickly
	// (buffer time is then simulated).
	Realtime bool
	// FailFast restores the pre-resilience behaviour: the first chunk fetch
	// that exhausts its retry budget aborts the session with an error. Off
	// by default: the session degrades down the ladder, skips the chunk if
	// even the bottom rung fails, and accounts the time lost as rebuffering
	// — a hostile network hurts QoE, it does not kill the session.
	FailFast bool
	// OnChunk, when set, observes each download.
	OnChunk func(index int, rung video.Rung, pace units.BitsPerSecond, res FetchResult)
	// TraceID names this session's trace in the process-wide tracer
	// (trace.Default()). Default "session". Tracing is off unless a default
	// tracer is installed.
	TraceID string
}

// SessionReport is the QoE summary of a real-HTTP session.
type SessionReport struct {
	Chunks          int
	PlayDelay       time.Duration
	Rebuffers       int
	RebufferTime    time.Duration
	VMAF            float64
	AvgBitrate      units.BitsPerSecond
	ChunkThroughput units.BitsPerSecond // download-time weighted
	PacedChunks     int

	// Resilience accounting.
	Retries        int // HTTP attempts beyond the first, across all chunks
	Resumes        int // mid-body Range resumes
	RungDowngrades int // ladder steps taken below the ABR decision after failures
	FailedChunks   int // chunks skipped because every rung failed
}

// StreamSession plays cfg.Title through the HTTP server, making a joint
// bitrate/pace-rate decision per chunk and carrying the pace rate to the
// server in the request headers. It is the real-network twin of player.Run.
func StreamSession(ctx context.Context, cfg SessionConfig) (SessionReport, error) {
	if cfg.Controller == nil || cfg.Title == nil || cfg.Client == nil {
		return SessionReport{}, fmt.Errorf("cdn: session needs Controller, Title and Client")
	}
	if cfg.MaxBuffer <= 0 {
		cfg.MaxBuffer = 30 * time.Second
	}
	if cfg.StartThreshold <= 0 {
		cfg.StartThreshold = 2 * cfg.Title.ChunkDuration
	}
	if cfg.TraceID == "" {
		cfg.TraceID = "session"
	}
	// Real-HTTP path: spans run on the tracer's wall clock, shared with the
	// server-side spans when both ends use the same process tracer.
	tr := trace.Default().Session(cfg.TraceID)
	sess := tr.Start("player.session", cfg.Controller.Name())
	defer sess.End()

	est := abr.NewEstimator(5)
	hist := &core.History{}
	var (
		report     SessionReport
		buffer     time.Duration
		playing    bool
		wallStart  = time.Now()
		virtual    time.Duration // virtual off-period time when !Realtime
		vmafWeight float64
		prevRung   = -1
		totalBytes units.Bytes
		totalDL    time.Duration
	)

	elapsed := func() time.Duration { return time.Since(wallStart) + virtual }

	for i := 0; i < cfg.Title.NumChunks; i++ {
		if err := ctx.Err(); err != nil {
			return report, fmt.Errorf("cdn: session cancelled: %w", err)
		}
		// Off period: wait for buffer room.
		if playing {
			if room := cfg.MaxBuffer - buffer; room < cfg.Title.ChunkDuration {
				wait := cfg.Title.ChunkDuration - room
				isp := sess.StartChild("player.idle", "")
				if cfg.Realtime {
					//sammy:sharedpacer-ok: client-side playback idle gap (one per chunk), not server pacing
					time.Sleep(wait)
				} else {
					virtual += wait
				}
				isp.SetAttr("wait_s", wait.Seconds()).End()
				buffer -= wait
			}
		}

		dctx := abr.Context{
			Title:           cfg.Title,
			ChunkIndex:      i,
			Buffer:          buffer,
			MaxBuffer:       cfg.MaxBuffer,
			Playing:         playing,
			Throughput:      est.Estimate(),
			InitialEstimate: hist.Estimate(cfg.Controller.HistorySource()),
			PrevRung:        prevRung,
		}
		ch := sess.StartChild("player.chunk", "").SetAttr("index", float64(i))
		dec := cfg.Controller.DecideTraced(dctx, ch, tr.Now())
		prevRung = dec.Rung
		rung := dec.Rung
		chunk := cfg.Title.ChunkAt(i, rung)

		// Fetches below carry the chunk span in ctx, so cdn.fetch spans
		// (and the server's joined cdn.serve spans) nest under it.
		fctx := trace.ContextWithSpan(ctx, ch)
		chunkStart := time.Now()
		res, err := cfg.Client.FetchChunk(fctx, chunk.Size, dec.PaceRate)
		report.Retries += res.Retries
		report.Resumes += res.Resumes
		for err != nil && !cfg.FailFast && ctx.Err() == nil && rung > 0 {
			// Graceful degradation: the cheapest rendition is the most
			// likely to squeeze through a faulty path, and a low-quality
			// chunk beats a frozen screen.
			from := rung
			rung--
			chunk = cfg.Title.ChunkAt(i, rung)
			report.RungDowngrades++
			if cm := cfg.Client.Metrics; cm != nil {
				cm.RungDowngrades.Inc()
				cm.Recorder.Record("rung_downgrade", "", float64(i), float64(from))
			}
			res, err = cfg.Client.FetchChunk(fctx, chunk.Size, dec.PaceRate)
			report.Retries += res.Retries
			report.Resumes += res.Resumes
		}
		// dl is the wall time this chunk slot consumed, failed higher-rung
		// tries and retry backoff included — that is what the viewer's
		// buffer actually drained by.
		dl := time.Since(chunkStart)
		if err != nil {
			ch.SetStr("error", err.Error())
			if cfg.FailFast {
				ch.End()
				return report, fmt.Errorf("cdn: chunk %d: %w", i, err)
			}
			if cerr := ctx.Err(); cerr != nil {
				ch.End()
				return report, fmt.Errorf("cdn: session cancelled: %w", cerr)
			}
			// The whole ladder failed. Skip the chunk — playback freezes
			// for the time burned trying and moves on, as a live player
			// skips a lost segment.
			report.FailedChunks++
			if cm := cfg.Client.Metrics; cm != nil {
				cm.ChunksFailed.Inc()
			}
			if playing {
				buffer -= dl
				if buffer < 0 {
					report.Rebuffers++
					report.RebufferTime += -buffer
					buffer = 0
				}
			}
			ch.End()
			continue
		}
		prevRung = rung // the delivered rung feeds the next decision's hysteresis
		if res.Paced {
			report.PacedChunks++
		}
		est.Observe(res.Throughput)
		if playing {
			hist.ObservePlaying(res.Throughput)
		} else {
			hist.ObserveInitial(res.Throughput)
		}
		totalBytes += res.Size
		totalDL += res.Duration
		vmafWeight += chunk.Duration.Seconds() * chunk.Rung.VMAF

		if playing {
			buffer -= dl
			if buffer < 0 {
				report.Rebuffers++
				report.RebufferTime += -buffer
				buffer = 0
			}
			buffer += chunk.Duration
		} else {
			buffer += chunk.Duration
			if buffer >= cfg.StartThreshold {
				playing = true
				report.PlayDelay = elapsed()
			}
		}
		if buffer > cfg.MaxBuffer {
			buffer = cfg.MaxBuffer
		}
		report.Chunks++
		ch.SetAttr("rung", float64(rung)).SetAttr("buffer_s", buffer.Seconds()).End()
		if cfg.OnChunk != nil {
			cfg.OnChunk(i, chunk.Rung, dec.PaceRate, res)
		}
	}
	if !playing {
		report.PlayDelay = elapsed()
	}
	played := time.Duration(report.Chunks) * cfg.Title.ChunkDuration
	if played > 0 {
		report.VMAF = vmafWeight / played.Seconds()
		report.AvgBitrate = units.Rate(totalBytes, played)
	}
	report.ChunkThroughput = units.Rate(totalBytes, totalDL)
	return report, nil
}

// NewDemoTitle builds a small deterministic title for demos and tests.
func NewDemoTitle(chunks int, chunkDuration time.Duration) *video.Title {
	return video.NewTitle(video.LabLadder(), chunkDuration, chunks, rand.New(rand.NewSource(42)))
}
