package cdn

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pacing"
	"repro/internal/units"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		header string
		want   time.Duration
		ok     bool
	}{
		{"", 0, false},
		{"3", 3 * time.Second, true},
		{"  7  ", 7 * time.Second, true},
		{"0", 0, true},
		{"-1", 0, false},
		{"999999999", 24 * time.Hour, true}, // absurd delays capped at a day
		{"soon", 0, false},
		{"1.5", 0, false}, // RFC 9110 allows integers only
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true}, // past date: retry now
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.header, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.header, got, ok, tc.want, tc.ok)
		}
	}
}

// retryAfterServer sheds the first `sheds` requests with 503 and the given
// Retry-After header, then serves normally.
func retryAfterServer(t *testing.T, sheds int64, retryAfter string) *Client {
	t.Helper()
	var n atomic.Int64
	inner := &Server{}
	srv := hardenedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= sheds {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return &Client{HTTP: srv.Client(), BaseURL: srv.URL, Seed: 1, Retry: RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
	}}
}

func TestFetchHonoursRetryAfter(t *testing.T) {
	// The server asks for a 1 s pause; the client's MaxBackoff (80 ms)
	// clamps it, so the fetch succeeds after a bounded wait.
	client := retryAfterServer(t, 1, "1")
	start := time.Now()
	res, err := client.FetchChunk(context.Background(), 100*units.KB, pacing.NoPacing)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if res.Retries != 1 {
		t.Errorf("retries = %d, want 1", res.Retries)
	}
	// The honoured (clamped) hint is 80 ms — far above the jittered
	// exponential schedule this attempt count would produce (≤ 2 ms).
	if elapsed < 75*time.Millisecond {
		t.Errorf("fetch finished in %v; the Retry-After hint was not honoured", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("fetch took %v; the 1 s hint should have been clamped to MaxBackoff", elapsed)
	}
}

func TestFetchRetryAfterHTTPDate(t *testing.T) {
	// An HTTP-date a minute out also clamps to MaxBackoff.
	client := retryAfterServer(t, 1, time.Now().Add(time.Minute).UTC().Format(http.TimeFormat))
	start := time.Now()
	if _, err := client.FetchChunk(context.Background(), 50*units.KB, pacing.NoPacing); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 75*time.Millisecond || elapsed > 5*time.Second {
		t.Errorf("elapsed %v, want ≈ the 80 ms MaxBackoff clamp", elapsed)
	}
}

func TestFetchMalformedRetryAfterFallsBack(t *testing.T) {
	// Garbage hints are ignored: the jittered exponential backoff (≈ 1 ms
	// base) runs instead, so recovery is fast.
	client := retryAfterServer(t, 2, "whenever")
	start := time.Now()
	res, err := client.FetchChunk(context.Background(), 50*units.KB, pacing.NoPacing)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 2 {
		t.Errorf("retries = %d, want 2", res.Retries)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("fallback backoff took %v; malformed Retry-After should not stall the client", elapsed)
	}
}
