package cdn

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/pacing"
	"repro/internal/units"
	"repro/internal/video"
)

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	return newTestServerWith(t, &Server{})
}

func newTestServerWith(t *testing.T, handler *Server) (*httptest.Server, *Client) {
	t.Helper()
	srv := hardenedServer(handler)
	t.Cleanup(srv.Close)
	return srv, &Client{HTTP: srv.Client(), BaseURL: srv.URL}
}

// hardenedServer starts an httptest server with the production http.Server
// hardening applied (callers own Close).
func hardenedServer(h http.Handler) *httptest.Server {
	srv := httptest.NewUnstartedServer(h)
	configureTestServer(srv)
	srv.Start()
	return srv
}

// configureTestServer applies the production http.Server hardening to a
// test server before it starts: every server the repo constructs carries
// header/write/idle bounds so a wedged peer cannot pin it. The write
// timeout is generous — test streams pace for at most a few seconds — and
// the paced path re-arms per write via the overload stall watchdog when
// one is installed.
func configureTestServer(srv *httptest.Server) {
	srv.Config.ReadHeaderTimeout = 5 * time.Second
	srv.Config.WriteTimeout = 60 * time.Second
	srv.Config.IdleTimeout = 60 * time.Second
	srv.Config.MaxHeaderBytes = 1 << 20
}

func TestUnpacedFetch(t *testing.T) {
	_, client := newTestServer(t)
	res, err := client.FetchChunk(context.Background(), 500*units.KB, pacing.NoPacing)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 500*units.KB {
		t.Errorf("size = %v", res.Size)
	}
	if res.Paced {
		t.Error("unpaced fetch marked paced")
	}
	// Loopback: should be far faster than any plausible pace rate.
	if res.Duration > time.Second {
		t.Errorf("unpaced 500KB took %v", res.Duration)
	}
}

func TestPacedFetchRespectsRate(t *testing.T) {
	_, client := newTestServer(t)
	// 400 KB at 8 Mbps should take ≈ 400 ms.
	rate := 8 * units.Mbps
	res, err := client.FetchChunk(context.Background(), 400*units.KB, rate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Paced {
		t.Fatal("server did not acknowledge pacing")
	}
	want := rate.TimeToSend(400 * units.KB)
	if res.Duration < want*8/10 {
		t.Errorf("paced fetch finished too fast: %v, floor %v", res.Duration, want)
	}
	if res.Duration > want*2 {
		t.Errorf("paced fetch too slow: %v, want ≈ %v", res.Duration, want)
	}
	got := res.Throughput
	if float64(got) > float64(rate)*1.3 {
		t.Errorf("measured throughput %v exceeds pace rate %v", got, rate)
	}
}

func TestCMCDHeaderAlsoPaces(t *testing.T) {
	srv, _ := newTestServer(t)
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/chunk?size=1000", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(pacing.CMCDHeader, "rtp=8000")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Sammy-Paced") != "1" {
		t.Error("CMCD rtp header should trigger pacing")
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/chunk", http.StatusBadRequest},
		{"/chunk?size=0", http.StatusBadRequest},
		{"/chunk?size=abc", http.StatusBadRequest},
		{"/chunk?size=999999999999", http.StatusRequestEntityTooLarge},
		{"/other", http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, err := srv.Client().Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestPacedWriterTiming(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPacedWriter(&buf, 8*units.Mbps, 6000)
	defer pw.Close()
	// 100 KB at 8 Mbps = 100 ms, minus the 6 KB head-start burst.
	start := time.Now()
	n, err := pw.Write(make([]byte, 100*1024))
	elapsed := time.Since(start)
	if err != nil || n != 100*1024 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	// All bytes written.
	if buf.Len() != 100*1024 {
		t.Errorf("buffer = %d bytes", buf.Len())
	}
	want := (8 * units.Mbps).TimeToSend(100*1024 - 6000)
	if elapsed < want*8/10 {
		t.Errorf("wrote 100 KB in %v, faster than the pace rate allows (want ≥ %v)", elapsed, want*8/10)
	}
	if elapsed > want*3 {
		t.Errorf("wrote 100 KB in %v, want ≈ %v", elapsed, want)
	}
	if pw.Waited() < want*8/10 {
		t.Errorf("Waited() = %v, want ≈ %v", pw.Waited(), want)
	}
}

func TestStreamSessionSammyOverRealHTTP(t *testing.T) {
	_, client := newTestServer(t)
	title := NewDemoTitle(8, time.Second)
	ctrl := core.NewSammy(abr.Production{}, core.DefaultC0, core.DefaultC1)
	var events int
	report, err := StreamSession(context.Background(), SessionConfig{
		Controller: ctrl,
		Title:      title,
		Client:     client,
		OnChunk: func(i int, rung video.Rung, pace units.BitsPerSecond, res FetchResult) {
			events++
			if res.Size <= 0 {
				t.Errorf("chunk %d empty", i)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if events != report.Chunks {
		t.Errorf("OnChunk fired %d times for %d chunks", events, report.Chunks)
	}
	if report.Chunks != 8 {
		t.Fatalf("chunks = %d", report.Chunks)
	}
	if report.PacedChunks == 0 {
		t.Error("no chunk was paced; playing-phase chunks should carry the header")
	}
	if report.PlayDelay <= 0 {
		t.Error("play delay not recorded")
	}
	if report.VMAF <= 0 {
		t.Error("VMAF not computed")
	}
}

func TestStreamSessionValidation(t *testing.T) {
	_, err := StreamSession(context.Background(), SessionConfig{})
	if err == nil || !strings.Contains(err.Error(), "needs") {
		t.Errorf("expected validation error, got %v", err)
	}
}

func TestStreamSessionCancellation(t *testing.T) {
	_, client := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := StreamSession(ctx, SessionConfig{
		Controller: core.NewControl(abr.Production{}),
		Title:      NewDemoTitle(4, time.Second),
		Client:     client,
	})
	if err == nil {
		t.Error("cancelled session should error")
	}
}
