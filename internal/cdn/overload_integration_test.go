package cdn

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/pacing"
	"repro/internal/units"
)

// startOverloadServer runs a real http.Server on loopback with the chunk
// handler behind the overload middleware, plus /healthz and /readyz. It
// returns the controller (for metrics and drain control), a client wired
// with a fast retry policy, and the server itself so tests can drive
// Shutdown directly.
func startOverloadServer(t *testing.T, cfg overload.Config, inner http.Handler) (*overload.Controller, *Client, *http.Server) {
	t.Helper()
	ctrl := overload.New(cfg, overload.NewMetrics(obs.NewRegistry()))
	mux := http.NewServeMux()
	mux.Handle("/", ctrl.Middleware(inner))
	mux.HandleFunc("/healthz", ctrl.Healthz)
	mux.HandleFunc("/readyz", ctrl.Readyz)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	//sammy:server-ok: stall-injection test; WriteTimeout would kill the deliberately slow responses under test
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	hc := &http.Client{Timeout: 30 * time.Second}
	t.Cleanup(hc.CloseIdleConnections)
	client := &Client{HTTP: hc, BaseURL: "http://" + ln.Addr().String(), Seed: 1, Retry: RetryPolicy{
		MaxAttempts: 12,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  100 * time.Millisecond, // clamps any server Retry-After hint
	}}
	return ctrl, client, srv
}

// countingHandler tracks how many requests are concurrently inside the
// wrapped handler — i.e. past admission — and the high-water mark.
type countingHandler struct {
	http.Handler
	cur, peak atomic.Int64
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cur := h.cur.Add(1)
	for {
		p := h.peak.Load()
		if cur <= p || h.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	defer h.cur.Add(-1)
	h.Handler.ServeHTTP(w, r)
}

// TestOverloadStorm is the load-storm acceptance test: many concurrent
// fetchers against a deliberately small admission window. The server must
// never let more than MaxInFlight requests past admission, must shed the
// overflow with 503 + Retry-After, and every fetcher must still complete
// via honoured retries.
func TestOverloadStorm(t *testing.T) {
	leakcheck.Check(t)
	scn, err := fault.LookupScenario("load-storm")
	if err != nil {
		t.Fatal(err)
	}
	st := scn.Storm
	if !st.Enabled() {
		t.Fatal("load-storm scenario has no storm config")
	}
	counter := &countingHandler{Handler: &Server{}}
	ctrl, client, _ := startOverloadServer(t, overload.Config{
		MaxInFlight:  st.MaxInFlight,
		MaxQueue:     st.MaxQueue,
		QueueTimeout: st.QueueTimeout,
		RetryAfter:   st.RetryAfter, // 1 s on the wire; the client clamps to 100 ms
	}, counter)

	// Shrink the per-stream work from the preset so the test stays fast:
	// 64 KB at 20 Mbps is ~26 ms of residency per admitted stream.
	const chunk = 64 * units.KB
	rate := units.BitsPerSecond(st.PaceRateBps)

	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < st.Fetchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := client.FetchChunk(context.Background(), chunk, rate)
			if err != nil {
				failures.Add(1)
				t.Errorf("fetcher %d: %v", i, err)
				return
			}
			if res.Size != chunk {
				t.Errorf("fetcher %d: size = %v", i, res.Size)
			}
		}(i)
	}
	wg.Wait()

	if peak := counter.peak.Load(); peak > int64(st.MaxInFlight) {
		t.Errorf("peak in-flight %d exceeded the admission limit %d", peak, st.MaxInFlight)
	}
	m := ctrl.Metrics
	if m.Shed.Value() == 0 {
		t.Error("no request was shed; the storm did not overload the window")
	}
	if got := m.Admitted.Value(); got != int64(st.Fetchers) {
		t.Errorf("admitted = %d, want exactly %d successful admissions", got, st.Fetchers)
	}
	if ctrl.InFlight() != 0 || ctrl.Queued() != 0 {
		t.Errorf("controller not drained after storm: inflight %d, queued %d", ctrl.InFlight(), ctrl.Queued())
	}
	if failures.Load() > 0 {
		t.Errorf("%d fetchers failed; retries with Retry-After should recover all of them", failures.Load())
	}
}

// TestOverloadShedsWithRetryAfterHeader checks the raw shed response the
// storm clients recover from: 503, a Retry-After the scenario configured,
// and the shed-reason header.
func TestOverloadShedsWithRetryAfterHeader(t *testing.T) {
	leakcheck.Check(t)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
	})
	_, client, _ := startOverloadServer(t, overload.Config{
		MaxInFlight: 1,
		MaxQueue:    -1, // no queue: second request sheds immediately
		RetryAfter:  2 * time.Second,
	}, blocked)
	defer close(release)

	go func() {
		// Occupies the only admission slot until release closes.
		resp, err := client.HTTP.Get(client.BaseURL + "/chunk?size=1000")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	resp, err := client.HTTP.Get(client.BaseURL + "/chunk?size=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if got := resp.Header.Get("X-Sammy-Shed"); got != overload.ReasonQueueFull {
		t.Errorf("X-Sammy-Shed = %q, want %q", got, overload.ReasonQueueFull)
	}
}

// TestServerDrain exercises the graceful-shutdown path: with a paced chunk
// in flight, draining must flip /readyz to 503, shed new work with the
// draining reason, and still let the in-flight stream finish before
// Shutdown returns.
func TestServerDrain(t *testing.T) {
	leakcheck.Check(t)
	ctrl, client, srv := startOverloadServer(t, overload.Config{
		MaxInFlight: 4,
		MaxQueue:    4,
	}, &Server{})

	// A paced fetch that stays in flight for ~400 ms.
	fetchDone := make(chan error, 1)
	go func() {
		_, err := client.FetchChunk(context.Background(), 400*units.KB, 8*units.Mbps)
		fetchDone <- err
	}()
	waitFor(t, func() bool { return ctrl.InFlight() == 1 })

	// Flip to draining while the stream is mid-flight. The listener is
	// still open (Shutdown has not run), so probes and new requests reach
	// the server and see the draining state.
	ctrl.StartDraining()

	resp, err := client.HTTP.Get(client.BaseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", resp.StatusCode)
	}

	resp, err = client.HTTP.Get(client.BaseURL + "/chunk?size=1000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request while draining = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Sammy-Shed"); got != overload.ReasonDraining {
		t.Errorf("X-Sammy-Shed = %q, want %q", got, overload.ReasonDraining)
	}

	// Graceful shutdown must wait for the paced stream, not cut it off.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown during drain: %v", err)
	}
	if err := <-fetchDone; err != nil {
		t.Errorf("in-flight paced fetch was cut off by drain: %v", err)
	}
	if ctrl.InFlight() != 0 {
		t.Errorf("in-flight = %d after drain", ctrl.InFlight())
	}
}

// TestSlowReaderKilled pins a wedged client against the write-stall
// watchdog: a reader that requests a large chunk and then stops reading
// must be killed once no write progresses for StallTimeout, freeing the
// connection and its admission slot.
func TestSlowReaderKilled(t *testing.T) {
	leakcheck.Check(t)
	ctrl, client, _ := startOverloadServer(t, overload.Config{
		MaxInFlight:  2,
		StallTimeout: 200 * time.Millisecond,
	}, &Server{})

	addr := client.BaseURL[len("http://"):]
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Ask for 32 MB unpaced, read a token amount, then stop. The kernel
	// socket buffers fill, the server's writes stop progressing, and the
	// watchdog's per-write deadline fires.
	fmt.Fprintf(conn, "GET /chunk?size=%d HTTP/1.1\r\nHost: %s\r\n\r\n", 32*units.MB, addr)
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if _, err := io.ReadFull(resp.Body, make([]byte, 16*1024)); err != nil {
		t.Fatal(err)
	}
	// Stop reading. No progress from here on.

	deadline := time.Now().Add(10 * time.Second)
	for ctrl.Metrics.StallKills.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stall watchdog never killed the wedged stream")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The admission slot must come back once the handler unwinds.
	waitFor(t, func() bool { return ctrl.InFlight() == 0 })

	// A healthy client is still served after the kill.
	res, err := client.FetchChunk(context.Background(), 100*units.KB, pacing.NoPacing)
	if err != nil {
		t.Fatalf("fetch after stall kill: %v", err)
	}
	if res.Size != 100*units.KB {
		t.Errorf("size = %v", res.Size)
	}
}

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
