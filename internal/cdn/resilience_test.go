package cdn

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pacing"
	"repro/internal/units"
)

// fastRetry keeps retry tests quick: real backoff shape, millisecond scale.
var fastRetry = RetryPolicy{
	MaxAttempts:  4,
	TTFBTimeout:  2 * time.Second,
	StallTimeout: time.Second,
	BaseBackoff:  time.Millisecond,
	MaxBackoff:   5 * time.Millisecond,
}

// newChaosServer wraps a cdn.Server in the chaos middleware and returns a
// resilient client pointed at it.
func newChaosServer(t *testing.T, cfg fault.ChaosConfig) (*httptest.Server, *Client) {
	t.Helper()
	chaos, err := fault.NewChaos(cfg, &Server{})
	if err != nil {
		t.Fatal(err)
	}
	srv := hardenedServer(chaos)
	t.Cleanup(srv.Close)
	return srv, &Client{HTTP: srv.Client(), BaseURL: srv.URL, Retry: fastRetry, Seed: 1}
}

func TestFetchSurvives503Storm(t *testing.T) {
	// Three straight 503s, then the server recovers: the fetch must succeed
	// on the fourth attempt with three retries on the books.
	_, client := newChaosServer(t, fault.ChaosConfig{Seed: 1, ErrorProb: 1, MaxInjections: 3})
	res, err := client.FetchChunk(context.Background(), 100*units.KB, pacing.NoPacing)
	if err != nil {
		t.Fatalf("fetch through a 503 storm failed: %v", err)
	}
	if res.Size != 100*units.KB {
		t.Errorf("size = %v", res.Size)
	}
	if res.Attempts != 4 || res.Retries != 3 {
		t.Errorf("attempts = %d, retries = %d; want 4 and 3", res.Attempts, res.Retries)
	}
	if res.Throughput <= 0 {
		t.Error("throughput not measured on the successful attempt")
	}
}

func TestFetchExhaustsRetryBudget(t *testing.T) {
	// An unbounded 503 storm: the fetch fails, but the result still reports
	// the attempts made.
	_, client := newChaosServer(t, fault.ChaosConfig{Seed: 1, ErrorProb: 1})
	res, err := client.FetchChunk(context.Background(), 100*units.KB, pacing.NoPacing)
	if err == nil {
		t.Fatal("fetch should fail when every attempt gets a 503")
	}
	if res.Attempts != fastRetry.MaxAttempts {
		t.Errorf("attempts = %d, want the full budget %d", res.Attempts, fastRetry.MaxAttempts)
	}
	if res.Retries != fastRetry.MaxAttempts-1 {
		t.Errorf("retries = %d", res.Retries)
	}
}

func TestFetchTerminalOn4xx(t *testing.T) {
	// 4xx is the server telling us the request itself is wrong; retrying
	// would be abuse. MaxChunk 1 KB makes a 1 MB request a 413.
	chaos, err := fault.NewChaos(fault.ChaosConfig{}, &Server{MaxChunk: units.KB})
	if err != nil {
		t.Fatal(err)
	}
	srv := hardenedServer(chaos)
	t.Cleanup(srv.Close)
	client := &Client{HTTP: srv.Client(), BaseURL: srv.URL, Retry: fastRetry}
	res, err := client.FetchChunk(context.Background(), units.MB, pacing.NoPacing)
	if err == nil {
		t.Fatal("oversized fetch should fail")
	}
	if res.Attempts != 1 {
		t.Errorf("terminal 4xx was attempted %d times; must not retry", res.Attempts)
	}
}

func TestMidBodyResetResumesByteExact(t *testing.T) {
	// The first response is reset after exactly 20000 body bytes; the retry
	// must resume with a Range request and the reassembled body must be
	// byte-identical to an unfaulted fetch.
	const size = 100 * units.KB
	_, client := newChaosServer(t, fault.ChaosConfig{
		Seed: 1, ResetProb: 1, ResetAfterBytes: 20_000, MaxInjections: 1,
	})
	var body bytes.Buffer
	res, err := client.FetchChunkTo(context.Background(), &body, size, pacing.NoPacing)
	if err != nil {
		t.Fatalf("resumed fetch failed: %v", err)
	}
	if res.Size != size || units.Bytes(body.Len()) != size {
		t.Fatalf("delivered %v bytes to the sink, result says %v, want %v",
			body.Len(), res.Size, size)
	}
	if res.Resumes != 1 || res.Retries != 1 {
		t.Errorf("resumes = %d, retries = %d; want 1 and 1", res.Resumes, res.Retries)
	}
	for i, b := range body.Bytes() {
		if b != FillerByte(int64(i)) {
			t.Fatalf("byte %d = %q, want %q: resume was not byte-exact", i, b, FillerByte(int64(i)))
		}
	}
}

func TestMidBodyStallTripsWatchdogAndResumes(t *testing.T) {
	// The first response freezes for 2 s after 16 KB. The stall watchdog
	// (100 ms) must abandon it long before the stall clears, and the retry
	// resumes from the delivered prefix.
	const size = 64 * units.KB
	_, client := newChaosServer(t, fault.ChaosConfig{
		Seed: 1, StallProb: 1, StallAfterBytes: 16 * 1024,
		StallDuration: 2 * time.Second, MaxInjections: 1,
	})
	client.Retry.StallTimeout = 100 * time.Millisecond
	var body bytes.Buffer
	start := time.Now()
	res, err := client.FetchChunkTo(context.Background(), &body, size, pacing.NoPacing)
	if err != nil {
		t.Fatalf("stalled fetch did not recover: %v", err)
	}
	if waited := time.Since(start); waited > 1500*time.Millisecond {
		t.Errorf("recovery took %v; the watchdog should fire at ~100ms, not wait out the 2s stall", waited)
	}
	if res.Resumes == 0 {
		t.Error("recovery should resume the delivered prefix, not refetch")
	}
	for i, b := range body.Bytes() {
		if b != FillerByte(int64(i)) {
			t.Fatalf("byte %d corrupt after stall recovery", i)
		}
	}
}

func TestFirstByteDeadline(t *testing.T) {
	// First request never sends headers; second is served instantly. The
	// TTFB deadline turns the dead request into a fast retry.
	var calls atomic.Int64
	inner := &Server{}
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(2 * time.Second)
		}
		inner.ServeHTTP(w, r)
	})
	srv := hardenedServer(mux)
	t.Cleanup(srv.Close)
	client := &Client{HTTP: srv.Client(), BaseURL: srv.URL, Retry: fastRetry}
	client.Retry.TTFBTimeout = 100 * time.Millisecond
	start := time.Now()
	res, err := client.FetchChunk(context.Background(), 10*units.KB, pacing.NoPacing)
	if err != nil {
		t.Fatalf("fetch did not survive a dead first attempt: %v", err)
	}
	if time.Since(start) > 1500*time.Millisecond {
		t.Error("TTFB deadline did not cut the dead attempt short")
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d, want 1", res.Retries)
	}
}

func TestPartialResultOnFailure(t *testing.T) {
	// Every response resets mid-body: the final error must still carry the
	// partial progress (bytes delivered, attempts made).
	_, client := newChaosServer(t, fault.ChaosConfig{Seed: 1, ResetProb: 1, ResetAfterBytes: 10_000})
	client.Retry.MaxAttempts = 2
	res, err := client.FetchChunk(context.Background(), 100*units.KB, pacing.NoPacing)
	if err == nil {
		t.Fatal("fetch should fail when every response resets")
	}
	if res.Size == 0 {
		t.Error("partial result lost: Size = 0 despite delivered prefixes")
	}
	if res.Attempts != 2 || res.Retries != 1 {
		t.Errorf("attempts = %d, retries = %d", res.Attempts, res.Retries)
	}
}

func TestSessionDegradesThroughPermanentBlackout(t *testing.T) {
	// The CDN serves three chunks, then goes permanently dark. The session
	// must not error: it walks down the ladder, skips what it cannot get,
	// and accounts the time lost as rebuffering.
	var calls atomic.Int64
	inner := &Server{}
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) > 3 {
			http.Error(w, "blackout", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := hardenedServer(mux)
	t.Cleanup(srv.Close)
	client := &Client{HTTP: srv.Client(), BaseURL: srv.URL, Seed: 1, Retry: RetryPolicy{
		MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		TTFBTimeout: time.Second, StallTimeout: time.Second,
	}}
	report, err := StreamSession(context.Background(), SessionConfig{
		Controller: core.NewControl(abr.Production{}),
		Title:      NewDemoTitle(8, 50*time.Millisecond),
		Client:     client,
	})
	if err != nil {
		t.Fatalf("session must survive a permanent blackout, got: %v", err)
	}
	if report.Chunks != 3 {
		t.Errorf("delivered chunks = %d, want the 3 served before the blackout", report.Chunks)
	}
	if report.FailedChunks != 5 {
		t.Errorf("failed chunks = %d, want 5", report.FailedChunks)
	}
	if report.RungDowngrades == 0 {
		t.Error("session never tried lower rungs before giving up on a chunk")
	}
	if report.Retries == 0 {
		t.Error("no retries recorded")
	}
	if report.Rebuffers == 0 || report.RebufferTime == 0 {
		t.Errorf("blackout time not accounted as rebuffering: %d rebuffers, %v",
			report.Rebuffers, report.RebufferTime)
	}
}

func TestSessionFailFastPreservesOldBehaviour(t *testing.T) {
	srv := hardenedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	client := &Client{HTTP: srv.Client(), BaseURL: srv.URL, Retry: fastRetry}
	_, err := StreamSession(context.Background(), SessionConfig{
		Controller: core.NewControl(abr.Production{}),
		Title:      NewDemoTitle(4, 50*time.Millisecond),
		Client:     client,
		FailFast:   true,
	})
	if err == nil {
		t.Error("FailFast session should abort on an unfetchable chunk")
	}
}

func TestChaosSessionDeterministicAcrossRuns(t *testing.T) {
	// The acceptance property behind `sammy-eval -chaos`: for a fixed seed,
	// two full sessions over a freshly seeded chaos middleware report
	// identical retry/resume/downgrade/failure counts.
	type counts struct{ chunks, retries, resumes, downgrades, failed int }
	run := func() counts {
		chaos, err := fault.NewChaos(fault.ChaosConfig{
			Seed: 9, ErrorProb: 0.15, ResetProb: 0.12, ResetAfterBytes: 16 * 1024,
		}, &Server{})
		if err != nil {
			t.Fatal(err)
		}
		srv := hardenedServer(chaos)
		defer srv.Close()
		client := &Client{HTTP: srv.Client(), BaseURL: srv.URL, Retry: fastRetry, Seed: 3}
		report, err := StreamSession(context.Background(), SessionConfig{
			Controller: core.NewSammy(abr.Production{}, core.DefaultC0, core.DefaultC1),
			Title:      NewDemoTitle(12, 100*time.Millisecond),
			Client:     client,
		})
		if err != nil {
			t.Fatalf("chaos session aborted: %v", err)
		}
		return counts{report.Chunks, report.Retries, report.Resumes,
			report.RungDowngrades, report.FailedChunks}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("recovery counts differ across identical seeded runs: %+v vs %+v", a, b)
	}
	if a.retries == 0 {
		t.Error("scenario injected nothing; the determinism check is vacuous")
	}
}

func TestDefaultHTTPClientHasTimeouts(t *testing.T) {
	tr, ok := DefaultHTTPClient.Transport.(*http.Transport)
	if !ok {
		t.Fatal("DefaultHTTPClient should carry a configured *http.Transport")
	}
	if tr.ResponseHeaderTimeout <= 0 {
		t.Error("ResponseHeaderTimeout unset: a dead server would hang fetches")
	}
	// A nil-HTTP client must fall back to it, not to http.DefaultClient.
	c := &Client{}
	if c.httpClient() != DefaultHTTPClient {
		t.Error("nil Client.HTTP should resolve to DefaultHTTPClient")
	}
}

func TestServerRangeRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	// A resume from offset 30: 206 with the tail of the filler.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/chunk?size=100", nil)
	req.Header.Set("Range", "bytes=30-")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206", resp.StatusCode)
	}
	if cr := resp.Header.Get("Content-Range"); cr != "bytes 30-99/100" {
		t.Errorf("Content-Range = %q", cr)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if body.Len() != 70 {
		t.Fatalf("tail length = %d, want 70", body.Len())
	}
	for i, b := range body.Bytes() {
		if b != FillerByte(int64(30+i)) {
			t.Fatalf("tail byte %d = %q, want the offset-addressed filler", i, b)
		}
	}
	// A range starting at or past the end is unsatisfiable.
	req2, _ := http.NewRequest(http.MethodGet, srv.URL+"/chunk?size=100", nil)
	req2.Header.Set("Range", "bytes=100-")
	resp2, err := srv.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("status = %d, want 416", resp2.StatusCode)
	}
}
