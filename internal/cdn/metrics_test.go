package cdn

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/units"
)

func TestServerMetricsRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetRecorder(obs.NewRecorder(64))
	m := NewMetrics(reg)
	srv, client := newTestServerWith(t, &Server{Metrics: m})

	const size = 200 * units.KB
	res, err := client.FetchChunk(context.Background(), size, 8*units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Paced {
		t.Fatal("fetch not paced")
	}

	if got := m.Requests.Value(); got != 1 {
		t.Errorf("cdn_requests = %d, want 1", got)
	}
	if got := m.PacedRequests.Value(); got != 1 {
		t.Errorf("cdn_paced_requests = %d, want 1", got)
	}
	if got := m.UserPaced.Value() + m.KernelPaced.Value(); got != 1 {
		t.Errorf("paced-by counters sum to %d, want 1", got)
	}
	if got := m.BytesServed.Value(); got != int64(size) {
		t.Errorf("cdn_bytes_served = %d, want %d", got, int64(size))
	}
	if got := m.RequestsFailed.Value(); got != 0 {
		t.Errorf("cdn_requests_failed = %d, want 0", got)
	}

	// The pacing histograms saw the request: one pace-rate sample at 8 Mbps,
	// and (for the user-space pacer) at least one sleep.
	if got := m.PaceRateMbps.Count(); got != 1 {
		t.Errorf("cdn_pace_rate_mbps count = %d, want 1", got)
	}
	if got := m.PaceRateMbps.Mean(); got < 7.9 || got > 8.1 {
		t.Errorf("cdn_pace_rate_mbps mean = %g, want ≈8", got)
	}
	if m.KernelPaced.Value() == 0 && m.PacerSleepMs.Count() == 0 {
		t.Error("user-space paced request recorded no pacer sleeps")
	}
	if got := m.ResponseBytes.Count(); got != 1 {
		t.Errorf("cdn_response_bytes count = %d, want 1", got)
	}

	// Event trace carries the request.
	events := reg.Recorder().Events()
	var sawRequest bool
	for _, ev := range events {
		if ev.Type == "cdn_request" && ev.V == float64(size) {
			sawRequest = true
		}
	}
	if !sawRequest {
		t.Errorf("no cdn_request event for size %d in %d events", int64(size), len(events))
	}

	// A rejected request bumps the bad counter, not the failed counter.
	resp, err := srv.Client().Get(srv.URL + "/chunk?size=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := m.RequestsBad.Value(); got != 1 {
		t.Errorf("cdn_requests_bad = %d, want 1", got)
	}
	if got := m.RequestsFailed.Value(); got != 0 {
		t.Errorf("cdn_requests_failed = %d after 4xx, want 0", got)
	}
}

func TestClientDisconnectCountsAsFailed(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetRecorder(obs.NewRecorder(16))
	m := NewMetrics(reg)
	_, client := newTestServerWith(t, &Server{Metrics: m})

	// 4 MB at 2 Mbps would take 16 s; cancel mid-body so the server's write
	// path sees the disconnect (the writeFiller error propagation fix).
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	if _, err := client.FetchChunk(ctx, 4*units.MB, 2*units.Mbps); err == nil {
		t.Fatal("expected fetch to fail after cancellation")
	}

	// The handler notices the broken connection asynchronously.
	deadline := time.Now().Add(10 * time.Second)
	for m.RequestsFailed.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := m.RequestsFailed.Value(); got != 1 {
		t.Errorf("cdn_requests_failed = %d, want 1", got)
	}
	if got := m.RequestsBad.Value(); got != 0 {
		t.Errorf("cdn_requests_bad = %d, want 0 (disconnects are not 4xx)", got)
	}
	events := reg.Recorder().Events()
	var sawDisconnect bool
	for _, ev := range events {
		if ev.Type == "cdn_disconnect" {
			sawDisconnect = true
		}
	}
	if !sawDisconnect {
		t.Errorf("no cdn_disconnect event in %d events", len(events))
	}
}
