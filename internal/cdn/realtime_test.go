package cdn

import (
	"context"
	"testing"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
)

func TestStreamSessionRealtimeWaitsOffPeriods(t *testing.T) {
	// With Realtime on and a tiny buffer, the session must wait out off
	// periods on the wall clock: total wall time approaches the content
	// duration rather than the raw download time.
	_, client := newTestServer(t)
	title := NewDemoTitle(6, 200*time.Millisecond)
	start := time.Now()
	report, err := StreamSession(context.Background(), SessionConfig{
		Controller:     core.NewControl(abr.Production{}),
		Title:          title,
		Client:         client,
		MaxBuffer:      400 * time.Millisecond, // two chunks
		StartThreshold: 200 * time.Millisecond,
		Realtime:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if report.Chunks != 6 {
		t.Fatalf("chunks = %d", report.Chunks)
	}
	// 6 × 200 ms of content with a 400 ms buffer: the player must spend at
	// least ~½ of the content duration waiting (loopback downloads are
	// nearly instant).
	if elapsed < 500*time.Millisecond {
		t.Errorf("realtime session finished in %v; off periods were not waited out", elapsed)
	}
}

func TestStreamSessionVirtualTimeFastPath(t *testing.T) {
	// Without Realtime the same session must finish almost immediately.
	_, client := newTestServer(t)
	title := NewDemoTitle(6, 200*time.Millisecond)
	start := time.Now()
	_, err := StreamSession(context.Background(), SessionConfig{
		Controller:     core.NewControl(abr.Production{}),
		Title:          title,
		Client:         client,
		MaxBuffer:      400 * time.Millisecond,
		StartThreshold: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("virtual-time session took %v on loopback", elapsed)
	}
}
