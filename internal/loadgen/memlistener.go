package loadgen

import (
	"net"
	"sync"
)

// memListener serves an http.Server over in-memory pipe connections: Dial
// hands one end of a net.Pipe to the accept loop. It exists because a 50k
// stream run needs 100k file descriptors over real sockets, far beyond
// common (and this host's unraisable) RLIMIT_NOFILE — pipes cost memory,
// not descriptors, so the full-scale engine proof runs anywhere.
type memListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newMemListener() *memListener {
	return &memListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

// Dial opens a client connection to the listener.
func (l *memListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr{} }

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "inproc" }
