package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/units"
)

// TestRunSmallInproc is the in-package smoke: a few hundred paced streams
// over pipes, every one measured, p99 rate error tight, nothing leaked.
func TestRunSmallInproc(t *testing.T) {
	defer leakcheck.Check(t)
	rep, err := Run(context.Background(), Config{
		Streams:   200,
		Rate:      200 * units.Kbps,
		Warmup:    1500 * time.Millisecond,
		Duration:  4 * time.Second,
		Transport: "inproc",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Transport != "inproc" {
		t.Errorf("transport = %q", rep.Transport)
	}
	if rep.Completed != 200 {
		t.Errorf("completed %d/200 streams (%d failed)", rep.Completed, rep.Failed)
	}
	if rep.ErrP99 >= 5 {
		t.Errorf("p99 rate error %.2f%%, want <5%%", rep.ErrP99)
	}
	if rep.WakeupsPerSec <= 0 {
		t.Error("self-hosted run reported no engine wakeups")
	}
}

// TestRunSmallTCP exercises the real-socket path end to end.
func TestRunSmallTCP(t *testing.T) {
	defer leakcheck.Check(t)
	rep, err := Run(context.Background(), Config{
		Streams:   50,
		Rate:      400 * units.Kbps,
		Warmup:    time.Second,
		Duration:  3 * time.Second,
		Transport: "tcp",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Completed != 50 {
		t.Errorf("completed %d/50 streams (%d failed)", rep.Completed, rep.Failed)
	}
	if rep.ErrP99 >= 8 {
		t.Errorf("p99 rate error %.2f%%, want <8%%", rep.ErrP99)
	}
}

// TestRunCancelled checks a cancelled context aborts the run promptly and
// cleans up every stream goroutine.
func TestRunCancelled(t *testing.T) {
	defer leakcheck.Check(t)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, Config{
		Streams:   100,
		Rate:      100 * units.Kbps,
		Warmup:    10 * time.Second,
		Duration:  10 * time.Second,
		Transport: "inproc",
	})
	if err != context.DeadlineExceeded {
		t.Fatalf("Run under cancelled ctx = %v, want DeadlineExceeded", err)
	}
}

func TestHeaderEnd(t *testing.T) {
	var tail [4]byte
	resp := []byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nabcde")
	off := headerEnd(&tail, resp)
	if off < 0 || string(resp[off:]) != "abcde" {
		t.Fatalf("headerEnd = %d", off)
	}
	// Terminator split across reads.
	tail = [4]byte{}
	if off := headerEnd(&tail, []byte("X: y\r\n\r")); off != -1 {
		t.Fatalf("partial terminator matched at %d", off)
	}
	if off := headerEnd(&tail, []byte("\nbody")); off != 1 {
		t.Fatalf("resumed terminator at %d, want 1", off)
	}
}

func TestPickTransportAuto(t *testing.T) {
	tr, err := pickTransport(Config{Streams: 50000, Transport: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if tr != "inproc" {
		t.Errorf("auto at 50k streams = %q, want inproc (fd budget)", tr)
	}
	if _, err := pickTransport(Config{Streams: 10, Transport: "inproc", Addr: "x:1"}); err == nil {
		t.Error("inproc with -addr should be rejected")
	}
	if _, err := pickTransport(Config{Streams: 10, Transport: "bogus"}); err == nil {
		t.Error("unknown transport accepted")
	}
}
