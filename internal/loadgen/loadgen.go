// Package loadgen drives the real cdn.Server with tens of thousands of
// concurrent rate-checked clients, the scale proof for the shared pacing
// engine (ROADMAP item 3, paper §3.2/§5.6: a CDN edge pacing tens of
// thousands of video responses).
//
// Each client opens one connection, requests one long paced chunk with the
// pacing and overload client-id headers, and measures its achieved
// throughput over an interior window (warmup trimmed, first-to-last read)
// so connection ramp and burst quantization don't bias the estimate. The
// run reports the per-stream rate-error distribution, goroutine count, and
// the engine's wakeups/sec — the numbers the BENCH_*.json suites gate.
//
// Two transports: "tcp" uses real loopback sockets; "inproc" serves the
// same http.Server over in-memory pipe connections, which is how a 50k
// stream run fits under file-descriptor limits (50k TCP streams need 100k
// fds; CI boxes commonly cap at 1024–20000, and this host's hard limit
// cannot be raised). "auto" picks tcp when the fd budget allows, else
// inproc.
package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdn"
	"repro/internal/overload"
	"repro/internal/pacing"
	"repro/internal/units"
)

// Config sizes a load-generation run.
type Config struct {
	// Streams is the number of concurrent paced client streams.
	Streams int
	// Rate is the per-stream pace rate requested via the pacing header.
	Rate units.BitsPerSecond
	// Burst is the server's pacer burst (self-hosted runs only).
	// Default cdn.DefaultBurstBytes.
	Burst units.Bytes
	// Warmup is discarded settling time after the last stream dials.
	// Default 5 s.
	Warmup time.Duration
	// Duration is the measurement window. Default 15 s.
	Duration time.Duration
	// Transport is "auto" (default), "tcp", or "inproc".
	Transport string
	// Addr, when non-empty, targets an external server (host:port or URL
	// host) over TCP instead of self-hosting a cdn.Server in-process.
	// External runs cannot observe engine stats.
	Addr string
	// KernelPacing enables SO_MAX_PACING_RATE on the self-hosted server
	// (engine fallback still covers unsupported transports/platforms).
	KernelPacing bool
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// Report is the outcome of a run.
type Report struct {
	Transport string
	Streams   int // configured
	Completed int // streams with a valid interior measurement
	Failed    int // streams that errored or measured too little of the window

	// Per-stream |achieved − requested|/requested rate error, in percent,
	// over the completed streams.
	ErrP50, ErrP90, ErrP99, ErrMax float64

	BytesPerSec float64 // aggregate paced goodput during the window
	Goroutines  int     // process goroutines mid-measurement

	// Engine activity during the window (self-hosted runs; zero otherwise).
	WakeupsPerSec  float64 // wheel-runner wakeups (timer fires + kicks)
	ReleasesPerSec float64 // streams released from wheel slots

	CPUCores       float64 // process CPU cores burned during the window
	StreamsPerCore float64 // Completed streams per CPU core
	Elapsed        time.Duration
}

func (r Report) String() string {
	s := fmt.Sprintf("loadgen: %d/%d streams ok (%d failed) over %s [%s]\n",
		r.Completed, r.Streams, r.Failed, r.Elapsed.Round(time.Millisecond), r.Transport)
	s += fmt.Sprintf("  rate error %%: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		r.ErrP50, r.ErrP90, r.ErrP99, r.ErrMax)
	s += fmt.Sprintf("  goodput %.1f MB/s, %d goroutines, %.2f CPU cores, %.0f streams/core\n",
		r.BytesPerSec/1e6, r.Goroutines, r.CPUCores, r.StreamsPerCore)
	if r.WakeupsPerSec > 0 {
		s += fmt.Sprintf("  engine: %.0f wakeups/s, %.0f releases/s\n", r.WakeupsPerSec, r.ReleasesPerSec)
	}
	return s
}

// streamStat is one client's measurement, written only by its reader
// goroutine and read by Run after the reader exits.
type streamStat struct {
	bytes  int64 // body bytes so far
	b0, bN int64
	t0, tN int64 // unix nanos
	err    error
}

// gates are the measurement window boundaries, published to all readers.
type gates struct {
	start atomic.Int64 // unix nanos; 0 = still warming up
	end   atomic.Int64 // unix nanos; 0 = still measuring
}

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// Run executes one load-generation run. The context cancels the whole run
// (streams in flight are abandoned and counted failed).
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Streams <= 0 {
		return Report{}, fmt.Errorf("loadgen: Streams must be positive")
	}
	if cfg.Rate <= 0 {
		return Report{}, fmt.Errorf("loadgen: Rate must be positive")
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 5 * time.Second
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 15 * time.Second
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	transport, err := pickTransport(cfg)
	if err != nil {
		return Report{}, err
	}

	// dial returns a fresh client connection to the server under test.
	var dial func() (net.Conn, error)
	var engine *pacing.Engine
	switch {
	case cfg.Addr != "":
		addr := cfg.Addr
		d := &net.Dialer{Timeout: 10 * time.Second}
		dial = func() (net.Conn, error) { return d.DialContext(ctx, "tcp", addr) }
	default:
		engine = pacing.NewEngine(pacing.EngineConfig{})
		defer engine.Close()
		handler := &cdn.Server{
			Engine:       engine,
			Burst:        cfg.Burst,
			MaxChunk:     1 << 40,
			KernelPacing: cfg.KernelPacing,
		}
		srv := &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 30 * time.Second,
			WriteTimeout:      cfg.Warmup + cfg.Duration + 5*time.Minute,
			IdleTimeout:       2 * time.Minute,
			MaxHeaderBytes:    1 << 20,
		}
		cdn.EnableConnPacing(srv)
		switch transport {
		case "inproc":
			ln := newMemListener()
			//sammy:goroutinelifetime: Serve returns ErrServerClosed when the deferred srv.Close below tears down the listener
			go srv.Serve(ln)
			dial = ln.Dial
		case "tcp":
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return Report{}, err
			}
			addr := ln.Addr().String()
			d := &net.Dialer{Timeout: 10 * time.Second}
			//sammy:goroutinelifetime: Serve returns ErrServerClosed when the deferred srv.Close below tears down the listener
			go srv.Serve(ln)
			dial = func() (net.Conn, error) { return d.DialContext(ctx, "tcp", addr) }
		}
		defer srv.Close()
	}

	// Each stream requests one chunk big enough to outlast the run twice
	// over, so no stream finishes inside the measurement window.
	total := cfg.Warmup + cfg.Duration
	size := cfg.Rate.BytesIn(2*total) + 4*units.MB

	stats := make([]streamStat, cfg.Streams)
	conns := make([]net.Conn, cfg.Streams)
	var connsMu sync.Mutex
	var g gates
	var wg sync.WaitGroup

	logf("dialing %d streams (%s transport) at %v each...", cfg.Streams, transport, cfg.Rate)
	dialSem := make(chan struct{}, 512)
	dialStart := time.Now()
	var dialErrs atomic.Int64
	for i := 0; i < cfg.Streams; i++ {
		if ctx.Err() != nil {
			break
		}
		dialSem <- struct{}{}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := dial()
			<-dialSem
			if err != nil {
				stats[id].err = err
				dialErrs.Add(1)
				return
			}
			connsMu.Lock()
			conns[id] = c
			connsMu.Unlock()
			runStream(c, id, size, cfg.Rate, &stats[id], &g)
		}(i)
	}
	logf("dialed in %v (%d dial errors)", time.Since(dialStart).Round(time.Millisecond), dialErrs.Load())

	// Warm up, then open the measurement window.
	if err := sleepCtx(ctx, cfg.Warmup); err != nil {
		closeAll(conns, &connsMu)
		wg.Wait()
		return Report{}, err
	}
	winStart := time.Now()
	g.start.Store(winStart.UnixNano())
	var s0 pacing.EngineStats
	if engine != nil {
		s0 = engine.Stats()
	}
	cpu0 := CPUTime()

	if err := sleepCtx(ctx, cfg.Duration/2); err != nil {
		closeAll(conns, &connsMu)
		wg.Wait()
		return Report{}, err
	}
	goroutines := runtime.NumGoroutine() // mid-window snapshot of process shape
	if err := sleepCtx(ctx, cfg.Duration-cfg.Duration/2); err != nil {
		closeAll(conns, &connsMu)
		wg.Wait()
		return Report{}, err
	}
	winElapsed := time.Since(winStart)
	g.end.Store(time.Now().UnixNano())
	var s1 pacing.EngineStats
	if engine != nil {
		s1 = engine.Stats()
	}
	cpu1 := CPUTime()

	// Readers self-terminate past the window end (closing their conns); the
	// hard close below only reaps stragglers.
	donec := make(chan struct{})
	go func() { wg.Wait(); close(donec) }()
	select {
	case <-donec:
	case <-time.After(10 * time.Second):
		closeAll(conns, &connsMu)
		<-donec
	}

	rep := Report{
		Transport:  transport,
		Streams:    cfg.Streams,
		Goroutines: goroutines,
		Elapsed:    winElapsed,
	}
	winSec := winElapsed.Seconds()
	var errs []float64
	var bytes int64
	for i := range stats {
		st := &stats[i]
		span := time.Duration(st.tN - st.t0)
		if st.t0 == 0 || span < cfg.Duration/2 {
			rep.Failed++
			continue
		}
		got := units.Rate(units.Bytes(st.bN-st.b0), span)
		e := 100 * (float64(got) - float64(cfg.Rate)) / float64(cfg.Rate)
		if e < 0 {
			e = -e
		}
		errs = append(errs, e)
		bytes += st.bN - st.b0
		rep.Completed++
	}
	if rep.Completed == 0 {
		return rep, fmt.Errorf("loadgen: no stream completed a measurement (first error: %v)", firstErr(stats))
	}
	sort.Float64s(errs)
	rep.ErrP50 = quantile(errs, 0.50)
	rep.ErrP90 = quantile(errs, 0.90)
	rep.ErrP99 = quantile(errs, 0.99)
	rep.ErrMax = errs[len(errs)-1]
	rep.BytesPerSec = float64(bytes) / winSec
	if engine != nil {
		rep.WakeupsPerSec = float64(s1.Wakeups-s0.Wakeups) / winSec
		rep.ReleasesPerSec = float64(s1.Released-s0.Released) / winSec
	}
	if cpu := (cpu1 - cpu0).Seconds(); cpu > 0 {
		rep.CPUCores = cpu / winSec
		rep.StreamsPerCore = float64(rep.Completed) / rep.CPUCores
	}
	return rep, nil
}

// runStream writes one chunk request on c and measures the paced body.
func runStream(c net.Conn, id int, size units.Bytes, rate units.BitsPerSecond, st *streamStat, g *gates) {
	defer c.Close()
	req := fmt.Sprintf("GET /chunk?size=%d HTTP/1.1\r\nHost: loadgen\r\n%s: %d\r\n%s: c%d\r\nConnection: close\r\n\r\n",
		int64(size), pacing.Header, int64(rate), overload.ClientIDHeader, id)
	if _, err := c.Write([]byte(req)); err != nil {
		st.err = err
		return
	}
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	buf := *bp
	inBody := false
	var tail [4]byte // last bytes seen, for the header terminator scan
	for {
		n, err := c.Read(buf)
		if n > 0 {
			body := n
			if !inBody {
				if off := headerEnd(&tail, buf[:n]); off >= 0 {
					inBody = true
					body = n - off
				} else {
					body = 0
				}
			}
			if body > 0 {
				st.bytes += int64(body)
				ts := time.Now().UnixNano()
				if s := g.start.Load(); s != 0 && ts >= s {
					if st.t0 == 0 {
						st.t0, st.b0 = ts, st.bytes
					}
					st.tN, st.bN = ts, st.bytes
				}
				if e := g.end.Load(); e != 0 && ts >= e {
					return // window over; hang up
				}
			}
		}
		if err != nil {
			if st.err == nil && !inBody {
				st.err = err
			}
			return
		}
	}
}

// headerEnd scans chunk for the CRLFCRLF header terminator, carrying the
// last three bytes across reads in tail. It returns the body's offset
// within chunk, or -1 if the headers haven't ended yet.
func headerEnd(tail *[4]byte, chunk []byte) int {
	for i := range chunk {
		tail[0], tail[1], tail[2], tail[3] = tail[1], tail[2], tail[3], chunk[i]
		if *tail == [4]byte{'\r', '\n', '\r', '\n'} {
			return i + 1
		}
	}
	return -1
}

// pickTransport resolves cfg.Transport, checking the fd budget for "auto".
func pickTransport(cfg Config) (string, error) {
	tr := cfg.Transport
	if cfg.Addr != "" {
		if tr == "inproc" {
			return "", fmt.Errorf("loadgen: -addr requires a TCP transport")
		}
		return "tcp", nil
	}
	switch tr {
	case "tcp", "inproc":
		return tr, nil
	case "", "auto":
		// Self-hosted TCP costs two fds per stream plus headroom for the
		// process itself.
		need := uint64(cfg.Streams)*2 + 512
		if limit, ok := fdLimit(); ok && limit < need {
			return "inproc", nil
		}
		// Loopback TCP also burns one ephemeral port per stream.
		if cfg.Streams > 20000 {
			return "inproc", nil
		}
		return "tcp", nil
	default:
		return "", fmt.Errorf("loadgen: unknown transport %q", tr)
	}
}

func closeAll(conns []net.Conn, mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

func firstErr(stats []streamStat) error {
	for i := range stats {
		if stats[i].err != nil {
			return stats[i].err
		}
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// quantile reads the q-quantile from ascending-sorted xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
