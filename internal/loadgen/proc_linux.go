//go:build linux

package loadgen

import (
	"syscall"
	"time"
)

// CPUTime reports the process's cumulative user+system CPU time, the
// denominator of the streams-per-core suites.
func CPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// fdLimit reports the soft RLIMIT_NOFILE, used by the "auto" transport to
// decide whether real sockets fit.
func fdLimit() (uint64, bool) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0, false
	}
	return rl.Cur, true
}
