//go:build !linux

package loadgen

import "time"

// CPUTime reports zero on platforms without getrusage; streams-per-core
// metrics are then omitted.
func CPUTime() time.Duration { return 0 }

// fdLimit is unknown off Linux; "auto" falls back to the stream-count
// heuristic alone.
func fdLimit() (uint64, bool) { return 0, false }
