// Package abr implements the adaptive-bitrate algorithms the paper builds
// on and analyzes: the HYB throughput-based algorithm with lookahead that
// §4.2 analyzes, a buffer-based algorithm in the style of BBA [31], a
// production-like MPC-style algorithm with startup hysteresis, and the
// naive throughput rule whose "downward spiral" under pacing §2.3.1
// demonstrates.
//
// All algorithms answer the same question — which ladder rung should the
// next chunk use — through the Algorithm interface, so the player and the
// Sammy wrapper in package core can drive any of them.
package abr

import (
	"time"

	trace "repro/internal/obs/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// Context is everything an algorithm may consult for one decision.
type Context struct {
	Title      *video.Title
	ChunkIndex int           // index of the chunk being selected
	Buffer     time.Duration // current playback buffer level
	MaxBuffer  time.Duration // buffer capacity
	Playing    bool          // false during the initial (pre-playback) phase

	// Throughput is the estimator output from this session's own chunk
	// downloads (0 when no measurement exists yet).
	Throughput units.BitsPerSecond
	// InitialEstimate is the historical throughput estimate used before any
	// in-session measurement exists — the estimate whose provenance §4.1 is
	// about.
	InitialEstimate units.BitsPerSecond
	// PrevRung is the rung of the previous chunk, or -1 for the first. Used
	// by algorithms with switching hysteresis.
	PrevRung int
}

// SpanAttrs copies the decision inputs onto sp as span attributes, so a
// traced ABR decision records what the algorithm saw. Nil-safe (a nil span
// is tracing off).
func (c Context) SpanAttrs(sp *trace.Span) {
	if sp == nil {
		return
	}
	sp.SetAttr("chunk", float64(c.ChunkIndex)).
		SetAttr("buffer_s", c.Buffer.Seconds()).
		SetAttr("tput_bps", float64(c.Throughput)).
		SetAttr("prev_rung", float64(c.PrevRung))
	if !c.Playing {
		sp.SetAttr("initial_est_bps", float64(c.InitialEstimate))
	}
}

// effectiveThroughput is the estimate an algorithm should rely on: session
// measurements once they exist, otherwise the historical initial estimate.
func (c Context) effectiveThroughput() units.BitsPerSecond {
	if c.Throughput > 0 {
		return c.Throughput
	}
	return c.InitialEstimate
}

// Algorithm selects ladder rungs.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// SelectRung returns the ladder index for the chunk described by ctx.
	SelectRung(ctx Context) int
}

// --- Throughput estimator ----------------------------------------------

// Estimator summarizes recent chunk throughput measurements with a harmonic
// mean over a sliding window, the conventional robust choice (it punishes
// slow outliers, which is what rebuffer avoidance wants).
type Estimator struct {
	window  []units.BitsPerSecond
	maxSize int
}

// NewEstimator returns an estimator over the last window samples; window
// defaults to 5 if non-positive.
func NewEstimator(window int) *Estimator {
	if window <= 0 {
		window = 5
	}
	return &Estimator{maxSize: window}
}

// Observe records one chunk throughput measurement.
func (e *Estimator) Observe(x units.BitsPerSecond) {
	if x <= 0 {
		return
	}
	e.window = append(e.window, x)
	if len(e.window) > e.maxSize {
		e.window = e.window[1:]
	}
}

// Estimate reports the harmonic mean of the window, or 0 with no samples.
func (e *Estimator) Estimate() units.BitsPerSecond {
	if len(e.window) == 0 {
		return 0
	}
	var invSum float64
	for _, x := range e.window {
		invSum += 1 / float64(x)
	}
	return units.BitsPerSecond(float64(len(e.window)) / invSum)
}

// Count reports how many samples are in the window.
func (e *Estimator) Count() int { return len(e.window) }

// Reset discards all samples.
func (e *Estimator) Reset() { e.window = e.window[:0] }

// --- HYB with lookahead --------------------------------------------------

// HYB is the throughput-based algorithm of §4.2 (from Oboe [4]), modified to
// use lookahead: it discounts the throughput estimate by β, predicts buffer
// evolution over the next Lookahead chunks with the Appendix A update
// equation, and picks the highest rung that keeps the predicted buffer
// positive.
type HYB struct {
	// Beta discounts throughput estimates to absorb prediction error;
	// must be in (0, 1]. The paper's worked examples use 0.5.
	Beta float64
	// Lookahead is the number of upcoming chunks simulated; defaults to 5.
	Lookahead int
}

// Name implements Algorithm.
func (h HYB) Name() string { return "hyb" }

// SelectRung implements Algorithm.
func (h HYB) SelectRung(ctx Context) int {
	beta := h.Beta
	if beta <= 0 || beta > 1 {
		beta = 0.5
	}
	look := h.Lookahead
	if look <= 0 {
		look = 5
	}
	x := ctx.effectiveThroughput()
	if x <= 0 {
		return 0
	}
	discounted := units.BitsPerSecond(float64(x) * beta)
	best := 0
	for rung := range ctx.Title.Ladder {
		if predictedBufferPositive(ctx, rung, look, discounted) {
			best = rung
		}
	}
	return best
}

// predictedBufferPositive simulates the buffer over the lookahead at the
// given rung and discounted throughput, chunk by chunk with real sizes.
// It iterates Title.SizeAt directly rather than materializing a size slice:
// this runs once per rung per chunk decision across every simulated session,
// and was the single largest allocation source in population experiments.
func predictedBufferPositive(ctx Context, rung, look int, x units.BitsPerSecond) bool {
	buf := ctx.Buffer
	end := ctx.ChunkIndex + look
	if end > ctx.Title.NumChunks {
		end = ctx.Title.NumChunks
	}
	for i := ctx.ChunkIndex; i < end; i++ {
		dl := x.TimeToSend(ctx.Title.SizeAt(i, rung))
		buf -= dl
		if buf < 0 {
			return false
		}
		buf += ctx.Title.ChunkDuration
		if ctx.MaxBuffer > 0 && buf > ctx.MaxBuffer {
			buf = ctx.MaxBuffer
		}
	}
	return true
}

// MinThroughputFor reports HYB's decision threshold (paper Eq. 1): the
// minimum throughput estimate that lets HYB pick bitrate r with starting
// buffer b0 over lookahead duration d. This is the function Sammy's pace
// rates must stay above (Fig 2b).
func (h HYB) MinThroughputFor(r units.BitsPerSecond, b0, d time.Duration) units.BitsPerSecond {
	beta := h.Beta
	if beta <= 0 || beta > 1 {
		beta = 0.5
	}
	if d <= 0 {
		return 0
	}
	return units.BitsPerSecond(float64(r) / beta / (1 + float64(b0)/float64(d)))
}

// MaxBitrateFor is the dual of MinThroughputFor: the highest bitrate HYB
// would select given throughput estimate x (Fig 2a's boundary).
func (h HYB) MaxBitrateFor(x units.BitsPerSecond, b0, d time.Duration) units.BitsPerSecond {
	beta := h.Beta
	if beta <= 0 || beta > 1 {
		beta = 0.5
	}
	if d <= 0 {
		return 0
	}
	return units.BitsPerSecond(float64(x) * beta * (1 + float64(b0)/float64(d)))
}

// --- Buffer-based (BBA-style) ---------------------------------------------

// BufferBased selects rungs as a function of buffer occupancy alone, in the
// style of BBA [31]: lowest rung below Reservoir, highest above Cushion,
// linear in between. During the initial phase (no buffer yet) it falls back
// to a throughput pick, as deployed buffer-based algorithms do [64].
type BufferBased struct {
	Reservoir time.Duration // below this, pick the lowest rung; default 5s
	Cushion   time.Duration // above this, pick the highest rung; default 20s
}

// Name implements Algorithm.
func (b BufferBased) Name() string { return "buffer-based" }

// SelectRung implements Algorithm.
func (b BufferBased) SelectRung(ctx Context) int {
	reservoir := b.Reservoir
	if reservoir <= 0 {
		reservoir = 5 * time.Second
	}
	cushion := b.Cushion
	if cushion <= 0 {
		cushion = 20 * time.Second
	}
	ladder := ctx.Title.Ladder
	if !ctx.Playing || ctx.Buffer == 0 {
		// Startup: conservative throughput-based pick.
		x := ctx.effectiveThroughput()
		if x <= 0 {
			return 0
		}
		return maxRungAtOrBelow(ladder, units.BitsPerSecond(float64(x)*0.5))
	}
	switch {
	case ctx.Buffer <= reservoir:
		return 0
	case ctx.Buffer >= cushion:
		return len(ladder) - 1
	default:
		frac := float64(ctx.Buffer-reservoir) / float64(cushion-reservoir)
		lo := float64(ladder.Lowest().Bitrate)
		hi := float64(ladder.Top().Bitrate)
		target := units.BitsPerSecond(lo + frac*(hi-lo))
		return maxRungAtOrBelow(ladder, target)
	}
}

// --- Naive throughput rule -------------------------------------------------

// SimpleThroughput is the §2.3.1 strawman: the highest bitrate below
// C × estimate, with no buffer awareness. Under pacing at a fixed multiple
// of the current bitrate with C·multiple < 1 it exhibits the downward
// spiral the paper describes.
type SimpleThroughput struct {
	// C is the safety fraction; the paper's example (dash.js's low-buffer
	// default) uses 0.5.
	C float64
}

// Name implements Algorithm.
func (s SimpleThroughput) Name() string { return "simple-throughput" }

// SelectRung implements Algorithm.
func (s SimpleThroughput) SelectRung(ctx Context) int {
	c := s.C
	if c <= 0 {
		c = 0.5
	}
	x := ctx.effectiveThroughput()
	if x <= 0 {
		return 0
	}
	return maxRungAtOrBelow(ctx.Title.Ladder, units.BitsPerSecond(float64(x)*c))
}

// maxRungAtOrBelow returns the highest rung index with bitrate ≤ target,
// or 0 when none qualifies.
func maxRungAtOrBelow(l video.Ladder, target units.BitsPerSecond) int {
	if i := l.Index(target); i >= 0 {
		return i
	}
	return 0
}
