package abr

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
	"repro/internal/video"
)

func testCtx(buf time.Duration, tput units.BitsPerSecond) Context {
	title := video.NewTitle(video.DefaultLadder(), 4*time.Second, 300, nil)
	return Context{
		Title:      title,
		ChunkIndex: 10,
		Buffer:     buf,
		MaxBuffer:  60 * time.Second,
		Playing:    true,
		Throughput: tput,
		PrevRung:   -1,
	}
}

func TestEstimatorHarmonicMean(t *testing.T) {
	e := NewEstimator(5)
	if e.Estimate() != 0 {
		t.Error("empty estimator should report 0")
	}
	e.Observe(10 * units.Mbps)
	e.Observe(10 * units.Mbps)
	if got := e.Estimate(); math.Abs(float64(got-10*units.Mbps)) > 1 {
		t.Errorf("estimate = %v, want 10Mbps", got)
	}
	// Harmonic mean punishes a slow outlier: HM(10, 1) ≈ 1.82.
	e.Reset()
	e.Observe(10 * units.Mbps)
	e.Observe(1 * units.Mbps)
	got := e.Estimate().Mbps()
	if math.Abs(got-1.818) > 0.01 {
		t.Errorf("harmonic mean = %v, want ≈1.818", got)
	}
}

func TestEstimatorWindowSlides(t *testing.T) {
	e := NewEstimator(2)
	e.Observe(1 * units.Mbps)
	e.Observe(100 * units.Mbps)
	e.Observe(100 * units.Mbps)
	if e.Count() != 2 {
		t.Fatalf("window size = %d", e.Count())
	}
	if got := e.Estimate().Mbps(); math.Abs(got-100) > 0.1 {
		t.Errorf("estimate = %v, old sample should have slid out", got)
	}
	e.Observe(0)  // ignored
	e.Observe(-5) // ignored
	if e.Count() != 2 {
		t.Error("non-positive observations should be ignored")
	}
}

func TestHYBMoreThroughputHigherRung(t *testing.T) {
	h := HYB{Beta: 0.5, Lookahead: 5}
	prev := -1
	for _, mbps := range []float64{1, 3, 10, 30, 100} {
		rung := h.SelectRung(testCtx(10*time.Second, units.BitsPerSecond(mbps)*units.Mbps))
		if rung < prev {
			t.Fatalf("rung decreased with more throughput at %v Mbps", mbps)
		}
		prev = rung
	}
	if prev != len(video.DefaultLadder())-1 {
		t.Errorf("100 Mbps should reach the top rung, got %d", prev)
	}
}

func TestHYBMoreBufferHigherRung(t *testing.T) {
	// Fig 2a: with fixed throughput, a bigger buffer allows higher rungs.
	h := HYB{Beta: 0.5, Lookahead: 5}
	x := 6 * units.Mbps
	lowBuf := h.SelectRung(testCtx(0, x))
	highBuf := h.SelectRung(testCtx(40*time.Second, x))
	if highBuf <= lowBuf {
		t.Errorf("rung with 40s buffer (%d) should exceed rung with empty buffer (%d)", highBuf, lowBuf)
	}
}

func TestHYBZeroThroughputPicksLowest(t *testing.T) {
	h := HYB{}
	if got := h.SelectRung(testCtx(10*time.Second, 0)); got != 0 {
		t.Errorf("no estimate should pick rung 0, got %d", got)
	}
}

func TestHYBThresholdEquation(t *testing.T) {
	// Eq. 1: with empty buffer and β=0.5, the required throughput is twice
	// the bitrate (the paper's worked example).
	h := HYB{Beta: 0.5}
	r := 4 * units.Mbps
	d := 20 * time.Second
	if got := h.MinThroughputFor(r, 0, d); got != 8*units.Mbps {
		t.Errorf("empty-buffer threshold = %v, want 8Mbps", got)
	}
	// Threshold falls as the buffer grows (Fig 2b).
	if got := h.MinThroughputFor(r, d, d); got != 4*units.Mbps {
		t.Errorf("B0=D threshold = %v, want 4Mbps", got)
	}
}

func TestHYBThresholdDualityProperty(t *testing.T) {
	// MaxBitrateFor and MinThroughputFor are inverses.
	h := HYB{Beta: 0.5}
	f := func(mbps uint8, bufS uint8) bool {
		x := units.BitsPerSecond(int(mbps)+1) * units.Mbps
		b0 := time.Duration(bufS) * time.Second
		d := 20 * time.Second
		r := h.MaxBitrateFor(x, b0, d)
		back := h.MinThroughputFor(r, b0, d)
		return math.Abs(float64(back-x))/float64(x) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHYBSelectionConsistentWithThreshold(t *testing.T) {
	// If HYB picks rung k, its threshold for rung k must be ≤ the estimate
	// (the decision-problem view §3.1 relies on).
	h := HYB{Beta: 0.5, Lookahead: 5}
	ctx := testCtx(8*time.Second, 12*units.Mbps)
	rung := h.SelectRung(ctx)
	d := time.Duration(h.Lookahead) * ctx.Title.ChunkDuration
	need := h.MinThroughputFor(ctx.Title.Ladder[rung].Bitrate, ctx.Buffer, d)
	// Allow slack for VBR size jitter (none here) and buffer growth during
	// the lookahead, which the closed form ignores.
	if float64(need) > float64(ctx.Throughput)*1.3 {
		t.Errorf("picked rung %d needs %v but estimate is %v", rung, need, ctx.Throughput)
	}
}

func TestBufferBasedRegions(t *testing.T) {
	b := BufferBased{Reservoir: 5 * time.Second, Cushion: 20 * time.Second}
	top := len(video.DefaultLadder()) - 1
	if got := b.SelectRung(testCtx(3*time.Second, 50*units.Mbps)); got != 0 {
		t.Errorf("below reservoir = rung %d, want 0", got)
	}
	if got := b.SelectRung(testCtx(25*time.Second, 1*units.Mbps)); got != top {
		t.Errorf("above cushion = rung %d, want top %d", got, top)
	}
	mid := b.SelectRung(testCtx(12*time.Second, 50*units.Mbps))
	if mid <= 0 || mid >= top {
		t.Errorf("mid-buffer rung = %d, want strictly between", mid)
	}
}

func TestBufferBasedMonotoneInBuffer(t *testing.T) {
	b := BufferBased{}
	prev := -1
	for s := 1; s <= 30; s++ {
		rung := b.SelectRung(testCtx(time.Duration(s)*time.Second, 10*units.Mbps))
		if rung < prev {
			t.Fatalf("buffer-based not monotone at %ds: %d < %d", s, rung, prev)
		}
		prev = rung
	}
}

func TestBufferBasedStartupUsesThroughput(t *testing.T) {
	b := BufferBased{}
	ctx := testCtx(0, 0)
	ctx.Playing = false
	ctx.InitialEstimate = 20 * units.Mbps
	rung := b.SelectRung(ctx)
	if rung == 0 {
		t.Error("startup with a good estimate should not pick the lowest rung")
	}
}

func TestSimpleThroughputRule(t *testing.T) {
	s := SimpleThroughput{C: 0.5}
	ctx := testCtx(10*time.Second, 10*units.Mbps)
	rung := s.SelectRung(ctx)
	want := ctx.Title.Ladder.Index(5 * units.Mbps)
	if rung != want {
		t.Errorf("rung = %d, want %d (highest below 0.5×10Mbps)", rung, want)
	}
	if got := s.SelectRung(testCtx(10*time.Second, 0)); got != 0 {
		t.Errorf("no estimate = rung %d, want 0", got)
	}
}

func TestSimpleThroughputDownwardSpiral(t *testing.T) {
	// §2.3.1's worked example: pace at 1.5× the current bitrate while the
	// ABR picks the highest bitrate < 0.5× measured throughput, and the
	// selection spirals to the bottom of the ladder.
	s := SimpleThroughput{C: 0.5}
	title := video.NewTitle(video.DefaultLadder(), 4*time.Second, 100, nil)
	rung := len(title.Ladder) - 1
	for i := 0; i < 30; i++ {
		paceRate := units.BitsPerSecond(1.5 * float64(title.Ladder[rung].Bitrate))
		// The network is fast, so measured throughput equals the pace rate.
		ctx := Context{Title: title, ChunkIndex: i, Buffer: 20 * time.Second,
			Playing: true, Throughput: paceRate, PrevRung: rung}
		next := s.SelectRung(ctx)
		if next > rung {
			t.Fatalf("spiral reversed at step %d", i)
		}
		rung = next
	}
	if rung != 0 {
		t.Errorf("expected downward spiral to rung 0, stuck at %d", rung)
	}
}

func TestProductionStartupUsesInitialEstimate(t *testing.T) {
	p := Production{}
	ctx := testCtx(0, 0)
	ctx.Playing = false
	ctx.InitialEstimate = 30 * units.Mbps
	rung := p.SelectRung(ctx)
	if rung == 0 {
		t.Error("startup with 30 Mbps history should not pick rung 0")
	}
	ctx.InitialEstimate = 0
	if got := p.SelectRung(ctx); got != 0 {
		t.Errorf("no history should pick rung 0, got %d", got)
	}
}

func TestProductionOverestimatedHistoryPicksTooHigh(t *testing.T) {
	// §4.1's failure mode: historical estimates polluted by playing-phase
	// throughput overestimate what startup can actually achieve, pushing the
	// initial rung up.
	p := Production{}
	ctx := testCtx(0, 0)
	ctx.Playing = false
	ctx.InitialEstimate = 13 * units.Mbps // playing-phase-derived estimate
	high := p.SelectRung(ctx)
	ctx.InitialEstimate = 5 * units.Mbps // initial-phase-derived estimate
	low := p.SelectRung(ctx)
	if high <= low {
		t.Errorf("polluted history rung %d should exceed clean rung %d", high, low)
	}
}

func TestProductionHysteresisDampsUpSwitch(t *testing.T) {
	p := Production{}
	ctx := testCtx(3*time.Second, 100*units.Mbps) // buffer below UpSwitchBuffer
	ctx.PrevRung = 2
	rung := p.SelectRung(ctx)
	if rung != 3 {
		t.Errorf("low-buffer up-switch = %d, want damped to 3", rung)
	}
	ctx.Buffer = 30 * time.Second // comfortable buffer: jump allowed
	rung = p.SelectRung(ctx)
	if rung <= 3 {
		t.Errorf("high-buffer up-switch = %d, want > 3", rung)
	}
}

func TestProductionDownSwitchImmediate(t *testing.T) {
	p := Production{}
	ctx := testCtx(2*time.Second, 1*units.Mbps)
	ctx.PrevRung = len(video.DefaultLadder()) - 1
	rung := p.SelectRung(ctx)
	if rung >= ctx.PrevRung-1 {
		t.Errorf("down-switch = %d from %d, want immediate drop", rung, ctx.PrevRung)
	}
}

func TestProductionSameDecisionUnderPacingAboveThreshold(t *testing.T) {
	// The core §4.2 claim: if the measured throughput stays above the
	// algorithm's decision threshold for the top rung, bitrate decisions are
	// unchanged by pacing.
	p := Production{}
	title := video.NewTitle(video.DefaultLadder(), 4*time.Second, 300, nil)
	top := title.Ladder.Top().Bitrate
	d := 8 * title.ChunkDuration
	buf := 15 * time.Second
	threshold := p.MinThroughputFor(top, buf, d)

	unpaced := testCtx(buf, 100*units.Mbps)
	// Paced: measured throughput is only slightly above the threshold.
	paced := testCtx(buf, units.BitsPerSecond(float64(threshold)*1.6))
	r1, r2 := p.SelectRung(unpaced), p.SelectRung(paced)
	if r1 != r2 {
		t.Errorf("pacing above threshold changed decision: %d vs %d", r1, r2)
	}
}

func TestAlgorithmNames(t *testing.T) {
	algos := []Algorithm{HYB{}, BufferBased{}, SimpleThroughput{}, Production{}}
	seen := map[string]bool{}
	for _, a := range algos {
		n := a.Name()
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestAllAlgorithmsReturnValidRungs(t *testing.T) {
	algos := []Algorithm{HYB{}, BufferBased{}, SimpleThroughput{}, Production{}}
	f := func(bufS uint8, mbps uint16, playing bool, prev int8) bool {
		ctx := testCtx(time.Duration(bufS)*time.Second, units.BitsPerSecond(mbps)*units.Mbps/10)
		ctx.Playing = playing
		ctx.PrevRung = int(prev) % len(ctx.Title.Ladder)
		for _, a := range algos {
			r := a.SelectRung(ctx)
			if r < 0 || r >= len(ctx.Title.Ladder) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
