package abr

import (
	"math"
	"time"

	"repro/internal/units"
)

// MPC is a model-predictive-control ABR in the style of Yin et al. ([73] in
// the paper): for each candidate rung it simulates the buffer over a
// lookahead horizon using the throughput estimate and real upcoming chunk
// sizes, and maximizes an explicit QoE objective
//
//	Σ quality(r) − RebufferPenalty·rebufferTime − SwitchPenalty·|Δquality|
//
// §4.2 notes that Sammy's threshold analysis "also applies to MPC
// algorithms with appropriately chosen utility functions"; this
// implementation makes that concrete — its decisions stay fixed as long as
// the (discounted) throughput estimate clears the top rung's threshold.
type MPC struct {
	// Horizon is the lookahead in chunks; default 5.
	Horizon int
	// RebufferPenalty is QoE points lost per second of rebuffering;
	// default 25 (high: rebuffers dominate, as in the robust-MPC tuning).
	RebufferPenalty float64
	// SwitchPenalty is QoE points lost per point of quality change between
	// consecutive chunks; default 0.5.
	SwitchPenalty float64
	// Discount scales the throughput estimate for robustness (the robust-
	// MPC idea); default 0.8.
	Discount float64
}

// Name implements Algorithm.
func (m MPC) Name() string { return "mpc" }

func (m MPC) params() (horizon int, rebufPen, switchPen, discount float64) {
	horizon = m.Horizon
	if horizon <= 0 {
		horizon = 5
	}
	rebufPen = m.RebufferPenalty
	if rebufPen <= 0 {
		rebufPen = 25
	}
	switchPen = m.SwitchPenalty
	if switchPen <= 0 {
		switchPen = 0.5
	}
	discount = m.Discount
	if discount <= 0 || discount > 1 {
		discount = 0.8
	}
	return horizon, rebufPen, switchPen, discount
}

// SelectRung implements Algorithm.
func (m MPC) SelectRung(ctx Context) int {
	horizon, rebufPen, switchPen, discount := m.params()
	x := ctx.effectiveThroughput()
	if x <= 0 {
		return 0
	}
	xHat := units.BitsPerSecond(float64(x) * discount)

	prevQuality := math.NaN()
	if ctx.PrevRung >= 0 && ctx.PrevRung < len(ctx.Title.Ladder) {
		prevQuality = ctx.Title.Ladder[ctx.PrevRung].VMAF
	}

	best, bestScore := 0, math.Inf(-1)
	for rung := range ctx.Title.Ladder {
		score := m.planScore(ctx, rung, horizon, xHat, rebufPen, switchPen, prevQuality)
		if score > bestScore {
			best, bestScore = rung, score
		}
	}
	return best
}

// planScore evaluates holding the given rung over the horizon (the
// constant-rung relaxation of the full combinatorial plan, which is the
// standard practical simplification).
func (m MPC) planScore(ctx Context, rung, horizon int, x units.BitsPerSecond,
	rebufPen, switchPen, prevQuality float64) float64 {
	buf := ctx.Buffer
	var score float64
	quality := ctx.Title.Ladder[rung].VMAF
	if !math.IsNaN(prevQuality) {
		score -= switchPen * math.Abs(quality-prevQuality)
	}
	for i := ctx.ChunkIndex; i < ctx.ChunkIndex+horizon && i < ctx.Title.NumChunks; i++ {
		chunk := ctx.Title.ChunkAt(i, rung)
		dl := x.TimeToSend(chunk.Size)
		buf -= dl
		if buf < 0 {
			score -= rebufPen * (-buf).Seconds()
			buf = 0
		}
		buf += chunk.Duration
		if ctx.MaxBuffer > 0 && buf > ctx.MaxBuffer {
			buf = ctx.MaxBuffer
		}
		score += quality
	}
	return score
}

// MinThroughputFor reports the MPC decision threshold for sustaining
// bitrate r from buffer b0 over lookahead d, the §4.2 quantity Sammy's pace
// floor must clear. For a rebuffer-dominated objective this coincides with
// the HYB bound at β = Discount: the estimate must keep the predicted
// buffer non-negative.
func (m MPC) MinThroughputFor(r units.BitsPerSecond, b0, d time.Duration) units.BitsPerSecond {
	_, _, _, discount := m.params()
	if d <= 0 {
		return 0
	}
	return units.BitsPerSecond(float64(r) / discount / (1 + float64(b0)/float64(d)))
}
