package abr

import (
	"time"

	"repro/internal/units"
)

// Production is the stand-in for the proprietary MPC-style production
// algorithm the paper experiments against (§4.3). The paper cannot describe
// Netflix's algorithm; it does tell us the decision structure that matters
// for the reproduction:
//
//   - it is MPC-style: it simulates buffer evolution over a lookahead window
//     using a throughput estimate and upcoming chunk sizes (the HYB analysis
//     of §4.2 "also applies to MPC algorithms");
//   - at startup, before in-session measurements exist, it selects bitrates
//     from historical throughput (§4.1);
//   - like any deployed algorithm, it has switching hysteresis so quality
//     does not flap chunk-to-chunk.
//
// Production composes those three pieces: an HYB-style lookahead core, a
// startup path driven by Context.InitialEstimate, and up/down switching
// damping.
type Production struct {
	// Beta is the throughput-discount safety factor; default 0.7 (a tuned
	// production system trusts its estimator more than the worked examples'
	// 0.5).
	Beta float64
	// Lookahead is the MPC horizon in chunks; default 8.
	Lookahead int
	// StartupSafety scales the historical estimate for the very first
	// chunks. Values below 1 discount an untrusted estimate; values up to 2
	// are allowed for estimators that are known to be biased low (an
	// initial-only history is, because it includes cold-connection chunks).
	// Default 0.85.
	StartupSafety float64
	// UpSwitchBuffer is the minimum buffer required to switch up more than
	// one rung at a time; default 8s.
	UpSwitchBuffer time.Duration
}

// Name implements Algorithm.
func (p Production) Name() string { return "production" }

func (p Production) params() (beta float64, look int, safety float64, upBuf time.Duration) {
	beta = p.Beta
	if beta <= 0 || beta > 1 {
		beta = 0.7
	}
	look = p.Lookahead
	if look <= 0 {
		look = 8
	}
	safety = p.StartupSafety
	if safety <= 0 || safety > 2 {
		safety = 0.85
	}
	upBuf = p.UpSwitchBuffer
	if upBuf <= 0 {
		upBuf = 8 * time.Second
	}
	return beta, look, safety, upBuf
}

// SelectRung implements Algorithm.
func (p Production) SelectRung(ctx Context) int {
	beta, look, safety, upBuf := p.params()

	x := ctx.Throughput
	if x <= 0 {
		// Startup: no in-session measurement. Use the historical initial
		// estimate with the extra startup discount (§4.1's "historical
		// throughput from previous sessions").
		est := units.BitsPerSecond(float64(ctx.InitialEstimate) * safety)
		if est <= 0 {
			return 0
		}
		return maxRungAtOrBelow(ctx.Title.Ladder, units.BitsPerSecond(float64(est)*beta))
	}

	discounted := units.BitsPerSecond(float64(x) * beta)
	best := 0
	for rung := range ctx.Title.Ladder {
		if predictedBufferPositive(ctx, rung, look, discounted) {
			best = rung
		}
	}

	// Hysteresis: climbing is damped to one rung per chunk unless the
	// buffer is comfortable; dropping is immediate (rebuffer avoidance
	// always wins).
	if ctx.PrevRung >= 0 && best > ctx.PrevRung {
		if ctx.Buffer < upBuf {
			best = ctx.PrevRung + 1
		}
	}
	return best
}

// MinThroughputFor reports the production algorithm's decision threshold,
// the analogue of HYB's Eq. 1 with the production β. Sammy's pace-rate
// floor is computed against this (§4.2: "we must pick a pace rate higher
// than this value").
func (p Production) MinThroughputFor(r units.BitsPerSecond, b0, d time.Duration) units.BitsPerSecond {
	beta, _, _, _ := p.params()
	if d <= 0 {
		return 0
	}
	return units.BitsPerSecond(float64(r) / beta / (1 + float64(b0)/float64(d)))
}
