package abr

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
	"repro/internal/video"
)

func TestBOLALowBufferPicksLowest(t *testing.T) {
	b := BOLA{}
	ctx := testCtx(2*time.Second, 100*units.Mbps)
	if got := b.SelectRung(ctx); got != 0 {
		t.Errorf("2s buffer rung = %d, want 0 (below reservoir, regardless of throughput)", got)
	}
}

func TestBOLAHighBufferPicksTop(t *testing.T) {
	b := BOLA{BufferTarget: 30 * time.Second}
	ctx := testCtx(45*time.Second, 1*units.Mbps)
	top := len(video.DefaultLadder()) - 1
	if got := b.SelectRung(ctx); got != top {
		t.Errorf("45s buffer rung = %d, want top %d (regardless of throughput)", got, top)
	}
}

func TestBOLAMonotoneInBuffer(t *testing.T) {
	b := BOLA{}
	prev := -1
	for s := 1; s <= 45; s++ {
		rung := b.SelectRung(testCtx(time.Duration(s)*time.Second, 10*units.Mbps))
		if rung < prev {
			t.Fatalf("BOLA not monotone at %ds: %d < %d", s, rung, prev)
		}
		prev = rung
	}
}

func TestBOLAThroughputInvariantWhilePlaying(t *testing.T) {
	// BOLA is buffer-based: with a fixed buffer, the measured throughput
	// must not change its decision (the property that makes §2.3.1's
	// downward spiral impossible for it while the buffer holds).
	b := BOLA{}
	f := func(mbps uint16, bufS uint8) bool {
		buf := time.Duration(int(bufS)%40+5) * time.Second
		ctx1 := testCtx(buf, units.BitsPerSecond(int(mbps)+1)*units.Kbps*100)
		ctx2 := testCtx(buf, 500*units.Mbps)
		return b.SelectRung(ctx1) == b.SelectRung(ctx2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBOLAStartupUsesThroughput(t *testing.T) {
	b := BOLA{}
	ctx := testCtx(0, 0)
	ctx.Playing = false
	ctx.InitialEstimate = 20 * units.Mbps
	if got := b.SelectRung(ctx); got == 0 {
		t.Error("startup with a 20 Mbps estimate should not pick rung 0")
	}
	ctx.InitialEstimate = 0
	if got := b.SelectRung(ctx); got != 0 {
		t.Errorf("startup with no estimate = %d, want 0", got)
	}
}

func TestBOLASingleRungLadder(t *testing.T) {
	title := video.NewTitle(video.NewLadder(1*units.Mbps), 4*time.Second, 10, nil)
	ctx := Context{Title: title, Buffer: 10 * time.Second, Playing: true, Throughput: 5 * units.Mbps}
	if got := (BOLA{}).SelectRung(ctx); got != 0 {
		t.Errorf("single-rung ladder = %d", got)
	}
}

func TestMPCMoreThroughputHigherRung(t *testing.T) {
	m := MPC{}
	prev := -1
	for _, mbps := range []float64{1, 3, 10, 30, 100} {
		rung := m.SelectRung(testCtx(15*time.Second, units.BitsPerSecond(mbps)*units.Mbps))
		if rung < prev {
			t.Fatalf("MPC rung decreased with more throughput at %v Mbps", mbps)
		}
		prev = rung
	}
	if prev != len(video.DefaultLadder())-1 {
		t.Errorf("100 Mbps should reach the top rung, got %d", prev)
	}
}

func TestMPCRebufferPenaltyForcesDown(t *testing.T) {
	// With a tiny buffer and throughput just at the bitrate, holding a high
	// rung would rebuffer; MPC must pick a lower one.
	m := MPC{}
	ctx := testCtx(1*time.Second, 6*units.Mbps)
	rung := m.SelectRung(ctx)
	high := ctx.Title.Ladder.Index(5 * units.Mbps)
	if rung >= high {
		t.Errorf("1s buffer at 6 Mbps picked rung %d (≥ %d); rebuffer penalty should force lower", rung, high)
	}
}

func TestMPCSwitchPenaltyDampsOscillation(t *testing.T) {
	// A large switch penalty should keep the decision at the previous rung
	// when the alternative gain is small.
	damped := MPC{SwitchPenalty: 50}
	free := MPC{SwitchPenalty: 0.01}
	ctx := testCtx(20*time.Second, 12*units.Mbps)
	ctx.PrevRung = 5
	d := damped.SelectRung(ctx)
	f := free.SelectRung(ctx)
	if f <= ctx.PrevRung {
		t.Skipf("free choice %d did not exceed prev rung; scenario not discriminative", f)
	}
	if d != ctx.PrevRung {
		t.Errorf("high switch penalty moved from %d to %d", ctx.PrevRung, d)
	}
}

func TestMPCZeroThroughputPicksLowest(t *testing.T) {
	if got := (MPC{}).SelectRung(testCtx(10*time.Second, 0)); got != 0 {
		t.Errorf("no estimate = rung %d", got)
	}
}

func TestMPCThresholdMatchesHYBAtDiscount(t *testing.T) {
	// §4.2: the threshold analysis applies to MPC with the discount playing
	// β's role.
	m := MPC{Discount: 0.8}
	h := HYB{Beta: 0.8}
	f := func(mbps uint8, bufS uint8) bool {
		r := units.BitsPerSecond(int(mbps)+1) * units.Mbps
		b0 := time.Duration(bufS) * time.Second
		d := 20 * time.Second
		got, want := m.MinThroughputFor(r, b0, d), h.MinThroughputFor(r, b0, d)
		return math.Abs(float64(got-want)) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMPCDecisionStableAbovePaceThreshold(t *testing.T) {
	// The §4.2 property Sammy relies on, for MPC: once the estimate clears
	// the top rung's threshold, further throughput does not change the
	// decision.
	m := MPC{}
	title := video.NewTitle(video.DefaultLadder(), 4*time.Second, 300, nil)
	top := title.Ladder.Top().Bitrate
	buf := 20 * time.Second
	d := 5 * title.ChunkDuration
	threshold := m.MinThroughputFor(top, buf, d)

	mk := func(x units.BitsPerSecond) Context {
		c := testCtx(buf, x)
		return c
	}
	rPaced := m.SelectRung(mk(units.BitsPerSecond(float64(threshold) * 1.3)))
	rFast := m.SelectRung(mk(500 * units.Mbps))
	if rPaced != rFast {
		t.Errorf("decision changed with extra throughput: %d vs %d", rPaced, rFast)
	}
}

func TestNewAlgorithmsReturnValidRungs(t *testing.T) {
	algos := []Algorithm{BOLA{}, MPC{}}
	f := func(bufS uint8, mbps uint16, playing bool, prev int8) bool {
		ctx := testCtx(time.Duration(bufS)*time.Second, units.BitsPerSecond(mbps)*units.Mbps/10)
		ctx.Playing = playing
		ctx.PrevRung = int(prev) % len(ctx.Title.Ladder)
		for _, a := range algos {
			r := a.SelectRung(ctx)
			if r < 0 || r >= len(ctx.Title.Ladder) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewAlgorithmNames(t *testing.T) {
	if (BOLA{}).Name() != "bola" || (MPC{}).Name() != "mpc" {
		t.Error("algorithm names wrong")
	}
}
