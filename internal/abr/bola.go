package abr

import (
	"math"
	"time"

	"repro/internal/video"
)

// BOLA is the Lyapunov buffer-based algorithm of Spiteri et al. ([65] in
// the paper), in its BOLA-BASIC form as deployed in the dash.js reference
// player: each rung m has utility v_m = ln(S_m / S_min), and the algorithm
// picks the rung maximizing
//
//	(V·(v_m + γp) − Q) / S_m
//
// where Q is the buffer level. The parameters V and γp are derived from
// the player's buffer target the way dash.js derives them, so the lowest
// rung wins below a small reservoir and the highest wins near the target.
//
// BOLA is relevant to the reproduction because it is a pure buffer-based
// algorithm: §2.1 observes that such algorithms encode past bandwidth in
// the buffer, and §2.3.1 explains how naive throughput reduction shrinks
// their buffers and quality — which is why Sammy's pace floor matters.
type BOLA struct {
	// BufferTarget is the buffer level at which the top rung is chosen;
	// default 30 s.
	BufferTarget time.Duration
	// MinimumBuffer is the reservoir below which the lowest rung is
	// chosen; default 10 s (dash.js's MINIMUM_BUFFER_S).
	MinimumBuffer time.Duration
}

// Name implements Algorithm.
func (b BOLA) Name() string { return "bola" }

func (b BOLA) params(ladder video.Ladder) (vp, gp float64) {
	target := b.BufferTarget
	if target <= 0 {
		target = 30 * time.Second
	}
	minBuf := b.MinimumBuffer
	if minBuf <= 0 {
		minBuf = 10 * time.Second
	}
	if target <= minBuf {
		target = 2 * minBuf
	}
	topUtility := utility(ladder, len(ladder)-1)
	// dash.js's derivation: gp positions the zero-crossings so the ladder
	// spreads between the reservoir and the target; vp scales scores to
	// buffer seconds.
	gp = (topUtility - 1) / (float64(target)/float64(minBuf) - 1)
	if gp <= 0 {
		gp = 1
	}
	vp = minBuf.Seconds() / gp
	return vp, gp
}

// utility is v_m = ln(bitrate_m / bitrate_min).
func utility(l video.Ladder, m int) float64 {
	return math.Log(float64(l[m].Bitrate) / float64(l[0].Bitrate))
}

// SelectRung implements Algorithm.
func (b BOLA) SelectRung(ctx Context) int {
	ladder := ctx.Title.Ladder
	if len(ladder) == 1 {
		return 0
	}
	if !ctx.Playing || ctx.Buffer == 0 {
		// Startup fallback, as deployed buffer-based algorithms do [64].
		x := ctx.effectiveThroughput()
		if x <= 0 {
			return 0
		}
		return maxRungAtOrBelow(ladder, x/2)
	}
	vp, gp := b.params(ladder)
	q := ctx.Buffer.Seconds()
	best, bestScore := 0, math.Inf(-1)
	for m := range ladder {
		size := float64(ctx.Title.ChunkAt(ctx.ChunkIndex, m).Size)
		score := (vp*(utility(ladder, m)+gp) - q) / size
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}
