package tcp

import (
	"math"
	"time"
)

// Variant selects the congestion-control law a connection uses for window
// growth and loss response. The NewReno loss-recovery machinery (fast
// retransmit, partial acks, RTO) is shared across variants, as it is in
// real stacks.
//
// Reno is the paper's production default ("the congestion control algorithm
// Netflix uses by default", §6). Cubic is the common Linux default, useful
// as a neighbor workload. Scavenger is a LEDBAT-style delay-based
// less-than-best-effort law (§2.2): it backs off as soon as it detects
// queueing delay, which makes it yield to any loss-based flow — the
// alternative smoothing approach the paper contrasts Sammy with.
type Variant int

const (
	// Reno is classic slow start + AIMD.
	Reno Variant = iota
	// Cubic grows the window along a cubic curve anchored at the last loss
	// (RFC 8312 shape, simplified).
	Cubic
	// Scavenger is a LEDBAT-style delay-based law targeting a small bound
	// on self-induced queueing delay.
	Scavenger
)

// String names the variant for experiment output.
func (v Variant) String() string {
	switch v {
	case Cubic:
		return "cubic"
	case Scavenger:
		return "scavenger"
	default:
		return "reno"
	}
}

// Cubic constants (RFC 8312): the scaling constant and the multiplicative
// decrease factor.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// Scavenger (LEDBAT-like) constants: the queueing-delay target and the
// per-RTT gain. The target must sit below the bottleneck queue's maximum
// delay or the scavenger can never detect competition (a known LEDBAT
// deployment pitfall); 10 ms is comfortably inside the lab queue's 20 ms.
const (
	scavengerTarget = 10 * time.Millisecond
	scavengerGain   = 2.0
)

// cubicState tracks the cubic curve between losses.
type cubicState struct {
	wMax       float64       // window before the last reduction
	epochStart time.Duration // when the current growth epoch began; -1 if unset
	k          float64       // time (seconds) to return to wMax
}

// lossBeta is the multiplicative decrease applied at a fast retransmit.
func (c *Conn) lossBeta() float64 {
	switch c.cfg.Variant {
	case Cubic:
		return cubicBeta
	default:
		return 0.5
	}
}

// increaseWindow applies the variant's growth law for newlyAcked segments
// acknowledged with the given RTT sample (0 when no sample was taken).
func (c *Conn) increaseWindow(newlyAcked int64, rtt time.Duration) {
	switch c.cfg.Variant {
	case Cubic:
		c.increaseCubic(newlyAcked)
	case Scavenger:
		c.increaseScavenger(newlyAcked, rtt)
	default:
		c.increaseReno(newlyAcked)
	}
}

// increaseReno is slow start below ssthresh and 1/cwnd per ack above.
func (c *Conn) increaseReno(newlyAcked int64) {
	for i := int64(0); i < newlyAcked; i++ {
		if c.cwnd < c.ssthresh {
			c.cwnd++
		} else {
			c.cwnd += 1 / c.cwnd
		}
	}
}

// increaseCubic follows W(t) = C·(t−K)³ + Wmax above ssthresh.
func (c *Conn) increaseCubic(newlyAcked int64) {
	for i := int64(0); i < newlyAcked; i++ {
		if c.cwnd < c.ssthresh {
			c.cwnd++
			continue
		}
		if c.cubic.epochStart < 0 {
			c.cubic.epochStart = c.s.Now()
			if c.cubic.wMax < c.cwnd {
				c.cubic.wMax = c.cwnd
			}
			c.cubic.k = math.Cbrt(c.cubic.wMax * (1 - cubicBeta) / cubicC)
		}
		t := (c.s.Now() - c.cubic.epochStart).Seconds()
		target := cubicC*math.Pow(t-c.cubic.k, 3) + c.cubic.wMax
		if target > c.cwnd {
			// Standard per-ack catch-up toward the cubic target.
			c.cwnd += (target - c.cwnd) / c.cwnd
		} else {
			// TCP-friendly floor: at least Reno's growth.
			c.cwnd += 0.3 / c.cwnd
		}
	}
}

// increaseScavenger adjusts the window proportionally to how far the
// current queueing delay sits from the target (LEDBAT's controller).
func (c *Conn) increaseScavenger(newlyAcked int64, rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if c.minRTT == 0 || rtt < c.minRTT {
		c.minRTT = rtt
	}
	queueing := rtt - c.minRTT
	offTarget := float64(scavengerTarget-queueing) / float64(scavengerTarget)
	if offTarget > 1 {
		offTarget = 1
	}
	if offTarget < -1 {
		offTarget = -1
	}
	c.cwnd += scavengerGain * offTarget * float64(newlyAcked) / c.cwnd
	if c.cwnd < 2 {
		c.cwnd = 2
	}
}

// onVariantLoss lets the variant update its private state when a loss event
// halves (or beta-reduces) the window.
func (c *Conn) onVariantLoss() {
	if c.cfg.Variant == Cubic {
		c.cubic.wMax = c.cwnd
		c.cubic.epochStart = -1
	}
}
