package tcp

import (
	"testing"
	"time"

	"repro/internal/units"
)

func TestVariantString(t *testing.T) {
	tests := []struct {
		v    Variant
		want string
	}{
		{Reno, "reno"},
		{Cubic, "cubic"},
		{Scavenger, "scavenger"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestCubicBulkThroughput(t *testing.T) {
	// Cubic should fill the pipe at least as well as Reno on a long
	// transfer.
	run := func(v Variant) units.BitsPerSecond {
		net := newTestNet(40*units.Mbps, 2)
		c := net.conn(1, Config{Variant: v})
		var res FetchResult
		c.Fetch(30*units.MB, nil, func(r FetchResult) { res = r })
		net.s.Run()
		return res.Throughput()
	}
	reno := run(Reno)
	cubic := run(Cubic)
	if cubic < 30*units.Mbps {
		t.Errorf("cubic bulk throughput = %v, want near link rate", cubic)
	}
	if float64(cubic) < 0.9*float64(reno) {
		t.Errorf("cubic (%v) should be at least comparable to reno (%v)", cubic, reno)
	}
}

func TestCubicRecoversAfterLoss(t *testing.T) {
	// The cubic epoch must reset on loss and still deliver everything.
	net := newTestNet(20*units.Mbps, 0.5) // shallow queue forces losses
	c := net.conn(1, Config{Variant: Cubic})
	var done bool
	c.Fetch(10*units.MB, nil, func(FetchResult) { done = true })
	net.s.Run()
	if !done {
		t.Fatal("cubic transfer did not complete")
	}
	if c.Stats.Retransmits == 0 {
		t.Error("expected losses on the shallow queue")
	}
}

func TestScavengerAloneUtilizesLink(t *testing.T) {
	// §2.2: scavenger transports "fully utilize the network when no
	// neighboring traffic is present" — the key behavioural difference from
	// Sammy's consistent smoothing.
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{Variant: Scavenger})
	var res FetchResult
	c.Fetch(20*units.MB, nil, func(r FetchResult) { res = r })
	net.s.Run()
	got := res.Throughput().Mbps()
	if got < 25 {
		t.Errorf("solo scavenger throughput = %.1f Mbps, want near link rate", got)
	}
	// It should hold queueing delay near its 25 ms target rather than
	// filling the 20 ms queue plus sawtooth losses.
	if c.Stats.Retransmits > 20 {
		t.Errorf("scavenger retransmits = %d, want close to none", c.Stats.Retransmits)
	}
}

func TestScavengerYieldsToReno(t *testing.T) {
	// A scavenger flow competing with a loss-based flow should take much
	// less than half the link (LEDBAT's less-than-best-effort goal).
	net := newTestNet(40*units.Mbps, 4)
	scav := net.conn(1, Config{Variant: Scavenger})
	reno := net.conn(2, Config{Variant: Reno})
	var rScav, rReno FetchResult
	// The scavenger starts first; the Reno flow then takes over the link.
	scav.Fetch(12*units.MB, nil, func(r FetchResult) { rScav = r })
	net.s.At(500*time.Millisecond, func() {
		reno.Fetch(30*units.MB, nil, func(r FetchResult) { rReno = r })
	})
	net.s.Run()
	renoMbps := rReno.Throughput().Mbps()
	scavMbps := rScav.Throughput().Mbps()
	if renoMbps < 22 {
		t.Errorf("reno vs scavenger = %.1f Mbps, want well above the 20 Mbps fair share", renoMbps)
	}
	if scavMbps > renoMbps {
		t.Errorf("scavenger (%.1f) outran reno (%.1f); it should yield", scavMbps, renoMbps)
	}
}

func TestScavengerDeliversReliably(t *testing.T) {
	// Yielding must not break reliability.
	net := newTestNet(10*units.Mbps, 1)
	scav := net.conn(1, Config{Variant: Scavenger})
	bulk := net.conn(2, Config{})
	var done bool
	scav.Fetch(3*units.MB, nil, func(FetchResult) { done = true })
	bulk.Fetch(20*units.MB, nil, nil)
	net.s.Run()
	if !done {
		t.Fatal("scavenger transfer starved completely")
	}
}

func TestVariantDefaultIsReno(t *testing.T) {
	var cfg Config
	cfg.setDefaults()
	if cfg.Variant != Reno {
		t.Errorf("default variant = %v", cfg.Variant)
	}
}
