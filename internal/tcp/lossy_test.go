package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// lossyNet is the testNet topology with a random-loss wrapper on the
// bottleneck.
func lossyNet(rate units.BitsPerSecond, lossRate float64, seed int64) (*sim.Simulator, *sim.LossyLink, *sim.Classifier) {
	s := sim.New()
	class := sim.NewClassifier()
	inner := sim.NewLink(s, sim.LinkConfig{
		Rate:       rate,
		Delay:      2500 * time.Microsecond,
		QueueLimit: 4 * rate.BytesIn(5*time.Millisecond),
	}, class)
	lossy, err := sim.NewLossyLink(inner, lossRate, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	return s, lossy, class
}

func TestReliabilityUnderRandomLoss(t *testing.T) {
	// Every byte must arrive, in order, despite 2% random loss.
	s, lossy, class := lossyNet(20*units.Mbps, 0.02, 1)
	c := NewConn(s, 1, lossy, class, sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}, Config{})
	var res *FetchResult
	size := 5 * units.MB
	c.Fetch(size, nil, func(r FetchResult) { res = &r })
	s.Run()
	if res == nil {
		t.Fatal("transfer did not complete under random loss")
	}
	if res.Size != size {
		t.Errorf("size = %v", res.Size)
	}
	if lossy.RandomDrops == 0 {
		t.Error("the loss process never fired; test is vacuous")
	}
	if c.Stats.Retransmits == 0 {
		t.Error("losses should force retransmissions")
	}
}

func TestReliabilityUnderRandomLossProperty(t *testing.T) {
	// For arbitrary (bounded) loss rates, seeds and sizes, the transfer
	// completes with exactly the requested bytes.
	f := func(seed int64, lossPct uint8, sizeKB uint16) bool {
		loss := float64(lossPct%8) / 100 // 0-7%
		size := units.Bytes(int(sizeKB)%2000+50) * units.KB
		s, lossy, class := lossyNet(20*units.Mbps, loss, seed)
		c := NewConn(s, 1, lossy, class,
			sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}, Config{})
		var got units.Bytes
		c.Fetch(size, nil, func(r FetchResult) { got = r.Size })
		s.RunUntil(10 * time.Minute)
		return got == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVariantsAllSurviveRandomLoss(t *testing.T) {
	for _, v := range []Variant{Reno, Cubic, Scavenger} {
		s, lossy, class := lossyNet(20*units.Mbps, 0.03, 7)
		c := NewConn(s, 1, lossy, class,
			sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}, Config{Variant: v})
		done := false
		c.Fetch(2*units.MB, nil, func(FetchResult) { done = true })
		s.RunUntil(5 * time.Minute)
		if !done {
			t.Errorf("%v transfer did not complete under random loss", v)
		}
	}
}

func TestPacedFlowSurvivesRandomLoss(t *testing.T) {
	// Pacing plus loss recovery must coexist: the pace timer and RTO/fast
	// retransmit machinery interleave.
	s, lossy, class := lossyNet(40*units.Mbps, 0.02, 3)
	c := NewConn(s, 1, lossy, class,
		sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}, Config{})
	c.SetPacingRate(10 * units.Mbps)
	c.SetPacerBurst(4)
	var res *FetchResult
	c.Fetch(4*units.MB, nil, func(r FetchResult) { res = &r })
	s.RunUntil(5 * time.Minute)
	if res == nil {
		t.Fatal("paced transfer did not complete under loss")
	}
	// Loss recovery may dip below the pace rate but the cap still holds.
	if got := res.Throughput(); got > 10.5*units.Mbps {
		t.Errorf("throughput %v exceeds pace rate", got)
	}
}
