package tcp

import (
	"testing"

	"repro/internal/units"
)

// BenchmarkBulkTransfer measures simulator throughput for one unpaced bulk
// flow (wall-clock cost per simulated transfer).
func BenchmarkBulkTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := newTestNet(40*units.Mbps, 4)
		c := net.conn(1, Config{})
		c.Fetch(10*units.MB, nil, nil)
		net.s.Run()
	}
}

// BenchmarkPacedTransfer is the same transfer under 4-packet-burst pacing,
// showing the pacing timers' overhead.
func BenchmarkPacedTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := newTestNet(40*units.Mbps, 4)
		c := net.conn(1, Config{})
		c.SetPacingRate(15 * units.Mbps)
		c.SetPacerBurst(4)
		c.Fetch(4*units.MB, nil, nil)
		net.s.Run()
	}
}
