// Package tcp implements a packet-granularity TCP Reno endpoint pair on top
// of the discrete-event simulator: slow start, AIMD congestion avoidance,
// fast retransmit/recovery (NewReno partial acks), retransmission timeouts
// with Karn's algorithm and exponential backoff, and — crucially for this
// paper — transmit pacing with a configurable maximum rate and burst size.
//
// The model is deliberately packet-granular (one segment per MSS) rather
// than byte-granular: the congestion phenomena the experiments measure
// (queue build-up, drop-tail losses, RTT inflation, retransmit rates) are
// functions of packet dynamics, and packet granularity is the standard
// modelling choice in network simulators.
package tcp

import (
	"strconv"
	"time"

	"repro/internal/obs"
	trace "repro/internal/obs/trace"
	"repro/internal/pacing"
	"repro/internal/sim"
	"repro/internal/tdigest"
	"repro/internal/units"
)

// Config parameterizes a connection. The zero value is usable; unset fields
// take the defaults documented on each field.
type Config struct {
	// MSS is the segment wire size. Default 1500 bytes.
	MSS units.Bytes
	// InitialCwnd is the initial congestion window in segments. Default 10
	// (RFC 6928).
	InitialCwnd float64
	// MinRTO is the lower bound on the retransmission timeout. Default
	// 200 ms, the common kernel floor.
	MinRTO time.Duration
	// PacerBurst is the pacing bucket depth in segments. Default 40,
	// matching the paper's description of the production TCP stack's
	// line-rate burst limit (§5.6).
	PacerBurst int
	// SlowStartRestart, when true, collapses cwnd back to InitialCwnd after
	// an idle period longer than one RTO (RFC 2861). The production stack
	// modelled in the paper keeps its window across chunk gaps, so the
	// default is false.
	SlowStartRestart bool
	// Variant selects the congestion-control law. Default Reno.
	Variant Variant
}

func (c *Config) setDefaults() {
	if c.MSS <= 0 {
		c.MSS = 1500
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 10
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.PacerBurst <= 0 {
		c.PacerBurst = 40
	}
}

// Stats are cumulative sender-side counters.
type Stats struct {
	SegmentsSent      int64       // data segments transmitted, incl. retransmits
	BytesSent         units.Bytes // wire bytes of data segments, incl. retransmits
	Retransmits       int64       // retransmitted segments
	RetransmitBytes   units.Bytes // wire bytes of retransmitted segments
	Timeouts          int64       // RTO expirations
	FastRetransmits   int64       // fast-retransmit events
	DeliveredBytes    units.Bytes // bytes cumulatively acked
	RTTSamples        int64       // RTT measurements taken
	HandshakeComplete bool
}

// RetransmitFraction reports retransmitted bytes over all bytes sent, the
// paper's per-session retransmission metric.
func (s Stats) RetransmitFraction() float64 {
	if s.BytesSent == 0 {
		return 0
	}
	return float64(s.RetransmitBytes) / float64(s.BytesSent)
}

// FetchResult summarizes one completed request/response transfer, measured
// at the client.
type FetchResult struct {
	Size        units.Bytes
	RequestedAt time.Duration // when the client issued the request
	FirstByteAt time.Duration // when the first response byte arrived
	DoneAt      time.Duration // when the last response byte arrived
}

// Throughput is the download-time-weighted chunk throughput the paper uses:
// size over the time from first to last byte (falling back to request time
// for sub-MSS transfers).
func (r FetchResult) Throughput() units.BitsPerSecond {
	start := r.FirstByteAt
	if r.DoneAt <= start {
		start = r.RequestedAt
	}
	return units.Rate(r.Size, r.DoneAt-start)
}

// ResponseTime is the request-to-last-byte latency, the paper's HTTP
// response time metric.
func (r FetchResult) ResponseTime() time.Duration { return r.DoneAt - r.RequestedAt }

// connState tracks connection establishment.
type connState int

const (
	stateClosed connState = iota
	stateSynSent
	stateEstablished
)

// request is one queued response transfer, tracked on both sides: the
// server knows where each response ends so it can mark boundaries; the
// client fires callbacks as bytes arrive.
type request struct {
	size        units.Bytes
	endSeq      int64 // first sequence number after this response
	requestedAt time.Duration
	firstByteAt time.Duration
	gotFirst    bool
	onFirst     func(t time.Duration)
	onComplete  func(r FetchResult)
}

// Conn is a client-server TCP connection pair on the simulator. The server
// side sends response data through a (typically shared, bottleneck) forward
// link; the client side receives data and returns acks and requests over a
// private reverse link.
//
// Conn is single-goroutine like everything in package sim.
type Conn struct {
	s    *sim.Simulator
	cfg  Config
	flow sim.FlowID
	fwd  sim.Sender // server → client, shared bottleneck
	rev  *sim.Link  // client → server, private

	// Sender (server) state, in segment sequence numbers.
	state      connState
	cwnd       float64
	ssthresh   float64
	sndUna     int64
	sndNxt     int64
	appLimit   int64 // sequence bound of data the application has provided
	dupAcks    int
	inRecovery bool
	recoverSeq int64
	sentAt     map[int64]time.Duration // send times for RTT sampling (Karn)
	pacer      *pacing.Pacer
	paceTimer  sim.EventRef
	paceCb     func() // pre-bound pace-timer callback (no per-arm closure)
	cwndCap    float64 // Trickle-style window cap in segments; 0 = off
	lastSend   time.Duration

	// RTO state.
	srtt, rttvar time.Duration
	rto          time.Duration
	rtoTimer     sim.EventRef
	rtoCb        func() // pre-bound onRTO (no per-arm method-value alloc)
	backoff      int

	// Variant state.
	cubic  cubicState
	minRTT time.Duration // smallest RTT sample, for delay-based laws

	// Receiver (client) state.
	rcvNxt int64
	ooo    map[int64]bool

	// Application state.
	pending    []*request // awaiting or in transfer, FIFO
	clientSide []*request // client view of the same queue
	consumed   int64      // sequence consumed by completed requests (client)

	// Measurements.
	Stats         Stats
	RTT           *tdigest.TDigest // per-ack RTT samples
	metrics       *Metrics         // nil = instrumentation off
	span          *trace.Span      // current fetch span; nil = tracing off
	onEstablished func()
}

// flowName renders the flow id as an event subject (cold paths only).
func (c *Conn) flowName() string { return strconv.Itoa(int(c.flow)) }

const (
	ackSize     units.Bytes = 40  // wire size of a pure ack
	requestSize units.Bytes = 120 // wire size of a request (HTTP GET-ish)
)

// NewConn creates a connection whose server transmits into fwd and whose
// client receives packets for flow from fwdClass. The reverse (client →
// server) path is a private link built from revCfg.
func NewConn(s *sim.Simulator, flow sim.FlowID, fwd sim.Sender, fwdClass *sim.Classifier, revCfg sim.LinkConfig, cfg Config) *Conn {
	cfg.setDefaults()
	c := &Conn{
		s:        s,
		cfg:      cfg,
		flow:     flow,
		fwd:      fwd,
		cwnd:     cfg.InitialCwnd,
		ssthresh: 1 << 30,
		sentAt:   make(map[int64]time.Duration),
		ooo:      make(map[int64]bool),
		rto:      time.Second,
		pacer:    pacing.NewPacer(pacing.NoPacing, units.Bytes(cfg.PacerBurst)*cfg.MSS),
		RTT:      tdigest.New(100),
		cubic:    cubicState{epochStart: -1},
	}
	if r := obs.Default(); r != nil {
		c.metrics = NewMetrics(r)
	}
	c.paceCb = func() {
		c.paceTimer = sim.EventRef{}
		c.trySend()
	}
	c.rtoCb = c.onRTO
	c.rev = sim.NewLink(s, revCfg, sim.HandlerFunc(c.handleServerPacket))
	fwdClass.Register(flow, sim.HandlerFunc(c.handleClientPacket))
	return c
}

// SetPacingRate applies an application-informed pace rate (an upper bound on
// the server's sending rate) with the configured burst. A zero rate disables
// pacing. This is the transport half of §3.2.
func (c *Conn) SetPacingRate(rate units.BitsPerSecond) {
	c.pacer.SetRate(c.s.Now(), rate, units.Bytes(c.cfg.PacerBurst)*c.cfg.MSS)
	if c.metrics != nil {
		c.metrics.PaceRate.Set(float64(rate))
		c.metrics.Recorder.RecordAt(c.s.Now(), "tcp_pace_rate", c.flowName(), float64(rate), 0)
	}
	if c.span != nil {
		c.span.AnnotateAt(c.s.Now(), "tcp.pace_rate", float64(rate))
	}
}

// SetPacerBurst changes the pacing burst size in segments (paper §5.6).
func (c *Conn) SetPacerBurst(segments int) {
	if segments <= 0 {
		segments = 1
	}
	c.cfg.PacerBurst = segments
	c.pacer.SetRate(c.s.Now(), c.pacer.Rate(), units.Bytes(segments)*c.cfg.MSS)
}

// PacingRate reports the current pace rate (0 when unpaced).
func (c *Conn) PacingRate() units.BitsPerSecond { return c.pacer.Rate() }

// SetCwndCap caps the effective congestion window at the given number of
// segments (0 removes the cap). This is the Trickle-style [25] rate limiter
// the paper's related work compares against: it bounds average throughput
// to cap·MSS/RTT but still releases window-sized line-rate bursts, unlike
// pacing (§5.6 quantifies the difference).
func (c *Conn) SetCwndCap(segments float64) {
	if segments < 0 {
		segments = 0
	}
	c.cwndCap = segments
	c.trySend()
}

// SRTT reports the smoothed RTT estimate, 0 before the first sample.
func (c *Conn) SRTT() time.Duration { return c.srtt }

// Cwnd reports the congestion window in segments.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// InFlight reports unacknowledged segments.
func (c *Conn) InFlight() int64 { return c.sndNxt - c.sndUna }

// Fetch issues a request for size bytes of response data. onComplete fires
// at the client when the last byte arrives; onFirst (optional) fires at the
// first byte. Requests are served FIFO on the single connection, like
// sequential HTTP requests on a persistent connection.
func (c *Conn) Fetch(size units.Bytes, onFirst func(time.Duration), onComplete func(FetchResult)) {
	if size <= 0 {
		panic("tcp: Fetch size must be positive")
	}
	r := &request{size: size, requestedAt: c.s.Now(), onFirst: onFirst, onComplete: onComplete}
	c.clientSide = append(c.clientSide, r)
	switch c.state {
	case stateClosed:
		c.state = stateSynSent
		c.sendSyn()
		// SYN loss is recovered by a simple fixed retry.
		c.scheduleSynRetry()
	case stateSynSent:
		// Request will be sent once established.
	case stateEstablished:
		c.sendRequest(r)
	}
}

// synPayload marks a SYN packet; requestPayload carries a request size.
type synPayload struct{}
type synAckPayload struct{}
type requestPayload struct{ size units.Bytes }

// sendSyn transmits a SYN over the reverse link (pooled, like all packets
// this connection produces).
func (c *Conn) sendSyn() {
	p := c.s.AllocPacket()
	p.Flow, p.Size, p.SentAt, p.Payload = c.flow, requestSize, c.s.Now(), synPayload{}
	c.rev.Send(p)
}

func (c *Conn) scheduleSynRetry() {
	c.s.Schedule(3*time.Second, func() {
		if c.state == stateSynSent {
			c.sendSyn()
			c.scheduleSynRetry()
		}
	})
}

// sendRequest transmits the request packet for r to the server.
func (c *Conn) sendRequest(r *request) {
	p := c.s.AllocPacket()
	p.Flow, p.Size, p.SentAt = c.flow, requestSize, c.s.Now()
	p.Payload = requestPayload{size: r.size}
	c.rev.Send(p)
}

// OnEstablished registers a callback for handshake completion.
func (c *Conn) OnEstablished(fn func()) { c.onEstablished = fn }

// --- Server side ------------------------------------------------------

// handleServerPacket processes packets arriving at the server: SYNs,
// requests and acks.
func (c *Conn) handleServerPacket(p *sim.Packet) {
	switch pl := p.Payload.(type) {
	case synPayload:
		// Reply SYN-ACK through the forward path so the handshake feels
		// bottleneck congestion like everything else.
		sa := c.s.AllocPacket()
		sa.Flow, sa.Size, sa.SentAt, sa.Payload = c.flow, ackSize, c.s.Now(), synAckPayload{}
		c.fwd.Send(sa)
	case requestPayload:
		c.appendResponse(pl.size)
	default:
		if p.IsAck {
			c.handleAck(p)
		}
	}
}

// appendResponse queues size bytes of response data for transmission.
func (c *Conn) appendResponse(size units.Bytes) {
	segs := int64((size + c.cfg.MSS - 1) / c.cfg.MSS)
	if segs == 0 {
		segs = 1
	}
	if c.cfg.SlowStartRestart && c.appLimit == c.sndNxt && c.lastSend > 0 &&
		c.s.Now()-c.lastSend > c.rto {
		c.cwnd = c.cfg.InitialCwnd
	}
	c.appLimit += segs
	c.pending = append(c.pending, &request{endSeq: c.appLimit})
	c.trySend()
}

// trySend transmits as much new data as the window, the application and the
// pacer allow.
func (c *Conn) trySend() {
	if c.paceTimer.Pending() {
		// A pacing timer is armed; it will call back into trySend.
		return
	}
	for c.sndNxt < c.appLimit && float64(c.sndNxt-c.sndUna) < c.effectiveCwnd() {
		if d := c.pacer.Delay(c.s.Now(), c.cfg.MSS); d > 0 {
			c.pacer.Refund(c.cfg.MSS)
			if c.metrics != nil {
				c.metrics.PacerSleep.Observe(d.Seconds() * 1000)
			}
			c.paceTimer = c.s.Schedule(d, c.paceCb)
			return
		}
		c.transmit(c.sndNxt, false)
		c.sndNxt++
	}
}

// effectiveCwnd applies the optional Trickle-style cap to the congestion
// window.
func (c *Conn) effectiveCwnd() float64 {
	if c.cwndCap > 0 && c.cwndCap < c.cwnd {
		return c.cwndCap
	}
	return c.cwnd
}

// transmit sends segment seq, stamping it for RTT measurement unless it is a
// retransmission (Karn's algorithm). Segments come from the simulator's
// packet pool; the forward link recycles them after delivery or drop.
func (c *Conn) transmit(seq int64, retrans bool) {
	p := c.s.AllocPacket()
	p.Flow, p.Seq, p.Size, p.SentAt, p.Retrans = c.flow, seq, c.cfg.MSS, c.s.Now(), retrans
	c.Stats.SegmentsSent++
	c.Stats.BytesSent += c.cfg.MSS
	if m := c.metrics; m != nil {
		m.SegmentsSent.Inc()
		m.BytesSent.Add(int64(c.cfg.MSS))
		if retrans {
			m.Retransmits.Inc()
			m.Recorder.RecordAt(c.s.Now(), "tcp_retransmit", c.flowName(), float64(seq), 0)
		}
	}
	if retrans {
		c.Stats.Retransmits++
		c.Stats.RetransmitBytes += c.cfg.MSS
		delete(c.sentAt, seq)
	} else {
		c.sentAt[seq] = c.s.Now()
	}
	c.lastSend = c.s.Now()
	c.fwd.Send(p) // drop-tail losses surface as missing acks
	c.armRTO()
}

// handleAck processes a cumulative ack at the server.
func (c *Conn) handleAck(p *sim.Packet) {
	ack := p.Ack
	switch {
	case ack > c.sndUna:
		newlyAcked := ack - c.sndUna
		// RTT sample from the most recent newly acked, never-retransmitted
		// segment.
		var rttSample time.Duration
		if t, ok := c.sentAt[ack-1]; ok {
			rttSample = c.s.Now() - t
			c.sampleRTT(rttSample)
		}
		for s := c.sndUna; s < ack; s++ {
			delete(c.sentAt, s)
		}
		c.sndUna = ack
		c.Stats.DeliveredBytes += units.Bytes(newlyAcked) * c.cfg.MSS
		if c.metrics != nil {
			c.metrics.DeliveredBytes.Add(int64(units.Bytes(newlyAcked) * c.cfg.MSS))
		}
		c.dupAcks = 0
		c.backoff = 0

		if c.inRecovery {
			if ack >= c.recoverSeq {
				// Full recovery: deflate to ssthresh.
				c.inRecovery = false
				c.cwnd = c.ssthresh
				if c.metrics != nil {
					c.metrics.FastRecoveries.Inc()
				}
			} else {
				// NewReno partial ack: retransmit the next hole, keep
				// recovery going.
				c.transmit(c.sndUna, true)
			}
		} else {
			c.increaseWindow(newlyAcked, rttSample)
		}
		if c.sndUna == c.sndNxt {
			c.cancelRTO()
		} else {
			c.armRTOFresh()
		}
		c.trySend()

	case ack == c.sndUna && c.sndNxt > c.sndUna:
		c.dupAcks++
		switch {
		case c.dupAcks == 3 && !c.inRecovery:
			c.Stats.FastRetransmits++
			c.onVariantLoss()
			c.ssthresh = max64f(c.cwnd*c.lossBeta(), 2)
			c.cwnd = c.ssthresh + 3
			c.inRecovery = true
			c.recoverSeq = c.sndNxt
			if c.metrics != nil {
				c.metrics.FastRetransmits.Inc()
				c.metrics.Recorder.RecordAt(c.s.Now(), "tcp_fast_retx", c.flowName(),
					float64(c.sndUna), c.ssthresh)
			}
			if c.span != nil {
				// Annotation value: the deflated cwnd (= new ssthresh).
				c.span.AnnotateAt(c.s.Now(), "tcp.fast_retx", c.ssthresh)
			}
			c.transmit(c.sndUna, true)
		case c.dupAcks > 3 || (c.inRecovery && c.dupAcks >= 1):
			// Window inflation lets new data flow during recovery.
			c.cwnd++
			c.trySend()
		}
	}
	if c.metrics != nil {
		c.setWindowMetrics()
	}
}

// sampleRTT applies RFC 6298 smoothing and records the sample.
func (c *Conn) sampleRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	c.Stats.RTTSamples++
	c.RTT.Add(rtt.Seconds() * 1000) // milliseconds in the digest
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.MinRTO {
		c.rto = c.cfg.MinRTO
	}
	if c.metrics != nil {
		c.metrics.SRTT.Observe(c.srtt.Seconds() * 1000)
	}
}

// armRTO starts the retransmission timer if it is not running.
func (c *Conn) armRTO() {
	if !c.rtoTimer.Pending() {
		c.armRTOFresh()
	}
}

// armRTOFresh (re)starts the retransmission timer.
func (c *Conn) armRTOFresh() {
	c.cancelRTO()
	rto := c.rto << uint(c.backoff)
	if rto > time.Minute {
		rto = time.Minute
	}
	c.rtoTimer = c.s.Schedule(rto, c.rtoCb)
}

func (c *Conn) cancelRTO() {
	c.rtoTimer.Cancel()
	c.rtoTimer = sim.EventRef{}
}

// onRTO handles a retransmission timeout: multiplicative backoff, collapse
// to one segment and go-back-N from the first unacked segment.
func (c *Conn) onRTO() {
	c.rtoTimer = sim.EventRef{}
	if c.sndUna == c.sndNxt {
		return // everything acked in the meantime
	}
	c.Stats.Timeouts++
	if c.metrics != nil {
		rto := c.rto << uint(c.backoff)
		c.metrics.Timeouts.Inc()
		c.metrics.Recorder.RecordAt(c.s.Now(), "tcp_rto", c.flowName(),
			rto.Seconds()*1000, c.cwnd)
	}
	if c.span != nil {
		// Annotation value: the cwnd the timeout collapses.
		c.span.AnnotateAt(c.s.Now(), "tcp.rto", c.cwnd)
	}
	c.onVariantLoss()
	c.ssthresh = max64f(c.cwnd/2, 2)
	c.cwnd = 1
	c.inRecovery = false
	c.dupAcks = 0
	c.backoff++
	c.sndNxt = c.sndUna // go-back-N
	c.transmit(c.sndNxt, true)
	c.sndNxt++
	c.armRTOFresh()
	c.trySend()
	if c.metrics != nil {
		c.setWindowMetrics()
	}
}

// --- Client side ------------------------------------------------------

// handleClientPacket processes packets arriving at the client: SYN-ACKs and
// data segments.
func (c *Conn) handleClientPacket(p *sim.Packet) {
	if _, ok := p.Payload.(synAckPayload); ok {
		if c.state != stateEstablished {
			c.state = stateEstablished
			c.Stats.HandshakeComplete = true
			if c.metrics != nil {
				c.metrics.Established.Inc()
			}
			for _, r := range c.clientSide {
				c.sendRequest(r)
			}
			if c.onEstablished != nil {
				c.onEstablished()
			}
		}
		return
	}
	if p.IsAck {
		return
	}
	// Data segment.
	if p.Seq == c.rcvNxt {
		c.rcvNxt++
		for c.ooo[c.rcvNxt] {
			delete(c.ooo, c.rcvNxt)
			c.rcvNxt++
		}
	} else if p.Seq > c.rcvNxt {
		c.ooo[p.Seq] = true
	}
	// Immediate cumulative ack (dupacks arise naturally from gaps).
	ack := c.s.AllocPacket()
	ack.Flow, ack.IsAck, ack.Ack, ack.Size, ack.SentAt = c.flow, true, c.rcvNxt, ackSize, c.s.Now()
	c.rev.Send(ack)
	c.deliverToApp()
}

// deliverToApp fires request callbacks as contiguous data crosses request
// boundaries.
func (c *Conn) deliverToApp() {
	for len(c.clientSide) > 0 {
		r := c.clientSide[0]
		segs := int64((r.size + c.cfg.MSS - 1) / c.cfg.MSS)
		if segs == 0 {
			segs = 1
		}
		end := c.consumed + segs
		if !r.gotFirst && c.rcvNxt > c.consumed {
			r.gotFirst = true
			r.firstByteAt = c.s.Now()
			if r.onFirst != nil {
				r.onFirst(c.s.Now())
			}
		}
		if c.rcvNxt < end {
			return
		}
		c.consumed = end
		c.clientSide = c.clientSide[1:]
		if r.onComplete != nil {
			r.onComplete(FetchResult{
				Size:        r.size,
				RequestedAt: r.requestedAt,
				FirstByteAt: r.firstByteAt,
				DoneAt:      c.s.Now(),
			})
		}
	}
}

func max64f(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
