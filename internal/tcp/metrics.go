package tcp

import (
	"repro/internal/obs"
	trace "repro/internal/obs/trace"
)

// Metrics holds the transport's observability hooks. A nil *Metrics (the
// default) keeps the connection uninstrumented at the cost of one pointer
// comparison per operation. Counters and histograms aggregate across every
// connection sharing the metrics (the usual setup: one registry per
// process or per experiment); per-connection numbers stay in Conn.Stats.
//
// Gauges (cwnd, ssthresh, pace rate) are last-writer-wins across
// connections — useful live views for single-flow scenarios and for the
// server binary's dominant connection, not population aggregates.
type Metrics struct {
	Cwnd     *obs.Gauge // congestion window, segments
	Ssthresh *obs.Gauge // slow-start threshold, segments
	PaceRate *obs.Gauge // last applied pace rate, bits/s

	SegmentsSent    *obs.Counter // data segments, incl. retransmits
	BytesSent       *obs.Counter
	DeliveredBytes  *obs.Counter // cumulatively acked bytes
	Retransmits     *obs.Counter // retransmitted segments
	Timeouts        *obs.Counter // RTO expirations
	FastRetransmits *obs.Counter // triple-dupack fast retransmits
	FastRecoveries  *obs.Counter // full recoveries (deflate to ssthresh)
	Established     *obs.Counter // completed handshakes

	SRTT       *obs.Histogram // smoothed RTT after each sample, ms
	PacerSleep *obs.Histogram // pacing delays taken before transmits, ms

	// Recorder receives "tcp_retransmit" (V = seq), "tcp_rto" (V = backed-off
	// RTO ms, Aux = cwnd before collapse), "tcp_fast_retx" (V = seq,
	// Aux = new ssthresh) and "tcp_pace_rate" (V = bits/s) events, with
	// Subj = flow id. Nil skips events.
	Recorder *obs.Recorder
}

// NewMetrics builds a Metrics wired to registry r (nil r yields nil,
// keeping instrumentation off).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Cwnd:            r.Gauge("tcp_cwnd_segments"),
		Ssthresh:        r.Gauge("tcp_ssthresh_segments"),
		PaceRate:        r.Gauge("tcp_pace_rate_bps"),
		SegmentsSent:    r.Counter("tcp_segments_sent"),
		BytesSent:       r.Counter("tcp_bytes_sent"),
		DeliveredBytes:  r.Counter("tcp_delivered_bytes"),
		Retransmits:     r.Counter("tcp_retransmits"),
		Timeouts:        r.Counter("tcp_rto_timeouts"),
		FastRetransmits: r.Counter("tcp_fast_retransmits"),
		FastRecoveries:  r.Counter("tcp_fast_recoveries"),
		Established:     r.Counter("tcp_established"),
		// SRTT buckets: 1 ms … ~16 s, exponential; lab RTTs sit at 5-200 ms.
		SRTT: r.Histogram("tcp_srtt_ms", obs.ExpBuckets(1, 1.5, 24)),
		// Pacer sleeps: 10 µs … ~100 ms.
		PacerSleep: r.Histogram("tcp_pacer_sleep_ms", obs.ExpBuckets(0.01, 1.6, 20)),
		Recorder:   r.Recorder(),
	}
}

// SetMetrics attaches m to the connection (nil detaches).
func (c *Conn) SetMetrics(m *Metrics) { c.metrics = m }

// SetSpan attaches the current fetch span: loss and pace-rate transitions
// (fast retransmits, RTO collapses, SetPacingRate) are annotated on it as
// instants stamped with the sim clock. Nil detaches; callers attach per
// fetch and detach in the fetch callback. Annotation sites guard on the
// field, so a detached connection evaluates no arguments and allocates
// nothing.
func (c *Conn) SetSpan(sp *trace.Span) { c.span = sp }

// setWindowMetrics refreshes the window gauges.
func (c *Conn) setWindowMetrics() {
	m := c.metrics
	if m == nil {
		return
	}
	m.Cwnd.Set(c.cwnd)
	m.Ssthresh.Set(c.ssthresh)
}
