package tcp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// TestWireBurstBound observes packet departures on the wire and checks the
// §5.6 property directly: with pacing at rate R and burst b, no more than b
// data packets ever leave back-to-back (i.e. within a window much shorter
// than b/R), once past the initial token bucket fill.
func TestWireBurstBound(t *testing.T) {
	for _, burst := range []int{4, 8, 16} {
		burst := burst
		t.Run(fmt.Sprintf("burst%d", burst), func(t *testing.T) {
			s := sim.New()
			class := sim.NewClassifier()
			var departures []time.Duration
			// A fast link so serialization does not mask sender bursts; we
			// tap departures by wrapping Send.
			link := sim.NewLink(s, sim.LinkConfig{
				Rate: 1 * units.Gbps, Delay: time.Millisecond, QueueLimit: 10 * units.MB,
			}, class)
			tap := tapSender{inner: link, s: s, times: &departures}

			c := NewConn(s, 1, tap, class,
				sim.LinkConfig{Rate: 1 * units.Gbps, Delay: time.Millisecond},
				Config{PacerBurst: burst})
			rate := 12 * units.Mbps
			c.SetPacingRate(rate)
			c.Fetch(3*units.MB, nil, nil)
			s.Run()

			// Count the longest run of departures spaced by less than a
			// tenth of the per-packet pace interval (1 ms at 12 Mbps).
			perPacket := rate.TimeToSend(1500)
			longest, run := 1, 1
			for i := 1; i < len(departures); i++ {
				if departures[i]-departures[i-1] < perPacket/10 {
					run++
					if run > longest {
						longest = run
					}
				} else {
					run = 1
				}
			}
			if longest > burst {
				t.Errorf("observed a %d-packet back-to-back run, burst limit is %d", longest, burst)
			}
			// The burst allowance should actually be used at chunk start.
			if longest < burst/2 {
				t.Errorf("longest run %d far below burst %d; pacer is over-throttling", longest, burst)
			}
		})
	}
}

// tapSender records departure times of data packets before forwarding.
type tapSender struct {
	inner *sim.Link
	s     *sim.Simulator
	times *[]time.Duration
}

func (t tapSender) Send(p *sim.Packet) bool {
	if !p.IsAck && p.Payload == nil {
		*t.times = append(*t.times, t.s.Now())
	}
	return t.inner.Send(p)
}
