package tcp

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// These tests exercise the connection's less-travelled paths: handshake
// loss, the establishment callback, slow-start restart, timeouts and the
// Trickle-style window cap.

func TestSynLossRecoveredByRetry(t *testing.T) {
	// Drop everything for the first 2 seconds (covering the SYN), then let
	// traffic through; the 3-second SYN retry must establish the
	// connection.
	s := sim.New()
	class := sim.NewClassifier()
	inner := sim.NewLink(s, sim.LinkConfig{
		Rate: 40 * units.Mbps, Delay: 2500 * time.Microsecond, QueueLimit: 100000,
	}, class)
	// A gate on the reverse path would be more precise, but dropping the
	// SYN-ACK on the forward path has the same effect on establishment.
	blocked := true
	gate := senderFunc(func(p *sim.Packet) bool {
		if blocked {
			return false
		}
		return inner.Send(p)
	})
	c := NewConn(s, 1, gate, class,
		sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}, Config{})
	established := false
	c.OnEstablished(func() { established = true })
	var done bool
	c.Fetch(100*units.KB, nil, func(FetchResult) { done = true })
	s.At(2*time.Second, func() { blocked = false })
	s.RunUntil(30 * time.Second)
	if !established {
		t.Fatal("connection never established despite SYN retries")
	}
	if !done {
		t.Fatal("fetch did not complete after establishment")
	}
}

// senderFunc adapts a function to sim.Sender.
type senderFunc func(p *sim.Packet) bool

func (f senderFunc) Send(p *sim.Packet) bool { return f(p) }

func TestOnEstablishedFiresOnce(t *testing.T) {
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{})
	count := 0
	c.OnEstablished(func() { count++ })
	c.Fetch(100*units.KB, nil, nil)
	c.Fetch(100*units.KB, nil, nil)
	net.s.Run()
	if count != 1 {
		t.Errorf("OnEstablished fired %d times", count)
	}
}

func TestSlowStartRestartCollapsesWindowAfterIdle(t *testing.T) {
	// On a long-RTT path the slow-start ramp is expensive, so collapsing
	// the window after idle visibly slows the post-idle chunk.
	run := func(ssr bool) float64 {
		s := sim.New()
		class := sim.NewClassifier()
		fwd := sim.NewLink(s, sim.LinkConfig{
			Rate:       40 * units.Mbps,
			Delay:      50 * time.Millisecond, // 100 ms RTT
			QueueLimit: 4 * (40 * units.Mbps).BytesIn(100*time.Millisecond),
		}, class)
		c := NewConn(s, 1, fwd, class,
			sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 50 * time.Millisecond},
			Config{SlowStartRestart: ssr})
		var secondDur time.Duration
		c.Fetch(4*units.MB, nil, func(r1 FetchResult) {
			// Idle well past the RTO, then fetch again.
			s.Schedule(10*time.Second, func() {
				start := s.Now()
				c.Fetch(2*units.MB, nil, func(r2 FetchResult) {
					secondDur = r2.DoneAt - start
				})
			})
		})
		s.Run()
		return secondDur.Seconds()
	}
	withSSR := run(true)
	withoutSSR := run(false)
	if withSSR <= withoutSSR*1.2 {
		t.Errorf("SSR second chunk (%.3fs) should be clearly slower than without (%.3fs)", withSSR, withoutSSR)
	}
}

func TestCwndCapLimitsThroughput(t *testing.T) {
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{})
	// Cap at 10 segments: throughput ≤ 10×1500×8/RTT ≈ 24 Mbps at the 5 ms
	// base RTT, and no queue builds so the RTT stays at base.
	c.SetCwndCap(10)
	var res FetchResult
	c.Fetch(10*units.MB, nil, func(r FetchResult) { res = r })
	net.s.Run()
	got := res.Throughput().Mbps()
	if got > 25 {
		t.Errorf("capped throughput = %.1f Mbps, want ≤ 24", got)
	}
	if got < 15 {
		t.Errorf("capped throughput = %.1f Mbps, unexpectedly low", got)
	}
	// Removing the cap restores full rate on a second transfer.
	c.SetCwndCap(0)
	c.Fetch(10*units.MB, nil, func(r FetchResult) { res = r })
	net.s.Run()
	if got := res.Throughput().Mbps(); got < 30 {
		t.Errorf("uncapped throughput = %.1f Mbps, want near link rate", got)
	}
}

func TestTimeoutPathGoBackN(t *testing.T) {
	// Block the forward link mid-transfer long enough to force an RTO, then
	// release; the transfer must finish and the timeout must be counted.
	s := sim.New()
	class := sim.NewClassifier()
	inner := sim.NewLink(s, sim.LinkConfig{
		Rate: 10 * units.Mbps, Delay: 2500 * time.Microsecond, QueueLimit: 50000,
	}, class)
	blocked := false
	gate := senderFunc(func(p *sim.Packet) bool {
		if blocked {
			return false
		}
		return inner.Send(p)
	})
	c := NewConn(s, 1, gate, class,
		sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}, Config{})
	done := false
	c.Fetch(2*units.MB, nil, func(FetchResult) { done = true })
	s.At(200*time.Millisecond, func() { blocked = true })
	s.At(1500*time.Millisecond, func() { blocked = false })
	s.RunUntil(time.Minute)
	if !done {
		t.Fatal("transfer did not recover from the outage")
	}
	if c.Stats.Timeouts == 0 {
		t.Error("expected at least one RTO during the outage")
	}
}

func TestRTTDigestPopulated(t *testing.T) {
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{})
	c.Fetch(2*units.MB, nil, nil)
	net.s.Run()
	if c.Stats.RTTSamples == 0 || c.RTT.Count() == 0 {
		t.Fatal("no RTT samples recorded")
	}
	// Median RTT near the 5 ms base on an uncontended short transfer.
	med := c.RTT.Quantile(0.5)
	if med < 4.5 || med > 30 {
		t.Errorf("median RTT = %.1f ms", med)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, units.Bytes) {
		net := newTestNet(40*units.Mbps, 1)
		c := net.conn(1, Config{})
		rng := rand.New(rand.NewSource(5))
		_ = rng
		c.Fetch(8*units.MB, nil, nil)
		net.s.Run()
		return c.Stats.SegmentsSent, c.Stats.RetransmitBytes
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Errorf("simulation not deterministic: (%d,%d) vs (%d,%d)", s1, r1, s2, r2)
	}
}
