package tcp

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// testNet is a one-bottleneck topology: server → (bottleneck link) →
// classifier → client, with private reverse links per connection.
type testNet struct {
	s     *sim.Simulator
	fwd   *sim.Link
	class *sim.Classifier
}

// newTestNet builds the paper's lab topology: a single bottleneck with the
// given rate, 2.5 ms one-way delay each direction (5 ms RTT) and a queue of
// queueBDP × BDP.
func newTestNet(rate units.BitsPerSecond, queueBDP float64) *testNet {
	s := sim.New()
	class := sim.NewClassifier()
	rtt := 5 * time.Millisecond
	bdp := rate.BytesIn(rtt)
	limit := units.Bytes(float64(bdp) * queueBDP)
	fwd := sim.NewLink(s, sim.LinkConfig{
		Rate:       rate,
		Delay:      rtt / 2,
		QueueLimit: limit,
	}, class)
	return &testNet{s: s, fwd: fwd, class: class}
}

func (n *testNet) revCfg() sim.LinkConfig {
	return sim.LinkConfig{Rate: 1 * units.Gbps, Delay: 2500 * time.Microsecond}
}

func (n *testNet) conn(flow sim.FlowID, cfg Config) *Conn {
	return NewConn(n.s, flow, n.fwd, n.class, n.revCfg(), cfg)
}

func TestHandshakeAndSingleFetch(t *testing.T) {
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{})
	var res *FetchResult
	c.Fetch(1500*10, nil, func(r FetchResult) { res = &r })
	net.s.Run()
	if res == nil {
		t.Fatal("fetch did not complete")
	}
	if !c.Stats.HandshakeComplete {
		t.Error("handshake did not complete")
	}
	// 1 RTT handshake + 1 RTT request/response + transfer: at 40 Mbps and
	// 5 ms RTT this is well under 100 ms.
	if res.DoneAt > 100*time.Millisecond {
		t.Errorf("completion at %v, too slow", res.DoneAt)
	}
	if res.FirstByteAt <= res.RequestedAt {
		t.Error("first byte should arrive after the request")
	}
}

func TestThroughputApproachesLinkRate(t *testing.T) {
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{})
	var res FetchResult
	c.Fetch(20*units.MB, nil, func(r FetchResult) { res = r })
	net.s.Run()
	// NewReno without SACK pays a multi-RTT recovery after the slow-start
	// overshoot, so utilization lands in the high 80s.
	got := res.Throughput()
	if got < 32*units.Mbps || got > 41*units.Mbps {
		t.Errorf("bulk throughput = %v, want ≈ 35-40Mbps", got)
	}
}

func TestRTTInflatesWithFullQueue(t *testing.T) {
	// An unpaced bulk flow on a 4×BDP queue should inflate the RTT towards
	// base + queue/rate = 5 ms + 4·5 ms = 25 ms.
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{})
	done := false
	c.Fetch(40*units.MB, nil, func(FetchResult) { done = true })
	net.s.Run()
	if !done {
		t.Fatal("fetch did not complete")
	}
	p90 := c.RTT.Quantile(0.9)
	if p90 < 15 {
		t.Errorf("p90 RTT = %.1fms, expected inflated (>15ms)", p90)
	}
}

func TestPacedFlowKeepsQueueEmpty(t *testing.T) {
	// Pacing at 15 Mbps on a 40 Mbps link: no congestion, RTT stays at the
	// 5 ms floor and there are no retransmits (paper Fig 7 Sammy behaviour).
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{})
	c.SetPacingRate(15 * units.Mbps)
	c.SetPacerBurst(4)
	var res FetchResult
	c.Fetch(10*units.MB, nil, func(r FetchResult) { res = r })
	net.s.Run()
	if c.Stats.Retransmits != 0 {
		t.Errorf("paced flow retransmitted %d segments", c.Stats.Retransmits)
	}
	p90 := c.RTT.Quantile(0.9)
	if p90 > 7 {
		t.Errorf("p90 RTT = %.1fms, want ≈ 5ms floor", p90)
	}
	got := res.Throughput()
	if got < 13*units.Mbps || got > 15.5*units.Mbps {
		t.Errorf("paced throughput = %v, want ≈ 15Mbps", got)
	}
}

func TestPacingIsUpperBoundNotFloor(t *testing.T) {
	// Requesting a pace rate above capacity must degrade gracefully to
	// congestion-control behaviour (§3.2: pacing is an upper bound).
	net := newTestNet(10*units.Mbps, 2)
	c := net.conn(1, Config{})
	c.SetPacingRate(100 * units.Mbps)
	var res FetchResult
	c.Fetch(5*units.MB, nil, func(r FetchResult) { res = r })
	net.s.Run()
	got := res.Throughput()
	if got > 10.5*units.Mbps {
		t.Errorf("throughput %v exceeds link rate", got)
	}
	if got < 8*units.Mbps {
		t.Errorf("throughput %v too far below link rate", got)
	}
}

func TestUnpacedBulkFlowRetransmits(t *testing.T) {
	// Reno on a drop-tail queue must lose packets at the sawtooth peaks.
	net := newTestNet(40*units.Mbps, 1)
	c := net.conn(1, Config{})
	done := false
	c.Fetch(40*units.MB, nil, func(FetchResult) { done = true })
	net.s.Run()
	if !done {
		t.Fatal("fetch did not complete")
	}
	if c.Stats.Retransmits == 0 {
		t.Error("expected drop-tail losses for an unpaced bulk flow")
	}
	if c.Stats.FastRetransmits == 0 {
		t.Error("expected fast retransmits, not only timeouts")
	}
}

func TestAllBytesDeliveredDespiteLosses(t *testing.T) {
	// Reliability invariant: every requested byte is eventually delivered,
	// in order, even across a tiny queue that forces heavy loss.
	net := newTestNet(20*units.Mbps, 0.5)
	c := net.conn(1, Config{})
	var res *FetchResult
	size := 8 * units.MB
	c.Fetch(size, nil, func(r FetchResult) { res = &r })
	net.s.Run()
	if res == nil {
		t.Fatal("fetch did not complete")
	}
	if res.Size != size {
		t.Errorf("size = %v, want %v", res.Size, size)
	}
	if c.Stats.DeliveredBytes < size {
		t.Errorf("delivered %v < requested %v", c.Stats.DeliveredBytes, size)
	}
}

func TestSequentialFetchesShareConnection(t *testing.T) {
	// Sequential chunk downloads on one persistent connection (the video
	// player pattern): completions arrive in order.
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{})
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.Fetch(2*units.MB, nil, func(FetchResult) { order = append(order, i) })
	}
	net.s.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("completion order = %v", order)
	}
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	// Two identical unpaced Reno flows should split a 40 Mbps link roughly
	// evenly over a long transfer.
	net := newTestNet(40*units.Mbps, 4)
	c1 := net.conn(1, Config{})
	c2 := net.conn(2, Config{})
	var r1, r2 FetchResult
	c1.Fetch(20*units.MB, nil, func(r FetchResult) { r1 = r })
	c2.Fetch(20*units.MB, nil, func(r FetchResult) { r2 = r })
	net.s.Run()
	t1, t2 := r1.Throughput().Mbps(), r2.Throughput().Mbps()
	sum := t1 + t2
	if sum < 30 || sum > 42 {
		t.Errorf("aggregate throughput = %.1f Mbps, want ≈ 40", sum)
	}
	ratio := t1 / t2
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("fairness ratio = %.2f (t1=%.1f, t2=%.1f)", ratio, t1, t2)
	}
}

func TestPacedFlowLeavesBandwidthForNeighbor(t *testing.T) {
	// A flow paced to 10 Mbps next to an unpaced flow: the neighbor should
	// get most of the remaining 30 Mbps (paper Fig 8b shape).
	net := newTestNet(40*units.Mbps, 4)
	paced := net.conn(1, Config{})
	paced.SetPacingRate(10 * units.Mbps)
	paced.SetPacerBurst(4)
	bulk := net.conn(2, Config{})
	var rPaced, rBulk FetchResult
	paced.Fetch(12*units.MB, nil, func(r FetchResult) { rPaced = r })
	bulk.Fetch(25*units.MB, nil, func(r FetchResult) { rBulk = r })
	net.s.Run()
	if got := rBulk.Throughput().Mbps(); got < 22 {
		t.Errorf("neighbor throughput = %.1f Mbps, want > 22 (fair share would be 20)", got)
	}
	if got := rPaced.Throughput().Mbps(); got > 10.5 {
		t.Errorf("paced throughput = %.1f Mbps, exceeds pace rate", got)
	}
}

func TestRetransmitFraction(t *testing.T) {
	s := Stats{BytesSent: 1000, RetransmitBytes: 100}
	if got := s.RetransmitFraction(); got != 0.1 {
		t.Errorf("RetransmitFraction = %v", got)
	}
	if got := (Stats{}).RetransmitFraction(); got != 0 {
		t.Errorf("empty RetransmitFraction = %v", got)
	}
}

func TestFetchPanicsOnZeroSize(t *testing.T) {
	net := newTestNet(40*units.Mbps, 4)
	c := net.conn(1, Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Fetch(0, nil, nil)
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.setDefaults()
	if cfg.MSS != 1500 || cfg.InitialCwnd != 10 || cfg.PacerBurst != 40 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.MinRTO != 200*time.Millisecond {
		t.Errorf("MinRTO default = %v", cfg.MinRTO)
	}
}

func TestFetchResultThroughput(t *testing.T) {
	r := FetchResult{
		Size:        units.Bytes(1250000),
		RequestedAt: 0,
		FirstByteAt: time.Second,
		DoneAt:      2 * time.Second,
	}
	if got := r.Throughput(); got != 10*units.Mbps {
		t.Errorf("Throughput = %v, want 10Mbps", got)
	}
	if got := r.ResponseTime(); got != 2*time.Second {
		t.Errorf("ResponseTime = %v", got)
	}
}
