// Package trace records and renders the time series behind the paper's
// trace figures: per-bin throughput (Figures 1 and 7), RTT over time, and
// buffer levels. Output formats are CSV (for plotting) and a compact ASCII
// chart (for terminal inspection and EXPERIMENTS.md).
package trace

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/units"
)

// Series is a named time series with aligned timestamps and values.
type Series struct {
	Name   string
	Unit   string
	Times  []time.Duration
	Values []float64
}

// Add appends one point.
func (s *Series) Add(t time.Duration, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.Times) }

// Max reports the maximum value, or 0 when empty. The scan starts from the
// first element, not 0, so all-negative series (e.g. queueing-delay deltas)
// report their true maximum.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min reports the minimum value, or 0 when empty.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Last reports the most recent value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Summary renders a one-line digest (n, min, mean, max, last) for snapshot
// printers and metrics log lines.
func (s *Series) Summary() string {
	return fmt.Sprintf("%s: n=%d min=%.2f mean=%.2f max=%.2f last=%.2f %s",
		s.Name, s.Len(), s.Min(), s.Mean(), s.Max(), s.Last(), s.Unit)
}

// Mean reports the arithmetic mean of the values, or NaN when empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// ThroughputBinner accumulates transferred bytes into fixed time bins and
// reports a throughput series, which is how Figure 1's "a few seconds of a
// typical session" panels are built.
type ThroughputBinner struct {
	bin  time.Duration
	bins []float64 // bytes per bin
}

// NewThroughputBinner returns a binner with the given bin width.
func NewThroughputBinner(bin time.Duration) *ThroughputBinner {
	if bin <= 0 {
		panic("trace: bin width must be positive")
	}
	return &ThroughputBinner{bin: bin}
}

// AddInterval spreads n bytes uniformly across the interval [start, end),
// the natural way to account a chunk download into bins. A degenerate
// interval credits everything to start's bin.
func (b *ThroughputBinner) AddInterval(start, end time.Duration, n units.Bytes) {
	if n <= 0 {
		return
	}
	if end <= start {
		b.addToBin(int(start/b.bin), float64(n))
		return
	}
	perSecond := float64(n) / (end - start).Seconds()
	for t := start; t < end; {
		binIdx := int(t / b.bin)
		binEnd := time.Duration(binIdx+1) * b.bin
		if binEnd > end {
			binEnd = end
		}
		b.addToBin(binIdx, perSecond*(binEnd-t).Seconds())
		t = binEnd
	}
}

func (b *ThroughputBinner) addToBin(i int, bytes float64) {
	if i < 0 {
		i = 0
	}
	for len(b.bins) <= i {
		b.bins = append(b.bins, 0)
	}
	b.bins[i] += bytes
}

// Series reports the binned throughput in Mbps.
func (b *ThroughputBinner) Series(name string) Series {
	s := Series{Name: name, Unit: "Mbps"}
	for i, bytes := range b.bins {
		mbps := bytes * 8 / b.bin.Seconds() / 1e6
		s.Add(time.Duration(i)*b.bin, mbps)
	}
	return s
}

// CSV renders one or more series with a shared time column (rows are the
// union of all timestamps; missing values are blank).
func CSV(series ...Series) string {
	var sb strings.Builder
	sb.WriteString("seconds")
	for _, s := range series {
		fmt.Fprintf(&sb, ",%s(%s)", s.Name, s.Unit)
	}
	sb.WriteByte('\n')

	// Collect the union of timestamps in order.
	idx := make([]int, len(series))
	for {
		next := time.Duration(math.MaxInt64)
		for i, s := range series {
			if idx[i] < s.Len() && s.Times[idx[i]] < next {
				next = s.Times[idx[i]]
			}
		}
		if next == time.Duration(math.MaxInt64) {
			break
		}
		fmt.Fprintf(&sb, "%.3f", next.Seconds())
		for i, s := range series {
			if idx[i] < s.Len() && s.Times[idx[i]] == next {
				fmt.Fprintf(&sb, ",%.4f", s.Values[idx[i]])
				idx[i]++
			} else {
				sb.WriteByte(',')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ASCII renders a crude fixed-height chart of the series, downsampling to
// width columns. It is meant for terminal output, not publication.
func ASCII(s Series, width, height int) string {
	if width <= 0 || height <= 0 || s.Len() == 0 {
		return ""
	}
	max := s.Max()
	if max <= 0 {
		max = 1
	}
	// Downsample by averaging into width columns.
	cols := make([]float64, width)
	counts := make([]int, width)
	for i, v := range s.Values {
		c := i * width / s.Len()
		cols[c] += v
		counts[c]++
	}
	for i := range cols {
		if counts[i] > 0 {
			cols[i] /= float64(counts[i])
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (max %.1f %s)\n", s.Name, max, s.Unit)
	for row := height; row >= 1; row-- {
		threshold := max * (float64(row) - 0.5) / float64(height)
		for _, v := range cols {
			if v >= threshold {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	return sb.String()
}
