package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Name, s.Unit = "tput", "Mbps"
	s.Add(0, 1)
	s.Add(time.Second, 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Max() != 3 {
		t.Errorf("Max = %v", s.Max())
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %v", s.Mean())
	}
	var empty Series
	if empty.Max() != 0 || !math.IsNaN(empty.Mean()) {
		t.Error("empty series Max/Mean wrong")
	}
}

func TestBinnerSingleInterval(t *testing.T) {
	b := NewThroughputBinner(time.Second)
	// 1 MB over 2 seconds: 4 Mbps in each of two bins.
	b.AddInterval(0, 2*time.Second, 1*units.MB)
	s := b.Series("x")
	if s.Len() != 2 {
		t.Fatalf("bins = %d", s.Len())
	}
	for i, v := range s.Values {
		if math.Abs(v-4) > 1e-9 {
			t.Errorf("bin %d = %v Mbps, want 4", i, v)
		}
	}
}

func TestBinnerIntervalSplitsAcrossBins(t *testing.T) {
	b := NewThroughputBinner(time.Second)
	// 1 MB over [0.5s, 1.5s): half the bytes in each bin.
	b.AddInterval(500*time.Millisecond, 1500*time.Millisecond, 1*units.MB)
	s := b.Series("x")
	if s.Len() != 2 {
		t.Fatalf("bins = %d", s.Len())
	}
	if math.Abs(s.Values[0]-4) > 1e-9 || math.Abs(s.Values[1]-4) > 1e-9 {
		t.Errorf("values = %v, want [4 4]", s.Values)
	}
}

func TestBinnerDegenerateInterval(t *testing.T) {
	b := NewThroughputBinner(time.Second)
	b.AddInterval(3*time.Second, 3*time.Second, 1*units.MB)
	s := b.Series("x")
	if s.Len() != 4 {
		t.Fatalf("bins = %d, want 4", s.Len())
	}
	if s.Values[3] != 8 {
		t.Errorf("bin 3 = %v Mbps, want 8", s.Values[3])
	}
	b.AddInterval(0, time.Second, 0) // zero bytes: no-op
}

func TestBinnerConservesBytesProperty(t *testing.T) {
	// Total bytes in equals total bytes out regardless of intervals.
	f := func(intervals []struct {
		StartMs uint16
		LenMs   uint16
		KB      uint8
	}) bool {
		b := NewThroughputBinner(250 * time.Millisecond)
		var total float64
		for _, iv := range intervals {
			start := time.Duration(iv.StartMs) * time.Millisecond
			end := start + time.Duration(iv.LenMs)*time.Millisecond
			n := units.Bytes(int64(iv.KB)+1) * units.KB
			b.AddInterval(start, end, n)
			total += float64(n)
		}
		var out float64
		for _, bytes := range b.bins {
			out += bytes
		}
		return math.Abs(out-total) < 1e-6*math.Max(total, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCSV(t *testing.T) {
	a := Series{Name: "a", Unit: "Mbps"}
	a.Add(0, 1)
	a.Add(time.Second, 2)
	b := Series{Name: "b", Unit: "ms"}
	b.Add(time.Second, 5)
	got := CSV(a, b)
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), got)
	}
	if lines[0] != "seconds,a(Mbps),b(ms)" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.000,1.0000,") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1.000,2.0000,5.0000") {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestASCII(t *testing.T) {
	s := Series{Name: "tput", Unit: "Mbps"}
	for i := 0; i < 100; i++ {
		v := 1.0
		if i >= 50 {
			v = 10
		}
		s.Add(time.Duration(i)*time.Second, v)
	}
	out := ASCII(s, 20, 5)
	if !strings.Contains(out, "#") {
		t.Error("chart has no marks")
	}
	rows := strings.Split(out, "\n")
	// Header + 5 rows + baseline + trailing empty.
	if len(rows) != 8 {
		t.Errorf("rows = %d:\n%s", len(rows), out)
	}
	// Top row should only mark the second half.
	top := rows[1]
	if strings.Contains(top[:10], "#") || !strings.Contains(top[10:], "#") {
		t.Errorf("top row shape wrong: %q", top)
	}
	if ASCII(Series{}, 10, 5) != "" {
		t.Error("empty series should render empty")
	}
}

func TestBinnerPanicsOnZeroBin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewThroughputBinner(0)
}

func TestSeriesMaxAllNegative(t *testing.T) {
	var s Series
	s.Add(0, -5)
	s.Add(time.Second, -2)
	s.Add(2*time.Second, -9)
	if got := s.Max(); got != -2 {
		t.Errorf("Max of all-negative series = %g, want -2 (was the init-from-zero bug)", got)
	}
	if got := s.Min(); got != -9 {
		t.Errorf("Min = %g, want -9", got)
	}
	if got := s.Last(); got != -9 {
		t.Errorf("Last = %g, want -9", got)
	}
}

func TestSeriesMinMaxLastEmpty(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Min() != 0 || s.Last() != 0 {
		t.Errorf("empty series min/max/last = %g/%g/%g, want all 0", s.Min(), s.Max(), s.Last())
	}
}

func TestSeriesSummary(t *testing.T) {
	s := Series{Name: "tput", Unit: "Mbps"}
	s.Add(0, 4)
	s.Add(time.Second, 8)
	got := s.Summary()
	want := "tput: n=2 min=4.00 mean=6.00 max=8.00 last=8.00 Mbps"
	if got != want {
		t.Errorf("Summary = %q, want %q", got, want)
	}
}
