package netmodel

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// This file cross-validates the analytic path model against the
// packet-level simulator on matched topologies, the validation DESIGN.md
// commits to: the two substrates must agree on regimes (paced throughput
// near the pace rate with floor RTTs; unpaced throughput near capacity
// with inflated RTTs and losses), not on exact numbers.

// matchedTopology builds the packet-level twin of a netmodel Path.
func matchedTopology(p Path) (*sim.Simulator, *tcp.Conn) {
	s := sim.New()
	class := sim.NewClassifier()
	fwd := sim.NewLink(s, sim.LinkConfig{
		Rate:       p.Capacity,
		Delay:      p.BaseRTT / 2,
		QueueLimit: p.QueueBytes,
	}, class)
	conn := tcp.NewConn(s, 1, fwd, class,
		sim.LinkConfig{Rate: 1 * units.Gbps, Delay: p.BaseRTT / 2}, tcp.Config{})
	return s, conn
}

// chunkSequenceSim downloads n chunks of the given size over the simulator
// and reports aggregate throughput, retransmit fraction and median RTT.
func chunkSequenceSim(p Path, n int, size units.Bytes, pace units.BitsPerSecond) (units.BitsPerSecond, float64, float64) {
	s, conn := matchedTopology(p)
	if pace > 0 {
		conn.SetPacingRate(pace)
		conn.SetPacerBurst(4)
	}
	var total units.Bytes
	var dl time.Duration
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			return
		}
		start := s.Now()
		conn.Fetch(size, nil, func(r tcp.FetchResult) {
			total += r.Size
			dl += r.DoneAt - start
			// Chunk gap, like a buffer-full player.
			s.Schedule(2*time.Second, func() { issue(i + 1) })
		})
	}
	issue(0)
	s.RunUntil(time.Duration(n) * 30 * time.Second)
	return units.Rate(total, dl), conn.Stats.RetransmitFraction(), conn.RTT.Quantile(0.5)
}

// chunkSequenceModel is the same workload through the analytic model.
func chunkSequenceModel(p Path, n int, size units.Bytes, pace units.BitsPerSecond, seed int64) (units.BitsPerSecond, float64, float64) {
	c := NewConn(p, rand.New(rand.NewSource(seed)))
	c.Connect()
	var total, sent, retx units.Bytes
	var dl time.Duration
	var rttW, pkts float64
	for i := 0; i < n; i++ {
		r := c.Download(size, pace)
		total += r.Bytes
		sent += r.SentBytes
		retx += r.RetxBytes
		dl += r.Duration
		rttW += r.MeanRTT.Seconds() * 1000 * float64(r.Packets)
		pkts += float64(r.Packets)
	}
	return units.Rate(total, dl), float64(retx) / float64(sent), rttW / pkts
}

func validationPath() Path {
	capacity := 40 * units.Mbps
	rtt := 20 * time.Millisecond
	return Path{
		Capacity:         capacity,
		BaseRTT:          rtt,
		QueueBytes:       2 * capacity.BytesIn(rtt),
		ThroughputJitter: 0.001, // near-deterministic for comparison
		BaseLossRate:     1e-9,
	}
}

func TestPacedRegimeAgreement(t *testing.T) {
	p := validationPath()
	pace := 10 * units.Mbps
	size := 4 * units.MB
	simTput, simRetx, simRTT := chunkSequenceSim(p, 8, size, pace)
	modTput, modRetx, modRTT := chunkSequenceModel(p, 8, size, pace, 1)

	// Throughput within 20% of each other, both near the pace rate.
	ratio := float64(modTput) / float64(simTput)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("paced throughput disagreement: sim %v vs model %v", simTput, modTput)
	}
	// Both regimes report near-zero losses.
	if simRetx > 0.005 || modRetx > 0.005 {
		t.Errorf("paced losses should be ≈0: sim %.4f, model %.4f", simRetx, modRetx)
	}
	// Both RTTs at the base (20 ms) floor.
	if simRTT > 25 || modRTT > 25 {
		t.Errorf("paced RTTs should sit at the floor: sim %.1f ms, model %.1f ms", simRTT, modRTT)
	}
}

func TestUnpacedRegimeAgreement(t *testing.T) {
	p := validationPath()
	size := 6 * units.MB
	simTput, simRetx, simRTT := chunkSequenceSim(p, 8, size, 0)
	modTput, modRetx, modRTT := chunkSequenceModel(p, 8, size, 0, 2)

	// Both near capacity (the sim's NewReno recovers slower, so allow a
	// wide band), and both clearly above the paced regime.
	if simTput < 20*units.Mbps || modTput < 20*units.Mbps {
		t.Errorf("unpaced throughput too low: sim %v, model %v", simTput, modTput)
	}
	// Both congested: losses present, RTTs inflated above the base.
	if simRetx == 0 {
		t.Error("sim unpaced run shows no losses; topology not congesting")
	}
	if modRetx == 0 {
		t.Error("model unpaced run shows no losses")
	}
	if simRTT < 22 || modRTT < 22 {
		t.Errorf("unpaced RTTs should inflate: sim %.1f ms, model %.1f ms", simRTT, modRTT)
	}
}

func TestRegimeOrderingAgreement(t *testing.T) {
	// The central comparative statement both substrates must agree on:
	// pacing reduces throughput, retransmits and RTT for the same workload.
	p := validationPath()
	size := 4 * units.MB

	sPacedT, sPacedR, sPacedD := chunkSequenceSim(p, 6, size, 10*units.Mbps)
	sFreeT, sFreeR, sFreeD := chunkSequenceSim(p, 6, size, 0)
	mPacedT, mPacedR, mPacedD := chunkSequenceModel(p, 6, size, 10*units.Mbps, 3)
	mFreeT, mFreeR, mFreeD := chunkSequenceModel(p, 6, size, 0, 3)

	check := func(name string, paced, free float64) {
		if paced >= free {
			t.Errorf("%s: paced %.4f not below unpaced %.4f", name, paced, free)
		}
	}
	check("sim throughput", float64(sPacedT), float64(sFreeT))
	check("model throughput", float64(mPacedT), float64(mFreeT))
	check("sim retx", sPacedR+1e-9, sFreeR)
	check("model retx", mPacedR+1e-9, mFreeR)
	check("sim rtt", sPacedD, sFreeD)
	check("model rtt", mPacedD, mFreeD)
}
