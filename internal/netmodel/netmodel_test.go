package netmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func path(capMbps float64) Path {
	return Path{
		Capacity: units.BitsPerSecond(capMbps) * units.Mbps,
		BaseRTT:  30 * time.Millisecond,
	}
}

func TestPacedDownloadRidesPaceRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConn(path(100), rng)
	c.Connect()
	// Warm the window with one download.
	c.Download(4*units.MB, 15*units.Mbps)
	r := c.Download(8*units.MB, 15*units.Mbps)
	got := r.Throughput.Mbps()
	if got < 12 || got > 15.5 {
		t.Errorf("paced throughput = %.1f Mbps, want ≈ 15", got)
	}
	if r.MeanRTT > 35*time.Millisecond {
		t.Errorf("paced RTT = %v, want ≈ base 30ms", r.MeanRTT)
	}
	frac := float64(r.RetxBytes) / float64(r.SentBytes)
	if frac > 0.005 {
		t.Errorf("paced retransmit fraction = %v, want ≈ 0", frac)
	}
}

func TestUnpacedDownloadSaturatesAndCongests(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConn(path(100), rng)
	c.Connect()
	c.Download(4*units.MB, 0)
	r := c.Download(16*units.MB, 0)
	// Per-chunk lognormal bandwidth jitter (σ=0.15) can push a single
	// chunk's available bandwidth well above the nominal capacity.
	got := r.Throughput.Mbps()
	if got < 60 || got > 160 {
		t.Errorf("unpaced throughput = %.1f Mbps, want near capacity 100", got)
	}
	if r.MeanRTT <= 31*time.Millisecond {
		t.Errorf("unpaced RTT = %v, want inflated above base", r.MeanRTT)
	}
	if r.RetxBytes == 0 {
		t.Error("unpaced bulk download should retransmit")
	}
}

func TestPacedVsUnpacedShape(t *testing.T) {
	// The Table 2 directional claims at the model level: pacing reduces
	// throughput, retransmit fraction and RTT for the same workload.
	sum := func(pace units.BitsPerSecond, seed int64) (tput, retx, rtt float64) {
		rng := rand.New(rand.NewSource(seed))
		c := NewConn(path(80), rng)
		c.Connect()
		var bytes, sent, retxB units.Bytes
		var dl time.Duration
		var rttW float64
		for i := 0; i < 50; i++ {
			r := c.Download(2*units.MB, pace)
			bytes += r.Bytes
			sent += r.SentBytes
			retxB += r.RetxBytes
			dl += r.Duration
			rttW += r.MeanRTT.Seconds() * float64(r.Packets)
		}
		return units.Rate(bytes, dl).Mbps(), float64(retxB) / float64(sent), rttW
	}
	pTput, pRetx, pRTT := sum(12*units.Mbps, 3)
	uTput, uRetx, uRTT := sum(0, 3)
	if pTput >= uTput*0.6 {
		t.Errorf("paced throughput %.1f not well below unpaced %.1f", pTput, uTput)
	}
	if pRetx >= uRetx {
		t.Errorf("paced retx %.5f not below unpaced %.5f", pRetx, uRetx)
	}
	if pRTT >= uRTT {
		t.Errorf("paced RTT weight %.3f not below unpaced %.3f", pRTT, uRTT)
	}
}

func TestPaceAboveCapacityBehavesAsUnpaced(t *testing.T) {
	// §3.2: a pace rate above available bandwidth degrades to normal
	// congestion-control behaviour.
	rng := rand.New(rand.NewSource(4))
	c := NewConn(path(20), rng)
	c.Connect()
	c.Download(2*units.MB, 0)
	r := c.Download(8*units.MB, 200*units.Mbps)
	if got := r.Throughput.Mbps(); got > 25 {
		t.Errorf("throughput %.1f exceeds capacity 20", got)
	}
	if r.RetxBytes == 0 {
		t.Error("pace above capacity should still congest")
	}
}

func TestCwndPersistsAcrossChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConn(path(100), rng)
	c.Connect()
	before := c.Cwnd()
	c.Download(4*units.MB, 0)
	after := c.Cwnd()
	if after <= before {
		t.Errorf("cwnd did not grow: %v -> %v", before, after)
	}
	// Second chunk should start fast: its duration should be well below a
	// cold-start chunk of the same size.
	r2 := c.Download(2*units.MB, 0)
	cold := NewConn(path(100), rand.New(rand.NewSource(5)))
	cold.Connect()
	rCold := cold.Download(2*units.MB, 0)
	if r2.Duration >= rCold.Duration {
		t.Errorf("warm chunk (%v) not faster than cold chunk (%v)", r2.Duration, rCold.Duration)
	}
}

func TestConnectLatencyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewConn(path(50), rng)
	if d := c.Connect(); d != 30*time.Millisecond {
		t.Errorf("handshake = %v, want 1 base RTT", d)
	}
	if d := c.Connect(); d != 0 {
		t.Errorf("second Connect = %v, want 0", d)
	}
}

func TestDownloadInvariantsProperty(t *testing.T) {
	f := func(seed int64, sizeKB uint16, paceMbps uint8, capMbps uint8) bool {
		capacity := float64(capMbps%200) + 2
		rng := rand.New(rand.NewSource(seed))
		c := NewConn(path(capacity), rng)
		c.Connect()
		size := units.Bytes(int(sizeKB)+10) * units.KB
		pace := units.BitsPerSecond(paceMbps) * units.Mbps / 4
		r := c.Download(size, pace)
		if r.Duration <= 0 || r.FirstByte <= 0 || r.FirstByte > r.Duration {
			return false
		}
		if r.Bytes != size || r.SentBytes < size || r.RetxBytes != r.SentBytes-size {
			return false
		}
		if r.MeanRTT < 30*time.Millisecond-time.Millisecond {
			return false
		}
		return r.Packets > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSlowerPathSlowerDownloads(t *testing.T) {
	dur := func(capMbps float64) time.Duration {
		rng := rand.New(rand.NewSource(7))
		c := NewConn(path(capMbps), rng)
		c.Connect()
		var total time.Duration
		for i := 0; i < 10; i++ {
			total += c.Download(2*units.MB, 0).Duration
		}
		return total
	}
	if dur(10) <= dur(100) {
		t.Error("10 Mbps path should be slower than 100 Mbps path")
	}
}

func TestPanicsOnBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, fn := range map[string]func(){
		"zero capacity": func() { NewConn(Path{}, rng) },
		"nil rng":       func() { NewConn(path(10), nil) },
		"zero size": func() {
			c := NewConn(path(10), rng)
			c.Download(0, 0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
