// Package netmodel is an analytic per-chunk TCP path model used for
// population-scale A/B experiments, where the packet-level simulator in
// package sim would be needlessly slow. It models what the paper's
// production measurements capture per chunk download: how long the download
// took, how many bytes were retransmitted, and what RTTs the connection's
// packets saw.
//
// The model is a round-based abstraction of TCP Reno on a drop-tail
// bottleneck:
//
//   - below capacity (paced), the flow rides at the pace rate after a
//     slow-start ramp, the queue stays empty, RTT sits at the base and
//     losses are negligible — the Fig 7 "Sammy" regime;
//   - at or above capacity (unpaced, or pace above capacity), slow start
//     overshoots the pipe, drop-tail losses cut the window, and congestion
//     avoidance saws between W/2 and W with the queue partially full —
//     the Fig 7 "control" regime with inflated RTTs and retransmits.
//
// Integration tests validate the model's regimes against the packet-level
// simulator.
package netmodel

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/fault"
	trace "repro/internal/obs/trace"
	"repro/internal/units"
)

// Path describes one user's bottleneck path. Fields are immutable after
// construction; connections carry the mutable state.
type Path struct {
	// Capacity is the bottleneck (access link) rate. Required.
	Capacity units.BitsPerSecond
	// BaseRTT is the uncongested round-trip time. Default 30 ms.
	BaseRTT time.Duration
	// QueueBytes is the bottleneck buffer size. Default 1.5×BDP at
	// BaseRTT, a common access-link provisioning.
	QueueBytes units.Bytes
	// MSS is the segment size. Default 1500 B.
	MSS units.Bytes
	// BaseLossRate is the residual random loss independent of congestion
	// (transmission errors, cross-traffic transients). Default 2e-4.
	BaseLossRate float64
	// ThroughputJitter is the lognormal σ of per-chunk available-bandwidth
	// variation. Default 0.15.
	ThroughputJitter float64
	// AmbientQueueDelay is extra round-trip delay from queues this flow does
	// not control (cross traffic at the access link, upstream congestion).
	// It affects paced and unpaced downloads alike, which is what keeps the
	// paper's RTT improvement at -14% rather than a collapse to the
	// propagation floor. Default 0.
	AmbientQueueDelay time.Duration
	// DropoutProb is the per-chunk probability that available bandwidth
	// collapses for the duration of the download (wifi interference, a
	// congestion spike) to DropoutFactor of nominal. Dropouts are what make
	// real populations rebuffer occasionally; they hit paced and unpaced
	// sessions alike. Default 0 (off).
	DropoutProb float64
	// DropoutFactor is the capacity multiplier during a dropout; default
	// 0.05 when DropoutProb is set.
	DropoutFactor float64
	// OnsetBurstLoss calibrates the drops caused by each on-period's first
	// flight: after an off period an unpaced sender blasts a full window at
	// line rate into a mostly-empty queue (the burstiness §5.6 measures).
	// The excess over the buffer is dropped, scaled by this fraction
	// (self-clocking and burst limits absorb the rest). Paced downloads
	// spread the flight and avoid it entirely. Default 0 (off).
	OnsetBurstLoss float64
	// Faults, when set, injects scripted pathologies on top of the analytic
	// model: a Gilbert-Elliott burst-loss chain (instantiated per connection
	// from the connection's RNG, replacing the i.i.d.-only BaseLossRate
	// picture) and a capacity timeline whose blackouts stall downloads and
	// whose step drops scale available bandwidth. Default nil (off).
	Faults *fault.Profile
}

func (p Path) withDefaults() Path {
	if p.BaseRTT <= 0 {
		p.BaseRTT = 30 * time.Millisecond
	}
	if p.MSS <= 0 {
		p.MSS = 1500
	}
	if p.QueueBytes <= 0 {
		p.QueueBytes = units.Bytes(1.5 * float64(p.Capacity.BytesIn(p.BaseRTT)))
	}
	if p.BaseLossRate <= 0 {
		p.BaseLossRate = 2e-4
	}
	if p.ThroughputJitter <= 0 {
		p.ThroughputJitter = 0.15
	}
	if p.DropoutProb > 0 && p.DropoutFactor <= 0 {
		p.DropoutFactor = 0.05
	}
	return p
}

// Result summarizes one chunk download.
type Result struct {
	Duration   time.Duration // request to last byte (includes Stalled)
	FirstByte  time.Duration // request to first byte (includes Stalled)
	Bytes      units.Bytes   // payload bytes (the chunk size)
	SentBytes  units.Bytes   // payload + retransmissions
	RetxBytes  units.Bytes   // retransmitted bytes
	MeanRTT    time.Duration // mean RTT experienced during the download
	Packets    int64         // data packets carried
	Throughput units.BitsPerSecond
	// Stalled is time spent waiting out a scripted blackout before the
	// transfer could make progress (0 without a fault timeline).
	Stalled time.Duration
}

// TraceAttrs copies the download's summary onto sp as span attributes for
// the "netmodel.download" span. Nil-safe.
func (r Result) TraceAttrs(sp *trace.Span) {
	if sp == nil {
		return
	}
	sp.SetAttr("bytes", float64(r.Bytes)).
		SetAttr("sent_bytes", float64(r.SentBytes)).
		SetAttr("retx_bytes", float64(r.RetxBytes)).
		SetAttr("mean_rtt_ms", r.MeanRTT.Seconds()*1000).
		SetAttr("tput_bps", float64(r.Throughput))
	if r.Stalled > 0 {
		sp.SetAttr("stalled_s", r.Stalled.Seconds())
	}
}

// Conn is a persistent connection over a Path, carrying congestion state
// (cwnd) across sequential chunk downloads the way a real player's
// persistent HTTP connection does.
type Conn struct {
	path Path
	rng  *rand.Rand
	ge   *fault.GilbertElliott // per-connection burst-loss chain, nil when off

	cwndSegs    float64 // congestion window, segments
	ssthresh    float64 // slow-start threshold, segments
	established bool
	chunks      int64         // downloads completed on this connection
	clock       time.Duration // connection time, advanced by Download
}

// NewConn returns a connection over p using rng for stochastic components.
// rng must not be nil.
func NewConn(p Path, rng *rand.Rand) *Conn {
	if p.Capacity <= 0 {
		panic("netmodel: path capacity must be positive")
	}
	if rng == nil {
		panic("netmodel: rng must not be nil")
	}
	c := &Conn{path: p.withDefaults(), rng: rng, cwndSegs: 10, ssthresh: 1 << 30}
	if p.Faults != nil {
		ge, err := fault.NewGilbertElliott(p.Faults.Loss, rng)
		if err != nil {
			panic("netmodel: " + err.Error())
		}
		c.ge = ge
	}
	return c
}

// baseRTT is the flow's uncongested RTT including ambient cross-traffic
// queueing it cannot avoid.
func (c *Conn) baseRTT() time.Duration {
	return c.path.BaseRTT + c.path.AmbientQueueDelay
}

// Connect performs the handshake if needed and reports its latency (one
// base RTT, as in the simulator's SYN/SYN-ACK).
func (c *Conn) Connect() time.Duration {
	if c.established {
		return 0
	}
	c.established = true
	return c.baseRTT()
}

// Cwnd reports the current congestion window in segments (for tests).
func (c *Conn) Cwnd() float64 { return c.cwndSegs }

// Download models fetching size bytes with an optional pace-rate cap
// (0 = unpaced). It advances the connection's congestion state. Scripted
// faults are applied against the connection's own clock (the sum of prior
// download durations); callers that track session time — which includes off
// periods — should use DownloadAt.
func (c *Conn) Download(size units.Bytes, pace units.BitsPerSecond) Result {
	return c.DownloadAt(c.clock, size, pace)
}

// DownloadAt models fetching size bytes starting at session time start, with
// an optional pace-rate cap (0 = unpaced). It advances the connection's
// congestion state. The start time only matters when the path carries a
// fault timeline: a request issued during a blackout stalls until the
// blackout ends (reported in Result.Stalled), and a step bandwidth drop
// covering start scales the available bandwidth.
func (c *Conn) DownloadAt(start time.Duration, size units.Bytes, pace units.BitsPerSecond) Result {
	if size <= 0 {
		panic("netmodel: download size must be positive")
	}
	p := c.path
	// Per-chunk available bandwidth with lognormal jitter.
	jitter := math.Exp(c.rng.NormFloat64()*p.ThroughputJitter - p.ThroughputJitter*p.ThroughputJitter/2)
	avail := units.BitsPerSecond(float64(p.Capacity) * jitter)
	if p.DropoutProb > 0 && c.rng.Float64() < p.DropoutProb {
		avail = units.BitsPerSecond(float64(avail) * p.DropoutFactor)
	}

	// Scripted capacity faults: wait out a blackout, then scale by the step
	// multiplier in effect once the transfer can start.
	var stall time.Duration
	if p.Faults != nil && p.Faults.Timeline != nil {
		tl := p.Faults.Timeline
		effective := start
		if tl.Multiplier(effective) == 0 {
			recovery := tl.NextRecovery(effective)
			stall = recovery - effective
			effective = recovery
		}
		if m := tl.Multiplier(effective); m > 0 && m < 1 {
			avail = units.BitsPerSecond(float64(avail) * m)
		}
	}

	var res Result
	if pace > 0 && float64(pace) < 0.95*float64(avail) {
		res = c.downloadSmooth(size, pace, avail)
	} else {
		res = c.downloadCongested(size, avail)
	}

	// Burst loss from the Gilbert-Elliott chain: each lost segment is
	// retransmitted, and each distinct burst costs roughly one recovery
	// round trip on top of the retransmitted bytes themselves.
	if c.ge != nil && p.Faults.Loss.Enabled() {
		segs := int64((size + p.MSS - 1) / p.MSS)
		lost, bursts := c.ge.LossRun(segs)
		if lost > 0 {
			retx := units.Bytes(lost) * p.MSS
			res.RetxBytes += retx
			res.SentBytes += retx
			res.Packets += lost
			res.Duration += secondsToDuration(float64(retx)*8/float64(avail)) +
				time.Duration(bursts)*c.baseRTT()
		}
	}

	if stall > 0 {
		res.Stalled = stall
		res.FirstByte += stall
		res.Duration += stall
	}
	transfer := res.Duration - res.FirstByte
	if transfer <= 0 {
		transfer = time.Nanosecond
	}
	res.Throughput = units.Rate(size, transfer)
	c.clock = start + res.Duration
	return res
}

// downloadSmooth is the paced regime: rate-limited below capacity, empty
// queue, base RTT.
func (c *Conn) downloadSmooth(size units.Bytes, pace, avail units.BitsPerSecond) Result {
	p := c.path
	rtt := c.baseRTT()
	segs := float64((size + p.MSS - 1) / p.MSS)
	targetW := windowFor(pace, rtt, p.MSS)

	var t float64 // seconds of transfer time after the first byte
	remaining := segs
	// Slow-start ramp if the window is below the pacing BDP: each round
	// delivers cwnd segments in one RTT and doubles the window.
	for c.cwndSegs < targetW && remaining > 0 {
		send := math.Min(c.cwndSegs, remaining)
		remaining -= send
		t += rtt.Seconds()
		c.cwndSegs = math.Min(c.cwndSegs*2, targetW)
	}
	if remaining > 0 {
		t += remaining * float64(p.MSS) * 8 / float64(pace)
	}
	// Residual random loss: each lost segment costs a retransmit; recovery
	// time is already inside the pace-limited schedule.
	lost := c.binomialLosses(int64(segs), p.BaseLossRate)
	retx := units.Bytes(lost) * p.MSS

	first := rtt // request + first response byte
	dur := first + secondsToDuration(t)
	c.chunks++
	return c.result(size, retx, dur, first, rtt, int64(segs)+lost)
}

// downloadCongested is the unpaced regime: slow start overshoots the pipe,
// then Reno saws against the drop-tail queue.
func (c *Conn) downloadCongested(size units.Bytes, avail units.BitsPerSecond) Result {
	p := c.path
	base := c.baseRTT()
	// The pipe the window must fill includes ambient queueing: a flow with
	// 25 ms of cross-traffic delay needs twice the window of one without.
	bdpSegs := float64(avail.BytesIn(base)) / float64(p.MSS)
	wMax := bdpSegs + float64(p.QueueBytes)/float64(p.MSS) // window at which the queue overflows
	if wMax < 4 {
		wMax = 4
	}
	segs := float64((size + p.MSS - 1) / p.MSS)

	var t float64         // seconds after first byte
	var rttWeight float64 // Σ rtt·segments, for the mean RTT
	var lost int64
	remaining := segs

	// On-period onset burst: once the connection is warm, each new chunk
	// begins with a line-rate flight of roughly cwnd segments into a
	// drained queue; what the buffer cannot absorb is dropped.
	if p.OnsetBurstLoss > 0 && c.chunks > 0 {
		queueSegs := float64(p.QueueBytes) / float64(p.MSS)
		if excess := c.cwndSegs - queueSegs; excess > 0 {
			burstLost := int64(p.OnsetBurstLoss * excess)
			if burstLost > 0 {
				lost += burstLost
				remaining += float64(burstLost)
			}
		}
	}

	rttAt := func(w float64) time.Duration {
		// Queue delay grows once the window exceeds the BDP.
		excess := (w - bdpSegs) * float64(p.MSS)
		if excess < 0 {
			excess = 0
		}
		if excess > float64(p.QueueBytes) {
			excess = float64(p.QueueBytes)
		}
		return base + secondsToDuration(excess*8/float64(avail))
	}

	// Phase 1: slow start, only while below both the pipe and ssthresh
	// (after the first loss the connection stays in congestion avoidance).
	for c.cwndSegs < wMax && c.cwndSegs < c.ssthresh && remaining > 0 {
		rtt := rttAt(c.cwndSegs)
		send := math.Min(c.cwndSegs, remaining)
		remaining -= send
		t += rtt.Seconds()
		rttWeight += rtt.Seconds() * send
		next := c.cwndSegs * 2
		if next >= wMax {
			// Overshoot: everything beyond the pipe is dropped in one burst.
			over := int64(next - wMax)
			if over > 0 {
				lost += over
				remaining += float64(over) // retransmitted later
			}
			c.cwndSegs = wMax / 2
			c.ssthresh = c.cwndSegs
			// One recovery RTT.
			t += rtt.Seconds()
			break
		}
		c.cwndSegs = next
	}

	// Phase 2: congestion-avoidance sawtooth. Model cycle-by-cycle: the
	// window climbs linearly from its current value to wMax, loses one
	// segment, halves.
	for remaining > 0 {
		w := c.cwndSegs
		if w >= wMax {
			w = wMax / 2
		}
		// One cycle: rounds from w to wMax, one segment per round increase.
		rounds := wMax - w
		if rounds < 1 {
			rounds = 1
		}
		avgW := (w + wMax) / 2
		rtt := rttAt(avgW)
		cycleSegs := avgW * rounds
		// The self-clocked rate is avgW·MSS per RTT, but it can never exceed
		// the bottleneck rate (the queue-clamped RTT would otherwise let
		// degenerate tiny-wMax paths overshoot capacity).
		rate := math.Min(avgW*float64(p.MSS)*8/rtt.Seconds(), float64(avail))
		cycleTime := cycleSegs * float64(p.MSS) * 8 / rate
		if cycleSegs >= remaining {
			frac := remaining / cycleSegs
			t += cycleTime * frac
			rttWeight += rtt.Seconds() * remaining
			c.cwndSegs = w + rounds*frac
			remaining = 0
			break
		}
		remaining -= cycleSegs
		t += cycleTime
		rttWeight += rtt.Seconds() * cycleSegs
		lost++ // drop-tail loss at the peak
		remaining++
		c.cwndSegs = wMax / 2
		c.ssthresh = c.cwndSegs
	}

	lost += c.binomialLosses(int64(segs), p.BaseLossRate)
	retx := units.Bytes(lost) * p.MSS
	first := rttAt(c.cwndSegs)
	dur := first + secondsToDuration(t)

	meanRTT := base
	if total := segs + float64(lost); total > 0 && rttWeight > 0 {
		meanRTT = secondsToDuration(rttWeight / segs)
	}
	c.chunks++
	return c.result(size, retx, dur, first, meanRTT, int64(segs)+lost)
}

// result assembles a Result.
func (c *Conn) result(size, retx units.Bytes, dur, first, meanRTT time.Duration, packets int64) Result {
	return Result{
		Duration:   dur,
		FirstByte:  first,
		Bytes:      size,
		SentBytes:  size + retx,
		RetxBytes:  retx,
		MeanRTT:    meanRTT,
		Packets:    packets,
		Throughput: units.Rate(size, dur-first+1),
	}
}

// binomialLosses draws the number of randomly lost segments out of n at
// rate p, using a normal approximation for large n.
func (c *Conn) binomialLosses(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	mean := float64(n) * p
	if mean < 5 {
		var k int64
		for i := int64(0); i < n; i++ {
			if c.rng.Float64() < p {
				k++
			}
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int64(math.Round(mean + c.rng.NormFloat64()*sd))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// windowFor is the window (segments) that sustains rate over rtt.
func windowFor(rate units.BitsPerSecond, rtt time.Duration, mss units.Bytes) float64 {
	w := float64(rate.BytesIn(rtt)) / float64(mss)
	if w < 2 {
		w = 2
	}
	return w
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
