package netmodel

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/units"
)

func faultPath(profile *fault.Profile) Path {
	return Path{
		Capacity: 50 * units.Mbps,
		BaseRTT:  20 * time.Millisecond,
		Faults:   profile,
	}
}

func TestDownloadAtBlackoutStalls(t *testing.T) {
	profile := &fault.Profile{Timeline: fault.MustTimeline(
		fault.Phase{Start: 10 * time.Second, Duration: 3 * time.Second, Multiplier: 0},
	)}
	clean := NewConn(faultPath(nil), rand.New(rand.NewSource(5)))
	faulty := NewConn(faultPath(profile), rand.New(rand.NewSource(5)))
	clean.Connect()
	faulty.Connect()

	// A download landing 1 s into the blackout waits out the remaining 2 s.
	cres := clean.DownloadAt(11*time.Second, units.MB, 0)
	fres := faulty.DownloadAt(11*time.Second, units.MB, 0)
	if fres.Stalled != 2*time.Second {
		t.Errorf("Stalled = %v, want the 2s left of the blackout", fres.Stalled)
	}
	if fres.FirstByte != cres.FirstByte+2*time.Second {
		t.Errorf("FirstByte %v should be the clean path's %v plus the stall", fres.FirstByte, cres.FirstByte)
	}
	if fres.Duration != cres.Duration+2*time.Second {
		t.Errorf("Duration %v should be the clean path's %v plus the stall", fres.Duration, cres.Duration)
	}
	// Outside the blackout the faulty path behaves exactly like the clean one.
	cres2 := clean.DownloadAt(20*time.Second, units.MB, 0)
	fres2 := faulty.DownloadAt(20*time.Second, units.MB, 0)
	if fres2.Stalled != 0 || fres2.Duration != cres2.Duration {
		t.Errorf("outside the blackout: stalled %v, duration %v vs clean %v",
			fres2.Stalled, fres2.Duration, cres2.Duration)
	}
}

func TestDownloadAtBandwidthStepSlowsTransfer(t *testing.T) {
	profile := &fault.Profile{Timeline: fault.MustTimeline(
		fault.Phase{Start: 30 * time.Second, Duration: 30 * time.Second, Multiplier: 0.2},
	)}
	conn := NewConn(faultPath(profile), rand.New(rand.NewSource(9)))
	conn.Connect()
	before := conn.DownloadAt(5*time.Second, 2*units.MB, 0)
	during := conn.DownloadAt(40*time.Second, 2*units.MB, 0)
	if during.Duration < 3*before.Duration {
		t.Errorf("a 5x capacity cut should slow the transfer well past 3x: %v vs %v",
			during.Duration, before.Duration)
	}
	if during.Stalled != 0 {
		t.Errorf("a bandwidth step is not a blackout; Stalled = %v", during.Stalled)
	}
}

func TestDownloadBurstLossCostsRetransmits(t *testing.T) {
	profile := &fault.Profile{
		Loss: fault.GEConfig{PGoodToBad: 0.02, PBadToGood: 0.2, LossBad: 0.5},
	}
	run := func(seed int64, p *fault.Profile) Result {
		conn := NewConn(faultPath(p), rand.New(rand.NewSource(seed)))
		conn.Connect()
		return conn.Download(4*units.MB, 0)
	}
	clean := run(3, nil)
	faulty := run(3, profile)
	if faulty.RetxBytes <= clean.RetxBytes {
		t.Errorf("burst loss added no retransmissions: %v vs clean %v",
			faulty.RetxBytes, clean.RetxBytes)
	}
	if faulty.Duration <= clean.Duration {
		t.Errorf("burst loss added no recovery time: %v vs clean %v",
			faulty.Duration, clean.Duration)
	}
	// Determinism: the same seed reproduces the same faulty result.
	again := run(3, profile)
	if again != faulty {
		t.Errorf("faulty download not reproducible under a fixed seed:\n%+v\n%+v", again, faulty)
	}
}

func TestDownloadAdvancesConnectionClock(t *testing.T) {
	// Download (no explicit start) must chain on the connection clock so
	// back-to-back chunks see a monotonically advancing fault timeline.
	profile := &fault.Profile{Timeline: fault.MustTimeline(
		fault.Phase{Start: 0, Duration: time.Second, Multiplier: 0},
	)}
	conn := NewConn(faultPath(profile), rand.New(rand.NewSource(2)))
	conn.Connect()
	first := conn.Download(units.MB, 0)
	if first.Stalled != time.Second {
		t.Fatalf("first download at t=0 should wait out the 1s blackout, stalled %v", first.Stalled)
	}
	second := conn.Download(units.MB, 0)
	if second.Stalled != 0 {
		t.Errorf("second download starts after the blackout; stalled %v", second.Stalled)
	}
}
