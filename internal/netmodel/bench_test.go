package netmodel

import (
	"math/rand"
	"testing"

	"repro/internal/units"
)

// BenchmarkDownloadCongested measures the analytic model's cost per unpaced
// chunk — the number that bounds A/B population throughput.
func BenchmarkDownloadCongested(b *testing.B) {
	c := NewConn(path(80), rand.New(rand.NewSource(1)))
	c.Connect()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Download(3*units.MB, 0)
	}
}

// BenchmarkDownloadSmooth is the paced regime's cost per chunk.
func BenchmarkDownloadSmooth(b *testing.B) {
	c := NewConn(path(80), rand.New(rand.NewSource(1)))
	c.Connect()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Download(3*units.MB, 18*units.Mbps)
	}
}
