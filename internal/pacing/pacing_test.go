package pacing

import (
	"net/http"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := http.Header{}
	SetHeader(h, 15*units.Mbps)
	if got := FromHeader(h); got != 15*units.Mbps {
		t.Errorf("round trip = %v, want 15Mbps", got)
	}
	if h.Get(Header) != "15000000" {
		t.Errorf("native header = %q", h.Get(Header))
	}
	if h.Get(CMCDHeader) != "rtp=15000" {
		t.Errorf("CMCD header = %q", h.Get(CMCDHeader))
	}
}

func TestHeaderClear(t *testing.T) {
	h := http.Header{}
	SetHeader(h, 15*units.Mbps)
	SetHeader(h, NoPacing)
	if h.Get(Header) != "" || h.Get(CMCDHeader) != "" {
		t.Error("NoPacing should clear both headers")
	}
	if got := FromHeader(h); got != NoPacing {
		t.Errorf("empty headers = %v, want NoPacing", got)
	}
}

func TestFromHeaderCMCDFallback(t *testing.T) {
	h := http.Header{}
	h.Set(CMCDHeader, "bl=2000,rtp=12000,sid=\"abc\"")
	if got := FromHeader(h); got != 12*units.Mbps {
		t.Errorf("CMCD rtp = %v, want 12Mbps", got)
	}
}

func TestFromHeaderGarbage(t *testing.T) {
	for _, v := range []string{"fast", "-5", "0"} {
		h := http.Header{}
		h.Set(Header, v)
		if got := FromHeader(h); got != NoPacing {
			t.Errorf("header %q = %v, want NoPacing", v, got)
		}
	}
	h := http.Header{}
	h.Set(CMCDHeader, "rtp=junk")
	if got := FromHeader(h); got != NoPacing {
		t.Errorf("bad CMCD = %v, want NoPacing", got)
	}
}

func TestPacerUnpacedAlwaysImmediate(t *testing.T) {
	p := NewPacer(NoPacing, 0)
	for i := 0; i < 10; i++ {
		if d := p.Delay(0, 1e9); d != 0 {
			t.Fatalf("unpaced pacer delayed: %v", d)
		}
	}
}

func TestPacerBurstThenSpacing(t *testing.T) {
	// 12 Mbps with a 4-packet burst: first 4 × 1500 B go immediately, then
	// each further packet waits 1 ms (1500 B at 12 Mbps).
	p := NewPacer(12*units.Mbps, 4*1500)
	now := time.Duration(0)
	for i := 0; i < 4; i++ {
		if d := p.Delay(now, 1500); d != 0 {
			t.Fatalf("burst packet %d delayed %v", i, d)
		}
	}
	d := p.Delay(now, 1500)
	if d != time.Millisecond {
		t.Fatalf("post-burst delay = %v, want 1ms", d)
	}
	// After waiting, the next packet should again wait ~1 ms.
	now += d
	if d2 := p.Delay(now, 1500); d2 != time.Millisecond {
		t.Fatalf("second post-burst delay = %v, want 1ms", d2)
	}
}

func TestPacerLongRunRateProperty(t *testing.T) {
	// Over many sends, achieved rate never exceeds pace rate (plus one
	// burst of slack).
	f := func(rateMbps, burstPkts uint8, npkts uint16) bool {
		rate := units.BitsPerSecond(int(rateMbps)+1) * units.Mbps
		burst := units.Bytes(int(burstPkts)%40+1) * 1500
		n := int(npkts)%500 + 10
		p := NewPacer(rate, burst)
		now := time.Duration(0)
		sent := units.Bytes(0)
		for i := 0; i < n; i++ {
			d := p.Delay(now, 1500)
			now += d
			sent += 1500
		}
		if now == 0 {
			return sent <= burst
		}
		// Allow a small relative tolerance for nanosecond truncation of
		// each returned delay.
		achieved := units.Rate(sent-burst, now)
		return float64(achieved) <= float64(rate)*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPacerTokensCapAtBurst(t *testing.T) {
	p := NewPacer(12*units.Mbps, 2*1500)
	// A long idle period must not accumulate more than one burst of credit.
	now := 10 * time.Second
	for i := 0; i < 2; i++ {
		if d := p.Delay(now, 1500); d != 0 {
			t.Fatalf("packet %d delayed %v after idle", i, d)
		}
	}
	if d := p.Delay(now, 1500); d == 0 {
		t.Fatal("third packet after idle should be delayed")
	}
}

func TestPacerSetRateMidstream(t *testing.T) {
	p := NewPacer(12*units.Mbps, 1500)
	now := time.Duration(0)
	now += p.Delay(now, 1500)
	now += p.Delay(now, 1500)
	// Halve the rate: spacing doubles.
	p.SetRate(now, 6*units.Mbps, 1500)
	d := p.Delay(now, 1500)
	if d < 1900*time.Microsecond || d > 2100*time.Microsecond {
		t.Errorf("post-change delay = %v, want ≈2ms", d)
	}
}

func TestPacerRefund(t *testing.T) {
	p := NewPacer(12*units.Mbps, 1500)
	if d := p.Delay(0, 1500); d != 0 {
		t.Fatalf("first send delayed %v", d)
	}
	p.Refund(1500)
	if d := p.Delay(0, 1500); d != 0 {
		t.Fatal("refunded tokens should allow immediate send")
	}
}

func TestPacerPanicsOnZeroBurst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPacer(1*units.Mbps, 0)
}
