// The shared pacing engine: a hashed timer wheel that parks paced streams
// until their token buckets allow the next burst, waking whole batches of
// due streams from one goroutine per wheel instead of one sleeping
// goroutine-timer pair per stream.
//
// Scale rationale (ROADMAP item 3, paper §3.2/§5.6): a CDN edge paces tens
// of thousands of concurrent responses. Per-response time.Sleep pacing
// costs one runtime timer arm per burst per stream — at 10k streams sending
// ~10 bursts/s that is ~100k timer wakeups/s of scheduler pressure. The
// wheel quantizes deadlines into slots (default 2 ms) so one timer fire
// releases every stream due in that slot; the engine's wakeup rate is
// bounded by 1/slot regardless of stream count.
package pacing

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/units"
)

// ErrEngineClosed is returned by Stream.Await when the stream or its engine
// has been closed — the drain signal for in-flight paced writes.
var ErrEngineClosed = errors.New("pacing: engine closed")

// EngineConfig sizes an Engine. The zero value selects sane defaults.
type EngineConfig struct {
	// Wheels is the number of independent timer wheels (each with its own
	// lock and runner goroutine); streams are sharded across them
	// round-robin. Default min(4, GOMAXPROCS).
	Wheels int
	// Slot is the wheel granularity: deadlines are rounded up to the next
	// slot boundary, so it bounds both added latency per park (≤ one slot,
	// and the token bucket's wake credit repays it) and the engine's wakeup
	// rate (≤ 1/Slot per wheel). Default 2 ms.
	Slot time.Duration
	// Slots is the number of slots per wheel, rounded up to a power of two.
	// Deadlines beyond Slot×Slots simply stay parked for extra wheel
	// revolutions. Default 1024 (a ~2 s horizon at the default Slot).
	Slots int

	// manual, set by tests in this package, disables runner goroutines and
	// the wall clock; the test drives each wheel with advanceTo and an
	// explicit virtual time, making release order fully deterministic.
	manual bool
}

// Engine is a shared pacer for real-time streams. Register a stream per
// paced response, Await before each burst, Close the stream when the
// response finishes. Engines start with no goroutines; each wheel's runner
// starts on demand and exits as soon as its last stream closes, so an idle
// engine costs nothing and leaks nothing.
//
// All methods are safe for concurrent use.
type Engine struct {
	wheels []*wheel
	wg     sync.WaitGroup
	mu     sync.Mutex
	next   int
	closed bool
}

// EngineStats is a point-in-time snapshot of engine activity, summed over
// wheels. Counters are cumulative since engine creation.
type EngineStats struct {
	Streams  int    // registered streams
	Parked   int    // streams currently waiting in a wheel slot
	Wakeups  uint64 // runner wakeups (timer fires + kicks)
	Batches  uint64 // wakeups that released at least one stream
	Released uint64 // streams released from slots
}

// NewEngine builds an engine from cfg (zero value for defaults).
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Wheels <= 0 {
		cfg.Wheels = runtime.GOMAXPROCS(0)
		if cfg.Wheels > 4 {
			cfg.Wheels = 4
		}
	}
	if cfg.Slot <= 0 {
		cfg.Slot = 2 * time.Millisecond
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1024
	}
	size := 1
	for size < cfg.Slots {
		size <<= 1
	}
	e := &Engine{wheels: make([]*wheel, cfg.Wheels)}
	for i := range e.wheels {
		w := &wheel{
			eng:       e,
			slot:      cfg.Slot,
			mask:      int64(size - 1),
			slots:     make([]slotList, size),
			epoch:     time.Now(), //sammy:nondeterministic-ok: the engine paces real sockets on the wall clock; simulations use the virtual-clock Pacer directly
			manual:    cfg.manual,
			kick:      make(chan struct{}, 1),
			sleepTick: math.MaxInt64,
		}
		e.wheels[i] = w
	}
	return e
}

var defaultEngine struct {
	once sync.Once
	e    *Engine
}

// Default returns the process-wide shared engine, created on first use with
// default configuration. It is never closed; because wheel runners exit
// when idle, holding it costs nothing between bursts of work.
func Default() *Engine {
	defaultEngine.once.Do(func() { defaultEngine.e = NewEngine(EngineConfig{}) })
	return defaultEngine.e
}

// Register adds a paced stream to the engine. The stream's token bucket has
// wake credit enabled (see Pacer.EnableWakeCredit) so slot quantization and
// timer oversleep do not erode sustained throughput. Close the stream when
// the response it paces completes.
func (e *Engine) Register(rate units.BitsPerSecond, burst units.Bytes) *Stream {
	if burst <= 0 {
		burst = 4 * 1500
	}
	e.mu.Lock()
	w := e.wheels[e.next%len(e.wheels)]
	e.next++
	closed := e.closed
	e.mu.Unlock()

	s := &Stream{w: w, release: make(chan error, 1)}
	s.pacer = *NewPacer(rate, burst)
	s.pacer.EnableWakeCredit()
	if closed {
		s.closed = true
		return s
	}
	w.mu.Lock()
	if w.closed {
		s.closed = true
		w.mu.Unlock()
		return s
	}
	w.streams++
	if !w.running && !w.manual {
		w.running = true
		e.wg.Add(1)
		go w.run()
	}
	w.mu.Unlock()
	return s
}

// Close shuts the engine down: parked streams are released with
// ErrEngineClosed, runner goroutines exit, and subsequent Await calls fail
// fast. It blocks until every runner has returned, so a caller that drains
// its server and then closes the engine is guaranteed no engine goroutines
// outlive it.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	for _, w := range e.wheels {
		w.mu.Lock()
		w.closed = true
		var rel []*Stream
		for i := range w.slots {
			for s := w.slots[i].head; s != nil; s = s.next {
				rel = append(rel, s)
			}
		}
		for _, s := range rel {
			w.removeLocked(s)
		}
		w.mu.Unlock()
		for _, s := range rel {
			s.release <- ErrEngineClosed
		}
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	e.wg.Wait()
}

// Stats sums activity over all wheels.
func (e *Engine) Stats() EngineStats {
	var st EngineStats
	for _, w := range e.wheels {
		w.mu.Lock()
		st.Streams += w.streams
		st.Parked += w.parked
		st.Wakeups += w.wakeups
		st.Batches += w.batches
		st.Released += w.released
		w.mu.Unlock()
	}
	return st
}

// slotList is an intrusive doubly-linked list of parked streams; intrusive
// links keep park/unpark allocation-free.
type slotList struct {
	head, tail *Stream
}

func (l *slotList) push(s *Stream) {
	s.prev = l.tail
	s.next = nil
	if l.tail != nil {
		l.tail.next = s
	} else {
		l.head = s
	}
	l.tail = s
}

func (l *slotList) remove(s *Stream) {
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		l.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		l.tail = s.prev
	}
	s.prev, s.next = nil, nil
}

// wheel is one shard of the engine: a circular slot array indexed by
// deadline tick, a cursor that sweeps it, and at most one runner goroutine.
type wheel struct {
	eng   *Engine
	slot  time.Duration
	mask  int64
	epoch time.Time
	kick  chan struct{} // wakes the runner early (cap 1, non-blocking sends)

	mu        sync.Mutex
	slots     []slotList
	cursor    int64 // next tick the runner will sweep
	parked    int
	streams   int
	running   bool
	closed    bool
	manual    bool
	manualNow time.Duration // virtual time when manual
	sleepTick int64         // tick the runner is sleeping toward (MaxInt64: waiting on kick)
	batch     []*Stream     // runner's reusable release scratch

	wakeups  uint64
	batches  uint64
	released uint64
}

// now returns wheel-relative time.
func (w *wheel) now() time.Duration {
	if w.manual {
		return w.manualNow
	}
	return time.Since(w.epoch) //sammy:nondeterministic-ok: the engine paces real sockets on the wall clock; simulations use the virtual-clock Pacer directly
}

// tickAfter converts a deadline d from now into the wheel tick that covers
// it, rounding up so a release is never early.
func (w *wheel) tickAfter(now, d time.Duration) int64 {
	deadline := now + d
	t := int64((deadline + w.slot - 1) / time.Duration(w.slot))
	if t < w.cursor {
		t = w.cursor
	}
	return t
}

// insertLocked parks s at tick. Callers hold w.mu.
func (w *wheel) insertLocked(s *Stream, tick int64, now time.Duration) {
	if w.parked == 0 {
		// Nothing was parked, so the cursor may be far behind the clock;
		// jump it forward so the next sweep doesn't walk dead slots.
		if cur := int64(now / w.slot); cur > w.cursor {
			w.cursor = cur
		}
	}
	s.tick = tick
	s.parked = true
	s.parkedAt = now
	w.slots[tick&w.mask].push(s)
	w.parked++
}

// removeLocked unparks s without releasing it. Callers hold w.mu.
func (w *wheel) removeLocked(s *Stream) {
	w.slots[s.tick&w.mask].remove(s)
	s.parked = false
	w.parked--
}

// advanceLocked sweeps the cursor up to now, collecting due streams into
// w.batch. Callers hold w.mu and must send each batched stream's release
// after unlocking.
func (w *wheel) advanceLocked(now time.Duration) []*Stream {
	w.batch = w.batch[:0]
	cur := int64(now / w.slot)
	for w.cursor <= cur {
		l := &w.slots[w.cursor&w.mask]
		for s := l.head; s != nil; {
			nxt := s.next
			if s.tick <= cur {
				w.removeLocked(s)
				s.waited += now - s.parkedAt
				w.batch = append(w.batch, s)
			}
			s = nxt
		}
		w.cursor++
		if w.parked == 0 {
			// Fast-forward across the empty tail.
			if w.cursor < cur {
				w.cursor = cur
			}
		}
	}
	w.released += uint64(len(w.batch))
	if len(w.batch) > 0 {
		w.batches++
	}
	return w.batch
}

// nextDueTickLocked scans for the earliest tick holding a parked stream, or
// -1 when nothing is parked. Callers hold w.mu.
func (w *wheel) nextDueTickLocked() int64 {
	if w.parked == 0 {
		return -1
	}
	minAny := int64(math.MaxInt64)
	size := w.mask + 1
	for i := int64(0); i < size; i++ {
		t := w.cursor + i
		for s := w.slots[t&w.mask].head; s != nil; s = s.next {
			if s.tick == t {
				return t
			}
			if s.tick < minAny {
				minAny = s.tick
			}
		}
	}
	// Every parked stream is more than one revolution out; wake at the
	// earliest of them (harmlessly early — the sweep just parks on).
	return minAny
}

// run is the wheel's single runner goroutine. It exits when the wheel has
// no registered streams (restarted by the next Register) or the engine
// closes, so idle and drained engines hold zero goroutines.
func (w *wheel) run() {
	defer w.eng.wg.Done()
	//sammy:sharedpacer-ok: this is the engine — the one shared timer that multiplexes every parked stream
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		w.mu.Lock()
		if w.closed || w.streams == 0 {
			w.running = false
			w.sleepTick = math.MaxInt64
			w.mu.Unlock()
			return
		}
		now := w.now()
		w.wakeups++
		batch := w.advanceLocked(now)
		next := w.nextDueTickLocked()
		var wait time.Duration
		if next >= 0 {
			w.sleepTick = next
			wait = time.Duration(next)*w.slot - now
			if wait < 0 {
				wait = 0
			}
		} else {
			w.sleepTick = math.MaxInt64
		}
		w.mu.Unlock()
		for _, s := range batch {
			s.release <- nil
		}
		if next < 0 {
			<-w.kick
			continue
		}
		timer.Reset(wait)
		select {
		case <-w.kick:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-timer.C:
		}
	}
}

// maybeKick wakes the runner if tick is earlier than what it is sleeping
// toward. Callers hold w.mu; the send itself is non-blocking.
func (w *wheel) maybeKickLocked(tick int64) bool {
	return tick < w.sleepTick
}

func (w *wheel) kickRunner() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// advanceTo drives a manual wheel to virtual time now and returns the
// streams released, in deterministic slot-then-FIFO order. Test-only.
func (w *wheel) advanceTo(now time.Duration) []*Stream {
	w.mu.Lock()
	w.manualNow = now
	w.wakeups++
	batch := w.advanceLocked(now)
	out := make([]*Stream, len(batch))
	copy(out, batch)
	w.mu.Unlock()
	return out
}

// Stream is one paced response registered with an engine. It owns a
// token bucket (with wake credit) and a parking spot on its wheel; Await
// blocks the calling goroutine until the bucket allows the next burst.
type Stream struct {
	w       *wheel
	pacer   Pacer
	release chan error

	// Wheel linkage and accounting, all guarded by w.mu.
	next, prev *Stream
	tick       int64
	parked     bool
	closed     bool
	parkedAt   time.Duration
	waited     time.Duration
}

// Await blocks until the stream may send n bytes, reserving the tokens. It
// returns nil when the caller may send, ctx.Err() if the context is
// cancelled first (the reservation is refunded), or ErrEngineClosed if the
// stream or engine closed while waiting.
func (s *Stream) Await(ctx context.Context, n units.Bytes) error {
	w := s.w
	w.mu.Lock()
	if s.closed || w.closed {
		w.mu.Unlock()
		return ErrEngineClosed
	}
	now := w.now()
	d := s.pacer.Delay(now, n)
	if d <= 0 {
		w.mu.Unlock()
		return nil
	}
	tick := w.tickAfter(now, d)
	w.insertLocked(s, tick, now)
	kick := w.maybeKickLocked(tick)
	w.mu.Unlock()
	if kick {
		w.kickRunner()
	}
	select {
	case err := <-s.release:
		return err
	case <-ctx.Done():
		w.mu.Lock()
		if s.parked {
			w.removeLocked(s)
			s.pacer.Refund(n)
			w.mu.Unlock()
			return ctx.Err()
		}
		w.mu.Unlock()
		// A release was already committed for us; consume it so the channel
		// stays clean, then hand the tokens back.
		<-s.release
		w.mu.Lock()
		s.pacer.Refund(n)
		w.mu.Unlock()
		return ctx.Err()
	}
}

// SetRate applies a mid-flight pace-rate change. If the stream is parked,
// its wheel slot is re-keyed in place: the already-reserved deficit is
// re-priced at the new rate and the stream moves to the matching slot (or
// releases immediately if the new rate clears it) — no state is rebuilt and
// the waiting goroutine never observes the change.
func (s *Stream) SetRate(rate units.BitsPerSecond, burst units.Bytes) {
	w := s.w
	w.mu.Lock()
	now := w.now()
	s.pacer.SetRate(now, rate, burst)
	if !s.parked {
		w.mu.Unlock()
		return
	}
	d := s.pacer.DeficitDelay(now)
	w.removeLocked(s)
	if d <= 0 {
		s.waited += now - s.parkedAt
		w.released++
		w.mu.Unlock()
		s.release <- nil
		return
	}
	tick := w.tickAfter(now, d)
	w.insertLocked(s, tick, s.parkedAt)
	kick := w.maybeKickLocked(tick)
	w.mu.Unlock()
	if kick {
		w.kickRunner()
	}
}

// Rate reports the stream's current pace rate.
func (s *Stream) Rate() units.BitsPerSecond {
	s.w.mu.Lock()
	defer s.w.mu.Unlock()
	return s.pacer.Rate()
}

// Waited reports the cumulative time this stream has spent parked — the
// paced-idle time the rate limit injected.
func (s *Stream) Waited() time.Duration {
	s.w.mu.Lock()
	defer s.w.mu.Unlock()
	return s.waited
}

// Close deregisters the stream. A goroutine blocked in Await is released
// with ErrEngineClosed; when the wheel's last stream closes its runner
// exits, so a fully-drained engine holds no goroutines.
func (s *Stream) Close() {
	w := s.w
	w.mu.Lock()
	if s.closed {
		w.mu.Unlock()
		return
	}
	s.closed = true
	released := false
	if s.parked {
		w.removeLocked(s)
		released = true
	}
	w.streams--
	kick := w.streams == 0 && w.running
	w.mu.Unlock()
	if released {
		s.release <- ErrEngineClosed
	}
	if kick {
		w.kickRunner()
	}
}
