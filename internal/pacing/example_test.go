package pacing_test

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/pacing"
	"repro/internal/units"
)

// ExampleSetHeader shows the client half of application-informed pacing:
// the ABR's chosen pace rate travels to the server in request headers, in
// both the native and CMCD forms.
func ExampleSetHeader() {
	h := http.Header{}
	pacing.SetHeader(h, 15*units.Mbps)
	fmt.Println(h.Get(pacing.Header))
	fmt.Println(h.Get(pacing.CMCDHeader))
	fmt.Println(pacing.FromHeader(h))
	// Output:
	// 15000000
	// rtp=15000
	// 15.00Mbps
}

// ExamplePacer demonstrates the token-bucket behaviour the transport relies
// on: a full burst goes immediately, then sends are spaced at the rate.
func ExamplePacer() {
	p := pacing.NewPacer(12*units.Mbps, 4*1500) // 4-packet burst
	now := time.Duration(0)
	for i := 0; i < 6; i++ {
		d := p.Delay(now, 1500)
		fmt.Printf("packet %d waits %v\n", i, d)
		now += d
	}
	// Output:
	// packet 0 waits 0s
	// packet 1 waits 0s
	// packet 2 waits 0s
	// packet 3 waits 0s
	// packet 4 waits 1ms
	// packet 5 waits 1ms
}
