package pacing

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/units"
)

// FuzzFromHeader throws arbitrary header contents at the pace-rate parser:
// it must never panic, never return a negative rate, and must round-trip
// every rate SetHeader can produce.
func FuzzFromHeader(f *testing.F) {
	f.Add("8000000", "")
	f.Add("", "rtp=8000")
	f.Add("notanumber", "rtp=notanumber")
	f.Add("-5", "rtp=-5")
	f.Add("9223372036854775807", "rtp=9223372036854775807")
	f.Add("0", "bl=2000,rtp=1234,tb=16800")
	f.Add("1e9", " rtp = 12 ,,rtp=34")
	f.Add("\x00", "rtp=\xff")
	f.Fuzz(func(t *testing.T, native, cmcd string) {
		h := http.Header{}
		// Header values with invalid bytes can't be set via Set; assign
		// directly, as a hostile proxy would put them on the wire.
		h[Header] = []string{native}
		h[CMCDHeader] = []string{cmcd}
		rate := FromHeader(h)
		if rate < 0 {
			t.Fatalf("FromHeader(%q, %q) = %v; negative rates must parse as NoPacing",
				native, cmcd, rate)
		}
		// Whatever came out must survive a SetHeader/FromHeader round trip
		// modulo CMCD's kbps granularity.
		h2 := http.Header{}
		SetHeader(h2, rate)
		back := FromHeader(h2)
		if rate > 0 && back != rate {
			t.Fatalf("round trip lost the rate: %v -> %v", rate, back)
		}
		if rate == 0 && back != NoPacing {
			t.Fatalf("zero rate should clear the headers, got %v", back)
		}
	})
}

// FuzzPacerDelay drives the token bucket with arbitrary rates, bursts and
// send sizes: delays must never be negative and the bucket must never grant
// more than rate allows over the run.
func FuzzPacerDelay(f *testing.F) {
	f.Add(int64(8_000_000), int64(6000), int64(1500), uint8(10))
	f.Add(int64(1), int64(1), int64(1), uint8(3))
	f.Fuzz(func(t *testing.T, rate, burst, n int64, steps uint8) {
		if rate <= 0 || burst <= 0 || n <= 0 || n > 1<<20 || rate > 1<<40 || burst > 1<<30 {
			t.Skip()
		}
		p := NewPacer(units.BitsPerSecond(rate), units.Bytes(burst))
		var now time.Duration
		for i := uint8(0); i < steps; i++ {
			d := p.Delay(now, units.Bytes(n))
			if d < 0 {
				t.Fatalf("negative delay %v (rate %d, burst %d, n %d)", d, rate, burst, n)
			}
			now += d + time.Nanosecond
		}
	})
}
