// Package pacing implements application-informed pacing, the paper's
// mechanism for letting an ABR algorithm set an upper bound on the server's
// packet-by-packet sending rate (§3.2).
//
// It provides three pieces: the PaceRate value that flows from the ABR
// algorithm to the transport, the HTTP header encoding used to carry it to a
// server (including the CMCD "rtp" form supported by CDNs), and a
// token-bucket Pacer that transports consult before each transmission.
package pacing

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/units"
)

// Header is the HTTP request header carrying the requested pace rate in bits
// per second, in the style of Fastly's client-socket-pace support.
const Header = "X-Sammy-Pace-Rate-Bps"

// CMCDHeader is the Common Media Client Data request header; its "rtp" key
// (requested throughput, in kilobits per second) is the standardized way to
// ask a CDN to limit server-side throughput.
const CMCDHeader = "CMCD-Request"

// NoPacing requests that the transport send as fast as congestion control
// allows, the behaviour of a conventional video session.
const NoPacing units.BitsPerSecond = 0

// SetHeader writes rate onto an outgoing request, in both the native and
// CMCD forms. A zero rate clears both headers (no pacing).
func SetHeader(h http.Header, rate units.BitsPerSecond) {
	if rate <= 0 {
		h.Del(Header)
		h.Del(CMCDHeader)
		return
	}
	h.Set(Header, strconv.FormatInt(int64(rate), 10))
	h.Set(CMCDHeader, fmt.Sprintf("rtp=%d", int64(rate/units.Kbps)))
}

// FromHeader extracts the requested pace rate from an incoming request,
// preferring the native header and falling back to the CMCD rtp key. It
// returns NoPacing when neither is present or parseable.
func FromHeader(h http.Header) units.BitsPerSecond {
	if v := h.Get(Header); v != "" {
		if bps, err := strconv.ParseInt(v, 10, 64); err == nil && bps > 0 {
			return units.BitsPerSecond(bps)
		}
	}
	if v := h.Get(CMCDHeader); v != "" {
		for _, part := range strings.Split(v, ",") {
			part = strings.TrimSpace(part)
			if rest, ok := strings.CutPrefix(part, "rtp="); ok {
				if kbps, err := strconv.ParseInt(rest, 10, 64); err == nil && kbps > 0 {
					return units.BitsPerSecond(kbps) * units.Kbps
				}
			}
		}
	}
	return NoPacing
}

// Pacer is a token-bucket rate limiter over a virtual clock. The transport
// asks when the next burst of bytes may be sent; the pacer answers with a
// delay. A zero-rate pacer always answers "now", so unpaced transports pay
// no cost.
//
// The bucket depth is the configured burst size, matching the paper's §5.6:
// pacing with a burst of b packets sends up to b packets back-to-back, then
// waits for tokens. Pacer is not safe for concurrent use; the real-conn
// wrapper in package cdn adds locking.
type Pacer struct {
	rate  units.BitsPerSecond
	burst units.Bytes // bucket depth in bytes

	tokens   float64       // current tokens, in bytes
	lastFill time.Duration // virtual time of the last refill

	// wakeCredit, when enabled, credits timer oversleep back into the
	// bucket (see EnableWakeCredit). wakeAt is the virtual time the caller
	// intended to wake at after the last positive Delay; zero means no
	// sleep is in flight.
	wakeCredit bool
	wakeAt     time.Duration
}

// NewPacer returns a pacer limiting throughput to rate with the given burst
// depth. A rate of NoPacing disables limiting. Burst must be positive when
// rate is set; it is conventionally burstPackets × MSS.
func NewPacer(rate units.BitsPerSecond, burst units.Bytes) *Pacer {
	if rate > 0 && burst <= 0 {
		panic("pacing: burst must be positive when pacing is enabled")
	}
	return &Pacer{rate: rate, burst: burst, tokens: float64(burst)}
}

// EnableWakeCredit makes the pacer credit timer oversleep back into the
// bucket. Real clocks and coarse timer wheels wake a sleeper *after* the
// requested delay; with a plain token bucket the tokens accrued during the
// overshoot are lost to the burst cap, so sustained throughput drifts below
// the requested rate by roughly oversleep/period. With wake credit, the
// first refill at or past the intended wake time stretches the cap by
// rate × oversleep, so exactly the bytes owed for the elapsed wall time are
// honoured and sustained throughput converges to the requested rate.
//
// The credit only ever covers scheduling latency of an in-flight Delay —
// idle time with no sleep pending accrues nothing beyond the burst — and it
// is off by default so virtual-clock simulations (where a transport may
// legitimately send later than the pace deadline) keep their exact
// historical behaviour.
func (p *Pacer) EnableWakeCredit() { p.wakeCredit = true }

// Rate reports the configured pace rate.
func (p *Pacer) Rate() units.BitsPerSecond { return p.rate }

// Burst reports the configured bucket depth in bytes.
func (p *Pacer) Burst() units.Bytes { return p.burst }

// SetRate changes the pace rate at virtual time now, preserving accumulated
// tokens up to the burst bound. This is how per-chunk pace-rate changes are
// applied mid-connection.
func (p *Pacer) SetRate(now time.Duration, rate units.BitsPerSecond, burst units.Bytes) {
	p.refill(now)
	p.rate = rate
	if burst > 0 {
		p.burst = burst
	}
	if p.tokens > float64(p.burst) {
		p.tokens = float64(p.burst)
	}
}

// Delay reports how long the caller must wait at virtual time now before
// sending n bytes, and reserves the tokens. A zero return means "send now".
// Callers must send exactly the reserved bytes after the returned delay (or
// call Refund).
func (p *Pacer) Delay(now time.Duration, n units.Bytes) time.Duration {
	if p.rate <= 0 {
		return 0
	}
	p.refill(now)
	p.tokens -= float64(n)
	if p.tokens >= 0 {
		return 0
	}
	// Deficit must be earned at the pace rate.
	deficit := -p.tokens
	d := time.Duration(deficit * 8 / float64(p.rate) * float64(time.Second))
	if p.wakeCredit {
		p.wakeAt = now + d
	}
	return d
}

// DeficitDelay reports how long the caller must wait at virtual time now for
// the bucket to return to zero, without reserving further tokens. It is how
// the engine re-keys a parked stream after a mid-flight rate change: the
// already-reserved bytes are re-priced at the new rate.
func (p *Pacer) DeficitDelay(now time.Duration) time.Duration {
	if p.rate <= 0 {
		return 0
	}
	p.refill(now)
	if p.tokens >= 0 {
		return 0
	}
	d := time.Duration(-p.tokens * 8 / float64(p.rate) * float64(time.Second))
	if p.wakeCredit {
		p.wakeAt = now + d
	}
	return d
}

// Refund returns n reserved bytes to the bucket, used when a planned
// transmission is abandoned.
func (p *Pacer) Refund(n units.Bytes) {
	if p.rate <= 0 {
		return
	}
	// The planned transmission (and its pending wake, if any) is abandoned.
	p.wakeAt = 0
	p.tokens += float64(n)
	if p.tokens > float64(p.burst) {
		p.tokens = float64(p.burst)
	}
}

// refill accrues tokens for the time elapsed since the last refill.
func (p *Pacer) refill(now time.Duration) {
	if now <= p.lastFill {
		return
	}
	elapsed := now - p.lastFill
	p.lastFill = now
	if p.rate <= 0 {
		return
	}
	cap := float64(p.burst)
	if p.wakeCredit && p.wakeAt > 0 && now >= p.wakeAt {
		// The caller intended to send at wakeAt and the timer woke it late;
		// tokens accrued during the overshoot are scheduling latency, not
		// idle hoarding, so stretch the cap to keep them for this refill.
		cap += float64(p.rate) / 8 * (now - p.wakeAt).Seconds()
		p.wakeAt = 0
	}
	p.tokens += float64(p.rate) / 8 * elapsed.Seconds()
	if p.tokens > cap {
		p.tokens = cap
	}
}
