package pacing

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/units"
)

// TestEnginePacesSingleStream checks end-to-end wall-clock pacing through
// Await: 60 bursts of 6 KB at 8 Mbps should take ≈354 ms (the first burst
// is free) and never finish early.
func TestEnginePacesSingleStream(t *testing.T) {
	defer leakcheck.Check(t)
	e := NewEngine(EngineConfig{})
	defer e.Close()
	s := e.Register(8*units.Mbps, 6000)
	defer s.Close()

	const bursts = 60
	start := time.Now() //sammy:nondeterministic-ok: real-time engine test measures actual wakeup latency against the wall clock
	for i := 0; i < bursts; i++ {
		if err := s.Await(context.Background(), 6000); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start) //sammy:nondeterministic-ok: real-time engine test measures actual wakeup latency against the wall clock
	want := (8 * units.Mbps).TimeToSend(6000 * (bursts - 1))
	if elapsed < want*9/10 {
		t.Errorf("finished in %v, faster than the pace allows (want ≥ %v)", elapsed, want*9/10)
	}
	if elapsed > want*2 {
		t.Errorf("finished in %v, want ≈ %v", elapsed, want)
	}
	if s.Waited() <= 0 {
		t.Error("stream reports zero waited time")
	}
}

// TestEngineWakeCreditConvergence is the coarse-timer drift regression: the
// wheel quantizes every deadline up to a 2 ms slot (a deliberately coarse,
// always-oversleeping timer), yet sustained throughput must converge to the
// requested rate within 1% because the token bucket credits the oversleep
// back at each refill.
func TestEngineWakeCreditConvergence(t *testing.T) {
	defer leakcheck.Check(t)
	e := NewEngine(EngineConfig{Slot: 2 * time.Millisecond})
	defer e.Close()
	const (
		rate  = 16 * units.Mbps
		burst = 4000 // 2 ms of tokens: every park oversleeps by up to a full period
	)
	s := e.Register(rate, burst)
	defer s.Close()

	var sent units.Bytes
	start := time.Now() //sammy:nondeterministic-ok: real-time engine test measures actual wakeup latency against the wall clock
	for time.Since(start) < 2*time.Second { //sammy:nondeterministic-ok: real-time engine test measures actual wakeup latency against the wall clock
		if err := s.Await(context.Background(), burst); err != nil {
			t.Fatal(err)
		}
		sent += burst
	}
	elapsed := time.Since(start) //sammy:nondeterministic-ok: real-time engine test measures actual wakeup latency against the wall clock
	got := units.Rate(sent-burst, elapsed) // first burst is free
	errPct := 100 * (float64(got) - float64(rate)) / float64(rate)
	t.Logf("achieved %.3f Mbps vs %.3f requested (%.2f%% error) over %v", got.Mbps(), rate.Mbps(), errPct, elapsed)
	if errPct > 1 || errPct < -1 {
		t.Errorf("sustained rate error %.2f%% exceeds 1%%", errPct)
	}
}

// TestPacerWakeCreditExact drives the raw token bucket with a deliberately
// oversleeping injected clock. With wake credit the long-run rate error
// must stay under 1%; without it the same schedule drifts well below the
// requested rate, which is the bug being pinned.
func TestPacerWakeCreditExact(t *testing.T) {
	const (
		rate      = 8 * units.Mbps
		burst     = units.Bytes(6000)
		oversleep = 10 * time.Millisecond // far beyond the 6 ms burst period
		total     = units.Bytes(12e6)     // ≈12 s simulated
	)
	withCredit := runWithOversleep(t, rate, burst, oversleep, total, true)
	withoutCredit := runWithOversleep(t, rate, burst, oversleep, total, false)
	t.Logf("rate error: %.2f%% with wake credit, %.2f%% without", withCredit, withoutCredit)
	if withCredit > 1 || withCredit < -1 {
		t.Errorf("with wake credit: rate error %.2f%%, want within 1%%", withCredit)
	}
	if withoutCredit > -5 {
		t.Errorf("without wake credit: rate error %.2f%%, expected <-5%% drift (is the regression fixture still oversleeping?)", withoutCredit)
	}
}

// runWithOversleep plays a paced send loop against a virtual clock whose
// every sleep overshoots by oversleep, returning the percentage rate error.
func runWithOversleep(t *testing.T, rate units.BitsPerSecond, burst units.Bytes, oversleep time.Duration, total units.Bytes, credit bool) float64 {
	t.Helper()
	p := NewPacer(rate, burst)
	if credit {
		p.EnableWakeCredit()
	}
	var now time.Duration
	var sent units.Bytes
	for sent < total {
		if d := p.Delay(now, burst); d > 0 {
			now += d + oversleep
		}
		sent += burst
	}
	got := units.Rate(sent, now)
	return 100 * (float64(got) - float64(rate)) / float64(rate)
}

// TestPacerDefaultSemanticsUnchanged pins the virtual-clock Pacer's exact
// historical arithmetic with wake credit off: the simulated transports'
// golden traces depend on it.
func TestPacerDefaultSemanticsUnchanged(t *testing.T) {
	p := NewPacer(8*units.Mbps, 6000)
	// Burst empties the bucket; deficit priced at the rate.
	if d := p.Delay(0, 6000); d != 0 {
		t.Fatalf("first burst delayed %v", d)
	}
	if d := p.Delay(0, 6000); d != 6*time.Millisecond {
		t.Fatalf("deficit delay = %v, want 6ms", d)
	}
	// Waking 10 ms late (4 ms past the deadline): a plain bucket refills
	// those 4 ms of tokens but caps at burst, so the next burst leaves
	// tokens at exactly 10ms*1MBps - 6000 - 6000 = -2000 → 2 ms delay.
	if d := p.Delay(10*time.Millisecond, 6000); d != 2*time.Millisecond {
		t.Fatalf("post-oversleep delay = %v, want 2ms (token cap must not stretch by default)", d)
	}
}

// TestEngineChurn exercises register/unregister/re-rate mid-flight from
// many goroutines; run under -race it is the engine's concurrency test.
func TestEngineChurn(t *testing.T) {
	defer leakcheck.Check(t)
	e := NewEngine(EngineConfig{Slot: time.Millisecond})
	defer e.Close()

	const workers = 64
	ctx, cancel := context.WithTimeout(context.Background(), 800*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	var bursts atomic.Int64
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for ctx.Err() == nil {
				rate := units.BitsPerSecond(1+rng.Intn(50)) * units.Mbps
				s := e.Register(rate, 1500)
				for j := 0; j < rng.Intn(20); j++ {
					if err := s.Await(ctx, 1500); err != nil {
						break
					}
					bursts.Add(1)
					if rng.Intn(4) == 0 {
						s.SetRate(units.BitsPerSecond(1+rng.Intn(50))*units.Mbps, 1500)
					}
				}
				s.Close()
			}
		}(int64(i))
	}
	wg.Wait()
	if bursts.Load() == 0 {
		t.Fatal("no bursts completed")
	}
	st := e.Stats()
	if st.Parked != 0 {
		t.Errorf("streams still parked after churn: %+v", st)
	}
	if st.Streams != 0 {
		t.Errorf("streams still registered after churn: %+v", st)
	}
}

// TestEngineAwaitCancel checks both cancellation races: a stream still
// parked in its slot, and one whose release was committed concurrently
// with the cancel. Either way Await returns promptly with ctx.Err() and
// the wheel is left clean.
func TestEngineAwaitCancel(t *testing.T) {
	defer leakcheck.Check(t)
	e := NewEngine(EngineConfig{})
	defer e.Close()
	s := e.Register(100*units.Kbps, 1500) // 1500 B burst ≈ 120 ms/park
	defer s.Close()

	if err := s.Await(context.Background(), 1500); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now() //sammy:nondeterministic-ok: real-time engine test measures actual wakeup latency against the wall clock
	err := s.Await(ctx, 1500)
	if err != context.DeadlineExceeded {
		t.Fatalf("Await under cancelled ctx = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond { //sammy:nondeterministic-ok: real-time engine test measures actual wakeup latency against the wall clock
		t.Errorf("cancelled Await took %v, want prompt return", d)
	}
	if st := e.Stats(); st.Parked != 0 {
		t.Errorf("stream left parked after cancel: %+v", st)
	}
	// The refunded reservation must not have corrupted the bucket: the next
	// burst is paced, not free beyond the burst size.
	if err := s.Await(context.Background(), 1500); err != nil {
		t.Fatal(err)
	}
}

// TestEngineCloseReleasesParked checks drain semantics: Close releases a
// parked stream with ErrEngineClosed and leaves zero engine goroutines.
func TestEngineCloseReleasesParked(t *testing.T) {
	defer leakcheck.Check(t)
	e := NewEngine(EngineConfig{})
	s := e.Register(10*units.Kbps, 1500) // ≈1.2 s/park: definitely parked when we close
	errc := make(chan error, 1)
	go func() {
		s.Await(context.Background(), 1500) // free first burst
		errc <- s.Await(context.Background(), 1500)
	}()
	time.Sleep(50 * time.Millisecond)
	e.Close()
	select {
	case err := <-errc:
		if err != ErrEngineClosed {
			t.Fatalf("Await during Close = %v, want ErrEngineClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Await not released by Close")
	}
	if err := s.Await(context.Background(), 1500); err != ErrEngineClosed {
		t.Errorf("Await after Close = %v, want ErrEngineClosed", err)
	}
	if s2 := e.Register(units.Mbps, 1500); s2.Await(context.Background(), 1500) != ErrEngineClosed {
		t.Error("Register after Close returned a live stream")
	}
}

// TestEngineIdleHoldsNoGoroutines checks the on-demand runner lifecycle:
// streams closing takes the engine back to zero goroutines without Close.
func TestEngineIdleHoldsNoGoroutines(t *testing.T) {
	defer leakcheck.Check(t)
	e := NewEngine(EngineConfig{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.Register(50*units.Mbps, 6000)
			defer s.Close()
			for j := 0; j < 10; j++ {
				if err := s.Await(context.Background(), 6000); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	// leakcheck's deferred Check (5 s grace) asserts the runners exited.
}

// TestEngineDeterministicRelease drives two manual (virtual-clock) wheels
// through an identical 1k-stream schedule and requires the FNV-64a hash of
// the release order to match: wheel sweeps are slot-then-FIFO ordered with
// no dependence on goroutine scheduling or the wall clock.
func TestEngineDeterministicRelease(t *testing.T) {
	run := func() uint64 {
		e := NewEngine(EngineConfig{Wheels: 1, Slot: time.Millisecond, Slots: 256, manual: true})
		w := e.wheels[0]
		const streams = 1000
		ss := make([]*Stream, streams)
		for i := range ss {
			// Distinct rates, many slot collisions: stream i sends 1500 B
			// every 1500/(i%40+1) ms.
			ss[i] = e.Register(units.BitsPerSecond(i%40+1)*units.Mbps, 1500)
		}
		h := fnv.New64a()
		idx := make(map[*Stream]int, streams)
		for i, s := range ss {
			idx[s] = i
		}
		park := func(s *Stream, now time.Duration) {
			w.mu.Lock()
			defer w.mu.Unlock()
			if d := s.pacer.Delay(now, 1500); d > 0 {
				w.insertLocked(s, w.tickAfter(now, d), now)
			}
		}
		for _, s := range ss {
			park(s, 0) // free burst
			park(s, 0) // parks at the rate's deadline
		}
		for now := time.Millisecond; now <= 200*time.Millisecond; now += time.Millisecond {
			for _, s := range w.advanceTo(now) {
				fmt.Fprintf(h, "%d@%d,", idx[s], now/time.Millisecond)
				park(s, now) // immediately re-park the next burst
			}
		}
		return h.Sum64()
	}
	h1, h2 := run(), run()
	if h1 != h2 {
		t.Fatalf("release order not deterministic: %x vs %x", h1, h2)
	}
	if h1 == fnv.New64a().Sum64() {
		t.Fatal("no releases hashed; schedule never parked anything")
	}
}

// TestEngineSetRateRekeysParked re-rates a parked stream and checks the
// wait reflects the new rate, both speeding up and releasing immediately.
func TestEngineSetRateRekeysParked(t *testing.T) {
	defer leakcheck.Check(t)
	e := NewEngine(EngineConfig{})
	defer e.Close()

	// Parked at a slow rate, then re-keyed to a fast one: the release must
	// arrive on the fast schedule.
	s := e.Register(10*units.Kbps, 1500) // ≈1.2 s/park
	if err := s.Await(context.Background(), 1500); err != nil {
		t.Fatal(err)
	}
	done := make(chan time.Duration, 1)
	start := time.Now() //sammy:nondeterministic-ok: real-time engine test measures actual wakeup latency against the wall clock
	go func() {
		s.Await(context.Background(), 1500)
		done <- time.Since(start) //sammy:nondeterministic-ok: real-time engine test measures actual wakeup latency against the wall clock
	}()
	time.Sleep(30 * time.Millisecond)
	s.SetRate(10*units.Mbps, 1500) // deficit now clears in ≈1 ms
	select {
	case d := <-done:
		if d > 500*time.Millisecond {
			t.Errorf("re-keyed release took %v, still on the old schedule", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("re-keyed stream never released")
	}
	s.Close()

	// Re-rating to unpaced releases a parked stream immediately.
	s2 := e.Register(10*units.Kbps, 1500)
	defer s2.Close()
	if err := s2.Await(context.Background(), 1500); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan struct{})
	go func() {
		s2.Await(context.Background(), 1500)
		close(done2)
	}()
	time.Sleep(30 * time.Millisecond)
	s2.SetRate(NoPacing, 0)
	select {
	case <-done2:
	case <-time.After(2 * time.Second):
		t.Fatal("unpacing a parked stream did not release it")
	}
}

// TestAwaitFastPathAllocs pins the steady-state Await fast path (tokens
// available) at zero allocations.
func TestAwaitFastPathAllocs(t *testing.T) {
	e := NewEngine(EngineConfig{})
	defer e.Close()
	s := e.Register(units.Gbps, 1<<20)
	defer s.Close()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := s.Await(ctx, 100); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Await fast path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkPacingEngineWakeups10k and BenchmarkPacingSleepWakeups10k live
// in enginebench_test.go.
