package bwest

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestSampleRate(t *testing.T) {
	// A 1500 B pair spread by 300 µs implies a 40 Mbps bottleneck.
	s := Sample{Gap: 300 * time.Microsecond, Size: 1500}
	if got := s.Rate(); got != 40*units.Mbps {
		t.Errorf("Rate = %v, want 40Mbps", got)
	}
	if (Sample{Gap: 0, Size: 1500}).Rate() != 0 {
		t.Error("zero gap should yield 0")
	}
}

func TestEstimatorCleanPairs(t *testing.T) {
	e := NewEstimator(0)
	if e.Estimate() != 0 {
		t.Error("empty estimator should report 0")
	}
	for i := 0; i < 30; i++ {
		e.Observe(Sample{Gap: 300 * time.Microsecond, Size: 1500})
	}
	if got := e.Estimate(); got != 40*units.Mbps {
		t.Errorf("clean estimate = %v, want 40Mbps", got)
	}
	if e.Count() != 21 {
		t.Errorf("window = %d, want capped at 21", e.Count())
	}
}

func TestEstimatorRobustToCrossTraffic(t *testing.T) {
	// Cross traffic widens some gaps (lower per-pair rates); the median
	// should still recover the bottleneck rate when fewer than half the
	// pairs are disturbed.
	rng := rand.New(rand.NewSource(1))
	e := NewEstimator(0)
	for i := 0; i < 100; i++ {
		gap := 300 * time.Microsecond
		if rng.Float64() < 0.4 {
			gap += time.Duration(rng.Intn(2000)) * time.Microsecond
		}
		e.Observe(Sample{Gap: gap, Size: 1500})
	}
	got := e.Estimate().Mbps()
	if got < 35 || got > 41 {
		t.Errorf("estimate with 40%% disturbed pairs = %.1f Mbps, want ≈ 40", got)
	}
}

func TestEstimatorFailsWithMajorityCrossTraffic(t *testing.T) {
	// Documented failure mode: with most pairs disturbed, packet-pair
	// underestimates — one reason §3.1 avoids relying on it.
	rng := rand.New(rand.NewSource(2))
	e := NewEstimator(0)
	for i := 0; i < 100; i++ {
		gap := 300*time.Microsecond + time.Duration(500+rng.Intn(1500))*time.Microsecond
		e.Observe(Sample{Gap: gap, Size: 1500})
	}
	if got := e.Estimate().Mbps(); got > 20 {
		t.Errorf("estimate under heavy cross traffic = %.1f Mbps; expected a clear underestimate", got)
	}
}

func TestEstimatorIgnoresDegenerate(t *testing.T) {
	e := NewEstimator(0)
	e.Observe(Sample{Gap: 0, Size: 1500})
	e.Observe(Sample{Gap: -time.Millisecond, Size: 1500})
	e.Observe(Sample{Gap: time.Millisecond, Size: 0})
	if e.Count() != 0 {
		t.Errorf("degenerate samples recorded: %d", e.Count())
	}
}

func TestPairTrackerPairsWithinBursts(t *testing.T) {
	e := NewEstimator(0)
	tr := NewPairTracker(e)
	// Burst 1: three packets 300 µs apart → two pairs.
	tr.Arrival(0, 1500, 1)
	tr.Arrival(300*time.Microsecond, 1500, 1)
	tr.Arrival(600*time.Microsecond, 1500, 1)
	// Burst 2 arrives much later; the inter-burst gap must not pair.
	tr.Arrival(100*time.Millisecond, 1500, 2)
	tr.Arrival(100*time.Millisecond+300*time.Microsecond, 1500, 2)
	if e.Count() != 3 {
		t.Fatalf("pairs = %d, want 3 (2 within burst 1, 1 within burst 2)", e.Count())
	}
	if got := tr.Estimate(); got != 40*units.Mbps {
		t.Errorf("estimate = %v, want 40Mbps", got)
	}
}

func TestPacketPairThroughSimulatedBottleneck(t *testing.T) {
	// End-to-end: bursts paced far below the link rate still reveal the
	// bottleneck via intra-burst spreading — the §3.1 claim that pacing
	// does not have to blind a client that uses packet pairs.
	s := sim.New()
	tr := NewPairTracker(NewEstimator(0))
	var burst int64
	dst := sim.HandlerFunc(func(p *sim.Packet) {
		tr.Arrival(s.Now(), p.Size, p.Seq/4) // 4-packet bursts share an ID
	})
	link := sim.NewLink(s, sim.LinkConfig{
		Rate:       40 * units.Mbps,
		Delay:      2500 * time.Microsecond,
		QueueLimit: 100000,
	}, dst)

	// Send 4-packet bursts every 10 ms: an average rate of only 4.8 Mbps.
	var seq int64
	var sendBurst func()
	sendBurst = func() {
		for i := 0; i < 4; i++ {
			link.Send(&sim.Packet{Seq: seq, Size: 1500, SentAt: s.Now()})
			seq++
		}
		burst++
		if burst < 30 {
			s.Schedule(10*time.Millisecond, sendBurst)
		}
	}
	sendBurst()
	s.Run()

	got := tr.Estimate().Mbps()
	if got < 38 || got > 42 {
		t.Errorf("packet-pair estimate = %.1f Mbps, want ≈ 40 (the bottleneck, not the 4.8 Mbps pace)", got)
	}
}

func TestEstimatorMedianWithinSamplesProperty(t *testing.T) {
	f := func(gapsUs []uint16) bool {
		e := NewEstimator(0)
		var lo, hi units.BitsPerSecond
		for _, g := range gapsUs {
			s := Sample{Gap: time.Duration(int(g)+1) * time.Microsecond, Size: 1500}
			e.Observe(s)
			r := s.Rate()
			if lo == 0 || r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		if e.Count() == 0 {
			return e.Estimate() == 0
		}
		got := e.Estimate()
		// Median must lie within the observed range (of the window, which
		// is a subset of all samples, so the global range bounds it too).
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
