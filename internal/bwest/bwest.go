// Package bwest implements packet-pair bandwidth estimation ([37, 39] in
// the paper), the alternative §3.1 mentions for recovering available
// bandwidth under pacing: two packets sent back-to-back are spread by the
// bottleneck's serialization time, so the receiver can estimate the
// bottleneck rate as size/gap regardless of the pace rate between pairs.
//
// Sammy deliberately does not pursue this — its pacing-aware ABR avoids
// needing bandwidth estimates at all — but the estimator demonstrates that
// the alternative is implementable on the same substrate, and its tests
// document its known failure mode (cross traffic inflating the gap).
package bwest

import (
	"sort"
	"time"

	trace "repro/internal/obs/trace"
	"repro/internal/units"
)

// Sample is one observed packet pair: the receiver-side gap between two
// packets the sender emitted back-to-back, and their size.
type Sample struct {
	Gap  time.Duration
	Size units.Bytes
}

// Rate converts a sample to a bottleneck-rate estimate.
func (s Sample) Rate() units.BitsPerSecond {
	if s.Gap <= 0 {
		return 0
	}
	return units.Rate(s.Size, s.Gap)
}

// Estimator accumulates pair samples and reports a robust estimate of the
// bottleneck rate. The median of per-pair rates is used: cross traffic can
// only widen gaps (lowering individual estimates), and receiver batching
// can only shrink them, so the median of a modest window is the standard
// robust choice.
type Estimator struct {
	window  []units.BitsPerSecond
	maxSize int
}

// NewEstimator returns an estimator over the last window samples (default
// 21 when window ≤ 0; odd sizes make the median unambiguous).
func NewEstimator(window int) *Estimator {
	if window <= 0 {
		window = 21
	}
	return &Estimator{maxSize: window}
}

// Observe records one packet-pair sample. Degenerate samples (non-positive
// gap or size) are ignored.
func (e *Estimator) Observe(s Sample) {
	r := s.Rate()
	if r <= 0 {
		return
	}
	e.window = append(e.window, r)
	if len(e.window) > e.maxSize {
		e.window = e.window[1:]
	}
}

// Count reports the number of samples in the window.
func (e *Estimator) Count() int { return len(e.window) }

// Estimate reports the median per-pair rate, or 0 with no samples.
func (e *Estimator) Estimate() units.BitsPerSecond {
	if len(e.window) == 0 {
		return 0
	}
	sorted := make([]units.BitsPerSecond, len(e.window))
	copy(sorted, e.window)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// PairTracker turns a stream of (arrivalTime, size, senderBurstID)
// observations into pair samples: consecutive packets within the same
// sender burst form pairs. The video client can tag the first packets of
// each pacing burst this way.
type PairTracker struct {
	est  *Estimator
	span *trace.Span // nil = tracing off

	haveLast  bool
	lastAt    time.Duration
	lastBurst int64
}

// SetSpan attaches a span to the tracker: each completed pair sample is
// annotated on it as a "bwest.pair" instant (value = the pair's rate
// estimate, bits/s) stamped with the arrival time. Nil detaches.
func (t *PairTracker) SetSpan(sp *trace.Span) { t.span = sp }

// NewPairTracker wraps an estimator.
func NewPairTracker(est *Estimator) *PairTracker {
	if est == nil {
		est = NewEstimator(0)
	}
	return &PairTracker{est: est}
}

// Arrival records one packet arrival. burstID identifies the sender-side
// burst the packet belongs to; only packets within one burst pair up.
func (t *PairTracker) Arrival(at time.Duration, size units.Bytes, burstID int64) {
	if t.haveLast && burstID == t.lastBurst {
		s := Sample{Gap: at - t.lastAt, Size: size}
		t.est.Observe(s)
		if t.span != nil {
			t.span.AnnotateAt(at, "bwest.pair", float64(s.Rate()))
		}
	}
	t.haveLast = true
	t.lastAt = at
	t.lastBurst = burstID
}

// Estimate reports the tracked estimate.
func (t *PairTracker) Estimate() units.BitsPerSecond { return t.est.Estimate() }
