// Suppression-budget gate: a committed JSON file pins how many audited
// //sammy:<key> suppressions each analyzer is allowed, and CI fails when a
// count grows without a deliberate budget update in the same change. This
// turns "add a suppression comment" from a silent bypass into a reviewed
// diff on the budget file.
package citools

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BudgetSchema identifies the budget file format.
const BudgetSchema = "sammy-vet-budget/v1"

// Budget is the committed suppression allowance, counter name → ceiling.
// For sammy-vet the counter names are analyzer names and the counts are
// non-test //sammy:<key> sites seen by the standalone loader.
type Budget struct {
	Schema  string         `json:"schema"`
	Budgets map[string]int `json:"budgets"`
}

// LoadBudget reads and validates a budget file.
func LoadBudget(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if b.Schema != BudgetSchema {
		return nil, fmt.Errorf("%s: schema = %q, want %q", path, b.Schema, BudgetSchema)
	}
	if b.Budgets == nil {
		b.Budgets = map[string]int{}
	}
	return &b, nil
}

// WriteBudget writes counts as a budget file, keys sorted by the JSON
// marshaller, so -update-suppression-budget produces deterministic diffs.
func WriteBudget(path string, counts map[string]int) error {
	b := Budget{Schema: BudgetSchema, Budgets: counts}
	if b.Budgets == nil {
		b.Budgets = map[string]int{}
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckBudget compares observed counts against the budget and records one
// finding per exceeded counter. A counter absent from the budget has a
// ceiling of zero; a counter under budget is reported as info so shrinkage
// shows up in logs (and the budget can be ratcheted down).
func (r *Reporter) CheckBudget(b *Budget, counts map[string]int) {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n, allowed := counts[name], b.Budgets[name]
		switch {
		case n > allowed:
			r.Findingf("suppression budget exceeded for %s: %d sites, budget %d — new //sammy: suppressions need an audited budget update (rerun with -update-suppression-budget and commit the diff)", name, n, allowed)
		case n < allowed:
			r.Infof("suppression budget slack for %s: %d sites, budget %d (budget can be ratcheted down)", name, n, allowed)
		}
	}
}
