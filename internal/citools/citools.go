// Package citools carries the exit-code and reporting conventions shared by
// the repo's CI gate binaries (cmd/benchcheck, cmd/sammy-vet).
//
// The convention, encoded in Reporter.ExitCode:
//
//	0 — clean: the gate ran and found nothing
//	1 — findings: the gate ran and the tree violates it (fail the build)
//	2 — tool error: the gate itself could not run (also fails the build,
//	    but distinguishably, so CI logs point at the tool, not the tree)
package citools

import (
	"fmt"
	"io"
	"os"
)

// Exit codes for CI gate binaries.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Reporter accumulates findings and tool errors for one gate run and maps
// them onto the shared exit-code convention. Informational output goes to
// Out; findings and errors go to Err so CI log scrapers see them on stderr.
type Reporter struct {
	name     string
	Out      io.Writer
	Err      io.Writer
	findings int
	errors   int
}

// New returns a Reporter writing to os.Stdout/os.Stderr. name prefixes
// tool-error messages ("benchcheck: ...").
func New(name string) *Reporter {
	return &Reporter{name: name, Out: os.Stdout, Err: os.Stderr}
}

// Infof prints informational output; it does not affect the exit code.
func (r *Reporter) Infof(format string, args ...any) {
	fmt.Fprintf(r.Out, format+"\n", args...)
}

// Findingf records one gate finding and prints it to Err.
func (r *Reporter) Findingf(format string, args ...any) {
	r.findings++
	fmt.Fprintf(r.Err, format+"\n", args...)
}

// Errorf records a tool failure — the gate could not do its job — and
// prints it to Err with the tool-name prefix.
func (r *Reporter) Errorf(format string, args ...any) {
	r.errors++
	fmt.Fprintf(r.Err, r.name+": "+format+"\n", args...)
}

// Findings returns the number of findings recorded so far.
func (r *Reporter) Findings() int { return r.findings }

// Errors returns the number of tool errors recorded so far.
func (r *Reporter) Errors() int { return r.errors }

// ExitCode maps the run's outcome onto the convention: tool errors trump
// findings, findings trump clean.
func (r *Reporter) ExitCode() int {
	switch {
	case r.errors > 0:
		return ExitError
	case r.findings > 0:
		return ExitFindings
	default:
		return ExitClean
	}
}

// Exit terminates the process with ExitCode.
func (r *Reporter) Exit() {
	os.Exit(r.ExitCode())
}
