package citools

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBudgetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.json")
	if err := WriteBudget(path, map[string]int{"simdeterminism": 8, "sharedpacer": 4}); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != BudgetSchema {
		t.Errorf("schema = %q", b.Schema)
	}
	if b.Budgets["simdeterminism"] != 8 || b.Budgets["sharedpacer"] != 4 {
		t.Errorf("budgets = %v", b.Budgets)
	}
}

func TestLoadBudgetRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.json")
	writeFile(t, path, `{"schema":"something-else/v9","budgets":{}}`)
	if _, err := LoadBudget(path); err == nil {
		t.Error("wrong schema must not load")
	}
}

func TestCheckBudget(t *testing.T) {
	var out, errw bytes.Buffer
	r := &Reporter{name: "sammy-vet", Out: &out, Err: &errw}
	b := &Budget{Schema: BudgetSchema, Budgets: map[string]int{"a": 2, "b": 3}}

	r.CheckBudget(b, map[string]int{"a": 2, "b": 2, "c": 1})
	if r.Findings() != 1 {
		t.Fatalf("findings = %d, want 1 (counter c over its implicit zero budget)", r.Findings())
	}
	if !strings.Contains(errw.String(), "suppression budget exceeded for c: 1 sites, budget 0") {
		t.Errorf("stderr = %q", errw.String())
	}
	if !strings.Contains(out.String(), "slack for b: 2 sites, budget 3") {
		t.Errorf("stdout = %q", out.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
