package citools

import (
	"bytes"
	"strings"
	"testing"
)

func newTestReporter() (*Reporter, *bytes.Buffer, *bytes.Buffer) {
	out, errOut := new(bytes.Buffer), new(bytes.Buffer)
	r := New("gate")
	r.Out, r.Err = out, errOut
	return r, out, errOut
}

func TestExitCodeConvention(t *testing.T) {
	r, _, _ := newTestReporter()
	if got := r.ExitCode(); got != ExitClean {
		t.Errorf("fresh reporter: ExitCode = %d, want %d", got, ExitClean)
	}

	r.Findingf("something regressed")
	if got := r.ExitCode(); got != ExitFindings {
		t.Errorf("after finding: ExitCode = %d, want %d", got, ExitFindings)
	}

	// A tool error trumps findings: CI must know the gate itself broke.
	r.Errorf("cannot open baseline: %v", "missing")
	if got := r.ExitCode(); got != ExitError {
		t.Errorf("after error: ExitCode = %d, want %d", got, ExitError)
	}
}

func TestStreamsAndPrefixes(t *testing.T) {
	r, out, errOut := newTestReporter()
	r.Infof("ok   benchmark %d", 1)
	r.Findingf("FAIL benchmark %d", 2)
	r.Errorf("broken: %s", "reason")

	if got := out.String(); got != "ok   benchmark 1\n" {
		t.Errorf("Out = %q, want info line only", got)
	}
	if !strings.Contains(errOut.String(), "FAIL benchmark 2\n") {
		t.Errorf("Err missing finding line: %q", errOut.String())
	}
	if !strings.Contains(errOut.String(), "gate: broken: reason\n") {
		t.Errorf("Err missing name-prefixed error line: %q", errOut.String())
	}
	if r.Findings() != 1 || r.Errors() != 1 {
		t.Errorf("counts = (%d findings, %d errors), want (1, 1)", r.Findings(), r.Errors())
	}
}
