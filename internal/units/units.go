// Package units provides value types for bitrates and byte sizes used
// throughout the Sammy reproduction: video bitrates, pacing rates, link
// capacities and chunk sizes. Keeping these as distinct types prevents the
// classic bits-vs-bytes confusion in networking code.
package units

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// BitsPerSecond is a data rate in bits per second. Video bitrates, pacing
// rates and link capacities are all expressed in this type.
type BitsPerSecond float64

// Common rate units.
const (
	BitPerSecond BitsPerSecond = 1
	Kbps                       = 1e3 * BitPerSecond
	Mbps                       = 1e6 * BitPerSecond
	Gbps                       = 1e9 * BitPerSecond
)

// Bytes is a size in bytes. Chunk sizes, queue limits and window sizes are
// expressed in this type.
type Bytes int64

// Common size units.
const (
	Byte Bytes = 1
	KB         = 1000 * Byte
	MB         = 1000 * KB
	GB         = 1000 * MB
	KiB        = 1024 * Byte
	MiB        = 1024 * KiB
)

// Mbit is one megabit expressed in bytes (125 000 bytes). It is convenient
// when converting chunk sizes to bitrates.
const Mbit = 125000 * Byte

// BytesPerSecond reports the rate in bytes per second.
func (r BitsPerSecond) BytesPerSecond() float64 { return float64(r) / 8 }

// Mbps reports the rate in megabits per second.
func (r BitsPerSecond) Mbps() float64 { return float64(r) / 1e6 }

// IsZero reports whether the rate is exactly zero (commonly "no pacing").
func (r BitsPerSecond) IsZero() bool { return r == 0 }

// TimeToSend reports how long sending n bytes takes at rate r. It returns 0
// for non-positive rates, which callers must treat as "unpaced".
func (r BitsPerSecond) TimeToSend(n Bytes) time.Duration {
	if r <= 0 || n <= 0 {
		return 0
	}
	seconds := float64(n) * 8 / float64(r)
	return time.Duration(seconds * float64(time.Second))
}

// String formats the rate with an adaptive unit, e.g. "3.30Mbps".
func (r BitsPerSecond) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/1e9)
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/1e6)
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.0fbps", float64(r))
	}
}

// Rate reports the data rate of sending n bytes over elapsed time d.
// A non-positive duration yields 0.
func Rate(n Bytes, d time.Duration) BitsPerSecond {
	if d <= 0 {
		return 0
	}
	return BitsPerSecond(float64(n) * 8 / d.Seconds())
}

// BytesIn reports how many whole bytes rate r delivers in duration d.
func (r BitsPerSecond) BytesIn(d time.Duration) Bytes {
	if r <= 0 || d <= 0 {
		return 0
	}
	return Bytes(float64(r) / 8 * d.Seconds())
}

// String formats the size with an adaptive decimal unit, e.g. "2.00MB".
func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/1e9)
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/1e6)
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// ParseBitsPerSecond parses strings like "40Mbps", "3300kbps", "1.5gbps" or a
// bare number of bits per second. Unit matching is case-insensitive.
func ParseBitsPerSecond(s string) (BitsPerSecond, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(t, "gbps"):
		mult, t = 1e9, strings.TrimSuffix(t, "gbps")
	case strings.HasSuffix(t, "mbps"):
		mult, t = 1e6, strings.TrimSuffix(t, "mbps")
	case strings.HasSuffix(t, "kbps"):
		mult, t = 1e3, strings.TrimSuffix(t, "kbps")
	case strings.HasSuffix(t, "bps"):
		t = strings.TrimSuffix(t, "bps")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse rate %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: parse rate %q: negative rate", s)
	}
	return BitsPerSecond(v * mult), nil
}
