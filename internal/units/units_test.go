package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeToSend(t *testing.T) {
	tests := []struct {
		rate BitsPerSecond
		n    Bytes
		want time.Duration
	}{
		{8 * Mbps, 1 * MB, time.Second},
		{40 * Mbps, 5 * Mbit, 125 * time.Millisecond},
		{0, 1 * MB, 0},
		{8 * Mbps, 0, 0},
		{1 * Mbps, 125000 * Byte, time.Second},
	}
	for _, tt := range tests {
		if got := tt.rate.TimeToSend(tt.n); got != tt.want {
			t.Errorf("TimeToSend(%v, %v) = %v, want %v", tt.rate, tt.n, got, tt.want)
		}
	}
}

func TestRateRoundTrip(t *testing.T) {
	// Rate(n, TimeToSend(n)) should recover the original rate.
	f := func(rateMbps uint16, sizeKB uint16) bool {
		r := BitsPerSecond(float64(rateMbps)+1) * 1e6
		n := Bytes(int64(sizeKB)+1) * KB
		d := r.TimeToSend(n)
		got := Rate(n, d)
		// Duration truncates to whole nanoseconds, so allow a small
		// relative error for very short send times.
		return math.Abs(float64(got-r))/float64(r) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesInInverseOfTimeToSend(t *testing.T) {
	f := func(rateKbps uint16, ms uint16) bool {
		r := BitsPerSecond(float64(rateKbps)+8) * 1e3
		d := time.Duration(int64(ms)+1) * time.Millisecond
		n := r.BytesIn(d)
		// Sending those bytes at the same rate takes no longer than d.
		return r.TimeToSend(n) <= d+time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseBitsPerSecond(t *testing.T) {
	tests := []struct {
		in      string
		want    BitsPerSecond
		wantErr bool
	}{
		{"40Mbps", 40 * Mbps, false},
		{"40mbps", 40 * Mbps, false},
		{" 3.3 Mbps ", 3.3 * Mbps, false},
		{"1.5gbps", 1.5 * Gbps, false},
		{"250kbps", 250 * Kbps, false},
		{"1000", 1000 * BitPerSecond, false},
		{"12bps", 12 * BitPerSecond, false},
		{"-1Mbps", 0, true},
		{"fast", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseBitsPerSecond(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseBitsPerSecond(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && math.Abs(float64(got-tt.want)) > 1e-9 {
			t.Errorf("ParseBitsPerSecond(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestStringFormatting(t *testing.T) {
	tests := []struct {
		rate BitsPerSecond
		want string
	}{
		{3.3 * Mbps, "3.30Mbps"},
		{40 * Mbps, "40.00Mbps"},
		{2 * Gbps, "2.00Gbps"},
		{500 * Kbps, "500.00Kbps"},
		{12, "12bps"},
	}
	for _, tt := range tests {
		if got := tt.rate.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", float64(tt.rate), got, tt.want)
		}
	}
	sizes := []struct {
		b    Bytes
		want string
	}{
		{2 * MB, "2.00MB"},
		{3 * GB, "3.00GB"},
		{1500, "1.50KB"},
		{12, "12B"},
	}
	for _, tt := range sizes {
		if got := tt.b.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int64(tt.b), got, tt.want)
		}
	}
}

func TestParseFormatsRoundTrip(t *testing.T) {
	f := func(mbpsTimes10 uint16) bool {
		r := BitsPerSecond(float64(mbpsTimes10)/10+1) * 1e6
		got, err := ParseBitsPerSecond(r.String())
		if err != nil {
			return false
		}
		return math.Abs(float64(got-r))/float64(r) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMbitConstant(t *testing.T) {
	if Mbit != 125000*Byte {
		t.Fatalf("Mbit = %d bytes, want 125000", int64(Mbit))
	}
	// One Mbit at 1 Mbps takes exactly one second.
	if d := (1 * Mbps).TimeToSend(Mbit); d != time.Second {
		t.Fatalf("1Mbit at 1Mbps = %v, want 1s", d)
	}
}
