package abtest

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	trace "repro/internal/obs/trace"
	"repro/internal/player"
	"repro/internal/units"
	"repro/internal/video"
)

// Arm is one experiment cell: a named controller recipe. NewController is
// called once per user so history-source behaviour is applied per user.
type Arm struct {
	Name          string
	NewController func() *core.Controller
	// WarmSessions, when positive, streams this many unrecorded sessions
	// per user before the measured sequence begins, so the arm starts with
	// a populated history instead of a cold one (the Fig 6 warm control).
	// It feeds the config hash: a warmed arm is a different cell than a
	// cold arm of the same name.
	WarmSessions int
}

// StandardArms returns the paper's main experiment cells: the production
// control, Sammy with the production parameters, the §5.5 naive baseline
// and the §5.4 initial-phase-only arm.
func StandardArms() []Arm {
	return []Arm{
		ControlArm(),
		SammyArm(core.DefaultC0, core.DefaultC1),
		{
			Name:          "naive-4x",
			NewController: func() *core.Controller { return core.NewNaiveBaseline(productionABR(0), 4) },
		},
		{
			Name:          "initial-only",
			NewController: func() *core.Controller { return core.NewInitialOnly(productionABR(retunedStartupSafety)) },
		},
	}
}

// retunedStartupSafety is the §4.3 retuning: arms whose initial estimates
// come only from initial-phase throughput can trust them more.
const retunedStartupSafety = 1.5

// controlStartupSafety is the control's conservative discount, needed
// because combined-history estimates are biased high by playing-phase
// throughput.
const controlStartupSafety = 0.6

// productionABR builds the production ABR with the given startup safety
// (0 = control default).
func productionABR(safety float64) abr.Production {
	if safety <= 0 {
		safety = controlStartupSafety
	}
	return abr.Production{StartupSafety: safety}
}

// ControlArm returns the unpaced production arm.
func ControlArm() Arm {
	return Arm{
		Name:          "control",
		NewController: func() *core.Controller { return core.NewControl(productionABR(0)) },
	}
}

// SammyArm returns a Sammy arm with the given pace multipliers.
func SammyArm(c0, c1 float64) Arm {
	return Arm{
		Name:          "sammy",
		NewController: func() *core.Controller { return core.NewSammy(productionABR(retunedStartupSafety), c0, c1) },
	}
}

// Config parameterizes an experiment run.
type Config struct {
	Population PopulationConfig
	// SessionsPerUser is how many sequential sessions each user streams
	// (history carries across them). Default 3.
	SessionsPerUser int
	// WarmupSessions are excluded from metrics so histories reach steady
	// state (the §5.7 apples-to-apples concern). Default 1.
	WarmupSessions int
	// ChunksPerSession is the session length in chunks. Default 150
	// (a 10-minute session of 4 s chunks).
	ChunksPerSession int
	// Ladder for all titles; default video.DefaultLadder().
	Ladder video.Ladder
	// ChunkDuration; default 4 s.
	ChunkDuration time.Duration
	// Parallelism bounds worker goroutines; default GOMAXPROCS.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.SessionsPerUser <= 0 {
		c.SessionsPerUser = 3
	}
	if c.WarmupSessions < 0 || c.WarmupSessions >= c.SessionsPerUser {
		c.WarmupSessions = 0
	} else if c.WarmupSessions == 0 && c.SessionsPerUser > 1 {
		c.WarmupSessions = 1
	}
	if c.ChunksPerSession <= 0 {
		c.ChunksPerSession = 150
	}
	if c.Ladder == nil {
		c.Ladder = video.DefaultLadder()
	}
	if c.ChunkDuration <= 0 {
		c.ChunkDuration = 4 * time.Second
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// SessionRecord pairs a session's QoE with its user's grouping variables.
type SessionRecord struct {
	UserID int
	PreExp units.BitsPerSecond
	QoE    player.QoE
}

// ArmResult aggregates one arm's measured sessions.
type ArmResult struct {
	Name     string
	Sessions []SessionRecord
	// Errors counts users whose session sequence failed (a recovered panic
	// in the controller or player). Failed users contribute no sessions; a
	// healthy run reports zero.
	Errors int
}

// Metric extracts a scalar from a session for table building.
type Metric struct {
	Name string
	// Lower reports whether smaller values are better (affects nothing in
	// the math, only presentation notes).
	Get func(player.QoE) float64
}

// Metrics are the Table 2 rows in order.
var Metrics = []Metric{
	{"ChunkThroughputMbps", func(q player.QoE) float64 { return q.ChunkThroughput.Mbps() }},
	{"RetransmitPct", func(q player.QoE) float64 { return q.RetxFraction * 100 }},
	{"RTTms", func(q player.QoE) float64 { return q.MedianRTT.Seconds() * 1000 }},
	{"InitialVMAF", func(q player.QoE) float64 { return q.InitialVMAF }},
	{"VMAF", func(q player.QoE) float64 { return q.VMAF }},
	{"PlayDelayMs", func(q player.QoE) float64 { return q.PlayDelay.Seconds() * 1000 }},
	{"RebufferSessPct", func(q player.QoE) float64 {
		if q.Rebuffered {
			return 100
		}
		return 0
	}},
	{"RebuffersPerHour", func(q player.QoE) float64 {
		h := q.PlayedTime.Hours()
		if h <= 0 {
			return 0
		}
		return float64(q.RebufferCount) / h
	}},
}

// Values extracts metric m from every session in r.
func (r ArmResult) Values(m Metric) []float64 {
	out := make([]float64, 0, len(r.Sessions))
	for _, s := range r.Sessions {
		out = append(out, m.Get(s.QoE))
	}
	return out
}

// Run executes the experiment: it generates one population, measures each
// user's pre-experiment throughput with control sessions, then runs every
// arm against identical per-user copies (same path, same seeds, fresh
// histories), which is the §5.7 "reset historical throughput in both
// groups" design. Sessions after the warmup are recorded.
func Run(cfg Config, arms []Arm) []ArmResult {
	cfg = cfg.withDefaults()
	users := GeneratePopulation(cfg.Population)
	measurePreExperiment(cfg, users)

	results := make([]ArmResult, len(arms))
	for i, arm := range arms {
		results[i] = runArm(cfg, arm, users)
	}
	return results
}

// measurePreExperiment fills each user's PreExpThroughput with the p95 of
// per-chunk throughput from a short unpaced control session. It returns
// per-user errors (slice-position indexed, nil entries for healthy users).
func measurePreExperiment(cfg Config, users []*User) []error {
	return forEachUser(cfg.Parallelism, users, func(_ int, u *User) {
		rng := rand.New(rand.NewSource(u.Seed ^ 0x5eed))
		title := video.NewTitle(cfg.Ladder.CapAt(u.TopBitrate), cfg.ChunkDuration, 40, rng)
		ctrl := core.NewControl(productionABR(0))
		var tputs []float64
		player.Run(player.Config{
			Controller: ctrl,
			Title:      title,
			History:    &core.History{},
		}, u.Path, rng, func(ev player.ChunkEvent) {
			tputs = append(tputs, ev.Throughput.Mbps())
		})
		u.PreExpThroughput = units.BitsPerSecond(p95(tputs)) * units.Mbps
	})
}

// runArm runs every user's session sequence under one arm. Users whose
// sequence failed (recovered panic) contribute no sessions and are counted
// in ArmResult.Errors.
func runArm(cfg Config, arm Arm, users []*User) ArmResult {
	perUser, errs := runArmPerUser(cfg, arm, users)
	res := ArmResult{Name: arm.Name}
	for i, recs := range perUser {
		if errs[i] != nil {
			res.Errors++
			continue
		}
		res.Sessions = append(res.Sessions, recs...)
	}
	return res
}

// runArmPerUser is the streaming-friendly core of runArm: it returns the
// measured sessions grouped by user position (not user ID — shards hand in
// user-id ranges that do not start at zero) alongside per-user errors.
func runArmPerUser(cfg Config, arm Arm, users []*User) ([][]SessionRecord, []error) {
	perUser := make([][]SessionRecord, len(users))

	errs := forEachUser(cfg.Parallelism, users, func(i int, u *User) {
		// Paired design: every arm sees the same user RNG stream and a
		// fresh history.
		rng := rand.New(rand.NewSource(u.Seed))
		hist := &core.History{}
		ctrl := arm.NewController()
		// Warm the history with unrecorded sessions first; they consume the
		// user's RNG stream, which is fine — the warmed arm is its own cell,
		// not paired sample-for-sample against a cold arm's streams.
		for s := 0; s < arm.WarmSessions; s++ {
			title := video.NewTitle(cfg.Ladder.CapAt(u.TopBitrate), cfg.ChunkDuration, cfg.ChunksPerSession, rng)
			player.Run(player.Config{Controller: ctrl, Title: title, History: hist}, u.Path, rng, nil)
		}
		var recs []SessionRecord
		for s := 0; s < cfg.SessionsPerUser; s++ {
			title := video.NewTitle(cfg.Ladder.CapAt(u.TopBitrate), cfg.ChunkDuration, cfg.ChunksPerSession, rng)
			// Trace IDs are only materialized when a process tracer is
			// installed (sammy-eval -trace): the fmt.Sprintf would otherwise
			// add a per-session allocation to the hot benchmark path.
			var traceID string
			if trace.Default() != nil {
				traceID = fmt.Sprintf("%s/u%03d/s%d", arm.Name, u.ID, s)
			}
			q := player.Run(player.Config{
				Controller: ctrl,
				Title:      title,
				History:    hist,
				TraceID:    traceID,
			}, u.Path, rng, nil)
			if s >= cfg.WarmupSessions {
				recs = append(recs, SessionRecord{UserID: u.ID, PreExp: u.PreExpThroughput, QoE: q})
			}
		}
		perUser[i] = recs
	})
	return perUser, errs
}

// forEachUser applies fn to every user with bounded parallelism, passing the
// user's slice position. A panic inside fn is recovered into that user's
// error slot instead of crashing the process: one poisoned controller must
// not kill a multi-hour population run. The returned slice is parallel to
// users (nil entries for healthy users).
func forEachUser(parallelism int, users []*User, fn func(i int, u *User)) []error {
	sem := make(chan struct{}, parallelism)
	errs := make([]error, len(users))
	var wg sync.WaitGroup
	for i, u := range users {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, u *User) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("user %d: panic: %v\n%s", u.ID, r, debug.Stack())
				}
			}()
			fn(i, u)
		}(i, u)
	}
	wg.Wait()
	return errs
}
