package abtest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the coordinator side of the multi-process population fan-out.
// The coordinator owns the run: it prepares the checkpoint directory, forks
// (or adopts) worker processes, watches the lease files for dead holders,
// re-claims and re-runs their shards in-process with a bounded attempt
// budget, quarantines shards that kill every holder, and — once every shard
// is resolved — performs the single deterministic merge and rewrites the
// manifest. Workers never write the manifest, so the coordinator's final
// rewrite is the only authority on what the run produced.
//
// Determinism: the merged sketches are byte-identical to a single-process
// RunSharded of the same configuration, no matter how many workers ran, died,
// or raced. Shard checkpoint bytes are a pure function of the run config
// (duplicate executions of one shard write identical files), and the final
// merge visits shard indexes in ascending order exactly once. See
// DESIGN.md §15.

// DefaultDrainTimeout bounds how long the coordinator waits for workers to
// exit gracefully before killing them.
const DefaultDrainTimeout = 10 * time.Second

// WorkerHandle is the coordinator's grip on one worker it started: a
// graceful stop, a hard kill, and a blocking wait. The CLI wraps os/exec
// subprocesses in this; tests wrap goroutines. Wait is called exactly once.
type WorkerHandle struct {
	Stop func()
	Kill func()
	Wait func() error
}

// CoordinatorConfig parameterizes a coordinated multi-worker population run.
type CoordinatorConfig struct {
	// Experiment, Arms, ShardSize define the run, exactly as in ShardRunConfig.
	Experiment Config
	Arms       []Arm
	ShardSize  int
	// CheckpointDir is the shared coordination substrate. Required — the
	// lease protocol lives in it.
	CheckpointDir string
	// Resume keeps valid checkpoints from a previous run of the same
	// configuration. Without it the coordinator clears the directory's
	// checkpoint/lease/poison/manifest files and starts fresh.
	Resume bool
	// Workers is how many workers to start via StartWorker. Zero is valid:
	// the coordinator runs every shard itself (and externally joined
	// workers may still participate through the directory).
	Workers int
	// StartWorker launches worker i and returns its handle. Nil defaults to
	// in-process goroutine workers, which is what tests use; the CLI
	// supplies a subprocess launcher.
	StartWorker func(i int) (*WorkerHandle, error)
	// Owner is the coordinator's own lease identity for recovery re-runs.
	// Default NewOwnerID().
	Owner string
	// LeaseTTL is the steal threshold. Default DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxShardAttempts is the per-shard fleet attempt budget; a shard whose
	// lease has burned this many attempts and expired again is quarantined
	// instead of retried. Default DefaultMaxShardAttempts.
	MaxShardAttempts int
	// MaxShardRetries is the per-run user-failure retry budget (runShard).
	// Default DefaultShardRetries.
	MaxShardRetries int
	// PollInterval is the supervision rescan period. Default LeaseTTL/2.
	PollInterval time.Duration
	// DrainTimeout bounds the graceful worker drain before Kill.
	// Default DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Stop requests a graceful end: workers drain, the finished shards are
	// merged, and the result comes back with Stopped set.
	Stop <-chan struct{}
	// Progress observes fleet lifecycle events. It may be called from the
	// worker-monitor goroutines concurrently; it must be safe for that.
	Progress func(FleetEvent)
	// Metrics, when non-nil, records fleet counters and the workers-alive
	// gauge.
	Metrics *FleetMetrics
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	c.Experiment = c.Experiment.withDefaults()
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
	if c.MaxShardRetries < 0 {
		c.MaxShardRetries = 0
	} else if c.MaxShardRetries == 0 {
		c.MaxShardRetries = DefaultShardRetries
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	if c.Owner == "" {
		c.Owner = NewOwnerID()
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.MaxShardAttempts <= 0 {
		c.MaxShardAttempts = DefaultMaxShardAttempts
	}
	if c.PollInterval <= 0 {
		c.PollInterval = c.LeaseTTL / 2
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	return c
}

func (c CoordinatorConfig) stopRequested() bool {
	if c.Stop == nil {
		return false
	}
	select {
	case <-c.Stop:
		return true
	default:
		return false
	}
}

// setWorkersAlive updates the fleet gauge, nil-guarded.
func setWorkersAlive(m *FleetMetrics, n int64) {
	if m != nil {
		m.WorkersAlive.Set(float64(n))
	}
}

// RunCoordinator runs the full coordinated fan-out and returns the merged
// result. It is the multi-process counterpart of RunSharded and produces
// byte-identical sketches for the same configuration.
func RunCoordinator(cfg CoordinatorConfig) (*ShardedResult, error) {
	cfg = cfg.withDefaults()
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("abtest: coordinator needs a checkpoint directory")
	}
	if len(cfg.Arms) == 0 {
		return nil, fmt.Errorf("abtest: coordinator needs at least one arm")
	}
	if cfg.Experiment.Population.Users <= 0 {
		return nil, fmt.Errorf("abtest: coordinator needs a population size")
	}
	if err := ensureDurableDir(cfg.CheckpointDir); err != nil {
		return nil, fmt.Errorf("abtest: checkpoint dir: %w", err)
	}
	if cfg.Resume {
		if err := CheckResumeConfig(cfg.CheckpointDir, cfg.Experiment, cfg.Arms, cfg.ShardSize); err != nil {
			return nil, err
		}
	} else if err := cleanRunDir(cfg.CheckpointDir); err != nil {
		return nil, fmt.Errorf("abtest: clearing checkpoint dir: %w", err)
	}

	hash := configHash(cfg.Experiment, cfg.Arms, cfg.ShardSize)
	plan := planShards(cfg.Experiment.Population.Users, cfg.ShardSize)
	identity := Manifest{
		ConfigHash: hash,
		Arms:       armNames(cfg.Arms),
		Users:      cfg.Experiment.Population.Users,
		ShardSize:  cfg.ShardSize,
		NumShards:  len(plan),
		Config:     configKnobs(cfg.Experiment, cfg.Arms, cfg.ShardSize),
	}
	// Publish the run identity before any worker starts, so joining workers'
	// config preflight has a manifest to check against. A torn or missing
	// manifest is simply rewritten; shard entries are reconstructed from the
	// checkpoint files at the end regardless.
	if m, err := readManifest(cfg.CheckpointDir); err != nil || m == nil {
		if werr := writeManifest(cfg.CheckpointDir, identity); werr != nil {
			return nil, fmt.Errorf("abtest: manifest: %w", werr)
		}
	}

	// Remember which shards were already resolved before the fleet ran, for
	// the Completed/Resumed split in the result.
	preResolved := make(map[int]bool)
	for i := range plan {
		if hasFile(cfg.CheckpointDir, shardFileName(i)) || hasFile(cfg.CheckpointDir, poisonFileName(i)) {
			preResolved[i] = true
		}
	}

	scfg := ShardRunConfig{
		Experiment:      cfg.Experiment,
		Arms:            cfg.Arms,
		ShardSize:       cfg.ShardSize,
		CheckpointDir:   cfg.CheckpointDir,
		MaxShardRetries: cfg.MaxShardRetries,
	}

	// Fork the fleet.
	start := cfg.StartWorker
	if start == nil {
		start = func(i int) (*WorkerHandle, error) { return startInProcessWorker(cfg, i), nil }
	}
	var alive atomic.Int64
	var wg sync.WaitGroup
	handles := make([]*WorkerHandle, 0, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		h, err := start(i)
		if err != nil {
			drainWorkers(handles, &wg, cfg.DrainTimeout)
			return nil, fmt.Errorf("abtest: starting worker %d: %w", i, err)
		}
		handles = append(handles, h)
		setWorkersAlive(cfg.Metrics, alive.Add(1))
		fleetObserve(cfg.Progress, cfg.Metrics, FleetEvent{Type: "worker-started", Shard: -1, NumShards: len(plan), Worker: i})
		wg.Add(1)
		go func(i int, h *WorkerHandle) {
			defer wg.Done()
			err := h.Wait()
			setWorkersAlive(cfg.Metrics, alive.Add(-1))
			detail := ""
			if err != nil {
				detail = err.Error()
			}
			fleetObserve(cfg.Progress, cfg.Metrics, FleetEvent{Type: "worker-exited", Shard: -1, NumShards: len(plan), Worker: i, Detail: detail})
		}(i, h)
	}

	// Supervision loop: watch leases, recover dead holders' shards,
	// quarantine poison, and pick up unclaimed work when no worker is alive.
	recovered, reran := 0, make(map[int]bool)
	stopped := false
supervise:
	for {
		if cfg.stopRequested() {
			stopped = true
			break
		}
		pending := 0
		for i := range plan {
			if cfg.stopRequested() {
				stopped = true
				break supervise
			}
			if shardResolved(cfg.CheckpointDir, i) {
				continue
			}
			pending++
			info := inspectLease(cfg.CheckpointDir, i, cfg.LeaseTTL)
			switch info.state {
			case leaseFresh:
				continue // a live holder is on it
			case leaseNone:
				if alive.Load() > 0 {
					continue // the fleet will claim it
				}
			default: // expired, or corrupt past its TTL
				fleetObserve(cfg.Progress, cfg.Metrics, FleetEvent{Type: "lease-expired", Shard: i, NumShards: len(plan),
					Lo: plan[i].lo, Hi: plan[i].hi, Owner: info.owner, Worker: -1, Attempt: info.attempt})
				if info.attempt >= cfg.MaxShardAttempts {
					if err := quarantineShard(cfg, hash, plan, i, info); err != nil {
						return nil, err
					}
					continue
				}
			}
			lease, kind, err := claimShardLease(cfg.CheckpointDir, i, cfg.Owner, hash, cfg.LeaseTTL)
			if err != nil {
				return nil, fmt.Errorf("abtest: claiming shard %d: %w", i, err)
			}
			if lease == nil {
				continue // raced a worker; it owns the shard now
			}
			ran, _, userErrors := runLeasedShard(scfg, hash, plan[i], i, len(plan), lease, kind, cfg.Progress, cfg.Metrics, -1)
			if ran {
				reran[i] = true
				if kind == claimStolen {
					recovered++
					fleetObserve(cfg.Progress, cfg.Metrics, FleetEvent{Type: "recovered", Shard: i, NumShards: len(plan),
						Lo: plan[i].lo, Hi: plan[i].hi, Owner: cfg.Owner, Worker: -1, Attempt: lease.Attempt(), UserErrors: userErrors})
				}
			}
		}
		if pending == 0 {
			break
		}
		select {
		case <-stopChan(cfg.Stop):
			stopped = true
			break supervise
		case <-time.After(cfg.PollInterval):
		}
	}

	drainWorkers(handles, &wg, cfg.DrainTimeout)
	setWorkersAlive(cfg.Metrics, 0)

	res, err := mergeFleet(cfg, scfg, hash, plan, stopped, preResolved, reran)
	if err != nil {
		return nil, err
	}
	res.Recovered = recovered
	return res, nil
}

// startInProcessWorker is the default StartWorker: a goroutine running
// RunWorker against the shared directory. Stop and Kill both close the
// worker's stop channel (a goroutine cannot be hard-killed).
func startInProcessWorker(cfg CoordinatorConfig, i int) *WorkerHandle {
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := RunWorker(WorkerConfig{
			Experiment:       cfg.Experiment,
			Arms:             cfg.Arms,
			ShardSize:        cfg.ShardSize,
			CheckpointDir:    cfg.CheckpointDir,
			MaxShardRetries:  cfg.MaxShardRetries,
			WorkerID:         i,
			LeaseTTL:         cfg.LeaseTTL,
			MaxShardAttempts: cfg.MaxShardAttempts,
			Stop:             stop,
			Progress:         cfg.Progress,
			Metrics:          cfg.Metrics,
		})
		done <- err
	}()
	var once sync.Once
	stopFn := func() { once.Do(func() { close(stop) }) }
	return &WorkerHandle{Stop: stopFn, Kill: stopFn, Wait: func() error { return <-done }}
}

// drainWorkers stops every worker gracefully, escalates to Kill after the
// timeout, and waits for all monitor goroutines to observe the exits.
func drainWorkers(handles []*WorkerHandle, wg *sync.WaitGroup, timeout time.Duration) {
	for _, h := range handles {
		if h.Stop != nil {
			h.Stop()
		}
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		for _, h := range handles {
			if h.Kill != nil {
				h.Kill()
			}
		}
		<-done
	}
}

// quarantineShard writes a shard's poison marker, clears its burned lease,
// and emits the event. From here on every scanner treats the shard as
// resolved and the merge lists it under Quarantined.
func quarantineShard(cfg CoordinatorConfig, hash string, plan []shardRange, i int, info leaseInfo) error {
	reason := fmt.Sprintf("lease expired after %d attempts", info.attempt)
	if info.owner != "" {
		reason += fmt.Sprintf(" (last owner %s)", info.owner)
	}
	err := writePoisonMarker(cfg.CheckpointDir, poisonPayload{
		ConfigHash: hash, Shard: i, Lo: plan[i].lo, Hi: plan[i].hi,
		Attempts: info.attempt, Reason: reason,
	})
	if err != nil {
		return fmt.Errorf("abtest: quarantining shard %d: %w", i, err)
	}
	os.Remove(filepath.Join(cfg.CheckpointDir, leaseFileName(i)))
	fleetObserve(cfg.Progress, cfg.Metrics, FleetEvent{Type: "quarantined", Shard: i, NumShards: len(plan),
		Lo: plan[i].lo, Hi: plan[i].hi, Owner: info.owner, Worker: -1, Attempt: info.attempt, Detail: reason})
	return nil
}

// loadShardFile reads and fully validates shard i's checkpoint against the
// run identity and plan, independent of any manifest.
func loadShardFile(dir, hash string, plan []shardRange, i int) (*shardPayload, string, error) {
	p, sum, err := readShardCheckpoint(dir, shardFileName(i))
	if err != nil {
		return nil, "", err
	}
	if p.ConfigHash != hash {
		return nil, "", fmt.Errorf("%s: config hash %s, want %s", shardFileName(i), p.ConfigHash, hash)
	}
	if p.Shard != i || p.Lo != plan[i].lo || p.Hi != plan[i].hi {
		return nil, "", fmt.Errorf("%s: covers users [%d,%d), plan says [%d,%d)", shardFileName(i), p.Lo, p.Hi, plan[i].lo, plan[i].hi)
	}
	return p, sum, nil
}

// mergeFleet is the coordinator's endgame: validate every shard checkpoint,
// re-run any that fail validation (unless the run was stopped), fold the
// sketches in ascending shard order, and rewrite the manifest as the
// authoritative ledger. A valid checkpoint takes precedence over a poison
// marker — if the data exists, it is used.
func mergeFleet(cfg CoordinatorConfig, scfg ShardRunConfig, hash string, plan []shardRange,
	stopped bool, preResolved, reran map[int]bool) (*ShardedResult, error) {
	res := &ShardedResult{NumShards: len(plan), Stopped: stopped}
	res.Arms = make([]*ArmSketch, len(cfg.Arms))
	for a, arm := range cfg.Arms {
		res.Arms[a] = NewArmSketch(arm.Name)
	}
	manifest := Manifest{
		ConfigHash: hash,
		Arms:       armNames(cfg.Arms),
		Users:      cfg.Experiment.Population.Users,
		ShardSize:  cfg.ShardSize,
		NumShards:  len(plan),
		Config:     configKnobs(cfg.Experiment, cfg.Arms, cfg.ShardSize),
	}

	for i := range plan {
		p, sum, err := loadShardFile(cfg.CheckpointDir, hash, plan, i)
		if err != nil && !os.IsNotExist(err) {
			// A file exists but fails validation: discard and (below) re-run.
			fleetObserve(cfg.Progress, cfg.Metrics, FleetEvent{Type: "rejected", Shard: i, NumShards: len(plan),
				Lo: plan[i].lo, Hi: plan[i].hi, Worker: -1, Detail: err.Error()})
			res.Skipped = append(res.Skipped, fmt.Sprintf("shard %d: %v", i, err))
			os.Remove(filepath.Join(cfg.CheckpointDir, shardFileName(i)))
		}
		if p == nil {
			if q, qerr := readPoisonMarker(cfg.CheckpointDir, i); qerr == nil && q != nil && q.ConfigHash == hash {
				entry := ManifestQuarantine{
					Index: i, Lo: q.Lo, Hi: q.Hi, Attempts: q.Attempts, Reason: q.Reason,
				}
				res.Quarantined = append(res.Quarantined, entry)
				manifest.Quarantined = append(manifest.Quarantined, entry)
				continue
			}
			if stopped {
				continue // partial result; the run can be resumed
			}
			// Unresolved after the fleet drained (or rejected above): the
			// coordinator runs it here, which also covers the stop-less case
			// where every worker exited without finishing.
			arms, userErrors, retries := runShard(scfg, plan[i])
			payload := shardPayload{ConfigHash: hash, Shard: i, Lo: plan[i].lo, Hi: plan[i].hi,
				UserErrors: userErrors, Retries: retries}
			for _, a := range arms {
				payload.Arms = append(payload.Arms, a.snapshot())
			}
			entry, werr := writeShardCheckpoint(cfg.CheckpointDir, payload)
			if werr != nil {
				return nil, werr
			}
			reran[i] = true
			p, sum = &payload, entry.Checksum
		}
		arms, err := shardArmsFromPayload(p, cfg.Arms)
		if err != nil {
			return nil, fmt.Errorf("abtest: shard %d: %w", i, err)
		}
		for a := range res.Arms {
			if err := res.Arms[a].Merge(arms[a]); err != nil {
				return nil, err
			}
		}
		res.UserErrors += p.UserErrors
		if preResolved[i] && !reran[i] {
			res.Resumed++
		} else {
			res.Completed++
		}
		manifest.Shards = append(manifest.Shards, ManifestShard{
			Index: i, Lo: p.Lo, Hi: p.Hi, File: shardFileName(i), Checksum: sum,
		})
	}
	if err := writeManifest(cfg.CheckpointDir, manifest); err != nil {
		return nil, fmt.Errorf("abtest: manifest: %w", err)
	}
	return res, nil
}

// cleanRunDir removes a previous run's protocol files — checkpoints, leases,
// poison markers, the manifest, and stray atomic-write temp files — so a
// fresh (non-resume) coordinated run starts from a blank ledger.
func cleanRunDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == manifestName,
			strings.HasSuffix(name, ".ckpt"),
			strings.HasSuffix(name, ".lease"),
			strings.HasSuffix(name, ".poison"),
			strings.Contains(name, ".tmp"):
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return fsyncDir(dir)
}
