package abtest

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
	"repro/internal/tdigest"
)

// This file holds the streaming side of the harness: instead of
// accumulating a []SessionRecord per arm (O(total sessions) memory, the
// reason a million-user run could not fit), sharded runs fold each session
// into mergeable sketches — a stats.Moments for Welch confidence intervals
// and a t-digest for medians — one pair per Table 2 metric plus one pair
// per Fig 3 pre-experiment bucket. Sketches merge exactly (Moments) or
// deterministically under a fixed merge order (t-digest), which is what
// makes a resumed run byte-identical to an uninterrupted one.

// sketchCompression sizes the per-metric t-digests. 200 keeps medians
// stable to well past the two decimals the tables print while holding each
// digest to a few hundred centroids.
const sketchCompression = 200

// MetricSketch is the mergeable streaming summary of one metric in one arm:
// exact first/second moments for Welch CIs plus a t-digest for quantiles.
type MetricSketch struct {
	Moments stats.Moments
	Digest  *tdigest.TDigest
}

func newMetricSketch() MetricSketch {
	return MetricSketch{Digest: tdigest.New(sketchCompression)}
}

// Add folds one sample into the sketch.
func (s *MetricSketch) Add(x float64) {
	s.Moments.Add(x)
	s.Digest.Add(x)
}

// Merge folds o into s. Merge order must be fixed (ascending shard index)
// for deterministic results: Moments merge exactly, but t-digest centroid
// layout depends on insertion order.
func (s *MetricSketch) Merge(o MetricSketch) {
	s.Moments.Merge(o.Moments)
	s.Digest.Merge(o.Digest)
}

// Median estimates the metric's median from the digest.
func (s MetricSketch) Median() float64 { return s.Digest.Quantile(0.5) }

// metricSketchSnapshot is the serialized form of a MetricSketch.
type metricSketchSnapshot struct {
	Moments stats.Moments    `json:"moments"`
	Digest  tdigest.Snapshot `json:"digest"`
}

func (s MetricSketch) snapshot() metricSketchSnapshot {
	return metricSketchSnapshot{Moments: s.Moments, Digest: s.Digest.Snapshot()}
}

func metricSketchFromSnapshot(snap metricSketchSnapshot) (MetricSketch, error) {
	d, err := tdigest.FromSnapshot(snap.Digest)
	if err != nil {
		return MetricSketch{}, err
	}
	return MetricSketch{Moments: snap.Moments, Digest: d}, nil
}

// ArmSketch aggregates one arm's streamed sessions: one MetricSketch per
// Table 2 metric (parallel to the Metrics slice) and one chunk-throughput
// sketch per Fig 3 pre-experiment bucket.
type ArmSketch struct {
	Name     string
	Sessions int
	// Errors counts users excluded because their session sequence failed
	// (recovered panics), mirroring ArmResult.Errors.
	Errors  int
	Metrics []MetricSketch
	Buckets []MetricSketch
}

// NewArmSketch returns an empty sketch for the named arm.
func NewArmSketch(name string) *ArmSketch {
	a := &ArmSketch{
		Name:    name,
		Metrics: make([]MetricSketch, len(Metrics)),
		Buckets: make([]MetricSketch, len(PreExpBuckets)),
	}
	for i := range a.Metrics {
		a.Metrics[i] = newMetricSketch()
	}
	for i := range a.Buckets {
		a.Buckets[i] = newMetricSketch()
	}
	return a
}

// AddSession folds one session into every metric sketch and its Fig 3
// bucket's throughput sketch.
func (a *ArmSketch) AddSession(rec SessionRecord) {
	a.Sessions++
	for i, m := range Metrics {
		a.Metrics[i].Add(m.Get(rec.QoE))
	}
	tput := Metrics[0] // ChunkThroughputMbps, the Fig 3 metric
	a.Buckets[BucketIndex(rec.PreExp)].Add(tput.Get(rec.QoE))
}

// AddResult folds a whole in-memory ArmResult into the sketch, bridging the
// unsharded path into sketch-based reporting.
func (a *ArmSketch) AddResult(r ArmResult) {
	for _, rec := range r.Sessions {
		a.AddSession(rec)
	}
	a.Errors += r.Errors
}

// Merge folds o into a. Callers must merge shards in ascending shard order;
// see MetricSketch.Merge.
func (a *ArmSketch) Merge(o *ArmSketch) error {
	if o == nil {
		return nil
	}
	if o.Name != a.Name {
		return fmt.Errorf("abtest: merging arm sketch %q into %q", o.Name, a.Name)
	}
	if len(o.Metrics) != len(a.Metrics) || len(o.Buckets) != len(a.Buckets) {
		return fmt.Errorf("abtest: arm sketch %q has %d/%d sketches, want %d/%d",
			o.Name, len(o.Metrics), len(o.Buckets), len(a.Metrics), len(a.Buckets))
	}
	a.Sessions += o.Sessions
	a.Errors += o.Errors
	for i := range a.Metrics {
		a.Metrics[i].Merge(o.Metrics[i])
	}
	for i := range a.Buckets {
		a.Buckets[i].Merge(o.Buckets[i])
	}
	return nil
}

// armSketchSnapshot is the serialized form of an ArmSketch.
type armSketchSnapshot struct {
	Name     string                 `json:"name"`
	Sessions int                    `json:"sessions"`
	Errors   int                    `json:"errors,omitempty"`
	Metrics  []metricSketchSnapshot `json:"metrics"`
	Buckets  []metricSketchSnapshot `json:"buckets"`
}

func (a *ArmSketch) snapshot() armSketchSnapshot {
	snap := armSketchSnapshot{Name: a.Name, Sessions: a.Sessions, Errors: a.Errors}
	for _, m := range a.Metrics {
		snap.Metrics = append(snap.Metrics, m.snapshot())
	}
	for _, b := range a.Buckets {
		snap.Buckets = append(snap.Buckets, b.snapshot())
	}
	return snap
}

func armSketchFromSnapshot(snap armSketchSnapshot) (*ArmSketch, error) {
	if len(snap.Metrics) != len(Metrics) || len(snap.Buckets) != len(PreExpBuckets) {
		return nil, fmt.Errorf("abtest: arm sketch %q has %d/%d sketches, want %d/%d",
			snap.Name, len(snap.Metrics), len(snap.Buckets), len(Metrics), len(PreExpBuckets))
	}
	a := &ArmSketch{Name: snap.Name, Sessions: snap.Sessions, Errors: snap.Errors}
	for _, ms := range snap.Metrics {
		m, err := metricSketchFromSnapshot(ms)
		if err != nil {
			return nil, err
		}
		a.Metrics = append(a.Metrics, m)
	}
	for _, bs := range snap.Buckets {
		b, err := metricSketchFromSnapshot(bs)
		if err != nil {
			return nil, err
		}
		a.Buckets = append(a.Buckets, b)
	}
	return a, nil
}

// SketchRow is one metric movement computed from sketches: a Welch
// percent-change CI on means (the streaming substitute for the in-memory
// path's bootstrap) plus the percent change of the t-digest medians as the
// paper-style point estimate for median-summarized metrics.
type SketchRow struct {
	Metric string
	// MeanChg is the Welch 95% CI for the percent change of the mean.
	MeanChg stats.CI
	// MedianChgPct is the percent change of the estimated medians, NaN when
	// the control median is zero.
	MedianChgPct float64
}

// Significant reports whether the Welch interval excludes zero.
func (r SketchRow) Significant() bool { return r.MeanChg.Significant() }

// String formats like TableRow, with the median movement appended for the
// metrics the paper summarizes by median.
func (r SketchRow) String() string {
	point := "–    "
	if r.Significant() {
		point = fmt.Sprintf("%+.2f%%", r.MeanChg.Point)
	}
	s := fmt.Sprintf("%-22s %s [%.2f, %.2f]", r.Metric, point, r.MeanChg.Lo, r.MeanChg.Hi)
	if !math.IsNaN(r.MedianChgPct) {
		s += fmt.Sprintf("  median %+.2f%%", r.MedianChgPct)
	}
	return s
}

// CompareSketches builds Table 2/3-style rows for treatment vs control from
// streamed sketches.
func CompareSketches(treatment, control *ArmSketch) []SketchRow {
	rows := make([]SketchRow, 0, len(Metrics))
	for i, m := range Metrics {
		t, c := treatment.Metrics[i], control.Metrics[i]
		row := SketchRow{
			Metric:       m.Name,
			MeanChg:      stats.WelchPercentChangeFromMoments(t.Moments, c.Moments),
			MedianChgPct: math.NaN(),
		}
		// Sparse event metrics (rebuffers) are mean-summarized in the paper;
		// their median is legitimately zero, so no median column.
		if !strings.HasPrefix(m.Name, "Rebuffer") {
			if cm := c.Median(); cm != 0 && !math.IsNaN(cm) {
				row.MedianChgPct = 100 * (t.Median() - cm) / cm
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatSketchTable renders sketch rows with a title, mirroring FormatTable.
func FormatSketchTable(title string, rows []SketchRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %s\n", r)
	}
	return sb.String()
}

// BucketSketchRow is one Fig 3 group computed from sketches.
type BucketSketchRow struct {
	Bucket   string
	Sessions int
	// MeanChg is the Welch 95% CI for the chunk-throughput percent change.
	MeanChg stats.CI
	// MedianChgPct is the percent change of the estimated medians.
	MedianChgPct float64
}

// CompareBucketSketches builds the Fig 3 rows from streamed sketches.
func CompareBucketSketches(treatment, control *ArmSketch) []BucketSketchRow {
	rows := make([]BucketSketchRow, 0, len(PreExpBuckets))
	for i, b := range PreExpBuckets {
		t, c := treatment.Buckets[i], control.Buckets[i]
		row := BucketSketchRow{
			Bucket:       b.Name,
			Sessions:     int(t.Moments.Count),
			MeanChg:      stats.WelchPercentChangeFromMoments(t.Moments, c.Moments),
			MedianChgPct: math.NaN(),
		}
		if cm := c.Median(); cm != 0 && !math.IsNaN(cm) {
			row.MedianChgPct = 100 * (t.Median() - cm) / cm
		}
		rows = append(rows, row)
	}
	return rows
}
