package abtest

import (
	"fmt"
	"math"
)

// This file implements the §5.3 parameter-tuning loop. The paper used Ax
// (a Bayesian optimization service) across multiple rounds of A/B testing
// to find a Pareto improvement to all metrics of interest; for a
// two-parameter space a coarse-to-fine grid refinement finds the same
// frontier, and it keeps the reproduction dependency-free.

// SearchConfig parameterizes the tuning loop.
type SearchConfig struct {
	Experiment Config
	// Rounds of refinement; default 2 (a coarse sweep plus one zoom-in).
	Rounds int
	// CellsPerRound is the number of (c0, c1) cells tried each round;
	// default 6. The paper ran twenty treatment cells per test.
	CellsPerRound int
	// Guardrails: a cell qualifies only if no QoE metric significantly
	// regresses beyond these bounds (percent). Defaults: VMAF −0.15,
	// play delay +3, rebuffers/hour +25.
	MaxVMAFLoss      float64
	MaxPlayDelayGain float64
	MaxRebufferGain  float64
	// Seed drives the comparison bootstrap.
	Seed int64
}

func (c SearchConfig) withDefaults() SearchConfig {
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.CellsPerRound <= 0 {
		c.CellsPerRound = 6
	}
	if c.MaxVMAFLoss == 0 {
		c.MaxVMAFLoss = 0.15
	}
	if c.MaxPlayDelayGain == 0 {
		c.MaxPlayDelayGain = 3
	}
	if c.MaxRebufferGain == 0 {
		c.MaxRebufferGain = 25
	}
	return c
}

// SearchResult is the tuning outcome.
type SearchResult struct {
	// BestC0, BestC1 is the qualifying cell with the largest throughput
	// reduction.
	BestC0, BestC1 float64
	// Best is that cell's measured tradeoff point.
	Best SweepPoint
	// Frontier holds every evaluated cell, for Fig 5-style plotting.
	Frontier []SweepPoint
	// Rejected counts cells that violated a QoE guardrail.
	Rejected int
}

// qualifies reports whether a cell respects the QoE guardrails: no
// significant regression beyond the configured bounds.
func (c SearchConfig) qualifies(p SweepPoint) bool {
	if p.VMAFChg.Significant() && p.VMAFChg.Point < -c.MaxVMAFLoss {
		return false
	}
	if p.PlayDelayChg.Significant() && p.PlayDelayChg.Point > c.MaxPlayDelayGain {
		return false
	}
	if p.RebufferHourChg.Significant() && p.RebufferHourChg.Point > c.MaxRebufferGain {
		return false
	}
	return true
}

// SearchParameters runs the multi-round tuning loop: each round sweeps a
// band of (c0, c1) cells, keeps the qualifying cell with the deepest
// throughput reduction, and the next round zooms into its neighbourhood.
// It returns an error only if no cell in any round qualifies.
func SearchParameters(cfg SearchConfig) (SearchResult, error) {
	cfg = cfg.withDefaults()
	res := SearchResult{BestC0: math.NaN(), BestC1: math.NaN()}

	// Round 1 band: multipliers from aggressive to conservative. The c1/c0
	// ratio is held at the production 0.875 (2.8/3.2); the search dimension
	// that matters for the tradeoff is the overall level.
	lo, hi := 1.2, 6.0
	const ratio = 0.875

	for round := 0; round < cfg.Rounds; round++ {
		pairs := make([][2]float64, 0, cfg.CellsPerRound)
		for i := 0; i < cfg.CellsPerRound; i++ {
			// Geometric spacing: the tradeoff is roughly logarithmic in the
			// multiplier.
			frac := float64(i) / float64(cfg.CellsPerRound-1)
			c0 := lo * math.Pow(hi/lo, frac)
			pairs = append(pairs, [2]float64{c0, c0 * ratio})
		}
		points := SweepParameters(cfg.Experiment, pairs, cfg.Seed+int64(round))
		res.Frontier = append(res.Frontier, points...)

		bestIdx := -1
		for i, p := range points {
			if !cfg.qualifies(p) {
				res.Rejected++
				continue
			}
			if bestIdx < 0 || p.ThroughputChg.Point < points[bestIdx].ThroughputChg.Point {
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			continue
		}
		best := points[bestIdx]
		if math.IsNaN(res.BestC0) || best.ThroughputChg.Point < res.Best.ThroughputChg.Point {
			res.BestC0, res.BestC1, res.Best = best.C0, best.C1, best
		}
		// Zoom into the winner's neighbourhood for the next round.
		lo = best.C0 * 0.7
		hi = best.C0 * 1.4
		if lo < 0.8 {
			lo = 0.8
		}
	}
	if math.IsNaN(res.BestC0) {
		return res, fmt.Errorf("abtest: no parameter cell satisfied the QoE guardrails")
	}
	return res, nil
}
