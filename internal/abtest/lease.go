package abtest

import (
	crand "crypto/rand"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// This file is the shard-lease protocol that lets multiple worker processes
// share one checkpoint directory as their coordination substrate. A lease
// is a small JSON file next to the shard's checkpoint:
//
//	shard-NNNN.lease — who is running shard NNNN right now
//
// The protocol needs no server and no fcntl locks — only the two primitives
// the checkpoint layer already relies on: exclusive create (O_CREATE|O_EXCL)
// for a fresh claim, and atomic rename for a steal. Liveness rides on the
// lease file's mtime: the owner bumps it every TTL/3 (a heartbeat), and any
// process that finds a lease older than the TTL may steal it by renaming a
// replacement over it with the attempt counter incremented. The attempt
// counter is how poison shards surface: a shard whose every holder dies
// keeps getting stolen with a growing attempt count until the coordinator
// quarantines it.
//
// Steals race: two stealers can both rename over an expired lease, and the
// loser's rename is silently replaced by the winner's. Every holder
// therefore re-reads the file and checks that it still names them — after
// claiming, on every heartbeat, and immediately before writing the shard
// checkpoint. A holder that finds a different owner abandons the shard.
// The unavoidable window (verify, then a steal lands, then both finish the
// shard) is harmless by design: a shard checkpoint's bytes are a pure
// function of the run config, so duplicate executions write identical
// files and the merge — which reads each shard index exactly once — cannot
// double-count. See DESIGN.md §15 for the full argument.

const (
	leaseSchema = "sammy-lease/v1"
	poisonSchema = "sammy-poison/v1"

	// DefaultLeaseTTL is how stale a lease's mtime must be before another
	// process may steal it. Heartbeats land every TTL/3, so a healthy
	// holder has two chances to renew before expiry even under scheduling
	// hiccups.
	DefaultLeaseTTL = 5 * time.Second

	// DefaultMaxShardAttempts bounds how many lease holders may die on one
	// shard before the coordinator quarantines it as poison.
	DefaultMaxShardAttempts = 3
)

// leaseFileName names shard i's lease file.
func leaseFileName(i int) string { return fmt.Sprintf("shard-%04d.lease", i) }

// poisonFileName names shard i's quarantine marker.
func poisonFileName(i int) string { return fmt.Sprintf("shard-%04d.poison", i) }

// NewOwnerID builds a process-unique lease owner identity. Uniqueness is
// what matters (host + pid + random suffix); the value never feeds results,
// so the randomness does not touch determinism.
func NewOwnerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degrade to host+pid; still unique across live processes.
		return fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	return fmt.Sprintf("%s-%d-%x", host, os.Getpid(), b)
}

// leasePayload is the on-disk lease body.
type leasePayload struct {
	Schema     string `json:"schema"`
	ConfigHash string `json:"config_hash"`
	Shard      int    `json:"shard"`
	Owner      string `json:"owner"`
	// Attempt counts lease acquisitions for this shard: 1 on the first
	// claim, +1 on every steal. It is the fleet's retry ledger — it
	// survives worker and coordinator crashes because it lives in the file.
	Attempt int `json:"attempt"`
}

// leaseState classifies a shard's lease file.
type leaseState int

const (
	leaseNone    leaseState = iota // no lease file
	leaseFresh                     // held, heartbeat within TTL
	leaseExpired                   // held on paper, heartbeat older than TTL
	leaseCorrupt                   // unreadable/torn; stealable once its mtime expires
)

// leaseInfo is one observation of a shard's lease.
type leaseInfo struct {
	state   leaseState
	owner   string
	attempt int
	age     time.Duration
}

// inspectLease reads shard i's lease state without taking it.
func inspectLease(dir string, shard int, ttl time.Duration) leaseInfo {
	path := filepath.Join(dir, leaseFileName(shard))
	fi, err := os.Stat(path)
	if err != nil {
		return leaseInfo{state: leaseNone}
	}
	age := time.Since(fi.ModTime()) //sammy:nondeterministic-ok: lease liveness is wall-clock by design (file mtimes); it gates only who runs a shard, never the shard's deterministic output
	info := leaseInfo{age: age}
	data, err := os.ReadFile(path)
	var p leasePayload
	if err != nil || json.Unmarshal(data, &p) != nil || p.Schema != leaseSchema {
		info.state = leaseCorrupt
		if age < ttl {
			// A torn lease that is still being written (or just written)
			// gets its full TTL before anyone may steal it.
			info.state = leaseFresh
		}
		return info
	}
	info.owner, info.attempt = p.Owner, p.Attempt
	if age < ttl {
		info.state = leaseFresh
	} else {
		info.state = leaseExpired
	}
	return info
}

// Lease is a held shard lease: the handle the owner uses to heartbeat,
// detect theft, and release.
type Lease struct {
	dir        string
	shard      int
	owner      string
	configHash string
	attempt    int
	ttl        time.Duration

	mu sync.Mutex
	// guarded by mu
	lost bool
	// guarded by mu
	stopHB chan struct{}
	// guarded by mu
	hbDone chan struct{}
}

// Attempt reports which acquisition of the shard this lease is (1 = first).
func (l *Lease) Attempt() int { return l.attempt }

// Owner reports the lease's owner identity.
func (l *Lease) Owner() string { return l.owner }

func (l *Lease) path() string { return filepath.Join(l.dir, leaseFileName(l.shard)) }

// claimKind says how a claim succeeded.
type claimKind int

const (
	claimFresh  claimKind = iota // exclusive create of a new lease
	claimStolen                  // replaced an expired lease
)

// claimShardLease tries to acquire shard's lease for owner. It returns
// (nil, _, nil) when the shard is held by a live owner or the claim race
// was lost — both mean "move on to another shard".
func claimShardLease(dir string, shard int, owner, configHash string, ttl time.Duration) (*Lease, claimKind, error) {
	path := filepath.Join(dir, leaseFileName(shard))
	info := inspectLease(dir, shard, ttl)
	switch info.state {
	case leaseFresh:
		return nil, 0, nil
	case leaseNone:
		p := leasePayload{Schema: leaseSchema, ConfigHash: configHash, Shard: shard, Owner: owner, Attempt: 1}
		body, err := json.Marshal(p)
		if err != nil {
			return nil, 0, err
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			if os.IsExist(err) {
				return nil, 0, nil // someone beat us to the create
			}
			return nil, 0, err
		}
		_, werr := f.Write(body)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			// A torn lease we own: remove it so the shard stays claimable.
			os.Remove(path)
			if werr == nil {
				werr = cerr
			}
			return nil, 0, werr
		}
		return &Lease{dir: dir, shard: shard, owner: owner, configHash: configHash, attempt: 1, ttl: ttl}, claimFresh, nil
	default: // leaseExpired, leaseCorrupt past its TTL
		p := leasePayload{Schema: leaseSchema, ConfigHash: configHash, Shard: shard, Owner: owner, Attempt: info.attempt + 1}
		body, err := json.Marshal(p)
		if err != nil {
			return nil, 0, err
		}
		tmp, err := os.CreateTemp(dir, leaseFileName(shard)+".tmp*")
		if err != nil {
			return nil, 0, err
		}
		tmpName := tmp.Name()
		defer os.Remove(tmpName)
		if _, err := tmp.Write(body); err != nil {
			tmp.Close()
			return nil, 0, err
		}
		if err := tmp.Close(); err != nil {
			return nil, 0, err
		}
		//sammy:durablerename: lease files are advisory TTL state; losing one to a crash costs a re-acquire, not data
		if err := os.Rename(tmpName, path); err != nil {
			return nil, 0, err
		}
		l := &Lease{dir: dir, shard: shard, owner: owner, configHash: configHash, attempt: p.Attempt, ttl: ttl}
		// Concurrent stealers rename over each other; the last writer owns
		// the shard. Verify before declaring victory.
		if !l.ownedByMe() {
			return nil, 0, nil
		}
		return l, claimStolen, nil
	}
}

// ownedByMe re-reads the lease file and reports whether it still names this
// holder (same owner, same attempt).
func (l *Lease) ownedByMe() bool {
	data, err := os.ReadFile(l.path())
	if err != nil {
		return false
	}
	var p leasePayload
	if err := json.Unmarshal(data, &p); err != nil {
		return false
	}
	return p.Schema == leaseSchema && p.Owner == l.owner && p.Attempt == l.attempt
}

// StartHeartbeat begins renewing the lease's mtime every TTL/3 in a
// background goroutine. If a renewal discovers the lease was stolen, the
// goroutine marks the lease lost and exits; the owner must check Lost()
// before trusting its hold (in particular before checkpointing).
func (l *Lease) StartHeartbeat() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stopHB != nil {
		return
	}
	l.stopHB = make(chan struct{})
	l.hbDone = make(chan struct{})
	stop, done := l.stopHB, l.hbDone
	interval := l.ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if !l.renew() {
					l.markLost()
					return
				}
			}
		}
	}()
}

// renew verifies ownership and bumps the lease mtime. The verify-then-touch
// pair can race a steal; the worst case is one extra mtime bump on the
// thief's lease, and the next renewal detects the loss.
func (l *Lease) renew() bool {
	if !l.ownedByMe() {
		return false
	}
	now := time.Now() //sammy:nondeterministic-ok: heartbeat bumps the lease file's wall-clock mtime; scheduling metadata, never experiment output
	return os.Chtimes(l.path(), now, now) == nil
}

func (l *Lease) markLost() {
	l.mu.Lock()
	l.lost = true
	l.mu.Unlock()
}

// Lost reports whether a heartbeat observed the lease stolen out from under
// its owner (e.g. this process was suspended past the TTL and resurrected).
func (l *Lease) Lost() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lost
}

// stopHeartbeat stops the renewal goroutine and waits for it to exit.
func (l *Lease) stopHeartbeat() {
	l.mu.Lock()
	stop, done := l.stopHB, l.hbDone
	l.stopHB, l.hbDone = nil, nil
	l.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Release stops the heartbeat and removes the lease file if this holder
// still owns it. A lost lease is left alone — it belongs to the thief now.
func (l *Lease) Release() {
	l.stopHeartbeat()
	if l.Lost() || !l.ownedByMe() {
		return
	}
	os.Remove(l.path())
}

// VerifyOwnership is the pre-checkpoint gate: it reports whether the lease
// is still held (heartbeat has not flagged a loss and the file still names
// this owner).
func (l *Lease) VerifyOwnership() bool {
	return !l.Lost() && l.ownedByMe()
}

// poisonPayload is the on-disk quarantine marker for a shard whose every
// attempt died: the coordinator writes it instead of failing the run, and
// every worker treats the shard as resolved.
type poisonPayload struct {
	Schema     string `json:"schema"`
	ConfigHash string `json:"config_hash"`
	Shard      int    `json:"shard"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
	Attempts   int    `json:"attempts"`
	Reason     string `json:"reason"`
}

// writePoisonMarker quarantines a shard durably and atomically.
func writePoisonMarker(dir string, p poisonPayload) error {
	p.Schema = poisonSchema
	body, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return atomicWriteFile(dir, poisonFileName(p.Shard), body)
}

// readPoisonMarker loads shard i's quarantine marker; (nil, nil) when none.
func readPoisonMarker(dir string, shard int) (*poisonPayload, error) {
	data, err := os.ReadFile(filepath.Join(dir, poisonFileName(shard)))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var p poisonPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", poisonFileName(shard), err)
	}
	if p.Schema != poisonSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", poisonFileName(shard), p.Schema, poisonSchema)
	}
	return &p, nil
}

// hasFile reports plain existence; shard checkpoints and poison markers are
// written atomically, so existence is a meaningful signal (full validation
// happens at merge).
func hasFile(dir, name string) bool {
	_, err := os.Stat(filepath.Join(dir, name))
	return err == nil
}

// shardResolved reports whether shard i needs no further work: it has a
// checkpoint or a quarantine marker.
func shardResolved(dir string, i int) bool {
	return hasFile(dir, shardFileName(i)) || hasFile(dir, poisonFileName(i))
}
