package abtest

import (
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/stats"
)

// This file routes the Fig 5 parameter sweep and the Fig 6 cold-start study
// through the sharded runner, so both inherit everything RunSharded provides:
// bounded memory, crash-resumable checkpoints (one subdirectory per sweep
// cell), graceful stop, and deterministic merged sketches. The movements come
// out as Welch CIs on the streamed moments instead of the in-memory path's
// bootstrap — the streaming substitute used everywhere sketches are.

// cellDir returns the per-cell checkpoint subdirectory, "" when
// checkpointing is off.
func cellDir(base, cell string) string {
	if base == "" {
		return ""
	}
	return filepath.Join(base, cell)
}

// sweepCellArms builds one Fig 5 cell: the shared control against Sammy at
// (c0, c1).
func sweepCellArms(c0, c1 float64) []Arm {
	return []Arm{
		ControlArm(),
		{
			Name:          fmt.Sprintf("sammy-c0=%.1f-c1=%.1f", c0, c1),
			NewController: func() *core.Controller { return core.NewSammy(productionABR(retunedStartupSafety), c0, c1) },
		},
	}
}

// SweepParametersSharded runs Figure 5 as one sharded run per (c0, c1) cell.
// run.Arms is ignored; each cell pairs a fresh control against its Sammy
// setting, and checkpoints land under run.CheckpointDir/cell-NN. A graceful
// stop ends the sweep after the in-flight cell; re-running with Resume set
// finishes the remaining cells without redoing completed ones.
func SweepParametersSharded(run ShardRunConfig, pairs [][2]float64) ([]SweepPoint, error) {
	base := run.CheckpointDir
	points := make([]SweepPoint, 0, len(pairs))
	for n, p := range pairs {
		c0, c1 := p[0], p[1]
		cell := run
		cell.Arms = sweepCellArms(c0, c1)
		cell.CheckpointDir = cellDir(base, fmt.Sprintf("cell-%02d", n))
		res, err := RunSharded(cell)
		if err != nil {
			return points, fmt.Errorf("abtest: sweep cell c0=%.1f c1=%.1f: %w", c0, c1, err)
		}
		if res.Stopped {
			return points, nil
		}
		control, treat := res.Arms[0], res.Arms[1]
		points = append(points, SweepPoint{
			C0: c0, C1: c1,
			ThroughputChg:   stats.WelchPercentChangeFromMoments(treat.Metrics[0].Moments, control.Metrics[0].Moments),
			VMAFChg:         stats.WelchPercentChangeFromMoments(treat.Metrics[4].Moments, control.Metrics[4].Moments),
			PlayDelayChg:    stats.WelchPercentChangeFromMoments(treat.Metrics[5].Moments, control.Metrics[5].Moments),
			RebufferHourChg: stats.WelchPercentChangeFromMoments(treat.Metrics[7].Moments, control.Metrics[7].Moments),
		})
	}
	return points, nil
}

// coldStartWarmup is how many unrecorded sessions warm the Fig 6 control's
// history, matching the in-memory study's three pre-experiment days.
const coldStartWarmup = 3

// coldStartArms builds one Fig 6 day cell: a control whose history was
// warmed with unrecorded sessions against an identical controller starting
// cold. Both run the production control — the study isolates history warmth,
// not the controller.
func coldStartArms() []Arm {
	return []Arm{
		{
			Name:          "control-warm",
			NewController: func() *core.Controller { return core.NewControl(productionABR(0)) },
			WarmSessions:  coldStartWarmup,
		},
		{
			Name:          "control-cold",
			NewController: func() *core.Controller { return core.NewControl(productionABR(0)) },
		},
	}
}

// ColdStartStudySharded runs Figure 6 as one sharded run per day: day d
// streams d+1 sessions per user with the first d excluded as warmup, so the
// recorded session is exactly the cold arm's d-th day of history convergence
// while the warm arm started with a populated history. Checkpoints land
// under run.CheckpointDir/day-NN; a graceful stop ends the study after the
// in-flight day and Resume finishes the rest.
func ColdStartStudySharded(run ShardRunConfig, days int) ([]ColdStartPoint, error) {
	base := run.CheckpointDir
	points := make([]ColdStartPoint, 0, days)
	for d := 0; d < days; d++ {
		cell := run
		cell.Arms = coldStartArms()
		cell.Experiment.SessionsPerUser = d + 1
		cell.Experiment.WarmupSessions = d
		cell.CheckpointDir = cellDir(base, fmt.Sprintf("day-%02d", d))
		res, err := RunSharded(cell)
		if err != nil {
			return points, fmt.Errorf("abtest: cold-start day %d: %w", d, err)
		}
		if res.Stopped {
			return points, nil
		}
		warm, cold := res.Arms[0], res.Arms[1]
		points = append(points, ColdStartPoint{
			Day: d,
			// Treatment (cold) vs control (warm), as in the in-memory study:
			// negative movements mean the cold start still lags.
			InitialVMAFChg: stats.WelchPercentChangeFromMoments(cold.Metrics[3].Moments, warm.Metrics[3].Moments),
		})
	}
	return points, nil
}
