package abtest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// This file implements the on-disk side of crash-resumable population runs.
//
// Layout of a checkpoint directory:
//
//	manifest.json    — run identity (config hash, arm set, shard plan) and
//	                   the status ledger of completed shards
//	shard-NNNN.ckpt  — one file per completed shard: a checksummed header
//	                   line plus the shard's serialized arm sketches
//
// Every write is atomic (tmp file + fsync + rename), so a SIGKILL at any
// instant leaves either the old file, the new file, or a stray *.tmp that
// validation ignores — never a torn file that parses. Each shard file
// carries an FNV-64a checksum of its payload; on resume, any shard whose
// file is missing, truncated, corrupted, config-mismatched, or listed twice
// in the manifest is discarded and re-run rather than merged.

const (
	checkpointSchema = "sammy-ckpt/v1"
	manifestSchema   = "sammy-manifest/v1"
	manifestName     = "manifest.json"
)

// shardFileName names shard i's checkpoint file.
func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.ckpt", i) }

// shardPayload is the serialized result of one completed shard.
type shardPayload struct {
	Schema     string              `json:"schema"`
	ConfigHash string              `json:"config_hash"`
	Shard      int                 `json:"shard"`
	Lo         int                 `json:"lo"`
	Hi         int                 `json:"hi"`
	UserErrors int                 `json:"user_errors,omitempty"`
	Retries    int                 `json:"retries,omitempty"`
	Arms       []armSketchSnapshot `json:"arms"`
}

// Manifest records a sharded run's identity and progress. It is rewritten
// atomically after every completed shard (single-process) or by the
// coordinator (multi-process).
type Manifest struct {
	Schema     string   `json:"schema"`
	ConfigHash string   `json:"config_hash"`
	Arms       []string `json:"arms"`
	Users      int      `json:"users"`
	ShardSize  int      `json:"shard_size"`
	NumShards  int      `json:"num_shards"`
	// Config is the human-readable knob capture behind ConfigHash, so a
	// resume with a different configuration can say which knob changed
	// instead of just "hash differs". Keys sort deterministically in the
	// JSON encoding.
	Config map[string]string `json:"config,omitempty"`
	Shards []ManifestShard   `json:"shards"`
	// Quarantined lists poison shards a coordinator excluded from the
	// merge after their fleet attempt budget was exhausted.
	Quarantined []ManifestQuarantine `json:"quarantined,omitempty"`
}

// ManifestShard is one completed shard's ledger entry.
type ManifestShard struct {
	Index    int    `json:"index"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	Checksum string `json:"checksum"`
	File     string `json:"file"`
}

// ManifestQuarantine is one quarantined shard's ledger entry: the shard was
// excluded from the merged tables instead of failing the run.
type ManifestQuarantine struct {
	Index    int    `json:"index"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
}

// fnvHex returns the FNV-64a hash of data as 16 hex digits.
func fnvHex(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// fsyncDir opens and fsyncs a directory, making its entry mutations
// (creates, renames, removes) durable against power loss.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// fsyncFile opens and fsyncs an existing file by path.
func fsyncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// ensureDurableDir creates dir (and parents) and fsyncs both the directory
// and its parent, so the directory itself survives a power-loss-style kill.
// Without the parent fsync, a crash right after MkdirAll can lose the whole
// checkpoint directory even though every file write inside it was synced.
func ensureDurableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := fsyncDir(dir); err != nil {
		return err
	}
	parent := filepath.Dir(dir)
	if parent == dir {
		return nil
	}
	// Best-effort on the parent: it may be outside our control (e.g. "/tmp"
	// on a platform that refuses directory fsync); the dir's own sync above
	// already covers the common case where the parent pre-existed.
	if err := fsyncDir(parent); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}

// atomicWriteFile writes data to dir/name via a temp file + fsync + rename,
// then fsyncs the renamed file and its parent directory, so a completed
// write survives power-loss-style kills (not just process SIGKILL). The
// full recipe is: write tmp, fsync tmp, rename, fsync file, fsync dir — a
// crash at any instant leaves either the old file, the new file, or a
// stray *.tmp that validation ignores.
func atomicWriteFile(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	final := filepath.Join(dir, name)
	if err := os.Rename(tmpName, final); err != nil {
		return err
	}
	if err := fsyncFile(final); err != nil {
		return err
	}
	return fsyncDir(dir)
}

// writeShardCheckpoint persists one shard's payload and returns its ledger
// entry. File format: one header line "sammy-ckpt/v1 <fnv64a> <len>\n"
// followed by the JSON payload the checksum and length describe.
func writeShardCheckpoint(dir string, p shardPayload) (ManifestShard, error) {
	p.Schema = checkpointSchema
	body, err := json.Marshal(p)
	if err != nil {
		return ManifestShard{}, err
	}
	sum := fnvHex(body)
	data := append([]byte(fmt.Sprintf("%s %s %d\n", checkpointSchema, sum, len(body))), body...)
	name := shardFileName(p.Shard)
	if err := atomicWriteFile(dir, name, data); err != nil {
		return ManifestShard{}, fmt.Errorf("abtest: checkpoint shard %d: %w", p.Shard, err)
	}
	return ManifestShard{Index: p.Shard, Lo: p.Lo, Hi: p.Hi, Checksum: sum, File: name}, nil
}

// readShardCheckpoint loads and fully validates dir/file: header shape,
// schema, payload length, checksum, and payload schema. Any mismatch is an
// error — the caller treats it as "shard not done" and re-runs the range.
// The verified payload checksum is returned for comparison against the
// manifest's ledger entry.
func readShardCheckpoint(dir, file string) (*shardPayload, string, error) {
	f, err := os.Open(filepath.Join(dir, file))
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, "", fmt.Errorf("%s: reading header: %w", file, err)
	}
	var schema, sum string
	var n int
	if _, err := fmt.Sscanf(header, "%s %s %d\n", &schema, &sum, &n); err != nil {
		return nil, "", fmt.Errorf("%s: malformed header %q", file, header)
	}
	if schema != checkpointSchema {
		return nil, "", fmt.Errorf("%s: schema %q, want %q", file, schema, checkpointSchema)
	}
	if n < 0 || n > 1<<30 {
		return nil, "", fmt.Errorf("%s: implausible payload length %d", file, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, "", fmt.Errorf("%s: truncated payload: %w", file, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, "", fmt.Errorf("%s: trailing bytes after payload", file)
	}
	if got := fnvHex(body); got != sum {
		return nil, "", fmt.Errorf("%s: checksum %s, header says %s", file, got, sum)
	}
	var p shardPayload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, "", fmt.Errorf("%s: %w", file, err)
	}
	if p.Schema != checkpointSchema {
		return nil, "", fmt.Errorf("%s: payload schema %q, want %q", file, p.Schema, checkpointSchema)
	}
	return &p, sum, nil
}

// writeManifest atomically rewrites the manifest with its entries sorted by
// shard index, so the on-disk bytes are a pure function of run progress.
func writeManifest(dir string, m Manifest) error {
	m.Schema = manifestSchema
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Index < m.Shards[j].Index })
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWriteFile(dir, manifestName, append(data, '\n'))
}

// readManifest loads dir's manifest; a missing file returns (nil, nil).
func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", manifestName, err)
	}
	if m.Schema != manifestSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", manifestName, m.Schema, manifestSchema)
	}
	return &m, nil
}

// loadCompletedShards validates a checkpoint directory against the planned
// run and returns the shards that can be trusted, keyed by shard index.
// Everything else — corrupt files, stale config hashes, ranges that do not
// match the plan, duplicate manifest entries — is reported in skipped (by
// reason) and will be re-run. A manifest from a different config discards
// the whole directory's contents.
func loadCompletedShards(dir, configHash string, plan []shardRange) (loaded map[int]*shardPayload, skipped []string, err error) {
	m, err := readManifest(dir)
	if err != nil {
		// An unreadable or torn manifest means no shard can be trusted
		// (entries may be missing); start clean rather than guess.
		return nil, []string{fmt.Sprintf("manifest unreadable (%v): re-running all shards", err)}, nil
	}
	if m == nil {
		return nil, nil, nil
	}
	if m.ConfigHash != configHash {
		return nil, []string{fmt.Sprintf("manifest config hash %s does not match run %s: re-running all shards", m.ConfigHash, configHash)}, nil
	}

	// Duplicate manifest entries for one shard index are a corruption
	// signal: drop every copy so the shard is re-run, never double-merged.
	count := make(map[int]int, len(m.Shards))
	for _, s := range m.Shards {
		count[s.Index]++
	}

	loaded = make(map[int]*shardPayload)
	for _, s := range m.Shards {
		if count[s.Index] > 1 {
			if loaded[s.Index] == nil { // report once
				skipped = append(skipped, fmt.Sprintf("shard %d: duplicate manifest entries", s.Index))
			}
			delete(loaded, s.Index)
			count[s.Index] = -1 // poison so later copies skip silently
			continue
		}
		if count[s.Index] < 0 {
			continue
		}
		if s.Index < 0 || s.Index >= len(plan) {
			skipped = append(skipped, fmt.Sprintf("shard %d: outside the planned %d shards", s.Index, len(plan)))
			continue
		}
		p, sum, rerr := readShardCheckpoint(dir, s.File)
		if rerr != nil {
			skipped = append(skipped, fmt.Sprintf("shard %d: %v", s.Index, rerr))
			continue
		}
		if p.ConfigHash != configHash {
			skipped = append(skipped, fmt.Sprintf("shard %d: config hash %s, want %s", s.Index, p.ConfigHash, configHash))
			continue
		}
		want := plan[s.Index]
		if p.Shard != s.Index || p.Lo != want.lo || p.Hi != want.hi {
			skipped = append(skipped, fmt.Sprintf("shard %d: covers users [%d,%d), plan says [%d,%d)", s.Index, p.Lo, p.Hi, want.lo, want.hi))
			continue
		}
		if sum != s.Checksum {
			// The file is internally consistent but is not the file the
			// manifest recorded (e.g. a stale shard from an older attempt
			// that the manifest rewrite raced with).
			skipped = append(skipped, fmt.Sprintf("shard %d: checksum does not match manifest", s.Index))
			continue
		}
		loaded[s.Index] = p
	}
	return loaded, skipped, nil
}
