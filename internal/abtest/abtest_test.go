package abtest

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/units"
)

// smallConfig is a reduced-size experiment big enough to show the Table 2
// shape but fast enough for CI.
func smallConfig(seed int64) Config {
	return Config{
		Population:       PopulationConfig{Users: 250, Seed: seed},
		SessionsPerUser:  3,
		ChunksPerSession: 80,
	}
}

func TestGeneratePopulation(t *testing.T) {
	users := GeneratePopulation(PopulationConfig{Users: 500, Seed: 1})
	if len(users) != 500 {
		t.Fatalf("users = %d", len(users))
	}
	var below6, above90 int
	for _, u := range users {
		if u.Path.Capacity < 500*units.Kbps {
			t.Fatalf("capacity floor violated: %v", u.Path.Capacity)
		}
		if u.Path.Capacity < 6*units.Mbps {
			below6++
		}
		if u.Path.Capacity > 90*units.Mbps {
			above90++
		}
	}
	// The mix must populate both tails of the Fig 3 buckets.
	if below6 < 8 || above90 < 10 {
		t.Errorf("capacity mix tails too thin: <6Mbps=%d >90Mbps=%d", below6, above90)
	}
}

func TestGeneratePopulationDeterministic(t *testing.T) {
	a := GeneratePopulation(PopulationConfig{Users: 10, Seed: 7})
	b := GeneratePopulation(PopulationConfig{Users: 10, Seed: 7})
	for i := range a {
		if a[i].Path.Capacity != b[i].Path.Capacity || a[i].Seed != b[i].Seed {
			t.Fatalf("population not deterministic at user %d", i)
		}
	}
}

func TestBucketIndex(t *testing.T) {
	tests := []struct {
		x    units.BitsPerSecond
		want int
	}{
		{1 * units.Mbps, 0},
		{6 * units.Mbps, 1},
		{14 * units.Mbps, 1},
		{20 * units.Mbps, 2},
		{50 * units.Mbps, 3},
		{200 * units.Mbps, 4},
	}
	for _, tt := range tests {
		if got := BucketIndex(tt.x); got != tt.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestMainExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment")
	}
	results := Run(smallConfig(11), []Arm{ControlArm(), SammyArm(core.DefaultC0, core.DefaultC1)})
	control, sammy := results[0], results[1]

	if len(control.Sessions) == 0 || len(sammy.Sessions) != len(control.Sessions) {
		t.Fatalf("session counts: control=%d sammy=%d", len(control.Sessions), len(sammy.Sessions))
	}

	// Calibration: the control's median throughput-to-bitrate ratio should
	// be in the neighbourhood of the paper's 13×.
	ratio := MedianThroughputToBitrateRatio(control)
	if ratio < 5 || ratio > 25 {
		t.Errorf("control throughput/bitrate ratio = %.1f, want ≈ 13", ratio)
	}

	rows := Compare(sammy, control, 99)
	byName := map[string]TableRow{}
	for _, r := range rows {
		byName[r.Metric] = r
	}

	// Table 2 shape: a large significant throughput reduction...
	tput := byName["ChunkThroughputMbps"]
	if !tput.Significant() || tput.CI.Point > -30 {
		t.Errorf("throughput change = %v, want large reduction", tput.CI)
	}
	// ...retransmits and RTT improve...
	if r := byName["RetransmitPct"]; r.CI.Point > 0 && r.Significant() {
		t.Errorf("retransmits worsened: %v", r.CI)
	}
	if r := byName["RTTms"]; r.CI.Point > 0 && r.Significant() {
		t.Errorf("RTT worsened: %v", r.CI)
	}
	// ...quality and play delay do not regress materially...
	if r := byName["VMAF"]; r.Significant() && r.CI.Point < -0.5 {
		t.Errorf("VMAF regressed: %v", r.CI)
	}
	if r := byName["InitialVMAF"]; r.Significant() && r.CI.Point < -0.5 {
		t.Errorf("initial VMAF regressed: %v", r.CI)
	}
	if r := byName["PlayDelayMs"]; r.Significant() && r.CI.Point > 2 {
		t.Errorf("play delay regressed: %v", r.CI)
	}
	// ...and rebuffers do not blow up.
	if r := byName["RebuffersPerHour"]; r.Significant() && r.CI.Point > 25 {
		t.Errorf("rebuffers regressed: %v", r.CI)
	}
}

func TestFig3BucketsMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment")
	}
	results := Run(smallConfig(13), []Arm{ControlArm(), SammyArm(core.DefaultC0, core.DefaultC1)})
	rows := CompareByPreExperiment(results[1], results[0], 5)
	if len(rows) != len(PreExpBuckets) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Fig 3 shape: little/no reduction in the slowest bucket, large
	// reduction in the fastest, roughly monotone in between.
	slowest, fastest := rows[0], rows[len(rows)-1]
	if fastest.Sessions == 0 || slowest.Sessions == 0 {
		t.Fatalf("empty buckets: %+v", rows)
	}
	if fastest.CI.Point > -50 {
		t.Errorf(">90Mbps bucket change = %v, want ≈ -74%%", fastest.CI)
	}
	if slowest.CI.Point < -35 {
		t.Errorf("<6Mbps bucket change = %v, want small", slowest.CI)
	}
	if !(fastest.CI.Point < slowest.CI.Point) {
		t.Errorf("reduction should grow with pre-experiment throughput: %v vs %v", fastest.CI, slowest.CI)
	}
}

func TestNaiveBaselineUnderperformsSammy(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment")
	}
	results := Run(smallConfig(17), []Arm{
		ControlArm(),
		SammyArm(core.DefaultC0, core.DefaultC1),
		{Name: "naive-4x", NewController: func() *core.Controller {
			return core.NewNaiveBaseline(productionABR(0), 4)
		}},
	})
	control := results[0]
	sammyRows := rowsByName(Compare(results[1], control, 3))
	naiveRows := rowsByName(Compare(results[2], control, 3))

	// §5.5: the naive baseline increases play delay (it paces the initial
	// phase); Sammy does not.
	if naiveRows["PlayDelayMs"].CI.Point <= sammyRows["PlayDelayMs"].CI.Point {
		t.Errorf("naive play delay %v should be worse than Sammy %v",
			naiveRows["PlayDelayMs"].CI, sammyRows["PlayDelayMs"].CI)
	}
	if !naiveRows["PlayDelayMs"].Significant() || naiveRows["PlayDelayMs"].CI.Point < 0 {
		t.Errorf("naive baseline should significantly increase play delay: %v", naiveRows["PlayDelayMs"].CI)
	}
	// Sammy achieves at least as much throughput reduction.
	if sammyRows["ChunkThroughputMbps"].CI.Point > naiveRows["ChunkThroughputMbps"].CI.Point+8 {
		t.Errorf("Sammy reduction %v should be comparable or better than naive %v",
			sammyRows["ChunkThroughputMbps"].CI, naiveRows["ChunkThroughputMbps"].CI)
	}
}

func TestInitialOnlyArmImprovesStartupOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment")
	}
	results := Run(smallConfig(19), []Arm{
		ControlArm(),
		{Name: "initial-only", NewController: func() *core.Controller {
			return core.NewInitialOnly(productionABR(retunedStartupSafety))
		}},
	})
	rows := rowsByName(Compare(results[1], results[0], 3))
	// Table 3 shape: throughput unchanged (no pacing)...
	if r := rows["ChunkThroughputMbps"]; r.Significant() && math.Abs(r.CI.Point) > 10 {
		t.Errorf("initial-only arm moved throughput: %v", r.CI)
	}
	// ...initial quality and/or play delay improve, neither regresses.
	improved := rows["InitialVMAF"].CI.Point > 0 || rows["PlayDelayMs"].CI.Point < 0
	if !improved {
		t.Errorf("initial-only arm shows no startup improvement: initVMAF=%v playDelay=%v",
			rows["InitialVMAF"].CI, rows["PlayDelayMs"].CI)
	}
	if r := rows["InitialVMAF"]; r.Significant() && r.CI.Point < -0.3 {
		t.Errorf("initial VMAF regressed: %v", r.CI)
	}
}

func rowsByName(rows []TableRow) map[string]TableRow {
	m := make(map[string]TableRow, len(rows))
	for _, r := range rows {
		m[r.Metric] = r
	}
	return m
}

func TestFormatTable(t *testing.T) {
	rows := []TableRow{
		{Metric: "ChunkThroughputMbps", CI: stats.CI{Point: -61, Lo: -62, Hi: -60}},
		{Metric: "VMAF", CI: stats.CI{Point: 0.04, Lo: -0.1, Hi: 0.2}},
	}
	out := FormatTable("Table 2", rows)
	if want := "-61.00%"; !strings.Contains(out, want) {
		t.Errorf("missing %q in:\n%s", want, out)
	}
	if !strings.Contains(out, "–") {
		t.Errorf("insignificant row should print –:\n%s", out)
	}
}
