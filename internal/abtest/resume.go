package abtest

import (
	"fmt"
	"sort"
	"strings"
)

// This file turns the opaque "config hash mismatch" resume failure into a
// diagnosis: the manifest stores the knob capture behind its hash, and a
// mismatched resume diffs the stored knobs against the current run's to
// say exactly which flag changed.

// configKnobs captures every knob configHash fingerprints as readable
// key → value strings. It must stay in lockstep with configHash: two
// configs with equal knob maps must hash equally and vice versa.
func configKnobs(cfg Config, arms []Arm, shardSize int) map[string]string {
	cfg = cfg.withDefaults()
	p := cfg.Population
	k := map[string]string{
		"users":              fmt.Sprintf("%d", p.Users),
		"seed":               fmt.Sprintf("%d", p.Seed),
		"median_capacity":    fmt.Sprintf("%v", p.MedianCapacity),
		"capacity_sigma":     fmt.Sprintf("%v", p.CapacitySigma),
		"median_rtt":         fmt.Sprintf("%v", p.MedianRTT),
		"rtt_sigma":          fmt.Sprintf("%v", p.RTTSigma),
		"sessions_per_user":  fmt.Sprintf("%d", cfg.SessionsPerUser),
		"warmup_sessions":    fmt.Sprintf("%d", cfg.WarmupSessions),
		"chunks_per_session": fmt.Sprintf("%d", cfg.ChunksPerSession),
		"chunk_duration":     fmt.Sprintf("%v", cfg.ChunkDuration),
		"ladder":             fmt.Sprintf("%v", cfg.Ladder),
		"shard_size":         fmt.Sprintf("%d", shardSize),
		"sketch_compression": fmt.Sprintf("%d", sketchCompression),
		"arms":               strings.Join(hashedArmNames(arms), ","),
	}
	if p.Faults != nil {
		k["faults"] = fmt.Sprintf("%+v", *p.Faults)
	}
	return k
}

// knobFlags maps knob keys to the sammy-eval flag that sets them, for
// actionable mismatch messages.
var knobFlags = map[string]string{
	"users":              "-users",
	"seed":               "-seed",
	"sessions_per_user":  "-sessions",
	"chunks_per_session": "-chunks",
	"shard_size":         "-shards",
	"faults":             "-chaos",
}

// DiffConfigKnobs compares a stored knob capture against the current run's
// and returns one human-readable line per difference, sorted by knob name.
// A nil stored map (manifest predating knob capture) yields a single
// explanatory line.
func DiffConfigKnobs(stored, now map[string]string) []string {
	if len(stored) == 0 {
		return []string{"stored manifest predates knob capture; cannot name the changed knob"}
	}
	keys := make(map[string]bool, len(stored)+len(now))
	for k := range stored {
		keys[k] = true
	}
	for k := range now {
		keys[k] = true
	}
	var out []string
	for k := range keys {
		s, sok := stored[k]
		n, nok := now[k]
		if sok && nok && s == n {
			continue
		}
		if !sok {
			s = "(unset)"
		}
		if !nok {
			n = "(unset)"
		}
		line := fmt.Sprintf("%s: checkpoint has %s, this run has %s", k, s, n)
		if flag, ok := knobFlags[k]; ok {
			line += fmt.Sprintf(" (flag %s)", flag)
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}

// ResumeMismatchError reports that a checkpoint directory was written by a
// run with a different configuration, with the knob-level diff.
type ResumeMismatchError struct {
	Dir        string
	StoredHash string
	RunHash    string
	Changed    []string
}

func (e *ResumeMismatchError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "checkpoint dir %s belongs to a run with config hash %s; this run is %s\n",
		e.Dir, e.StoredHash, e.RunHash)
	for _, c := range e.Changed {
		fmt.Fprintf(&sb, "  changed %s\n", c)
	}
	sb.WriteString("  rotate -checkpoint-dir (or delete the directory) to start a fresh run")
	return sb.String()
}

// CheckResumeConfig compares dir's manifest — if one exists — against the
// current run configuration and returns a *ResumeMismatchError naming the
// changed knobs when they differ. A missing or unreadable manifest returns
// nil: there is nothing coherent to mismatch against (an unreadable one is
// handled by the shard loader, which re-runs everything).
func CheckResumeConfig(dir string, cfg Config, arms []Arm, shardSize int) error {
	if dir == "" {
		return nil
	}
	m, err := readManifest(dir)
	if err != nil || m == nil {
		return nil
	}
	hash := configHash(cfg, arms, shardSize)
	if m.ConfigHash == hash {
		return nil
	}
	return &ResumeMismatchError{
		Dir:        dir,
		StoredHash: m.ConfigHash,
		RunHash:    hash,
		Changed:    DiffConfigKnobs(m.Config, configKnobs(cfg, arms, shardSize)),
	}
}
