package abtest

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/abr"
	"repro/internal/core"
)

// goldenShardedHash pins the byte-exact sharded Table 2 + Fig 3 output for
// shardConfig(7). Every path to this output — uninterrupted, killed and
// resumed, resumed over corrupted checkpoints — must reproduce it exactly.
const goldenShardedHash = "bf50229c950e3e85"

// shardConfig is a small sharded run: 48 users in 5 shards of 10.
func shardConfig(seed int64) ShardRunConfig {
	return ShardRunConfig{
		Experiment: Config{
			Population:       PopulationConfig{Users: 48, Seed: seed},
			SessionsPerUser:  2,
			ChunksPerSession: 20,
		},
		Arms:      []Arm{ControlArm(), SammyArm(core.DefaultC0, core.DefaultC1)},
		ShardSize: 10,
	}
}

// renderSharded formats the full deliverable (Table 2 + Fig 3 rows) so
// byte-identity tests compare what a user would actually read.
func renderSharded(res *ShardedResult) string {
	var sb strings.Builder
	sb.WriteString(FormatSketchTable("Table 2 (sharded)", CompareSketches(res.Arms[1], res.Arms[0])))
	for _, r := range CompareBucketSketches(res.Arms[1], res.Arms[0]) {
		fmt.Fprintf(&sb, "  %-10s n=%d %+.2f%% [%.2f, %.2f] median %+.2f%%\n",
			r.Bucket, r.Sessions, r.MeanChg.Point, r.MeanChg.Lo, r.MeanChg.Hi, r.MedianChgPct)
	}
	return sb.String()
}

func hashString(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestGenerateUserRangeMatchesPopulation(t *testing.T) {
	cfg := PopulationConfig{Users: 100, Seed: 11}
	full := GeneratePopulation(cfg)
	for _, r := range []struct{ lo, hi int }{{0, 30}, {30, 60}, {60, 100}, {97, 100}, {50, 50}} {
		part := GenerateUserRange(cfg, r.lo, r.hi)
		if len(part) != r.hi-r.lo {
			t.Fatalf("range [%d,%d): got %d users", r.lo, r.hi, len(part))
		}
		for i, u := range part {
			want := full[r.lo+i]
			if u.ID != want.ID || u.Seed != want.Seed || u.TopBitrate != want.TopBitrate ||
				u.Path != want.Path {
				t.Errorf("range [%d,%d) user %d differs from full population", r.lo, r.hi, i)
			}
		}
	}
}

func TestRunShardedUninterruptedGolden(t *testing.T) {
	res, err := RunSharded(shardConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done() || res.Completed != 5 || res.Resumed != 0 || res.UserErrors != 0 {
		t.Fatalf("unexpected ledger: %+v", res)
	}
	wantSessions := 48 * 1 // 2 sessions/user, 1 warmup
	for _, a := range res.Arms {
		if a.Sessions != wantSessions {
			t.Fatalf("arm %s has %d sessions, want %d", a.Name, a.Sessions, wantSessions)
		}
	}
	out := renderSharded(res)
	if got := hashString(out); got != goldenShardedHash {
		t.Errorf("sharded golden hash %s, want %s\noutput:\n%s", got, goldenShardedHash, out)
	}
}

// TestRunShardedKillResumeByteIdentical is the headline robustness property:
// stop a checkpointed run mid-way, corrupt one of the completed shard files,
// resume, and the final tables are byte-identical to an uninterrupted run.
func TestRunShardedKillResumeByteIdentical(t *testing.T) {
	uninterrupted, err := RunSharded(shardConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	want := renderSharded(uninterrupted)

	dir := t.TempDir()
	stop := make(chan struct{})
	cfg := shardConfig(7)
	cfg.CheckpointDir = dir
	done := 0
	cfg.Progress = func(ev ShardEvent) {
		if ev.Status == "done" {
			if done++; done == 2 {
				close(stop) // request a graceful stop after the second shard
			}
		}
	}
	cfg.Stop = stop
	partial, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Stopped || partial.Completed != 2 || partial.Done() {
		t.Fatalf("expected a stop after 2 shards, got %+v", partial)
	}

	// Corrupt one completed checkpoint: flip a byte in the middle of the
	// payload. The resume must detect it and re-run that shard.
	name := filepath.Join(dir, shardFileName(1))
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg = shardConfig(7)
	cfg.CheckpointDir = dir
	cfg.Resume = true
	resumed, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Done() || resumed.Resumed != 1 || resumed.Completed != 4 {
		t.Fatalf("expected 1 resumed + 4 run shards, got %+v", resumed)
	}
	if len(resumed.Skipped) != 1 || !strings.Contains(resumed.Skipped[0], "shard 1") {
		t.Fatalf("expected the corrupted shard to be reported, got %v", resumed.Skipped)
	}
	got := renderSharded(resumed)
	if got != want {
		t.Errorf("resumed output differs from uninterrupted run:\n--- resumed\n%s--- uninterrupted\n%s", got, want)
	}
	if h := hashString(got); h != goldenShardedHash {
		t.Errorf("resumed golden hash %s, want %s", h, goldenShardedHash)
	}
}

// TestCheckpointIntegrity feeds the loader every corruption the format is
// designed to catch; in each case the damaged shard must be re-run, never
// merged, and the final output must stay byte-identical.
func TestCheckpointIntegrity(t *testing.T) {
	base := shardConfig(7)
	want := func() string {
		res, err := RunSharded(base)
		if err != nil {
			t.Fatal(err)
		}
		return renderSharded(res)
	}()

	complete := func(t *testing.T) string {
		dir := t.TempDir()
		cfg := shardConfig(7)
		cfg.CheckpointDir = dir
		if _, err := RunSharded(cfg); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		// rerun is how many shards the resume must re-run (out of 5).
		rerun   int
		skipped string // substring required in Skipped
	}{
		{
			name: "truncated shard file",
			corrupt: func(t *testing.T, dir string) {
				name := filepath.Join(dir, shardFileName(2))
				data, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(name, data[:len(data)/3], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			rerun:   1,
			skipped: "shard 2",
		},
		{
			name: "flipped payload byte",
			corrupt: func(t *testing.T, dir string) {
				name := filepath.Join(dir, shardFileName(4))
				data, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)-3] ^= 1
				if err := os.WriteFile(name, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			rerun:   1,
			skipped: "shard 4",
		},
		{
			name: "missing shard file",
			corrupt: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, shardFileName(0))); err != nil {
					t.Fatal(err)
				}
			},
			rerun:   1,
			skipped: "shard 0",
		},
		{
			name: "stale config hash in manifest",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *Manifest) { m.ConfigHash = "feedfacefeedface" })
			},
			rerun:   5,
			skipped: "config hash",
		},
		{
			name: "duplicate manifest entries",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(m *Manifest) {
					m.Shards = append(m.Shards, m.Shards[3])
				})
			},
			rerun:   1,
			skipped: "duplicate",
		},
		{
			name: "manifest not json",
			corrupt: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			rerun:   5,
			skipped: "manifest unreadable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := complete(t)
			tc.corrupt(t, dir)
			cfg := shardConfig(7)
			cfg.CheckpointDir = dir
			cfg.Resume = true
			res, err := RunSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done() || res.Completed != tc.rerun || res.Resumed != 5-tc.rerun {
				t.Fatalf("expected %d re-run shards, got %+v", tc.rerun, res)
			}
			found := false
			for _, s := range res.Skipped {
				if strings.Contains(s, tc.skipped) {
					found = true
				}
			}
			if !found {
				t.Errorf("skipped reasons %v missing %q", res.Skipped, tc.skipped)
			}
			if got := renderSharded(res); got != want {
				t.Errorf("output after %s differs from clean run", tc.name)
			}
		})
	}
}

// rewriteManifest loads, mutates and rewrites the manifest JSON in place.
func rewriteManifest(t *testing.T, dir string, mutate func(*Manifest)) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	mutate(&m)
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// panicABR panics on the nth SelectRung call, modelling a controller bug
// that only trips mid-session.
type panicABR struct {
	abr.Algorithm
	calls, fuse int
}

func (p *panicABR) SelectRung(ctx abr.Context) int {
	if p.calls++; p.calls == p.fuse {
		panic("deliberate test panic")
	}
	return p.Algorithm.SelectRung(ctx)
}

// poisonArm is an arm whose every user panics mid-session.
func poisonArm() Arm {
	return Arm{
		Name: "poison",
		NewController: func() *core.Controller {
			return core.NewControl(&panicABR{Algorithm: productionABR(0), fuse: 7})
		},
	}
}

// TestRunRecoversPanickingController is the in-memory regression test: a
// controller that panics must not crash Run, must be counted in Errors, and
// must not perturb the other arms.
func TestRunRecoversPanickingController(t *testing.T) {
	cfg := Config{
		Population:       PopulationConfig{Users: 12, Seed: 3},
		SessionsPerUser:  2,
		ChunksPerSession: 20,
	}
	clean := Run(cfg, []Arm{ControlArm()})
	results := Run(cfg, []Arm{ControlArm(), poisonArm()})

	control, poison := results[0], results[1]
	if control.Errors != 0 || len(control.Sessions) != len(clean[0].Sessions) {
		t.Fatalf("control arm perturbed by poison arm: %d errors, %d sessions (want %d)",
			control.Errors, len(control.Sessions), len(clean[0].Sessions))
	}
	for i := range control.Sessions {
		if control.Sessions[i] != clean[0].Sessions[i] {
			t.Fatalf("control session %d changed when a poison arm ran alongside", i)
		}
	}
	if poison.Errors != 12 {
		t.Errorf("poison arm errors = %d, want 12", poison.Errors)
	}
	if len(poison.Sessions) != 0 {
		t.Errorf("poison arm recorded %d sessions from failed users", len(poison.Sessions))
	}
}

// TestRunShardedExcludesFailedUsersEverywhere checks the paired-design rule:
// a user who fails in any arm is excluded from every arm's sketches, and the
// shard retry budget is respected.
func TestRunShardedExcludesFailedUsersEverywhere(t *testing.T) {
	cfg := shardConfig(9)
	cfg.Experiment.Population.Users = 20
	cfg.ShardSize = 10
	cfg.Arms = []Arm{ControlArm(), poisonArm()}
	cfg.MaxShardRetries = 1
	retried := 0
	cfg.Progress = func(ev ShardEvent) {
		if ev.Status == "retried" {
			retried++
		}
	}
	res, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done() {
		t.Fatalf("run did not finish: %+v", res)
	}
	if res.UserErrors != 20 {
		t.Errorf("UserErrors = %d, want 20 (every user fails in the poison arm)", res.UserErrors)
	}
	if retried != 2 {
		t.Errorf("retried events = %d, want 2 (one per shard)", retried)
	}
	for _, a := range res.Arms {
		if a.Sessions != 0 {
			t.Errorf("arm %s kept %d sessions from users that failed elsewhere", a.Name, a.Sessions)
		}
		if a.Errors != 20 {
			t.Errorf("arm %s errors = %d, want 20", a.Name, a.Errors)
		}
	}
}

// TestRunShardedMemoryBounded asserts the point of sharding: peak live heap
// tracks the shard size, not the population. A 10x larger population run
// with the same shard size must stay within a small factor of the small
// run's heap.
func TestRunShardedMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-bound test runs thousands of users")
	}
	peakHeap := func(users int) uint64 {
		cfg := ShardRunConfig{
			Experiment: Config{
				Population:       PopulationConfig{Users: users, Seed: 21},
				SessionsPerUser:  1,
				ChunksPerSession: 4,
			},
			Arms:      []Arm{ControlArm(), SammyArm(core.DefaultC0, core.DefaultC1)},
			ShardSize: 250,
		}
		var peak uint64
		cfg.Progress = func(ev ShardEvent) {
			if ev.Status != "done" {
				return
			}
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		if _, err := RunSharded(cfg); err != nil {
			t.Fatal(err)
		}
		return peak
	}
	small := peakHeap(1000)
	large := peakHeap(10000)
	// Allow generous slack for runtime noise and the O(numShards) manifest:
	// the failure mode this guards against is O(population) session buffers,
	// which would blow past 10x here, not 3x.
	if large > 3*small+8<<20 {
		t.Errorf("peak heap grew with population: %d users -> %d bytes, %d users -> %d bytes",
			1000, small, 10000, large)
	}
}
