package abtest

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/core"
)

// goldenABHash is the FNV-1a hash of the fixed-seed A/B population run
// below, recorded before the allocation-free event-core rewrite (PR 3). It
// pins byte-identical session records across versions: pooling, scheduler
// and lookahead optimizations must not move a single bit of any session's
// QoE. Update only for intentional semantic changes (rerun with
// -run TestGoldenABTrace -v to print the new value).
const goldenABHash = "ab825cc6c9dd4eeb"

// TestGoldenABTrace is the cross-version determinism lock for abtest.Run:
// the full session-record stream of a control-vs-Sammy population at fixed
// seed must hash to the recorded constant.
func TestGoldenABTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment")
	}
	cfg := Config{
		Population:       PopulationConfig{Users: 60, Seed: 5},
		SessionsPerUser:  2,
		ChunksPerSession: 30,
	}
	results := Run(cfg, []Arm{ControlArm(), SammyArm(core.DefaultC0, core.DefaultC1)})
	h := fnv.New64a()
	for _, arm := range results {
		fmt.Fprintf(h, "arm %s\n", arm.Name)
		for _, s := range arm.Sessions {
			fmt.Fprintf(h, "%d %v %v\n", s.UserID, s.PreExp, s.QoE)
		}
	}
	got := fmt.Sprintf("%016x", h.Sum64())
	if got != goldenABHash {
		t.Errorf("golden A/B trace hash = %s, want %s\n"+
			"(fixed-seed session records changed: runs are no longer "+
			"byte-identical across versions)", got, goldenABHash)
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment")
	}
	cfg := Config{
		Population:       PopulationConfig{Users: 60, Seed: 5},
		SessionsPerUser:  2,
		ChunksPerSession: 30,
	}
	arms := func() []Arm {
		return []Arm{ControlArm(), SammyArm(core.DefaultC0, core.DefaultC1)}
	}
	a := Run(cfg, arms())
	b := Run(cfg, arms())
	for armIdx := range a {
		if len(a[armIdx].Sessions) != len(b[armIdx].Sessions) {
			t.Fatalf("arm %d session counts differ", armIdx)
		}
		for i := range a[armIdx].Sessions {
			if a[armIdx].Sessions[i].QoE != b[armIdx].Sessions[i].QoE {
				t.Fatalf("arm %d session %d differs between runs:\n%+v\n%+v",
					armIdx, i, a[armIdx].Sessions[i].QoE, b[armIdx].Sessions[i].QoE)
			}
		}
	}
}

func TestPairedDesignSharesUsersAcrossArms(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment")
	}
	cfg := Config{
		Population:       PopulationConfig{Users: 40, Seed: 9},
		SessionsPerUser:  2,
		ChunksPerSession: 20,
	}
	results := Run(cfg, []Arm{ControlArm(), ControlArm()})
	// Two identical arms over the paired design must produce identical
	// sessions — the property that gives the A/B comparison its power.
	for i := range results[0].Sessions {
		if results[0].Sessions[i].QoE != results[1].Sessions[i].QoE {
			t.Fatalf("identical arms diverged at session %d", i)
		}
	}
}

func TestStandardArmsComplete(t *testing.T) {
	arms := StandardArms()
	if len(arms) != 4 {
		t.Fatalf("arms = %d", len(arms))
	}
	names := map[string]bool{}
	for _, a := range arms {
		ctrl := a.NewController()
		if ctrl == nil {
			t.Fatalf("%s: nil controller", a.Name)
		}
		names[ctrl.Name()] = true
	}
	for _, want := range []string{"control", "sammy", "naive-baseline", "initial-only"} {
		if !names[want] {
			t.Errorf("missing standard arm %q (have %v)", want, names)
		}
	}
}

func TestMedianOf(t *testing.T) {
	r := ArmResult{Name: "x"}
	for _, v := range []float64{1, 2, 3, 4, 100} {
		rec := SessionRecord{}
		rec.QoE.VMAF = v
		r.Sessions = append(r.Sessions, rec)
	}
	// Metrics[4] is VMAF.
	if got := MedianOf(r, Metrics[4]); got != 3 {
		t.Errorf("MedianOf = %v, want 3", got)
	}
}
