package abtest

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/obs"
	trace "repro/internal/obs/trace"
)

// This file is the crash-resumable population runner: the experiment is cut
// into deterministic shards (contiguous user-id ranges whose per-user RNG
// streams derive from the population seed exactly as in the in-memory
// path), each shard streams its sessions into ArmSketches, and completed
// shards are checkpointed to disk so a killed run resumes from the last
// finished shard. Memory is bounded by the shard size — the full
// []SessionRecord of the population never exists.

// DefaultShardSize is the users-per-shard default: large enough that the
// per-shard fixed costs (population fast-forward, checkpoint write) vanish,
// small enough that a resume loses at most a few core-minutes of work.
const DefaultShardSize = 1000

// DefaultShardRetries bounds how many times a shard with failed users is
// re-run before the run accepts the shard with those users excluded.
const DefaultShardRetries = 2

// shardRange is one planned shard: users [lo, hi).
type shardRange struct{ lo, hi int }

// planShards cuts n users into shardSize-sized ranges.
func planShards(n, shardSize int) []shardRange {
	var plan []shardRange
	for lo := 0; lo < n; lo += shardSize {
		hi := lo + shardSize
		if hi > n {
			hi = n
		}
		plan = append(plan, shardRange{lo, hi})
	}
	return plan
}

// ShardRunConfig parameterizes a sharded population run.
type ShardRunConfig struct {
	// Experiment is the underlying experiment configuration; Population.Users
	// is the total population the shards cover.
	Experiment Config
	// Arms are the experiment cells; results come back as one ArmSketch per
	// arm in the same order.
	Arms []Arm
	// ShardSize is users per shard. Default DefaultShardSize.
	ShardSize int
	// CheckpointDir, when set, persists each completed shard (and a
	// manifest) into the directory. Empty disables checkpointing: the run
	// still streams shard-by-shard in bounded memory, it just cannot resume.
	CheckpointDir string
	// Resume loads valid shard checkpoints from CheckpointDir and re-runs
	// only the missing or invalid ranges. Without Resume, existing
	// checkpoint state is ignored and overwritten.
	Resume bool
	// MaxShardRetries re-runs a shard whose users failed (recovered panics)
	// this many extra times before accepting it with those users excluded.
	// Default DefaultShardRetries.
	MaxShardRetries int
	// Stop, when non-nil, requests a graceful stop: the in-flight shard
	// finishes and checkpoints, no further shard starts, and RunSharded
	// returns a partial result with Stopped set.
	Stop <-chan struct{}
	// Progress, when non-nil, observes shard lifecycle events.
	Progress func(ShardEvent)
	// Metrics, when non-nil, records shard progress counters/gauges.
	Metrics *ShardMetrics
}

func (c ShardRunConfig) withDefaults() ShardRunConfig {
	c.Experiment = c.Experiment.withDefaults()
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
	if c.MaxShardRetries < 0 {
		c.MaxShardRetries = 0
	} else if c.MaxShardRetries == 0 {
		c.MaxShardRetries = DefaultShardRetries
	}
	return c
}

// ShardEvent is one shard lifecycle notification.
type ShardEvent struct {
	Shard     int
	NumShards int
	Lo, Hi    int
	// Status is "resumed" (loaded from checkpoint), "done" (ran), "retried"
	// (a re-run after user failures), or "stopped" (run ended before this
	// shard started).
	Status     string
	UserErrors int
}

// ShardMetrics holds the runner's observability hooks, nil-guarded like
// every metrics struct in the repo.
type ShardMetrics struct {
	ShardsCompleted *obs.Counter // shards run to completion this process
	ShardsResumed   *obs.Counter // shards loaded from checkpoints
	ShardsRetried   *obs.Counter // shard re-runs after user failures
	UsersCompleted  *obs.Counter // users whose session sequences finished
	UserErrors      *obs.Counter // users excluded by recovered failures
	ShardProgress   *obs.Gauge   // completed+resumed shards / total
	Recorder        *obs.Recorder
}

// NewShardMetrics builds a ShardMetrics wired to registry r (nil r yields
// nil, keeping instrumentation off).
func NewShardMetrics(r *obs.Registry) *ShardMetrics {
	if r == nil {
		return nil
	}
	return &ShardMetrics{
		ShardsCompleted: r.Counter("abtest_shards_completed"),
		ShardsResumed:   r.Counter("abtest_shards_resumed"),
		ShardsRetried:   r.Counter("abtest_shards_retried"),
		UsersCompleted:  r.Counter("abtest_users_completed"),
		UserErrors:      r.Counter("abtest_user_errors"),
		ShardProgress:   r.Gauge("abtest_shard_progress"),
		Recorder:        r.Recorder(),
	}
}

// ShardedResult is the outcome of a sharded run: merged per-arm sketches
// plus the run ledger.
type ShardedResult struct {
	Arms []*ArmSketch
	// NumShards is the planned shard count; Completed were run in this
	// process, Resumed were loaded from checkpoints.
	NumShards, Completed, Resumed int
	// UserErrors counts users excluded across all shards after retries.
	UserErrors int
	// Skipped lists checkpoint-validation rejections ("shard 3: checksum
	// mismatch"), each of which caused a re-run.
	Skipped []string
	// Stopped reports that a graceful stop ended the run early; the result
	// covers only the finished shards and the run can be resumed.
	Stopped bool
	// Recovered counts dead workers' shards a coordinator re-claimed and
	// re-ran in-process (multi-process runs only).
	Recovered int
	// Quarantined lists poison shards a coordinator excluded from the
	// merge after retry exhaustion, ascending by index. The tables cover
	// every other shard; quarantined user ranges are simply absent.
	Quarantined []ManifestQuarantine
}

// Done reports whether every planned shard is accounted for — merged or
// quarantined.
func (r *ShardedResult) Done() bool {
	return r.Completed+r.Resumed+len(r.Quarantined) == r.NumShards
}

// configHash fingerprints everything that defines a sharded run's output:
// the population parameters, session schedule, ladder, arm set and shard
// plan. Checkpoints from a run with a different hash are never merged.
func configHash(cfg Config, arms []Arm, shardSize int) string {
	cfg = cfg.withDefaults()
	h := fnv.New64a()
	p := cfg.Population
	fmt.Fprintf(h, "users %d seed %d cap %v sigma %v rtt %v rttsigma %v\n",
		p.Users, p.Seed, p.MedianCapacity, p.CapacitySigma, p.MedianRTT, p.RTTSigma)
	if p.Faults != nil {
		fmt.Fprintf(h, "faults %+v\n", *p.Faults)
	}
	fmt.Fprintf(h, "sessions %d warmup %d chunks %d dur %v ladder %v parallel-invariant\n",
		cfg.SessionsPerUser, cfg.WarmupSessions, cfg.ChunksPerSession, cfg.ChunkDuration, cfg.Ladder)
	fmt.Fprintf(h, "shard %d sketch %d arms", shardSize, sketchCompression)
	for _, n := range hashedArmNames(arms) {
		fmt.Fprintf(h, " %s", n)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// armNames extracts the arm name list for the manifest.
func armNames(arms []Arm) []string {
	names := make([]string, len(arms))
	for i, a := range arms {
		names[i] = a.Name
	}
	return names
}

// hashedArmNames renders each arm as it feeds the config hash: the name,
// plus the history warm-up when one is set (a warmed arm produces different
// output than a cold one of the same name, so it must move the hash). Plain
// names stay unchanged so PR 8-era checkpoints keep their hashes.
func hashedArmNames(arms []Arm) []string {
	names := make([]string, len(arms))
	for i, a := range arms {
		names[i] = a.Name
		if a.WarmSessions > 0 {
			names[i] = fmt.Sprintf("%s/warm%d", a.Name, a.WarmSessions)
		}
	}
	return names
}

// RunSharded executes the experiment shard by shard in bounded memory,
// optionally checkpointing and resuming. For a fixed configuration the
// merged sketches are byte-for-byte deterministic regardless of where the
// run was killed and resumed: each shard's sketch is folded sequentially in
// user order after its parallel session phase, checkpoint serialization
// round-trips floats exactly, and shards merge in ascending index order.
func RunSharded(cfg ShardRunConfig) (*ShardedResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Arms) == 0 {
		return nil, fmt.Errorf("abtest: sharded run needs at least one arm")
	}
	if cfg.Experiment.Population.Users <= 0 {
		return nil, fmt.Errorf("abtest: sharded run needs a population size")
	}
	plan := planShards(cfg.Experiment.Population.Users, cfg.ShardSize)
	hash := configHash(cfg.Experiment, cfg.Arms, cfg.ShardSize)
	res := &ShardedResult{NumShards: len(plan)}

	var loaded map[int]*shardPayload
	if cfg.CheckpointDir != "" {
		if err := ensureDurableDir(cfg.CheckpointDir); err != nil {
			return nil, fmt.Errorf("abtest: checkpoint dir: %w", err)
		}
		if cfg.Resume {
			var err error
			loaded, res.Skipped, err = loadCompletedShards(cfg.CheckpointDir, hash, plan)
			if err != nil {
				return nil, err
			}
		}
	}

	manifest := Manifest{
		ConfigHash: hash,
		Arms:       armNames(cfg.Arms),
		Users:      cfg.Experiment.Population.Users,
		ShardSize:  cfg.ShardSize,
		NumShards:  len(plan),
		Config:     configKnobs(cfg.Experiment, cfg.Arms, cfg.ShardSize),
	}

	// Shards are visited — and therefore merged — in ascending index order
	// whether each one was resumed from disk or run live, which is the fixed
	// merge order byte-identical resumption depends on. Merging as we go
	// keeps memory at one in-flight shard plus the running sketches.
	res.Arms = make([]*ArmSketch, len(cfg.Arms))
	for a, arm := range cfg.Arms {
		res.Arms[a] = NewArmSketch(arm.Name)
	}
	mergeShard := func(arms []*ArmSketch) error {
		for a := range res.Arms {
			if err := res.Arms[a].Merge(arms[a]); err != nil {
				return err
			}
		}
		return nil
	}
	stopped := false
	for i, r := range plan {
		if p, ok := loaded[i]; ok {
			arms, err := shardArmsFromPayload(p, cfg.Arms)
			if err != nil {
				// Validation accepted the file but its sketches don't match
				// the arm set; treat like any other corruption and re-run.
				res.Skipped = append(res.Skipped, fmt.Sprintf("shard %d: %v", i, err))
			} else {
				if err := mergeShard(arms); err != nil {
					return nil, err
				}
				res.Resumed++
				res.UserErrors += p.UserErrors
				manifest.Shards = append(manifest.Shards, ManifestShard{
					Index: i, Lo: p.Lo, Hi: p.Hi, File: shardFileName(i), Checksum: shardChecksum(p),
				})
				cfg.observe(ShardEvent{Shard: i, NumShards: len(plan), Lo: r.lo, Hi: r.hi,
					Status: "resumed", UserErrors: p.UserErrors})
				continue
			}
		}
		if cfg.stopRequested() {
			stopped = true
			cfg.observe(ShardEvent{Shard: i, NumShards: len(plan), Lo: r.lo, Hi: r.hi, Status: "stopped"})
			break
		}

		arms, userErrors, retries := runShard(cfg, r)
		res.Completed++
		res.UserErrors += userErrors
		if retries > 0 {
			cfg.observe(ShardEvent{Shard: i, NumShards: len(plan), Lo: r.lo, Hi: r.hi,
				Status: "retried", UserErrors: userErrors})
		}
		if err := mergeShard(arms); err != nil {
			return nil, err
		}

		if cfg.CheckpointDir != "" {
			payload := shardPayload{
				ConfigHash: hash, Shard: i, Lo: r.lo, Hi: r.hi,
				UserErrors: userErrors, Retries: retries,
			}
			for _, a := range arms {
				payload.Arms = append(payload.Arms, a.snapshot())
			}
			entry, err := writeShardCheckpoint(cfg.CheckpointDir, payload)
			if err != nil {
				return nil, err
			}
			manifest.Shards = append(manifest.Shards, entry)
			if err := writeManifest(cfg.CheckpointDir, manifest); err != nil {
				return nil, fmt.Errorf("abtest: manifest: %w", err)
			}
		}
		cfg.observe(ShardEvent{Shard: i, NumShards: len(plan), Lo: r.lo, Hi: r.hi,
			Status: "done", UserErrors: userErrors})
	}
	res.Stopped = stopped
	return res, nil
}

// stopRequested reports whether the Stop channel fired.
func (c ShardRunConfig) stopRequested() bool {
	if c.Stop == nil {
		return false
	}
	select {
	case <-c.Stop:
		return true
	default:
		return false
	}
}

// observe fans a shard event out to the Progress callback, the obs metrics
// and the process tracer.
func (c ShardRunConfig) observe(ev ShardEvent) {
	if c.Progress != nil {
		c.Progress(ev)
	}
	if m := c.Metrics; m != nil {
		switch ev.Status {
		case "done":
			m.ShardsCompleted.Add(1)
			m.UsersCompleted.Add(int64(ev.Hi - ev.Lo - ev.UserErrors))
			m.UserErrors.Add(int64(ev.UserErrors))
		case "resumed":
			m.ShardsResumed.Add(1)
		case "retried":
			m.ShardsRetried.Add(1)
		}
		if ev.Status == "done" || ev.Status == "resumed" {
			m.ShardProgress.Set(float64(ev.Shard+1) / float64(ev.NumShards))
		}
		if rec := m.Recorder; rec != nil {
			rec.Record("abtest_shard_"+ev.Status, fmt.Sprintf("%d/%d", ev.Shard, ev.NumShards),
				float64(ev.Hi-ev.Lo), float64(ev.UserErrors))
		}
	}
}

// runShard runs one shard's full experiment — population range, paired
// pre-experiment measurement, every arm — and folds the surviving users'
// sessions into fresh per-arm sketches in user order. A user that fails
// (recovered panic) in the pre-experiment phase or any arm is excluded from
// every arm, preserving the paired design, and the whole shard is re-run up
// to cfg.MaxShardRetries times in case the failure was transient.
func runShard(cfg ShardRunConfig, r shardRange) (arms []*ArmSketch, userErrors, retries int) {
	span := traceShardSpan(r)
	defer func() {
		if span != nil {
			span.SetAttr("user_errors", float64(userErrors)).
				SetAttr("retries", float64(retries)).End()
		}
	}()
	for attempt := 0; ; attempt++ {
		arms, userErrors = runShardOnce(cfg.Experiment, cfg.Arms, r)
		if userErrors == 0 || attempt >= cfg.MaxShardRetries {
			return arms, userErrors, attempt
		}
	}
}

// traceShardSpan opens a span for the shard under the process tracer, nil
// when tracing is off.
func traceShardSpan(r shardRange) *trace.Span {
	t := trace.Default()
	if t == nil {
		return nil
	}
	return t.Session("abtest/shards").Start("abtest.shard", fmt.Sprintf("users %d-%d", r.lo, r.hi)).
		SetAttr("lo", float64(r.lo)).SetAttr("hi", float64(r.hi))
}

// runShardOnce is a single attempt at a shard.
func runShardOnce(cfg Config, armSpecs []Arm, r shardRange) (arms []*ArmSketch, userErrors int) {
	users := GenerateUserRange(cfg.Population, r.lo, r.hi)
	failed := make([]bool, len(users))
	for i, err := range measurePreExperiment(cfg, users) {
		if err != nil {
			failed[i] = true
		}
	}
	perArm := make([][][]SessionRecord, len(armSpecs))
	for a, arm := range armSpecs {
		recs, errs := runArmPerUser(cfg, arm, users)
		perArm[a] = recs
		for i, err := range errs {
			if err != nil {
				failed[i] = true
			}
		}
	}
	for _, f := range failed {
		if f {
			userErrors++
		}
	}
	arms = make([]*ArmSketch, len(armSpecs))
	for a, arm := range armSpecs {
		sketch := NewArmSketch(arm.Name)
		sketch.Errors = userErrors
		// Deterministic fold: ascending user position, session order within
		// the user, skipping users that failed anywhere in the shard.
		for i, recs := range perArm[a] {
			if failed[i] {
				continue
			}
			for _, rec := range recs {
				sketch.AddSession(rec)
			}
		}
		arms[a] = sketch
	}
	return arms, userErrors
}

// shardArmsFromPayload restores a checkpointed shard's sketches, verifying
// the arm set matches the run's.
func shardArmsFromPayload(p *shardPayload, arms []Arm) ([]*ArmSketch, error) {
	if len(p.Arms) != len(arms) {
		return nil, fmt.Errorf("checkpoint has %d arms, run has %d", len(p.Arms), len(arms))
	}
	out := make([]*ArmSketch, len(arms))
	for i, snap := range p.Arms {
		if snap.Name != arms[i].Name {
			return nil, fmt.Errorf("checkpoint arm %d is %q, run expects %q", i, snap.Name, arms[i].Name)
		}
		a, err := armSketchFromSnapshot(snap)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// shardChecksum recomputes the ledger checksum for a resumed shard's
// manifest entry. Re-marshaling reproduces the on-disk payload bytes: field
// order is fixed by the struct and Go's float encoding round-trips exactly.
func shardChecksum(p *shardPayload) string {
	body, err := json.Marshal(p)
	if err != nil {
		return ""
	}
	return fnvHex(body)
}
