package abtest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/player"
	"repro/internal/stats"
	"repro/internal/video"
)

// TableRow is one metric movement between a treatment and the control:
// percent change with a bootstrap 95% CI, the paper's table format.
type TableRow struct {
	Metric string
	CI     stats.CI
}

// Significant reports whether the movement excludes zero.
func (r TableRow) Significant() bool { return r.CI.Significant() }

// String formats like the paper: insignificant movements print "–" for the
// point estimate but keep the interval.
func (r TableRow) String() string {
	if !r.Significant() {
		return fmt.Sprintf("%-22s –     [%.2f, %.2f]", r.Metric, r.CI.Lo, r.CI.Hi)
	}
	return fmt.Sprintf("%-22s %+.2f%% [%.2f, %.2f]", r.Metric, r.CI.Point, r.CI.Lo, r.CI.Hi)
}

// bootstrapIters is plenty for stable two-decimal tables.
const bootstrapIters = 400

// Compare builds the Table 2/3-style rows for treatment vs control. Sparse
// event metrics (rebuffers) use means; everything else uses medians, as the
// paper does.
func Compare(treatment, control ArmResult, seed int64) []TableRow {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]TableRow, 0, len(Metrics))
	for _, m := range Metrics {
		t := treatment.Values(m)
		c := control.Values(m)
		var ci stats.CI
		if strings.HasPrefix(m.Name, "Rebuffer") {
			ci = stats.MeanPercentChange(t, c, bootstrapIters, rng)
		} else {
			ci = stats.MedianPercentChange(t, c, bootstrapIters, rng)
		}
		rows = append(rows, TableRow{Metric: m.Name, CI: ci})
	}
	return rows
}

// FormatTable renders rows with a title, for experiment output.
func FormatTable(title string, rows []TableRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %s\n", r)
	}
	return sb.String()
}

// BucketRow is one Fig 3 group: the throughput change for users whose
// pre-experiment throughput fell in the bucket.
type BucketRow struct {
	Bucket   string
	Sessions int
	CI       stats.CI
}

// CompareByPreExperiment builds Figure 3: the chunk-throughput percent
// change per pre-experiment throughput bucket.
func CompareByPreExperiment(treatment, control ArmResult, seed int64) []BucketRow {
	rng := rand.New(rand.NewSource(seed))
	tput := Metrics[0] // ChunkThroughputMbps
	rows := make([]BucketRow, 0, len(PreExpBuckets))
	for i, b := range PreExpBuckets {
		var t, c []float64
		for _, s := range treatment.Sessions {
			if BucketIndex(s.PreExp) == i {
				t = append(t, tput.Get(s.QoE))
			}
		}
		for _, s := range control.Sessions {
			if BucketIndex(s.PreExp) == i {
				c = append(c, tput.Get(s.QoE))
			}
		}
		row := BucketRow{Bucket: b.Name, Sessions: len(t)}
		if len(t) > 0 && len(c) > 0 {
			row.CI = stats.MedianPercentChange(t, c, bootstrapIters, rng)
		}
		rows = append(rows, row)
	}
	return rows
}

// SweepPoint is one Fig 5 cell: a (c0, c1) setting with its throughput and
// VMAF changes relative to control.
type SweepPoint struct {
	C0, C1          float64
	ThroughputChg   stats.CI
	VMAFChg         stats.CI
	PlayDelayChg    stats.CI
	RebufferHourChg stats.CI
}

// SweepParameters runs Figure 5: a grid of Sammy (c0, c1) cells against one
// shared control, reporting each cell's tradeoff point.
func SweepParameters(cfg Config, pairs [][2]float64, seed int64) []SweepPoint {
	arms := []Arm{ControlArm()}
	for _, p := range pairs {
		c0, c1 := p[0], p[1]
		arms = append(arms, Arm{
			Name:          fmt.Sprintf("sammy-c0=%.1f-c1=%.1f", c0, c1),
			NewController: func() *core.Controller { return core.NewSammy(productionABR(retunedStartupSafety), c0, c1) },
		})
	}
	results := Run(cfg, arms)
	control := results[0]
	rng := rand.New(rand.NewSource(seed))
	points := make([]SweepPoint, 0, len(pairs))
	for i, p := range pairs {
		res := results[i+1]
		points = append(points, SweepPoint{
			C0: p[0], C1: p[1],
			ThroughputChg:   stats.MedianPercentChange(res.Values(Metrics[0]), control.Values(Metrics[0]), bootstrapIters, rng),
			VMAFChg:         stats.MedianPercentChange(res.Values(Metrics[4]), control.Values(Metrics[4]), bootstrapIters, rng),
			PlayDelayChg:    stats.MedianPercentChange(res.Values(Metrics[5]), control.Values(Metrics[5]), bootstrapIters, rng),
			RebufferHourChg: stats.MeanPercentChange(res.Values(Metrics[7]), control.Values(Metrics[7]), bootstrapIters, rng),
		})
	}
	return points
}

// ColdStartPoint is one Fig 6 sample: the initial-quality gap between a
// cold-start arm and a warmed-up control after a given number of days.
type ColdStartPoint struct {
	Day            int
	InitialVMAFChg stats.CI
}

// ColdStartStudy runs Figure 6: both arms stream one session per user per
// day with identical seeds; the treatment starts with empty histories while
// the control starts with a warmed-up history. The initial-quality gap
// shrinks as the treatment's history converges.
func ColdStartStudy(cfg Config, days int, seed int64) []ColdStartPoint {
	cfg = cfg.withDefaults()
	users := GeneratePopulation(cfg.Population)
	rng := rand.New(rand.NewSource(seed))

	type armState struct {
		hist *core.History
		ctrl *core.Controller
	}
	control := make([]armState, len(users))
	treat := make([]armState, len(users))
	for i := range users {
		control[i] = armState{hist: &core.History{}, ctrl: core.NewControl(productionABR(0))}
		treat[i] = armState{hist: &core.History{}, ctrl: core.NewControl(productionABR(0))}
	}

	// Warm up the control histories with a few pre-experiment days.
	for d := 0; d < 3; d++ {
		for i, u := range users {
			dayRng := rand.New(rand.NewSource(u.Seed + int64(d)*7919))
			title := video.NewTitle(cfg.Ladder.CapAt(u.TopBitrate), cfg.ChunkDuration, cfg.ChunksPerSession, dayRng)
			player.Run(player.Config{Controller: control[i].ctrl, Title: title, History: control[i].hist},
				u.Path, dayRng, nil)
		}
	}

	points := make([]ColdStartPoint, 0, days)
	for d := 0; d < days; d++ {
		var tVals, cVals []float64
		for i, u := range users {
			dayRng := rand.New(rand.NewSource(u.Seed + int64(100+d)*104729))
			title := video.NewTitle(cfg.Ladder.CapAt(u.TopBitrate), cfg.ChunkDuration, cfg.ChunksPerSession, dayRng)

			cQ := player.Run(player.Config{Controller: control[i].ctrl, Title: title, History: control[i].hist},
				u.Path, rand.New(rand.NewSource(u.Seed+int64(d))), nil)
			tQ := player.Run(player.Config{Controller: treat[i].ctrl, Title: title, History: treat[i].hist},
				u.Path, rand.New(rand.NewSource(u.Seed+int64(d))), nil)
			cVals = append(cVals, cQ.InitialVMAF)
			tVals = append(tVals, tQ.InitialVMAF)
		}
		points = append(points, ColdStartPoint{
			Day:            d,
			InitialVMAFChg: stats.MedianPercentChange(tVals, cVals, bootstrapIters, rng),
		})
	}
	return points
}

// MedianOf is a convenience for calibration checks: the median of metric m
// in result r.
func MedianOf(r ArmResult, m Metric) float64 {
	return stats.Median(r.Values(m))
}

// MedianThroughputToBitrateRatio reports the calibration target from the
// paper's footnote 1: median session chunk throughput over median session
// average bitrate, which should land near 13× for the control arm.
func MedianThroughputToBitrateRatio(r ArmResult) float64 {
	var tputs, rates []float64
	for _, s := range r.Sessions {
		tputs = append(tputs, s.QoE.ChunkThroughput.Mbps())
		rates = append(rates, s.QoE.AvgBitrate.Mbps())
	}
	mr := stats.Median(rates)
	if mr == 0 {
		return 0
	}
	return stats.Median(tputs) / mr
}
