package abtest

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// This file is the worker side of the multi-process population fan-out: a
// loop that scans the shard plan, claims unowned (or expired) shards via
// lease files, runs them with the same runShard the single-process path
// uses, and checkpoints the results. Workers never touch the manifest —
// the coordinator owns it — so any number of workers can share a
// checkpoint directory without write races.

// FleetEvent is one lease/worker lifecycle notification, shared by the
// worker loop and the coordinator.
type FleetEvent struct {
	// Type is one of "claimed", "stolen", "done", "abandoned", "blocked",
	// "stopped" (worker loop); "worker-started", "worker-exited",
	// "lease-expired", "recovered", "quarantined", "rejected" (coordinator).
	Type      string
	Shard     int // -1 when not shard-specific
	NumShards int
	Lo, Hi    int
	Owner     string
	Worker    int // worker index for worker-* events, -1 otherwise
	Attempt   int
	// UserErrors rides on "done"/"recovered"; Detail carries reasons for
	// "quarantined"/"rejected"/"worker-exited".
	UserErrors int
	Detail     string
}

// FleetMetrics holds the fan-out layer's observability hooks, nil-guarded
// like every metrics struct in the repo.
type FleetMetrics struct {
	LeasesClaimed     *obs.Counter // fresh lease claims
	LeasesStolen      *obs.Counter // expired leases taken over
	LeasesExpired     *obs.Counter // leases observed past their TTL
	ShardsCompleted   *obs.Counter // shards run and checkpointed by this process
	ShardsRecovered   *obs.Counter // dead holders' shards re-run by the coordinator
	ShardsAbandoned   *obs.Counter // shards dropped after a lost lease
	ShardsQuarantined *obs.Counter // shards quarantined as poison
	WorkersAlive      *obs.Gauge   // forked worker processes currently alive
	Recorder          *obs.Recorder
}

// NewFleetMetrics builds a FleetMetrics wired to registry r (nil r yields
// nil, keeping instrumentation off).
func NewFleetMetrics(r *obs.Registry) *FleetMetrics {
	if r == nil {
		return nil
	}
	return &FleetMetrics{
		LeasesClaimed:     r.Counter("abtest_leases_claimed"),
		LeasesStolen:      r.Counter("abtest_leases_stolen"),
		LeasesExpired:     r.Counter("abtest_leases_expired"),
		ShardsCompleted:   r.Counter("abtest_fleet_shards_completed"),
		ShardsRecovered:   r.Counter("abtest_fleet_shards_recovered"),
		ShardsAbandoned:   r.Counter("abtest_fleet_shards_abandoned"),
		ShardsQuarantined: r.Counter("abtest_fleet_shards_quarantined"),
		WorkersAlive:      r.Gauge("abtest_fleet_workers_alive"),
		Recorder:          r.Recorder(),
	}
}

// record fans a fleet event out to the progress callback and metrics.
func fleetObserve(progress func(FleetEvent), m *FleetMetrics, ev FleetEvent) {
	if progress != nil {
		progress(ev)
	}
	if m != nil {
		switch ev.Type {
		case "claimed":
			m.LeasesClaimed.Inc()
		case "stolen":
			m.LeasesStolen.Inc()
			m.LeasesExpired.Inc()
		case "done":
			m.ShardsCompleted.Inc()
		case "recovered":
			m.ShardsRecovered.Inc()
		case "abandoned":
			m.ShardsAbandoned.Inc()
		case "quarantined":
			m.ShardsQuarantined.Inc()
		}
		if rec := m.Recorder; rec != nil {
			rec.Record("abtest_fleet_"+ev.Type, fmt.Sprintf("shard %d owner %s", ev.Shard, ev.Owner),
				float64(ev.Shard), float64(ev.Attempt))
		}
	}
}

// WorkerConfig parameterizes one worker process (or goroutine) attached to
// a shared checkpoint directory.
type WorkerConfig struct {
	// Experiment, Arms, ShardSize define the run and must match the
	// coordinator's exactly — the config hash embedded in every lease and
	// checkpoint enforces it.
	Experiment Config
	Arms       []Arm
	ShardSize  int
	// CheckpointDir is the shared coordination substrate. Required.
	CheckpointDir string
	// MaxShardRetries is the per-run user-failure retry budget passed
	// through to runShard. Default DefaultShardRetries.
	MaxShardRetries int
	// Owner is this worker's lease identity. Default NewOwnerID().
	Owner string
	// WorkerID offsets the shard scan so a fleet spreads over the plan
	// instead of stampeding shard 0. Purely a contention optimization.
	WorkerID int
	// LeaseTTL is the steal threshold. Default DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxShardAttempts is the fleet-wide attempt budget per shard; a worker
	// never claims a shard whose lease already burned this many attempts
	// (quarantining it is the coordinator's call). Default
	// DefaultMaxShardAttempts.
	MaxShardAttempts int
	// PollInterval is the idle rescan period while other workers hold the
	// remaining shards. Default LeaseTTL/2.
	PollInterval time.Duration
	// Stop requests a graceful drain: finish the in-flight shard,
	// checkpoint it, release the lease, and return.
	Stop <-chan struct{}
	// Progress observes lease and shard lifecycle events.
	Progress func(FleetEvent)
	// Metrics, when non-nil, records fleet counters.
	Metrics *FleetMetrics
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	c.Experiment = c.Experiment.withDefaults()
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
	if c.MaxShardRetries < 0 {
		c.MaxShardRetries = 0
	} else if c.MaxShardRetries == 0 {
		c.MaxShardRetries = DefaultShardRetries
	}
	if c.Owner == "" {
		c.Owner = NewOwnerID()
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.MaxShardAttempts <= 0 {
		c.MaxShardAttempts = DefaultMaxShardAttempts
	}
	if c.PollInterval <= 0 {
		c.PollInterval = c.LeaseTTL / 2
	}
	return c
}

func (c WorkerConfig) stopRequested() bool {
	if c.Stop == nil {
		return false
	}
	select {
	case <-c.Stop:
		return true
	default:
		return false
	}
}

// WorkerResult is one worker's ledger.
type WorkerResult struct {
	// Completed counts shards this worker ran and checkpointed; Stolen of
	// those were taken over from expired leases.
	Completed, Stolen int
	// Abandoned counts shards dropped mid-run because the lease was lost.
	Abandoned int
	// UserErrors sums excluded users across this worker's shards.
	UserErrors int
	// Stopped reports a graceful drain ended the loop early.
	Stopped bool
	// Blocked lists shards this worker could not resolve: their leases are
	// expired with the attempt budget exhausted, so only the coordinator
	// may quarantine them. Empty when a coordinator is running.
	Blocked []int
}

// RunWorker claims and runs shards from the shared checkpoint directory
// until every shard is resolved (checkpointed or quarantined), a graceful
// stop is requested, or only coordinator-actionable shards remain. It is
// safe to run any number of workers concurrently — in one process or many —
// against the same directory.
func RunWorker(cfg WorkerConfig) (*WorkerResult, error) {
	cfg = cfg.withDefaults()
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("abtest: worker needs a checkpoint directory")
	}
	if len(cfg.Arms) == 0 {
		return nil, fmt.Errorf("abtest: worker needs at least one arm")
	}
	if cfg.Experiment.Population.Users <= 0 {
		return nil, fmt.Errorf("abtest: worker needs a population size")
	}
	if err := ensureDurableDir(cfg.CheckpointDir); err != nil {
		return nil, fmt.Errorf("abtest: checkpoint dir: %w", err)
	}
	hash := configHash(cfg.Experiment, cfg.Arms, cfg.ShardSize)
	plan := planShards(cfg.Experiment.Population.Users, cfg.ShardSize)
	// Refuse to join a directory written by a different configuration:
	// mixed-config fleets would cross-contaminate checkpoints.
	if err := CheckResumeConfig(cfg.CheckpointDir, cfg.Experiment, cfg.Arms, cfg.ShardSize); err != nil {
		return nil, err
	}

	scfg := ShardRunConfig{
		Experiment:      cfg.Experiment,
		Arms:            cfg.Arms,
		ShardSize:       cfg.ShardSize,
		CheckpointDir:   cfg.CheckpointDir,
		MaxShardRetries: cfg.MaxShardRetries,
	}
	res := &WorkerResult{}
	offset := 0
	if n := len(plan); n > 0 && cfg.WorkerID > 0 {
		offset = cfg.WorkerID % n
	}

	for {
		resolved, progress := 0, false
		var blocked []int
		for k := range plan {
			i := (k + offset) % len(plan)
			if cfg.stopRequested() {
				res.Stopped = true
				fleetObserve(cfg.Progress, cfg.Metrics, FleetEvent{Type: "stopped", Shard: -1, NumShards: len(plan), Owner: cfg.Owner, Worker: cfg.WorkerID})
				return res, nil
			}
			if shardResolved(cfg.CheckpointDir, i) {
				resolved++
				continue
			}
			info := inspectLease(cfg.CheckpointDir, i, cfg.LeaseTTL)
			if info.state == leaseFresh {
				continue // a live holder is on it
			}
			if info.state != leaseNone && info.attempt >= cfg.MaxShardAttempts {
				// Attempt budget burned: quarantining is the coordinator's
				// decision, not a worker's.
				blocked = append(blocked, i)
				continue
			}
			lease, kind, err := claimShardLease(cfg.CheckpointDir, i, cfg.Owner, hash, cfg.LeaseTTL)
			if err != nil {
				return nil, fmt.Errorf("abtest: claiming shard %d: %w", i, err)
			}
			if lease == nil {
				continue // lost the race; move on
			}
			if ran, abandoned, userErrors := runLeasedShard(scfg, hash, plan[i], i, len(plan), lease, kind, cfg.Progress, cfg.Metrics, cfg.WorkerID); ran {
				res.Completed++
				res.UserErrors += userErrors
				if kind == claimStolen {
					res.Stolen++
				}
				progress = true
			} else if abandoned {
				res.Abandoned++
			} else {
				resolved++ // checkpoint appeared under us; released without running
			}
		}
		if resolved == len(plan) {
			return res, nil
		}
		if !progress && len(blocked) > 0 && resolved+len(blocked) == len(plan) {
			// Everything left needs a coordinator: report and bow out so a
			// standalone worker fleet does not spin forever on poison.
			res.Blocked = append(res.Blocked, blocked...)
			for _, i := range blocked {
				fleetObserve(cfg.Progress, cfg.Metrics, FleetEvent{Type: "blocked", Shard: i, NumShards: len(plan),
					Lo: plan[i].lo, Hi: plan[i].hi, Owner: cfg.Owner, Worker: cfg.WorkerID})
			}
			return res, nil
		}
		if !progress {
			// Remaining shards are held by live peers (or freshly blocked);
			// wait for a holder to finish, die, or for the stop signal.
			select {
			case <-stopChan(cfg.Stop):
				res.Stopped = true
				return res, nil
			case <-time.After(cfg.PollInterval):
			}
		}
	}
}

// stopChan returns a never-ready channel for a nil Stop so select works.
func stopChan(c <-chan struct{}) <-chan struct{} {
	if c != nil {
		return c
	}
	return make(chan struct{})
}

// runLeasedShard runs one claimed shard under heartbeat, writes its
// checkpoint if the lease survived, and releases. Returns ran=true when the
// shard was executed and checkpointed by this holder, abandoned=true when
// the lease was lost mid-run (no checkpoint written).
func runLeasedShard(scfg ShardRunConfig, hash string, r shardRange, shard, numShards int, lease *Lease, kind claimKind,
	progress func(FleetEvent), metrics *FleetMetrics, workerID int) (ran, abandoned bool, userErrors int) {
	defer lease.Release()
	// Double-check after winning the claim: another holder may have
	// resolved the shard between our scan and our claim.
	if shardResolved(lease.dir, shard) {
		return false, false, 0
	}
	evType := "claimed"
	if kind == claimStolen {
		evType = "stolen"
	}
	fleetObserve(progress, metrics, FleetEvent{Type: evType, Shard: shard, NumShards: numShards,
		Lo: r.lo, Hi: r.hi, Owner: lease.Owner(), Worker: workerID, Attempt: lease.Attempt()})

	lease.StartHeartbeat()
	arms, errs, retries := runShard(scfg, r)
	// The pre-checkpoint ownership gate: a resurrected worker whose lease
	// was stolen while it was suspended must abandon the shard. (Even if
	// the gate races a steal, duplicate checkpoints are byte-identical, so
	// correctness never depends on winning this check.)
	if !lease.VerifyOwnership() {
		fleetObserve(progress, metrics, FleetEvent{Type: "abandoned", Shard: shard, NumShards: numShards,
			Lo: r.lo, Hi: r.hi, Owner: lease.Owner(), Worker: workerID, Attempt: lease.Attempt()})
		return false, true, 0
	}
	payload := shardPayload{
		ConfigHash: hash,
		Shard:      shard, Lo: r.lo, Hi: r.hi,
		UserErrors: errs, Retries: retries,
	}
	for _, a := range arms {
		payload.Arms = append(payload.Arms, a.snapshot())
	}
	if _, err := writeShardCheckpoint(scfg.CheckpointDir, payload); err != nil {
		// Disk trouble: leave the lease to expire so another worker (or the
		// coordinator) retries the shard.
		fleetObserve(progress, metrics, FleetEvent{Type: "abandoned", Shard: shard, NumShards: numShards,
			Lo: r.lo, Hi: r.hi, Owner: lease.Owner(), Worker: workerID, Attempt: lease.Attempt(), Detail: err.Error()})
		return false, true, 0
	}
	fleetObserve(progress, metrics, FleetEvent{Type: "done", Shard: shard, NumShards: numShards,
		Lo: r.lo, Hi: r.hi, Owner: lease.Owner(), Worker: workerID, Attempt: lease.Attempt(), UserErrors: errs})
	return true, false, errs
}
