package abtest

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// coordConfig adapts the shared shardConfig fixture to a CoordinatorConfig
// with fast lease timing for tests.
func coordConfig(seed int64, dir string) CoordinatorConfig {
	base := shardConfig(seed)
	return CoordinatorConfig{
		Experiment:    base.Experiment,
		Arms:          base.Arms,
		ShardSize:     base.ShardSize,
		CheckpointDir: dir,
		LeaseTTL:      200 * time.Millisecond,
		PollInterval:  20 * time.Millisecond,
	}
}

// TestCoordinatorMatchesSingleProcess is the headline determinism claim: a
// multi-worker coordinated run merges to the exact bytes of the
// single-process sharded run, with every shard merged exactly once.
func TestCoordinatorMatchesSingleProcess(t *testing.T) {
	leakcheck.Check(t)
	single, err := RunSharded(shardConfig(7))
	if err != nil {
		t.Fatal(err)
	}

	cfg := coordConfig(7, t.TempDir())
	cfg.Workers = 3
	fleet, err := RunCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !fleet.Done() || fleet.Stopped {
		t.Fatalf("fleet run incomplete: %+v", fleet)
	}
	if got, want := renderSharded(fleet), renderSharded(single); got != want {
		t.Errorf("fleet merge differs from single-process run:\n%s", got)
	}
	if got := hashString(renderSharded(fleet)); got != goldenShardedHash {
		t.Errorf("fleet output hash %s, want golden %s", got, goldenShardedHash)
	}
	// No double merge: the sketches carry exactly the single-process session
	// counts even though three workers raced over five shards.
	for a := range fleet.Arms {
		if fleet.Arms[a].Sessions != single.Arms[a].Sessions {
			t.Errorf("arm %d: %d sessions merged, single-process has %d",
				a, fleet.Arms[a].Sessions, single.Arms[a].Sessions)
		}
	}
	if fleet.Completed != fleet.NumShards {
		t.Errorf("Completed = %d, want %d", fleet.Completed, fleet.NumShards)
	}
}

// TestCoordinatorRecoversDeadWorkerShard plants the debris of a SIGKILLed
// worker — an expired lease, no checkpoint — and expects the coordinator to
// steal the lease, re-run the shard, and still merge to the golden bytes.
func TestCoordinatorRecoversDeadWorkerShard(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := coordConfig(7, dir)
	hash := configHash(cfg.Experiment.withDefaults(), cfg.Arms, cfg.ShardSize)
	plantLease(t, dir, 2, "dead-worker", 1, hash, time.Hour)

	cfg.Resume = true // a fresh run would wipe the planted lease
	res, err := RunCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != 1 {
		t.Errorf("Recovered = %d, want 1", res.Recovered)
	}
	if !res.Done() || len(res.Quarantined) != 0 {
		t.Fatalf("recovery run incomplete: %+v", res)
	}
	if got := hashString(renderSharded(res)); got != goldenShardedHash {
		t.Errorf("output hash %s after recovery, want golden %s", got, goldenShardedHash)
	}
}

// TestCoordinatorQuarantinesExhaustedShard: a shard whose lease has burned
// the full attempt budget is poisoned, listed in the result and manifest,
// and excluded from the merge — and a later resume keeps honoring the
// marker instead of retrying forever.
func TestCoordinatorQuarantinesExhaustedShard(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := coordConfig(7, dir)
	hash := configHash(cfg.Experiment.withDefaults(), cfg.Arms, cfg.ShardSize)
	plantLease(t, dir, 1, "doomed", DefaultMaxShardAttempts, hash, time.Hour)

	cfg.Resume = true
	res, err := RunCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Index != 1 {
		t.Fatalf("Quarantined = %+v, want shard 1", res.Quarantined)
	}
	if q := res.Quarantined[0]; q.Lo != 10 || q.Hi != 20 || q.Attempts != DefaultMaxShardAttempts {
		t.Errorf("quarantine entry %+v", q)
	}
	if !res.Done() {
		t.Error("run with a quarantined shard should still count as done")
	}
	if res.Completed != res.NumShards-1 {
		t.Errorf("Completed = %d, want %d", res.Completed, res.NumShards-1)
	}
	// The merge excluded the shard's ten users: one recorded session each,
	// per arm.
	wantSessions := cfg.Experiment.Population.Users - 10
	for a := range res.Arms {
		if res.Arms[a].Sessions != wantSessions {
			t.Errorf("arm %d: %d sessions, want %d", a, res.Arms[a].Sessions, wantSessions)
		}
	}
	if !hasFile(dir, poisonFileName(1)) {
		t.Error("no poison marker on disk")
	}
	m, err := readManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest after quarantine: %v", err)
	}
	if len(m.Quarantined) != 1 || m.Quarantined[0].Index != 1 {
		t.Errorf("manifest quarantine ledger = %+v", m.Quarantined)
	}

	// Resume: the poison marker keeps the shard resolved; nothing reruns.
	res2, err := RunCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != res.NumShards-1 || res2.Completed != 0 || len(res2.Quarantined) != 1 {
		t.Errorf("resume after quarantine: %+v", res2)
	}
}

// TestWorkerFleetThenCoordinatorMerge drives the external-join topology:
// standalone workers (no coordinator) drain the whole plan between them
// with no shard run twice, and a later coordinator pass merges their
// checkpoints byte-identically without re-running anything.
func TestWorkerFleetThenCoordinatorMerge(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	base := shardConfig(7)
	const workers = 4
	results := make([]*WorkerResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = RunWorker(WorkerConfig{
				Experiment:    base.Experiment,
				Arms:          base.Arms,
				ShardSize:     base.ShardSize,
				CheckpointDir: dir,
				WorkerID:      w,
				LeaseTTL:      time.Second,
				PollInterval:  20 * time.Millisecond,
			})
		}(w)
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		total += results[w].Completed
	}
	plan := planShards(base.Experiment.Population.Users, base.ShardSize)
	if total != len(plan) {
		t.Fatalf("fleet completed %d shards, want %d (duplicates or gaps)", total, len(plan))
	}

	cfg := coordConfig(7, dir)
	cfg.Resume = true
	res, err := RunCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != len(plan) || res.Completed != 0 {
		t.Errorf("coordinator re-ran work the fleet finished: %+v", res)
	}
	if got := hashString(renderSharded(res)); got != goldenShardedHash {
		t.Errorf("merged fleet output hash %s, want golden %s", got, goldenShardedHash)
	}
}

// TestWorkerBlocksOnExhaustedShard: a standalone worker must not quarantine.
// It finishes everything else, reports the poisoned shard as blocked, and
// leaves the quarantine decision to a coordinator.
func TestWorkerBlocksOnExhaustedShard(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	base := shardConfig(7)
	hash := configHash(base.Experiment.withDefaults(), base.Arms, base.ShardSize)
	plantLease(t, dir, 0, "doomed", DefaultMaxShardAttempts, hash, time.Hour)

	res, err := RunWorker(WorkerConfig{
		Experiment:    base.Experiment,
		Arms:          base.Arms,
		ShardSize:     base.ShardSize,
		CheckpointDir: dir,
		LeaseTTL:      200 * time.Millisecond,
		PollInterval:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocked) != 1 || res.Blocked[0] != 0 {
		t.Errorf("Blocked = %v, want [0]", res.Blocked)
	}
	if want := len(planShards(base.Experiment.Population.Users, base.ShardSize)) - 1; res.Completed != want {
		t.Errorf("Completed = %d, want %d", res.Completed, want)
	}
	if hasFile(dir, poisonFileName(0)) {
		t.Error("worker wrote a poison marker; that is the coordinator's call")
	}
}

// TestCoordinatorStopThenResume: a graceful stop mid-run yields a partial
// result, and a resumed coordinator finishes the remainder to the golden
// bytes without redoing completed shards.
func TestCoordinatorStopThenResume(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := coordConfig(7, dir)
	stop := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	done := 0
	cfg.Stop = stop
	cfg.Progress = func(ev FleetEvent) {
		if ev.Type == "done" {
			mu.Lock()
			done++
			stopNow := done == 2
			mu.Unlock()
			if stopNow {
				once.Do(func() { close(stop) })
			}
		}
	}
	res, err := RunCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Done() {
		t.Fatalf("stopped run: %+v", res)
	}
	if res.Completed != 2 {
		t.Errorf("Completed = %d at stop, want 2", res.Completed)
	}

	cfg2 := coordConfig(7, dir)
	cfg2.Resume = true
	res2, err := RunCoordinator(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Done() || res2.Resumed != 2 {
		t.Fatalf("resumed run: %+v", res2)
	}
	if got := hashString(renderSharded(res2)); got != goldenShardedHash {
		t.Errorf("resumed output hash %s, want golden %s", got, goldenShardedHash)
	}
}

// TestCoordinatorRejectsCorruptCheckpoint: a flipped byte in a checkpoint is
// detected at merge time, the shard is re-run, and the final bytes still
// match the golden run.
func TestCoordinatorRejectsCorruptCheckpoint(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := coordConfig(7, dir)
	if _, err := RunCoordinator(cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, shardFileName(3))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	res, err := RunCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skipped) != 1 || !strings.Contains(res.Skipped[0], "shard 3") {
		t.Errorf("Skipped = %v, want the corrupt shard 3", res.Skipped)
	}
	if res.Completed != 1 || res.Resumed != res.NumShards-1 {
		t.Errorf("corruption recovery: %+v", res)
	}
	if got := hashString(renderSharded(res)); got != goldenShardedHash {
		t.Errorf("output hash %s after corruption recovery, want golden %s", got, goldenShardedHash)
	}
}

// TestResumeMismatchNamesChangedKnobs: the config-hash preflight must say
// which knob diverged and how to move on, for both the coordinator and a
// joining worker.
func TestResumeMismatchNamesChangedKnobs(t *testing.T) {
	dir := t.TempDir()
	if _, err := RunSharded(func() ShardRunConfig {
		c := shardConfig(7)
		c.CheckpointDir = dir
		return c
	}()); err != nil {
		t.Fatal(err)
	}

	cfg := coordConfig(8, dir) // same shape, different seed
	cfg.Resume = true
	_, err := RunCoordinator(cfg)
	var mismatch *ResumeMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("coordinator resume with a changed seed: %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"seed", "-seed", "rotate -checkpoint-dir"} {
		if !strings.Contains(msg, want) {
			t.Errorf("mismatch error lacks %q:\n%s", want, msg)
		}
	}
	if len(mismatch.Changed) != 1 {
		t.Errorf("Changed = %v, want exactly the seed line", mismatch.Changed)
	}

	// A worker joining the same stale directory is refused identically.
	base := shardConfig(8)
	_, err = RunWorker(WorkerConfig{
		Experiment:    base.Experiment,
		Arms:          base.Arms,
		ShardSize:     base.ShardSize,
		CheckpointDir: dir,
	})
	if !errors.As(err, &mismatch) {
		t.Fatalf("worker join with a changed seed: %v", err)
	}
}

// TestDiffConfigKnobs covers the knob-diff formatting directly, including
// the legacy manifest (no recorded knobs) fallback.
func TestDiffConfigKnobs(t *testing.T) {
	base := shardConfig(7)
	stored := configKnobs(base.Experiment.withDefaults(), base.Arms, base.ShardSize)
	now := configKnobs(base.Experiment.withDefaults(), base.Arms, 12)
	lines := DiffConfigKnobs(stored, now)
	if len(lines) != 1 || !strings.Contains(lines[0], "shard_size") || !strings.Contains(lines[0], "-shards") {
		t.Errorf("shard-size diff = %v", lines)
	}
	if lines := DiffConfigKnobs(nil, now); len(lines) != 1 || !strings.Contains(lines[0], "predates") {
		t.Errorf("legacy-manifest diff = %v", lines)
	}
}
