package abtest

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestSearchConfigDefaults(t *testing.T) {
	cfg := SearchConfig{}.withDefaults()
	if cfg.Rounds != 2 || cfg.CellsPerRound != 6 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.MaxVMAFLoss != 0.15 || cfg.MaxPlayDelayGain != 3 || cfg.MaxRebufferGain != 25 {
		t.Errorf("guardrail defaults = %+v", cfg)
	}
}

func TestQualifiesGuardrails(t *testing.T) {
	cfg := SearchConfig{}.withDefaults()
	ok := SweepPoint{
		ThroughputChg: stats.CI{Point: -60, Lo: -65, Hi: -55},
		VMAFChg:       stats.CI{Point: -0.05, Lo: -0.2, Hi: 0.1}, // n.s.
	}
	if !cfg.qualifies(ok) {
		t.Error("insignificant movements should qualify")
	}
	badVMAF := ok
	badVMAF.VMAFChg = stats.CI{Point: -0.5, Lo: -0.7, Hi: -0.3}
	if cfg.qualifies(badVMAF) {
		t.Error("significant VMAF loss should disqualify")
	}
	badDelay := ok
	badDelay.PlayDelayChg = stats.CI{Point: 12, Lo: 5, Hi: 19}
	if cfg.qualifies(badDelay) {
		t.Error("significant play-delay gain should disqualify")
	}
	badRebuf := ok
	badRebuf.RebufferHourChg = stats.CI{Point: 80, Lo: 40, Hi: 120}
	if cfg.qualifies(badRebuf) {
		t.Error("significant rebuffer gain should disqualify")
	}
}

func TestSearchParametersFindsDeepQualifyingCell(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment")
	}
	res, err := SearchParameters(SearchConfig{
		Experiment: Config{
			Population:       PopulationConfig{Users: 120, Seed: 31},
			SessionsPerUser:  2,
			ChunksPerSession: 50,
		},
		Rounds:        2,
		CellsPerRound: 4,
		Seed:          31,
	})
	if err != nil {
		t.Fatalf("search failed: %v", err)
	}
	if math.IsNaN(res.BestC0) || res.BestC0 <= 0 {
		t.Fatalf("no best cell: %+v", res)
	}
	// The winner must deliver a deep reduction (the §5.3 outcome: the
	// selected production parameters reduced throughput 61%).
	if res.Best.ThroughputChg.Point > -40 {
		t.Errorf("best cell reduction = %v, want deep", res.Best.ThroughputChg)
	}
	// c1 tracks the production ratio.
	if ratio := res.BestC1 / res.BestC0; math.Abs(ratio-0.875) > 1e-9 {
		t.Errorf("c1/c0 ratio = %v", ratio)
	}
	// Two rounds of 4 cells evaluated.
	if len(res.Frontier) != 8 {
		t.Errorf("frontier cells = %d, want 8", len(res.Frontier))
	}
	// The winner must itself qualify under the guardrails.
	cfg := SearchConfig{}.withDefaults()
	if !cfg.qualifies(res.Best) {
		t.Errorf("winning cell violates guardrails: %+v", res.Best)
	}
}

func TestSearchParametersImpossibleGuardrails(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment")
	}
	// Guardrails nothing can pass (any significant play-delay change above
	// -100% disqualifies... use a negative bound to reject everything with
	// any significant movement, plus a VMAF bound of ~0).
	_, err := SearchParameters(SearchConfig{
		Experiment: Config{
			Population:       PopulationConfig{Users: 60, Seed: 37},
			SessionsPerUser:  2,
			ChunksPerSession: 40,
		},
		Rounds:           1,
		CellsPerRound:    3,
		MaxVMAFLoss:      -1,   // any VMAF point below +1% disqualifies if significant
		MaxPlayDelayGain: -200, // any significant play-delay movement disqualifies
		MaxRebufferGain:  -200,
		Seed:             37,
	})
	// This may or may not reject all cells depending on significance; the
	// function must not panic and must return a coherent result either way.
	if err != nil {
		t.Logf("search rejected all cells as expected: %v", err)
	}
}
