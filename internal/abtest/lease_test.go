package abtest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// plantLease writes shard's lease file directly (bypassing the claim path)
// and backdates its mtime by age, simulating a holder that died age ago.
func plantLease(t *testing.T, dir string, shard int, owner string, attempt int, hash string, age time.Duration) {
	t.Helper()
	p := leasePayload{Schema: leaseSchema, ConfigHash: hash, Shard: shard, Owner: owner, Attempt: attempt}
	body, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, leaseFileName(shard))
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-age) //sammy:nondeterministic-ok: test backdates a lease file mtime; wall clock is the thing under test
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseClaimAndRelease(t *testing.T) {
	dir := t.TempDir()
	l, kind, err := claimShardLease(dir, 3, "alice", "hash", time.Minute)
	if err != nil || l == nil || kind != claimFresh {
		t.Fatalf("fresh claim: lease=%v kind=%v err=%v", l, kind, err)
	}
	if l.Attempt() != 1 || l.Owner() != "alice" {
		t.Fatalf("lease identity: attempt=%d owner=%q", l.Attempt(), l.Owner())
	}
	info := inspectLease(dir, 3, time.Minute)
	if info.state != leaseFresh || info.owner != "alice" || info.attempt != 1 {
		t.Fatalf("inspect after claim: %+v", info)
	}
	// A second claimant must be turned away while the lease is fresh.
	if l2, _, err := claimShardLease(dir, 3, "bob", "hash", time.Minute); err != nil || l2 != nil {
		t.Fatalf("claim of a held lease: lease=%v err=%v", l2, err)
	}
	l.Release()
	if info := inspectLease(dir, 3, time.Minute); info.state != leaseNone {
		t.Fatalf("lease survives release: %+v", info)
	}
}

// TestLeaseClaimContention races many claimants for one unclaimed shard:
// exclusive create must admit exactly one.
func TestLeaseClaimContention(t *testing.T) {
	dir := t.TempDir()
	const claimants = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var winners []*Lease
	for i := 0; i < claimants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, _, err := claimShardLease(dir, 0, NewOwnerID(), "hash", time.Minute)
			if err != nil {
				t.Errorf("claimant %d: %v", i, err)
				return
			}
			if l != nil {
				mu.Lock()
				winners = append(winners, l)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if len(winners) != 1 {
		t.Fatalf("%d claimants won a fresh claim, want exactly 1", len(winners))
	}
	if !winners[0].VerifyOwnership() {
		t.Error("the winning claimant does not own its lease")
	}
}

// TestLeaseStealExpired is the dead-worker path: a lease whose heartbeat
// went stale is stolen with the attempt counter incremented, and the
// original (resurrected) holder must observe the loss.
func TestLeaseStealExpired(t *testing.T) {
	dir := t.TempDir()
	victim, _, err := claimShardLease(dir, 1, "victim", "hash", 200*time.Millisecond)
	if err != nil || victim == nil {
		t.Fatalf("victim claim: %v %v", victim, err)
	}
	// Backdate the lease past its TTL instead of sleeping.
	path := filepath.Join(dir, leaseFileName(1))
	old := time.Now().Add(-time.Second) //sammy:nondeterministic-ok: test backdates a lease file mtime; wall clock is the thing under test
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	thief, kind, err := claimShardLease(dir, 1, "thief", "hash", 200*time.Millisecond)
	if err != nil || thief == nil || kind != claimStolen {
		t.Fatalf("steal: lease=%v kind=%v err=%v", thief, kind, err)
	}
	if thief.Attempt() != 2 {
		t.Errorf("stolen lease attempt = %d, want 2 (the retry ledger survives the steal)", thief.Attempt())
	}
	// The resurrected victim must not trust its hold: the pre-checkpoint
	// gate fails and the victim abandons the shard.
	if victim.VerifyOwnership() {
		t.Error("victim still claims ownership after the steal")
	}
	if !thief.VerifyOwnership() {
		t.Error("thief does not own the lease it stole")
	}
	// The victim's release must not clobber the thief's lease.
	victim.Release()
	if info := inspectLease(dir, 1, 200*time.Millisecond); info.owner != "thief" {
		t.Errorf("victim's release removed the thief's lease: %+v", info)
	}
}

// TestLeaseStealRace races many stealers over one expired lease: the
// rename-then-verify protocol must crown at most one winner.
func TestLeaseStealRace(t *testing.T) {
	dir := t.TempDir()
	plantLease(t, dir, 0, "dead", 1, "hash", time.Hour)
	const stealers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var winners []*Lease
	for i := 0; i < stealers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, _, err := claimShardLease(dir, 0, NewOwnerID(), "hash", time.Minute)
			if err != nil {
				t.Errorf("stealer %d: %v", i, err)
				return
			}
			if l != nil {
				mu.Lock()
				winners = append(winners, l)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if len(winners) > 1 {
		t.Fatalf("%d stealers won the same lease", len(winners))
	}
	if len(winners) == 1 && !winners[0].VerifyOwnership() {
		t.Error("the winning stealer does not own the lease")
	}
}

// TestLeaseHeartbeatKeepsFresh holds a short-TTL lease across several TTLs
// under heartbeat: nobody may steal it while its holder lives.
func TestLeaseHeartbeatKeepsFresh(t *testing.T) {
	dir := t.TempDir()
	ttl := 150 * time.Millisecond
	l, _, err := claimShardLease(dir, 0, "holder", "hash", ttl)
	if err != nil || l == nil {
		t.Fatalf("claim: %v %v", l, err)
	}
	l.StartHeartbeat()
	defer l.Release()
	time.Sleep(3 * ttl)
	if info := inspectLease(dir, 0, ttl); info.state != leaseFresh {
		t.Fatalf("heartbeat did not keep the lease fresh: %+v", info)
	}
	if thief, _, _ := claimShardLease(dir, 0, "thief", "hash", ttl); thief != nil {
		t.Fatal("a heartbeating lease was stolen")
	}
	if l.Lost() {
		t.Error("holder lost a lease nobody stole")
	}
}

// TestLeaseCorruptTornFile: a torn lease gets its full TTL (it may still be
// mid-write), then becomes stealable.
func TestLeaseCorruptTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, leaseFileName(0))
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if info := inspectLease(dir, 0, time.Minute); info.state != leaseFresh {
		t.Fatalf("young torn lease should count as fresh, got %+v", info)
	}
	old := time.Now().Add(-time.Hour) //sammy:nondeterministic-ok: test backdates a lease file mtime; wall clock is the thing under test
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	if info := inspectLease(dir, 0, time.Minute); info.state != leaseCorrupt {
		t.Fatalf("old torn lease should be corrupt/stealable, got %+v", info)
	}
	l, kind, err := claimShardLease(dir, 0, "claimer", "hash", time.Minute)
	if err != nil || l == nil || kind != claimStolen {
		t.Fatalf("steal of an expired torn lease: lease=%v kind=%v err=%v", l, kind, err)
	}
}

// TestRunLeasedShardAbandonsStolenShard is the resurrect→abandon contract
// end to end: a holder whose lease was stolen before it could checkpoint
// must write nothing and report the shard abandoned.
func TestRunLeasedShardAbandonsStolenShard(t *testing.T) {
	dir := t.TempDir()
	cfg := shardConfig(7)
	cfg.CheckpointDir = dir
	cfg = cfg.withDefaults()
	hash := configHash(cfg.Experiment, cfg.Arms, cfg.ShardSize)
	plan := planShards(cfg.Experiment.Population.Users, cfg.ShardSize)

	victim, kind, err := claimShardLease(dir, 0, "victim", hash, 200*time.Millisecond)
	if err != nil || victim == nil {
		t.Fatalf("claim: %v %v", victim, err)
	}
	// Steal the lease out from under the victim before it runs.
	path := filepath.Join(dir, leaseFileName(0))
	old := time.Now().Add(-time.Second) //sammy:nondeterministic-ok: test backdates a lease file mtime; wall clock is the thing under test
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	thief, _, err := claimShardLease(dir, 0, "thief", hash, 200*time.Millisecond)
	if err != nil || thief == nil {
		t.Fatalf("steal: %v %v", thief, err)
	}

	ran, abandoned, _ := runLeasedShard(cfg, hash, plan[0], 0, len(plan), victim, kind, nil, nil, 0)
	if ran || !abandoned {
		t.Fatalf("stolen shard: ran=%v abandoned=%v, want false/true", ran, abandoned)
	}
	if hasFile(dir, shardFileName(0)) {
		t.Error("abandoned holder wrote a checkpoint anyway")
	}
}

// TestDuplicateShardExecutionIsByteIdentical is the idempotence fact the
// whole steal protocol leans on: two independent executions of one shard
// write byte-identical checkpoint files, so a verify-then-steal race can
// never produce divergent data.
func TestDuplicateShardExecutionIsByteIdentical(t *testing.T) {
	cfg := shardConfig(7).withDefaults()
	hash := configHash(cfg.Experiment, cfg.Arms, cfg.ShardSize)
	plan := planShards(cfg.Experiment.Population.Users, cfg.ShardSize)

	write := func(dir string) []byte {
		cfg := cfg
		cfg.CheckpointDir = dir
		arms, userErrors, retries := runShard(cfg, plan[1])
		payload := shardPayload{ConfigHash: hash, Shard: 1, Lo: plan[1].lo, Hi: plan[1].hi,
			UserErrors: userErrors, Retries: retries}
		for _, a := range arms {
			payload.Arms = append(payload.Arms, a.snapshot())
		}
		if _, err := writeShardCheckpoint(dir, payload); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, shardFileName(1)))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := write(t.TempDir())
	b := write(t.TempDir())
	if string(a) != string(b) {
		t.Error("two executions of the same shard produced different checkpoint bytes")
	}
}

// TestEnsureDurableDirNested covers the directory-creation durability helper
// on a fresh nested path and on an existing one.
func TestEnsureDurableDirNested(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "a", "b", "c")
	if err := ensureDurableDir(dir); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("nested dir not created: %v", err)
	}
	if err := ensureDurableDir(dir); err != nil {
		t.Fatalf("idempotent call: %v", err)
	}
}

// TestAtomicWriteLeavesNoTemp: the durable write path must not strand *.tmp
// files on success.
func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	if err := atomicWriteFile(dir, "x.json", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "x.json" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory after atomic write: %v", names)
	}
}
