// Package abtest is the production-experiment harness: it generates a
// synthetic user population with a long-tailed access-capacity mix, runs
// paired control/treatment video sessions over the analytic path model, and
// summarizes metric movements as percent changes with bootstrap confidence
// intervals, in the format of the paper's Tables 2 and 3 and Figures 3, 5
// and 6.
package abtest

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netmodel"
	"repro/internal/stats"
	"repro/internal/units"
)

// User is one simulated member device: a fixed access path, a persistent
// throughput history, and a pre-experiment throughput measurement used for
// the Fig 3 grouping.
type User struct {
	ID      int
	Path    netmodel.Path
	History *core.History
	// TopBitrate caps the user's ladder, modelling the §2.1 reality that "a
	// video provider will allow a particular device in a particular network
	// to use some subset of this ladder based on the user's plan, device
	// limitations, and other business policies". The cap is what makes the
	// paper's footnote-1 observation (median throughput ≈ 13× the average
	// bitrate) possible: most sessions stream far below their capacity.
	TopBitrate units.BitsPerSecond
	// PreExpThroughput is the 95th percentile of the user's chunk
	// throughput in a simulated pre-experiment week of control sessions,
	// matching §5.1's grouping variable.
	PreExpThroughput units.BitsPerSecond
	// Seed derives the user's per-session RNG streams so arms are paired.
	Seed int64
}

// PopulationConfig controls population synthesis.
type PopulationConfig struct {
	// Users is the population size. Required.
	Users int
	// MedianCapacity is the median access capacity. Default 55 Mbps, which
	// with the default ladder calibrates the "median throughput ≈ 13× the
	// average bitrate" observation from the paper's footnote 1.
	MedianCapacity units.BitsPerSecond
	// CapacitySigma is the lognormal σ of the capacity distribution.
	// Default 1.3, wide enough to populate every Fig 3 bucket from <6 Mbps
	// to >90 Mbps.
	CapacitySigma float64
	// MedianRTT is the median base RTT. Default 25 ms.
	MedianRTT time.Duration
	// RTTSigma is the lognormal σ of base RTTs. Default 0.4.
	RTTSigma float64
	// Faults, when set, applies a shared fault profile (burst loss, scripted
	// blackouts, bandwidth steps) to every user's path, so population A/B
	// runs can model a flaky-path cohort. The profile is pure configuration;
	// each user's connections derive their own deterministic fault state
	// from the user seed.
	Faults *fault.Profile
	// Seed seeds population generation.
	Seed int64
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.MedianCapacity <= 0 {
		c.MedianCapacity = 80 * units.Mbps
	}
	if c.CapacitySigma <= 0 {
		c.CapacitySigma = 1.3
	}
	if c.MedianRTT <= 0 {
		c.MedianRTT = 25 * time.Millisecond
	}
	if c.RTTSigma <= 0 {
		c.RTTSigma = 0.4
	}
	return c
}

// userDraw holds one user's sampled parameters before materialization. The
// split between drawing (pure RNG consumption, allocation-free) and
// materializing (*User construction) is what lets sharded runs regenerate
// only their user-id range: a shard fast-forwards the population stream
// through the users before its range without allocating them.
type userDraw struct {
	capacity     units.BitsPerSecond
	rtt          time.Duration
	ambientDelay time.Duration
	ambientLoss  float64
	topBitrate   units.BitsPerSecond
	seed         int64
}

// drawUser consumes one user's worth of the population RNG stream. The draw
// order is load-bearing: it defines the fixed-seed population, pinned by
// golden tests — never reorder these calls.
func drawUser(cfg PopulationConfig, rng *rand.Rand) userDraw {
	capacity := units.BitsPerSecond(float64(cfg.MedianCapacity) *
		math.Exp(rng.NormFloat64()*cfg.CapacitySigma))
	if capacity < 500*units.Kbps {
		capacity = 500 * units.Kbps
	}
	rtt := time.Duration(float64(cfg.MedianRTT) * math.Exp(rng.NormFloat64()*cfg.RTTSigma))
	if rtt < 2*time.Millisecond {
		rtt = 2 * time.Millisecond
	}
	// Ambient congestion the session does not control: cross traffic at
	// the access link and upstream. Both arms pay it, which keeps the
	// RTT and retransmit improvements from collapsing to zero floors
	// (the paper's -14% RTT / -35% retransmits, not -50%/-90%).
	ambientDelay := time.Duration(25e6 * math.Exp(rng.NormFloat64()*0.6)) // ~25 ms median
	ambientLoss := 2.5e-3 * math.Exp(rng.NormFloat64()*0.5)
	return userDraw{
		capacity:     capacity,
		rtt:          rtt,
		ambientDelay: ambientDelay,
		ambientLoss:  ambientLoss,
		topBitrate:   drawTopBitrate(rng),
		seed:         rng.Int63(),
	}
}

// materialize builds the *User for draw d with identity id.
func (d userDraw) materialize(cfg PopulationConfig, id int) *User {
	return &User{
		ID: id,
		Path: netmodel.Path{
			Capacity:          d.capacity,
			BaseRTT:           d.rtt,
			QueueBytes:        units.Bytes(1.2 * float64(d.capacity.BytesIn(d.rtt))),
			AmbientQueueDelay: d.ambientDelay,
			BaseLossRate:      d.ambientLoss,
			OnsetBurstLoss:    0.022,
			DropoutProb:       0.004,
			Faults:            cfg.Faults,
		},
		History:    &core.History{},
		TopBitrate: d.topBitrate,
		Seed:       d.seed,
	}
}

// GeneratePopulation synthesizes cfg.Users users with lognormal capacities
// and RTTs. Capacities are floored at 500 kbps (below that nobody streams).
func GeneratePopulation(cfg PopulationConfig) []*User {
	cfg = cfg.withDefaults()
	if cfg.Users <= 0 {
		panic("abtest: population needs at least one user")
	}
	return GenerateUserRange(cfg, 0, cfg.Users)
}

// GenerateUserRange materializes users [lo, hi) of the population that
// GeneratePopulation(cfg) would produce: the same single RNG stream is
// fast-forwarded through the first lo users without allocating them, so a
// sharded run holds only its shard's users in memory while seeing exactly
// the population the in-memory path sees. Cost of the skip is O(lo) RNG
// draws (a few hundred ns per user), which is what makes per-shard
// regeneration cheap relative to the sessions themselves.
func GenerateUserRange(cfg PopulationConfig, lo, hi int) []*User {
	cfg = cfg.withDefaults()
	if lo < 0 || hi < lo {
		panic("abtest: invalid user range")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < lo; i++ {
		drawUser(cfg, rng)
	}
	users := make([]*User, hi-lo)
	for i := range users {
		users[i] = drawUser(cfg, rng).materialize(cfg, lo+i)
	}
	return users
}

// drawTopBitrate samples the user's ladder cap: a plan/device/content mix
// where most sessions top out around HD bitrates and a minority stream 4K.
func drawTopBitrate(rng *rand.Rand) units.BitsPerSecond {
	switch r := rng.Float64(); {
	case r < 0.10:
		return 3 * units.Mbps // SD plans / mobile-class devices
	case r < 0.35:
		return 5.8 * units.Mbps // 1080p
	case r < 0.75:
		return 8.1 * units.Mbps // high-bitrate 1080p
	default:
		return 16.8 * units.Mbps // 4K
	}
}

// PreExpBuckets are the Fig 3 pre-experiment throughput groups.
var PreExpBuckets = []struct {
	Name string
	Lo   units.BitsPerSecond
	Hi   units.BitsPerSecond
}{
	{"<6Mbps", 0, 6 * units.Mbps},
	{"6-15Mbps", 6 * units.Mbps, 15 * units.Mbps},
	{"15-30Mbps", 15 * units.Mbps, 30 * units.Mbps},
	{"30-90Mbps", 30 * units.Mbps, 90 * units.Mbps},
	{">90Mbps", 90 * units.Mbps, units.BitsPerSecond(math.Inf(1))},
}

// BucketIndex maps a pre-experiment throughput to its Fig 3 bucket.
func BucketIndex(x units.BitsPerSecond) int {
	for i, b := range PreExpBuckets {
		if x >= b.Lo && x < b.Hi {
			return i
		}
	}
	return len(PreExpBuckets) - 1
}

// p95 returns the 95th percentile of xs.
func p95(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return stats.Quantile(s, 0.95)
}
