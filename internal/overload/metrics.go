package overload

import (
	"repro/internal/obs"
)

// Metrics holds the overload layer's observability hooks. A nil *Metrics
// (the default) keeps the layer uninstrumented; obs types no-op on nil
// fields, so a partially populated struct is safe too.
type Metrics struct {
	Admitted *obs.Counter // requests granted an admission slot (queued or not)
	Queued   *obs.Counter // requests that had to wait in the FIFO queue
	Shed     *obs.Counter // all rejections (by-reason counters below)

	ShedQueueFull    *obs.Counter // rejected because the wait queue was full
	ShedQueueTimeout *obs.Counter // shed after their queue deadline fired
	ShedDraining     *obs.Counter // rejected (or flushed from the queue) during drain
	RateLimited      *obs.Counter // rejected by the per-client token bucket (429)
	StallKills       *obs.Counter // streams killed by the per-write stall watchdog

	InFlight     *obs.Gauge // currently admitted requests
	InFlightPeak *obs.Gauge // high-water mark of InFlight
	QueueDepth   *obs.Gauge // currently queued requests

	QueueWaitMs *obs.Histogram // admission queue wait per admitted request

	// Recorder receives "overload_shed" (Subj = reason, V = Retry-After
	// seconds), "overload_rate_limited" (Subj = client key, V = wait
	// seconds), "overload_stall_kill" (Subj = remote addr, V = bytes
	// written before the kill) and "overload_drain_start" (V = queued
	// requests flushed) events. Nil skips events.
	Recorder *obs.Recorder
}

// NewMetrics builds overload metrics wired to registry r (nil r yields
// nil, keeping instrumentation off).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Admitted:         r.Counter("overload_admitted"),
		Queued:           r.Counter("overload_queued"),
		Shed:             r.Counter("overload_shed"),
		ShedQueueFull:    r.Counter("overload_shed_queue_full"),
		ShedQueueTimeout: r.Counter("overload_shed_queue_timeout"),
		ShedDraining:     r.Counter("overload_shed_draining"),
		RateLimited:      r.Counter("overload_rate_limited"),
		StallKills:       r.Counter("overload_stall_kills"),
		InFlight:         r.Gauge("overload_inflight"),
		InFlightPeak:     r.Gauge("overload_inflight_peak"),
		QueueDepth:       r.Gauge("overload_queue_depth"),
		// Queue waits: 1 ms … ~30 s.
		QueueWaitMs: r.Histogram("overload_queue_wait_ms", obs.ExpBuckets(1, 1.7, 20)),
		Recorder:    r.Recorder(),
	}
}
