package overload

import (
	"container/list"
	"sync"
	"time"
)

// RateLimiter is a per-client token-bucket limiter with an LRU-bounded
// client table. Each key gets an independent bucket refilled at rate
// tokens/second up to burst; when the table exceeds maxClients the least
// recently seen client is evicted (a returning evicted client starts with
// a full bucket — the limiter bounds sustained abuse, not total history).
//
// It is safe for concurrent use.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	max   int

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	now     func() time.Time
}

// bucket is one client's token state.
type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter allowing rate requests/second with the
// given burst per client, tracking at most maxClients clients.
func NewRateLimiter(rate, burst float64, maxClients int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	if maxClients <= 0 {
		maxClients = DefaultMaxClients
	}
	return &RateLimiter{
		rate:    rate,
		burst:   burst,
		max:     maxClients,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		now:     time.Now,
	}
}

// Allow consumes one token from key's bucket. It reports whether the
// request may proceed; when denied, wait is how long until a token accrues
// (the Retry-After hint).
func (l *RateLimiter) Allow(key string) (allowed bool, wait time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()

	el, ok := l.entries[key]
	if !ok {
		for l.lru.Len() >= l.max {
			oldest := l.lru.Back()
			l.lru.Remove(oldest)
			delete(l.entries, oldest.Value.(*bucket).key)
		}
		el = l.lru.PushFront(&bucket{key: key, tokens: l.burst, last: now})
		l.entries[key] = el
	} else {
		l.lru.MoveToFront(el)
	}

	b := el.Value.(*bucket)
	b.tokens += l.rate * now.Sub(b.last).Seconds()
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// Clients reports how many client buckets are currently tracked.
func (l *RateLimiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lru.Len()
}
