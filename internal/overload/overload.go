// Package overload is the pacing edge server's self-protection layer.
//
// Sammy deliberately holds connections open longer than serving at line
// rate would — the server honours an application-chosen pace rate, so
// per-request residency grows with the pace budget, and concurrent-stream
// pressure grows with load. Without back-pressure an overloaded edge
// degrades for everyone at once (the "Probe and Adapt" failure mode at a
// shared bottleneck). This package bounds the damage with four mechanisms,
// applied in order on every request:
//
//  1. A per-client token-bucket rate limiter (keyed by client IP or ID,
//     LRU-evicted) turns one greedy client into a 429, not a global slowdown.
//  2. An admission controller caps concurrent paced streams and parks the
//     next arrivals in a bounded FIFO queue, each with its own queue
//     deadline.
//  3. Load shedding rejects with 503 + Retry-After once the queue is full
//     (or the deadline fires), so excess load spreads out in time instead
//     of retry-storming.
//  4. A per-write stall watchdog (http.ResponseController write deadlines)
//     kills streams whose receiver stops reading, so a slow reader cannot
//     pin an admitted slot forever. Re-arming the deadline on every write
//     is what lets a long paced stream coexist with a finite
//     http.Server.WriteTimeout: progress extends the deadline, stalls
//     don't.
//
// The Controller also owns lifecycle state: StartDraining flips /readyz to
// draining and sheds all new and queued work while in-flight streams
// finish, which is how the edge binary implements graceful shutdown.
//
// Everything is zero-dependency and instrumented through internal/obs; a
// nil *Metrics keeps the hot path at one pointer comparison per decision.
package overload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	trace "repro/internal/obs/trace"
)

// Default limits. They are deliberately generous: the point of defaults is
// to bound pathology, not to tune capacity — deployments size MaxInFlight
// to their pace budget (aggregate pace rate × residency).
const (
	DefaultMaxInFlight  = 256
	DefaultMaxQueue     = 64
	DefaultQueueTimeout = 5 * time.Second
	DefaultRetryAfter   = 1 * time.Second
	DefaultMaxClients   = 1024
)

// Config parameterizes a Controller. The zero value takes every default;
// PerClientRPS is opt-in (0 disables the rate limiter).
type Config struct {
	// MaxInFlight caps concurrently admitted requests. Default 256.
	MaxInFlight int
	// MaxQueue caps requests waiting for an admission slot beyond
	// MaxInFlight. Negative disables queueing (arrivals beyond the limit
	// shed immediately); 0 takes the default 64.
	MaxQueue int
	// QueueTimeout is the per-request queue deadline: a request still
	// queued after this long is shed. Default 5 s.
	QueueTimeout time.Duration
	// RetryAfter is the hint sent with shed responses. It is a baseline:
	// queue-full sheds scale it by queue pressure so a deeper backlog
	// pushes retries further out. Default 1 s.
	RetryAfter time.Duration
	// PerClientRPS enables the per-client token bucket at this sustained
	// request rate. 0 (the default) disables per-client limiting.
	PerClientRPS float64
	// PerClientBurst is the bucket depth; default max(1, 2×PerClientRPS).
	PerClientBurst float64
	// MaxClients bounds the rate limiter's client table; the least
	// recently seen client is evicted at the cap. Default 1024.
	MaxClients int
	// StallTimeout is the per-write progress deadline applied to admitted
	// responses: a write that cannot complete within it kills the stream.
	// 0 disables the watchdog.
	StallTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	switch {
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	case c.MaxQueue == 0:
		c.MaxQueue = DefaultMaxQueue
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = DefaultQueueTimeout
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.PerClientBurst <= 0 {
		c.PerClientBurst = 2 * c.PerClientRPS
		if c.PerClientBurst < 1 {
			c.PerClientBurst = 1
		}
	}
	if c.MaxClients <= 0 {
		c.MaxClients = DefaultMaxClients
	}
	return c
}

// Shed reasons, also used as the Subj of "overload_shed" events.
const (
	ReasonQueueFull    = "queue-full"
	ReasonQueueTimeout = "queue-timeout"
	ReasonDraining     = "draining"
	ReasonRateLimited  = "rate-limited"
)

// ShedError reports a rejected request together with the retry hint the
// server should advertise.
type ShedError struct {
	Reason     string        // one of the Reason* constants
	RetryAfter time.Duration // suggested client wait before retrying
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: shed (%s), retry after %v", e.Reason, e.RetryAfter)
}

// ErrDraining is the ShedError unwrap target for drain rejections.
var ErrDraining = errors.New("overload: draining")

func (e *ShedError) Unwrap() error {
	if e.Reason == ReasonDraining {
		return ErrDraining
	}
	return nil
}

// waiter is one queued admission request. Its fate is decided exactly once
// under the controller mutex: granted a slot, shed, or cancelled by its
// own deadline/context.
type waiter struct {
	ready   chan *ShedError // buffered 1; nil value = slot granted
	decided bool
	granted bool
}

// Controller is the admission controller: at most MaxInFlight requests run
// concurrently, up to MaxQueue more wait FIFO, the rest shed. It is safe
// for concurrent use. The zero value is not usable; construct with New.
type Controller struct {
	cfg     Config
	limiter *RateLimiter

	// Metrics receives admission telemetry; nil disables instrumentation.
	Metrics *Metrics
	// Tracer, when set, records an "overload.admission" span per request in
	// Middleware covering rate-limit and queueing time, joined to the
	// client's trace via the X-Sammy-Trace header. Nil disables tracing.
	Tracer *trace.Tracer

	mu       sync.Mutex
	inflight int
	queued   int
	queue    []*waiter
	head     int
	draining bool
}

// New builds a Controller from cfg (zero fields take the documented
// defaults) with metrics m (nil disables instrumentation).
func New(cfg Config, m *Metrics) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, Metrics: m}
	if cfg.PerClientRPS > 0 {
		c.limiter = NewRateLimiter(cfg.PerClientRPS, cfg.PerClientBurst, cfg.MaxClients)
	}
	return c
}

func (c *Controller) lock()   { c.mu.Lock() }
func (c *Controller) unlock() { c.mu.Unlock() }

// Config reports the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// InFlight reports the number of currently admitted requests.
func (c *Controller) InFlight() int {
	c.lock()
	defer c.unlock()
	return c.inflight
}

// Queued reports the number of requests currently waiting for admission.
func (c *Controller) Queued() int {
	c.lock()
	defer c.unlock()
	return c.queued
}

// Draining reports whether StartDraining has been called.
func (c *Controller) Draining() bool {
	c.lock()
	defer c.unlock()
	return c.draining
}

// StartDraining flips the controller into drain mode: every queued request
// is shed immediately and all future Acquire calls are rejected with
// ReasonDraining, while already-admitted requests keep their slots until
// they Release. It is idempotent.
func (c *Controller) StartDraining() {
	c.lock()
	if c.draining {
		c.unlock()
		return
	}
	c.draining = true
	shed := 0
	for {
		w := c.pop()
		if w == nil {
			break
		}
		w.decided = true
		c.queued--
		shed++
		w.ready <- &ShedError{Reason: ReasonDraining, RetryAfter: c.cfg.RetryAfter}
	}
	m := c.Metrics
	c.gauges()
	c.unlock()
	if m != nil {
		m.ShedDraining.Add(int64(shed))
		m.Shed.Add(int64(shed))
		m.Recorder.Record("overload_drain_start", "", float64(shed), 0)
	}
}

// Acquire admits the request, waiting in the FIFO queue if the controller
// is at capacity. On success it returns a release function that MUST be
// called exactly once when the request finishes. On rejection it returns a
// *ShedError carrying the reason and retry hint. ctx cancellation while
// queued counts as a queue timeout for accounting purposes but reports
// ctx.Err-flavoured shedding so callers can tell the difference.
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	m := c.Metrics
	c.lock()
	if c.draining {
		c.unlock()
		return nil, c.shed(ReasonDraining, c.cfg.RetryAfter)
	}
	if c.inflight < c.cfg.MaxInFlight {
		c.inflight++
		c.gauges()
		c.unlock()
		if m != nil {
			m.Admitted.Inc()
			m.QueueWaitMs.Observe(0)
		}
		return c.release, nil
	}
	if c.queued >= c.cfg.MaxQueue {
		// Scale the hint by backlog: a full queue behind a full admission
		// window means roughly one "service generation" per queue refill.
		hint := c.cfg.RetryAfter
		c.unlock()
		return nil, c.shed(ReasonQueueFull, hint)
	}
	w := &waiter{ready: make(chan *ShedError, 1)}
	c.push(w)
	c.queued++
	c.gauges()
	c.unlock()
	if m != nil {
		m.Queued.Inc()
	}

	enqueued := time.Now()
	timer := time.NewTimer(c.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case serr := <-w.ready:
		if serr != nil {
			// Shed while queued (drain); already counted by StartDraining.
			return nil, serr
		}
		if m != nil {
			m.Admitted.Inc()
			m.QueueWaitMs.Observe(float64(time.Since(enqueued).Milliseconds()))
		}
		return c.release, nil
	case <-timer.C:
		if serr, granted := c.abandon(w); !granted {
			if serr != nil { // drain raced the deadline; already counted
				return nil, serr
			}
			return nil, c.shed(ReasonQueueTimeout, c.cfg.RetryAfter)
		}
		// The slot was granted between the timer firing and our lock:
		// admission won the race, use it.
		if m != nil {
			m.Admitted.Inc()
			m.QueueWaitMs.Observe(float64(time.Since(enqueued).Milliseconds()))
		}
		return c.release, nil
	case <-ctx.Done():
		if serr, granted := c.abandon(w); granted {
			// We own a slot but the caller is gone; hand it back.
			c.release()
		} else if serr != nil { // drain raced the cancellation
			return nil, serr
		}
		return nil, fmt.Errorf("overload: cancelled while queued: %w", ctx.Err())
	}
}

// abandon marks a queued waiter as no longer waiting. It reports whether a
// slot had already been granted (the caller now owns it), or the shed
// decision that raced the abandonment, if any.
func (c *Controller) abandon(w *waiter) (*ShedError, bool) {
	c.lock()
	defer c.unlock()
	if w.decided {
		// The other side already delivered a verdict into the buffered
		// channel; collect it without blocking.
		select {
		case serr := <-w.ready:
			if serr != nil {
				return serr, false
			}
			return nil, true
		default:
			// decided but nothing in the channel: we already consumed the
			// grant in the select; treat as granted.
			return nil, w.granted
		}
	}
	w.decided = true
	c.queued--
	c.gauges()
	return nil, false
}

// release returns an admission slot, handing it to the oldest live waiter
// if one exists.
func (c *Controller) release() {
	c.lock()
	for {
		w := c.pop()
		if w == nil {
			c.inflight--
			break
		}
		if w.decided { // cancelled or shed while queued; skip
			continue
		}
		w.decided = true
		w.granted = true
		c.queued--
		w.ready <- nil // slot transferred, inflight unchanged
		break
	}
	c.gauges()
	c.unlock()
}

// shed counts and wraps a rejection.
func (c *Controller) shed(reason string, retryAfter time.Duration) error {
	return c.shedErr(&ShedError{Reason: reason, RetryAfter: retryAfter})
}

func (c *Controller) shedErr(e *ShedError) error {
	if m := c.Metrics; m != nil {
		m.Shed.Inc()
		switch e.Reason {
		case ReasonQueueFull:
			m.ShedQueueFull.Inc()
		case ReasonQueueTimeout:
			m.ShedQueueTimeout.Inc()
		case ReasonDraining:
			m.ShedDraining.Inc()
		}
		m.Recorder.Record("overload_shed", e.Reason, e.RetryAfter.Seconds(), 0)
	}
	return e
}

// gauges refreshes the in-flight/queue gauges; callers hold the lock.
func (c *Controller) gauges() {
	if m := c.Metrics; m != nil {
		m.InFlight.Set(float64(c.inflight))
		m.InFlightPeak.SetMax(float64(c.inflight))
		m.QueueDepth.Set(float64(c.queued))
	}
}

// push appends w to the FIFO.
func (c *Controller) push(w *waiter) {
	c.queue = append(c.queue, w)
}

// pop removes and returns the oldest waiter, nil when empty. The backing
// slice is compacted once the dead prefix dominates.
func (c *Controller) pop() *waiter {
	if c.head == len(c.queue) {
		if c.head > 0 {
			c.queue = c.queue[:0]
			c.head = 0
		}
		return nil
	}
	w := c.queue[c.head]
	c.queue[c.head] = nil
	c.head++
	if c.head > 32 && c.head*2 >= len(c.queue) {
		n := copy(c.queue, c.queue[c.head:])
		c.queue = c.queue[:n]
		c.head = 0
	}
	return w
}
