package overload

import (
	"errors"
	"net/http"
	"os"
	"time"
)

// stallWriter arms a per-write progress deadline on the underlying
// connection: before a write it pushes the write deadline out to
// now+timeout, so a receiver that keeps reading keeps the stream alive
// indefinitely while a stalled receiver kills it within one timeout. This
// is what lets a long paced stream coexist with a finite server
// WriteTimeout — progress re-arms the deadline, a whole-response deadline
// cannot tell a slow paced stream from a dead one.
//
// Re-arming is throttled to once per quarter-timeout so high-rate streams
// do not pay a SetWriteDeadline syscall per burst.
type stallWriter struct {
	http.ResponseWriter
	rc      *http.ResponseController
	timeout time.Duration

	armed     bool // deadline support confirmed
	disabled  bool // SetWriteDeadline unsupported; watchdog off
	lastArm   time.Time
	killed    bool
	written   int64
	onStalled func(written int64)
}

// newStallWriter wraps w with the per-write watchdog. onStalled (may be
// nil) fires once when a write deadline kills the stream.
func newStallWriter(w http.ResponseWriter, timeout time.Duration, onStalled func(written int64)) *stallWriter {
	return &stallWriter{
		ResponseWriter: w,
		rc:             http.NewResponseController(w),
		timeout:        timeout,
		onStalled:      onStalled,
	}
}

// arm pushes the write deadline out by the stall timeout.
func (s *stallWriter) arm() {
	if s.disabled {
		return
	}
	now := time.Now()
	if s.armed && now.Sub(s.lastArm) < s.timeout/4 {
		return
	}
	if err := s.rc.SetWriteDeadline(now.Add(s.timeout)); err != nil {
		// The ResponseWriter chain does not support write deadlines
		// (recorders, exotic middleware). Degrade to no watchdog rather
		// than failing every request.
		s.disabled = true
		return
	}
	s.armed = true
	s.lastArm = now
}

func (s *stallWriter) Write(b []byte) (int, error) {
	s.arm()
	n, err := s.ResponseWriter.Write(b)
	s.written += int64(n)
	if err != nil && !s.killed && isDeadlineErr(err) {
		s.killed = true
		if s.onStalled != nil {
			s.onStalled(s.written)
		}
	}
	return n, err
}

// Flush keeps http.Flusher working through the wrapper so paced responses
// stay visible on the wire.
func (s *stallWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets nested http.ResponseControllers reach the underlying writer.
func (s *stallWriter) Unwrap() http.ResponseWriter { return s.ResponseWriter }

// isDeadlineErr reports whether err is a write-deadline expiry.
func isDeadlineErr(err error) bool {
	return errors.Is(err, os.ErrDeadlineExceeded)
}
