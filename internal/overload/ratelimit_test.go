package overload

import (
	"testing"
	"time"
)

// fakeClock gives the limiter a deterministic time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func withClock(l *RateLimiter, c *fakeClock) { l.now = c.now }

func TestRateLimiterBurstThenRefill(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(2, 2, 16) // 2 rps, burst 2
	withClock(l, clock)

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := l.Allow("a")
	if ok {
		t.Fatal("third immediate request should be denied")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Errorf("wait hint = %v, want (0, 500ms] at 2 rps", wait)
	}

	clock.advance(500 * time.Millisecond) // one token accrues
	if ok, _ := l.Allow("a"); !ok {
		t.Error("request after refill denied")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Error("bucket should be empty again")
	}
}

func TestRateLimiterKeysAreIndependent(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(1, 1, 16)
	withClock(l, clock)

	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("a's first request denied")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("a's second request allowed")
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Error("b should have its own bucket")
	}
}

func TestRateLimiterLRUEviction(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(0.001, 1, 2) // near-zero refill: buckets stay empty once used
	withClock(l, clock)

	l.Allow("a")
	l.Allow("b")
	if ok, _ := l.Allow("a"); ok { // a's bucket is empty; also makes a most-recent
		t.Fatal("a's second request should be denied")
	}
	l.Allow("c") // table full: evicts b (least recently seen)
	if got := l.Clients(); got != 2 {
		t.Fatalf("Clients = %d, want 2", got)
	}
	// b was evicted, so it returns with a fresh bucket...
	if ok, _ := l.Allow("b"); !ok {
		t.Error("evicted client should restart with a full bucket")
	}
	// ...which in turn evicted a (c is more recent than a after the c insert).
	if ok, _ := l.Allow("a"); !ok {
		t.Error("a should have been evicted and refreshed too")
	}
}
