package overload

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

func TestMiddlewareShedsWithRetryAfter(t *testing.T) {
	leakcheck.Check(t)
	c, m, _ := newTestController(t, Config{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 3 * time.Second})

	entered := make(chan struct{})
	unblock := make(chan struct{})
	handler := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-unblock
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := srv.Client().Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	// Admission window full, queueing disabled: this request sheds.
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	if got := resp.Header.Get("X-Sammy-Shed"); got != ReasonQueueFull {
		t.Errorf("X-Sammy-Shed = %q, want %q", got, ReasonQueueFull)
	}
	if m.ShedQueueFull.Value() != 1 {
		t.Errorf("queue-full sheds = %d, want 1", m.ShedQueueFull.Value())
	}
	close(unblock)
	wg.Wait()
}

func TestMiddlewareRateLimits(t *testing.T) {
	leakcheck.Check(t)
	c, m, _ := newTestController(t, Config{MaxInFlight: 8, PerClientRPS: 0.001, PerClientBurst: 2})
	srv := httptest.NewServer(c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	t.Cleanup(srv.Close)

	get := func(id string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ClientIDHeader, id)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := get("greedy"); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := get("greedy")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	// A different client is untouched by the greedy one's bucket.
	if resp := get("polite"); resp.StatusCode != http.StatusOK {
		t.Errorf("independent client got %d", resp.StatusCode)
	}
	if m.RateLimited.Value() != 1 {
		t.Errorf("rate-limited = %d, want 1", m.RateLimited.Value())
	}
}

func TestMiddlewareDrainingSheds(t *testing.T) {
	leakcheck.Check(t)
	c, _, _ := newTestController(t, Config{MaxInFlight: 4})
	srv := httptest.NewServer(c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	t.Cleanup(srv.Close)

	c.StartDraining()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status during drain = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Sammy-Shed"); got != ReasonDraining {
		t.Errorf("X-Sammy-Shed = %q, want %q", got, ReasonDraining)
	}
}

func TestHealthEndpoints(t *testing.T) {
	c, _, _ := newTestController(t, Config{})
	check := func(h http.HandlerFunc, want int, wantBody string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		if rec.Code != want {
			t.Errorf("status = %d, want %d", rec.Code, want)
		}
		if rec.Body.String() != wantBody {
			t.Errorf("body = %q, want %q", rec.Body.String(), wantBody)
		}
	}
	check(c.Healthz, http.StatusOK, "ok\n")
	check(c.Readyz, http.StatusOK, "ok\n")
	c.StartDraining()
	check(c.Healthz, http.StatusOK, "ok\n") // liveness survives drain
	check(c.Readyz, http.StatusServiceUnavailable, "draining\n")
}

func TestStallWriterFallsBackWithoutDeadlineSupport(t *testing.T) {
	// httptest.ResponseRecorder has no underlying conn, so SetWriteDeadline
	// fails; the watchdog must disable itself, not break the response.
	rec := httptest.NewRecorder()
	stalls := 0
	sw := newStallWriter(rec, 50*time.Millisecond, func(int64) { stalls++ })
	if _, err := sw.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if !sw.disabled {
		t.Error("watchdog should disable itself on unsupported writers")
	}
	if rec.Body.String() != "hello" || stalls != 0 {
		t.Errorf("body = %q, stalls = %d", rec.Body.String(), stalls)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{200 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
