package overload

import (
	"errors"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	trace "repro/internal/obs/trace"
)

// ClientIDHeader lets a fronting proxy (or a test) pin the rate-limit key
// explicitly; without it the key is the request's remote IP.
const ClientIDHeader = "X-Sammy-Client-Id"

// clientKey derives the per-client rate-limit key for r.
func clientKey(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders d as a Retry-After header value: integer
// seconds, rounded up, at least 1 (RFC 9110 allows 0 but a 0 invites an
// immediate retry storm, the thing shedding exists to prevent).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeShed sends the rejection response for e with its Retry-After hint.
func writeShed(w http.ResponseWriter, e *ShedError) {
	status := http.StatusServiceUnavailable
	if e.Reason == ReasonRateLimited {
		status = http.StatusTooManyRequests
	}
	w.Header().Set("Retry-After", retryAfterSeconds(e.RetryAfter))
	w.Header().Set("X-Sammy-Shed", e.Reason)
	http.Error(w, "overload: "+e.Reason, status)
}

// Middleware wraps next with the full protection pipeline: per-client rate
// limiting (429), admission control with FIFO queueing (503 + Retry-After
// on shed), and the per-write stall watchdog on admitted responses.
// Draining controllers shed everything, which together with the Readyz
// handler implements graceful shutdown.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := c.Metrics
		// The admission span covers rate limiting plus queueing inside
		// Acquire — the "queued" state in harm attribution. It joins the
		// client's trace when the request carries an X-Sammy-Trace header.
		adm := c.admissionSpan(r)
		if c.limiter != nil {
			key := clientKey(r)
			if ok, wait := c.limiter.Allow(key); !ok {
				if m != nil {
					m.RateLimited.Inc()
					m.Shed.Inc()
					m.Recorder.Record("overload_rate_limited", key, wait.Seconds(), 0)
				}
				adm.SetStr("shed", ReasonRateLimited).End()
				writeShed(w, &ShedError{Reason: ReasonRateLimited, RetryAfter: wait})
				return
			}
		}
		release, err := c.Acquire(r.Context())
		if err != nil {
			var serr *ShedError
			if !errors.As(err, &serr) {
				// Client went away while queued; nothing useful to write.
				serr = &ShedError{Reason: ReasonQueueTimeout, RetryAfter: c.cfg.RetryAfter}
			}
			adm.SetStr("shed", serr.Reason).End()
			writeShed(w, serr)
			return
		}
		adm.End()
		defer release()
		if c.cfg.StallTimeout > 0 {
			w = newStallWriter(w, c.cfg.StallTimeout, func(written int64) {
				if m != nil {
					m.StallKills.Inc()
					m.Recorder.Record("overload_stall_kill", r.RemoteAddr, float64(written), 0)
				}
			})
		}
		next.ServeHTTP(w, r)
	})
}

// admissionSpan opens the per-request "overload.admission" span, joined to
// the client's trace when the request carries trace context, else recorded
// under the server's own "server" trace. Nil tracer → nil span (off).
func (c *Controller) admissionSpan(r *http.Request) *trace.Span {
	if c.Tracer == nil {
		return nil
	}
	if id, parent, ok := trace.ParseHeader(r.Header.Get(trace.Header)); ok {
		return c.Tracer.StartRemote(id, parent, "overload.admission", "")
	}
	return c.Tracer.Session("server").Start("overload.admission", "")
}

// Healthz is the liveness endpoint: 200 as long as the process serves
// requests at all, draining included (drain is a healthy state).
func (c *Controller) Healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// Readyz is the readiness endpoint: 200 "ok" while accepting work, 503
// "draining" once StartDraining has been called, so load balancers stop
// routing new sessions while in-flight paced streams finish.
func (c *Controller) Readyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if c.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}
