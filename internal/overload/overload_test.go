package overload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/obs"
)

func newTestController(t *testing.T, cfg Config) (*Controller, *Metrics, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.SetRecorder(obs.NewRecorder(256))
	m := NewMetrics(reg)
	return New(cfg, m), m, reg
}

func TestAcquireWithinLimit(t *testing.T) {
	c, m, _ := newTestController(t, Config{MaxInFlight: 2})
	r1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	r1()
	r2()
	if got := c.InFlight(); got != 0 {
		t.Errorf("InFlight after release = %d, want 0", got)
	}
	if got := m.Admitted.Value(); got != 2 {
		t.Errorf("admitted = %d, want 2", got)
	}
	if got := m.InFlightPeak.Value(); got != 2 {
		t.Errorf("inflight peak = %v, want 2", got)
	}
}

func TestQueueGrantsFIFO(t *testing.T) {
	leakcheck.Check(t)
	c, _, _ := newTestController(t, Config{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 5 * time.Second})
	hold, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Queue two waiters in a known order; starts are sequenced so A is in
	// the FIFO before B arrives.
	var order []string
	var mu sync.Mutex
	done := make(chan struct{}, 2)
	enqueue := func(name string) {
		go func() {
			rel, err := c.Acquire(context.Background())
			if err != nil {
				t.Errorf("%s: %v", name, err)
				done <- struct{}{}
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			rel()
			done <- struct{}{}
		}()
	}
	enqueue("A")
	waitFor(t, func() bool { return c.Queued() == 1 })
	enqueue("B")
	waitFor(t, func() bool { return c.Queued() == 2 })

	hold() // hands the slot to A; A's release hands it to B
	<-done
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Errorf("grant order = %v, want [A B]", order)
	}
}

func TestQueueFullSheds(t *testing.T) {
	leakcheck.Check(t)
	c, m, _ := newTestController(t, Config{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second, RetryAfter: 2 * time.Second})
	hold, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() {
		rel, err := c.Acquire(ctx)
		if rel != nil {
			rel()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return c.Queued() == 1 })

	_, err = c.Acquire(context.Background())
	var serr *ShedError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if serr.Reason != ReasonQueueFull {
		t.Errorf("reason = %q, want %q", serr.Reason, ReasonQueueFull)
	}
	if serr.RetryAfter != 2*time.Second {
		t.Errorf("retry after = %v, want 2s", serr.RetryAfter)
	}
	if m.ShedQueueFull.Value() != 1 || m.Shed.Value() != 1 {
		t.Errorf("shed counters = %d/%d, want 1/1", m.ShedQueueFull.Value(), m.Shed.Value())
	}
	cancel()
	if err := <-queued; err == nil {
		t.Error("cancelled queued acquire should error")
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	leakcheck.Check(t)
	c, m, _ := newTestController(t, Config{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 30 * time.Millisecond})
	hold, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	start := time.Now()
	_, err = c.Acquire(context.Background())
	var serr *ShedError
	if !errors.As(err, &serr) || serr.Reason != ReasonQueueTimeout {
		t.Fatalf("err = %v, want queue-timeout shed", err)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond {
		t.Errorf("shed after %v, before the queue deadline", waited)
	}
	if m.ShedQueueTimeout.Value() != 1 {
		t.Errorf("queue-timeout sheds = %d, want 1", m.ShedQueueTimeout.Value())
	}
	if got := c.Queued(); got != 0 {
		t.Errorf("Queued after timeout = %d, want 0", got)
	}
}

func TestDrainingShedsNewAndQueued(t *testing.T) {
	leakcheck.Check(t)
	c, m, _ := newTestController(t, Config{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 5 * time.Second})
	hold, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	queued := make(chan error, 1)
	go func() {
		rel, err := c.Acquire(context.Background())
		if rel != nil {
			rel()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return c.Queued() == 1 })

	c.StartDraining()
	c.StartDraining() // idempotent
	if !c.Draining() {
		t.Fatal("Draining() = false after StartDraining")
	}

	// The queued waiter is flushed with a drain shed...
	err = <-queued
	var serr *ShedError
	if !errors.As(err, &serr) || serr.Reason != ReasonDraining {
		t.Fatalf("queued err = %v, want draining shed", err)
	}
	if !errors.Is(err, ErrDraining) {
		t.Error("drain shed should unwrap to ErrDraining")
	}
	// ...new arrivals are rejected outright...
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Errorf("new acquire during drain = %v, want ErrDraining", err)
	}
	// ...and the in-flight holder keeps its slot until it releases.
	if got := c.InFlight(); got != 1 {
		t.Errorf("InFlight during drain = %d, want 1", got)
	}
	hold()
	if got := c.InFlight(); got != 0 {
		t.Errorf("InFlight after drain release = %d, want 0", got)
	}
	if got := m.ShedDraining.Value(); got != 2 {
		t.Errorf("draining sheds = %d, want 2", got)
	}
}

func TestAcquireStorm(t *testing.T) {
	// A storm of goroutines against a small window: in-flight must never
	// exceed the limit and accounting must balance exactly.
	leakcheck.Check(t)
	const limit, workers = 4, 64
	c, m, _ := newTestController(t, Config{MaxInFlight: limit, MaxQueue: 8, QueueTimeout: 50 * time.Millisecond})

	var (
		cur, peak, admitted, shed atomic.Int64
		wg                        sync.WaitGroup
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background())
			if err != nil {
				shed.Add(1)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			admitted.Add(1)
			rel()
		}()
	}
	wg.Wait()

	if p := peak.Load(); p > limit {
		t.Errorf("observed %d concurrent admissions, limit %d", p, limit)
	}
	if a, s := admitted.Load(), shed.Load(); a+s != workers {
		t.Errorf("admitted %d + shed %d != %d workers", a, s, workers)
	}
	if got := c.InFlight(); got != 0 {
		t.Errorf("InFlight after storm = %d, want 0", got)
	}
	if got := c.Queued(); got != 0 {
		t.Errorf("Queued after storm = %d, want 0", got)
	}
	if m.Admitted.Value()+m.Shed.Value() != workers {
		t.Errorf("metrics admitted %d + shed %d != %d",
			m.Admitted.Value(), m.Shed.Value(), workers)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxInFlight != DefaultMaxInFlight || cfg.MaxQueue != DefaultMaxQueue ||
		cfg.QueueTimeout != DefaultQueueTimeout || cfg.RetryAfter != DefaultRetryAfter {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.PerClientBurst != 1 {
		t.Errorf("PerClientBurst default = %v, want 1", cfg.PerClientBurst)
	}
	if got := (Config{MaxQueue: -1}).withDefaults().MaxQueue; got != 0 {
		t.Errorf("MaxQueue -1 → %d, want 0 (queueing disabled)", got)
	}
}

func TestShedErrorMessage(t *testing.T) {
	e := &ShedError{Reason: ReasonQueueFull, RetryAfter: time.Second}
	want := fmt.Sprintf("overload: shed (%s), retry after 1s", ReasonQueueFull)
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
}
