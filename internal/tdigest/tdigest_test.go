package tdigest

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyDigest(t *testing.T) {
	d := New(100)
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Error("empty digest Quantile should be NaN")
	}
	if !math.IsNaN(d.CDF(1)) {
		t.Error("empty digest CDF should be NaN")
	}
	if d.Count() != 0 {
		t.Error("empty digest Count should be 0")
	}
}

func TestSingleValue(t *testing.T) {
	d := New(100)
	d.Add(42)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := d.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, got)
		}
	}
	if d.Min() != 42 || d.Max() != 42 {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
}

func TestIgnoresBadInput(t *testing.T) {
	d := New(100)
	d.Add(math.NaN())
	d.AddWeighted(5, 0)
	d.AddWeighted(5, -1)
	if d.Count() != 0 {
		t.Errorf("bad inputs should be ignored, count = %v", d.Count())
	}
}

func TestUniformQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := New(100)
	n := 50000
	for i := 0; i < n; i++ {
		d.Add(rng.Float64())
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := d.Quantile(q)
		if math.Abs(got-q) > 0.02 {
			t.Errorf("uniform Quantile(%v) = %v, want ≈ %v", q, got, q)
		}
	}
}

func TestNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := New(100)
	for i := 0; i < 20000; i++ {
		d.Add(50 + 10*rng.NormFloat64())
	}
	if got := d.Quantile(0.5); math.Abs(got-50) > 1 {
		t.Errorf("normal median = %v, want ≈ 50", got)
	}
}

func TestExactAgainstSorted(t *testing.T) {
	// Against a small exact sample, the digest should be close.
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 2000)
	d := New(200)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()) // lognormal, like RTTs
		d.Add(xs[i])
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		exact := xs[int(q*float64(len(xs)-1))]
		got := d.Quantile(q)
		if math.Abs(got-exact)/exact > 0.1 {
			t.Errorf("lognormal Quantile(%v) = %v, exact %v", q, got, exact)
		}
	}
}

func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Two connections with different RTT regimes merged into one session,
	// mirroring the paper's per-session RTT merging.
	a, b, all := New(100), New(100), New(100)
	for i := 0; i < 5000; i++ {
		x := 10 + 2*rng.NormFloat64()
		a.Add(x)
		all.Add(x)
	}
	for i := 0; i < 5000; i++ {
		x := 30 + 2*rng.NormFloat64()
		b.Add(x)
		all.Add(x)
	}
	a.Merge(b)
	if a.Count() != 10000 {
		t.Fatalf("merged count = %v, want 10000", a.Count())
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		got, want := a.Quantile(q), all.Quantile(q)
		if math.Abs(got-want) > 1.5 {
			t.Errorf("merged Quantile(%v) = %v, combined %v", q, got, want)
		}
	}
	a.Merge(nil) // must not panic
}

func TestCDFInverseOfQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := New(100)
	for i := 0; i < 10000; i++ {
		d.Add(rng.Float64() * 100)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		x := d.Quantile(q)
		back := d.CDF(x)
		if math.Abs(back-q) > 0.03 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, back)
		}
	}
	if d.CDF(-1) != 0 {
		t.Error("CDF below min should be 0")
	}
	if d.CDF(1000) != 1 {
		t.Error("CDF above max should be 1")
	}
}

func TestCompressionBoundsCentroids(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := New(100)
	for i := 0; i < 100000; i++ {
		d.Add(rng.NormFloat64())
	}
	if n := d.CentroidCount(); n > 200 {
		t.Errorf("centroid count %d exceeds ≈2·compression bound", n)
	}
}

func TestQuantileWithinMinMaxProperty(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		d := New(50)
		any := false
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				d.Add(x)
				any = true
			}
		}
		if !any {
			return true
		}
		qq := math.Mod(math.Abs(q), 1)
		v := d.Quantile(qq)
		return v >= d.Min()-1e-9 && v <= d.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := New(100)
	for i := 0; i < 5000; i++ {
		d.Add(rng.ExpFloat64() * 20)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := d.Quantile(q)
		if v < prev-1e-9 {
			t.Fatalf("Quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := New(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(rng.Float64())
	}
}

func BenchmarkQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := New(100)
	for i := 0; i < 100000; i++ {
		d.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Quantile(0.5)
	}
}
