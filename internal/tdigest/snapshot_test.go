package tdigest

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func filledDigest(seed int64, n int) *TDigest {
	rng := rand.New(rand.NewSource(seed))
	t := New(100)
	for i := 0; i < n; i++ {
		t.Add(rng.NormFloat64()*10 + 50)
	}
	return t
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := filledDigest(1, 5000)
	s := d.Snapshot()
	r, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		if got, want := r.Quantile(q), d.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v after round trip, want %v", q, got, want)
		}
	}
	if r.Count() != d.Count() || r.Min() != d.Min() || r.Max() != d.Max() {
		t.Errorf("count/min/max changed: %v/%v/%v vs %v/%v/%v",
			r.Count(), r.Min(), r.Max(), d.Count(), d.Min(), d.Max())
	}
}

func TestSnapshotJSONRoundTripBitIdentical(t *testing.T) {
	// The checkpoint path serializes snapshots as JSON; Go's float encoding
	// is shortest-round-trip, so a digest restored from a checkpoint must
	// merge bit-identically to the in-memory digest it was taken from.
	d := filledDigest(2, 3000)
	data, err := json.Marshal(d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	r, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}

	other := filledDigest(3, 3000)
	mergedLive := New(100)
	mergedLive.Merge(d)
	mergedLive.Merge(other)
	mergedRestored := New(100)
	mergedRestored.Merge(r)
	mergedRestored.Merge(other)
	for _, q := range []float64{0.05, 0.5, 0.95} {
		if a, b := mergedLive.Quantile(q), mergedRestored.Quantile(q); a != b {
			t.Errorf("merge after restore diverged at q=%v: %v vs %v", q, a, b)
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	d := New(100)
	s := d.Snapshot()
	if s.Count != 0 || len(s.Means) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	r, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 0 || !math.IsNaN(r.Quantile(0.5)) {
		t.Errorf("restored empty digest not empty: count=%v", r.Count())
	}
}

func TestFromSnapshotRejectsCorruption(t *testing.T) {
	good := filledDigest(4, 1000).Snapshot()
	tests := []struct {
		name   string
		mutate func(Snapshot) Snapshot
	}{
		{"length mismatch", func(s Snapshot) Snapshot { s.Weights = s.Weights[:len(s.Weights)-1]; return s }},
		{"unsorted means", func(s Snapshot) Snapshot {
			s.Means = append([]float64(nil), s.Means...)
			s.Means[0], s.Means[len(s.Means)-1] = s.Means[len(s.Means)-1], s.Means[0]
			return s
		}},
		{"negative weight", func(s Snapshot) Snapshot {
			s.Weights = append([]float64(nil), s.Weights...)
			s.Weights[0] = -1
			return s
		}},
		{"count mismatch", func(s Snapshot) Snapshot { s.Count *= 2; return s }},
		{"centroids on empty", func(s Snapshot) Snapshot { s.Count = 0; return s }},
	}
	for _, tt := range tests {
		if _, err := FromSnapshot(tt.mutate(good)); err == nil {
			t.Errorf("%s: corruption accepted", tt.name)
		}
	}
}
