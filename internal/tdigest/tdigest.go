// Package tdigest implements the merging t-digest of Dunning, the streaming
// quantile sketch the paper uses to summarize per-connection RTT samples
// before merging them into a per-session estimate ([21] in the paper).
//
// The implementation follows the "merging digest" design: incoming samples
// accumulate in a buffer; when the buffer fills, buffered points and existing
// centroids are merged in sorted order subject to the k1 scale-function size
// bound, which keeps centroids small near the tails and large in the middle.
package tdigest

import (
	"fmt"
	"math"
	"sort"
)

// centroid is a weighted point in the sketch.
type centroid struct {
	mean   float64
	weight float64
}

// TDigest is a streaming quantile sketch. The zero value is not ready for
// use; construct with New. TDigest is not safe for concurrent use.
type TDigest struct {
	compression float64
	centroids   []centroid
	buffer      []centroid
	count       float64
	min, max    float64
}

// New returns a t-digest with the given compression parameter. Larger
// compression means more centroids and better accuracy; 100 is the
// conventional default.
func New(compression float64) *TDigest {
	if compression < 10 {
		compression = 10
	}
	return &TDigest{
		compression: compression,
		buffer:      make([]centroid, 0, int(8*compression)),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add inserts a sample with weight 1.
func (t *TDigest) Add(x float64) { t.AddWeighted(x, 1) }

// AddWeighted inserts a sample with the given positive weight. NaN samples
// and non-positive weights are ignored.
func (t *TDigest) AddWeighted(x, w float64) {
	if math.IsNaN(x) || w <= 0 {
		return
	}
	t.buffer = append(t.buffer, centroid{mean: x, weight: w})
	t.count += w
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	if len(t.buffer) == cap(t.buffer) {
		t.compress()
	}
}

// Merge folds the contents of other into t, leaving other unchanged. This is
// how per-connection digests combine into a per-session digest.
func (t *TDigest) Merge(other *TDigest) {
	if other == nil {
		return
	}
	other.compress()
	for _, c := range other.centroids {
		t.AddWeighted(c.mean, c.weight)
	}
}

// Count reports the total weight added.
func (t *TDigest) Count() float64 { return t.count }

// Min reports the smallest sample added, or +Inf when empty.
func (t *TDigest) Min() float64 { return t.min }

// Max reports the largest sample added, or -Inf when empty.
func (t *TDigest) Max() float64 { return t.max }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the added samples.
// It returns NaN for an empty digest.
func (t *TDigest) Quantile(q float64) float64 {
	t.compress()
	if t.count == 0 || len(t.centroids) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	target := q * t.count

	// Walk centroids accumulating weight; interpolate within the matching
	// centroid, treating each centroid's weight as spread around its mean.
	var cum float64
	for i, c := range t.centroids {
		if cum+c.weight >= target {
			// Position of target within this centroid, in [0,1].
			frac := (target - cum) / c.weight
			lo, hi := t.neighborBounds(i)
			return lo + frac*(hi-lo)
		}
		cum += c.weight
	}
	return t.max
}

// neighborBounds estimates the value range covered by centroid i using the
// midpoints to its neighbors, clamped to the observed min/max.
func (t *TDigest) neighborBounds(i int) (lo, hi float64) {
	c := t.centroids[i]
	lo, hi = t.min, t.max
	if i > 0 {
		lo = (t.centroids[i-1].mean + c.mean) / 2
	}
	if i < len(t.centroids)-1 {
		hi = (c.mean + t.centroids[i+1].mean) / 2
	}
	return lo, hi
}

// CDF estimates the fraction of samples ≤ x. It returns NaN for an empty
// digest.
func (t *TDigest) CDF(x float64) float64 {
	t.compress()
	if t.count == 0 {
		return math.NaN()
	}
	if x < t.min {
		return 0
	}
	if x >= t.max {
		return 1
	}
	var cum float64
	for i, c := range t.centroids {
		lo, hi := t.neighborBounds(i)
		if x < lo {
			break
		}
		if x < hi {
			frac := 0.5
			if hi > lo {
				frac = (x - lo) / (hi - lo)
			}
			return (cum + frac*c.weight) / t.count
		}
		cum += c.weight
	}
	return math.Min(1, cum/t.count)
}

// CentroidCount reports how many centroids the compressed sketch holds,
// exposed for tests of the size bound.
func (t *TDigest) CentroidCount() int {
	t.compress()
	return len(t.centroids)
}

// Snapshot is the serializable state of a digest: the compressed centroid
// list plus the exact count and observed range. It is the checkpoint unit
// for sharded population runs — a digest restored with FromSnapshot behaves
// bit-identically to the in-memory digest it was taken from in every
// subsequent Merge/Quantile call, because Snapshot canonicalizes (compresses)
// the state first and FromSnapshot restores centroids verbatim rather than
// re-adding samples.
//
// Min/Max are stored only for non-empty digests (JSON cannot encode the
// ±Inf sentinels of an empty one).
type Snapshot struct {
	Compression float64   `json:"compression"`
	Count       float64   `json:"count"`
	Min         float64   `json:"min,omitempty"`
	Max         float64   `json:"max,omitempty"`
	Means       []float64 `json:"means,omitempty"`
	Weights     []float64 `json:"weights,omitempty"`
}

// Snapshot captures the digest's canonical (compressed) state.
func (t *TDigest) Snapshot() Snapshot {
	t.compress()
	s := Snapshot{Compression: t.compression, Count: t.count}
	if t.count > 0 {
		s.Min, s.Max = t.min, t.max
		s.Means = make([]float64, len(t.centroids))
		s.Weights = make([]float64, len(t.centroids))
		for i, c := range t.centroids {
			s.Means[i] = c.mean
			s.Weights[i] = c.weight
		}
	}
	return s
}

// FromSnapshot restores a digest captured with Snapshot. It validates the
// structural invariants a corrupted checkpoint could violate: matching
// means/weights lengths, sorted means, positive weights, and a count that
// matches the total weight.
func FromSnapshot(s Snapshot) (*TDigest, error) {
	t := New(s.Compression)
	if len(s.Means) != len(s.Weights) {
		return nil, fmt.Errorf("tdigest: snapshot has %d means but %d weights", len(s.Means), len(s.Weights))
	}
	if s.Count == 0 {
		if len(s.Means) != 0 {
			return nil, fmt.Errorf("tdigest: empty snapshot carries %d centroids", len(s.Means))
		}
		return t, nil
	}
	var total float64
	t.centroids = make([]centroid, len(s.Means))
	for i := range s.Means {
		if s.Weights[i] <= 0 || math.IsNaN(s.Means[i]) {
			return nil, fmt.Errorf("tdigest: snapshot centroid %d invalid (mean %v, weight %v)", i, s.Means[i], s.Weights[i])
		}
		if i > 0 && s.Means[i] < s.Means[i-1] {
			return nil, fmt.Errorf("tdigest: snapshot means not sorted at %d", i)
		}
		t.centroids[i] = centroid{mean: s.Means[i], weight: s.Weights[i]}
		total += s.Weights[i]
	}
	// Count is stored rather than recomputed so the restored digest is
	// bit-identical to the captured one; the stored value must still agree
	// with the centroid weights up to float tolerance.
	if math.Abs(total-s.Count) > 1e-6*math.Max(1, s.Count) {
		return nil, fmt.Errorf("tdigest: snapshot count %v does not match total weight %v", s.Count, total)
	}
	t.count = s.Count
	t.min, t.max = s.Min, s.Max
	return t, nil
}

// compress merges buffered samples into the centroid list, enforcing the k1
// scale-function bound on centroid sizes.
func (t *TDigest) compress() {
	if len(t.buffer) == 0 {
		return
	}
	merged := append(t.centroids, t.buffer...)
	t.buffer = t.buffer[:0]
	sort.Slice(merged, func(i, j int) bool { return merged[i].mean < merged[j].mean })

	out := merged[:0]
	var cum float64 // weight before the current output centroid
	cur := merged[0]
	kLo := t.kScale(0) // k value at the start of the current centroid
	for _, c := range merged[1:] {
		proposed := cur.weight + c.weight
		q1 := (cum + proposed) / t.count
		// A centroid may span at most one unit of the k1 scale function,
		// which keeps centroids tiny near the tails and large in the middle.
		if t.kScale(q1)-kLo <= 1 {
			// Merge c into cur (weighted mean).
			cur.mean = (cur.mean*cur.weight + c.mean*c.weight) / proposed
			cur.weight = proposed
		} else {
			out = append(out, cur)
			cum += cur.weight
			kLo = t.kScale(cum / t.count)
			cur = c
		}
	}
	out = append(out, cur)
	t.centroids = append([]centroid(nil), out...)
}

// kScale is the k1 scale function, k1(q) = δ/(2π)·asin(2q−1), which maps
// quantiles to "centroid budget" units.
func (t *TDigest) kScale(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}
