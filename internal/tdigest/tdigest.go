// Package tdigest implements the merging t-digest of Dunning, the streaming
// quantile sketch the paper uses to summarize per-connection RTT samples
// before merging them into a per-session estimate ([21] in the paper).
//
// The implementation follows the "merging digest" design: incoming samples
// accumulate in a buffer; when the buffer fills, buffered points and existing
// centroids are merged in sorted order subject to the k1 scale-function size
// bound, which keeps centroids small near the tails and large in the middle.
package tdigest

import (
	"math"
	"sort"
)

// centroid is a weighted point in the sketch.
type centroid struct {
	mean   float64
	weight float64
}

// TDigest is a streaming quantile sketch. The zero value is not ready for
// use; construct with New. TDigest is not safe for concurrent use.
type TDigest struct {
	compression float64
	centroids   []centroid
	buffer      []centroid
	count       float64
	min, max    float64
}

// New returns a t-digest with the given compression parameter. Larger
// compression means more centroids and better accuracy; 100 is the
// conventional default.
func New(compression float64) *TDigest {
	if compression < 10 {
		compression = 10
	}
	return &TDigest{
		compression: compression,
		buffer:      make([]centroid, 0, int(8*compression)),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add inserts a sample with weight 1.
func (t *TDigest) Add(x float64) { t.AddWeighted(x, 1) }

// AddWeighted inserts a sample with the given positive weight. NaN samples
// and non-positive weights are ignored.
func (t *TDigest) AddWeighted(x, w float64) {
	if math.IsNaN(x) || w <= 0 {
		return
	}
	t.buffer = append(t.buffer, centroid{mean: x, weight: w})
	t.count += w
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	if len(t.buffer) == cap(t.buffer) {
		t.compress()
	}
}

// Merge folds the contents of other into t, leaving other unchanged. This is
// how per-connection digests combine into a per-session digest.
func (t *TDigest) Merge(other *TDigest) {
	if other == nil {
		return
	}
	other.compress()
	for _, c := range other.centroids {
		t.AddWeighted(c.mean, c.weight)
	}
}

// Count reports the total weight added.
func (t *TDigest) Count() float64 { return t.count }

// Min reports the smallest sample added, or +Inf when empty.
func (t *TDigest) Min() float64 { return t.min }

// Max reports the largest sample added, or -Inf when empty.
func (t *TDigest) Max() float64 { return t.max }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the added samples.
// It returns NaN for an empty digest.
func (t *TDigest) Quantile(q float64) float64 {
	t.compress()
	if t.count == 0 || len(t.centroids) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	target := q * t.count

	// Walk centroids accumulating weight; interpolate within the matching
	// centroid, treating each centroid's weight as spread around its mean.
	var cum float64
	for i, c := range t.centroids {
		if cum+c.weight >= target {
			// Position of target within this centroid, in [0,1].
			frac := (target - cum) / c.weight
			lo, hi := t.neighborBounds(i)
			return lo + frac*(hi-lo)
		}
		cum += c.weight
	}
	return t.max
}

// neighborBounds estimates the value range covered by centroid i using the
// midpoints to its neighbors, clamped to the observed min/max.
func (t *TDigest) neighborBounds(i int) (lo, hi float64) {
	c := t.centroids[i]
	lo, hi = t.min, t.max
	if i > 0 {
		lo = (t.centroids[i-1].mean + c.mean) / 2
	}
	if i < len(t.centroids)-1 {
		hi = (c.mean + t.centroids[i+1].mean) / 2
	}
	return lo, hi
}

// CDF estimates the fraction of samples ≤ x. It returns NaN for an empty
// digest.
func (t *TDigest) CDF(x float64) float64 {
	t.compress()
	if t.count == 0 {
		return math.NaN()
	}
	if x < t.min {
		return 0
	}
	if x >= t.max {
		return 1
	}
	var cum float64
	for i, c := range t.centroids {
		lo, hi := t.neighborBounds(i)
		if x < lo {
			break
		}
		if x < hi {
			frac := 0.5
			if hi > lo {
				frac = (x - lo) / (hi - lo)
			}
			return (cum + frac*c.weight) / t.count
		}
		cum += c.weight
	}
	return math.Min(1, cum/t.count)
}

// CentroidCount reports how many centroids the compressed sketch holds,
// exposed for tests of the size bound.
func (t *TDigest) CentroidCount() int {
	t.compress()
	return len(t.centroids)
}

// compress merges buffered samples into the centroid list, enforcing the k1
// scale-function bound on centroid sizes.
func (t *TDigest) compress() {
	if len(t.buffer) == 0 {
		return
	}
	merged := append(t.centroids, t.buffer...)
	t.buffer = t.buffer[:0]
	sort.Slice(merged, func(i, j int) bool { return merged[i].mean < merged[j].mean })

	out := merged[:0]
	var cum float64 // weight before the current output centroid
	cur := merged[0]
	kLo := t.kScale(0) // k value at the start of the current centroid
	for _, c := range merged[1:] {
		proposed := cur.weight + c.weight
		q1 := (cum + proposed) / t.count
		// A centroid may span at most one unit of the k1 scale function,
		// which keeps centroids tiny near the tails and large in the middle.
		if t.kScale(q1)-kLo <= 1 {
			// Merge c into cur (weighted mean).
			cur.mean = (cur.mean*cur.weight + c.mean*c.weight) / proposed
			cur.weight = proposed
		} else {
			out = append(out, cur)
			cum += cur.weight
			kLo = t.kScale(cum / t.count)
			cur = c
		}
	}
	out = append(out, cur)
	t.centroids = append([]centroid(nil), out...)
}

// kScale is the k1 scale function, k1(q) = δ/(2π)·asin(2q−1), which maps
// quantiles to "centroid budget" units.
func (t *TDigest) kScale(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}
