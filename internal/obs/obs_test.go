package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("c"); again != c {
		t.Fatal("Counter is not get-or-create")
	}

	g := r.Gauge("g")
	g.Set(-3.5)
	if got := g.Value(); got != -3.5 {
		t.Fatalf("gauge = %g, want -3.5", got)
	}
	g.SetMax(-7) // smaller: ignored
	if got := g.Value(); got != -3.5 {
		t.Fatalf("gauge after SetMax(-7) = %g, want -3.5", got)
	}
	g.SetMax(12)
	if got := g.Value(); got != 12 {
		t.Fatalf("gauge after SetMax(12) = %g, want 12", got)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var rec *Recorder
	var reg *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	h.Observe(5)
	rec.Record("x", "", 0, 0)
	rec.RecordAt(0, "x", "", 0, 0)
	reg.Publish("obs_test_nil")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || rec.Total() != 0 {
		t.Fatal("nil metrics should read as zero")
	}
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil {
		t.Fatal("nil registry should hand out nil metrics")
	}
	if reg.Snapshot() != "" {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering counter name as gauge")
		}
	}()
	r.Gauge("m")
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run with -race this is the data-race check, and the counter
// and histogram totals must be exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("level")
	peak := r.Gauge("peak")
	h := r.Histogram("lat", LinearBuckets(0, 1, 100))
	rec := NewRecorder(64)
	r.SetRecorder(rec)

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				peak.SetMax(float64(w*perWorker + i))
				h.Observe(float64(i % 100))
				r.Recorder().Record("tick", "w", float64(i), 0)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := h.Sum(); got != float64(workers)*perWorker*49.5 {
		t.Errorf("histogram sum = %g, want %g", got, float64(workers)*perWorker*49.5)
	}
	if got := rec.Total(); got != workers*perWorker {
		t.Errorf("recorder total = %d, want %d", got, workers*perWorker)
	}
	if got := peak.Value(); got != float64(workers*perWorker-1) {
		t.Errorf("gauge SetMax lost the maximum: %g, want %d", got, workers*perWorker-1)
	}
}

// TestHistogramQuantiles checks quantile accuracy against distributions
// whose quantiles are known analytically: accuracy should be within one
// bucket width.
func TestHistogramQuantiles(t *testing.T) {
	// Uniform over [0, 100) with unit buckets.
	h := NewHistogram(LinearBuckets(1, 1, 100))
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(rng.Float64() * 100)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1.5 {
			t.Errorf("uniform p%g = %.2f, want %.2f ± 1.5", tc.q*100, got, tc.want)
		}
	}
	if math.Abs(h.Mean()-50) > 0.5 {
		t.Errorf("uniform mean = %.2f, want 50 ± 0.5", h.Mean())
	}

	// Exponential with mean 10 against exponential buckets; quantile of
	// Exp(λ) at q is -ln(1-q)/λ.
	he := NewHistogram(ExpBuckets(0.1, 1.1, 100))
	for i := 0; i < n; i++ {
		he.Observe(rng.ExpFloat64() * 10)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 10 * math.Ln2}, {0.95, -10 * math.Log(0.05)}, {0.99, -10 * math.Log(0.01)},
	} {
		got := he.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.want*0.12 {
			t.Errorf("exp p%g = %.2f, want %.2f ± 12%%", tc.q*100, got, tc.want)
		}
	}

	// Degenerate cases.
	if h2 := NewHistogram(nil); h2.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	single := NewHistogram(LinearBuckets(0, 10, 4))
	single.Observe(7)
	for _, q := range []float64{0, 0.5, 1} {
		if got := single.Quantile(q); got != 7 {
			t.Errorf("single-sample p%g = %g, want 7", q*100, got)
		}
	}
}

func TestHistogramMinMaxAllNegative(t *testing.T) {
	h := NewHistogram(LinearBuckets(-100, 10, 21))
	for _, v := range []float64{-50, -20, -80} {
		h.Observe(v)
	}
	if h.Min() != -80 || h.Max() != -20 {
		t.Fatalf("min/max = %g/%g, want -80/-20", h.Min(), h.Max())
	}
	if p50 := h.Quantile(0.5); p50 < -80 || p50 > -20 {
		t.Fatalf("p50 = %g outside observed range", p50)
	}
}

func TestRecorderWraparound(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.RecordAt(time.Duration(i)*time.Second, "tick", "s", float64(i), float64(-i))
	}
	if rec.Total() != 10 {
		t.Fatalf("total = %d, want 10", rec.Total())
	}
	if rec.Len() != 4 {
		t.Fatalf("len = %d, want 4", rec.Len())
	}
	evs := rec.Events()
	want := []float64{6, 7, 8, 9}
	for i, ev := range evs {
		if ev.V != want[i] {
			t.Fatalf("events = %+v, want V sequence %v (oldest first)", evs, want)
		}
		if ev.Time != time.Duration(want[i])*time.Second || ev.Aux != -want[i] {
			t.Fatalf("event %d fields corrupted: %+v", i, ev)
		}
	}

	var sb strings.Builder
	if err := rec.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL lines = %d, want 4", len(lines))
	}
	var first struct {
		T    float64 `json:"t"`
		Type string  `json:"type"`
		Subj string  `json:"subj"`
		V    float64 `json:"v"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("bad JSONL line %q: %v", lines[0], err)
	}
	if first.T != 6 || first.Type != "tick" || first.Subj != "s" || first.V != 6 {
		t.Fatalf("first JSONL event = %+v", first)
	}
}

func TestRecorderUnderCapacity(t *testing.T) {
	rec := NewRecorder(8)
	rec.RecordAt(0, "a", "", 1, 0)
	rec.RecordAt(0, "b", "", 2, 0)
	evs := rec.Events()
	if len(evs) != 2 || evs[0].Type != "a" || evs[1].Type != "b" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestExpvarPublishIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("obs_test_requests").Add(3)
	const name = "obs_test_registry"
	r.Publish(name)
	r.Publish(name) // second publish must not panic
	// A second registry under the same name is skipped, not a panic.
	NewRegistry().Publish(name)

	v := expvar.Get(name)
	if v == nil {
		t.Fatal("registry not published")
	}
	var exported map[string]any
	if err := json.Unmarshal([]byte(v.String()), &exported); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if got := exported["obs_test_requests"]; got != float64(3) {
		t.Fatalf("published counter = %v, want 3", got)
	}
	// Live view: the expvar Func re-reads the registry.
	r.Counter("obs_test_requests").Inc()
	if err := json.Unmarshal([]byte(expvar.Get(name).String()), &exported); err != nil {
		t.Fatal(err)
	}
	if got := exported["obs_test_requests"]; got != float64(4) {
		t.Fatalf("published counter after Inc = %v, want 4", got)
	}
}

func TestSnapshotFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter").Add(7)
	r.Gauge("a_gauge").Set(2.5)
	h := r.Histogram("c_hist", LinearBuckets(0, 1, 10))
	h.Observe(3)
	h.Observe(5)
	snap := r.Snapshot()
	lines := strings.Split(strings.TrimSpace(snap), "\n")
	if len(lines) != 3 {
		t.Fatalf("snapshot lines = %d, want 3:\n%s", len(lines), snap)
	}
	if !strings.HasPrefix(lines[0], "a_gauge gauge 2.5") ||
		!strings.HasPrefix(lines[1], "b_counter counter 7") ||
		!strings.HasPrefix(lines[2], "c_hist histogram count=2") {
		t.Fatalf("snapshot not sorted/formatted as expected:\n%s", snap)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil {
		t.Skip("another test left a default registry installed")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Fatal("Default did not return the installed registry")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(ExpBuckets(0.001, 2, 32))
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i % 1000))
			i++
		}
	})
}

func BenchmarkRecorderRecordAt(b *testing.B) {
	rec := NewRecorder(4096)
	for i := 0; i < b.N; i++ {
		rec.RecordAt(time.Duration(i), "tick", "s", 1, 2)
	}
}

func ExampleRegistry_Snapshot() {
	r := NewRegistry()
	r.Counter("requests").Add(2)
	r.Gauge("queue_bytes").Set(1500)
	fmt.Print(r.Snapshot())
	// Output:
	// queue_bytes gauge 1500
	// requests counter 2
}
