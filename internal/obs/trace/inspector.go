package trace

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"time"
)

// Inspector serves the live /debug/sammy page: sessions in flight, the
// most recent spans, and whatever extra state the host process exposes
// through Vars (the server wires its overload controller here). It holds
// no goroutines and no state beyond the pointers it reads at request
// time, so it is leak-free by construction.
type Inspector struct {
	Tracer *Tracer
	// Vars supplies extra key/value rows (overload state, build info).
	// Nil means no extra section.
	Vars func() map[string]string
}

type inspectorVar struct{ Key, Val string }

type inspectorData struct {
	Enabled  bool
	Sessions []SessionInfo
	Recent   []Record
	Retained int
	Dropped  uint64
	Vars     []inspectorVar
}

var inspectorTmpl = template.Must(template.New("sammy").Funcs(template.FuncMap{
	"dur": func(d time.Duration) string { return d.Round(time.Microsecond).String() },
	"attrs": func(attrs []Attr) string {
		out := ""
		for i, a := range attrs {
			if i > 0 {
				out += " "
			}
			if a.IsStr {
				out += a.Key + "=" + a.Str
			} else {
				out += fmt.Sprintf("%s=%g", a.Key, a.Val)
			}
		}
		return out
	},
}).Parse(`<!DOCTYPE html>
<html><head><title>sammy inspector</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
table { border-collapse: collapse; }
th, td { text-align: left; padding: 2px 10px; border-bottom: 1px solid #ddd; }
th { background: #eee; }
.num { text-align: right; }
.off { color: #a00; }
</style></head><body>
<h1>sammy run inspector</h1>
{{if not .Enabled}}<p class="off">tracing disabled — start the process with tracing on to populate this page</p>{{else}}
<p>{{.Retained}} records retained{{if .Dropped}}, {{.Dropped}} dropped at cap{{end}}</p>
<h2>sessions ({{len .Sessions}})</h2>
<table><tr><th>trace</th><th class="num">open spans</th><th class="num">spans issued</th></tr>
{{range .Sessions}}<tr><td>{{.ID}}</td><td class="num">{{.Open}}</td><td class="num">{{.Spans}}</td></tr>
{{end}}</table>
<h2>recent spans (newest first)</h2>
<table><tr><th>trace</th><th class="num">span</th><th class="num">parent</th><th>kind</th><th>name</th><th class="num">start</th><th class="num">dur</th><th>attrs</th></tr>
{{range .Recent}}<tr><td>{{.TraceID}}</td><td class="num">{{.SpanID}}</td><td class="num">{{if .Parent}}{{.Parent}}{{end}}</td><td>{{.Kind}}</td><td>{{if ne .Name .Kind}}{{.Name}}{{end}}</td><td class="num">{{dur .Start}}</td><td class="num">{{if .Instant}}·{{else}}{{dur .Dur}}{{end}}</td><td>{{attrs .Attrs}}</td></tr>
{{end}}</table>
{{end}}
{{if .Vars}}<h2>state</h2>
<table>{{range .Vars}}<tr><th>{{.Key}}</th><td>{{.Val}}</td></tr>
{{end}}</table>{{end}}
</body></html>
`))

// ServeHTTP renders the inspector page from a point-in-time snapshot of
// the tracer.
func (in *Inspector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d := inspectorData{
		Enabled:  in.Tracer != nil,
		Sessions: in.Tracer.Sessions(),
		Recent:   in.Tracer.Recent(64),
		Retained: in.Tracer.Len(),
		Dropped:  in.Tracer.Dropped(),
	}
	if in.Vars != nil {
		m := in.Vars()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			d.Vars = append(d.Vars, inspectorVar{Key: k, Val: m[k]})
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := inspectorTmpl.Execute(w, d); err != nil {
		// Header already sent; nothing useful to do beyond dropping the
		// response.
		_ = err
	}
}
