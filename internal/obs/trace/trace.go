// Package trace is a zero-dependency, deterministic span tracer for the
// chunk lifecycle (DESIGN.md §12). A span records one interval of work —
// a session, a chunk, an ABR decision, a fetch — with a trace id (the
// session), a parent span id, numeric/string attributes and timestamps.
//
// Determinism is the design constraint: timestamps are *caller-supplied*
// on the simulated paths (the StartAt/EndAt/AnnotateAt forms, stamped with
// the sim clock from internal/sim or the session-time accumulator in
// internal/netmodel), so fixed-seed runs produce byte-identical traces.
// The clock-reading forms (Start/End/Annotate) read wall time and are
// reserved for the real HTTP path (cdn, overload, the server binaries).
// Span ids are sequential per trace, and the exporters sort records by
// (trace id, span id), so even traces recorded from parallel goroutines
// (the A/B harness) export identically run to run.
//
// Like the rest of internal/obs, tracing is nil-guarded: a nil *Tracer,
// *Trace or *Span is "tracing off", and every method on them is a no-op
// that allocates nothing — the disabled hot path costs one pointer
// comparison, enforced by AllocsPerRun tests and the benchcheck gate.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// recentCap bounds the ring of recent records kept for the live
	// inspector.
	recentCap = 256
	// DefaultMaxRecords bounds the completed-record backlog of a Tracer
	// that is never flushed. When the cap is hit new records are dropped
	// (and counted); long-running servers drain with a Flusher instead.
	DefaultMaxRecords = 1 << 20
	// pruneTraces is the trace-table size at which Session garbage-collects
	// traces with no open spans, bounding server-side memory. A pruned
	// trace id that reappears restarts its span-id sequence; exporters key
	// on (trace, span) pairs that remain unique because pruning requires
	// all spans closed and flushed ids are already recorded.
	pruneTraces = 4096
)

// Attr is one span attribute: a key with either a numeric or a string
// value (IsStr selects).
type Attr struct {
	Key   string
	Str   string
	Val   float64
	IsStr bool
}

// Record is one completed span or instant annotation, the unit the
// exporters and cmd/sammy-trace consume.
type Record struct {
	TraceID string
	SpanID  uint64
	Parent  uint64 // 0 = root span of its trace
	Kind    string // span taxonomy entry, e.g. "player.chunk", "abr.decide"
	Name    string // free-form detail, e.g. the ABR algorithm name
	Start   time.Duration
	Dur     time.Duration
	Instant bool // an annotation: a point event parented under a span
	Attrs   []Attr
}

// Tracer owns the traces of one process (or one experiment run): a table
// of per-session Traces, the backlog of completed records, and a small
// ring of recent records for the live inspector. Safe for concurrent use.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	traces  map[string]*Trace
	done    []Record
	recent  [recentCap]Record
	recentN uint64
	dropped uint64
	max     int
}

// New returns an empty Tracer whose wall clock starts now.
func New() *Tracer {
	return &Tracer{
		start:  time.Now(),
		traces: make(map[string]*Trace),
		max:    DefaultMaxRecords,
	}
}

// defaultTracer is the process-wide tracer, nil (off) by default.
var defaultTracer atomic.Pointer[Tracer]

// Default returns the process-wide tracer installed with SetDefault, or
// nil when tracing is off.
func Default() *Tracer { return defaultTracer.Load() }

// SetDefault installs t as the process-wide tracer (nil turns tracing
// off). Call it once at startup, before sessions begin.
func SetDefault(t *Tracer) { defaultTracer.Store(t) }

// Session returns the trace named id, creating it on first use. The new
// trace's clock is the tracer's wall clock (time since New); simulated
// sessions either bind a clock with SetClock or use the *At forms
// exclusively. Nil-safe: a nil Tracer returns a nil Trace.
func (t *Tracer) Session(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tr := t.traces[id]
	if tr == nil {
		if len(t.traces) >= pruneTraces {
			t.pruneLocked()
		}
		tr = &Trace{t: t, id: id}
		t.traces[id] = tr
	}
	t.mu.Unlock()
	return tr
}

// pruneLocked drops traces with no open spans; callers hold t.mu.
func (t *Tracer) pruneLocked() {
	for id, tr := range t.traces {
		if tr.open.Load() == 0 {
			delete(t.traces, id)
		}
	}
}

// StartRemote opens a span in trace traceID under the remote parent span
// id carried in an X-Sammy-Trace header, stamped with the tracer's wall
// clock. This is the server-side join: the serving span nests under the
// client's fetch attempt in the merged timeline.
func (t *Tracer) StartRemote(traceID string, parent uint64, kind, name string) *Span {
	if t == nil {
		return nil
	}
	tr := t.Session(traceID)
	return tr.startSpan(parent, tr.now(), kind, name)
}

// record appends a completed record to the backlog and the recent ring.
func (t *Tracer) record(r Record) {
	t.mu.Lock()
	if t.max > 0 && len(t.done) >= t.max {
		t.dropped++
	} else {
		t.done = append(t.done, r)
	}
	t.recent[t.recentN%recentCap] = r
	t.recentN++
	t.mu.Unlock()
}

// Dropped reports how many records were discarded at the retention cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports the number of completed records currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// Records returns a copy of the completed records in canonical export
// order: sorted by (TraceID, SpanID). Sorting is what makes exports
// deterministic even when sessions recorded from parallel goroutines
// interleaved arbitrarily in completion order.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Record, len(t.done))
	copy(out, t.done)
	t.mu.Unlock()
	SortRecords(out)
	return out
}

// SortRecords sorts records into the canonical (TraceID, SpanID) export
// order.
func SortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].TraceID != recs[j].TraceID {
			return recs[i].TraceID < recs[j].TraceID
		}
		return recs[i].SpanID < recs[j].SpanID
	})
}

// Recent returns up to n of the most recently completed records, newest
// first — the inspector's live view.
func (t *Tracer) Recent(n int) []Record {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := int(t.recentN)
	if have > recentCap {
		have = recentCap
	}
	if n > have {
		n = have
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, t.recent[(t.recentN-1-uint64(i))%recentCap])
	}
	return out
}

// SessionInfo summarizes one trace for the inspector.
type SessionInfo struct {
	ID    string
	Open  int64  // spans started but not yet ended
	Spans uint64 // span ids issued so far
}

// Sessions lists the tracer's traces sorted by id.
func (t *Tracer) Sessions() []SessionInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SessionInfo, 0, len(t.traces))
	for id, tr := range t.traces {
		out = append(out, SessionInfo{ID: id, Open: tr.open.Load(), Spans: tr.next.Load()})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Trace is one session's span sequence. Span ids are issued sequentially
// from 1; sessions are single-threaded, so a fixed-seed session produces
// the same id sequence every run. A nil *Trace is "tracing off".
type Trace struct {
	t     *Tracer
	id    string
	clock func() time.Duration
	next  atomic.Uint64
	open  atomic.Int64
}

// ID reports the trace id ("" for nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// SetClock binds the trace's clock, used by the non-At span forms. Bind
// the simulator's Now for sim-side sessions that want Start/End without
// threading explicit times; the default is the tracer's wall clock. Not
// safe to change while spans are in flight. Returns tr for chaining.
func (tr *Trace) SetClock(fn func() time.Duration) *Trace {
	if tr != nil {
		tr.clock = fn
	}
	return tr
}

func (tr *Trace) now() time.Duration {
	if tr.clock != nil {
		return tr.clock()
	}
	return time.Since(tr.t.start)
}

// Now reads the trace clock (0 for nil) — for callers on the real-HTTP
// path that need a timestamp consistent with the trace's Start/End forms
// to hand to an *At API.
func (tr *Trace) Now() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.now()
}

// StartAt opens a root span at caller time at. The *At forms are the
// deterministic path: sim and netmodel code must use them, stamped with
// simulated/session time.
func (tr *Trace) StartAt(at time.Duration, kind, name string) *Span {
	return tr.startSpan(0, at, kind, name)
}

// Start opens a root span stamped with the trace clock (wall unless
// SetClock rebound it). Real-HTTP path only.
func (tr *Trace) Start(kind, name string) *Span {
	if tr == nil {
		return nil
	}
	return tr.startSpan(0, tr.now(), kind, name)
}

// StartRemoteAt opens a span under a parent span id received from another
// process (the X-Sammy-Trace header), at caller time at.
func (tr *Trace) StartRemoteAt(parent uint64, at time.Duration, kind, name string) *Span {
	return tr.startSpan(parent, at, kind, name)
}

func (tr *Trace) startSpan(parent uint64, at time.Duration, kind, name string) *Span {
	if tr == nil {
		return nil
	}
	tr.open.Add(1)
	return &Span{
		tr:     tr,
		id:     tr.next.Add(1),
		parent: parent,
		kind:   kind,
		name:   name,
		start:  at,
	}
}

// Span is one open interval of work. Spans are owned by one goroutine at
// a time (hand-off through a fetch callback is fine); End/EndAt emits the
// Record. A nil *Span is "tracing off": every method no-ops.
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64
	kind   string
	name   string
	start  time.Duration
	attrs  []Attr
	ended  bool
}

// Context reports the span's wire identity for header propagation.
func (s *Span) Context() (traceID string, spanID uint64) {
	if s == nil {
		return "", 0
	}
	return s.tr.id, s.id
}

// SetAttr records a numeric attribute; returns s for chaining.
func (s *Span) SetAttr(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
	return s
}

// SetStr records a string attribute; returns s for chaining.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
	return s
}

// StartChildAt opens a child span at caller time at (the deterministic
// form).
func (s *Span) StartChildAt(at time.Duration, kind, name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(s.id, at, kind, name)
}

// StartChild opens a child span stamped with the trace clock (real-HTTP
// path only).
func (s *Span) StartChild(kind, name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(s.id, s.tr.now(), kind, name)
}

// AnnotateAt emits an instant annotation parented under s at caller time
// at: a point event such as a TCP fast retransmit, with one numeric
// value. The annotation takes its own span id from the trace sequence.
func (s *Span) AnnotateAt(at time.Duration, name string, v float64) {
	if s == nil {
		return
	}
	s.tr.t.record(Record{
		TraceID: s.tr.id,
		SpanID:  s.tr.next.Add(1),
		Parent:  s.id,
		Kind:    name,
		Name:    name,
		Start:   at,
		Instant: true,
		Attrs:   []Attr{{Key: "v", Val: v}},
	})
}

// Annotate is AnnotateAt on the trace clock (real-HTTP path only).
func (s *Span) Annotate(name string, v float64) {
	if s == nil {
		return
	}
	s.AnnotateAt(s.tr.now(), name, v)
}

// EndAt closes the span at caller time at and emits its Record. Ending a
// span twice is a no-op (the first End wins); a negative duration is
// clamped to zero.
func (s *Span) EndAt(at time.Duration) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tr.open.Add(-1)
	dur := at - s.start
	if dur < 0 {
		dur = 0
	}
	s.tr.t.record(Record{
		TraceID: s.tr.id,
		SpanID:  s.id,
		Parent:  s.parent,
		Kind:    s.kind,
		Name:    s.name,
		Start:   s.start,
		Dur:     dur,
		Attrs:   s.attrs,
	})
}

// End closes the span at the trace clock (real-HTTP path only).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tr.now())
}
