package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"
)

// This file renders records to the two wire formats — streaming JSONL and
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing) — and
// parses JSONL back. All rendering is hand-built with strconv so field
// order and float formatting are fixed: byte-identical traces from
// fixed-seed runs are a test invariant, and encoding/json map iteration
// would break it.

// appendFloat renders v deterministically; non-finite values (which no
// producer should emit) degrade to 0 to keep the output valid JSON.
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendAttrs renders an attrs object in stored order.
func appendAttrs(b []byte, attrs []Attr) []byte {
	b = append(b, '{')
	for i, a := range attrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, a.Key)
		b = append(b, ':')
		if a.IsStr {
			b = strconv.AppendQuote(b, a.Str)
		} else {
			b = appendFloat(b, a.Val)
		}
	}
	return append(b, '}')
}

// appendRecordJSON renders one JSONL record (no trailing newline).
func appendRecordJSON(b []byte, r Record) []byte {
	b = append(b, `{"trace":`...)
	b = strconv.AppendQuote(b, r.TraceID)
	b = append(b, `,"span":`...)
	b = strconv.AppendUint(b, r.SpanID, 10)
	if r.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, r.Parent, 10)
	}
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, r.Kind)
	if r.Name != "" && r.Name != r.Kind {
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, r.Name)
	}
	b = append(b, `,"start_ns":`...)
	b = strconv.AppendInt(b, int64(r.Start), 10)
	if r.Instant {
		b = append(b, `,"instant":true`...)
	} else {
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, int64(r.Dur), 10)
	}
	if len(r.Attrs) > 0 {
		b = append(b, `,"attrs":`...)
		b = appendAttrs(b, r.Attrs)
	}
	return append(b, '}')
}

// WriteJSONLRecords writes recs as one JSON object per line, in the order
// given. Callers wanting the canonical deterministic order sort with
// SortRecords first (Tracer.WriteJSONL does).
func WriteJSONLRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, r := range recs {
		buf = appendRecordJSON(buf[:0], r)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("trace: write jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// WriteJSONL writes every retained record as sorted JSONL without
// draining the backlog (so a Chrome export can follow from the same
// tracer).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONLRecords(w, t.Records())
}

// Flush drains the completed-record backlog to w as JSONL in completion
// order. This is the streaming form the server's Flusher uses; completion
// order is wall-clock order there, not the canonical sorted order.
func (t *Tracer) Flush(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := t.done
	t.done = nil
	t.mu.Unlock()
	return WriteJSONLRecords(w, recs)
}

// appendChromeEvent renders one trace-event object. ts/dur are in
// microseconds per the trace-event spec; fractional microseconds keep the
// nanosecond clocks exact.
func appendChromeEvent(b []byte, r Record, tid int) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, r.Kind)
	b = append(b, `,"cat":`...)
	b = strconv.AppendQuote(b, kindCategory(r.Kind))
	if r.Instant {
		b = append(b, `,"ph":"i","s":"t"`...)
	} else {
		b = append(b, `,"ph":"X"`...)
	}
	b = append(b, `,"ts":`...)
	b = appendMicros(b, r.Start)
	if !r.Instant {
		b = append(b, `,"dur":`...)
		b = appendMicros(b, r.Dur)
	}
	b = append(b, `,"pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"args":{"span":`...)
	b = strconv.AppendUint(b, r.SpanID, 10)
	if r.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, r.Parent, 10)
	}
	if r.Name != "" && r.Name != r.Kind {
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, r.Name)
	}
	for _, a := range r.Attrs {
		b = append(b, ',')
		b = strconv.AppendQuote(b, a.Key)
		b = append(b, ':')
		if a.IsStr {
			b = strconv.AppendQuote(b, a.Str)
		} else {
			b = appendFloat(b, a.Val)
		}
	}
	return append(b, `}}`...)
}

// appendMicros renders a duration as decimal microseconds with nanosecond
// precision ("812345.678").
func appendMicros(b []byte, d time.Duration) []byte {
	us := d / time.Microsecond
	ns := d % time.Microsecond
	b = strconv.AppendInt(b, int64(us), 10)
	if ns != 0 {
		b = append(b, '.')
		s := strconv.FormatInt(int64(ns)+1000, 10) // "1xyz": zero-padded tail
		b = append(b, s[1:]...)
	}
	return b
}

// kindCategory is the span kind's layer prefix ("player.chunk" →
// "player"), used as the trace-event category.
func kindCategory(kind string) string {
	for i := 0; i < len(kind); i++ {
		if kind[i] == '.' {
			return kind[:i]
		}
	}
	return kind
}

// WriteChromeRecords writes recs as a Chrome trace-event JSON array. Each
// trace id becomes one named thread (pid 1), so Perfetto lays sessions
// out as parallel tracks. Records are sorted into canonical order first.
func WriteChromeRecords(w io.Writer, recs []Record) error {
	sorted := make([]Record, len(recs))
	copy(sorted, recs)
	SortRecords(sorted)

	tids := make(map[string]int)
	var order []string
	for _, r := range sorted {
		if _, ok := tids[r.TraceID]; !ok {
			tids[r.TraceID] = len(order) + 1
			order = append(order, r.TraceID)
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return fmt.Errorf("trace: write chrome trace: %w", err)
	}
	var buf []byte
	first := true
	emit := func(line []byte) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(line)
		return err
	}
	for _, id := range order {
		buf = append(buf[:0], `{"name":"thread_name","ph":"M","pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tids[id]), 10)
		buf = append(buf, `,"args":{"name":`...)
		buf = strconv.AppendQuote(buf, id)
		buf = append(buf, `}}`...)
		if err := emit(buf); err != nil {
			return fmt.Errorf("trace: write chrome trace: %w", err)
		}
	}
	for _, r := range sorted {
		buf = appendChromeEvent(buf[:0], r, tids[r.TraceID])
		if err := emit(buf); err != nil {
			return fmt.Errorf("trace: write chrome trace: %w", err)
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return fmt.Errorf("trace: write chrome trace: %w", err)
	}
	return bw.Flush()
}

// WriteChromeTrace writes every retained record as a Chrome trace-event
// JSON array, without draining the backlog.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeRecords(w, t.Records())
}

// jsonRecord is the JSONL wire shape for parsing.
type jsonRecord struct {
	Trace   string         `json:"trace"`
	Span    uint64         `json:"span"`
	Parent  uint64         `json:"parent"`
	Kind    string         `json:"kind"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Instant bool           `json:"instant"`
	Attrs   map[string]any `json:"attrs"`
}

// ReadRecords parses JSONL trace output (the Flush/WriteJSONL format)
// back into records. Attribute order is not preserved by JSON maps, so
// parsed attrs come back sorted by key — still deterministic, which is
// all the consumers need.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(text, &jr); err != nil {
			return out, fmt.Errorf("trace: parse jsonl line %d: %w", line, err)
		}
		rec := Record{
			TraceID: jr.Trace,
			SpanID:  jr.Span,
			Parent:  jr.Parent,
			Kind:    jr.Kind,
			Name:    jr.Name,
			Start:   time.Duration(jr.StartNS),
			Dur:     time.Duration(jr.DurNS),
			Instant: jr.Instant,
		}
		if rec.Name == "" {
			rec.Name = rec.Kind
		}
		if len(jr.Attrs) > 0 {
			keys := make([]string, 0, len(jr.Attrs))
			for k := range jr.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				switch v := jr.Attrs[k].(type) {
				case string:
					rec.Attrs = append(rec.Attrs, Attr{Key: k, Str: v, IsStr: true})
				case float64:
					rec.Attrs = append(rec.Attrs, Attr{Key: k, Val: v})
				}
			}
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("trace: read jsonl: %w", err)
	}
	return out, nil
}
