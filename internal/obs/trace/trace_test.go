package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// buildSample records a small but representative trace tree: a session
// with one chunk, an ABR child, an instant annotation, and a second
// session, using the deterministic *At forms throughout.
func buildSample(t *Tracer) {
	tr := t.Session("flow1")
	sess := tr.StartAt(0, "player.session", "flow1").SetStr("algo", "sammy")
	chunk := sess.StartChildAt(10*time.Millisecond, "player.chunk", "c0").SetAttr("rung", 3)
	abr := chunk.StartChildAt(10*time.Millisecond, "abr.decide", "sammy")
	abr.SetAttr("buffer_s", 2.5).EndAt(11 * time.Millisecond)
	chunk.AnnotateAt(12*time.Millisecond, "tcp.fast_retx", 4096)
	chunk.EndAt(50 * time.Millisecond)
	sess.EndAt(60 * time.Millisecond)

	tr2 := t.Session("flow2")
	s2 := tr2.StartAt(5*time.Millisecond, "player.session", "flow2")
	s2.EndAt(20 * time.Millisecond)
}

func TestSpanTreeRecords(t *testing.T) {
	tc := New()
	buildSample(tc)
	recs := tc.Records()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	// Canonical order: flow1 spans by id, then flow2.
	wantKinds := []string{"player.session", "player.chunk", "abr.decide", "tcp.fast_retx", "player.session"}
	for i, r := range recs {
		if r.Kind != wantKinds[i] {
			t.Fatalf("record %d kind = %q, want %q", i, r.Kind, wantKinds[i])
		}
	}
	if recs[0].TraceID != "flow1" || recs[4].TraceID != "flow2" {
		t.Fatalf("trace order wrong: %q ... %q", recs[0].TraceID, recs[4].TraceID)
	}
	// Parentage: chunk under session, abr under chunk, instant under chunk.
	if recs[1].Parent != recs[0].SpanID {
		t.Errorf("chunk parent = %d, want session span %d", recs[1].Parent, recs[0].SpanID)
	}
	if recs[2].Parent != recs[1].SpanID || recs[3].Parent != recs[1].SpanID {
		t.Errorf("abr/instant parents = %d/%d, want chunk span %d", recs[2].Parent, recs[3].Parent, recs[1].SpanID)
	}
	if !recs[3].Instant {
		t.Error("annotation not marked instant")
	}
	if recs[1].Dur != 40*time.Millisecond {
		t.Errorf("chunk dur = %v, want 40ms", recs[1].Dur)
	}
	if got := recs[0].Attrs; len(got) != 1 || !got[0].IsStr || got[0].Str != "sammy" {
		t.Errorf("session attrs = %+v", got)
	}
}

func TestDoubleEndAndClamp(t *testing.T) {
	tc := New()
	tr := tc.Session("s")
	sp := tr.StartAt(100*time.Millisecond, "k", "n")
	sp.EndAt(90 * time.Millisecond) // before start: clamped
	sp.EndAt(200 * time.Millisecond)
	recs := tc.Records()
	if len(recs) != 1 {
		t.Fatalf("double End emitted %d records, want 1", len(recs))
	}
	if recs[0].Dur != 0 {
		t.Errorf("negative duration not clamped: %v", recs[0].Dur)
	}
	if n := tc.Sessions()[0].Open; n != 0 {
		t.Errorf("open spans after End = %d, want 0", n)
	}
}

func TestSessionReuseAndPrune(t *testing.T) {
	tc := New()
	if tc.Session("a") != tc.Session("a") {
		t.Error("Session not idempotent for same id")
	}
	// Fill past the prune threshold with closed traces; table must shrink.
	for i := 0; i < pruneTraces+10; i++ {
		tc.Session(strings.Repeat("x", 1) + string(rune('0'+i%10)) + itoa(i))
	}
	tc.mu.Lock()
	n := len(tc.traces)
	tc.mu.Unlock()
	if n > pruneTraces+1 {
		t.Errorf("trace table not pruned: %d entries", n)
	}
}

func itoa(i int) string {
	var b [8]byte
	p := len(b)
	for {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
		if i == 0 {
			return string(b[p:])
		}
	}
}

func TestDropAtCap(t *testing.T) {
	tc := New()
	tc.max = 3
	tr := tc.Session("s")
	for i := 0; i < 5; i++ {
		tr.StartAt(0, "k", "").EndAt(time.Millisecond)
	}
	if tc.Len() != 3 {
		t.Errorf("retained %d, want 3", tc.Len())
	}
	if tc.Dropped() != 2 {
		t.Errorf("dropped %d, want 2", tc.Dropped())
	}
}

func TestRecent(t *testing.T) {
	tc := New()
	tr := tc.Session("s")
	for i := 0; i < 10; i++ {
		tr.StartAt(time.Duration(i), "k", "").EndAt(time.Duration(i) + 1)
	}
	got := tc.Recent(3)
	if len(got) != 3 {
		t.Fatalf("Recent(3) returned %d", len(got))
	}
	if got[0].SpanID != 10 || got[2].SpanID != 8 {
		t.Errorf("Recent order wrong: %d, %d", got[0].SpanID, got[2].SpanID)
	}
	if got := tc.Recent(1000); len(got) != 10 {
		t.Errorf("Recent(1000) = %d records, want 10", len(got))
	}
}

func TestStartRemoteJoins(t *testing.T) {
	tc := New()
	sp := tc.StartRemote("flow9", 42, "cdn.serve", "GET")
	sp.EndAt(time.Millisecond)
	recs := tc.Records()
	if len(recs) != 1 || recs[0].TraceID != "flow9" || recs[0].Parent != 42 {
		t.Fatalf("remote join wrong: %+v", recs)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tc := New()
	sp := tc.Session("u01/s3").StartAt(0, "cdn.fetch", "")
	h := make(http.Header)
	SetHeader(h, sp)
	id, span, ok := ParseHeader(h.Get(Header))
	if !ok || id != "u01/s3" || span != 1 {
		t.Fatalf("round trip: id=%q span=%d ok=%v", id, span, ok)
	}
	// Trace ids containing ';' still parse: split on last.
	id, span, ok = ParseHeader("a;b;7")
	if !ok || id != "a;b" || span != 7 {
		t.Fatalf("semicolon id: id=%q span=%d ok=%v", id, span, ok)
	}
	for _, bad := range []string{"", ";", "x;", ";5", "x;notanum", "justtext"} {
		if _, _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) ok, want reject", bad)
		}
	}
	h2 := make(http.Header)
	SetHeader(h2, nil)
	if len(h2) != 0 {
		t.Error("SetHeader(nil span) touched headers")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if ContextWithSpan(ctx, nil) != ctx {
		t.Error("ContextWithSpan(nil) did not return ctx unchanged")
	}
	if SpanFromContext(ctx) != nil {
		t.Error("SpanFromContext on empty ctx non-nil")
	}
	tc := New()
	sp := tc.Session("s").StartAt(0, "k", "")
	if got := SpanFromContext(ContextWithSpan(ctx, sp)); got != sp {
		t.Error("span did not round-trip through context")
	}
}

func TestNilSafety(t *testing.T) {
	var tc *Tracer
	tr := tc.Session("x")
	if tr != nil {
		t.Fatal("nil tracer returned non-nil trace")
	}
	sp := tr.StartAt(0, "k", "n")
	sp = sp.SetAttr("a", 1).SetStr("b", "c")
	child := sp.StartChildAt(0, "k2", "")
	child.AnnotateAt(0, "e", 1)
	child.EndAt(0)
	sp.End()
	tr.SetClock(func() time.Duration { return 0 })
	if tc.Records() != nil || tc.Recent(5) != nil || tc.Sessions() != nil {
		t.Error("nil tracer leaked records")
	}
	if tc.Len() != 0 || tc.Dropped() != 0 {
		t.Error("nil tracer counters non-zero")
	}
	if err := tc.Flush(nil); err != nil {
		t.Errorf("nil tracer Flush: %v", err)
	}
	if id, span := sp.Context(); id != "" || span != 0 {
		t.Error("nil span Context non-zero")
	}
	if tr.ID() != "" {
		t.Error("nil trace ID non-empty")
	}
	if tc.StartRemote("a", 1, "k", "") != nil {
		t.Error("nil tracer StartRemote non-nil")
	}
}

// TestDisabledZeroAlloc is the hot-path contract: with tracing off (nil
// receivers all the way down), the full per-chunk span choreography must
// not allocate.
func TestDisabledZeroAlloc(t *testing.T) {
	var tc *Tracer
	ctx := context.Background()
	h := make(http.Header)
	allocs := testing.AllocsPerRun(100, func() {
		tr := tc.Session("flow1")
		sess := tr.StartAt(0, "player.session", "x")
		chunk := sess.StartChildAt(0, "player.chunk", "")
		chunk.SetAttr("rung", 3)
		chunk.AnnotateAt(0, "tcp.rto", 1)
		SetHeader(h, chunk)
		_ = ContextWithSpan(ctx, chunk)
		chunk.EndAt(0)
		sess.EndAt(0)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tc := New()
	buildSample(tc)
	var buf bytes.Buffer
	if err := tc.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSON line: %s", line)
		}
	}
	got, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := tc.Records()
	if len(got) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.TraceID != w.TraceID || g.SpanID != w.SpanID || g.Parent != w.Parent ||
			g.Kind != w.Kind || g.Start != w.Start || g.Dur != w.Dur || g.Instant != w.Instant {
			t.Errorf("record %d: got %+v want %+v", i, g, w)
		}
		if len(g.Attrs) != len(w.Attrs) {
			t.Errorf("record %d: %d attrs, want %d", i, len(g.Attrs), len(w.Attrs))
		}
	}
}

func TestChromeExport(t *testing.T) {
	tc := New()
	buildSample(tc)
	var buf bytes.Buffer
	if err := tc.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata + 5 records.
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7", len(events))
	}
	if events[0]["ph"] != "M" || events[0]["name"] != "thread_name" {
		t.Errorf("first event not thread metadata: %v", events[0])
	}
	var sawInstant, sawComplete bool
	for _, e := range events {
		switch e["ph"] {
		case "i":
			sawInstant = true
		case "X":
			sawComplete = true
			if _, ok := e["dur"]; !ok {
				t.Errorf("complete event without dur: %v", e)
			}
		}
	}
	if !sawInstant || !sawComplete {
		t.Errorf("missing phases: instant=%v complete=%v", sawInstant, sawComplete)
	}
}

func TestAppendMicros(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{time.Microsecond, "1"},
		{1500 * time.Nanosecond, "1.500"},
		{time.Millisecond + 7*time.Nanosecond, "1000.007"},
		{time.Second, "1000000"},
	}
	for _, c := range cases {
		if got := string(appendMicros(nil, c.d)); got != c.want {
			t.Errorf("appendMicros(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestExportDeterminism records the same span choreography twice into
// fresh tracers and requires byte-identical exporter output.
func TestExportDeterminism(t *testing.T) {
	render := func() (string, string) {
		tc := New()
		buildSample(tc)
		var j, c bytes.Buffer
		if err := tc.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := tc.WriteChromeTrace(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render()
	j2, c2 := render()
	if j1 != j2 {
		t.Error("JSONL output differs between identical runs")
	}
	if c1 != c2 {
		t.Error("Chrome output differs between identical runs")
	}
}

func TestFlushDrains(t *testing.T) {
	tc := New()
	buildSample(tc)
	var buf bytes.Buffer
	if err := tc.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 0 {
		t.Errorf("Flush left %d records", tc.Len())
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("flushed %d records, want 5", len(recs))
	}
}

func TestFlusherLifecycle(t *testing.T) {
	leakcheck.Check(t)
	tc := New()
	var buf bytes.Buffer
	f := NewFlusher(tc, &buf, time.Hour) // interval never fires; Stop drains
	buildSample(tc)
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("flusher drained %d records, want 5", len(recs))
	}
	if tc.Len() != 0 {
		t.Errorf("backlog not drained: %d", tc.Len())
	}
}

func TestFlusherPeriodic(t *testing.T) {
	leakcheck.Check(t)
	tc := New()
	var mu syncBuffer
	f := NewFlusher(tc, &mu, time.Millisecond)
	tc.Session("s").StartAt(0, "k", "").EndAt(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for tc.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 0 {
		t.Error("periodic flusher never drained")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for the concurrent flusher
// test.
type syncBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	if b.mu == nil {
		b.mu = make(chan struct{}, 1)
	}
	b.mu <- struct{}{}
	defer func() { <-b.mu }()
	return b.buf.Write(p)
}

func TestInspectorHandler(t *testing.T) {
	leakcheck.Check(t)
	tc := New()
	buildSample(tc)
	// Leave one span open so the sessions table shows it in flight.
	open := tc.Session("flow3").StartAt(0, "player.session", "flow3")
	in := &Inspector{
		Tracer: tc,
		Vars:   func() map[string]string { return map[string]string{"overload_inflight": "2"} },
	}
	rr := httptest.NewRecorder()
	in.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/sammy", nil))
	body := rr.Body.String()
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	for _, want := range []string{"flow1", "flow3", "player.chunk", "overload_inflight", "records retained"} {
		if !strings.Contains(body, want) {
			t.Errorf("inspector page missing %q", want)
		}
	}
	open.EndAt(time.Second)

	// Disabled tracer renders the off notice, not a panic.
	rr = httptest.NewRecorder()
	(&Inspector{}).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/sammy", nil))
	if !strings.Contains(rr.Body.String(), "tracing disabled") {
		t.Error("nil-tracer inspector missing disabled notice")
	}
}

func TestDefaultTracer(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("Default not nil after SetDefault(nil)")
	}
	tc := New()
	SetDefault(tc)
	if Default() != tc {
		t.Fatal("SetDefault did not install tracer")
	}
}

func TestSetClock(t *testing.T) {
	tc := New()
	var now time.Duration = 5 * time.Second
	tr := tc.Session("s").SetClock(func() time.Duration { return now })
	sp := tr.Start("k", "")
	now = 7 * time.Second
	sp.End()
	recs := tc.Records()
	if recs[0].Start != 5*time.Second || recs[0].Dur != 2*time.Second {
		t.Errorf("clock-bound span = start %v dur %v", recs[0].Start, recs[0].Dur)
	}
}
