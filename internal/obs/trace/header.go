package trace

import (
	"context"
	"net/http"
	"strconv"
	"strings"
)

// Header is the HTTP request header carrying trace context from the
// client's fetch span to the server, in the form "<traceID>;<spanID>".
// The span id is parsed from the *last* semicolon, so trace ids may
// contain any character but a trailing ";<digits>".
const Header = "X-Sammy-Trace"

// HeaderValue renders the propagation header for span s ("" for nil).
func HeaderValue(s *Span) string {
	if s == nil {
		return ""
	}
	id, span := s.Context()
	return id + ";" + strconv.FormatUint(span, 10)
}

// SetHeader writes the trace context of s onto an outgoing request. A nil
// span leaves the headers untouched (requests from untraced sessions carry
// no trace header at all).
func SetHeader(h http.Header, s *Span) {
	if s == nil {
		return
	}
	h.Set(Header, HeaderValue(s))
}

// ParseHeader parses an X-Sammy-Trace value into its trace id and parent
// span id. ok is false for an absent or malformed value.
func ParseHeader(v string) (traceID string, spanID uint64, ok bool) {
	i := strings.LastIndexByte(v, ';')
	if i <= 0 || i == len(v)-1 {
		return "", 0, false
	}
	span, err := strconv.ParseUint(v[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return v[:i], span, true
}

// ctxKey is the context key for span propagation.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s, for handing trace context down
// call chains that already take a context (the cdn client). A nil span
// returns ctx unchanged, so the untraced path allocates nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
