package trace

import (
	"io"
	"sync"
	"time"
)

// Flusher periodically drains a tracer's completed-record backlog to an
// io.Writer as JSONL. The server binaries use it to stream spans to a
// trace file without letting the in-memory backlog grow to the tracer's
// cap during long runs.
type Flusher struct {
	t     *Tracer
	w     io.Writer
	every time.Duration

	mu sync.Mutex
	// first write error, sticky; guarded by mu
	err error
	stop    chan struct{}
	done    chan struct{}
	stopped bool
}

// NewFlusher starts a goroutine draining t to w every interval (default
// 1s if interval <= 0). Stop it with Stop; a nil tracer yields a Flusher
// whose goroutine exits immediately on Stop and writes nothing.
func NewFlusher(t *Tracer, w io.Writer, interval time.Duration) *Flusher {
	if interval <= 0 {
		interval = time.Second
	}
	f := &Flusher{
		t:     t,
		w:     w,
		every: interval,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go f.run()
	return f
}

func (f *Flusher) run() {
	defer close(f.done)
	tick := time.NewTicker(f.every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			f.flush()
		case <-f.stop:
			return
		}
	}
}

func (f *Flusher) flush() {
	if err := f.t.Flush(f.w); err != nil {
		f.mu.Lock()
		if f.err == nil {
			f.err = err
		}
		f.mu.Unlock()
	}
}

// Stop halts the flush loop, performs a final drain, and returns the
// first write error seen (if any). Idempotent: later calls return the
// same error without flushing again.
func (f *Flusher) Stop() error {
	f.mu.Lock()
	already := f.stopped
	f.stopped = true
	f.mu.Unlock()
	if !already {
		close(f.stop)
		<-f.done
		f.flush()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
