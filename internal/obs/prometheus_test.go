package obs

import (
	"bufio"
	"math"
	"strconv"
	"strings"
	"testing"

	"net/http/httptest"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 4, 100} {
		h.Observe(v)
	}
	got := h.Buckets()
	want := []BucketCount{
		{UpperBound: 1, Count: 1},
		{UpperBound: 2, Count: 3},
		{UpperBound: 5, Count: 4},
		{UpperBound: math.Inf(1), Count: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[len(got)-1].Count != h.Count() {
		t.Error("+Inf bucket count != total count")
	}
	var nilH *Histogram
	if nilH.Buckets() != nil {
		t.Error("nil histogram Buckets != nil")
	}
}

func TestSummaryCarriesSumAndBuckets(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(3)
	h.Observe(4)
	s := h.Summary()
	if s.Sum != 7 {
		t.Errorf("Sum = %g, want 7", s.Sum)
	}
	if len(s.Buckets) != 2 || s.Buckets[0].Count != 2 {
		t.Errorf("Buckets = %+v", s.Buckets)
	}
	// The original digest fields keep working (backward compatibility).
	if s.Count != 2 || s.Mean != 3.5 || s.Min != 3 || s.Max != 4 {
		t.Errorf("digest fields changed: %+v", s)
	}
}

func TestExportBackwardCompatible(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1}).Observe(0.5)
	m, ok := r.Export()["h"].(map[string]any)
	if !ok {
		t.Fatal("histogram export not a map")
	}
	for _, key := range []string{"count", "mean", "min", "p50", "p95", "p99", "max", "sum", "buckets"} {
		if _, ok := m[key]; !ok {
			t.Errorf("export missing key %q", key)
		}
	}
	buckets := m["buckets"].([]map[string]any)
	if len(buckets) != 2 || buckets[1]["le"] != "+Inf" {
		t.Errorf("buckets = %+v", buckets)
	}
}

// parseProm reads the exposition text back into sample maps, checking
// TYPE lines as it goes.
func parseProm(t *testing.T, text string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = make(map[string]float64)
	types = make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:idx]] = v
	}
	return samples, types
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("cdn_requests_total").Add(17)
	r.Gauge("inflight").Set(3.5)
	h := r.Histogram("pace_mbps", []float64{1, 8, 64})
	for _, v := range []float64{0.5, 4, 4, 32, 500} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, sb.String())

	if types["cdn_requests_total"] != "counter" || samples["cdn_requests_total"] != 17 {
		t.Errorf("counter round-trip: type=%q value=%g", types["cdn_requests_total"], samples["cdn_requests_total"])
	}
	if types["inflight"] != "gauge" || samples["inflight"] != 3.5 {
		t.Errorf("gauge round-trip: type=%q value=%g", types["inflight"], samples["inflight"])
	}
	if types["pace_mbps"] != "histogram" {
		t.Errorf("histogram type = %q", types["pace_mbps"])
	}
	wantBuckets := map[string]float64{
		`pace_mbps_bucket{le="1"}`:    1,
		`pace_mbps_bucket{le="8"}`:    3,
		`pace_mbps_bucket{le="64"}`:   4,
		`pace_mbps_bucket{le="+Inf"}`: 5,
	}
	for k, want := range wantBuckets {
		if samples[k] != want {
			t.Errorf("%s = %g, want %g", k, samples[k], want)
		}
	}
	if samples["pace_mbps_count"] != 5 {
		t.Errorf("count = %g, want 5", samples["pace_mbps_count"])
	}
	if samples["pace_mbps_sum"] != 540.5 {
		t.Errorf("sum = %g, want 540.5", samples["pace_mbps_sum"])
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	rec := httptest.NewRecorder()
	PrometheusHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}

	// A nil registry serves an empty exposition rather than panicking.
	rec = httptest.NewRecorder()
	PrometheusHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Body.Len() != 0 {
		t.Errorf("nil registry body = %q", rec.Body.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"cdn_requests_total": "cdn_requests_total",
		"pace.rate-mbps":     "pace_rate_mbps",
		"9lives":             "_9lives",
		"":                   "_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
