package obs

import (
	"expvar"
	"sync"
)

// publishMu serializes Publish calls so concurrent publishers cannot race
// past the duplicate-name check into expvar.Publish's panic.
var publishMu sync.Mutex

// Publish exposes the registry's Export map as an expvar variable, making
// it visible at /debug/vars on any server that mounts expvar.Handler (or
// imports expvar with the default mux). Publishing is idempotent: expvar
// has no unpublish and panics on duplicate names, so a name already taken
// in the process-wide expvar namespace is left as-is (first publisher
// wins). Repeated calls from tests or server restart loops are safe.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Export() }))
}
