// Package obs is the repo's zero-dependency observability layer: atomic
// counters, gauges and fixed-bucket histograms collected in a Registry that
// snapshots to text and publishes through expvar, plus a ring-buffered
// structured event Recorder (package obs/events.go) for fine-grained
// tracing.
//
// The design goals, in order:
//
//  1. Free when disabled. Instrumented code holds a nil metrics struct by
//     default and pays exactly one pointer comparison per hot-path
//     operation. All obs types additionally tolerate nil receivers, so a
//     partially populated metrics struct never panics.
//  2. Allocation-light when enabled. Counter/Gauge updates are single
//     atomic operations; Histogram.Observe is a binary search plus three
//     atomics; Recorder.RecordAt writes into a preallocated ring.
//  3. Deterministic output. Snapshots list metrics in sorted name order so
//     tests and periodic log lines diff cleanly.
//
// Registries hand out metrics with get-or-create semantics, so several
// connections (or simulators) can share one set of aggregate counters:
//
//	reg := obs.NewRegistry()
//	drops := reg.Counter("sim_link_dropped_packets")
//	drops.Inc()
//	fmt.Print(reg.Snapshot())
//
// A process-wide default registry (nil until SetDefault) lets binaries turn
// on instrumentation everywhere without threading a registry through every
// constructor: sim.New and tcp.NewConn attach to obs.Default() when it is
// set at construction time.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count; 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value. The zero value is ready
// to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax stores v only if it exceeds the current value, for peak tracking.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reports the stored value; 0 for a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named collection of metrics with get-or-create semantics.
// All methods are safe for concurrent use; a nil *Registry hands out nil
// metrics, which are themselves safe no-ops.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]any // *Counter | *Gauge | *Histogram
	recorder atomic.Pointer[Recorder]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it if needed.
// It panics if name is already registered as a different metric type.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not Counter", name, m))
		}
		return c
	}
	c := &Counter{}
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// It panics if name is already registered as a different metric type.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not Gauge", name, m))
		}
		return g
	}
	g := &Gauge{}
	r.metrics[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed (an existing histogram keeps its
// original buckets). It panics if name is registered as a different type.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not Histogram", name, m))
		}
		return h
	}
	h := NewHistogram(bounds)
	r.metrics[name] = h
	return h
}

// SetRecorder installs the registry's event recorder (may be nil to remove).
func (r *Registry) SetRecorder(rec *Recorder) {
	if r == nil {
		return
	}
	r.recorder.Store(rec)
}

// Recorder reports the installed event recorder, nil if none (or if the
// registry itself is nil). The returned recorder is safe to record into
// even when nil.
func (r *Registry) Recorder() *Recorder {
	if r == nil {
		return nil
	}
	return r.recorder.Load()
}

// Each calls fn for every registered metric in sorted name order.
func (r *Registry) Each(fn func(name string, metric any)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		fn(n, metrics[i])
	}
}

// Snapshot renders every metric as one text line in sorted name order:
//
//	cdn_requests_total counter 17
//	tcp_cwnd_segments gauge 42
//	tcp_srtt_ms histogram count=120 mean=5.23 min=1.20 p50=5.10 p95=8.04 p99=9.51 max=12.00
func (r *Registry) Snapshot() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	r.Each(func(name string, metric any) {
		switch m := metric.(type) {
		case *Counter:
			fmt.Fprintf(&sb, "%s counter %d\n", name, m.Value())
		case *Gauge:
			fmt.Fprintf(&sb, "%s gauge %g\n", name, m.Value())
		case *Histogram:
			s := m.Summary()
			fmt.Fprintf(&sb, "%s histogram count=%d mean=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
				name, s.Count, s.Mean, s.Min, s.P50, s.P95, s.P99, s.Max)
		}
	})
	return sb.String()
}

// Export renders the registry as a JSON-encodable map: counters as int64,
// gauges as float64, histograms as {count, sum, mean, min, p50, p95, p99,
// max, buckets}. This is the shape published through expvar; the sum and
// cumulative buckets keys are additions consumers of the original quantile
// keys can ignore. Bucket bounds are rendered as strings ("+Inf" for the
// overflow bucket) because JSON has no infinity.
func (r *Registry) Export() map[string]any {
	out := make(map[string]any)
	r.Each(func(name string, metric any) {
		switch m := metric.(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *Histogram:
			s := m.Summary()
			buckets := make([]map[string]any, len(s.Buckets))
			for i, b := range s.Buckets {
				buckets[i] = map[string]any{"le": formatLe(b.UpperBound), "count": b.Count}
			}
			out[name] = map[string]any{
				"count": s.Count, "sum": s.Sum, "mean": s.Mean, "min": s.Min,
				"p50": s.P50, "p95": s.P95, "p99": s.P99, "max": s.Max,
				"buckets": buckets,
			}
		}
	})
	return out
}

// formatLe renders a bucket upper bound as a Prometheus le label value.
func formatLe(bound float64) string {
	if math.IsInf(bound, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(bound, 'g', -1, 64)
}

// defaultRegistry is the process-wide registry, nil until SetDefault.
var defaultRegistry atomic.Pointer[Registry]

// Default reports the process-wide registry, nil when instrumentation is
// off (the usual state: libraries then skip all metric work).
func Default() *Registry { return defaultRegistry.Load() }

// SetDefault installs r as the process-wide registry. Components attach to
// it at construction time, so set it before building simulators or
// connections. Pass nil to turn default instrumentation back off.
func SetDefault(r *Registry) { defaultRegistry.Store(r) }
