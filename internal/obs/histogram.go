package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with lock-free observation and
// quantile estimation by linear interpolation inside buckets. Accuracy is
// bounded by bucket width, which is why the constructors below favour many
// narrow buckets; the exact min and max are tracked separately so the
// distribution tails do not smear to the bucket bounds.
//
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64      // ascending upper bounds; values > bounds[last] overflow
	counts []atomic.Int64 // len(bounds)+1, last is the overflow bucket

	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits, +Inf until the first observation
	maxBits atomic.Uint64 // float64 bits, -Inf until the first observation
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. An empty bounds slice yields a single overflow bucket (mean,
// min and max stay exact; quantiles degrade to the min–max span).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + width*float64(i)
	}
	return b
}

// ExpBuckets returns n ascending bounds start, start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs start > 0 and factor > 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count reports the number of observations; 0 for a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean reports the arithmetic mean, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min reports the smallest observation, 0 when empty.
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max reports the largest observation, 0 when empty.
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// within the containing bucket, clamped to the observed min and max. It
// returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	// Snapshot the bucket counts; concurrent Observes may skew a live read
	// slightly but never corrupt it.
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	min, max := h.Min(), h.Max()
	rank := q * float64(total-1) // 0-based fractional rank
	var below float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if rank < below+fc {
			lo := min
			if i > 0 {
				lo = math.Max(min, h.bounds[i-1])
			}
			hi := max
			if i < len(h.bounds) {
				hi = math.Min(max, h.bounds[i])
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if fc > 1 {
				frac = (rank - below) / (fc - 1)
			}
			return lo + (hi-lo)*frac
		}
		below += fc
	}
	return max
}

// BucketCount is one cumulative histogram bucket: the number of
// observations at or below UpperBound. The last bucket's bound is +Inf and
// its count equals the total observation count, Prometheus-style.
type BucketCount struct {
	UpperBound float64
	Count      int64
}

// Buckets reports the cumulative bucket counts, one per configured bound
// plus the +Inf overflow bucket. Nil for a nil histogram.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	out := make([]BucketCount, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out[i] = BucketCount{UpperBound: bound, Count: cum}
	}
	return out
}

// HistogramSummary is a point-in-time digest of a histogram. Alongside the
// original quantile fields it carries the exact Sum and the cumulative
// bucket layout, so exporters that need the raw distribution (Prometheus
// text exposition) do not have to reconstruct it from quantiles.
type HistogramSummary struct {
	Count          int64
	Sum            float64
	Mean, Min, Max float64
	P50, P95, P99  float64
	Buckets        []BucketCount
}

// Summary reports the histogram's digest in one consistent-enough read.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	return HistogramSummary{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Mean:    h.Mean(),
		Min:     h.Min(),
		Max:     h.Max(),
		P50:     h.Quantile(0.50),
		P95:     h.Quantile(0.95),
		P99:     h.Quantile(0.99),
		Buckets: h.Buckets(),
	}
}
