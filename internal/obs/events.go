package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one structured trace record. Time is an offset on whatever clock
// the producer uses — simulated time inside package sim, wall-clock offset
// from process start in the real-HTTP path — so events from one producer
// are totally ordered and plot directly against the CSV traces.
//
// The fixed shape (type + subject + two numeric values) keeps recording
// allocation-free; producers document their field meanings per event type
// (see DESIGN.md "Observability").
type Event struct {
	Time time.Duration // producer clock offset
	Type string        // event kind, e.g. "tcp_retransmit", "link_drop"
	Subj string        // optional subject, e.g. a flow or link name
	V    float64       // primary value (bytes, ms, rate — per Type)
	Aux  float64       // secondary value, 0 when unused
}

// Recorder is a fixed-capacity ring buffer of Events. When full, new events
// overwrite the oldest — always-on tracing keeps the recent past without
// unbounded growth. Safe for concurrent use; a nil *Recorder is a no-op.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever recorded
	now   func() time.Duration
}

// NewRecorder returns a recorder holding the most recent capacity events.
// Events are stamped via RecordAt by producers with their own clock (the
// simulator), or via Record using the wall clock measured from NewRecorder.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1
	}
	start := time.Now()
	return &Recorder{
		ring: make([]Event, capacity),
		now:  func() time.Duration { return time.Since(start) },
	}
}

// RecordAt appends an event stamped with the caller's clock.
func (r *Recorder) RecordAt(t time.Duration, typ, subj string, v, aux float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.total%uint64(len(r.ring))] = Event{Time: t, Type: typ, Subj: subj, V: v, Aux: aux}
	r.total++
	r.mu.Unlock()
}

// Record appends an event stamped with the recorder's wall clock.
func (r *Recorder) Record(typ, subj string, v, aux float64) {
	if r == nil {
		return
	}
	r.RecordAt(r.now(), typ, subj, v, aux)
}

// Total reports how many events were ever recorded (including overwritten
// ones); 0 for a nil recorder.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retained()
}

func (r *Recorder) retained() int {
	if r.total < uint64(len(r.ring)) {
		return int(r.total)
	}
	return len(r.ring)
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.retained()
	out := make([]Event, 0, n)
	start := r.total - uint64(n)
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+uint64(i))%uint64(len(r.ring))])
	}
	return out
}

// jsonEvent is the JSONL wire form; Time becomes seconds on the producer
// clock so exported events line up with the CSV time axes.
type jsonEvent struct {
	T    float64 `json:"t"`
	Type string  `json:"type"`
	Subj string  `json:"subj,omitempty"`
	V    float64 `json:"v"`
	Aux  float64 `json:"aux,omitempty"`
}

// WriteJSONL writes the retained events as one JSON object per line,
// oldest first.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, ev := range r.Events() {
		line, err := json.Marshal(jsonEvent{
			T: ev.Time.Seconds(), Type: ev.Type, Subj: ev.Subj, V: ev.V, Aux: ev.Aux,
		})
		if err != nil {
			return fmt.Errorf("obs: marshal event: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("obs: write event: %w", err)
		}
	}
	return nil
}
