package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), so the paced edge server's /metrics endpoint can be
// scraped by any Prometheus-compatible collector without adding a client
// library dependency. Counters and gauges map directly; histograms emit
// the standard cumulative _bucket/_sum/_count triple from the exact
// per-bucket counts (not the interpolated quantiles).

// WritePrometheus writes every metric in r to w in sorted name order.
// A nil registry writes nothing.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	var werr error
	write := func(s string) {
		if werr == nil {
			_, werr = bw.WriteString(s)
		}
	}
	r.Each(func(name string, metric any) {
		n := sanitizeMetricName(name)
		switch m := metric.(type) {
		case *Counter:
			write("# TYPE " + n + " counter\n")
			write(n + " " + strconv.FormatInt(m.Value(), 10) + "\n")
		case *Gauge:
			write("# TYPE " + n + " gauge\n")
			write(n + " " + formatPromFloat(m.Value()) + "\n")
		case *Histogram:
			write("# TYPE " + n + " histogram\n")
			for _, b := range m.Buckets() {
				write(n + `_bucket{le="` + formatLe(b.UpperBound) + `"} ` +
					strconv.FormatInt(b.Count, 10) + "\n")
			}
			write(n + "_sum " + formatPromFloat(m.Sum()) + "\n")
			write(n + "_count " + strconv.FormatInt(m.Count(), 10) + "\n")
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// PrometheusHandler serves r at a /metrics-style endpoint. The registry
// may be nil (the endpoint then serves an empty exposition).
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r)
	})
}

// formatPromFloat renders a float sample value.
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a registry name onto the Prometheus metric name
// alphabet [a-zA-Z0-9_:], replacing anything else with '_' (and prefixing
// '_' if the name would start with a digit). Registry names are already
// snake_case, so this is usually the identity.
func sanitizeMetricName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		if !isPromNameByte(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	b := make([]byte, 0, len(name)+1)
	if name == "" {
		return "_"
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if isPromNameByte(c, len(b) == 0) {
			b = append(b, c)
		} else if c >= '0' && c <= '9' && len(b) == 0 {
			b = append(b, '_', c)
		} else {
			b = append(b, '_')
		}
	}
	return string(b)
}

// isPromNameByte reports whether c is legal in a Prometheus metric name
// (first bytes must not be digits).
func isPromNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
