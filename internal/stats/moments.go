package stats

import "math"

// Moments is a mergeable streaming summary of a sample: count, mean and the
// sum of squared deviations (M2), maintained with Welford's algorithm. Two
// Moments built over disjoint sample halves combine exactly (Chan et al.'s
// parallel update), which is what lets sharded population runs stream
// sessions into per-shard summaries and still produce Welch confidence
// intervals over the full population after a merge.
//
// Fields are exported so checkpoints can serialize the summary; treat them
// as read-only outside Add/Merge.
type Moments struct {
	Count float64 `json:"count"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"`
}

// Add folds one sample into the summary. NaN samples are ignored, matching
// how the slice-based helpers treat empty input: they poison every derived
// statistic otherwise.
func (m *Moments) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	m.Count++
	d := x - m.Mean
	m.Mean += d / m.Count
	m.M2 += d * (x - m.Mean)
}

// Merge folds the summary o into m. The combination is exact (not an
// approximation): merging per-shard Moments in a fixed order yields the same
// floating-point result on every run, which the checkpoint/resume
// byte-identity guarantee relies on.
func (m *Moments) Merge(o Moments) {
	if o.Count == 0 {
		return
	}
	if m.Count == 0 {
		*m = o
		return
	}
	n := m.Count + o.Count
	d := o.Mean - m.Mean
	m.Mean += d * o.Count / n
	m.M2 += o.M2 + d*d*m.Count*o.Count/n
	m.Count = n
}

// Variance returns the unbiased sample variance, or NaN with fewer than two
// samples, matching Variance on a raw slice.
func (m Moments) Variance() float64 {
	if m.Count < 2 {
		return math.NaN()
	}
	return m.M2 / (m.Count - 1)
}

// StdDev returns the sample standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// WelchMeanDiffFromMoments is WelchMeanDiffCI computed from streaming
// summaries instead of raw slices: the 95% CI for the difference in means
// (treatment − control) with the normal approximation for the critical
// value. It returns NaN bounds when either side has fewer than two samples.
func WelchMeanDiffFromMoments(treatment, control Moments) CI {
	if treatment.Count < 2 || control.Count < 2 {
		return CI{Point: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	}
	se := math.Sqrt(treatment.Variance()/treatment.Count + control.Variance()/control.Count)
	const z = 1.959964 // 97.5th percentile of the standard normal
	diff := treatment.Mean - control.Mean
	return CI{Point: diff, Lo: diff - z*se, Hi: diff + z*se}
}

// WelchPercentChangeFromMoments expresses the Welch interval as a percent
// change of the control mean, the paper's table format. It returns NaN when
// the control mean is zero.
func WelchPercentChangeFromMoments(treatment, control Moments) CI {
	ci := WelchMeanDiffFromMoments(treatment, control)
	base := control.Mean
	if base == 0 || math.IsNaN(base) || control.Count == 0 {
		return CI{Point: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	}
	scale := 100 / base
	lo, hi := ci.Lo*scale, ci.Hi*scale
	if lo > hi {
		lo, hi = hi, lo
	}
	return CI{Point: ci.Point * scale, Lo: lo, Hi: hi}
}
