package stats

import (
	"math"
)

// WelchMeanDiffCI computes a 95% confidence interval for the difference in
// means (treatment − control) using Welch's unequal-variance t-interval
// with the normal approximation for the critical value (samples in these
// experiments are large enough that t ≈ z). It complements the bootstrap
// percent-change intervals for absolute-difference readouts.
func WelchMeanDiffCI(treatment, control []float64) CI {
	if len(treatment) < 2 || len(control) < 2 {
		return CI{Point: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	}
	mt, mc := Mean(treatment), Mean(control)
	vt, vc := Variance(treatment), Variance(control)
	se := math.Sqrt(vt/float64(len(treatment)) + vc/float64(len(control)))
	const z = 1.959964 // 97.5th percentile of the standard normal
	diff := mt - mc
	return CI{Point: diff, Lo: diff - z*se, Hi: diff + z*se}
}

// WelchPercentChangeCI expresses the Welch interval as a percent change of
// the control mean, the format the paper's tables use. It returns NaN when
// the control mean is zero.
func WelchPercentChangeCI(treatment, control []float64) CI {
	ci := WelchMeanDiffCI(treatment, control)
	base := Mean(control)
	if base == 0 || math.IsNaN(base) {
		return CI{Point: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	}
	scale := 100 / base
	lo, hi := ci.Lo*scale, ci.Hi*scale
	if lo > hi {
		lo, hi = hi, lo
	}
	return CI{Point: ci.Point * scale, Lo: lo, Hi: hi}
}
