package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelchMeanDiffCIDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	control := make([]float64, 400)
	treatment := make([]float64, 300) // unequal sizes and variances
	for i := range control {
		control[i] = 100 + 5*rng.NormFloat64()
	}
	for i := range treatment {
		treatment[i] = 90 + 15*rng.NormFloat64()
	}
	ci := WelchMeanDiffCI(treatment, control)
	if !ci.Significant() {
		t.Fatalf("10-point shift not detected: %v", ci)
	}
	if ci.Point > -8 || ci.Point < -12 {
		t.Errorf("point = %v, want ≈ -10", ci.Point)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Errorf("interval %v does not bracket the point", ci)
	}
}

func TestWelchMeanDiffCINullCoversZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = 50 + 10*rng.NormFloat64()
		b[i] = 50 + 10*rng.NormFloat64()
	}
	if ci := WelchMeanDiffCI(a, b); ci.Significant() {
		t.Errorf("identical distributions reported significant: %v", ci)
	}
}

func TestWelchSmallSamples(t *testing.T) {
	if ci := WelchMeanDiffCI([]float64{1}, []float64{2, 3}); !math.IsNaN(ci.Point) {
		t.Errorf("single-sample input should yield NaN, got %v", ci)
	}
}

func TestWelchPercentChangeCI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	control := make([]float64, 400)
	treatment := make([]float64, 400)
	for i := range control {
		control[i] = 200 + 10*rng.NormFloat64()
		treatment[i] = 100 + 10*rng.NormFloat64() // -50%
	}
	ci := WelchPercentChangeCI(treatment, control)
	if math.Abs(ci.Point+50) > 2 {
		t.Errorf("percent change = %v, want ≈ -50", ci.Point)
	}
	if !ci.Significant() {
		t.Errorf("large change not significant: %v", ci)
	}
	// Zero control mean yields NaN.
	zero := []float64{0, 0, 0}
	if ci := WelchPercentChangeCI(treatment, zero); !math.IsNaN(ci.Point) {
		t.Errorf("zero base should yield NaN, got %v", ci)
	}
}

func TestWelchAgreesWithBootstrapOnMeans(t *testing.T) {
	// Both estimators should localize the same mean shift.
	rng := rand.New(rand.NewSource(4))
	control := make([]float64, 300)
	treatment := make([]float64, 300)
	for i := range control {
		control[i] = 80 + 8*rng.NormFloat64()
		treatment[i] = 60 + 8*rng.NormFloat64()
	}
	w := WelchPercentChangeCI(treatment, control)
	b := MeanPercentChange(treatment, control, 500, rng)
	if math.Abs(w.Point-b.Point) > 1 {
		t.Errorf("Welch %v vs bootstrap %v disagree", w.Point, b.Point)
	}
	if w.Significant() != b.Significant() {
		t.Errorf("significance disagreement: Welch %v, bootstrap %v", w, b)
	}
}
