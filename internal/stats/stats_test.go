package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if got := Mean(xs); got != 22 {
		t.Errorf("Mean = %v, want 22", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("empty inputs should yield NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {-1, 10}, {2, 40},
		{1.0 / 3.0, 20},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	// For any sample, Quantile must be monotone in q and bounded by min/max.
	f := func(raw []float64, qa, qb float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := math.Mod(math.Abs(qa), 1)
		q2 := math.Mod(math.Abs(qb), 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return v1 <= v2 && v1 >= sorted[0] && v2 <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4.571428571428571) > 1e-9 {
		t.Errorf("Variance = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestBootstrapPercentChangeDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	control := make([]float64, 500)
	treatment := make([]float64, 500)
	for i := range control {
		control[i] = 100 + rng.NormFloat64()*5
		treatment[i] = 60 + rng.NormFloat64()*5 // a 40% reduction
	}
	ci := MedianPercentChange(treatment, control, 500, rng)
	if !ci.Significant() {
		t.Fatalf("expected significant change, got %v", ci)
	}
	if ci.Point > -35 || ci.Point < -45 {
		t.Errorf("point estimate %v, want ≈ -40", ci.Point)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Errorf("CI %v does not bracket the point estimate", ci)
	}
}

func TestBootstrapPercentChangeNullCoversZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	control := make([]float64, 400)
	treatment := make([]float64, 400)
	for i := range control {
		control[i] = 50 + rng.NormFloat64()*10
		treatment[i] = 50 + rng.NormFloat64()*10
	}
	ci := MedianPercentChange(treatment, control, 500, rng)
	if ci.Significant() {
		t.Errorf("identical distributions reported significant: %v", ci)
	}
}

func TestBootstrapEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ci := MedianPercentChange(nil, []float64{1}, 10, rng)
	if !math.IsNaN(ci.Point) {
		t.Errorf("expected NaN point for empty treatment, got %v", ci.Point)
	}
}

func TestCISignificant(t *testing.T) {
	tests := []struct {
		ci   CI
		want bool
	}{
		{CI{Point: -5, Lo: -7, Hi: -3}, true},
		{CI{Point: 5, Lo: 3, Hi: 7}, true},
		{CI{Point: 1, Lo: -1, Hi: 3}, false},
		{CI{Point: 0, Lo: 0, Hi: 0}, false},
	}
	for _, tt := range tests {
		if got := tt.ci.Significant(); got != tt.want {
			t.Errorf("%v.Significant() = %v, want %v", tt.ci, got, tt.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 2.5, 2.6, -10, 99}
	edges, counts := Histogram(xs, 0, 3, 3)
	if len(edges) != 4 || len(counts) != 3 {
		t.Fatalf("shape: edges=%d counts=%d", len(edges), len(counts))
	}
	// -10 clamps into bin 0, 99 clamps into bin 2.
	want := []int{2, 1, 3}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
	if _, c := Histogram(xs, 3, 0, 3); c != nil {
		t.Error("inverted range should return nil")
	}
}

func TestHistogramCountsSumProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		_, counts := Histogram(xs, -100, 100, 7)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
