// Package stats provides the descriptive statistics used by the Sammy
// evaluation harness: quantiles, medians, means, bootstrap confidence
// intervals and percent-change summaries of treatment-vs-control metric
// samples, in the style of the paper's A/B test tables.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or NaN when fewer
// than two samples are available.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns NaN for empty input
// and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted is Quantile on an already-sorted slice.
func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point float64 // point estimate
	Lo    float64 // lower bound
	Hi    float64 // upper bound
}

// Significant reports whether the interval excludes zero, i.e. whether the
// estimated change is statistically distinguishable from no change.
func (c CI) Significant() bool { return c.Lo > 0 || c.Hi < 0 }

// String formats the interval like the paper's tables: "-61.0 [-61.8, -60.2]".
func (c CI) String() string {
	return fmt.Sprintf("%.2f [%.2f, %.2f]", c.Point, c.Lo, c.Hi)
}

// statFunc computes a scalar summary of a sample.
type statFunc func([]float64) float64

// BootstrapPercentChange estimates the percent change of a summary statistic
// (e.g. the median) between a treatment and a control sample, with a
// bootstrap percentile 95% confidence interval. This mirrors how the paper
// reports "% Chg." with a 95% CI for each A/B metric.
//
// iters bootstrap resamples are drawn using rng; 1000 is plenty for table
// reproduction. The point estimate uses the full samples.
func BootstrapPercentChange(treatment, control []float64, stat statFunc, iters int, rng *rand.Rand) CI {
	if len(treatment) == 0 || len(control) == 0 {
		return CI{Point: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	}
	base := stat(control)
	point := percentChange(stat(treatment), base)

	deltas := make([]float64, 0, iters)
	tRes := make([]float64, len(treatment))
	cRes := make([]float64, len(control))
	for i := 0; i < iters; i++ {
		resample(treatment, tRes, rng)
		resample(control, cRes, rng)
		b := stat(cRes)
		deltas = append(deltas, percentChange(stat(tRes), b))
	}
	sort.Float64s(deltas)
	return CI{
		Point: point,
		Lo:    quantileSorted(deltas, 0.025),
		Hi:    quantileSorted(deltas, 0.975),
	}
}

// MedianPercentChange is BootstrapPercentChange with the median statistic,
// the paper's summary for throughput, retransmits, RTT and VMAF.
func MedianPercentChange(treatment, control []float64, iters int, rng *rand.Rand) CI {
	return BootstrapPercentChange(treatment, control, Median, iters, rng)
}

// MeanPercentChange is BootstrapPercentChange with the mean statistic, used
// for sparse-event metrics like rebuffer rates where the median is zero.
func MeanPercentChange(treatment, control []float64, iters int, rng *rand.Rand) CI {
	return BootstrapPercentChange(treatment, control, Mean, iters, rng)
}

// percentChange returns 100·(x−base)/base, or NaN when base is zero.
func percentChange(x, base float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return 100 * (x - base) / base
}

// resample fills dst with len(dst) draws (with replacement) from src.
func resample(src, dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = src[rng.Intn(len(src))]
	}
}

// Histogram counts xs into nbins equal-width bins across [min, max]. Values
// outside the range are clamped into the first/last bin. It reports the bin
// edges (nbins+1 values) and counts (nbins values).
func Histogram(xs []float64, min, max float64, nbins int) (edges []float64, counts []int) {
	if nbins <= 0 || max <= min {
		return nil, nil
	}
	edges = make([]float64, nbins+1)
	width := (max - min) / float64(nbins)
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	counts = make([]int, nbins)
	for _, x := range xs {
		b := int((x - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return edges, counts
}
