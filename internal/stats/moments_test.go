package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMomentsMatchSliceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var m Moments
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		m.Add(xs[i])
	}
	if got, want := m.Mean, Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := m.Variance(), Variance(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if m.Count != 500 {
		t.Errorf("Count = %v", m.Count)
	}
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 301)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
	}
	// Sequential fold over the whole sample.
	var whole Moments
	for _, x := range xs {
		whole.Add(x)
	}
	// Three disjoint chunks merged in order.
	var a, b, c Moments
	for _, x := range xs[:100] {
		a.Add(x)
	}
	for _, x := range xs[100:207] {
		b.Add(x)
	}
	for _, x := range xs[207:] {
		c.Add(x)
	}
	var merged Moments
	merged.Merge(a)
	merged.Merge(b)
	merged.Merge(c)
	if merged.Count != whole.Count {
		t.Fatalf("Count = %v, want %v", merged.Count, whole.Count)
	}
	if math.Abs(merged.Mean-whole.Mean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", merged.Mean, whole.Mean)
	}
	if math.Abs(merged.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("Variance = %v, want %v", merged.Variance(), whole.Variance())
	}
}

func TestMomentsMergeDeterministic(t *testing.T) {
	// Same chunks, same merge order → bit-identical result. This is the
	// property the checkpoint/resume byte-identity guarantee rests on.
	build := func() Moments {
		rng := rand.New(rand.NewSource(3))
		parts := make([]Moments, 4)
		for i := range parts {
			for j := 0; j < 57; j++ {
				parts[i].Add(rng.NormFloat64())
			}
		}
		var m Moments
		for _, p := range parts {
			m.Merge(p)
		}
		return m
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("merge not bit-deterministic: %+v vs %+v", a, b)
	}
}

func TestMomentsIgnoresNaN(t *testing.T) {
	var m Moments
	m.Add(1)
	m.Add(math.NaN())
	m.Add(3)
	if m.Count != 2 || m.Mean != 2 {
		t.Errorf("NaN not ignored: %+v", m)
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	b.Add(5)
	b.Add(7)
	a.Merge(Moments{})
	if a.Count != 0 {
		t.Errorf("empty merge changed empty moments: %+v", a)
	}
	a.Merge(b)
	if a != b {
		t.Errorf("merge into empty = %+v, want %+v", a, b)
	}
	b.Merge(Moments{})
	if a != b {
		t.Errorf("merging empty changed moments: %+v", b)
	}
}

func TestWelchFromMomentsMatchesSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := make([]float64, 120)
	ct := make([]float64, 140)
	var mt, mc Moments
	for i := range tr {
		tr[i] = rng.NormFloat64()*2 + 10
		mt.Add(tr[i])
	}
	for i := range ct {
		ct[i] = rng.NormFloat64()*2 + 11
		mc.Add(ct[i])
	}
	want := WelchMeanDiffCI(tr, ct)
	got := WelchMeanDiffFromMoments(mt, mc)
	if math.Abs(got.Point-want.Point) > 1e-9 || math.Abs(got.Lo-want.Lo) > 1e-9 || math.Abs(got.Hi-want.Hi) > 1e-9 {
		t.Errorf("WelchMeanDiffFromMoments = %+v, want %+v", got, want)
	}
	wantPct := WelchPercentChangeCI(tr, ct)
	gotPct := WelchPercentChangeFromMoments(mt, mc)
	if math.Abs(gotPct.Point-wantPct.Point) > 1e-9 || math.Abs(gotPct.Lo-wantPct.Lo) > 1e-9 || math.Abs(gotPct.Hi-wantPct.Hi) > 1e-9 {
		t.Errorf("WelchPercentChangeFromMoments = %+v, want %+v", gotPct, wantPct)
	}
}

func TestWelchFromMomentsDegenerate(t *testing.T) {
	var one Moments
	one.Add(1)
	if ci := WelchMeanDiffFromMoments(one, one); !math.IsNaN(ci.Point) {
		t.Errorf("want NaN for n<2, got %+v", ci)
	}
	var zeroMean Moments
	zeroMean.Add(-1)
	zeroMean.Add(1)
	var tr Moments
	tr.Add(2)
	tr.Add(4)
	if ci := WelchPercentChangeFromMoments(tr, zeroMean); !math.IsNaN(ci.Point) {
		t.Errorf("want NaN for zero control mean, got %+v", ci)
	}
}
