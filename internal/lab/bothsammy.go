package lab

import (
	"time"

	"repro/internal/core"
	"repro/internal/tdigest"
)

// BothSammyResult compares link-level congestion when two video sessions
// share the bottleneck, across the three pairings §6 hints at: both on the
// production algorithm, Sammy next to a production neighbor (the Fig 8d
// condition), and both on Sammy ("it is possible that if the neighboring
// traffic instead used Sammy, the congestion reduction could be even
// larger").
type BothSammyResult struct {
	Pairing   string
	MedianRTT float64 // ms, across both sessions' samples
	Drops     int64   // bottleneck queue drops
	PeakQueue int64   // bytes
}

// BothSammy runs the three pairings and reports link congestion for each.
func BothSammy(chunks int, seed int64) []BothSammyResult {
	pairings := []struct {
		name   string
		first  func() *core.Controller
		second func() *core.Controller
	}{
		{"control+control", ControlController, ControlController},
		{"sammy+control", SammyController, ControlController},
		{"sammy+sammy", SammyController, SammyController},
	}
	out := make([]BothSammyResult, 0, len(pairings))
	for _, pairing := range pairings {
		topo := NewTopology(Config{})
		p1, c1 := topo.VideoSession(1, pairing.first(), chunks, seed, nil)
		p2, c2 := topo.VideoSession(2, pairing.second(), chunks, seed+1, nil)
		p1.Start()
		topo.S.At(4*time.Second, p2.Start)
		topo.S.RunUntil(time.Duration(chunks) * 12 * time.Second)

		merged := tdigest.New(100)
		merged.Merge(c1.RTT)
		merged.Merge(c2.RTT)
		out = append(out, BothSammyResult{
			Pairing:   pairing.name,
			MedianRTT: merged.Quantile(0.5),
			Drops:     topo.Fwd.Stats.Dropped,
			PeakQueue: int64(topo.Fwd.Stats.PeakQueue),
		})
	}
	return out
}
