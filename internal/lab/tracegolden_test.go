package lab

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"regexp"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netmodel"
	otrace "repro/internal/obs/trace"
	"repro/internal/player"
	"repro/internal/units"
	"repro/internal/video"
)

// goldenNetmodelTraceHash is the FNV-1a hash of the fixed-seed netmodel
// session trace produced below. Tracing must be an observer: span streams
// on fixed seeds are part of the deterministic surface (DESIGN.md §12), so
// any change to span emission order, naming, attributes or sim-clock
// timestamps shows up here. If you change the span taxonomy on purpose,
// rerun with -run TestNetmodelTraceGolden -v and update the constant.
const goldenNetmodelTraceHash = "3f578efc04d64c41"

// netmodelTraceJSONL runs one fixed-seed analytic-fidelity session with an
// explicitly injected tracer and returns the JSONL export.
func netmodelTraceJSONL(t *testing.T, tr *otrace.Tracer) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	title := video.NewTitle(video.DefaultLadder(), 4*time.Second, 30, rng)
	path := netmodel.Path{
		Capacity: 20 * units.Mbps,
		BaseRTT:  30 * time.Millisecond,
	}
	player.Run(player.Config{
		Controller: SammyController(),
		Title:      title,
		History:    &core.History{},
		Trace:      tr.Session("golden/netmodel"),
	}, path, rng, nil)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d spans during a golden run", tr.Dropped())
	}
	return buf.Bytes()
}

// TestNetmodelTraceGolden locks byte-identical traces on the analytic
// fidelity: two same-seed runs export the same JSONL, and the stream
// matches the pinned golden hash.
func TestNetmodelTraceGolden(t *testing.T) {
	a := netmodelTraceJSONL(t, otrace.New())
	b := netmodelTraceJSONL(t, otrace.New())
	if !bytes.Equal(a, b) {
		t.Fatal("two same-seed netmodel runs exported different traces")
	}
	if len(a) == 0 || !bytes.Contains(a, []byte("netmodel.download")) {
		t.Fatalf("trace missing expected spans:\n%.500s", a)
	}
	h := fnv.New64a()
	h.Write(a)
	if got := fmt.Sprintf("%016x", h.Sum64()); got != goldenNetmodelTraceHash {
		t.Errorf("netmodel trace hash = %s, want %s\n"+
			"(fixed-seed span stream changed: only acceptable for intentional "+
			"changes to the span taxonomy — update the constant if so)", got, goldenNetmodelTraceHash)
	}
}

// runNumber rewrites the process-global topology counter out of trace ids:
// two in-process runs of the same experiment land on different run numbers
// by design (they are distinct topologies), but are otherwise identical.
var runNumber = regexp.MustCompile(`run[0-9]+/`)

// simTraceJSONL runs one fixed-seed packet-level single-flow experiment
// with the process tracer installed (the lab wires trace ids only through
// trace.Default) and returns the normalized JSONL export.
func simTraceJSONL(t *testing.T) []byte {
	t.Helper()
	tr := otrace.New()
	old := otrace.Default()
	otrace.SetDefault(tr)
	defer otrace.SetDefault(old)
	SingleFlow(SammyController(), 10, 3)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d spans during a golden run", tr.Dropped())
	}
	return runNumber.ReplaceAll(buf.Bytes(), []byte("runN/"))
}

// TestSimTraceDeterminism locks byte-identical traces on the packet-level
// fidelity: two same-seed SingleFlow runs export the same span stream
// (modulo the topology run number in the trace id).
func TestSimTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("lab experiment")
	}
	a := simTraceJSONL(t)
	b := simTraceJSONL(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two same-seed sim runs exported different traces")
	}
	for _, kind := range []string{"player.session", "player.chunk", "tcp.fetch", "abr.decide"} {
		if !bytes.Contains(a, []byte(kind)) {
			t.Errorf("sim trace missing %s spans", kind)
		}
	}
}
