package lab

import (
	"testing"
	"time"

	"repro/internal/fault"
)

func TestSingleFlowOnFaultyBottleneck(t *testing.T) {
	cfg := Config{
		Faults: &fault.Profile{
			Loss: fault.GEConfig{PGoodToBad: 0.005, PBadToGood: 0.2, LossBad: 0.3},
			Timeline: fault.MustTimeline(
				fault.Phase{Start: 20 * time.Second, Duration: 2 * time.Second, Multiplier: 0},
			),
		},
		FaultSeed: 7,
	}
	res := SingleFlowOn(cfg, SammyController(), 20, 1)
	if res.QoE.PlayedTime <= 0 {
		t.Fatal("session made no progress on the faulty link")
	}
	if res.BurstDrops == 0 {
		t.Error("burst-loss chain never dropped a packet")
	}
	if res.BlackoutDrops == 0 {
		t.Error("blackout phase never dropped a packet")
	}
	if res.Retransmit <= 0 {
		t.Error("injected drops should force retransmissions")
	}

	// Determinism: identical config and seeds reproduce identical drop and
	// QoE numbers.
	again := SingleFlowOn(cfg, SammyController(), 20, 1)
	if again.BurstDrops != res.BurstDrops || again.BlackoutDrops != res.BlackoutDrops {
		t.Errorf("drops not reproducible: %d/%d vs %d/%d",
			again.BurstDrops, again.BlackoutDrops, res.BurstDrops, res.BlackoutDrops)
	}
	if again.QoE != res.QoE {
		t.Errorf("QoE not reproducible under fixed seeds")
	}

	// A clean run on the same seeds must not report fault drops.
	clean := SingleFlow(SammyController(), 20, 1)
	if clean.BurstDrops != 0 || clean.BlackoutDrops != 0 {
		t.Errorf("clean topology reported fault drops: %d/%d", clean.BurstDrops, clean.BlackoutDrops)
	}
}
