package lab

import (
	"testing"
	"time"
)

func TestSingleFlowFig7Shape(t *testing.T) {
	// Fig 7: control saturates the 40 Mbps link with inflated RTTs; Sammy
	// settles near 3×3.3 ≈ 10 Mbps with RTTs at the 5 ms floor.
	control := SingleFlow(ControlController(), 90, 1)
	sammy := SingleFlow(SammyController(), 90, 1)

	if control.QoE.Chunks != 90 || sammy.QoE.Chunks != 90 {
		t.Fatalf("sessions incomplete: control=%d sammy=%d chunks",
			control.QoE.Chunks, sammy.QoE.Chunks)
	}
	// Control's peak binned throughput approaches the link rate.
	if max := control.Throughput.Max(); max < 30 {
		t.Errorf("control peak throughput = %.1f Mbps, want ≈ 40", max)
	}
	// Sammy's post-startup peaks sit near the pace rate, far below the link.
	if max := sammy.Throughput.Max(); max > 25 {
		t.Errorf("sammy peak throughput = %.1f Mbps, want ≲ 12 after startup", max)
	}
	// RTT: Sammy's mean near the 5 ms floor; control's clearly inflated.
	cRTT, sRTT := control.RTT.Mean(), sammy.RTT.Mean()
	if sRTT > 8 {
		t.Errorf("sammy mean RTT = %.1f ms, want ≈ 5", sRTT)
	}
	if cRTT < sRTT+3 {
		t.Errorf("control RTT %.1f ms not clearly above sammy %.1f ms", cRTT, sRTT)
	}
	// QoE parity: same quality, no rebuffers.
	if sammy.QoE.VMAF < control.QoE.VMAF-0.5 {
		t.Errorf("sammy VMAF %.2f below control %.2f", sammy.QoE.VMAF, control.QoE.VMAF)
	}
	if sammy.QoE.RebufferCount > 0 {
		t.Errorf("sammy rebuffered %d times", sammy.QoE.RebufferCount)
	}
}

func TestUDPNeighborFig8a(t *testing.T) {
	res := UDPNeighbor(90, 2)
	// Paper: one-way delay improves by ~51%. Shape: a substantial reduction.
	imp := res.ImprovementPct()
	if imp > -25 {
		t.Errorf("UDP delay change = %.1f%% (control %.2fms, sammy %.2fms), want strong reduction",
			imp, res.Control, res.Sammy)
	}
	if res.Sammy > 6 {
		t.Errorf("sammy-side UDP delay = %.2f ms, want near the uncongested ≈3 ms", res.Sammy)
	}
}

func TestTCPNeighborFig8b(t *testing.T) {
	res := TCPNeighbor(90, 3)
	// Paper: +28% (20 → 25.7 Mbps). Shape: the neighbor gets clearly more
	// than its fair share when the video paces.
	if res.Control < 12 || res.Control > 30 {
		t.Errorf("control-side TCP throughput = %.1f Mbps, want ≈ 20 (fair share)", res.Control)
	}
	if res.Sammy < res.Control*1.1 {
		t.Errorf("sammy-side TCP throughput = %.1f Mbps, want > control %.1f by ≥10%%",
			res.Sammy, res.Control)
	}
}

func TestHTTPNeighborFig8c(t *testing.T) {
	res := HTTPNeighbor(90, 4)
	// Paper: response times improve 18% (1095 → 898 ms). Shape: a clear
	// reduction.
	if res.Sammy >= res.Control {
		t.Errorf("HTTP response time did not improve: control %.0f ms, sammy %.0f ms",
			res.Control, res.Sammy)
	}
	imp := res.ImprovementPct()
	if imp > -5 {
		t.Errorf("HTTP response change = %.1f%%, want ≤ -5%%", imp)
	}
}

func TestVideoNeighborFig8d(t *testing.T) {
	res := VideoNeighbor(15, 2, 5)
	// Paper: play delay improves ~4%. Shape: the neighbor starts at least
	// as fast next to Sammy.
	if res.Sammy > res.Control*1.02 {
		t.Errorf("neighbor play delay worsened: control %.0f ms, sammy %.0f ms",
			res.Control, res.Sammy)
	}
}

func TestBurstSizeFig4Shape(t *testing.T) {
	points := BurstSizeExperiment([]int{4, 40}, 40, 6)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	control, b4, b40 := points[0], points[1], points[2]
	if control.Burst != 0 || b4.Burst != 4 || b40.Burst != 40 {
		t.Fatalf("unexpected ordering: %+v", points)
	}
	// Fig 4 shape: both paced settings beat the unpaced control, and the
	// 4-packet burst beats the 40-packet burst.
	if control.RetxFraction == 0 {
		t.Fatal("unpaced control should retransmit on the shallow queue")
	}
	if b40.RetxFraction >= control.RetxFraction {
		t.Errorf("burst-40 retx %.4f not below control %.4f", b40.RetxFraction, control.RetxFraction)
	}
	if b4.RetxFraction >= b40.RetxFraction {
		t.Errorf("burst-4 retx %.4f not below burst-40 %.4f", b4.RetxFraction, b40.RetxFraction)
	}
	// §5.6: no meaningful difference in throughput or quality across burst
	// sizes.
	tputRatio := float64(b4.Throughput) / float64(b40.Throughput)
	if tputRatio < 0.85 || tputRatio > 1.15 {
		t.Errorf("throughput should be flat across burst sizes: %v vs %v", b4.Throughput, b40.Throughput)
	}
	if diff := b4.VMAF - b40.VMAF; diff < -1 || diff > 1 {
		t.Errorf("VMAF should be flat across burst sizes: %.2f vs %.2f", b4.VMAF, b40.VMAF)
	}
}

func TestAblationLimiters(t *testing.T) {
	results := AblationLimiters(40, 7)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]LimiterResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	unpaced := byName["unpaced"]
	cwndCap := byName["cwnd-cap"]
	bucket := byName["token-bucket"]
	paced := byName["pacing-b4"]

	// All limiters hold throughput near 2x the 3.3 Mbps top bitrate; the
	// unpaced reference runs much faster.
	for _, r := range []LimiterResult{cwndCap, bucket, paced} {
		mbps := r.Throughput.Mbps()
		if mbps < 4 || mbps > 9 {
			t.Errorf("%s throughput = %.1f Mbps, want ≈ 6.6 (2x top bitrate)", r.Name, mbps)
		}
	}
	if unpaced.Throughput.Mbps() < 12 {
		t.Errorf("unpaced throughput = %.1f Mbps, want ≫ limiters", unpaced.Throughput.Mbps())
	}
	// Table 1's mechanism distinction: every limiter beats unpaced, and
	// burstiness orders the residual losses — window-cap (40-pkt bursts) ≥
	// token bucket (24) ≥ pacing (4).
	if cwndCap.RetxFraction >= unpaced.RetxFraction {
		t.Errorf("cwnd-cap retx %.4f not below unpaced %.4f", cwndCap.RetxFraction, unpaced.RetxFraction)
	}
	if bucket.RetxFraction > cwndCap.RetxFraction {
		t.Errorf("token-bucket retx %.4f above cwnd-cap %.4f", bucket.RetxFraction, cwndCap.RetxFraction)
	}
	if paced.RetxFraction > bucket.RetxFraction {
		t.Errorf("pacing-b4 retx %.4f above token-bucket %.4f", paced.RetxFraction, bucket.RetxFraction)
	}
	if paced.RetxFraction >= cwndCap.RetxFraction {
		t.Errorf("pacing-b4 retx %.4f should be strictly below cwnd-cap %.4f",
			paced.RetxFraction, cwndCap.RetxFraction)
	}
}

func TestTopologyDefaults(t *testing.T) {
	topo := NewTopology(Config{})
	if topo.Rate != 40e6 {
		t.Errorf("rate = %v", topo.Rate)
	}
	if topo.RTT != 5*time.Millisecond {
		t.Errorf("rtt = %v", topo.RTT)
	}
	// Queue is 4×BDP = 4 × 25 000 B.
	if got := topo.Fwd.QueueLimit(); got != 100000 {
		t.Errorf("queue = %d, want 100000", got)
	}
}
