package lab

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// goldenLabHash is the FNV-1a hash of the fixed-seed lab traces below,
// recorded before the allocation-free event-core rewrite (PR 3). Any change
// to event ordering, packet pooling or float arithmetic in the simulator,
// TCP stack or player shows up here as a hash mismatch. If you change
// simulation *semantics* on purpose, rerun with -run TestGoldenLabTraces -v
// and update the constant; performance-only changes must keep it intact.
const goldenLabHash = "01648e835ab446db"

// TestGoldenLabTraces locks the byte-level determinism of lab.Run-style
// experiments across refactors: two single-flow sessions (control and
// Sammy) plus a shared-link UDP-neighbor study, all on fixed seeds.
func TestGoldenLabTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("lab experiment")
	}
	h := fnv.New64a()
	control := SingleFlow(ControlController(), 30, 1)
	sammy := SingleFlow(SammyController(), 30, 1)
	udp := UDPNeighbor(20, 2)
	for _, v := range []any{control.QoE, control.Throughput, control.RTT, control.Retransmit,
		sammy.QoE, sammy.Throughput, sammy.RTT, sammy.Retransmit,
		udp.Control, udp.Sammy} {
		fmt.Fprintf(h, "%v\n", v)
	}
	got := fmt.Sprintf("%016x", h.Sum64())
	if got != goldenLabHash {
		t.Errorf("golden lab trace hash = %s, want %s\n"+
			"(fixed-seed traces changed: the simulator is no longer producing "+
			"byte-identical results — only acceptable for intentional semantic changes)", got, goldenLabHash)
	}
}
