package lab

import (
	"testing"
)

func TestCompareApproaches(t *testing.T) {
	results := CompareApproaches(90, 3)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]ApproachResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	control := byName["control"]
	scav := byName["scavenger"]
	sammy := byName["sammy"]

	// §2.2's key distinction: alone on the link, both the control and the
	// scavenger transport run at network speed; only Sammy stays near the
	// video bitrate.
	if control.SoloThroughput.Mbps() < 20 {
		t.Errorf("control solo throughput = %.1f Mbps, want near link rate", control.SoloThroughput.Mbps())
	}
	if scav.SoloThroughput.Mbps() < 20 {
		t.Errorf("scavenger solo throughput = %.1f Mbps, want near link rate (it only yields to neighbors)",
			scav.SoloThroughput.Mbps())
	}
	if sammy.SoloThroughput.Mbps() > 14 {
		t.Errorf("sammy solo throughput = %.1f Mbps, want ≈ 3x3.3 = 10", sammy.SoloThroughput.Mbps())
	}

	// The scavenger does keep its own queueing low while alone (delay-based
	// backoff), unlike the control.
	if scav.SoloRTT >= control.SoloRTT {
		t.Errorf("scavenger solo RTT %.1f ms should be below control %.1f ms", scav.SoloRTT, control.SoloRTT)
	}

	// Both the scavenger and Sammy leave a neighbor more than its fair
	// share; the control does not.
	if control.NeighborThroughput.Mbps() > 25 {
		t.Errorf("control neighbor throughput = %.1f Mbps, want ≈ fair share", control.NeighborThroughput.Mbps())
	}
	if scav.NeighborThroughput.Mbps() < 25 {
		t.Errorf("scavenger neighbor throughput = %.1f Mbps, want well above fair share", scav.NeighborThroughput.Mbps())
	}
	if sammy.NeighborThroughput.Mbps() < 25 {
		t.Errorf("sammy neighbor throughput = %.1f Mbps, want well above fair share", sammy.NeighborThroughput.Mbps())
	}

	// All three approaches deliver the same quality on this easy link.
	for _, r := range results {
		if r.VMAF < 90 {
			t.Errorf("%s VMAF = %.1f, want ≈ top", r.Name, r.VMAF)
		}
	}
}
