package lab

import (
	"testing"
)

func TestBothSammyCongestionOrdering(t *testing.T) {
	results := BothSammy(60, 9)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]BothSammyResult{}
	for _, r := range results {
		byName[r.Pairing] = r
	}
	cc := byName["control+control"]
	sc := byName["sammy+control"]
	ss := byName["sammy+sammy"]

	// §6's suggestion: one Sammy helps, two Sammys help more. RTT and
	// drops order accordingly.
	if sc.MedianRTT >= cc.MedianRTT {
		t.Errorf("sammy+control RTT %.1f ms not below control+control %.1f ms", sc.MedianRTT, cc.MedianRTT)
	}
	if ss.MedianRTT > sc.MedianRTT {
		t.Errorf("sammy+sammy RTT %.1f ms above sammy+control %.1f ms", ss.MedianRTT, sc.MedianRTT)
	}
	if ss.Drops > cc.Drops {
		t.Errorf("sammy+sammy drops %d above control pairing %d", ss.Drops, cc.Drops)
	}
	// With both paced (2×10 Mbps < 40 Mbps after startup), the steady-state
	// queue stays small: peak is dominated by the unpaced startup, so just
	// require both-Sammy congestion to be no worse than the all-control
	// case on every axis.
	if ss.PeakQueue > cc.PeakQueue {
		t.Errorf("sammy+sammy peak queue %d above control pairing %d", ss.PeakQueue, cc.PeakQueue)
	}
}
