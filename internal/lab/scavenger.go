package lab

import (
	"time"

	"repro/internal/player"
	"repro/internal/tcp"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/video"
)

// This file implements the §2.2 comparison between Sammy and the scavenger
// congestion-control approach (LEDBAT / PCC-Proteus style): scavengers
// yield when competing but "fully utilize the network when no neighboring
// traffic is present", while Sammy "consistently sends at a rate closer to
// the video bitrate". Both behaviours are observable here.

// ApproachResult captures one smoothing approach's behaviour in two
// conditions: streaming alone, and sharing the link with a bulk TCP
// neighbor.
type ApproachResult struct {
	Name string
	// SoloThroughput is the session's chunk throughput with the link to
	// itself — the smoothness measure (lower = smoother).
	SoloThroughput units.BitsPerSecond
	// SoloRTT is the mean SRTT while streaming alone, in ms.
	SoloRTT float64
	// NeighborThroughput is a competing bulk flow's achieved rate.
	NeighborThroughput units.BitsPerSecond
	// VMAF is the solo session's quality.
	VMAF float64
}

// scavengerArm describes one smoothing approach for CompareApproaches.
type scavengerArm struct {
	name    string
	variant tcp.Variant
	sammy   bool
}

// CompareApproaches runs the control, the scavenger-transport approach and
// Sammy through the solo and shared-link conditions.
func CompareApproaches(chunks int, seed int64) []ApproachResult {
	arms := []scavengerArm{
		{name: "control", variant: tcp.Reno},
		{name: "scavenger", variant: tcp.Scavenger},
		{name: "sammy", variant: tcp.Reno, sammy: true},
	}
	out := make([]ApproachResult, 0, len(arms))
	for _, arm := range arms {
		res := ApproachResult{Name: arm.name}

		// Condition 1: alone on the link.
		{
			topo := NewTopology(Config{})
			p, conn := armSession(topo, arm, chunks, seed)
			p.Start()
			topo.S.RunUntil(time.Duration(chunks) * 8 * time.Second)
			q := p.QoE()
			res.SoloThroughput = q.ChunkThroughput
			res.VMAF = q.VMAF
			if conn.RTT.Count() > 0 {
				res.SoloRTT = conn.RTT.Quantile(0.5)
			}
		}

		// Condition 2: sharing with a bulk TCP neighbor.
		{
			topo := NewTopology(Config{})
			p, _ := armSession(topo, arm, chunks, seed)
			bulk := traffic.NewBulkFlow(topo.S, 99, topo.Fwd, topo.Class, topo.RevCfg(), 60*units.MB)
			p.Start()
			bulk.StartAt(10 * time.Second)
			topo.S.RunUntil(time.Duration(chunks) * 8 * time.Second)
			res.NeighborThroughput = bulk.Throughput()
		}
		out = append(out, res)
	}
	return out
}

// armSession wires a video session whose transport uses the arm's variant
// and whose controller is Sammy when requested.
func armSession(topo *Topology, arm scavengerArm, chunks int, seed int64) (*player.SimPlayer, *tcp.Conn) {
	conn := tcp.NewConn(topo.S, 1, topo.Fwd, topo.Class, topo.RevCfg(), tcp.Config{Variant: arm.variant})
	title := video.NewTitle(video.LabLadder(), 4*time.Second, chunks, newRng(seed))
	ctrl := ControlController()
	if arm.sammy {
		ctrl = SammyController()
	}
	cfg := player.Config{
		Controller: ctrl,
		Title:      title,
		History:    nil, // session-local
		MaxBuffer:  4 * time.Minute,
	}
	return player.NewSimPlayer(topo.S, conn, cfg, nil, nil), conn
}
