package lab

import (
	"math/rand"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/player"
	"repro/internal/tcp"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/video"
)

// This file implements the Fig 4 burst-size experiment and the rate-limiter
// ablation. Burst size matters only when bursts can overflow a queue, so
// these scenarios use a shallower queue shared with cross traffic —
// conditions the production network provides for free.

// BurstPoint is one Fig 4 sample: a pacing burst size and the retransmit
// change relative to the unpaced control.
type BurstPoint struct {
	Burst         int     // pacing burst in packets; 0 = unpaced control
	RetxFraction  float64 // session retransmit fraction
	RetxChangePct float64 // percent change vs the unpaced control
	Throughput    units.BitsPerSecond
	VMAF          float64
}

// burstTopology is the Fig 4 network: the lab link with a shallow queue and
// a CBR cross flow occupying part of it, so line-rate bursts from the video
// flow overflow while well-paced packets slip through.
func burstTopology() *Topology {
	topo := NewTopology(Config{QueueBDPs: 1.5})
	cross := traffic.NewUDPFlow(topo.S, 999, topo.Fwd, topo.Class, 15*units.Mbps, 1500)
	cross.Start()
	return topo
}

// BurstSizeExperiment runs Fig 4: a video session paced at 2× the maximum
// bitrate with each burst size (paper: 4 to 40 packets), plus an unpaced
// control, reporting the retransmit change per burst size. Smaller bursts
// mean fewer drops; throughput and quality stay flat (§5.6).
func BurstSizeExperiment(bursts []int, chunks int, seed int64) []BurstPoint {
	run := func(burst int) BurstPoint {
		topo := burstTopology()
		conn := topo.Conn(1, tcp.Config{PacerBurst: maxInt(burst, 1)})
		title := video.NewTitle(video.LabLadder(), 4*time.Second, chunks, newRng(seed))
		var ctrl *core.Controller
		if burst == 0 {
			ctrl = ControlController()
		} else {
			// Fixed 2× pacing with the requested burst isolates the
			// burst-size effect, as in §5.6.
			var err error
			ctrl, err = core.NewController("pace-2x", core.Config{
				ABR:             abr.Production{},
				FixedMultiplier: 2,
				PaceInitial:     true,
				Burst:           burst,
			})
			if err != nil {
				panic(err)
			}
		}
		cfg := player.Config{
			Controller: ctrl,
			Title:      title,
			History:    &core.History{},
			// A small client buffer reaches the steady on-off pattern after
			// a few chunks; burst-size effects only exist at on-period
			// onsets, when the token bucket has refilled during the off
			// period.
			MaxBuffer: 20 * time.Second,
		}
		p := player.NewSimPlayer(topo.S, conn, cfg, nil, nil)
		p.Start()
		topo.S.RunUntil(time.Duration(chunks) * 12 * time.Second)
		q := p.QoE()
		return BurstPoint{
			Burst:        burst,
			RetxFraction: conn.Stats.RetransmitFraction(),
			Throughput:   q.ChunkThroughput,
			VMAF:         q.VMAF,
		}
	}

	control := run(0)
	points := []BurstPoint{control}
	for _, b := range bursts {
		pt := run(b)
		if control.RetxFraction > 0 {
			pt.RetxChangePct = 100 * (pt.RetxFraction - control.RetxFraction) / control.RetxFraction
		}
		points = append(points, pt)
	}
	return points
}

// LimiterResult is one rate-limiter mechanism's outcome in the ablation
// behind Table 1's mechanism column: all limiters cap average throughput,
// but burstier mechanisms keep losing packets.
type LimiterResult struct {
	Name         string
	RetxFraction float64
	Throughput   units.BitsPerSecond
	MeanRTTms    float64
}

// AblationLimiters compares the Table 1 rate-limiting mechanisms on the
// on-off video workload, where their burstiness differences live. All hold
// the flow to 2x the top bitrate on average:
//
//   - "pacing-b4": application-informed pacing with Sammy's 4-packet burst;
//   - "token-bucket": a server-side token bucket in the style of [3], with
//     a deep (24-packet) bucket that releases line-rate bursts after idle;
//   - "cwnd-cap": a Trickle-style [25] window cap, whose burstiness the
//     paper equates with the stack's 40-packet line-rate burst allowance
//     (section 5.6), which is how it is modelled here;
//   - "unpaced": no limiter, for reference.
func AblationLimiters(chunks int, seed int64) []LimiterResult {
	type mechanism struct {
		name  string
		burst int // pacer burst in packets; 0 = unpaced
	}
	mechanisms := []mechanism{
		{"unpaced", 0},
		{"cwnd-cap", 40},
		{"token-bucket", 24},
		{"pacing-b4", 4},
	}

	var out []LimiterResult
	for _, m := range mechanisms {
		topo := burstTopology()
		conn := topo.Conn(1, tcp.Config{PacerBurst: maxInt(m.burst, 1)})
		var ctrl *core.Controller
		if m.burst == 0 {
			ctrl = ControlController()
		} else {
			var err error
			ctrl, err = core.NewController(m.name, core.Config{
				ABR:             abr.Production{},
				FixedMultiplier: 2,
				PaceInitial:     true,
				Burst:           m.burst,
			})
			if err != nil {
				panic(err)
			}
		}
		title := video.NewTitle(video.LabLadder(), 4*time.Second, chunks, newRng(seed))
		p := player.NewSimPlayer(topo.S, conn, player.Config{
			Controller: ctrl,
			Title:      title,
			History:    &core.History{},
			MaxBuffer:  20 * time.Second,
		}, nil, nil)
		p.Start()
		topo.S.RunUntil(time.Duration(chunks) * 12 * time.Second)
		q := p.QoE()
		out = append(out, LimiterResult{
			Name:         m.name,
			RetxFraction: conn.Stats.RetransmitFraction(),
			Throughput:   q.ChunkThroughput,
			MeanRTTms:    conn.RTT.Quantile(0.5),
		})
	}
	return out
}

// newRng seeds a deterministic RNG for a scenario.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
