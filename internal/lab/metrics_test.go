package lab

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// runInstrumentedSingleFlow runs one unpaced control session on the lab link
// with an explicit registry attached to the simulator and connection, and
// returns the registry together with the run's ground-truth stats.
func runInstrumentedSingleFlow(t *testing.T, seed int64) (*obs.Registry, sim.LinkStats, tcp.Stats) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.SetRecorder(obs.NewRecorder(16384))
	topo := NewTopology(Config{})
	topo.S.SetMetrics(sim.NewMetrics(reg))
	p, conn := topo.VideoSession(1, ControlController(), 40, seed, nil)
	conn.SetMetrics(tcp.NewMetrics(reg))
	p.Start()
	topo.S.RunUntil(40 * 8 * time.Second)
	if !p.Done() {
		t.Fatal("session did not finish")
	}
	return reg, topo.Fwd.Stats, conn.Stats
}

func TestInstrumentedRunCountersMatchStats(t *testing.T) {
	reg, link, conn := runInstrumentedSingleFlow(t, 7)

	// The tcp counters mirror Conn.Stats exactly.
	tcpChecks := []struct {
		name string
		want int64
	}{
		{"tcp_segments_sent", conn.SegmentsSent},
		{"tcp_bytes_sent", int64(conn.BytesSent)},
		{"tcp_retransmits", conn.Retransmits},
		{"tcp_fast_retransmits", conn.FastRetransmits},
		{"tcp_delivered_bytes", int64(conn.DeliveredBytes)},
	}
	for _, c := range tcpChecks {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d (Conn.Stats)", c.name, got, c.want)
		}
	}
	if conn.Retransmits == 0 {
		t.Error("control flow on the lab link should retransmit; seed too gentle?")
	}

	// The reverse path is unbounded, so all queue drops happen on the
	// bottleneck and the sim counter matches the forward link's stats.
	if got := reg.Counter("sim_link_dropped_packets").Value(); got != link.Dropped {
		t.Errorf("sim_link_dropped_packets = %d, want %d (Fwd.Stats)", got, link.Dropped)
	}
	if link.Dropped == 0 {
		t.Error("control flow should overflow the 4xBDP queue")
	}
	if got := reg.Counter("sim_link_dropped_bytes").Value(); got != int64(link.DroppedBytes) {
		t.Errorf("sim_link_dropped_bytes = %d, want %d", got, int64(link.DroppedBytes))
	}
	// Sent/delivered counters aggregate the forward link plus the ack path,
	// so they are bounded below by the forward link alone.
	if got := reg.Counter("sim_link_sent_packets").Value(); got < link.Sent {
		t.Errorf("sim_link_sent_packets = %d, want >= %d", got, link.Sent)
	}
	if got := reg.Gauge("sim_peak_queue_bytes").Value(); got != float64(link.PeakQueue) {
		t.Errorf("sim_peak_queue_bytes = %g, want %g", got, float64(link.PeakQueue))
	}

	// The event ring saw both layers' cold paths.
	var drops, retx int
	for _, ev := range reg.Recorder().Events() {
		switch ev.Type {
		case "link_drop":
			drops++
		case "tcp_retransmit":
			retx++
		}
	}
	if drops == 0 || retx == 0 {
		t.Errorf("event ring: %d link_drop, %d tcp_retransmit events, want both > 0", drops, retx)
	}
}

// stripWallClock removes the only wall-clock-dependent lines from a snapshot
// so two same-seed runs compare equal.
func stripWallClock(snapshot string) string {
	var keep []string
	for _, line := range strings.Split(snapshot, "\n") {
		if strings.HasPrefix(line, "sim_wall_time_ns") || strings.HasPrefix(line, "sim_time_ratio") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestInstrumentedRunDeterministic(t *testing.T) {
	regA, _, _ := runInstrumentedSingleFlow(t, 3)
	regB, _, _ := runInstrumentedSingleFlow(t, 3)
	a, b := stripWallClock(regA.Snapshot()), stripWallClock(regB.Snapshot())
	if a != b {
		t.Errorf("same-seed runs produced different snapshots:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if regA.Recorder().Total() != regB.Recorder().Total() {
		t.Errorf("event totals differ: %d vs %d", regA.Recorder().Total(), regB.Recorder().Total())
	}
}
