// Package lab assembles the paper's §6 testbed experiments on the
// packet-level simulator: the single-flow trace (Fig 7), the four neighbor
// studies (Fig 8a-d), the pacing burst-size experiment (Fig 4), and the
// rate-limiter ablation behind Table 1's mechanism comparison.
//
// The topology is the paper's: a 40 Mbps bottleneck, 5 ms round-trip time,
// a drop-tail queue of 4× the bandwidth-delay product, and a video with a
// maximum bitrate of 3.3 Mbps.
package lab

import (
	"math/rand"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/fault"
	otrace "repro/internal/obs/trace"
	"repro/internal/player"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/video"
)

// runCounter numbers topologies so every lab run's sessions land in their
// own trace ("run3/flow1"): experiments that build one topology per arm
// would otherwise merge both arms' spans under the same flow id.
var runCounter atomic.Uint64

// Topology is one instantiated lab network.
type Topology struct {
	S     *sim.Simulator
	Fwd   *sim.Link
	Class *sim.Classifier
	Rate  units.BitsPerSecond
	RTT   time.Duration
	// Faulty wraps Fwd when the topology was built with a fault profile;
	// nil on clean topologies. Connections route through it automatically.
	Faulty *sim.FaultyLink

	run uint64 // process-wide topology number, for trace ids
}

// Config parameterizes the lab network; zero values take the paper's §6
// settings.
type Config struct {
	Rate      units.BitsPerSecond // default 40 Mbps
	RTT       time.Duration       // default 5 ms
	QueueBDPs float64             // queue size in BDPs; default 4
	// Faults, when set, injects the profile on the bottleneck: burst loss
	// and blackout drops at the link entrance, step bandwidth drops on its
	// serialization rate.
	Faults *fault.Profile
	// FaultSeed seeds the burst-loss chain; default 1.
	FaultSeed int64
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 40 * units.Mbps
	}
	if c.RTT <= 0 {
		c.RTT = 5 * time.Millisecond
	}
	if c.QueueBDPs <= 0 {
		c.QueueBDPs = 4
	}
	return c
}

// NewTopology builds the lab network.
func NewTopology(cfg Config) *Topology {
	cfg = cfg.withDefaults()
	s := sim.New()
	class := sim.NewClassifier()
	bdp := cfg.Rate.BytesIn(cfg.RTT)
	fwd := sim.NewLink(s, sim.LinkConfig{
		Rate:       cfg.Rate,
		Delay:      cfg.RTT / 2,
		QueueLimit: units.Bytes(float64(bdp) * cfg.QueueBDPs),
	}, class)
	topo := &Topology{S: s, Fwd: fwd, Class: class, Rate: cfg.Rate, RTT: cfg.RTT,
		run: runCounter.Add(1)}
	if cfg.Faults.Enabled() {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = 1
		}
		faulty, err := sim.NewFaultyLink(fwd, cfg.Faults, rand.New(rand.NewSource(seed)))
		if err != nil {
			panic("lab: " + err.Error())
		}
		topo.Faulty = faulty
	}
	return topo
}

// bottleneck is the sender every flow transmits into: the faulty wrapper
// when one is installed, the raw link otherwise.
func (t *Topology) bottleneck() sim.Sender {
	if t.Faulty != nil {
		return t.Faulty
	}
	return t.Fwd
}

// RevCfg is the per-flow reverse path: fast and uncongested.
func (t *Topology) RevCfg() sim.LinkConfig {
	return sim.LinkConfig{Rate: 1 * units.Gbps, Delay: t.RTT / 2}
}

// Conn builds a TCP connection through the bottleneck for flow id.
func (t *Topology) Conn(id sim.FlowID, cfg tcp.Config) *tcp.Conn {
	return tcp.NewConn(t.S, id, t.bottleneck(), t.Class, t.RevCfg(), cfg)
}

// VideoSession wires a player over a fresh connection.
func (t *Topology) VideoSession(id sim.FlowID, ctrl *core.Controller, chunks int, seed int64,
	onChunk func(player.ChunkEvent)) (*player.SimPlayer, *tcp.Conn) {
	conn := t.Conn(id, tcp.Config{})
	rng := rand.New(rand.NewSource(seed))
	title := video.NewTitle(video.LabLadder(), 4*time.Second, chunks, rng)
	cfg := player.Config{
		Controller: ctrl,
		Title:      title,
		History:    &core.History{},
		// TV clients hold minutes of buffer; the long prebuffer phase is
		// what congests the link in the paper's Fig 7/8 traces.
		MaxBuffer: 4 * time.Minute,
	}
	// Spans land in a per-run, per-flow trace when a process-wide tracer is
	// installed (sammy-eval -trace). The id string is only built then, so
	// the benchmarked hot path stays allocation-free with tracing off.
	if otrace.Default() != nil {
		cfg.TraceID = "run" + strconv.Itoa(int(t.run)) + "/flow" + strconv.Itoa(int(id))
	}
	return player.NewSimPlayer(t.S, conn, cfg, onChunk, nil), conn
}

// Controllers for the two arms every lab experiment compares.

// ControlController is the unpaced production arm.
func ControlController() *core.Controller {
	return core.NewControl(abr.Production{})
}

// SammyController is Sammy with the production parameters.
func SammyController() *core.Controller {
	return core.NewSammy(abr.Production{}, core.DefaultC0, core.DefaultC1)
}

// --- Fig 7: single flow --------------------------------------------------

// SingleFlowResult is a Fig 7 panel: the session's QoE plus throughput and
// RTT time series.
type SingleFlowResult struct {
	QoE        player.QoE
	Throughput trace.Series // binned wire throughput, Mbps
	RTT        trace.Series // SRTT samples, ms
	Retransmit float64      // session retransmit fraction

	// BurstDrops/BlackoutDrops report injected fault drops when the
	// topology carried a fault profile (0 otherwise).
	BurstDrops    int64
	BlackoutDrops int64
}

// SingleFlow runs one video session alone on the lab link, tracing
// throughput in 250 ms bins and sampling SRTT every 100 ms.
func SingleFlow(ctrl *core.Controller, chunks int, seed int64) SingleFlowResult {
	return SingleFlowOn(Config{}, ctrl, chunks, seed)
}

// SingleFlowOn is SingleFlow on an explicit lab config, which is how the
// flaky-path scenarios run: pass a Config with a fault profile.
func SingleFlowOn(cfg Config, ctrl *core.Controller, chunks int, seed int64) SingleFlowResult {
	topo := NewTopology(cfg)
	binner := trace.NewThroughputBinner(250 * time.Millisecond)
	p, conn := topo.VideoSession(1, ctrl, chunks, seed, func(ev player.ChunkEvent) {
		binner.AddInterval(ev.Start, ev.End, ev.Size)
	})

	rttSeries := trace.Series{Name: "rtt", Unit: "ms"}
	var sampleRTT func()
	sampleRTT = func() {
		if srtt := conn.SRTT(); srtt > 0 {
			rttSeries.Add(topo.S.Now(), srtt.Seconds()*1000)
		}
		if !p.Done() {
			topo.S.Schedule(100*time.Millisecond, sampleRTT)
		}
	}
	p.Start()
	topo.S.Schedule(100*time.Millisecond, sampleRTT)
	topo.S.RunUntil(time.Duration(chunks) * 8 * time.Second)

	res := SingleFlowResult{
		QoE:        p.QoE(),
		Throughput: binner.Series("throughput"),
		RTT:        rttSeries,
		Retransmit: conn.Stats.RetransmitFraction(),
	}
	if topo.Faulty != nil {
		res.BurstDrops = topo.Faulty.BurstDrops
		res.BlackoutDrops = topo.Faulty.BlackoutDrops
	}
	return res
}

// --- Fig 8 neighbors -------------------------------------------------------

// NeighborResult compares a neighbor metric under the control and Sammy
// video arms.
type NeighborResult struct {
	Control float64
	Sammy   float64
}

// ImprovementPct reports the percent change from control to Sammy
// (negative = reduction).
func (n NeighborResult) ImprovementPct() float64 {
	if n.Control == 0 {
		return 0
	}
	return 100 * (n.Sammy - n.Control) / n.Control
}

// UDPNeighbor runs Fig 8a: a 5 Mbps paced UDP flow shares the link with a
// video session; the metric is the UDP flow's mean one-way delay in ms.
func UDPNeighbor(chunks int, seed int64) NeighborResult {
	run := func(ctrl *core.Controller) float64 {
		topo := NewTopology(Config{})
		p, _ := topo.VideoSession(1, ctrl, chunks, seed, nil)
		u := traffic.NewUDPFlow(topo.S, 2, topo.Fwd, topo.Class, 5*units.Mbps, 1500)
		p.Start()
		// Measure once playback is underway, across the window where the
		// control arm is still filling its large client buffer.
		topo.S.At(5*time.Second, u.Start)
		end := 45 * time.Second
		topo.S.At(end, u.Stop)
		topo.S.RunUntil(end + 5*time.Second)
		return u.MeanDelay().Seconds() * 1000
	}
	return NeighborResult{Control: run(ControlController()), Sammy: run(SammyController())}
}

// TCPNeighbor runs Fig 8b: a bulk TCP flow starts 10 s after playback; the
// metric is its achieved throughput in Mbps.
func TCPNeighbor(chunks int, seed int64) NeighborResult {
	run := func(ctrl *core.Controller) float64 {
		topo := NewTopology(Config{})
		p, _ := topo.VideoSession(1, ctrl, chunks, seed, nil)
		size := 60 * units.MB
		bulk := traffic.NewBulkFlow(topo.S, 2, topo.Fwd, topo.Class, topo.RevCfg(), size)
		p.Start()
		bulk.StartAt(10 * time.Second)
		topo.S.RunUntil(time.Duration(chunks) * 8 * time.Second)
		return bulk.Throughput().Mbps()
	}
	return NeighborResult{Control: run(ControlController()), Sammy: run(SammyController())}
}

// HTTPNeighbor runs Fig 8c: repeated 3 MB HTTP requests during playback;
// the metric is the mean response time in ms.
func HTTPNeighbor(chunks int, seed int64) NeighborResult {
	run := func(ctrl *core.Controller) float64 {
		topo := NewTopology(Config{})
		p, _ := topo.VideoSession(1, ctrl, chunks, seed, nil)
		h := traffic.NewHTTPLoad(topo.S, 2, topo.Fwd, topo.Class, topo.RevCfg(),
			3*units.MB, 200*time.Millisecond)
		p.Start()
		h.StartAt(5 * time.Second)
		end := 45 * time.Second
		topo.S.At(end, h.Stop)
		topo.S.RunUntil(end + 20*time.Second)
		return h.MeanResponseTime().Seconds() * 1000
	}
	return NeighborResult{Control: run(ControlController()), Sammy: run(SammyController())}
}

// VideoNeighbor runs Fig 8d: a second video session (always the production
// control, as in the paper) starts a few seconds after the first; the
// metric is the neighbor's play delay in ms, averaged over trials.
func VideoNeighbor(chunks int, trials int, seed int64) NeighborResult {
	run := func(ctrl func() *core.Controller) float64 {
		var sum float64
		for trial := 0; trial < trials; trial++ {
			topo := NewTopology(Config{})
			p1, _ := topo.VideoSession(1, ctrl(), chunks, seed+int64(trial), nil)
			p2, _ := topo.VideoSession(2, ControlController(), chunks, seed+int64(trial)+1000, nil)
			p1.Start()
			topo.S.At(4*time.Second, p2.Start)
			topo.S.RunUntil(time.Duration(chunks) * 12 * time.Second)
			sum += p2.QoE().PlayDelay.Seconds() * 1000
		}
		return sum / float64(trials)
	}
	return NeighborResult{Control: run(ControlController), Sammy: run(SammyController)}
}
