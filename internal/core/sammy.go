// Package core implements Sammy, the paper's joint bitrate and pace-rate
// selection scheme (§4, Algorithm 1), together with the variants the
// evaluation compares against: the unpaced production control, the naive
// fixed-multiplier pacing baseline of §5.5, and the initial-phase-only
// changes of §5.4 / Table 3.
//
// Sammy's playing-phase rule: given buffer fill fraction B and the ladder's
// highest bitrate r_top, request a pace rate of (c1·B + c0·(1−B))·r_top.
// The production experiments use c0 = 3.2 and c1 = 2.8. During the initial
// phase Sammy does not pace, and bitrate selection is driven by a separate
// history of *initial-phase* throughput (§4.1).
package core

import (
	"fmt"
	"time"

	"repro/internal/abr"
	trace "repro/internal/obs/trace"
	"repro/internal/pacing"
	"repro/internal/units"
)

// Default pace-rate multipliers from the paper's production experiments
// (§5: "Sammy paces at 3.2x the maximum bitrate when the buffer is empty,
// and 2.8x the maximum bitrate when the buffer is full").
const (
	DefaultC0 = 3.2
	DefaultC1 = 2.8
)

// DefaultBurst is the pacing burst size in packets used in production for
// CPU efficiency (§5.6).
const DefaultBurst = 4

// HistorySource selects which historical throughput series feeds initial
// bitrate selection.
type HistorySource int

const (
	// CombinedHistory uses throughput from all phases of past sessions —
	// the pre-Sammy production behaviour, which pacing would pollute.
	CombinedHistory HistorySource = iota
	// InitialHistory uses throughput only from the initial phases of past
	// sessions — Sammy's §4.1 change.
	InitialHistory
)

// Config parameterizes a Controller.
type Config struct {
	// ABR is the underlying bitrate-selection algorithm. Required.
	ABR abr.Algorithm
	// C0 and C1 are the empty- and full-buffer pace multipliers applied to
	// the ladder's highest bitrate. Defaults: 3.2 and 2.8.
	C0, C1 float64
	// Burst is the pacing burst in packets. Default 4.
	Burst int
	// PaceInitial, when true, applies pacing during the initial phase too
	// (the §5.5 naive baseline does; Sammy does not).
	PaceInitial bool
	// FixedMultiplier, when positive, replaces the buffer-interpolated
	// multiplier with a constant (the §5.5 baseline paces at a flat 4×).
	FixedMultiplier float64
	// DisablePacing turns all pacing off (control, and the Table 3
	// initial-phase-only arm).
	DisablePacing bool
	// History selects the throughput history feeding initial selection.
	History HistorySource
}

// Decision is a joint bitrate + pace-rate choice for one chunk, the output
// of Algorithm 1.
type Decision struct {
	Rung     int                 // ladder index for the chunk
	PaceRate units.BitsPerSecond // requested pace rate; 0 = no pacing
	Burst    int                 // pacing burst in packets (meaningful when pacing)
}

// Controller executes Algorithm 1 chunk by chunk for one session. It is the
// "Sammy" object: construct one per video session with NewSammy (or one of
// the variant constructors) and call Decide before each chunk download.
type Controller struct {
	name string
	cfg  Config
}

// NewController builds a controller from an explicit config, validating it.
func NewController(name string, cfg Config) (*Controller, error) {
	if cfg.ABR == nil {
		return nil, fmt.Errorf("core: config needs an ABR algorithm")
	}
	if cfg.C0 == 0 {
		cfg.C0 = DefaultC0
	}
	if cfg.C1 == 0 {
		cfg.C1 = DefaultC1
	}
	if cfg.C0 < 0 || cfg.C1 < 0 {
		return nil, fmt.Errorf("core: pace multipliers must be non-negative, got c0=%v c1=%v", cfg.C0, cfg.C1)
	}
	if cfg.Burst <= 0 {
		cfg.Burst = DefaultBurst
	}
	if cfg.FixedMultiplier < 0 {
		return nil, fmt.Errorf("core: fixed multiplier must be non-negative, got %v", cfg.FixedMultiplier)
	}
	return &Controller{name: name, cfg: cfg}, nil
}

// mustController is NewController for the package's own constructors, whose
// configs are valid by construction.
func mustController(name string, cfg Config) *Controller {
	c, err := NewController(name, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// NewSammy returns Sammy with the production parameters: buffer-interpolated
// pacing between c0 and c1 in the playing phase, no pacing in the initial
// phase, initial-only throughput history.
func NewSammy(a abr.Algorithm, c0, c1 float64) *Controller {
	return mustController("sammy", Config{
		ABR: a, C0: c0, C1: c1, Burst: DefaultBurst, History: InitialHistory,
	})
}

// NewControl returns the unpaced production control arm: the plain ABR
// algorithm, no pacing, combined history.
func NewControl(a abr.Algorithm) *Controller {
	return mustController("control", Config{
		ABR: a, DisablePacing: true, History: CombinedHistory,
	})
}

// NewNaiveBaseline returns the §5.5 baseline: the production ABR untouched,
// with every chunk (including the initial phase) paced at a fixed multiple
// of the maximum bitrate.
func NewNaiveBaseline(a abr.Algorithm, multiplier float64) *Controller {
	return mustController("naive-baseline", Config{
		ABR: a, FixedMultiplier: multiplier, PaceInitial: true,
		Burst: DefaultBurst, History: CombinedHistory,
	})
}

// NewInitialOnly returns the §5.4 / Table 3 arm: Sammy's initial-phase
// history changes with pacing disabled.
func NewInitialOnly(a abr.Algorithm) *Controller {
	return mustController("initial-only", Config{
		ABR: a, DisablePacing: true, History: InitialHistory,
	})
}

// Name identifies the controller variant in experiment output.
func (c *Controller) Name() string { return c.name }

// Config returns the controller's effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// HistorySource reports which history series should feed
// Context.InitialEstimate for this controller.
func (c *Controller) HistorySource() HistorySource { return c.cfg.History }

// Decide runs Algorithm 1 for the chunk described by ctx: the underlying
// ABR picks the rung, then the pace rate is derived from the buffer level
// and the ladder's highest bitrate.
func (c *Controller) Decide(ctx abr.Context) Decision {
	return c.paceDecision(ctx, c.cfg.ABR.SelectRung(ctx))
}

// DecideTraced is Decide with span emission: the rung selection becomes an
// "abr.decide" child and the pace computation a "pacing.rate" child under
// parent, both stamped at sim/session time at (decisions are instantaneous
// in model time, so the spans have zero duration but carry the decision
// inputs and outputs as attributes). A nil parent is exactly Decide.
func (c *Controller) DecideTraced(ctx abr.Context, parent *trace.Span, at time.Duration) Decision {
	if parent == nil {
		return c.Decide(ctx)
	}
	asp := parent.StartChildAt(at, "abr.decide", c.cfg.ABR.Name())
	ctx.SpanAttrs(asp)
	rung := c.cfg.ABR.SelectRung(ctx)
	asp.SetAttr("rung", float64(rung)).EndAt(at)

	psp := parent.StartChildAt(at, "pacing.rate", c.name)
	d := c.paceDecision(ctx, rung)
	psp.SetAttr("pace_bps", float64(d.PaceRate)).SetAttr("burst", float64(d.Burst)).EndAt(at)
	return d
}

// paceDecision derives the pace rate for an already-selected rung — the
// second half of Algorithm 1.
func (c *Controller) paceDecision(ctx abr.Context, rung int) Decision {
	d := Decision{Rung: rung, PaceRate: pacing.NoPacing, Burst: c.cfg.Burst}
	if c.cfg.DisablePacing {
		return d
	}
	if !ctx.Playing && !c.cfg.PaceInitial {
		// Algorithm 1: "if ABR is in initial phase then pace rate ← no
		// pacing". The initial phase is a tiny fraction of traffic and
		// pacing it would directly increase play delay (§4.1).
		return d
	}
	top := ctx.Title.Ladder.Top().Bitrate
	mult := c.multiplier(ctx)
	d.PaceRate = units.BitsPerSecond(mult * float64(top))
	return d
}

// multiplier computes the pace multiplier: fixed when configured, otherwise
// linear in buffer fill between c0 (empty) and c1 (full).
func (c *Controller) multiplier(ctx abr.Context) float64 {
	if c.cfg.FixedMultiplier > 0 {
		return c.cfg.FixedMultiplier
	}
	b := 0.0
	if ctx.MaxBuffer > 0 {
		b = float64(ctx.Buffer) / float64(ctx.MaxBuffer)
		if b < 0 {
			b = 0
		}
		if b > 1 {
			b = 1
		}
	}
	return c.cfg.C1*b + c.cfg.C0*(1-b)
}

// ThresholdABR is implemented by ABR algorithms that expose their §4.2
// decision threshold: the minimum throughput estimate that still selects
// bitrate r from starting buffer b0 over lookahead duration d (Eq. 1).
type ThresholdABR interface {
	MinThroughputFor(r units.BitsPerSecond, b0, d time.Duration) units.BitsPerSecond
}

// ValidatePaceFloor checks that the controller's pace rates stay above the
// ABR algorithm's decision threshold for the top rung at every buffer
// level, the condition §4.2 requires so pacing never changes bitrate
// decisions. It returns nil when safe and a descriptive error otherwise.
//
// top is the ladder's highest bitrate, maxBuffer the player's buffer
// capacity and lookahead the ABR's lookahead duration.
func (c *Controller) ValidatePaceFloor(a ThresholdABR, top units.BitsPerSecond, maxBuffer, lookahead time.Duration) error {
	if c.cfg.DisablePacing {
		return nil
	}
	// The multiplier is linear in buffer fill and the threshold is
	// decreasing in buffer, so checking a dense grid of buffer levels is
	// sufficient and simple.
	const steps = 64
	for i := 0; i <= steps; i++ {
		fill := float64(i) / steps
		buf := time.Duration(fill * float64(maxBuffer))
		mult := c.cfg.FixedMultiplier
		if mult <= 0 {
			mult = c.cfg.C1*fill + c.cfg.C0*(1-fill)
		}
		pace := units.BitsPerSecond(mult * float64(top))
		need := a.MinThroughputFor(top, buf, lookahead)
		if pace < need {
			return fmt.Errorf("core: pace rate %v at buffer fill %.2f is below the ABR threshold %v for the top bitrate %v",
				pace, fill, need, top)
		}
	}
	return nil
}
