package core

import (
	"repro/internal/units"
)

// History is a per-user store of historical throughput observations used
// for initial bitrate selection (§4.1). It keeps two exponentially weighted
// series:
//
//   - the combined series, updated with throughput from every chunk of
//     every session — the pre-Sammy production behaviour. When the playing
//     phase is paced this series is polluted downward-and-sideways by pace
//     rates, which is exactly the coupling §4.1 warns about;
//   - the initial-only series, updated only with initial-phase chunk
//     throughput — Sammy's fix, immune to playing-phase pacing.
//
// The zero value is an empty history ready for use.
type History struct {
	combined ewma
	initial  ewma
}

// ewma is an exponentially weighted moving average over positive samples.
type ewma struct {
	value float64
	n     int64
}

// ewmaAlpha weights new observations; ~0.3 tracks a device's network over a
// handful of sessions without whiplash from a single outlier.
const ewmaAlpha = 0.3

func (e *ewma) observe(x float64) {
	if x <= 0 {
		return
	}
	if e.n == 0 {
		e.value = x
	} else {
		e.value = ewmaAlpha*x + (1-ewmaAlpha)*e.value
	}
	e.n++
}

// ObserveInitial records a chunk throughput measured during a session's
// initial phase. Initial-phase samples feed both series.
func (h *History) ObserveInitial(x units.BitsPerSecond) {
	h.initial.observe(float64(x))
	h.combined.observe(float64(x))
}

// ObservePlaying records a chunk throughput measured during the playing
// phase. Playing-phase samples feed only the combined series.
func (h *History) ObservePlaying(x units.BitsPerSecond) {
	h.combined.observe(float64(x))
}

// Estimate reports the estimate from the requested source, or 0 when that
// series has no observations yet (a cold start, the Fig 6 condition).
func (h *History) Estimate(src HistorySource) units.BitsPerSecond {
	switch src {
	case InitialHistory:
		return units.BitsPerSecond(h.initial.value)
	default:
		return units.BitsPerSecond(h.combined.value)
	}
}

// HasData reports whether the requested series has any observations.
func (h *History) HasData(src HistorySource) bool {
	if src == InitialHistory {
		return h.initial.n > 0
	}
	return h.combined.n > 0
}

// Reset clears both series, the "reset historical throughput information in
// both treatment and control" step §5.7 uses for apples-to-apples
// comparisons.
func (h *History) Reset() { *h = History{} }
