package core_test

import (
	"fmt"
	"time"

	"repro/internal/abr"
	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/video"
)

// ExampleController_Decide shows Algorithm 1 end to end: the ABR picks the
// rung, and the pace rate is a buffer-interpolated multiple of the ladder's
// top bitrate.
func ExampleController_Decide() {
	sammy := core.NewSammy(abr.Production{}, 3.2, 2.8)
	title := video.NewTitle(video.LabLadder(), 4*time.Second, 100, nil)

	decision := sammy.Decide(abr.Context{
		Title:      title,
		ChunkIndex: 20,
		Buffer:     30 * time.Second,
		MaxBuffer:  60 * time.Second, // half full: multiplier = 3.0
		Playing:    true,
		Throughput: 50 * units.Mbps,
		PrevRung:   -1,
	})
	fmt.Printf("rung %d, pace %v, burst %d packets\n",
		decision.Rung, decision.PaceRate, decision.Burst)
	// Output: rung 7, pace 9.90Mbps, burst 4 packets
}

// ExampleController_ValidatePaceFloor checks a parameter choice against the
// paper's Eq. 1 threshold before deploying it.
func ExampleController_ValidatePaceFloor() {
	h := abr.HYB{Beta: 0.5} // needs 2x the bitrate at an empty buffer
	top := 3300 * units.Kbps

	safe := core.NewSammy(h, 3.2, 2.8)
	fmt.Println("3.2/2.8:", safe.ValidatePaceFloor(h, top, 4*time.Minute, 32*time.Second) == nil)

	unsafe := core.NewSammy(h, 1.5, 1.2)
	fmt.Println("1.5/1.2:", unsafe.ValidatePaceFloor(h, top, 4*time.Minute, 32*time.Second) == nil)
	// Output:
	// 3.2/2.8: true
	// 1.5/1.2: false
}
