package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/abr"
	"repro/internal/units"
	"repro/internal/video"
)

func playingCtx(bufFrac float64) abr.Context {
	title := video.NewTitle(video.DefaultLadder(), 4*time.Second, 300, nil)
	maxBuf := 60 * time.Second
	return abr.Context{
		Title:      title,
		ChunkIndex: 20,
		Buffer:     time.Duration(bufFrac * float64(maxBuf)),
		MaxBuffer:  maxBuf,
		Playing:    true,
		Throughput: 50 * units.Mbps,
		PrevRung:   -1,
	}
}

func TestSammyPaceMultiplierInterpolation(t *testing.T) {
	s := NewSammy(abr.Production{}, 3.2, 2.8)
	top := float64(video.DefaultLadder().Top().Bitrate)

	empty := s.Decide(playingCtx(0))
	if got := float64(empty.PaceRate) / top; math.Abs(got-3.2) > 1e-9 {
		t.Errorf("empty-buffer multiplier = %v, want 3.2", got)
	}
	full := s.Decide(playingCtx(1))
	if got := float64(full.PaceRate) / top; math.Abs(got-2.8) > 1e-9 {
		t.Errorf("full-buffer multiplier = %v, want 2.8", got)
	}
	half := s.Decide(playingCtx(0.5))
	if got := float64(half.PaceRate) / top; math.Abs(got-3.0) > 1e-9 {
		t.Errorf("half-buffer multiplier = %v, want 3.0", got)
	}
}

func TestSammyNoPacingInInitialPhase(t *testing.T) {
	s := NewSammy(abr.Production{}, 3.2, 2.8)
	ctx := playingCtx(0)
	ctx.Playing = false
	ctx.Throughput = 0
	ctx.InitialEstimate = 20 * units.Mbps
	d := s.Decide(ctx)
	if d.PaceRate != 0 {
		t.Errorf("initial phase pace rate = %v, want no pacing (Algorithm 1)", d.PaceRate)
	}
}

func TestSammyBurstDefault(t *testing.T) {
	s := NewSammy(abr.Production{}, 0, 0) // zeros take defaults
	d := s.Decide(playingCtx(0.5))
	if d.Burst != DefaultBurst {
		t.Errorf("burst = %d, want %d", d.Burst, DefaultBurst)
	}
	if got := s.Config().C0; got != DefaultC0 {
		t.Errorf("default c0 = %v", got)
	}
}

func TestControlNeverPaces(t *testing.T) {
	c := NewControl(abr.Production{})
	for _, frac := range []float64{0, 0.5, 1} {
		if d := c.Decide(playingCtx(frac)); d.PaceRate != 0 {
			t.Errorf("control paced at %v", d.PaceRate)
		}
	}
	if c.HistorySource() != CombinedHistory {
		t.Error("control should use combined history")
	}
}

func TestNaiveBaselinePacesEverythingAtFixedMultiple(t *testing.T) {
	b := NewNaiveBaseline(abr.Production{}, 4)
	top := float64(video.DefaultLadder().Top().Bitrate)

	playing := b.Decide(playingCtx(0.9))
	if got := float64(playing.PaceRate) / top; math.Abs(got-4) > 1e-9 {
		t.Errorf("baseline playing multiplier = %v, want 4", got)
	}
	ctx := playingCtx(0)
	ctx.Playing = false
	ctx.InitialEstimate = 20 * units.Mbps
	initial := b.Decide(ctx)
	if got := float64(initial.PaceRate) / top; math.Abs(got-4) > 1e-9 {
		t.Errorf("baseline initial multiplier = %v, want 4 (§5.5 paces the initial phase too)", got)
	}
}

func TestInitialOnlyArm(t *testing.T) {
	c := NewInitialOnly(abr.Production{})
	if d := c.Decide(playingCtx(0.5)); d.PaceRate != 0 {
		t.Error("initial-only arm must not pace")
	}
	if c.HistorySource() != InitialHistory {
		t.Error("initial-only arm should use initial history")
	}
}

func TestSammyRungMatchesUnderlyingABR(t *testing.T) {
	// Sammy delegates rung choice entirely to the ABR algorithm.
	a := abr.Production{}
	s := NewSammy(a, 3.2, 2.8)
	f := func(bufFrac uint8, mbps uint16) bool {
		ctx := playingCtx(float64(bufFrac%101) / 100)
		ctx.Throughput = units.BitsPerSecond(int(mbps)+1000) * units.Kbps
		return s.Decide(ctx).Rung == a.SelectRung(ctx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPaceRateDecreasesAsBufferFills(t *testing.T) {
	// c0 > c1, so pacing smooths harder (lower rate) as the buffer grows —
	// the §4.2 buffer-based pace selection.
	s := NewSammy(abr.Production{}, 3.2, 2.8)
	prev := units.BitsPerSecond(math.Inf(1))
	for frac := 0.0; frac <= 1.0; frac += 0.1 {
		d := s.Decide(playingCtx(frac))
		if d.PaceRate > prev {
			t.Fatalf("pace rate increased with buffer at fill %v", frac)
		}
		prev = d.PaceRate
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController("x", Config{}); err == nil {
		t.Error("missing ABR should error")
	}
	if _, err := NewController("x", Config{ABR: abr.Production{}, C0: -1}); err == nil {
		t.Error("negative multiplier should error")
	}
	if _, err := NewController("x", Config{ABR: abr.Production{}, FixedMultiplier: -2}); err == nil {
		t.Error("negative fixed multiplier should error")
	}
	if c, err := NewController("x", Config{ABR: abr.Production{}}); err != nil || c.Name() != "x" {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestValidatePaceFloor(t *testing.T) {
	a := abr.Production{} // β=0.7 ⇒ empty-buffer threshold = top/0.7 ≈ 1.43×top
	top := video.DefaultLadder().Top().Bitrate
	maxBuf := 60 * time.Second
	look := 32 * time.Second

	good := NewSammy(a, 3.2, 2.8)
	if err := good.ValidatePaceFloor(a, top, maxBuf, look); err != nil {
		t.Errorf("production parameters rejected: %v", err)
	}

	// A pace multiplier below 1/β at empty buffer violates Eq. 1.
	bad := NewSammy(a, 1.1, 1.0)
	err := bad.ValidatePaceFloor(a, top, maxBuf, look)
	if err == nil {
		t.Fatal("multiplier below the Eq. 1 floor should be rejected")
	}
	if !strings.Contains(err.Error(), "below the ABR threshold") {
		t.Errorf("unhelpful error: %v", err)
	}

	// Control never paces, so any parameters validate.
	if err := NewControl(a).ValidatePaceFloor(a, top, maxBuf, look); err != nil {
		t.Errorf("control should always validate: %v", err)
	}
}

func TestHistorySeparation(t *testing.T) {
	var h History
	if h.HasData(InitialHistory) || h.HasData(CombinedHistory) {
		t.Fatal("zero-value history should be empty")
	}
	h.ObserveInitial(5 * units.Mbps)
	h.ObservePlaying(50 * units.Mbps) // paced/fast playing-phase sample
	h.ObservePlaying(50 * units.Mbps)
	h.ObservePlaying(50 * units.Mbps)

	init := h.Estimate(InitialHistory)
	comb := h.Estimate(CombinedHistory)
	if init != 5*units.Mbps {
		t.Errorf("initial estimate = %v, want 5Mbps", init)
	}
	if comb <= init {
		t.Errorf("combined estimate %v should be pulled up by playing-phase samples above %v", comb, init)
	}
}

func TestHistoryReset(t *testing.T) {
	var h History
	h.ObserveInitial(5 * units.Mbps)
	h.Reset()
	if h.HasData(InitialHistory) || h.Estimate(InitialHistory) != 0 {
		t.Error("reset should clear the history (§5.7)")
	}
}

func TestHistoryIgnoresNonPositive(t *testing.T) {
	var h History
	h.ObserveInitial(0)
	h.ObservePlaying(-1)
	if h.HasData(CombinedHistory) {
		t.Error("non-positive samples should be ignored")
	}
}

func TestHistoryEWMAConvergesProperty(t *testing.T) {
	// Feeding a constant converges the estimate to that constant.
	f := func(mbps uint8) bool {
		var h History
		x := units.BitsPerSecond(int(mbps)+1) * units.Mbps
		for i := 0; i < 50; i++ {
			h.ObserveInitial(x)
		}
		got := h.Estimate(InitialHistory)
		return math.Abs(float64(got-x))/float64(x) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
