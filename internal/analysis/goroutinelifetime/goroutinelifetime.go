// Package goroutinelifetime requires every goroutine started in non-test
// code to have a provable way to finish — the Sammy processes are
// long-lived servers and population drivers, and an unjoinable goroutine is
// how they leak memory (PR 7's per-stream workers) or hang shutdown (PR 6's
// heartbeat). A `go` statement passes when its body shows either:
//
//   - a join edge: the goroutine signals completion — (*sync.WaitGroup).Done
//     or Wait, a close(ch), or a channel send that a collector receives; or
//   - a stop edge: the goroutine watches a signal someone else owns — a
//     receive from ctx.Done(), or a receive (or range) over a channel
//     declared outside the goroutine body (parameter, capture, or struct
//     field). A time.Ticker/time.Timer .C receive is not a stop edge: the
//     clock never tells anyone to exit.
//
// Additionally the body's CFG must be escapable: a reachable block that
// cannot reach function exit (`for { select { case <-tick.C: } }`) means
// the goroutine literally has no terminating path, whatever channels it
// touches.
//
// Bodies are resolved for function literals and same-package functions and
// methods. A `go` call into another package (go srv.Serve(ln)) cannot be
// verified intraprocedurally and must either move the lifetime evidence to
// the call site or carry an audited //sammy:goroutinelifetime suppression.
package goroutinelifetime

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the goroutinelifetime pass.
var Analyzer = &analysis.Analyzer{
	Name:        "goroutinelifetime",
	Doc:         "require every go statement in non-test code to reach a join edge (WaitGroup.Done, close, send) or stop edge (ctx.Done or externally owned channel receive), with an escapable body CFG",
	SuppressKey: "goroutinelifetime",
	Run:         run,
}

func run(pass *analysis.Pass) error {
	// Index same-package function and method declarations so `go w.run()`
	// resolves to a body.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			check(pass, decls, gs)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	var name string
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body, name = fun.Body, "func literal"
	default:
		fn := analysis.CalleeFunc(pass.TypesInfo, gs.Call)
		if fn != nil {
			if fd, ok := decls[fn]; ok && fd.Body != nil {
				body, name = fd.Body, fn.Name()
			}
		}
		if body == nil {
			callee := types.ExprString(gs.Call.Fun)
			pass.Reportf(gs.Pos(), "cannot verify goroutine lifetime: %s is not defined in this package; prove the join/stop edge at the call site or audit with //sammy:goroutinelifetime", callee)
			return
		}
	}

	g := cfg.New(name, body)
	reach, canExit := g.ReachableFromEntry(), g.CanReachExit()
	trapped := 0
	for _, blk := range g.Blocks {
		if reach[blk] && !canExit[blk] {
			trapped++
		}
	}
	if trapped > 0 {
		pass.Reportf(gs.Pos(), "goroutine %s can never terminate: %d reachable blocks cannot reach function exit (inescapable loop — add a stop case that returns)", name, trapped)
		return
	}

	if !hasLifetimeEvidence(pass.TypesInfo, body) {
		pass.Reportf(gs.Pos(), "goroutine %s has no join or stop edge: no WaitGroup.Done/Wait, close, or send (join), and no ctx.Done() or externally owned channel receive (stop)", name)
	}
}

// hasLifetimeEvidence scans the whole body — nested closures and deferred
// calls included, since `defer wg.Done()` and `defer close(done)` are the
// canonical join edges — for any join or stop evidence.
func hasLifetimeEvidence(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			// A send is a join edge only on an externally owned channel:
			// the collector holding the other end receives it. A send on a
			// channel the goroutine made for itself proves nothing.
			if isExternalChan(info, n.Chan, body) {
				found = true
			}
		case *ast.CallExpr:
			if isCloseCall(info, n) {
				if len(n.Args) == 1 && isExternalChan(info, n.Args[0], body) {
					found = true
				}
			} else if isWaitGroupCall(info, n) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isStopReceive(info, n.X, body) {
				found = true
			}
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && isExternalChan(info, n.X, body) {
					found = true // range ends when the owner closes the channel
				}
			}
		}
		return !found
	})
	return found
}

// isCloseCall recognizes the close builtin.
func isCloseCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// isWaitGroupCall recognizes (*sync.WaitGroup).Done / Wait.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Name() != "Done" && fn.Name() != "Wait" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && analysis.IsNamed(sig.Recv().Type(), "sync", "WaitGroup")
}

// isStopReceive reports whether receiving from x is a stop edge: ctx.Done()
// or an externally owned channel (excluding Ticker/Timer .C).
func isStopReceive(info *types.Info, x ast.Expr, body *ast.BlockStmt) bool {
	x = ast.Unparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Name() != "Done" {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() != nil && analysis.IsNamed(sig.Recv().Type(), "context", "Context")
	}
	return isExternalChan(info, x, body)
}

// isExternalChan reports whether x names a channel owned outside the
// goroutine body — a parameter, captured variable, or struct field — so
// someone else can signal or close it. Local channels the goroutine made
// for itself prove nothing.
func isExternalChan(info *types.Info, x ast.Expr, body *ast.BlockStmt) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if obj == nil {
			return false
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	case *ast.SelectorExpr:
		// A struct-field channel is external by construction — except the
		// runtime-owned clock channels, which never deliver "exit".
		if x.Sel.Name == "C" {
			t := info.TypeOf(x.X)
			if analysis.IsNamed(t, "time", "Ticker") || analysis.IsNamed(t, "time", "Timer") {
				return false
			}
		}
		return true
	default:
		return false
	}
}
