// Package sup holds the audited exceptions: goroutines whose lifetime is
// managed by machinery the analyzer cannot see intraprocedurally.
package sup

import "net/http"

// serveUntilShutdown mirrors the repo's server accept loops: Serve returns
// when the listener closes, which Shutdown does — evidence that lives in
// net/http, not here.
func serveUntilShutdown(srv *http.Server, ln interface {
	Accept() (interface{}, error)
}) {
	//sammy:goroutinelifetime: Serve exits when Shutdown closes the listener; joined via the shutdown path
	go srv.ListenAndServe()
}
