// Package a exercises the goroutinelifetime analyzer: joinable and
// stoppable goroutines, inescapable loops, unverifiable cross-package
// callees, and the ticker trap.
package a

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// waitGroupJoin: the canonical fan-out worker.
func waitGroupJoin(wg *sync.WaitGroup, items []int) {
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
}

// closeJoin: completion signalled by closing a channel.
func closeJoin() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// sendJoin: result handed back over a channel.
func sendJoin() chan int {
	out := make(chan int, 1)
	go func() {
		out <- compute()
	}()
	return out
}

// ctxStop: select on ctx.Done.
func ctxStop(ctx context.Context, kick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-kick:
				handle(v)
			}
		}
	}()
}

// capturedStop: receive from a channel the caller owns.
func capturedStop(stop chan struct{}) {
	go func() {
		<-stop
		work()
	}()
}

// rangeStop: range over an external channel ends when the owner closes it.
func rangeStop(jobs chan int) {
	go func() {
		for v := range jobs {
			handle(v)
		}
	}()
}

// methodWorker resolves a same-package method body.
type worker struct {
	kick chan struct{}
}

func (w *worker) run() {
	for {
		_, ok := <-w.kick
		if !ok {
			return
		}
		work()
	}
}

func methodWorker(w *worker) {
	go w.run()
}

// tickerOnly: the clock never says exit; no join, no stop.
func tickerOnly(t *time.Ticker) {
	go func() { // want `has no join or stop edge`
		for {
			<-t.C
			work()
			return
		}
	}()
}

// inescapable: the select has no case that leads to return.
func inescapable(tick chan int) {
	go func() { // want `can never terminate`
		for {
			select {
			case v := <-tick:
				handle(v)
			}
		}
	}()
}

// localOnly: a channel the goroutine made for itself proves nothing.
func localOnly() {
	go func() { // want `has no join or stop edge`
		self := make(chan int, 1)
		self <- 1
		<-self
		work()
	}()
}

// crossPackage cannot be verified intraprocedurally.
func crossPackage(srv *http.Server) {
	go srv.ListenAndServe() // want `cannot verify goroutine lifetime`
}

func work()          {}
func compute() int   { return 0 }
func handle(int)     {}
