package goroutinelifetime_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/goroutinelifetime"
)

func TestGoroutineLifetime(t *testing.T) {
	diags := antest.Run(t, goroutinelifetime.Analyzer, "gl/a", "gl/sup")
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want exactly the audited Serve site", suppressed)
	}
}
