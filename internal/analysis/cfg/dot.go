package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dot renders the graph in Graphviz dot format. The output is a pure
// function of the graph and the source text (block indices are creation
// order, statements print through go/printer), so it is stable enough for
// golden tests.
func (g *Graph) Dot(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Name)
	for _, blk := range g.Blocks {
		lines := []string{fmt.Sprintf("%d: %s", blk.Index, blk.Label)}
		for _, n := range blk.Nodes {
			lines = append(lines, nodeText(fset, n))
		}
		fmt.Fprintf(&sb, "  n%d [shape=box,label=%q];\n", blk.Index, strings.Join(lines, "\n"))
	}
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if lbl := e.Kind.String(); lbl != "" {
				fmt.Fprintf(&sb, "  n%d -> n%d [label=%q];\n", blk.Index, e.To.Index, lbl)
			} else {
				fmt.Fprintf(&sb, "  n%d -> n%d;\n", blk.Index, e.To.Index)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// nodeText renders one node as a single collapsed source line, truncated so
// dot labels stay readable.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf strings.Builder
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	text := buf.String()
	fields := strings.Fields(text) // collapse newlines and tabs
	text = strings.Join(fields, " ")
	const max = 60
	if len(text) > max {
		text = text[:max-3] + "..."
	}
	return text
}
